//! A blockchain-style batch signing service: the high-throughput workload
//! the paper's intro motivates (block producers authenticating many
//! transactions per second with post-quantum signatures).
//!
//! Signs a queue of transactions functionally (real signatures, verified)
//! while projecting what the same queue costs on the simulated RTX 4090
//! under baseline vs HERO-Sign execution.
//!
//! ```sh
//! cargo run --release --example batch_signing_service
//! ```

use hero_gpu_sim::device::rtx_4090;
use hero_sign::engine::{HeroSigner, OptConfig};
use hero_sphincs::params::Params;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A toy transaction: payload bytes to authenticate.
struct Transaction {
    id: u64,
    payload: Vec<u8>,
}

fn make_queue(count: usize, rng: &mut StdRng) -> Vec<Transaction> {
    (0..count)
        .map(|id| {
            let mut payload = vec![0u8; 96];
            rng.fill_bytes(&mut payload);
            Transaction { id: id as u64, payload }
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Reduced parameters for CPU-speed functional signing.
    let mut params = Params::sphincs_128f();
    params.h = 6;
    params.d = 3;
    params.log_t = 4;
    params.k = 8;

    let mut rng = StdRng::seed_from_u64(7);
    let (sk, vk) = hero_sphincs::keygen(params, &mut rng)?;
    let engine = HeroSigner::hero(rtx_4090(), params);

    let queue = make_queue(8, &mut rng);
    println!("signing a queue of {} transactions...", queue.len());
    let payloads: Vec<&[u8]> = queue.iter().map(|t| t.payload.as_slice()).collect();
    let signatures = engine.sign_batch(&sk, &payloads);

    // Validator side: batch verification through the same worker pool.
    let results = engine.verify_batch(&vk, &payloads, &signatures);
    for (tx, result) in queue.iter().zip(&results) {
        result
            .as_ref()
            .map_err(|e| format!("tx {} failed verification: {e}", tx.id))?;
    }
    println!("all {} transaction signatures batch-verified", queue.len());
    println!(
        "simulated batch-verification throughput: {:.0} KOPS (verification is ~{}x lighter than signing)",
        HeroSigner::hero(rtx_4090(), Params::sphincs_128f()).simulate_verify_kops(1024),
        hero_sign::workload::total_sign_compressions(&Params::sphincs_128f())
            / hero_sign::kernels::verify::verify_expected_compressions(&Params::sphincs_128f())
    );

    // Capacity planning: what does a 1M-transaction day look like on the
    // simulated GPU, baseline vs HERO?
    let full = Params::sphincs_128f();
    let baseline = HeroSigner::baseline(rtx_4090(), full).simulate_pipeline(1024, 1, 128);
    let hero = HeroSigner::hero(rtx_4090(), full).simulate_pipeline(1024, 512, 4);
    let mut hero_stream_cfg = OptConfig::hero();
    hero_stream_cfg.graph = false;
    let hero_stream =
        HeroSigner::new(rtx_4090(), full, hero_stream_cfg).simulate_pipeline(1024, 512, 4);

    println!("\ncapacity projection, {} on simulated RTX 4090:", full.name());
    for (label, r) in [
        ("baseline (TCAS-SPHINCSp)", &baseline),
        ("HERO-Sign, streams", &hero_stream),
        ("HERO-Sign, task graph", &hero),
    ] {
        let txs_per_sec = r.kops * 1.0e3;
        println!(
            "  {label:<26} {:.1} KOPS -> {:.1}s for 1M transactions (launch overhead {:.0} us)",
            r.kops,
            1.0e6 / txs_per_sec,
            r.launch_overhead_us
        );
    }
    Ok(())
}
