//! A blockchain-style batch signing service: the high-throughput workload
//! the paper's intro motivates (block producers authenticating many
//! transactions per second with post-quantum signatures).
//!
//! The service is written against `Box<dyn Signer>`, so the backend — the
//! HERO engine or the plain CPU reference — is a runtime decision
//! (`cargo run --example batch_signing_service -- reference`). It signs a
//! queue of transactions functionally (real signatures, verified) while
//! projecting what the same queue costs on the simulated RTX 4090 under
//! baseline vs HERO-Sign execution.
//!
//! ```sh
//! cargo run --release --example batch_signing_service [hero|reference]
//! ```

use hero_gpu_sim::device::rtx_4090;
use hero_sign::{HeroError, HeroSigner, LaunchPolicy, PipelineOptions, ReferenceSigner, Signer};
use hero_sphincs::params::Params;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A toy transaction: payload bytes to authenticate.
struct Transaction {
    id: u64,
    payload: Vec<u8>,
}

fn make_queue(count: usize, rng: &mut StdRng) -> Vec<Transaction> {
    (0..count)
        .map(|id| {
            let mut payload = vec![0u8; 96];
            rng.fill_bytes(&mut payload);
            Transaction {
                id: id as u64,
                payload,
            }
        })
        .collect()
}

/// The service's backend selection: one line per backend, everything
/// after this point is backend-agnostic.
fn select_backend(name: &str, params: Params) -> Result<Box<dyn Signer>, HeroError> {
    match name {
        "reference" => Ok(Box::new(ReferenceSigner::new(params)?)),
        _ => Ok(Box::new(HeroSigner::builder(rtx_4090(), params).build()?)),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Reduced parameters for CPU-speed functional signing.
    let mut params = Params::sphincs_128f();
    params.h = 6;
    params.d = 3;
    params.log_t = 4;
    params.k = 8;

    let backend_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "hero".to_string());
    let signer = select_backend(&backend_name, params)?;
    println!("signing backend: {}", signer.backend());

    let mut rng = StdRng::seed_from_u64(7);
    let (sk, vk) = signer.keygen(&mut rng)?;

    let queue = make_queue(8, &mut rng);
    println!("signing a queue of {} transactions...", queue.len());
    let payloads: Vec<&[u8]> = queue.iter().map(|t| t.payload.as_slice()).collect();
    let signatures = signer.sign_batch(&sk, &payloads)?;

    // Validator side: verify through the same trait surface.
    for (tx, (payload, sig)) in queue.iter().zip(payloads.iter().zip(&signatures)) {
        signer
            .verify(&vk, payload, sig)
            .map_err(|e| format!("tx {} failed verification: {e}", tx.id))?;
    }
    println!("all {} transaction signatures verified", queue.len());

    // The GPU engine additionally offers pooled batch verification and
    // the simulated performance model; fetch one for capacity planning
    // regardless of which backend served the queue.
    let full = Params::sphincs_128f();
    let hero = HeroSigner::hero(rtx_4090(), full)?;
    println!(
        "simulated batch-verification throughput: {:.0} KOPS (verification is ~{}x lighter than signing)",
        hero.simulate_verify_kops(1024),
        hero_sign::workload::total_sign_compressions(&full)
            / hero_sign::kernels::verify::verify_expected_compressions(&full)
    );

    // Capacity planning: what does a 1M-transaction day look like on the
    // simulated GPU, baseline vs HERO? One engine, three workloads — the
    // launch mode is a PipelineOptions override, not a rebuild.
    let baseline = HeroSigner::baseline(rtx_4090(), full)?
        .simulate(PipelineOptions::new(1024).batch_size(1).streams(128))?;
    let standard = PipelineOptions::new(1024).batch_size(512).streams(4);
    let hero_graph = hero.simulate(standard)?;
    let hero_stream = hero.simulate(standard.launch(LaunchPolicy::Streams))?;

    println!(
        "\ncapacity projection, {} on simulated RTX 4090:",
        full.name()
    );
    for (label, r) in [
        ("baseline (TCAS-SPHINCSp)", &baseline),
        ("HERO-Sign, streams", &hero_stream),
        ("HERO-Sign, task graph", &hero_graph),
    ] {
        let txs_per_sec = r.kops * 1.0e3;
        println!(
            "  {label:<26} {:.1} KOPS -> {:.1}s for 1M transactions (launch overhead {:.0} us)",
            r.kops,
            1.0e6 / txs_per_sec,
            r.launch_overhead_us
        );
    }
    Ok(())
}
