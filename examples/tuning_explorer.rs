//! Cross-GPU tuning explorer: run the Auto Tree Tuning search
//! (Algorithm 1) and the adaptive PTX selection for every device in the
//! Table VII catalog, and show how the chosen fusion adapts to each
//! architecture's shared-memory budget — the "adapt and optimize fusion
//! schemes across various GPU platforms" claim of the abstract.
//!
//! Engine construction goes through the builder, so every (device, set)
//! pair's search lands in the process-wide tuning cache; the cache
//! statistics printed at the end show the explorer never repeated one.
//!
//! ```sh
//! cargo run --release --example tuning_explorer
//! ```

use hero_gpu_sim::device::catalog;
use hero_gpu_sim::SmemPolicy;
use hero_sign::{tune_auto_cached, tuning_cache_stats, HeroSigner, PipelineOptions, TuningOptions};
use hero_sphincs::params::Params;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<14} {:<16} {:>8} {:>8} {:>4} {:>8} {:>8} {:>10}",
        "Device", "Set", "T_set", "N_tree", "F", "U_T", "U_S", "sim KOPS"
    );
    println!("{}", "-".repeat(84));

    for device in catalog() {
        for params in Params::fast_sets() {
            let opts = TuningOptions {
                // Re-tune with each device's opt-in shared-memory maximum,
                // as §IV-F does when extending across architectures.
                smem_policy: SmemPolicy::DynamicMax,
                ..TuningOptions::default()
            };
            let result = tune_auto_cached(&device, &params, &opts)
                .map_err(|e| format!("{} / {}: {e}", device.name, params.name()))?;
            let best = result.best;

            let engine = HeroSigner::hero(device.clone(), params)?;
            let kops = engine.simulate(PipelineOptions::new(1024))?.kops;

            println!(
                "{:<14} {:<16} {:>8} {:>8} {:>4} {:>8.3} {:>8.3} {:>10.2}",
                device.name,
                params.name(),
                best.threads_per_set,
                best.trees_per_set,
                best.fused_sets,
                best.thread_utilization,
                best.smem_utilization,
                kops,
            );
        }
    }

    let stats = tuning_cache_stats();
    println!();
    println!(
        "tuning cache: {} searches run, {} answered from cache ({} entries)",
        stats.misses, stats.hits, stats.entries
    );
    println!();
    println!("Notes:");
    println!("- Larger shared-memory budgets (A100/H100) admit deeper fusion (more");
    println!("  fused sets F per block) than the 48 KiB parts.");
    println!("- Under the static 48 KiB budget, 256f degenerates to two concurrent");
    println!("  trees and needs the Relax-FORS layout; large dynamic budgets make");
    println!("  plain full-tree fusion viable again, and the search adapts per device.");
    Ok(())
}
