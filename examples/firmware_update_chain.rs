//! IoT firmware-update signing: a long-lived vendor key signs a chain of
//! firmware releases, and constrained devices verify them — the IoT
//! motivation from the paper's intro, exercised end to end with
//! serialization across a simulated "wire".
//!
//! ```sh
//! cargo run --release --example firmware_update_chain
//! ```

use hero_gpu_sim::device::rtx_4090;
use hero_sign::{HeroSigner, PipelineOptions, Signer};
use hero_sphincs::params::Params;
use hero_sphincs::sha256::Sha256;
use hero_sphincs::Signature;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A firmware release: version plus image digest (what vendors actually
/// sign).
struct Release {
    version: String,
    image: Vec<u8>,
}

impl Release {
    /// The signed statement: version string + SHA-256 of the image.
    fn statement(&self) -> Vec<u8> {
        let mut out = self.version.as_bytes().to_vec();
        out.extend_from_slice(&Sha256::digest(&self.image));
        out
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut params = Params::sphincs_128f();
    params.h = 6;
    params.d = 3;
    params.log_t = 4;
    params.k = 8;

    let engine = HeroSigner::builder(rtx_4090(), params).build()?;
    let mut rng = StdRng::seed_from_u64(99);
    let (vendor_sk, vendor_vk) = engine.keygen(&mut rng)?;

    let releases: Vec<Release> = (1..=4)
        .map(|minor| Release {
            version: format!("2.{minor}.0"),
            image: vec![minor as u8; 4096 * minor as usize],
        })
        .collect();

    // Vendor side: sign every release statement, serialize signatures.
    let mut wire: Vec<(String, Vec<u8>, Vec<u8>)> = Vec::new();
    for release in &releases {
        let statement = release.statement();
        let sig = engine.sign(&vendor_sk, &statement)?;
        wire.push((release.version.clone(), statement, sig.to_bytes(&params)));
        println!("signed firmware {}", release.version);
    }

    // Device side: parse from bytes and verify before "flashing".
    let mut applied = 0;
    for (version, statement, sig_bytes) in &wire {
        let sig = Signature::from_bytes(&params, sig_bytes)?;
        match vendor_vk.verify(statement, &sig) {
            Ok(()) => {
                applied += 1;
                println!("device accepted firmware {version}");
            }
            Err(e) => println!("device REJECTED firmware {version}: {e}"),
        }
    }
    assert_eq!(applied, releases.len());

    // A tampered image must be rejected.
    let (version, statement, sig_bytes) = &wire[0];
    let mut bad_statement = statement.clone();
    let last = bad_statement.len() - 1;
    bad_statement[last] ^= 0x01;
    let sig = Signature::from_bytes(&params, sig_bytes)?;
    assert!(vendor_vk.verify(&bad_statement, &sig).is_err());
    println!("tampered {version} image correctly rejected");

    // Fleet planning: how fast could a build farm sign nightly images for
    // a 100k-device fleet with per-device statements?
    let full = Params::sphincs_128f();
    let report = HeroSigner::hero(rtx_4090(), full)?.simulate(PipelineOptions::new(1024))?;
    println!(
        "\nsimulated RTX 4090 ({}): {:.1} KOPS -> 100k per-device signatures in {:.2}s",
        full.name(),
        report.kops,
        100_000.0 / (report.kops * 1.0e3)
    );
    Ok(())
}
