//! Quickstart: build a HERO-Sign engine through the fallible builder,
//! generate a SPHINCS+ key pair through the `Signer` trait, sign with
//! the three-kernel decomposition, cross-check against the CPU
//! reference backend, and look at the simulated RTX 4090 performance of
//! the same workload.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hero_gpu_sim::device::rtx_4090;
use hero_sign::{HeroSigner, PipelineOptions, ReferenceSigner, Signer};
use hero_sphincs::params::Params;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Reduced parameters keep the example fast on a laptop CPU; swap in
    // Params::sphincs_128f() for the real thing (~100k hashes/signature).
    let mut params = Params::sphincs_128f();
    params.h = 9;
    params.d = 3;
    params.log_t = 6;
    params.k = 10;

    // The builder validates the parameter set and runs the (cached)
    // Auto Tree Tuning search; a bad set comes back as Err, not a panic.
    let engine = HeroSigner::builder(rtx_4090(), params).workers(8).build()?;

    let mut rng = StdRng::seed_from_u64(2026);
    let (sk, vk) = engine.keygen(&mut rng)?;
    println!("generated {} key pair", params.name());

    // Functional signing through the HERO kernel decomposition
    // (FORS_Sign ∥ TREE_Sign → WOTS+_Sign), bit-identical to the
    // reference signer.
    let message = b"the quick brown fox signs post-quantum";
    let signature = engine.sign(&sk, message)?;
    vk.verify(message, &signature)?;
    println!(
        "signature verified ({} bytes)",
        signature.to_bytes(&params).len()
    );

    // Backends are interchangeable behind the Signer trait and must
    // agree byte for byte.
    let reference: Box<dyn Signer> = Box::new(ReferenceSigner::new(params)?);
    assert_eq!(
        signature,
        reference.sign(&sk, message)?,
        "HERO decomposition must match the reference signer"
    );
    println!(
        "HERO three-kernel output is bit-identical to the {} backend",
        reference.backend()
    );

    // Simulated GPU throughput for the full 128f parameter set.
    let full = Params::sphincs_128f();
    let hero = HeroSigner::hero(rtx_4090(), full)?;
    let report = hero.simulate(PipelineOptions::new(1024))?;
    println!(
        "simulated RTX 4090, {}: {:.1} KOPS over 1024 messages (batch 512, task graph)",
        full.name(),
        report.kops
    );
    let selection = hero.selection();
    println!(
        "adaptive SHA-2 paths: FORS={:?}, TREE={:?}, WOTS+={:?}",
        selection.fors, selection.tree, selection.wots
    );
    if let Some(t) = hero.tuning() {
        println!(
            "tree tuning: {} trees/block across {} fused sets ({} threads)",
            t.best.concurrent_trees(),
            t.best.fused_sets,
            t.best.block_threads()
        );
    }
    Ok(())
}
