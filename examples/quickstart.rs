//! Quickstart: generate a SPHINCS+ key pair, sign with the HERO-Sign
//! engine (the three-kernel decomposition), verify, and look at the
//! simulated RTX 4090 performance of the same workload.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hero_gpu_sim::device::rtx_4090;
use hero_sign::engine::HeroSigner;
use hero_sphincs::params::Params;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Reduced parameters keep the example fast on a laptop CPU; swap in
    // Params::sphincs_128f() for the real thing (~100k hashes/signature).
    let mut params = Params::sphincs_128f();
    params.h = 9;
    params.d = 3;
    params.log_t = 6;
    params.k = 10;
    params.validate().map_err(|e| format!("params: {e}"))?;

    let mut rng = StdRng::seed_from_u64(2026);
    let (sk, vk) = hero_sphincs::keygen(params, &mut rng)?;
    println!("generated {} key pair", params.name());

    // Functional signing through the HERO kernel decomposition
    // (FORS_Sign ∥ TREE_Sign → WOTS+_Sign), bit-identical to the
    // reference signer.
    let engine = HeroSigner::hero(rtx_4090(), params);
    let message = b"the quick brown fox signs post-quantum";
    let signature = engine.sign(&sk, message);
    vk.verify(message, &signature)?;
    println!("signature verified ({} bytes)", signature.to_bytes(&params).len());

    let reference = sk.sign(message);
    assert_eq!(signature, reference, "HERO decomposition must match the reference signer");
    println!("HERO three-kernel output is bit-identical to the reference implementation");

    // Simulated GPU throughput for the full 128f parameter set.
    let full = Params::sphincs_128f();
    let hero = HeroSigner::hero(rtx_4090(), full);
    let report = hero.simulate_pipeline(1024, 512, 4);
    println!(
        "simulated RTX 4090, {}: {:.1} KOPS over 1024 messages (batch 512, task graph)",
        full.name(),
        report.kops
    );
    let selection = hero.selection();
    println!(
        "adaptive SHA-2 paths: FORS={:?}, TREE={:?}, WOTS+={:?}",
        selection.fors, selection.tree, selection.wots
    );
    if let Some(t) = hero.tuning() {
        println!(
            "tree tuning: {} trees/block across {} fused sets ({} threads)",
            t.best.concurrent_trees(),
            t.best.fused_sets,
            t.best.block_threads()
        );
    }
    Ok(())
}
