//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to a crate registry, so this
//! vendored shim provides the benchmarking surface the workspace's
//! benches use — [`Criterion`], benchmark groups, [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — backed by a simple wall-clock measurement loop.
//!
//! There is no statistical analysis or HTML report; each benchmark
//! prints `name: median ± spread per iteration`. When Cargo runs a
//! bench target in *test* mode (`cargo test` passes `--test` to
//! `harness = false` targets), every benchmark executes exactly one
//! iteration so the suite stays fast.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration throughput annotation. Recorded and echoed; this shim
/// performs no derived bytes/sec analysis.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    /// Times repeated calls of `f` and records the per-call duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call (also the only call in test mode).
        black_box(f());
        if self.samples <= 1 {
            LAST.with(|last| *last.borrow_mut() = Some((Duration::ZERO, Duration::ZERO)));
            return;
        }
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        times.sort();
        let median = times[times.len() / 2];
        let spread = times[times.len() - 1].saturating_sub(times[0]);
        LAST.with(|last| *last.borrow_mut() = Some((median, spread)));
    }
}

thread_local! {
    static LAST: std::cell::RefCell<Option<(Duration, Duration)>> =
        const { std::cell::RefCell::new(None) };
}

fn report(group: Option<&str>, id: &str, throughput: Option<Throughput>) {
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let measured = LAST.with(|last| last.borrow_mut().take());
    match measured {
        Some((median, spread)) if median > Duration::ZERO => {
            let extra = match throughput {
                Some(Throughput::Bytes(b)) => format!(" ({b} B/iter)"),
                Some(Throughput::Elements(e)) => format!(" ({e} elem/iter)"),
                None => String::new(),
            };
            println!("bench {label:<56} {median:>12.2?} ± {spread:.2?}{extra}");
        }
        _ => println!("bench {label:<56} ok (test mode)"),
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes `harness = false` bench targets with `--test`
        // under `cargo test`; honour it by collapsing to one iteration.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    fn samples(&self) -> usize {
        if self.test_mode {
            1
        } else {
            self.sample_size.min(50)
        }
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples(),
        };
        f(&mut b);
        report(None, id, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named collection of benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.criterion.samples(),
        };
        f(&mut b);
        report(Some(&self.name), &id.to_string(), self.throughput);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.criterion.samples(),
        };
        f(&mut b, input);
        report(Some(&self.name), &id.to_string(), self.throughput);
        self
    }

    /// Ends the group (a no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs each group, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(2);
        let mut runs = 0usize;
        c.bench_function("probe", |b| b.iter(|| runs += 1));
        assert!(runs >= 1);
    }

    #[test]
    fn groups_and_ids_render() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(64));
        g.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
