//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crate registry, so this
//! vendored shim implements the subset of proptest this workspace's
//! property tests use: the [`proptest!`] macro, `prop_assert*`/
//! `prop_assume!`, [`strategy::Strategy`] with `prop_map`, range and
//! tuple strategies, [`arbitrary`] `any::<T>()`, and
//! [`collection::vec`].
//!
//! Semantics differ from upstream in two deliberate ways:
//!
//! * Sampling is purely random (xorshift, seeded deterministically from
//!   the test name) — there is no shrinking. A failing case panics with
//!   the values in scope via the standard assert message.
//! * `prop_assume!` skips the current case rather than re-drawing, so a
//!   strategy whose assumptions almost always fail silently runs fewer
//!   effective cases.

#![warn(missing_docs)]

/// Run-loop configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic sampling state used by the [`proptest!`] run loop.
pub mod test_runner {
    /// A small xorshift64* generator, seeded from the test's name so each
    /// property test draws a reproducible stream.
    #[derive(Clone, Debug)]
    pub struct SampleRng {
        state: u64,
    }

    impl SampleRng {
        /// Seeds from arbitrary bytes (FNV-1a), typically
        /// `stringify!(test_name)`.
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h | 1 }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// A float uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::SampleRng;

    /// A recipe for producing random values of `Value`.
    ///
    /// Upstream proptest couples strategies to shrinkable value trees;
    /// this shim only samples.
    pub trait Strategy {
        /// The type of values produced.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut SampleRng) -> Self::Value;

        /// Maps produced values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut SampleRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut SampleRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut SampleRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut SampleRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut SampleRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::SampleRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws a uniformly distributed value.
        fn arbitrary_sample(rng: &mut SampleRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut SampleRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut SampleRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_sample(rng: &mut SampleRng) -> f64 {
            rng.next_f64()
        }
    }

    /// The full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut SampleRng) -> T {
            T::arbitrary_sample(rng)
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::SampleRng;

    /// A length specification: fixed or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// `Vec` strategy: `len` drawn from `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut SampleRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the precondition does not hold.
///
/// Must appear at the top level of the property-test body (the body runs
/// inside a closure; this expands to an early `return`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with ($cfg) $($rest)* }
    };
    (@with ($cfg:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::SampleRng::from_name(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    // The closure gives `prop_assume!` an early exit that
                    // skips just this case. `mut` because bodies may
                    // mutate captured sampled values.
                    #[allow(unused_mut)]
                    let mut body = || $body;
                    body();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @with ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::SampleRng::from_name("bounds");
        for _ in 0..1000 {
            let v = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = (2usize..=10).sample(&mut rng);
            assert!((2..=10).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = crate::test_runner::SampleRng::from_name("sizes");
        for _ in 0..200 {
            let v = crate::collection::vec(any::<u8>(), 0..5).sample(&mut rng);
            assert!(v.len() < 5);
            let fixed = crate::collection::vec(any::<u8>(), 32).sample(&mut rng);
            assert_eq!(fixed.len(), 32);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = crate::test_runner::SampleRng::from_name("same");
        let mut b = crate::test_runner::SampleRng::from_name("same");
        let s = crate::collection::vec(0u32..1000, 8);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_round_trip(x in 0u32..100, ys in crate::collection::vec(any::<u8>(), 0..8)) {
            prop_assume!(x > 0);
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len(), ys.len());
            prop_assert_ne!(x, 100);
        }

        #[test]
        fn tuple_and_map_strategies(p in (1usize..4, 0u64..10).prop_map(|(a, b)| a as u64 + b)) {
            prop_assert!(p < 13);
        }
    }
}
