//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so this
//! vendored shim provides exactly the surface the workspace uses —
//! [`RngCore`], [`SeedableRng`] and [`rngs::StdRng`] — with the same
//! names and signatures as `rand` 0.8. The generator behind `StdRng` is
//! xoshiro256\*\* (public domain construction by Blackman & Vigna), which
//! is deterministic per seed but does **not** produce the same streams as
//! upstream `rand`; nothing in this workspace depends on upstream's
//! exact output, only on seedable determinism.

#![warn(missing_docs)]

/// The core of a random number generator, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed, mirroring
/// `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Seed material type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded with SplitMix64 exactly
    /// as `rand` does for non-trivial seed widths.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    /// Creates a generator from best-effort process entropy (wall clock,
    /// PID, a fresh allocation address). Suitable for non-cryptographic
    /// uses and for the CLI's keygen default; pass an explicit seed
    /// anywhere reproducibility matters.
    fn from_entropy() -> Self {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        let pid = std::process::id() as u64;
        let stack_probe = &nanos as *const u64 as u64;
        Self::seed_from_u64(nanos ^ pid.rotate_left(32) ^ stack_probe.rotate_left(17))
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256\*\*.
    ///
    /// Statistically strong and fast; **not** a cryptographically secure
    /// generator and **not** stream-compatible with upstream `rand`'s
    /// `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_bytes_covers_every_byte() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 33];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut buf2 = [0u8; 33];
        StdRng::seed_from_u64(7).fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn zero_seed_does_not_stall() {
        let mut rng = StdRng::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn trait_objects_work() {
        let mut rng = StdRng::seed_from_u64(9);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let mut buf = [0u8; 4];
        dyn_rng.fill_bytes(&mut buf);
    }
}
