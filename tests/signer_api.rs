//! Cross-crate tests of the redesigned public API: the `Signer` backend
//! trait, the fallible builder, the typed `HeroError`, and
//! `PipelineOptions`.

use hero_gpu_sim::device::rtx_4090;
use hero_sign::{HeroError, HeroSigner, LaunchPolicy, PipelineOptions, ReferenceSigner, Signer};
use hero_sphincs::params::Params;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_params() -> Params {
    let mut p = Params::sphincs_128f();
    p.h = 6;
    p.d = 3;
    p.log_t = 4;
    p.k = 8;
    p
}

fn tiny_shake_params() -> Params {
    let mut p = Params::shake_128f();
    p.h = 6;
    p.d = 3;
    p.log_t = 4;
    p.k = 8;
    p
}

#[test]
fn shake_shapes_run_on_every_backend() {
    // The SHAKE half of the parameter family through the whole stack:
    // trait keygen yields a SHAKE-256 key for a shake shape, the
    // planned HERO engine and the scalar reference produce identical
    // bytes, and both verify.
    use hero_sphincs::hash::HashAlg;
    let params = tiny_shake_params();
    let backends: Vec<Box<dyn Signer>> = vec![
        Box::new(
            HeroSigner::builder(rtx_4090(), params)
                .workers(4)
                .build()
                .unwrap(),
        ),
        Box::new(ReferenceSigner::new(params).unwrap()),
    ];
    let mut rng = StdRng::seed_from_u64(23);
    let (sk, vk) = backends[0].keygen(&mut rng).unwrap();
    assert_eq!(sk.alg(), HashAlg::Shake256, "shape implies primitive");

    let msgs: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i; 24]).collect();
    let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
    let mut all_sigs = Vec::new();
    for backend in &backends {
        let sigs = backend.sign_batch(&sk, &refs).unwrap();
        for (m, s) in refs.iter().zip(&sigs) {
            backend.verify(&vk, m, s).unwrap();
        }
        all_sigs.push(sigs);
    }
    assert_eq!(
        all_sigs[0], all_sigs[1],
        "backends must agree byte for byte under SHAKE-256"
    );
}

#[test]
fn trait_objects_cover_both_backends() {
    let params = tiny_params();
    let backends: Vec<Box<dyn Signer>> = vec![
        Box::new(
            HeroSigner::builder(rtx_4090(), params)
                .workers(4)
                .build()
                .unwrap(),
        ),
        Box::new(ReferenceSigner::new(params).unwrap()),
    ];
    assert_eq!(backends[0].backend(), "hero-gpu");
    assert_eq!(backends[1].backend(), "reference-cpu");

    let mut rng = StdRng::seed_from_u64(11);
    let (sk, vk) = backends[0].keygen(&mut rng).unwrap();

    let msgs: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i; 24]).collect();
    let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();

    // Every backend must produce the same bytes and verify them.
    let mut all_sigs = Vec::new();
    for backend in &backends {
        assert_eq!(backend.params(), &params);
        let sigs = backend.sign_batch(&sk, &refs).unwrap();
        for (m, s) in refs.iter().zip(&sigs) {
            backend.verify(&vk, m, s).unwrap();
        }
        all_sigs.push(sigs);
    }
    assert_eq!(
        all_sigs[0], all_sigs[1],
        "backends must agree byte for byte"
    );
}

#[test]
fn builder_reports_invalid_params_instead_of_panicking() {
    let mut bad = Params::sphincs_128f();
    bad.d = 0;
    match HeroSigner::builder(rtx_4090(), bad).build() {
        Err(HeroError::InvalidParams(what)) => assert!(what.contains("d="), "{what}"),
        other => panic!("expected InvalidParams, got {other:?}"),
    }
    // The reference backend validates identically.
    assert!(matches!(
        ReferenceSigner::new(bad),
        Err(HeroError::InvalidParams(_))
    ));
}

#[test]
fn mismatched_keys_are_typed_errors_on_every_backend() {
    let engine_params = tiny_params();
    let mut key_params = engine_params;
    key_params.k = 9;
    let mut rng = StdRng::seed_from_u64(13);
    let (sk, vk) = hero_sphincs::keygen(key_params, &mut rng).unwrap();

    let backends: Vec<Box<dyn Signer>> = vec![
        Box::new(HeroSigner::hero(rtx_4090(), engine_params).unwrap()),
        Box::new(ReferenceSigner::new(engine_params).unwrap()),
    ];
    for backend in &backends {
        match backend.sign(&sk, b"foreign key") {
            Err(HeroError::KeyMismatch(m)) => {
                assert_eq!(m.engine, engine_params);
                assert_eq!(m.key, key_params);
            }
            other => panic!("{}: expected KeyMismatch, got {other:?}", backend.backend()),
        }
        assert!(matches!(
            backend.verify(&vk, b"foreign key", &sk.sign(b"foreign key")),
            Err(HeroError::KeyMismatch(_))
        ));
    }
}

#[test]
fn verification_failures_are_typed() {
    let params = tiny_params();
    let signer = ReferenceSigner::new(params).unwrap();
    let mut rng = StdRng::seed_from_u64(17);
    let (sk, vk) = signer.keygen(&mut rng).unwrap();
    let sig = signer.sign(&sk, b"payload").unwrap();
    assert!(matches!(
        signer.verify(&vk, b"tampered payload", &sig),
        Err(HeroError::Sphincs(
            hero_sphincs::sign::SignError::VerificationFailed
        ))
    ));
}

#[test]
fn pipeline_options_defaults_match_the_papers_workload() {
    let opts = PipelineOptions::default();
    assert_eq!(opts.messages, 1024);
    assert_eq!(opts.batch_size, 512);
    assert_eq!(opts.streams, 4);
    assert_eq!(opts.launch, LaunchPolicy::Auto);
    assert_eq!(opts.pcie_msg_bytes, None);
    assert!(opts.validate().is_ok());

    // `new` keeps every default except the message count — and shrinks
    // the default batch to the workload so small workloads validate.
    assert_eq!(
        PipelineOptions::new(64),
        PipelineOptions {
            messages: 64,
            batch_size: 64,
            ..opts
        }
    );
    assert!(PipelineOptions::new(64).validate().is_ok());
    // Large workloads keep the paper's 512-message batch.
    assert_eq!(PipelineOptions::new(4096).batch_size, 512);
}

#[test]
fn launch_policy_overrides_the_engine_config_per_simulation() {
    let engine = HeroSigner::hero(rtx_4090(), Params::sphincs_128f()).unwrap();
    assert!(engine.config().graph);
    let opts = PipelineOptions::new(1024).batch_size(128);
    let auto = engine.simulate(opts).unwrap();
    let graph = engine.simulate(opts.launch(LaunchPolicy::Graph)).unwrap();
    let streams = engine.simulate(opts.launch(LaunchPolicy::Streams)).unwrap();
    // Auto follows the engine's graph config.
    assert_eq!(auto.launch_overhead_us, graph.launch_overhead_us);
    // Stream replay launches each kernel from the host instead of one
    // graph per batch.
    assert!(streams.launch_overhead_us > graph.launch_overhead_us);
}

#[test]
fn oversized_batches_are_typed_errors_not_silent_clamps() {
    // A batch larger than the workload used to be clamped silently; it
    // is now an InvalidOptions error naming both numbers, so a
    // misconfigured dispatcher hears about it instead of benchmarking
    // the wrong shape.
    let engine = HeroSigner::hero(rtx_4090(), Params::sphincs_128f()).unwrap();
    let err = engine
        .simulate(PipelineOptions::new(64).batch_size(4096))
        .unwrap_err();
    match err {
        HeroError::InvalidOptions(what) => {
            assert!(what.contains("4096") && what.contains("64"), "{what}");
        }
        other => panic!("expected InvalidOptions, got {other:?}"),
    }
    // The exact-fit workload still simulates.
    engine
        .simulate(PipelineOptions::new(64).batch_size(64))
        .unwrap();
}
