//! Functional cross-crate tests: the HERO engine's three-kernel signing
//! must be bit-identical to the hero-sphincs reference for every
//! (reduced) parameter shape, and all serialization must round-trip.

use hero_gpu_sim::device::rtx_4090;
use hero_sign::engine::{HeroSigner, OptConfig};
use hero_sphincs::params::Params;
use hero_sphincs::sign::SignError;
use hero_sphincs::Signature;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Reduced parameter shapes covering all three security widths and both
/// even/odd structure corners.
fn test_shapes() -> Vec<Params> {
    let mut shapes = Vec::new();

    let mut p = Params::sphincs_128f();
    p.h = 6;
    p.d = 3;
    p.log_t = 4;
    p.k = 8;
    shapes.push(p);

    let mut p = Params::sphincs_192f();
    p.h = 4;
    p.d = 2;
    p.log_t = 3;
    p.k = 5;
    shapes.push(p);

    let mut p = Params::sphincs_256f();
    p.h = 4;
    p.d = 2;
    p.log_t = 4;
    p.k = 6;
    shapes.push(p);

    shapes
}

#[test]
fn hero_engine_matches_reference_all_widths() {
    for params in test_shapes() {
        let mut rng = StdRng::seed_from_u64(params.n as u64);
        let (sk, vk) = hero_sphincs::keygen(params, &mut rng).expect("keygen");
        let engine = HeroSigner::hero(rtx_4090(), params).unwrap();
        let msg = b"equivalence across kernel decompositions";
        let hero_sig = engine.sign(&sk, msg).unwrap();
        assert_eq!(hero_sig, sk.sign(msg), "{}", params.name());
        vk.verify(msg, &hero_sig)
            .unwrap_or_else(|e| panic!("{}: {e}", params.name()));
    }
}

#[test]
fn baseline_config_signs_identically_too() {
    // Optimization settings change *performance models*, never signatures.
    let params = test_shapes()[0];
    let mut rng = StdRng::seed_from_u64(5);
    let (sk, _) = hero_sphincs::keygen(params, &mut rng).unwrap();
    let msg = b"config independence";
    let hero = HeroSigner::builder(rtx_4090(), params)
        .config(OptConfig::hero())
        .build()
        .unwrap()
        .sign(&sk, msg)
        .unwrap();
    let base = HeroSigner::builder(rtx_4090(), params)
        .config(OptConfig::baseline())
        .build()
        .unwrap()
        .sign(&sk, msg)
        .unwrap();
    assert_eq!(hero, base);
}

#[test]
fn serialized_signatures_cross_verify() {
    for params in test_shapes() {
        let mut rng = StdRng::seed_from_u64(17);
        let (sk, vk) = hero_sphincs::keygen(params, &mut rng).unwrap();
        let engine = HeroSigner::hero(rtx_4090(), params).unwrap();
        let msg = b"wire format";
        let sig = engine.sign(&sk, msg).unwrap();
        let bytes = sig.to_bytes(&params);
        assert_eq!(bytes.len(), params.sig_bytes());
        let parsed = Signature::from_bytes(&params, &bytes).expect("parse");
        vk.verify(msg, &parsed).expect("verify parsed");
    }
}

#[test]
fn corrupted_wire_bytes_rejected() {
    let params = test_shapes()[0];
    let mut rng = StdRng::seed_from_u64(23);
    let (sk, vk) = hero_sphincs::keygen(params, &mut rng).unwrap();
    let msg = b"bit flips";
    let bytes = sk.sign(msg).to_bytes(&params);

    // Every region of the signature must be integrity-protected; flip a
    // byte in several places.
    for &pos in &[
        0usize,
        params.n,
        params.n + 3,
        bytes.len() / 2,
        bytes.len() - 1,
    ] {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x40;
        let parsed = Signature::from_bytes(&params, &bad).expect("parse shape ok");
        assert_eq!(
            vk.verify(msg, &parsed),
            Err(SignError::VerificationFailed),
            "flip at {pos} must fail"
        );
    }
}

#[test]
fn distinct_messages_distinct_signatures() {
    let params = test_shapes()[0];
    let mut rng = StdRng::seed_from_u64(31);
    let (sk, vk) = hero_sphincs::keygen(params, &mut rng).unwrap();
    let engine = HeroSigner::hero(rtx_4090(), params).unwrap();
    let msgs: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i; 10]).collect();
    let slices: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
    let sigs = engine.sign_batch(&sk, &slices).unwrap();
    for (i, a) in sigs.iter().enumerate() {
        vk.verify(&msgs[i], a).unwrap();
        for b in sigs.iter().skip(i + 1) {
            assert_ne!(a, b);
        }
        // Signature for message i must not verify message i+1.
        let other = (i + 1) % msgs.len();
        assert!(vk.verify(&msgs[other], a).is_err());
    }
}
