//! Experiment-shape regression tests: every table/figure reproduction
//! claim in EXPERIMENTS.md is pinned here, so a model change that breaks
//! a paper-shape silently fails CI rather than the docs.

use hero_gpu_sim::device::rtx_4090;
use hero_gpu_sim::isa::Sha2Path;
use hero_sign::engine::{HeroSigner, OptConfig, PipelineOptions};
use hero_sign::tuning::{tune, TuningOptions};
use hero_sphincs::params::Params;

fn kops(messages: u32, time_us: f64) -> f64 {
    messages as f64 / time_us * 1.0e3
}

#[test]
fn table4_shape_fusion_winners() {
    let d = rtx_4090();
    let r128 = tune(&d, &Params::sphincs_128f(), &TuningOptions::default()).unwrap();
    assert_eq!((r128.best.fused_sets, r128.best.trees_per_set), (3, 11));
    let r192 = tune(&d, &Params::sphincs_192f(), &TuningOptions::default()).unwrap();
    assert_eq!((r192.best.fused_sets, r192.best.trees_per_set), (2, 3));
}

#[test]
fn table5_shape_branch_selection() {
    let d = rtx_4090();
    for p in Params::fast_sets() {
        let sel = HeroSigner::hero(d.clone(), p).unwrap().selection();
        assert_eq!(sel.fors, Sha2Path::Ptx);
        let chain = if p.n == 32 {
            Sha2Path::Ptx
        } else {
            Sha2Path::Native
        };
        assert_eq!(sel.tree, chain, "{}", p.name());
        assert_eq!(sel.wots, chain, "{}", p.name());
    }
}

#[test]
fn table8_shape_speedup_ordering() {
    // FORS gains the most and TREE the least for 128f; every kernel gains.
    let d = rtx_4090();
    for p in Params::fast_sets() {
        let base = HeroSigner::baseline(d.clone(), p)
            .unwrap()
            .kernel_reports(1024);
        let hero = HeroSigner::hero(d.clone(), p).unwrap().kernel_reports(1024);
        let speedups: Vec<f64> = base
            .iter()
            .zip(hero.iter())
            .map(|(b, h)| b.time_us / h.time_us)
            .collect();
        for (i, s) in speedups.iter().enumerate() {
            assert!(*s > 1.0, "{} kernel {i}: {s}", p.name());
        }
        if p.n == 16 {
            assert!(speedups[0] > speedups[1], "FORS must out-gain TREE at 128f");
        }
    }
}

#[test]
fn table2_shape_mss_dominates_breakdown() {
    let d = rtx_4090();
    for p in Params::fast_sets() {
        let r = HeroSigner::baseline(d.clone(), p)
            .unwrap()
            .kernel_reports(1024);
        assert!(r[1].time_us > r[0].time_us, "{}: MSS > FORS", p.name());
        assert!(r[0].time_us > r[2].time_us, "{}: FORS > WOTS", p.name());
    }
}

#[test]
fn fig11_shape_cumulative_gain_in_paper_band() {
    // Cumulative FORS ablation gain: paper 2.14x / 1.72x / 1.75x; require
    // the same win with ±45% tolerance on the factor.
    let d = rtx_4090();
    let expect = [2.14, 1.72, 1.75];
    for (i, p) in Params::fast_sets().iter().enumerate() {
        let ladder = OptConfig::ablation_ladder();
        let first = HeroSigner::builder(d.clone(), *p)
            .config(ladder[0].1)
            .build()
            .unwrap()
            .kernel_reports(1024)[0]
            .time_us;
        let last = HeroSigner::builder(d.clone(), *p)
            .config(ladder[ladder.len() - 1].1)
            .build()
            .unwrap()
            .kernel_reports(1024)[0]
            .time_us;
        let gain = first / last;
        assert!(
            gain > expect[i] * 0.55 && gain < expect[i] * 1.45,
            "{}: cumulative {gain} vs paper {}",
            p.name(),
            expect[i]
        );
    }
}

#[test]
fn fig12_shape_pipeline_and_latency() {
    let d = rtx_4090();
    for p in Params::fast_sets() {
        let base = HeroSigner::baseline(d.clone(), p)
            .unwrap()
            .simulate(PipelineOptions::new(1024).batch_size(1).streams(128))
            .unwrap();
        let hero = HeroSigner::hero(d.clone(), p)
            .unwrap()
            .simulate(PipelineOptions::new(1024).batch_size(512).streams(4))
            .unwrap();
        // HERO wins end to end (paper: 1.28x / 1.28x / 1.42x).
        let speedup = hero.kops / base.kops;
        assert!(speedup > 1.1 && speedup < 2.5, "{}: {speedup}", p.name());
        // Launch latency collapses by ≥ two orders of magnitude.
        assert!(
            base.launch_overhead_us / hero.launch_overhead_us > 100.0,
            "{}: {} -> {}",
            p.name(),
            base.launch_overhead_us,
            hero.launch_overhead_us
        );
    }
}

#[test]
fn fig13_shape_speedup_present_at_all_batch_sizes() {
    let d = rtx_4090();
    let p = Params::sphincs_128f();
    let baseline = HeroSigner::baseline(d.clone(), p).unwrap();
    let hero = HeroSigner::hero(d.clone(), p).unwrap();
    for bs in [2u32, 16, 128, 1024] {
        let streams = (1024 / bs).clamp(4, 64) as usize;
        let b = baseline
            .simulate(PipelineOptions::new(1024).batch_size(bs).streams(streams))
            .unwrap();
        let h = hero
            .simulate(PipelineOptions::new(1024).batch_size(bs).streams(streams))
            .unwrap();
        assert!(h.kops > b.kops, "bs={bs}: {} vs {}", h.kops, b.kops);
    }
}

#[test]
fn fig14_shape_hero_wins_everywhere_and_ada_fastest() {
    let mut best: (String, f64) = (String::new(), 0.0);
    for device in hero_gpu_sim::device::catalog() {
        let p = Params::sphincs_256f();
        let base = HeroSigner::baseline(device.clone(), p)
            .unwrap()
            .simulate(PipelineOptions::new(512).batch_size(1).streams(64))
            .unwrap();
        let hero = HeroSigner::hero(device.clone(), p)
            .unwrap()
            .simulate(PipelineOptions::new(512).batch_size(256).streams(4))
            .unwrap();
        assert!(hero.kops > base.kops, "{}", device.name);
        if hero.kops > best.1 {
            best = (device.name.to_string(), hero.kops);
        }
    }
    assert_eq!(
        best.0, "RTX 4090",
        "paper §IV-F: 4090 delivers the highest absolute perf"
    );
}

#[test]
fn table6_shape_padding_kills_conflicts() {
    use hero_gpu_sim::banks::PaddingScheme;
    use hero_sign::kernels::fors_sign;
    let d = rtx_4090();
    for p in Params::fast_sets() {
        let geometry = HeroSigner::hero(d.clone(), p)
            .unwrap()
            .fors_layout()
            .geometry(&p);
        let (l0, s0) = fors_sign::measure_reduction(&p, &geometry, PaddingScheme::none());
        let (l1, s1) = fors_sign::measure_reduction(&p, &geometry, PaddingScheme::for_width(p.n));
        let before = l0.conflicts + s0.conflicts;
        let after = l1.conflicts + s1.conflicts;
        assert!(
            before > 100,
            "{}: baseline should conflict, got {before}",
            p.name()
        );
        assert!(after * 20 <= before, "{}: {before} -> {after}", p.name());
    }
}

#[test]
fn table11_shape_compile_time_faster_with_ptx_selected() {
    use hero_gpu_sim::compile::{build_seconds, BranchStrategy, KernelSource};
    let sources = vec![
        KernelSource {
            native_stmts: 8000,
            ptx_visible_stmts: 6000,
            ptx_opaque_stmts: 2400,
            selects_ptx: true,
        },
        KernelSource {
            native_stmts: 6000,
            ptx_visible_stmts: 4500,
            ptx_opaque_stmts: 1800,
            selects_ptx: false,
        },
        KernelSource {
            native_stmts: 3000,
            ptx_visible_stmts: 2250,
            ptx_opaque_stmts: 900,
            selects_ptx: false,
        },
    ];
    let base = build_seconds(&sources, BranchStrategy::NativeOnly);
    let hero = build_seconds(&sources, BranchStrategy::CompileTimeBranch);
    let runtime = build_seconds(&sources, BranchStrategy::RuntimeBranch);
    assert!(hero < base && base < runtime);
}

#[test]
fn table8_shape_wots_compute_throughput_drops() {
    // §IV-D: the div/mod → shift rewrite *reduces* compute throughput for
    // WOTS+ under 128f/192f while raising KOPS.
    let d = rtx_4090();
    for p in [Params::sphincs_128f(), Params::sphincs_192f()] {
        let base = &HeroSigner::baseline(d.clone(), p)
            .unwrap()
            .kernel_reports(1024)[2];
        let hero = &HeroSigner::hero(d.clone(), p).unwrap().kernel_reports(1024)[2];
        assert!(kops(1024, hero.time_us) > kops(1024, base.time_us));
        let base_instr_rate = base.compute_throughput_pct;
        let hero_instr_rate = hero.compute_throughput_pct;
        // The per-op rate can rise, but instructions *per signature* fall;
        // check the census directly.
        let base_instr = HeroSigner::baseline(d.clone(), p).unwrap().kernel_descs(1)[2]
            .instr_total
            .total();
        let hero_instr = HeroSigner::hero(d.clone(), p).unwrap().kernel_descs(1)[2]
            .instr_total
            .total();
        assert!(hero_instr < base_instr, "{}", p.name());
        let _ = (base_instr_rate, hero_instr_rate);
    }
}
