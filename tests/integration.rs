//! Cross-crate integration tests: the full HERO-Sign stack from tuner to
//! task graph, on real devices from the catalog.

use hero_gpu_sim::device::{catalog, rtx_4090};
use hero_gpu_sim::isa::Sha2Path;
use hero_sign::engine::{HeroSigner, OptConfig, PipelineOptions, PtxPolicy};
use hero_sign::tuning::{tune_auto, TuningOptions};
use hero_sphincs::params::Params;

#[test]
fn tuner_succeeds_on_every_device_and_set() {
    for device in catalog() {
        for params in Params::fast_sets() {
            let result = tune_auto(&device, &params, &TuningOptions::default())
                .unwrap_or_else(|e| panic!("{} / {}: {e}", device.name, params.name()));
            let best = result.best;
            assert!(best.block_threads() <= device.max_threads_per_block);
            assert!(best.fused_sets >= 1);
            assert!(best.concurrent_trees() >= 1);
        }
    }
}

#[test]
fn engines_construct_on_every_device_and_set() {
    for device in catalog() {
        for params in Params::fast_sets() {
            let hero = HeroSigner::hero(device.clone(), params).unwrap();
            let reports = hero.kernel_reports(256);
            for r in &reports {
                assert!(
                    r.time_us.is_finite() && r.time_us > 0.0,
                    "{} / {} / {}: bad time {}",
                    device.name,
                    params.name(),
                    r.name,
                    r.time_us
                );
                assert!(
                    r.achieved_occupancy > 0.0,
                    "{} {}: dead kernel",
                    device.name,
                    r.name
                );
            }
        }
    }
}

#[test]
fn hero_never_loses_to_baseline_end_to_end() {
    for device in catalog() {
        let params = Params::sphincs_128f();
        let base = HeroSigner::baseline(device.clone(), params)
            .unwrap()
            .simulate(PipelineOptions::new(512).batch_size(1).streams(64))
            .unwrap();
        let hero = HeroSigner::hero(device.clone(), params)
            .unwrap()
            .simulate(PipelineOptions::new(512).batch_size(256).streams(4))
            .unwrap();
        assert!(
            hero.kops > base.kops,
            "{}: hero {} vs baseline {}",
            device.name,
            hero.kops,
            base.kops
        );
    }
}

#[test]
fn ablation_configs_all_construct_and_order() {
    let device = rtx_4090();
    for params in Params::fast_sets() {
        let mut times = Vec::new();
        for (label, cfg) in OptConfig::ablation_ladder() {
            let engine = HeroSigner::builder(device.clone(), params)
                .config(cfg)
                .build()
                .unwrap();
            let fors = &engine.kernel_reports(1024)[0];
            times.push((label, fors.time_us));
        }
        let first = times.first().expect("steps").1;
        let last = times.last().expect("steps").1;
        assert!(
            last < first,
            "{}: ladder must cumulatively improve: {:?}",
            params.name(),
            times
        );
    }
}

#[test]
fn ptx_policies_behave() {
    let device = rtx_4090();
    let params = Params::sphincs_128f();
    let mut cfg = OptConfig::hero();

    cfg.ptx = PtxPolicy::Off;
    let off = HeroSigner::builder(device.clone(), params)
        .config(cfg)
        .build()
        .unwrap();
    assert_eq!(off.selection().fors, Sha2Path::Native);

    cfg.ptx = PtxPolicy::ForceAll;
    let force = HeroSigner::builder(device.clone(), params)
        .config(cfg)
        .build()
        .unwrap();
    assert_eq!(force.selection().tree, Sha2Path::Ptx);
    assert!(force.selection().is_uniform());

    cfg.ptx = PtxPolicy::Adaptive;
    let adaptive = HeroSigner::builder(device.clone(), params)
        .config(cfg)
        .build()
        .unwrap();
    // Table V, 128f: FORS picks PTX, chain kernels stay native.
    assert_eq!(adaptive.selection().fors, Sha2Path::Ptx);
    assert_eq!(adaptive.selection().tree, Sha2Path::Native);
}

#[test]
fn graph_vs_stream_launch_accounting() {
    let device = rtx_4090();
    let params = Params::sphincs_192f();
    let hero_graph = HeroSigner::hero(device.clone(), params)
        .unwrap()
        .simulate(PipelineOptions::new(1024).batch_size(128).streams(4))
        .unwrap();
    let mut cfg = OptConfig::hero();
    cfg.graph = false;
    let hero_stream = HeroSigner::builder(device.clone(), params)
        .config(cfg)
        .build()
        .unwrap()
        .simulate(PipelineOptions::new(1024).batch_size(128).streams(4))
        .unwrap();

    // Same batches: graph does 1 host launch per batch (plus cheap node
    // dispatch); streams do 3.
    assert_eq!(hero_stream.launch_count, hero_graph.launch_count);
    assert!(hero_graph.launch_overhead_us < hero_stream.launch_overhead_us);
    assert!(hero_graph.idle_us <= hero_stream.idle_us);
}

#[test]
fn degenerate_fors_shapes_survive_the_engine() {
    // Failure injection: pathological-but-valid parameter shapes must not
    // panic or produce non-finite times anywhere in the stack.
    let device = rtx_4090();
    for (log_t, k) in [(1usize, 1usize), (1, 64), (10, 1), (2, 3)] {
        let mut p = Params::sphincs_128f();
        p.log_t = log_t;
        p.k = k;
        let engine = HeroSigner::hero(device.clone(), p).unwrap();
        for r in engine.kernel_reports(64) {
            assert!(
                r.time_us.is_finite() && r.time_us > 0.0,
                "log_t={log_t} k={k} {}",
                r.name
            );
        }
        let pipe = engine
            .simulate(PipelineOptions::new(64).batch_size(32).streams(2))
            .unwrap();
        assert!(pipe.kops.is_finite() && pipe.kops > 0.0);
    }
}

#[test]
fn starved_device_degrades_gracefully() {
    // Failure injection: a device with pathologically small resources
    // (one SM, minimal smem) must still tune and simulate — just slowly.
    let mut crippled = rtx_4090();
    crippled.sm_count = 1;
    crippled.smem_per_sm = 16 * 1024;
    crippled.smem_static_per_block = 16 * 1024;
    crippled.smem_dynamic_max_per_block = 16 * 1024;

    let p = Params::sphincs_128f();
    let engine = HeroSigner::hero(crippled.clone(), p).unwrap();
    let pipe = engine
        .simulate(PipelineOptions::new(64).batch_size(32).streams(2))
        .unwrap();
    assert!(pipe.kops.is_finite() && pipe.kops > 0.0);
    let healthy = HeroSigner::hero(rtx_4090(), p)
        .unwrap()
        .simulate(PipelineOptions::new(64).batch_size(32).streams(2))
        .unwrap();
    assert!(
        healthy.kops > pipe.kops * 10.0,
        "128 SMs must dwarf 1 SM: {} vs {}",
        healthy.kops,
        pipe.kops
    );
}

#[test]
fn zero_and_tiny_workloads_do_not_break_the_timeline() {
    use hero_gpu_sim::stream::{LaunchMode, Timeline};
    let mut tl = Timeline::new(rtx_4090());
    let s = tl.stream(0);
    // Zero-duration kernels and zero-SM demands are clamped, not UB.
    let end = tl.launch("instant", s, 0.0, 0, LaunchMode::Graph, &[]);
    assert!(end.is_finite());
    assert!(tl.makespan_us() >= 0.0);
    assert_eq!(tl.executed().len(), 1);
}

#[test]
fn pipeline_scales_with_messages() {
    let device = rtx_4090();
    let engine = HeroSigner::hero(device, Params::sphincs_128f()).unwrap();
    let small = engine
        .simulate(PipelineOptions::new(256).batch_size(256).streams(4))
        .unwrap();
    let large = engine
        .simulate(PipelineOptions::new(2048).batch_size(512).streams(4))
        .unwrap();
    // Throughput (KOPS) should be roughly stable; makespan should scale.
    assert!(large.makespan_us > small.makespan_us * 4.0);
    let ratio = large.kops / small.kops;
    assert!(ratio > 0.5 && ratio < 2.0, "ratio {ratio}");
}
