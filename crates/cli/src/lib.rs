//! Library backing the `hero-sign` command-line tool: argument parsing,
//! hex key serialization, and the five subcommands (keygen, sign, verify,
//! tune, simulate).
//!
//! Kept as a library so every code path is unit-testable without spawning
//! processes.

pub mod args;
pub mod commands;
pub mod keyfile;

/// Exit-status style result for command execution.
pub type CmdResult = Result<String, String>;

/// Top-level usage text.
pub const USAGE: &str = "\
hero-sign — SPHINCS+ signing with HERO-Sign GPU tuning (simulated substrate)

USAGE:
    hero-sign <COMMAND> [OPTIONS]

COMMANDS:
    keygen    --params <set> [--alg sha256|sha512] [--seed <u64>] --out <path>
    sign      --key <path> --message <file> --out <sig-file>
    verify    --key <path> --message <file> --sig <sig-file>
    tune      [--device <name>] [--params <set>] [--dynamic-smem]
    simulate  [--device <name>] [--params <set>] [--messages <n>] [--batch <n>]
    devices   list the GPU catalog

Parameter sets: 128f 192f 256f 128s 192s 256s (SPHINCS+-<set>)
Devices:        \"GTX 1070\" \"V100\" \"RTX 2080 Ti\" \"A100\" \"RTX 4090\" \"H100\"
";

/// Parses a parameter-set label like `128f` or `SPHINCS+-192s`.
pub fn parse_params(label: &str) -> Result<hero_sphincs::Params, String> {
    use hero_sphincs::Params;
    let norm = label.trim().to_ascii_lowercase();
    let norm = norm.strip_prefix("sphincs+-").unwrap_or(&norm);
    match norm {
        "128f" => Ok(Params::sphincs_128f()),
        "192f" => Ok(Params::sphincs_192f()),
        "256f" => Ok(Params::sphincs_256f()),
        "128s" => Ok(Params::sphincs_128s()),
        "192s" => Ok(Params::sphincs_192s()),
        "256s" => Ok(Params::sphincs_256s()),
        other => Err(format!("unknown parameter set '{other}' (try 128f/192f/256f/128s/192s/256s)")),
    }
}

/// Parses a hash-algorithm label.
pub fn parse_alg(label: &str) -> Result<hero_sphincs::HashAlg, String> {
    match label.trim().to_ascii_lowercase().as_str() {
        "sha256" | "sha-256" => Ok(hero_sphincs::HashAlg::Sha256),
        "sha512" | "sha-512" => Ok(hero_sphincs::HashAlg::Sha512),
        other => Err(format!("unknown hash algorithm '{other}' (sha256 or sha512)")),
    }
}

/// Looks a device up by name, defaulting to the RTX 4090.
pub fn parse_device(name: Option<&str>) -> Result<hero_gpu_sim::DeviceProps, String> {
    match name {
        None => Ok(hero_gpu_sim::device::rtx_4090()),
        Some(n) => hero_gpu_sim::device::by_name(n)
            .ok_or_else(|| format!("unknown device '{n}' (run `hero-sign devices`)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_param_labels() {
        assert_eq!(parse_params("128f").unwrap().name(), "SPHINCS+-128f");
        assert_eq!(parse_params("SPHINCS+-256s").unwrap().name(), "SPHINCS+-256s");
        assert!(parse_params("512f").is_err());
    }

    #[test]
    fn parses_alg_labels() {
        assert_eq!(parse_alg("sha256").unwrap(), hero_sphincs::HashAlg::Sha256);
        assert_eq!(parse_alg("SHA-512").unwrap(), hero_sphincs::HashAlg::Sha512);
        assert!(parse_alg("sha3").is_err());
    }

    #[test]
    fn parses_devices() {
        assert_eq!(parse_device(None).unwrap().name, "RTX 4090");
        assert_eq!(parse_device(Some("h100")).unwrap().name, "H100");
        assert!(parse_device(Some("TPU")).is_err());
    }
}
