//! Library backing the `hero-sign` command-line tool: argument parsing,
//! hex key serialization, and the subcommands (keygen, sign, verify,
//! export-pubkey, tune, simulate, devices).
//!
//! Kept as a library so every code path is unit-testable without
//! spawning processes. All failures flow through the typed [`CliError`];
//! nothing in the command layer matches on strings.

pub mod args;
pub mod commands;
pub mod keyfile;

use hero_sign::HeroError;
use hero_sphincs::sign::SignError;
use std::fmt;

/// Errors surfaced by the CLI.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Bad command line: unknown command/label, missing or malformed
    /// option. Exits with status 2.
    Usage(String),
    /// A file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A key or public-key file was structurally invalid.
    Keyfile(String),
    /// The HERO-Sign engine rejected the request.
    Engine(HeroError),
    /// The micro-batching sign service failed at runtime.
    Service(hero_sign::service::ServiceError),
    /// A signature failed to parse or verify.
    Signature(SignError),
    /// The network server could not start.
    Server(hero_server::ServerError),
    /// A remote request against a running server failed.
    Remote(hero_server::ClientError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(what) => f.write_str(what),
            CliError::Io { path, source } => write!(f, "{path}: {source}"),
            CliError::Keyfile(what) => write!(f, "key file: {what}"),
            CliError::Engine(e) => write!(f, "engine: {e}"),
            CliError::Service(e) => write!(f, "service: {e}"),
            CliError::Signature(SignError::VerificationFailed) => {
                f.write_str("signature INVALID: verification failed")
            }
            CliError::Signature(e) => write!(f, "signature: {e}"),
            CliError::Server(e) => write!(f, "{e}"),
            CliError::Remote(e) => write!(f, "remote: {e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            CliError::Engine(e) => Some(e),
            CliError::Service(e) => Some(e),
            CliError::Signature(e) => Some(e),
            CliError::Server(e) => Some(e),
            CliError::Remote(e) => Some(e),
            _ => None,
        }
    }
}

impl CliError {
    /// Wraps an I/O failure with the path it concerned.
    pub fn io(path: &str, source: std::io::Error) -> Self {
        CliError::Io {
            path: path.to_string(),
            source,
        }
    }

    /// The process exit status this error maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            _ => 1,
        }
    }
}

impl From<HeroError> for CliError {
    fn from(e: HeroError) -> Self {
        CliError::Engine(e)
    }
}

impl From<hero_sign::service::ServiceError> for CliError {
    fn from(e: hero_sign::service::ServiceError) -> Self {
        CliError::Service(e)
    }
}

impl From<SignError> for CliError {
    fn from(e: SignError) -> Self {
        CliError::Signature(e)
    }
}

impl From<hero_server::ServerError> for CliError {
    fn from(e: hero_server::ServerError) -> Self {
        CliError::Server(e)
    }
}

impl From<hero_server::ClientError> for CliError {
    fn from(e: hero_server::ClientError) -> Self {
        CliError::Remote(e)
    }
}

/// Exit-status style result for command execution.
pub type CmdResult = Result<String, CliError>;

/// Top-level usage text.
pub const USAGE: &str = "\
hero-sign — SPHINCS+ signing with HERO-Sign GPU tuning (simulated substrate)

USAGE:
    hero-sign <COMMAND> [OPTIONS]

COMMANDS:
    keygen    --params <set> [--alg sha256|sha512|shake256] [--seed <u64>] --out <path>
              (shake-* sets default to --alg shake256)
    sign      --key <path> --message <file> --out <sig-file>
              [--backend hero|reference] [--workers <n>]
    verify    --key <path> | --pubkey <path>  --message <file> --sig <sig-file>
              or --sigs <a.sig,b.sig,...> --messages <a.msg,b.msg,...>
              [--backend hero|reference] [--workers <n>]
              (one --message may serve every --sigs entry); the batch
              runs through the planned cross-signature verifier and
              reports one verdict per file — valid, invalid, or
              malformed — failing if any is not valid
    export-pubkey --key <path> --out <path>
    tune      [--device <name>] [--params <set>] [--alg <hash>] [--dynamic-smem]
    simulate  [--device <name>] [--params <set>] [--messages <n>] [--batch <n>]
              [--streams <n>]
    throughput [--params <set>] [--clients <n>] [--requests <n>]
              [--backend hero|reference] [--workers <n>] [--max-batch <n>]
              [--max-wait-us <us>] [--seed <u64>] [--smoke]
              drive the micro-batching SignService from N client threads;
              reports latency percentiles and signs/sec vs looped sign
    serve     --keys <dir> [--addr <host:port>] [--metrics-addr <host:port>]
              [--workers <n>] [--max-batch <n>] [--max-wait-us <us>]
              [--queue-depth <n>] [--inflight <n>]
              serve sign/sign-batch/verify/keygen/stats over the
              length-prefixed TCP protocol (one tenant per key file);
              runs until stdin closes, then drains gracefully;
              HERO_FAULTS=seed:<u64>,spec:<point>@<p>[/<max>][*<ms>ms]
              enables deterministic fault injection (printed at start)
    remote-sign --addr <host:port> --tenant <name> --message <file>
              --out <sig-file> [--no-verify] [--deadline-ms <n>]
              [--timeout-ms <n>] [--retries <n>]
              sign over the network against a running `serve`;
              --deadline-ms sheds the request server-side if it cannot
              be signed in time, --retries replays transport failures
              and backpressure with jittered backoff (safe: signing is
              deterministic)
    devices   list the GPU catalog

Parameter sets: 128f 192f 256f 128s 192s 256s (SPHINCS+-<set>),
                shake-128f … shake-256s (SPHINCS+-SHAKE-<set>)
Devices:        \"GTX 1070\" \"V100\" \"RTX 2080 Ti\" \"A100\" \"RTX 4090\" \"H100\"
";

/// Parses a parameter-set label like `128f`, `shake-192s` or
/// `SPHINCS+-SHAKE-128f` (case-insensitive).
///
/// # Errors
///
/// [`CliError::Usage`] on unknown labels.
pub fn parse_params(label: &str) -> Result<hero_sphincs::Params, CliError> {
    hero_sphincs::Params::from_label(label).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown parameter set '{}' \
             (try 128f/192f/256f/128s/192s/256s or shake-<same>)",
            label.trim().to_ascii_lowercase()
        ))
    })
}

/// The hash-algorithm labels [`parse_alg`] accepts, in display order.
pub const HASH_ALG_NAMES: [&str; 3] = hero_sphincs::HashAlg::NAMES;

/// Parses a hash-algorithm label (case-insensitive; an optional dash
/// before the width is accepted, e.g. `SHA-256`, `shake-256`).
///
/// # Errors
///
/// [`CliError::Usage`] naming every valid label on unknown input.
pub fn parse_alg(label: &str) -> Result<hero_sphincs::HashAlg, CliError> {
    hero_sphincs::HashAlg::from_label(label).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown hash algorithm '{}' (valid: {})",
            label.trim().to_ascii_lowercase(),
            HASH_ALG_NAMES.join(", ")
        ))
    })
}

/// The canonical label for a hash algorithm (inverse of [`parse_alg`]);
/// used by key files and CLI output.
pub fn alg_label(alg: hero_sphincs::HashAlg) -> &'static str {
    alg.label()
}

/// Looks a device up by name, defaulting to the RTX 4090.
///
/// # Errors
///
/// [`CliError::Usage`] on unknown devices.
pub fn parse_device(name: Option<&str>) -> Result<hero_gpu_sim::DeviceProps, CliError> {
    match name {
        None => Ok(hero_gpu_sim::device::rtx_4090()),
        Some(n) => hero_gpu_sim::device::by_name(n).ok_or_else(|| {
            CliError::Usage(format!("unknown device '{n}' (run `hero-sign devices`)"))
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_param_labels() {
        assert_eq!(parse_params("128f").unwrap().name(), "SPHINCS+-128f");
        assert_eq!(
            parse_params("SPHINCS+-256s").unwrap().name(),
            "SPHINCS+-256s"
        );
        assert!(parse_params("512f").is_err());
    }

    #[test]
    fn parses_shake_param_labels() {
        for label in ["shake-128f", "SHAKE128F", "SPHINCS+-SHAKE-128f"] {
            assert_eq!(
                parse_params(label).unwrap().name(),
                "SPHINCS+-SHAKE-128f",
                "{label}"
            );
        }
        assert_eq!(
            parse_params("shake-256s").unwrap().name(),
            "SPHINCS+-SHAKE-256s"
        );
        assert!(parse_params("shake-512f").is_err());
    }

    #[test]
    fn parses_alg_labels_case_insensitively() {
        use hero_sphincs::HashAlg;
        assert_eq!(parse_alg("sha256").unwrap(), HashAlg::Sha256);
        assert_eq!(parse_alg("SHA-512").unwrap(), HashAlg::Sha512);
        for label in ["shake256", "SHAKE256", "Shake-256", "  shake256 "] {
            assert_eq!(parse_alg(label).unwrap(), HashAlg::Shake256, "{label}");
        }
        assert!(parse_alg("sha3").is_err());
    }

    #[test]
    fn unknown_alg_error_lists_all_valid_names() {
        let err = parse_alg("md5").unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        let msg = err.to_string();
        for name in HASH_ALG_NAMES {
            assert!(msg.contains(name), "error must list '{name}': {msg}");
        }
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn alg_labels_round_trip() {
        for name in HASH_ALG_NAMES {
            assert_eq!(alg_label(parse_alg(name).unwrap()), name);
        }
    }

    #[test]
    fn parses_devices() {
        assert_eq!(parse_device(None).unwrap().name, "RTX 4090");
        assert_eq!(parse_device(Some("h100")).unwrap().name, "H100");
        assert!(parse_device(Some("TPU")).is_err());
    }

    #[test]
    fn exit_codes_distinguish_usage_errors() {
        assert_eq!(CliError::Usage("bad".into()).exit_code(), 2);
        assert_eq!(CliError::from(SignError::VerificationFailed).exit_code(), 1);
    }

    #[test]
    fn errors_render_their_context() {
        let e = CliError::io(
            "sig.bin",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(e.to_string().contains("sig.bin"));
        let v = CliError::from(SignError::VerificationFailed);
        assert!(v.to_string().contains("INVALID"));
    }
}
