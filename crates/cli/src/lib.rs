//! Library backing the `hero-sign` command-line tool: argument parsing,
//! hex key serialization, and the subcommands (keygen, sign, verify,
//! export-pubkey, tune, simulate, devices).
//!
//! Kept as a library so every code path is unit-testable without
//! spawning processes. All failures flow through the typed [`CliError`];
//! nothing in the command layer matches on strings.

pub mod args;
pub mod commands;
pub mod keyfile;

use hero_sign::HeroError;
use hero_sphincs::sign::SignError;
use std::fmt;

/// Errors surfaced by the CLI.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Bad command line: unknown command/label, missing or malformed
    /// option. Exits with status 2.
    Usage(String),
    /// A file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A key or public-key file was structurally invalid.
    Keyfile(String),
    /// The HERO-Sign engine rejected the request.
    Engine(HeroError),
    /// The micro-batching sign service failed at runtime.
    Service(hero_sign::service::ServiceError),
    /// A signature failed to parse or verify.
    Signature(SignError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(what) => f.write_str(what),
            CliError::Io { path, source } => write!(f, "{path}: {source}"),
            CliError::Keyfile(what) => write!(f, "key file: {what}"),
            CliError::Engine(e) => write!(f, "engine: {e}"),
            CliError::Service(e) => write!(f, "service: {e}"),
            CliError::Signature(SignError::VerificationFailed) => {
                f.write_str("signature INVALID: verification failed")
            }
            CliError::Signature(e) => write!(f, "signature: {e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            CliError::Engine(e) => Some(e),
            CliError::Service(e) => Some(e),
            CliError::Signature(e) => Some(e),
            _ => None,
        }
    }
}

impl CliError {
    /// Wraps an I/O failure with the path it concerned.
    pub fn io(path: &str, source: std::io::Error) -> Self {
        CliError::Io {
            path: path.to_string(),
            source,
        }
    }

    /// The process exit status this error maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            _ => 1,
        }
    }
}

impl From<HeroError> for CliError {
    fn from(e: HeroError) -> Self {
        CliError::Engine(e)
    }
}

impl From<hero_sign::service::ServiceError> for CliError {
    fn from(e: hero_sign::service::ServiceError) -> Self {
        CliError::Service(e)
    }
}

impl From<SignError> for CliError {
    fn from(e: SignError) -> Self {
        CliError::Signature(e)
    }
}

/// Exit-status style result for command execution.
pub type CmdResult = Result<String, CliError>;

/// Top-level usage text.
pub const USAGE: &str = "\
hero-sign — SPHINCS+ signing with HERO-Sign GPU tuning (simulated substrate)

USAGE:
    hero-sign <COMMAND> [OPTIONS]

COMMANDS:
    keygen    --params <set> [--alg sha256|sha512] [--seed <u64>] --out <path>
    sign      --key <path> --message <file> --out <sig-file>
              [--backend hero|reference] [--workers <n>]
    verify    --key <path> | --pubkey <path>  --message <file> --sig <sig-file>
    export-pubkey --key <path> --out <path>
    tune      [--device <name>] [--params <set>] [--dynamic-smem]
    simulate  [--device <name>] [--params <set>] [--messages <n>] [--batch <n>]
              [--streams <n>]
    throughput [--params <set>] [--clients <n>] [--requests <n>]
              [--backend hero|reference] [--workers <n>] [--max-batch <n>]
              [--max-wait-us <us>] [--seed <u64>] [--smoke]
              drive the micro-batching SignService from N client threads;
              reports latency percentiles and signs/sec vs looped sign
    devices   list the GPU catalog

Parameter sets: 128f 192f 256f 128s 192s 256s (SPHINCS+-<set>)
Devices:        \"GTX 1070\" \"V100\" \"RTX 2080 Ti\" \"A100\" \"RTX 4090\" \"H100\"
";

/// Parses a parameter-set label like `128f` or `SPHINCS+-192s`.
///
/// # Errors
///
/// [`CliError::Usage`] on unknown labels.
pub fn parse_params(label: &str) -> Result<hero_sphincs::Params, CliError> {
    use hero_sphincs::Params;
    let norm = label.trim().to_ascii_lowercase();
    let norm = norm.strip_prefix("sphincs+-").unwrap_or(&norm);
    match norm {
        "128f" => Ok(Params::sphincs_128f()),
        "192f" => Ok(Params::sphincs_192f()),
        "256f" => Ok(Params::sphincs_256f()),
        "128s" => Ok(Params::sphincs_128s()),
        "192s" => Ok(Params::sphincs_192s()),
        "256s" => Ok(Params::sphincs_256s()),
        other => Err(CliError::Usage(format!(
            "unknown parameter set '{other}' (try 128f/192f/256f/128s/192s/256s)"
        ))),
    }
}

/// Parses a hash-algorithm label.
///
/// # Errors
///
/// [`CliError::Usage`] on unknown labels.
pub fn parse_alg(label: &str) -> Result<hero_sphincs::HashAlg, CliError> {
    match label.trim().to_ascii_lowercase().as_str() {
        "sha256" | "sha-256" => Ok(hero_sphincs::HashAlg::Sha256),
        "sha512" | "sha-512" => Ok(hero_sphincs::HashAlg::Sha512),
        other => Err(CliError::Usage(format!(
            "unknown hash algorithm '{other}' (sha256 or sha512)"
        ))),
    }
}

/// Looks a device up by name, defaulting to the RTX 4090.
///
/// # Errors
///
/// [`CliError::Usage`] on unknown devices.
pub fn parse_device(name: Option<&str>) -> Result<hero_gpu_sim::DeviceProps, CliError> {
    match name {
        None => Ok(hero_gpu_sim::device::rtx_4090()),
        Some(n) => hero_gpu_sim::device::by_name(n).ok_or_else(|| {
            CliError::Usage(format!("unknown device '{n}' (run `hero-sign devices`)"))
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_param_labels() {
        assert_eq!(parse_params("128f").unwrap().name(), "SPHINCS+-128f");
        assert_eq!(
            parse_params("SPHINCS+-256s").unwrap().name(),
            "SPHINCS+-256s"
        );
        assert!(parse_params("512f").is_err());
    }

    #[test]
    fn parses_alg_labels() {
        assert_eq!(parse_alg("sha256").unwrap(), hero_sphincs::HashAlg::Sha256);
        assert_eq!(parse_alg("SHA-512").unwrap(), hero_sphincs::HashAlg::Sha512);
        assert!(parse_alg("sha3").is_err());
    }

    #[test]
    fn parses_devices() {
        assert_eq!(parse_device(None).unwrap().name, "RTX 4090");
        assert_eq!(parse_device(Some("h100")).unwrap().name, "H100");
        assert!(parse_device(Some("TPU")).is_err());
    }

    #[test]
    fn exit_codes_distinguish_usage_errors() {
        assert_eq!(CliError::Usage("bad".into()).exit_code(), 2);
        assert_eq!(CliError::from(SignError::VerificationFailed).exit_code(), 1);
    }

    #[test]
    fn errors_render_their_context() {
        let e = CliError::io(
            "sig.bin",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(e.to_string().contains("sig.bin"));
        let v = CliError::from(SignError::VerificationFailed);
        assert!(v.to_string().contains("INVALID"));
    }
}
