//! Hex key-file format.
//!
//! The format itself lives in [`hero_server::keyfile`] so the CLI and
//! the network server's tenant keystore load one representation; this
//! module re-wraps it behind the CLI's error type. See that module for
//! the on-disk layout.

use crate::CliError;
use hero_server::keyfile as inner;
use hero_server::keyfile::KeyfileError;
use hero_sphincs::hash::HashAlg;
use hero_sphincs::{Params, SigningKey, VerifyingKey};

impl From<KeyfileError> for CliError {
    fn from(e: KeyfileError) -> Self {
        CliError::Keyfile(e.0)
    }
}

/// Serializes bytes as lowercase hex.
pub fn to_hex(bytes: &[u8]) -> String {
    inner::to_hex(bytes)
}

/// Parses lowercase/uppercase hex.
///
/// # Errors
///
/// On odd length or non-hex characters.
pub fn from_hex(s: &str) -> Result<Vec<u8>, CliError> {
    Ok(inner::from_hex(s)?)
}

/// Renders a key file from its seed material.
pub fn encode(
    params: &Params,
    alg: HashAlg,
    sk_seed: &[u8],
    sk_prf: &[u8],
    pk_seed: &[u8],
) -> String {
    inner::encode(params, alg, sk_seed, sk_prf, pk_seed)
}

/// Parses a key file and reconstructs the key pair.
///
/// # Errors
///
/// On malformed structure, unknown labels, or wrong seed lengths.
pub fn decode(text: &str) -> Result<(SigningKey, VerifyingKey), CliError> {
    Ok(inner::decode(text)?)
}

/// Renders a public-key file (`pk_seed || pk_root` in hex, no secrets).
pub fn encode_public(vk: &VerifyingKey) -> String {
    inner::encode_public(vk)
}

/// Parses a public-key file written by [`encode_public`].
///
/// # Errors
///
/// On malformed structure or a wrong-length key.
pub fn decode_public(text: &str) -> Result<VerifyingKey, CliError> {
    Ok(inner::decode_public(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let bytes = vec![0u8, 1, 0xab, 0xff];
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
    }

    #[test]
    fn keyfile_roundtrip_preserves_keys() {
        let p = Params::sphincs_128f();
        let sk_seed = vec![1u8; 16];
        let sk_prf = vec![2u8; 16];
        let pk_seed = vec![3u8; 16];
        let text = encode(&p, HashAlg::Sha256, &sk_seed, &sk_prf, &pk_seed);
        let (sk, vk) = decode(&text).expect("decode");
        assert_eq!(sk.params().name(), "SPHINCS+-128f");
        assert_eq!(sk.sk_seed(), &sk_seed[..]);
        assert_eq!(vk.pk_seed(), &pk_seed[..]);
    }

    #[test]
    fn malformed_files_map_to_cli_keyfile_errors() {
        let err = decode("garbage").unwrap_err();
        assert!(matches!(err, CliError::Keyfile(_)), "{err:?}");
        let p = Params::sphincs_128f();
        let good = encode(&p, HashAlg::Sha256, &[1; 16], &[2; 16], &[3; 16]);
        let truncated: String = good.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(decode(&truncated).is_err());
        let wrong_len = good.replace(&to_hex(&[1u8; 16]), &to_hex(&[1u8; 8]));
        assert!(decode(&wrong_len).is_err());
    }

    #[test]
    fn sha512_keyfiles_roundtrip() {
        let p = Params::sphincs_128f();
        let text = encode(&p, HashAlg::Sha512, &[4; 16], &[5; 16], &[6; 16]);
        let (sk, _) = decode(&text).expect("decode");
        assert_eq!(sk.alg(), HashAlg::Sha512);
    }

    #[test]
    fn shake_keyfiles_roundtrip() {
        let p = Params::shake_128f();
        let text = encode(&p, HashAlg::Shake256, &[4; 16], &[5; 16], &[6; 16]);
        assert!(text.contains("params: SPHINCS+-SHAKE-128f"), "{text}");
        assert!(text.contains("alg: shake256"), "{text}");
        let (sk, vk) = decode(&text).expect("decode");
        assert_eq!(sk.alg(), HashAlg::Shake256);
        assert_eq!(sk.params().name(), "SPHINCS+-SHAKE-128f");
        assert_eq!(encode_public(&vk).lines().nth(2), text.lines().nth(2));
    }
}
