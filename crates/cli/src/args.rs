//! Minimal `--flag value` argument parser (no third-party dependency).

use crate::CliError;
use std::collections::BTreeMap;

/// Parsed command line: subcommand, `--key value` options, bare flags.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Args {
    /// First positional token (the subcommand).
    pub command: String,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses a token stream (excluding `argv[0]`).
    ///
    /// # Errors
    ///
    /// Rejects options missing values and unexpected positionals.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Self, CliError> {
        let mut out = Args::default();
        let mut iter = tokens.into_iter().peekable();
        match iter.next() {
            Some(cmd) if !cmd.starts_with('-') => out.command = cmd,
            Some(other) => {
                return Err(CliError::Usage(format!(
                    "expected a subcommand, got '{other}'"
                )))
            }
            None => return Err(CliError::Usage("missing subcommand".to_string())),
        }
        while let Some(token) = iter.next() {
            if let Some(name) = token.strip_prefix("--") {
                // A flag if the next token is absent or another option.
                let takes_value = iter
                    .peek()
                    .map(|next| !next.starts_with("--"))
                    .unwrap_or(false);
                if takes_value {
                    let value = iter.next().expect("peeked");
                    out.options.insert(name.to_string(), value);
                } else {
                    out.flags.push(name.to_string());
                }
            } else {
                return Err(CliError::Usage(format!(
                    "unexpected positional argument '{token}'"
                )));
            }
        }
        Ok(out)
    }

    /// Value of `--name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Value of `--name` or an error mentioning the flag.
    ///
    /// # Errors
    ///
    /// When the option is absent.
    pub fn require(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| CliError::Usage(format!("missing required option --{name}")))
    }

    /// Whether bare flag `--name` was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Parses `--name` as an integer with a default.
    ///
    /// # Errors
    ///
    /// When the value does not parse.
    pub fn get_u32(&self, name: &str, default: u32) -> Result<u32, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name}: '{v}' is not a number"))),
        }
    }

    /// Parses `--name` as a u64 with a default.
    ///
    /// # Errors
    ///
    /// When the value does not parse.
    pub fn get_u64(&self, name: &str, default: u64) -> Result<u64, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name}: '{v}' is not a number"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, crate::CliError> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse(&["sign", "--key", "sk.hex", "--out", "sig.bin", "--verbose"]).unwrap();
        assert_eq!(a.command, "sign");
        assert_eq!(a.get("key"), Some("sk.hex"));
        assert_eq!(a.require("out").unwrap(), "sig.bin");
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn missing_subcommand_rejected() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--key", "x"]).is_err());
    }

    #[test]
    fn positional_after_command_rejected() {
        assert!(parse(&["sign", "stray"]).is_err());
    }

    #[test]
    fn numeric_options() {
        let a = parse(&["simulate", "--messages", "2048"]).unwrap();
        assert_eq!(a.get_u32("messages", 0).unwrap(), 2048);
        assert_eq!(a.get_u32("batch", 512).unwrap(), 512);
        let bad = parse(&["simulate", "--messages", "many"]).unwrap();
        assert!(bad.get_u32("messages", 0).is_err());
    }

    #[test]
    fn require_reports_flag_name() {
        let a = parse(&["keygen"]).unwrap();
        let err = a.require("out").unwrap_err();
        assert!(matches!(err, crate::CliError::Usage(_)));
        assert!(err.to_string().contains("--out"));
    }
}
