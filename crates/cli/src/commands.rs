//! The five subcommands. Each takes parsed [`crate::args::Args`] and
//! returns printable output, performing file I/O at the edges only.

use crate::args::Args;
use crate::{keyfile, parse_alg, parse_device, parse_params, CmdResult};

use hero_sign::engine::HeroSigner;
use hero_sign::tuning::{tune_auto, TuningOptions};
use hero_sphincs::hash::HashAlg;
use hero_sphincs::Signature;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fs;

/// Dispatches a parsed command line.
///
/// # Errors
///
/// Human-readable message on any failure (bad args, I/O, verification).
pub fn run(args: &Args) -> CmdResult {
    match args.command.as_str() {
        "keygen" => keygen(args),
        "sign" => sign(args),
        "verify" => verify(args),
        "export-pubkey" => export_pubkey(args),
        "tune" => tune(args),
        "simulate" => simulate(args),
        "devices" => devices(),
        "help" | "--help" => Ok(crate::USAGE.to_string()),
        other => Err(format!("unknown command '{other}'\n\n{}", crate::USAGE)),
    }
}

fn keygen(args: &Args) -> CmdResult {
    let params = parse_params(args.get("params").unwrap_or("128f"))?;
    let alg = parse_alg(args.get("alg").unwrap_or("sha256"))?;
    let out = args.require("out")?;

    let mut rng = match args.get("seed") {
        Some(_) => StdRng::seed_from_u64(args.get_u64("seed", 0)?),
        None => StdRng::from_entropy(),
    };
    let mut sk_seed = vec![0u8; params.n];
    let mut sk_prf = vec![0u8; params.n];
    let mut pk_seed = vec![0u8; params.n];
    rng.fill_bytes(&mut sk_seed);
    rng.fill_bytes(&mut sk_prf);
    rng.fill_bytes(&mut pk_seed);

    let text = keyfile::encode(&params, alg, &sk_seed, &sk_prf, &pk_seed);
    // Validate by reconstructing (also computes the public root).
    let (_, vk) = keyfile::decode(&text)?;
    fs::write(out, &text).map_err(|e| format!("writing {out}: {e}"))?;
    Ok(format!(
        "wrote {} key to {out}\npublic root: {}",
        params.name(),
        keyfile::to_hex(vk.pk_root())
    ))
}

fn sign(args: &Args) -> CmdResult {
    let key_path = args.require("key")?;
    let msg_path = args.require("message")?;
    let out = args.require("out")?;

    let key_text = fs::read_to_string(key_path).map_err(|e| format!("reading {key_path}: {e}"))?;
    let (sk, _) = keyfile::decode(&key_text)?;
    let message = fs::read(msg_path).map_err(|e| format!("reading {msg_path}: {e}"))?;

    let params = *sk.params();
    let device = parse_device(args.get("device"))?;
    let engine = HeroSigner::hero(device, params);
    let signature = engine.sign(&sk, &message);
    let bytes = signature.to_bytes(&params);
    fs::write(out, &bytes).map_err(|e| format!("writing {out}: {e}"))?;
    Ok(format!("signed {} bytes -> {} byte {} signature at {out}", message.len(), bytes.len(), params.name()))
}

fn export_pubkey(args: &Args) -> CmdResult {
    let key_path = args.require("key")?;
    let out = args.require("out")?;
    let key_text = fs::read_to_string(key_path).map_err(|e| format!("reading {key_path}: {e}"))?;
    let (_, vk) = keyfile::decode(&key_text)?;
    fs::write(out, keyfile::encode_public(&vk)).map_err(|e| format!("writing {out}: {e}"))?;
    Ok(format!("wrote public key ({} bytes) to {out}", vk.to_bytes().len()))
}

fn verify(args: &Args) -> CmdResult {
    let msg_path = args.require("message")?;
    let sig_path = args.require("sig")?;

    // Accept either a secret key file (--key) or a public-only file
    // (--pubkey) — verifiers should not need secrets on disk.
    let vk = match (args.get("pubkey"), args.get("key")) {
        (Some(pk_path), _) => {
            let text =
                fs::read_to_string(pk_path).map_err(|e| format!("reading {pk_path}: {e}"))?;
            keyfile::decode_public(&text)?
        }
        (None, Some(key_path)) => {
            let text =
                fs::read_to_string(key_path).map_err(|e| format!("reading {key_path}: {e}"))?;
            keyfile::decode(&text)?.1
        }
        (None, None) => return Err("verify needs --pubkey or --key".to_string()),
    };
    let message = fs::read(msg_path).map_err(|e| format!("reading {msg_path}: {e}"))?;
    let sig_bytes = fs::read(sig_path).map_err(|e| format!("reading {sig_path}: {e}"))?;

    let signature = Signature::from_bytes(vk.params(), &sig_bytes).map_err(|e| e.to_string())?;
    match vk.verify(&message, &signature) {
        Ok(()) => Ok("signature OK".to_string()),
        Err(e) => Err(format!("signature INVALID: {e}")),
    }
}

fn tune(args: &Args) -> CmdResult {
    let device = parse_device(args.get("device"))?;
    let opts = TuningOptions {
        smem_policy: if args.flag("dynamic-smem") {
            hero_gpu_sim::SmemPolicy::DynamicMax
        } else {
            hero_gpu_sim::SmemPolicy::Static
        },
        ..TuningOptions::default()
    };

    let sets = match args.get("params") {
        Some(label) => vec![parse_params(label)?],
        None => hero_sphincs::Params::fast_sets().to_vec(),
    };

    let mut out = format!("Auto Tree Tuning on {} (Algorithm 1)\n", device.name);
    for p in sets {
        let r = tune_auto(&device, &p, &opts).map_err(|e| format!("{}: {e}", p.name()))?;
        let b = r.best;
        out.push_str(&format!(
            "{}: T_set={} N_tree={} F={} U_T={:.3} U_S={:.3} smem={}B relax_depth={} ({} candidates)\n",
            p.name(),
            b.threads_per_set,
            b.trees_per_set,
            b.fused_sets,
            b.thread_utilization,
            b.smem_utilization,
            b.smem_bytes,
            b.relax_depth,
            r.candidates.len(),
        ));
    }
    Ok(out)
}

fn simulate(args: &Args) -> CmdResult {
    let device = parse_device(args.get("device"))?;
    let params = parse_params(args.get("params").unwrap_or("128f"))?;
    let messages = args.get_u32("messages", 1024)?;
    let batch = args.get_u32("batch", 512)?;
    if messages == 0 {
        return Err("--messages must be positive".to_string());
    }

    let hero = HeroSigner::hero(device.clone(), params);
    let baseline = HeroSigner::baseline(device.clone(), params);
    let h = hero.simulate_pipeline(messages, batch, 4);
    let b = baseline.simulate_pipeline(messages, 1, device.sm_count as usize);
    let sel = hero.selection();

    Ok(format!(
        "device: {}\nparams: {}\nmessages: {messages} (batch {batch})\n\
         baseline: {:.2} KOPS ({:.0} us, launch overhead {:.1} us)\n\
         HERO:     {:.2} KOPS ({:.0} us, launch overhead {:.1} us)\n\
         speedup:  {:.2}x   launch-latency reduction: {:.1}x\n\
         SHA-2 paths: FORS={:?} TREE={:?} WOTS+={:?}\n",
        device.name,
        params.name(),
        b.kops,
        b.makespan_us,
        b.launch_overhead_us,
        h.kops,
        h.makespan_us,
        h.launch_overhead_us,
        h.kops / b.kops,
        b.launch_overhead_us / h.launch_overhead_us,
        sel.fors,
        sel.tree,
        sel.wots,
    ))
}

fn devices() -> CmdResult {
    let mut out = String::from("device           arch     SMs  cores  MHz   smem/block(dyn)\n");
    for d in hero_gpu_sim::device::catalog() {
        out.push_str(&format!(
            "{:<16} {:<8} {:>4} {:>6} {:>5} {:>8} KiB\n",
            d.name,
            d.arch.to_string(),
            d.sm_count,
            d.total_cores(),
            d.base_clock_mhz,
            d.smem_dynamic_max_per_block / 1024,
        ));
    }
    Ok(out)
}

/// Re-exported for tests: signs with an explicit alg through the keyfile
/// path end to end in memory.
#[doc(hidden)]
pub fn roundtrip_in_memory(params_label: &str, alg: HashAlg, msg: &[u8]) -> Result<bool, String> {
    let params = parse_params(params_label)?;
    let text = keyfile::encode(
        &params,
        alg,
        &vec![7u8; params.n],
        &vec![8u8; params.n],
        &vec![9u8; params.n],
    );
    let (sk, vk) = keyfile::decode(&text)?;
    let sig = sk.sign(msg);
    Ok(vk.verify(msg, &sig).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn unknown_command_mentions_usage() {
        let err = run(&parse(&["frobnicate"])).unwrap_err();
        assert!(err.contains("USAGE"));
    }

    #[test]
    fn help_prints_usage() {
        assert!(run(&parse(&["help"])).unwrap().contains("COMMANDS"));
    }

    #[test]
    fn devices_lists_catalog() {
        let out = devices().unwrap();
        assert!(out.contains("RTX 4090") && out.contains("H100"));
    }

    #[test]
    fn tune_runs_for_default_sets() {
        let out = tune(&parse(&["tune"])).unwrap();
        assert!(out.contains("SPHINCS+-128f") && out.contains("F=3"));
    }

    #[test]
    fn tune_s_set_reports_relax_depth() {
        let out = tune(&parse(&["tune", "--params", "128s"])).unwrap();
        assert!(out.contains("relax_depth=2"), "{out}");
    }

    #[test]
    fn simulate_reports_speedup() {
        let out = simulate(&parse(&["simulate", "--messages", "256", "--batch", "128"])).unwrap();
        assert!(out.contains("speedup"), "{out}");
        assert!(out.contains("HERO"));
    }

    #[test]
    fn simulate_rejects_zero_messages() {
        assert!(simulate(&parse(&["simulate", "--messages", "0"])).is_err());
    }

    #[test]
    fn file_workflow_keygen_sign_verify() {
        let dir = std::env::temp_dir().join(format!("hero-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let key = dir.join("key.txt");
        let msg = dir.join("msg.bin");
        let sig = dir.join("sig.bin");
        std::fs::write(&msg, b"cli end to end").unwrap();

        // 128s keygen would take minutes on one CPU; 128f's top subtree is
        // 8 wots leaves — fast enough for a test.
        let out = keygen(&parse(&[
            "keygen", "--params", "128f", "--seed", "42", "--out", key.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("public root"));

        let out = sign(&parse(&[
            "sign", "--key", key.to_str().unwrap(), "--message", msg.to_str().unwrap(),
            "--out", sig.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("17088 byte"), "{out}");

        let out = verify(&parse(&[
            "verify", "--key", key.to_str().unwrap(), "--message", msg.to_str().unwrap(),
            "--sig", sig.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(out, "signature OK");

        // Public-key-only verification path (no secrets on the verifier).
        let pubkey = dir.join("pub.txt");
        let out = export_pubkey(&parse(&[
            "export-pubkey", "--key", key.to_str().unwrap(), "--out", pubkey.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("public key"));
        let pub_text = std::fs::read_to_string(&pubkey).unwrap();
        assert!(!pub_text.contains("sk_seed"), "pubkey file must hold no secrets");
        let out = verify(&parse(&[
            "verify", "--pubkey", pubkey.to_str().unwrap(), "--message", msg.to_str().unwrap(),
            "--sig", sig.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(out, "signature OK");

        // Tamper and re-verify.
        let mut bytes = std::fs::read(&sig).unwrap();
        bytes[100] ^= 1;
        std::fs::write(&sig, &bytes).unwrap();
        let err = verify(&parse(&[
            "verify", "--key", key.to_str().unwrap(), "--message", msg.to_str().unwrap(),
            "--sig", sig.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("INVALID"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_without_any_key_rejected() {
        let err = verify(&parse(&["verify", "--message", "m", "--sig", "s"])).unwrap_err();
        assert!(err.contains("--pubkey"));
    }
}
