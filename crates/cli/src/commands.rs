//! The subcommands. Each takes parsed [`crate::args::Args`] and returns
//! printable output, performing file I/O at the edges only.

use crate::args::Args;
use crate::{keyfile, parse_alg, parse_device, parse_params, CliError, CmdResult};

use hero_sign::service::{ServiceConfig, SignService, SignTicket};
use hero_sign::{HeroSigner, PipelineOptions, ReferenceSigner, Signer};
use hero_sphincs::hash::HashAlg;
use hero_sphincs::Signature;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fs;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Dispatches a parsed command line.
///
/// # Errors
///
/// A typed [`CliError`] on any failure (bad args, I/O, verification).
pub fn run(args: &Args) -> CmdResult {
    match args.command.as_str() {
        "keygen" => keygen(args),
        "sign" => sign(args),
        "verify" => verify(args),
        "export-pubkey" => export_pubkey(args),
        "tune" => tune(args),
        "simulate" => simulate(args),
        "throughput" => throughput(args),
        "serve" => serve(args),
        "remote-sign" => remote_sign(args),
        "devices" => devices(),
        "help" | "--help" => Ok(crate::USAGE.to_string()),
        other => Err(CliError::Usage(format!(
            "unknown command '{other}'\n\n{}",
            crate::USAGE
        ))),
    }
}

fn keygen(args: &Args) -> CmdResult {
    let params = parse_params(args.get("params").unwrap_or("128f"))?;
    // Default to the shape's preferred primitive: shake-* shapes produce
    // SHAKE-256 keys unless --alg overrides.
    let alg = match args.get("alg") {
        Some(label) => parse_alg(label)?,
        None => params.preferred_alg(),
    };
    let out = args.require("out")?;

    let mut rng = match args.get("seed") {
        Some(_) => StdRng::seed_from_u64(args.get_u64("seed", 0)?),
        None => StdRng::from_entropy(),
    };
    let mut sk_seed = vec![0u8; params.n];
    let mut sk_prf = vec![0u8; params.n];
    let mut pk_seed = vec![0u8; params.n];
    rng.fill_bytes(&mut sk_seed);
    rng.fill_bytes(&mut sk_prf);
    rng.fill_bytes(&mut pk_seed);

    let text = keyfile::encode(&params, alg, &sk_seed, &sk_prf, &pk_seed);
    // Validate by reconstructing (also computes the public root).
    let (_, vk) = keyfile::decode(&text)?;
    fs::write(out, &text).map_err(|e| CliError::io(out, e))?;
    Ok(format!(
        "wrote {} key to {out}\npublic root: {}",
        params.name(),
        keyfile::to_hex(vk.pk_root())
    ))
}

/// Builds the backend selected by `--backend` (default: the HERO engine
/// on the `--device` GPU model).
fn select_backend(
    args: &Args,
    params: hero_sphincs::Params,
) -> Result<Box<dyn Signer + Send + Sync>, CliError> {
    match args.get("backend").unwrap_or("hero") {
        "hero" => {
            let device = parse_device(args.get("device"))?;
            let mut builder = HeroSigner::builder(device, params);
            match args.get("workers") {
                Some(v) => {
                    let workers: usize = v.parse().map_err(|_| {
                        CliError::Usage(format!("--workers: '{v}' is not a number"))
                    })?;
                    builder = builder.workers(workers);
                }
                // A value-less `--workers` parses as a bare flag; reject
                // it instead of silently using the default count.
                None if args.flag("workers") => {
                    return Err(CliError::Usage("--workers requires a value".to_string()))
                }
                None => {}
            }
            Ok(Box::new(builder.build()?))
        }
        "reference" => Ok(Box::new(ReferenceSigner::new(params)?)),
        other => Err(CliError::Usage(format!(
            "unknown backend '{other}' (hero or reference)"
        ))),
    }
}

fn sign(args: &Args) -> CmdResult {
    let key_path = args.require("key")?;
    let msg_path = args.require("message")?;
    let out = args.require("out")?;

    let key_text = fs::read_to_string(key_path).map_err(|e| CliError::io(key_path, e))?;
    let (sk, _) = keyfile::decode(&key_text)?;
    let message = fs::read(msg_path).map_err(|e| CliError::io(msg_path, e))?;

    let params = *sk.params();
    let signer = select_backend(args, params)?;
    let signature = signer.sign(&sk, &message)?;
    let bytes = signature.to_bytes(&params);
    fs::write(out, &bytes).map_err(|e| CliError::io(out, e))?;
    Ok(format!(
        "signed {} bytes -> {} byte {} signature at {out} ({} backend)",
        message.len(),
        bytes.len(),
        params.name(),
        signer.backend(),
    ))
}

fn export_pubkey(args: &Args) -> CmdResult {
    let key_path = args.require("key")?;
    let out = args.require("out")?;
    let key_text = fs::read_to_string(key_path).map_err(|e| CliError::io(key_path, e))?;
    let (_, vk) = keyfile::decode(&key_text)?;
    fs::write(out, keyfile::encode_public(&vk)).map_err(|e| CliError::io(out, e))?;
    Ok(format!(
        "wrote public key ({} bytes) to {out}",
        vk.to_bytes().len()
    ))
}

fn verify(args: &Args) -> CmdResult {
    // Accept either a secret key file (--key) or a public-only file
    // (--pubkey) — verifiers should not need secrets on disk.
    let vk = match (args.get("pubkey"), args.get("key")) {
        (Some(pk_path), _) => {
            let text = fs::read_to_string(pk_path).map_err(|e| CliError::io(pk_path, e))?;
            keyfile::decode_public(&text)?
        }
        (None, Some(key_path)) => {
            let text = fs::read_to_string(key_path).map_err(|e| CliError::io(key_path, e))?;
            keyfile::decode(&text)?.1
        }
        (None, None) => {
            return Err(CliError::Usage(
                "verify needs --pubkey or --key".to_string(),
            ))
        }
    };

    // Batched spelling: --sigs a.sig,b.sig,... paired one-to-one with
    // --messages, or all over one --message.
    if let Some(sig_list) = args.get("sigs") {
        return verify_many(args, &vk, sig_list);
    }

    let msg_path = args.require("message")?;
    let sig_path = args.require("sig")?;
    let message = fs::read(msg_path).map_err(|e| CliError::io(msg_path, e))?;
    let sig_bytes = fs::read(sig_path).map_err(|e| CliError::io(sig_path, e))?;

    let signature = Signature::from_bytes(vk.params(), &sig_bytes)?;
    vk.verify(&message, &signature)?;
    Ok("signature OK".to_string())
}

/// The batched `verify --sigs` body: every decodable signature goes
/// through the selected backend's batch verifier in one call (the HERO
/// backend plans the whole set as a cross-signature stage graph), and
/// the report lists one verdict per file. Any verdict other than
/// `valid` fails the command after the full report is assembled.
fn verify_many(args: &Args, vk: &hero_sphincs::VerifyingKey, sig_list: &str) -> CmdResult {
    let sig_paths: Vec<&str> = sig_list.split(',').filter(|p| !p.is_empty()).collect();
    if sig_paths.is_empty() {
        return Err(CliError::Usage(
            "--sigs needs at least one path".to_string(),
        ));
    }
    let msg_paths: Vec<String> = match (args.get("messages"), args.get("message")) {
        (Some(list), _) => list
            .split(',')
            .filter(|p| !p.is_empty())
            .map(String::from)
            .collect(),
        (None, Some(single)) => vec![single.to_string(); sig_paths.len()],
        (None, None) => {
            return Err(CliError::Usage(
                "verify --sigs needs --messages or --message".to_string(),
            ))
        }
    };
    if msg_paths.len() != sig_paths.len() {
        return Err(CliError::Usage(format!(
            "{} signatures but {} messages",
            sig_paths.len(),
            msg_paths.len()
        )));
    }

    // Decode failures become per-file `malformed` verdicts instead of
    // aborting the batch — same contract as the server's verify-batch.
    let mut msgs: Vec<Vec<u8>> = Vec::with_capacity(sig_paths.len());
    let mut sigs: Vec<Signature> = Vec::new();
    let mut undecodable: Vec<Option<String>> = Vec::with_capacity(sig_paths.len());
    for (sig_path, msg_path) in sig_paths.iter().zip(&msg_paths) {
        msgs.push(fs::read(msg_path).map_err(|e| CliError::io(msg_path, e))?);
        let sig_bytes = fs::read(sig_path).map_err(|e| CliError::io(sig_path, e))?;
        match Signature::from_bytes(vk.params(), &sig_bytes) {
            Ok(sig) => {
                sigs.push(sig);
                undecodable.push(None);
            }
            Err(e) => undecodable.push(Some(e.to_string())),
        }
    }

    let live_msgs: Vec<&[u8]> = msgs
        .iter()
        .zip(&undecodable)
        .filter(|(_, bad)| bad.is_none())
        .map(|(m, _)| m.as_slice())
        .collect();
    let signer = select_backend(args, *vk.params())?;
    let mut outcomes = signer.verify_batch(vk, &live_msgs, &sigs)?.into_iter();

    let mut lines = Vec::with_capacity(sig_paths.len());
    let mut all_valid = true;
    for (sig_path, bad) in sig_paths.iter().zip(&undecodable) {
        let verdict = match bad {
            Some(what) => format!("malformed ({what})"),
            None => outcomes
                .next()
                .expect("one outcome per live signature")
                .to_string(),
        };
        if verdict != "valid" {
            all_valid = false;
        }
        lines.push(format!("{sig_path}: {verdict}"));
    }
    let report = lines.join("\n");
    if all_valid {
        Ok(format!("{report}\nall {} signatures OK", sig_paths.len()))
    } else {
        eprintln!("{report}");
        Err(CliError::Signature(
            hero_sphincs::sign::SignError::VerificationFailed,
        ))
    }
}

fn tune(args: &Args) -> CmdResult {
    let device = parse_device(args.get("device"))?;
    let sets = match args.get("params") {
        Some(label) => vec![parse_params(label)?],
        None => hero_sphincs::Params::fast_sets().to_vec(),
    };
    // The primitive keys the tuning-cache fingerprint (SHA and SHAKE
    // entries never collide); --alg overrides the shape's default.
    let hash = match args.get("alg") {
        Some(label) => parse_alg(label)?,
        None => sets[0].preferred_alg(),
    };
    let opts = hero_sign::TuningOptions {
        smem_policy: if args.flag("dynamic-smem") {
            hero_gpu_sim::SmemPolicy::DynamicMax
        } else {
            hero_gpu_sim::SmemPolicy::Static
        },
        hash,
        ..hero_sign::TuningOptions::default()
    };

    let mut out = format!("Auto Tree Tuning on {} (Algorithm 1)\n", device.name);
    for p in sets {
        // The cached entry point: repeated CLI invocations in one process
        // (and the simulate command below) share the search result.
        let r =
            hero_sign::tune_auto_cached(&device, &p, &opts).map_err(hero_sign::HeroError::from)?;
        let b = r.best;
        out.push_str(&format!(
            "{}: T_set={} N_tree={} F={} U_T={:.3} U_S={:.3} smem={}B relax_depth={} ({} candidates)\n",
            p.name(),
            b.threads_per_set,
            b.trees_per_set,
            b.fused_sets,
            b.thread_utilization,
            b.smem_utilization,
            b.smem_bytes,
            b.relax_depth,
            r.candidates.len(),
        ));
    }
    Ok(out)
}

fn simulate(args: &Args) -> CmdResult {
    let device = parse_device(args.get("device"))?;
    let params = parse_params(args.get("params").unwrap_or("128f"))?;
    let messages = args.get_u32("messages", 1024)?;
    // The *default* batch shrinks to the workload (an explicit --batch
    // larger than --messages is still a validation error).
    let opts = PipelineOptions::new(messages)
        .batch_size(args.get_u32("batch", 512.min(messages.max(1)))?)
        .streams(args.get_u32("streams", 4)? as usize);

    let hero = HeroSigner::hero(device.clone(), params)?;
    let baseline = HeroSigner::baseline(device.clone(), params)?;
    let h = hero.simulate(opts)?;
    let b = baseline.simulate(
        PipelineOptions::new(opts.messages)
            .batch_size(1)
            .streams(device.sm_count as usize),
    )?;
    let sel = hero.selection();

    Ok(format!(
        "device: {}\nparams: {}\nmessages: {} (batch {})\n\
         baseline: {:.2} KOPS ({:.0} us, launch overhead {:.1} us)\n\
         HERO:     {:.2} KOPS ({:.0} us, launch overhead {:.1} us)\n\
         speedup:  {:.2}x   launch-latency reduction: {:.1}x\n\
         SHA-2 paths: FORS={:?} TREE={:?} WOTS+={:?}\n",
        device.name,
        params.name(),
        opts.messages,
        opts.batch_size,
        b.kops,
        b.makespan_us,
        b.launch_overhead_us,
        h.kops,
        h.makespan_us,
        h.launch_overhead_us,
        h.kops / b.kops,
        b.launch_overhead_us / h.launch_overhead_us,
        sel.fors,
        sel.tree,
        sel.wots,
    ))
}

/// Drives the micro-batching [`SignService`] from N closed-loop client
/// threads and reports latency percentiles plus signs/sec, alongside a
/// looped single-message `sign` baseline on the same engine and worker
/// count — the CPU analogue of benchmarking the paper's stream pipeline
/// against per-message launches.
fn throughput(args: &Args) -> CmdResult {
    let smoke = args.flag("smoke");
    let params = if smoke {
        // Reduced shape so CI and quick local runs finish in seconds;
        // labeled in the output so numbers are never read as full-set.
        let mut p = parse_params(args.get("params").unwrap_or("128f"))?;
        p.h = 6;
        p.d = 3;
        p.log_t = 6;
        p.k = 8;
        p
    } else {
        parse_params(args.get("params").unwrap_or("128f"))?
    };
    let clients = args.get_u32("clients", 4)? as usize;
    let requests = args.get_u32("requests", if smoke { 8 } else { 32 })? as usize;
    if clients == 0 {
        return Err(CliError::Usage("--clients must be >= 1".to_string()));
    }
    if requests == 0 {
        return Err(CliError::Usage("--requests must be >= 1".to_string()));
    }

    let signer: Arc<dyn Signer + Send + Sync> = Arc::from(select_backend(args, params)?);
    let mut rng = match args.get("seed") {
        Some(_) => StdRng::seed_from_u64(args.get_u64("seed", 0)?),
        None => StdRng::seed_from_u64(0x4845_524f), // deterministic workload
    };
    let (sk, vk) = signer.keygen(&mut rng)?;

    let mut config = ServiceConfig::default();
    if let Some(v) = args.get("max-batch") {
        config.max_batch = v
            .parse()
            .map_err(|_| CliError::Usage(format!("--max-batch: '{v}' is not a number")))?;
    }
    config.max_wait = Duration::from_micros(args.get_u64("max-wait-us", 500)?);

    // Baseline: one thread looping single-message sign on the same
    // backend (every message pays its own stage-graph fill/drain).
    let total = clients * requests;
    let baseline_msgs: Vec<Vec<u8>> = (0..total)
        .map(|i| format!("throughput baseline {i}").into_bytes())
        .collect();
    let baseline_start = Instant::now();
    for msg in &baseline_msgs {
        signer.sign(&sk, msg)?;
    }
    let baseline_secs = baseline_start.elapsed().as_secs_f64();
    let baseline_rate = total as f64 / baseline_secs;

    // Service: N closed-loop clients share the micro-batcher.
    let service = SignService::start(Arc::clone(&signer), sk.clone(), config)?;
    let service_start = Instant::now();
    let latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|t| {
                let service = &service;
                scope.spawn(move || {
                    let mut lats = Vec::with_capacity(requests);
                    for i in 0..requests {
                        let msg = format!("throughput client {t} request {i}").into_bytes();
                        let begin = Instant::now();
                        let ticket = service.submit(msg).expect("service accepting");
                        let sig = ticket.wait().expect("service signs");
                        lats.push(begin.elapsed());
                        let _ = sig;
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let service_secs = service_start.elapsed().as_secs_f64();
    let service_rate = total as f64 / service_secs;
    let stats = service.stats();
    let summary = hero_sign::stats::LatencySummary::from_unsorted(latencies)
        .expect("at least one request was timed");

    // Spot-check before shutdown: service output verifies under the key.
    let check_msg = b"throughput spot check".to_vec();
    let check_sig = service
        .submit(check_msg.clone())
        .and_then(SignTicket::wait)?;
    vk.verify(&check_msg, &check_sig)?;
    service.shutdown();

    // Hypertree-memoization counters, when the backend has a cache
    // (the reference backend reports none and prints nothing).
    let cache_line = match signer.cache_stats() {
        Some(c) => format!(
            "cache: {} hits / {} misses / {} evictions, {} resident bytes\n",
            c.hits, c.misses, c.evictions, c.resident_bytes
        ),
        None => String::new(),
    };

    Ok(format!(
        "throughput: {}{} | backend {} | {} clients x {} requests\n\
         looped sign (1 thread): {:>10.1} signs/sec\n\
         coalesced service:      {:>10.1} signs/sec  ({:.2}x)\n\
         latency: {}\n\
         batches: {} (largest {}, avg {:.1} msgs/batch)\n{}",
        params.name(),
        if smoke { " (reduced smoke shape)" } else { "" },
        signer.backend(),
        clients,
        requests,
        baseline_rate,
        service_rate,
        service_rate / baseline_rate,
        summary.render_us(),
        stats.batches,
        stats.max_batch_observed,
        stats.completed as f64 / stats.batches.max(1) as f64,
        cache_line,
    ))
}

/// Builds and starts a [`hero_server::Server`] from `serve` options;
/// split from [`serve`] so tests can drive a live server without
/// touching stdin.
pub(crate) fn start_server(args: &Args) -> Result<hero_server::Server, CliError> {
    let keys_dir = args.require("keys")?;
    let workers = match args.get("workers") {
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| CliError::Usage(format!("--workers: '{v}' is not a number")))?,
        ),
        None if args.flag("workers") => {
            return Err(CliError::Usage("--workers requires a value".to_string()))
        }
        None => None,
    };

    let mut service = ServiceConfig::default();
    if let Some(v) = args.get("max-batch") {
        service.max_batch = v
            .parse()
            .map_err(|_| CliError::Usage(format!("--max-batch: '{v}' is not a number")))?;
    }
    service.max_wait = Duration::from_micros(args.get_u64("max-wait-us", 500)?);
    service.queue_depth = args.get_u32("queue-depth", 1024)? as usize;

    let config = hero_server::ServerConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:0").to_string(),
        metrics_addr: args.get("metrics-addr").map(str::to_string),
        service,
        per_tenant_inflight: args.get_u32("inflight", 256)? as usize,
        keys_dir: Some(std::path::PathBuf::from(keys_dir)),
        ..hero_server::ServerConfig::default()
    };

    let factory = hero_server::hero_engine_factory(workers)?;
    let keystore = hero_server::KeyStore::new();
    keystore
        .load_dir(std::path::Path::new(keys_dir))
        .map_err(hero_server::ClientError::Wire)?;
    Ok(hero_server::Server::start(factory, keystore, config)?)
}

/// Runs the network server until stdin closes, then drains gracefully.
fn serve(args: &Args) -> CmdResult {
    // Activate the HERO_FAULTS schedule (if any) before the server
    // starts accepting, so every request sees the same fault plan.
    hero_sign::faults::init_from_env().map_err(|e| CliError::Usage(format!("HERO_FAULTS: {e}")))?;
    // Resolve the hash ISA ladder eagerly: a typo in HERO_HASH_TIER is a
    // startup usage error (with the valid names listed), not a silent
    // warning buried in the first request's logs.
    hero_sphincs::tier::init_from_env()
        .map_err(|e| CliError::Usage(format!("{}: {e}", hero_sphincs::tier::ENV_VAR)))?;
    let server = start_server(args)?;
    if let Some(plan) = hero_sign::faults::describe_active() {
        println!("fault injection ACTIVE: {plan}");
    }
    let tenants = server.tenants();
    println!(
        "hero-server listening on {} ({} tenants: {})",
        server.local_addr(),
        tenants.len(),
        tenants.join(", "),
    );
    println!("hash tiers: {}", hero_sphincs::tier::description());
    if let Some(addr) = server.metrics_addr() {
        println!("metrics on {addr} (plaintext, connect-and-read)");
    }
    println!("close stdin (Ctrl-D) to drain and exit");
    // Blocking on stdin keeps the command testable (tests use
    // `start_server`) and gives operators a clean shutdown signal
    // without pulling in signal handling.
    let mut sink = String::new();
    while std::io::stdin()
        .read_line(&mut sink)
        .map_err(|e| CliError::io("stdin", e))?
        > 0
    {
        sink.clear();
    }
    server.shutdown();
    Ok("drained and stopped".to_string())
}

/// Signs a file over the network against a running `serve`.
fn remote_sign(args: &Args) -> CmdResult {
    let addr = args.require("addr")?;
    let tenant = args.require("tenant")?;
    let msg_path = args.require("message")?;
    let out = args.require("out")?;

    let message = fs::read(msg_path).map_err(|e| CliError::io(msg_path, e))?;
    let mut client = hero_server::Client::connect(addr)?;
    if let Some(ms) = args.get("timeout-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| CliError::Usage(format!("--timeout-ms: '{ms}' is not a number")))?;
        client.set_io_timeout(Some(Duration::from_millis(ms)))?;
    }
    let retries = args.get_u32("retries", 0)?;
    if retries > 0 {
        client.set_retry(Some(hero_server::client::RetryPolicy {
            max_attempts: retries + 1,
            ..hero_server::client::RetryPolicy::default()
        }));
    }
    let deadline_ms = match args.get("deadline-ms") {
        Some(v) => Some(
            v.parse::<u32>()
                .map_err(|_| CliError::Usage(format!("--deadline-ms: '{v}' is not a number")))?,
        ),
        None => None,
    };
    let begin = Instant::now();
    let sig = match deadline_ms {
        Some(ms) => client.sign_with_deadline(tenant, &message, ms)?,
        None => client.sign(tenant, &message)?,
    };
    let elapsed = begin.elapsed();
    // Round-trip check by default: the server verifies its own output
    // under the tenant key before we trust the bytes.
    let verified = if args.flag("no-verify") {
        false
    } else {
        if !client.verify(tenant, &message, &sig)? {
            return Err(CliError::Signature(
                hero_sphincs::sign::SignError::VerificationFailed,
            ));
        }
        true
    };
    fs::write(out, &sig).map_err(|e| CliError::io(out, e))?;
    Ok(format!(
        "signed {} bytes as tenant '{tenant}' -> {} byte signature at {out} \
         ({:.1} ms round trip{})",
        message.len(),
        sig.len(),
        elapsed.as_secs_f64() * 1e3,
        if verified { ", server-verified" } else { "" },
    ))
}

fn devices() -> CmdResult {
    let mut out = String::from("device           arch     SMs  cores  MHz   smem/block(dyn)\n");
    for d in hero_gpu_sim::device::catalog() {
        out.push_str(&format!(
            "{:<16} {:<8} {:>4} {:>6} {:>5} {:>8} KiB\n",
            d.name,
            d.arch.to_string(),
            d.sm_count,
            d.total_cores(),
            d.base_clock_mhz,
            d.smem_dynamic_max_per_block / 1024,
        ));
    }
    Ok(out)
}

/// Re-exported for tests: signs with an explicit alg through the keyfile
/// path end to end in memory.
#[doc(hidden)]
pub fn roundtrip_in_memory(params_label: &str, alg: HashAlg, msg: &[u8]) -> Result<bool, CliError> {
    let params = parse_params(params_label)?;
    let text = keyfile::encode(
        &params,
        alg,
        &vec![7u8; params.n],
        &vec![8u8; params.n],
        &vec![9u8; params.n],
    );
    let (sk, vk) = keyfile::decode(&text)?;
    let sig = sk.sign(msg);
    Ok(vk.verify(msg, &sig).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn unknown_command_mentions_usage() {
        let err = run(&parse(&["frobnicate"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        assert!(err.to_string().contains("USAGE"));
    }

    #[test]
    fn help_prints_usage() {
        assert!(run(&parse(&["help"])).unwrap().contains("COMMANDS"));
    }

    #[test]
    fn devices_lists_catalog() {
        let out = devices().unwrap();
        assert!(out.contains("RTX 4090") && out.contains("H100"));
    }

    #[test]
    fn tune_runs_for_default_sets() {
        let out = tune(&parse(&["tune"])).unwrap();
        assert!(out.contains("SPHINCS+-128f") && out.contains("F=3"));
    }

    #[test]
    fn tune_s_set_reports_relax_depth() {
        let out = tune(&parse(&["tune", "--params", "128s"])).unwrap();
        assert!(out.contains("relax_depth=2"), "{out}");
    }

    #[test]
    fn tune_accepts_shake_sets_and_alg() {
        // The search is shape-driven, so the SHAKE twin of 128f lands on
        // the same Table IV winner — under a distinct cache fingerprint.
        let out = tune(&parse(&["tune", "--params", "shake-128f"])).unwrap();
        assert!(out.contains("SPHINCS+-SHAKE-128f"), "{out}");
        assert!(out.contains("F=3"), "{out}");
        let out = tune(&parse(&["tune", "--params", "128f", "--alg", "shake256"])).unwrap();
        assert!(out.contains("F=3"), "{out}");
        let err = tune(&parse(&["tune", "--alg", "whirlpool"])).unwrap_err();
        assert!(err.to_string().contains("shake256"), "{err}");
    }

    #[test]
    fn shake_roundtrip_in_memory() {
        // Full-shape SPHINCS+-SHAKE-128f sign + verify through the
        // keyfile path (keygen itself only computes the top subtree).
        assert!(roundtrip_in_memory("shake-128f", HashAlg::Shake256, b"shake cli").unwrap());
    }

    #[test]
    fn keygen_defaults_shake_sets_to_shake256() {
        let dir = std::env::temp_dir().join(format!("hero-cli-shake-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let key = dir.join("key.txt");
        keygen(&parse(&[
            "keygen",
            "--params",
            "shake-128f",
            "--seed",
            "7",
            "--out",
            key.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&key).unwrap();
        assert!(text.contains("alg: shake256"), "{text}");
        assert!(text.contains("params: SPHINCS+-SHAKE-128f"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn simulate_reports_speedup() {
        let out = simulate(&parse(&["simulate", "--messages", "256", "--batch", "128"])).unwrap();
        assert!(out.contains("speedup"), "{out}");
        assert!(out.contains("HERO"));
    }

    #[test]
    fn throughput_smoke_reports_percentiles_and_rates() {
        let out = throughput(&parse(&[
            "throughput",
            "--smoke",
            "--clients",
            "2",
            "--requests",
            "3",
            "--workers",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("signs/sec"), "{out}");
        assert!(out.contains("p99"), "{out}");
        assert!(out.contains("reduced smoke shape"), "{out}");
        assert!(out.contains("batches:"), "{out}");
        // The default backend is the hero engine, whose hypertree cache
        // reports its counters on the summary.
        assert!(out.contains("cache:"), "{out}");
        assert!(out.contains("hits"), "{out}");
    }

    #[test]
    fn throughput_rejects_zero_clients_and_requests() {
        for bad in [
            vec!["throughput", "--smoke", "--clients", "0"],
            vec!["throughput", "--smoke", "--requests", "0"],
        ] {
            let err = throughput(&parse(&bad)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{bad:?}: {err}");
        }
    }

    #[test]
    fn simulate_default_batch_shrinks_to_small_workloads() {
        // No --batch flag: the 512 default must not trip the new
        // batch_size > messages validation for small --messages.
        let out = simulate(&parse(&["simulate", "--messages", "100"])).unwrap();
        assert!(out.contains("batch 100"), "{out}");
        // An explicit oversized --batch is still a typed error.
        let err =
            simulate(&parse(&["simulate", "--messages", "100", "--batch", "512"])).unwrap_err();
        assert!(
            matches!(
                err,
                CliError::Engine(hero_sign::HeroError::InvalidOptions(_))
            ),
            "{err}"
        );
    }

    #[test]
    fn simulate_rejects_zero_messages() {
        let err = simulate(&parse(&["simulate", "--messages", "0"])).unwrap_err();
        assert!(matches!(
            err,
            CliError::Engine(hero_sign::HeroError::InvalidOptions(_))
        ));
        assert!(err.to_string().contains("messages"));
    }

    #[test]
    fn unknown_backend_rejected() {
        let err = select_backend(
            &parse(&["sign", "--backend", "fpga"]),
            hero_sphincs::Params::sphincs_128f(),
        )
        .err()
        .expect("unknown backend must fail");
        assert!(err.to_string().contains("fpga"));
    }

    #[test]
    fn file_workflow_keygen_sign_verify() {
        let dir = std::env::temp_dir().join(format!("hero-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let key = dir.join("key.txt");
        let msg = dir.join("msg.bin");
        let sig = dir.join("sig.bin");
        std::fs::write(&msg, b"cli end to end").unwrap();

        // 128s keygen would take minutes on one CPU; 128f's top subtree is
        // 8 wots leaves — fast enough for a test.
        let out = keygen(&parse(&[
            "keygen",
            "--params",
            "128f",
            "--seed",
            "42",
            "--out",
            key.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("public root"));

        let out = sign(&parse(&[
            "sign",
            "--key",
            key.to_str().unwrap(),
            "--message",
            msg.to_str().unwrap(),
            "--out",
            sig.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("17088 byte"), "{out}");

        let out = verify(&parse(&[
            "verify",
            "--key",
            key.to_str().unwrap(),
            "--message",
            msg.to_str().unwrap(),
            "--sig",
            sig.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(out, "signature OK");

        // The reference backend must produce an equally valid signature.
        let ref_sig = dir.join("ref-sig.bin");
        let out = sign(&parse(&[
            "sign",
            "--backend",
            "reference",
            "--key",
            key.to_str().unwrap(),
            "--message",
            msg.to_str().unwrap(),
            "--out",
            ref_sig.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("reference-cpu"), "{out}");
        assert_eq!(
            std::fs::read(&sig).unwrap(),
            std::fs::read(&ref_sig).unwrap()
        );

        // Public-key-only verification path (no secrets on the verifier).
        let pubkey = dir.join("pub.txt");
        let out = export_pubkey(&parse(&[
            "export-pubkey",
            "--key",
            key.to_str().unwrap(),
            "--out",
            pubkey.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("public key"));
        let pub_text = std::fs::read_to_string(&pubkey).unwrap();
        assert!(
            !pub_text.contains("sk_seed"),
            "pubkey file must hold no secrets"
        );
        let out = verify(&parse(&[
            "verify",
            "--pubkey",
            pubkey.to_str().unwrap(),
            "--message",
            msg.to_str().unwrap(),
            "--sig",
            sig.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(out, "signature OK");

        // Tamper and re-verify.
        let mut bytes = std::fs::read(&sig).unwrap();
        bytes[100] ^= 1;
        std::fs::write(&sig, &bytes).unwrap();
        let err = verify(&parse(&[
            "verify",
            "--key",
            key.to_str().unwrap(),
            "--message",
            msg.to_str().unwrap(),
            "--sig",
            sig.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Signature(_)));
        assert!(err.to_string().contains("INVALID"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_sigs_batch_reports_per_file_verdicts() {
        let dir = std::env::temp_dir().join(format!("hero-cli-vbatch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = hero_sphincs::Params::sphincs_128f();
        let text = keyfile::encode(&p, HashAlg::Sha256, &[21; 16], &[22; 16], &[23; 16]);
        let key = dir.join("key.txt");
        std::fs::write(&key, &text).unwrap();
        let (sk, _) = keyfile::decode(&text).unwrap();

        let mut sig_paths = Vec::new();
        let mut msg_paths = Vec::new();
        for i in 0..2 {
            let msg = dir.join(format!("m{i}.bin"));
            let sig = dir.join(format!("s{i}.sig"));
            let body = format!("batched verify message {i}");
            std::fs::write(&msg, &body).unwrap();
            std::fs::write(&sig, sk.sign(body.as_bytes()).to_bytes(&p)).unwrap();
            msg_paths.push(msg.to_str().unwrap().to_string());
            sig_paths.push(sig.to_str().unwrap().to_string());
        }

        // All valid, paired messages, through the planned hero backend.
        let out = verify(&parse(&[
            "verify",
            "--key",
            key.to_str().unwrap(),
            "--sigs",
            &sig_paths.join(","),
            "--messages",
            &msg_paths.join(","),
            "--workers",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("all 2 signatures OK"), "{out}");
        assert!(
            out.contains("s0.sig: valid") && out.contains("s1.sig: valid"),
            "{out}"
        );

        // One shared --message over two identical signature files.
        let out = verify(&parse(&[
            "verify",
            "--backend",
            "reference",
            "--key",
            key.to_str().unwrap(),
            "--sigs",
            &format!("{},{}", sig_paths[0], sig_paths[0]),
            "--message",
            &msg_paths[0],
        ]))
        .unwrap();
        assert!(out.contains("all 2 signatures OK"), "{out}");

        // Tampered second signature: the command fails with the typed
        // verification error after reporting per-file verdicts.
        let mut bytes = std::fs::read(&sig_paths[1]).unwrap();
        bytes[64] ^= 1;
        std::fs::write(&sig_paths[1], &bytes).unwrap();
        // A truncated first file must come back malformed, not abort.
        std::fs::write(&sig_paths[0], &bytes[..10]).unwrap();
        let err = verify(&parse(&[
            "verify",
            "--backend",
            "reference",
            "--key",
            key.to_str().unwrap(),
            "--sigs",
            &sig_paths.join(","),
            "--messages",
            &msg_paths.join(","),
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Signature(_)), "{err}");

        // Count mismatch is a usage error before any verification.
        let err = verify(&parse(&[
            "verify",
            "--key",
            key.to_str().unwrap(),
            "--sigs",
            &sig_paths.join(","),
            "--messages",
            &msg_paths[0],
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_and_remote_sign_round_trip() {
        let dir = std::env::temp_dir().join(format!("hero-cli-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = hero_sphincs::Params::sphincs_128f();
        let text = keyfile::encode(&p, HashAlg::Sha256, &[11; 16], &[12; 16], &[13; 16]);
        std::fs::write(dir.join("validator-1.key"), &text).unwrap();
        let msg = dir.join("msg.bin");
        let sig = dir.join("sig.bin");
        std::fs::write(&msg, b"remote sign via cli").unwrap();

        let server = start_server(&parse(&[
            "serve",
            "--keys",
            dir.to_str().unwrap(),
            "--workers",
            "2",
        ]))
        .unwrap();
        assert_eq!(server.tenants(), vec!["validator-1".to_string()]);

        let out = remote_sign(&parse(&[
            "remote-sign",
            "--addr",
            &server.local_addr().to_string(),
            "--tenant",
            "validator-1",
            "--message",
            msg.to_str().unwrap(),
            "--out",
            sig.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("server-verified"), "{out}");

        // The bytes on disk verify locally under the same key file.
        let (_, vk) = keyfile::decode(&text).unwrap();
        let sig_bytes = std::fs::read(&sig).unwrap();
        let signature = Signature::from_bytes(vk.params(), &sig_bytes).unwrap();
        vk.verify(b"remote sign via cli", &signature).unwrap();

        // The robustness knobs compose on the same path: a generous
        // deadline, explicit socket timeout, and retry budget still sign.
        let out = remote_sign(&parse(&[
            "remote-sign",
            "--addr",
            &server.local_addr().to_string(),
            "--tenant",
            "validator-1",
            "--message",
            msg.to_str().unwrap(),
            "--out",
            sig.to_str().unwrap(),
            "--deadline-ms",
            "30000",
            "--timeout-ms",
            "30000",
            "--retries",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("server-verified"), "{out}");

        // Unknown tenants come back as typed remote errors.
        let err = remote_sign(&parse(&[
            "remote-sign",
            "--addr",
            &server.local_addr().to_string(),
            "--tenant",
            "nobody",
            "--message",
            msg.to_str().unwrap(),
            "--out",
            sig.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Remote(_)), "{err:?}");
        assert!(err.to_string().contains("nobody"), "{err}");

        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_requires_a_keys_dir() {
        let err = start_server(&parse(&["serve"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        let err = start_server(&parse(&["serve", "--keys", "/definitely/not/here"])).unwrap_err();
        assert!(matches!(err, CliError::Remote(_)), "{err:?}");
    }

    #[test]
    fn verify_without_any_key_rejected() {
        let err = verify(&parse(&["verify", "--message", "m", "--sig", "s"])).unwrap_err();
        assert!(err.to_string().contains("--pubkey"));
    }
}
