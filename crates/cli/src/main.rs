//! `hero-sign` command-line entry point.

use hero_sign_cli::args::Args;
use hero_sign_cli::commands;

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    if tokens.is_empty() {
        eprintln!("{}", hero_sign_cli::USAGE);
        std::process::exit(2);
    }
    match Args::parse(tokens).and_then(|args| commands::run(&args)) {
        Ok(output) => {
            // Ignore EPIPE so `hero-sign ... | head` exits quietly
            // instead of panicking on a closed stdout.
            use std::io::Write;
            let _ = writeln!(std::io::stdout(), "{output}");
        }
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(error.exit_code());
        }
    }
}
