//! Per-key hypertree memoization: a sharded, capacity- and byte-bounded
//! LRU cache of XMSS subtree node pyramids.
//!
//! ## Why memoize
//!
//! A production signer signs millions of times with the *same* key, yet
//! every hypertree subtree a signature touches depends only on the key
//! material and its `(layer, tree)` coordinates — never on the message
//! (§III-A's independence argument, read in the other direction). The
//! upper layers make this brutal: layer `l` has `2^(h − (l+1)·h')`
//! distinct trees, so the top layer is *one* tree rebuilt from scratch on
//! every signature, and each rebuild pays `2^h'` WOTS+ leaf generations —
//! the register-hungry routine of Table III and the dominant cost of
//! `TREE_Sign`. Memoizing the retained node pyramid
//! ([`hero_sphincs::merkle::TreeLevels`]: WOTS+ roots at the bottom,
//! internal nodes above) turns steady-state signing into FORS plus WOTS+
//! chains plus whatever bottom layers actually churn.
//!
//! ## Structure
//!
//! - **Key**: a 64-bit FNV-1a fingerprint over the hash algorithm, the
//!   shape-critical parameter fields (`n`, `h`, `d`, `log_t`, `k`), and
//!   the secret/public seeds. The fingerprint picks the shard and the map
//!   slot; every hit then compares the *full* identity (algorithm,
//!   parameters, both seeds), so a fingerprint collision degrades to a
//!   miss — it can never serve another key's nodes.
//! - **Value**: per key, a map from `(layer, tree_idx)` to the subtree's
//!   `Arc<TreeLevels>`; slicing a root + authentication path out of it is
//!   byte-identical to a fresh treehash.
//! - **Bounds**: [`CacheConfig::max_keys`] and [`CacheConfig::max_bytes`]
//!   are enforced by exact least-recently-used eviction of whole keys
//!   (recency is a global logical clock bumped on every touch). Eviction
//!   only ever returns a key to cold-fill cost — it cannot fail a sign.
//! - **Layer policy**: a layer is memoized only while its whole layer
//!   holds at most [`CacheConfig::max_trees_per_layer`] trees; bottom
//!   layers of full-size parameter sets draw an effectively fresh tree
//!   every signature and would only pollute the LRU.
//!
//! The chaos point [`crate::faults::HYPERTREE_CACHE`] threads through
//! both sides: at fill time a fired fail spec drops the freshly built
//! subtree, at hit time it force-evicts the key and serves a miss.

use crate::error::HeroError;

use hero_sphincs::hash::HashAlg;
use hero_sphincs::merkle::TreeLevels;
use hero_sphincs::params::Params;
use hero_sphincs::sign::SigningKey;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Shard count; fingerprints spread across shards by their high bits.
const SHARDS: usize = 16;

/// Knobs of the per-key hypertree memoization layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Master switch; `false` makes every lookup a guaranteed miss and
    /// every fill a no-op (pure cold-path signing).
    pub enabled: bool,
    /// Most keys resident at once; the least-recently-used key is
    /// evicted beyond this.
    pub max_keys: usize,
    /// Bound on total retained node bytes across all keys; enforced by
    /// LRU eviction of whole keys.
    pub max_bytes: usize,
    /// A hypertree layer is memoized only while its whole layer has at
    /// most this many trees (`2^(h − (l+1)·h')`). Bottom layers of
    /// full-size parameter sets draw a fresh random tree almost every
    /// signature — caching them is pure churn.
    pub max_trees_per_layer: u64,
    /// Subtree budget of an explicit warm ([`crate::plan::warm_cache`]):
    /// layers are pre-filled top-down while the cumulative tree count
    /// stays within this bound.
    pub warm_trees: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            max_keys: 1 << 20,
            max_bytes: 256 << 20,
            max_trees_per_layer: 4096,
            warm_trees: 64,
        }
    }
}

impl CacheConfig {
    /// A disabled cache: every sign pays the cold path.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }

    /// Checks the configuration for unusable values.
    ///
    /// # Errors
    ///
    /// [`HeroError::InvalidOptions`] naming the offending field (zero
    /// `max_keys` or `max_bytes` on an enabled cache).
    pub fn validate(&self) -> Result<(), HeroError> {
        if self.enabled && self.max_keys == 0 {
            return Err(HeroError::InvalidOptions(
                "cache max_keys must be >= 1 (or disable the cache)".to_string(),
            ));
        }
        if self.enabled && self.max_bytes == 0 {
            return Err(HeroError::InvalidOptions(
                "cache max_bytes must be >= 1 (or disable the cache)".to_string(),
            ));
        }
        Ok(())
    }
}

/// Snapshot of the cache counters ([`HypertreeCache::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Subtree lookups served from retained nodes.
    pub hits: u64,
    /// Subtree lookups that fell through to a cold fill.
    pub misses: u64,
    /// Keys evicted (LRU bound, memory bound, or forced by chaos).
    pub evictions: u64,
    /// Retained node bytes currently resident.
    pub resident_bytes: u64,
    /// Keys currently resident.
    pub resident_keys: u64,
    /// Subtrees currently resident across all keys.
    pub resident_subtrees: u64,
}

impl CacheStats {
    /// Accumulates `other` into `self` — for aggregating the counters of
    /// several engines' caches onto one metrics surface.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.resident_bytes += other.resident_bytes;
        self.resident_keys += other.resident_keys;
        self.resident_subtrees += other.resident_subtrees;
    }
}

/// Trees in `layer` of `params`' hypertree: `2^(h − (layer+1)·h')`,
/// saturating at `u64::MAX` for the unboundedly wide bottom layers of
/// full-size parameter sets.
pub fn layer_tree_count(params: &Params, layer: u32) -> u64 {
    let bits = params
        .h
        .saturating_sub((layer as usize + 1) * params.tree_height());
    if bits >= 64 {
        u64::MAX
    } else {
        1u64 << bits
    }
}

/// Full identity of a cached key, compared on every hit so a fingerprint
/// collision can only ever read as a miss.
#[derive(Clone, Debug, PartialEq, Eq)]
struct KeyIdent {
    alg: HashAlg,
    n: usize,
    h: usize,
    d: usize,
    log_t: usize,
    k: usize,
    sk_seed: Vec<u8>,
    pk_seed: Vec<u8>,
}

impl KeyIdent {
    fn of(sk: &SigningKey) -> Self {
        let p = sk.params();
        Self {
            alg: sk.alg(),
            n: p.n,
            h: p.h,
            d: p.d,
            log_t: p.log_t,
            k: p.k,
            sk_seed: sk.sk_seed().to_vec(),
            pk_seed: sk.pk_seed().to_vec(),
        }
    }
}

/// One resident key: its subtrees plus LRU bookkeeping.
struct KeyEntry {
    ident: KeyIdent,
    subtrees: HashMap<(u32, u64), Arc<TreeLevels>>,
    bytes: usize,
    last_used: u64,
}

/// 64-bit FNV-1a fingerprint of a signing key's cache identity.
pub fn fingerprint(sk: &SigningKey) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    let p = sk.params();
    eat(&[match sk.alg() {
        HashAlg::Sha256 => 1,
        HashAlg::Sha512 => 2,
        HashAlg::Shake256 => 3,
    }]);
    for field in [p.n, p.h, p.d, p.log_t, p.k] {
        eat(&(field as u64).to_le_bytes());
    }
    eat(sk.sk_seed());
    eat(sk.pk_seed());
    hash
}

/// The sharded per-key subtree store — see the module docs for the
/// design. Shared by all clones of one engine; thread-safe.
pub struct HypertreeCache {
    config: CacheConfig,
    shards: Vec<Mutex<HashMap<u64, KeyEntry>>>,
    /// Global logical clock for exact LRU recency.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    resident_bytes: AtomicU64,
    resident_keys: AtomicU64,
    resident_subtrees: AtomicU64,
}

impl std::fmt::Debug for HypertreeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HypertreeCache")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

impl HypertreeCache {
    /// Creates a cache with `config` (assumed validated by the builder).
    pub fn new(config: CacheConfig) -> Self {
        Self {
            config,
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            resident_bytes: AtomicU64::new(0),
            resident_keys: AtomicU64::new(0),
            resident_subtrees: AtomicU64::new(0),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Whether the cache participates in signing at all.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// Whether `layer` of `params` is memoizable under the per-layer
    /// tree-count policy.
    pub fn caches_layer(&self, params: &Params, layer: u32) -> bool {
        self.config.enabled && layer_tree_count(params, layer) <= self.config.max_trees_per_layer
    }

    /// The `(layer, tree_idx)` pre-fill set an explicit warm covers:
    /// layers top-down while the cumulative tree count stays within
    /// [`CacheConfig::warm_trees`] and the layer is memoizable.
    pub fn warm_coordinates(&self, params: &Params) -> Vec<(u32, u64)> {
        if !self.config.enabled {
            return Vec::new();
        }
        let mut coords = Vec::new();
        let mut budget = self.config.warm_trees;
        for layer in (0..params.d as u32).rev() {
            let trees = layer_tree_count(params, layer);
            if trees > budget || !self.caches_layer(params, layer) {
                break;
            }
            for tree in 0..trees {
                coords.push((layer, tree));
            }
            budget -= trees;
        }
        coords
    }

    /// Mutex recovery: a worker killed by chaos while holding a shard
    /// poisons the lock, but shard contents are always internally
    /// consistent (accounting lives in atomics updated outside the
    /// critical sections), so the poison is cleared and the data reused.
    fn lock_shard(&self, index: usize) -> MutexGuard<'_, HashMap<u64, KeyEntry>> {
        let shard = &self.shards[index];
        shard.lock().unwrap_or_else(|poisoned| {
            shard.clear_poison();
            poisoned.into_inner()
        })
    }

    fn shard_of(fp: u64) -> usize {
        (fp >> 48) as usize % SHARDS
    }

    /// Looks up one subtree for `sk`, bumping the key's recency. Counts a
    /// hit or a miss; a fired [`crate::faults::HYPERTREE_CACHE`] fail
    /// spec on the hit path force-evicts the key and serves a miss.
    pub fn get(&self, sk: &SigningKey, layer: u32, tree_idx: u64) -> Option<Arc<TreeLevels>> {
        if !self.config.enabled {
            return None;
        }
        let fp = fingerprint(sk);
        let found = {
            let mut shard = self.lock_shard(Self::shard_of(fp));
            shard
                .get_mut(&fp)
                .filter(|entry| entry.ident == KeyIdent::of(sk))
                .and_then(|entry| {
                    entry.last_used = self.clock.fetch_add(1, Ordering::Relaxed);
                    entry.subtrees.get(&(layer, tree_idx)).cloned()
                })
        };
        match found {
            Some(levels) => {
                if crate::faults::fire(crate::faults::HYPERTREE_CACHE) {
                    self.evict_fingerprint(fp);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(levels)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Whether a subtree is resident, without touching recency or the
    /// hit/miss counters (used to skip redundant warm fills).
    pub fn contains(&self, sk: &SigningKey, layer: u32, tree_idx: u64) -> bool {
        if !self.config.enabled {
            return false;
        }
        let fp = fingerprint(sk);
        let shard = self.lock_shard(Self::shard_of(fp));
        shard
            .get(&fp)
            .filter(|entry| entry.ident == KeyIdent::of(sk))
            .is_some_and(|entry| entry.subtrees.contains_key(&(layer, tree_idx)))
    }

    /// Stores one freshly built subtree for `sk`, then enforces the key
    /// and byte bounds by LRU eviction. A fired
    /// [`crate::faults::HYPERTREE_CACHE`] fail spec drops the fill (the
    /// signature already has the fresh nodes; the next sign pays cold).
    pub fn insert(&self, sk: &SigningKey, layer: u32, tree_idx: u64, levels: Arc<TreeLevels>) {
        if !self.config.enabled || crate::faults::fire(crate::faults::HYPERTREE_CACHE) {
            return;
        }
        let fp = fingerprint(sk);
        let bytes = levels.byte_len();
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        {
            let mut shard = self.lock_shard(Self::shard_of(fp));
            let entry = match shard.entry(fp) {
                std::collections::hash_map::Entry::Occupied(slot) => {
                    let entry = slot.into_mut();
                    if entry.ident != KeyIdent::of(sk) {
                        // Fingerprint collision: the resident key loses
                        // its slot (counted as an eviction).
                        self.resident_bytes
                            .fetch_sub(entry.bytes as u64, Ordering::Relaxed);
                        self.resident_subtrees
                            .fetch_sub(entry.subtrees.len() as u64, Ordering::Relaxed);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                        *entry = KeyEntry {
                            ident: KeyIdent::of(sk),
                            subtrees: HashMap::new(),
                            bytes: 0,
                            last_used: now,
                        };
                    }
                    entry
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    self.resident_keys.fetch_add(1, Ordering::Relaxed);
                    slot.insert(KeyEntry {
                        ident: KeyIdent::of(sk),
                        subtrees: HashMap::new(),
                        bytes: 0,
                        last_used: now,
                    })
                }
            };
            entry.last_used = now;
            if entry.subtrees.insert((layer, tree_idx), levels).is_none() {
                entry.bytes += bytes;
                self.resident_bytes
                    .fetch_add(bytes as u64, Ordering::Relaxed);
                self.resident_subtrees.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.enforce_bounds();
    }

    /// Evicts least-recently-used keys until both bounds hold. Never
    /// fails: in the worst case the cache empties and signing is cold.
    fn enforce_bounds(&self) {
        loop {
            let over_keys =
                self.resident_keys.load(Ordering::Relaxed) > self.config.max_keys as u64;
            let over_bytes =
                self.resident_bytes.load(Ordering::Relaxed) > self.config.max_bytes as u64;
            if (!over_keys && !over_bytes) || !self.evict_lru() {
                return;
            }
        }
    }

    /// Removes the globally least-recently-used key; `false` when empty.
    fn evict_lru(&self) -> bool {
        let mut victim: Option<(usize, u64, u64)> = None;
        for index in 0..SHARDS {
            let shard = self.lock_shard(index);
            for (fp, entry) in shard.iter() {
                if victim.is_none_or(|(_, _, last)| entry.last_used < last) {
                    victim = Some((index, *fp, entry.last_used));
                }
            }
        }
        let Some((index, fp, _)) = victim else {
            return false;
        };
        let removed = self.lock_shard(index).remove(&fp);
        match removed {
            Some(entry) => {
                self.book_eviction(&entry);
                true
            }
            // A racing evictor got there first; report progress anyway.
            None => true,
        }
    }

    /// Forced eviction of one key (the chaos path).
    fn evict_fingerprint(&self, fp: u64) {
        let removed = self.lock_shard(Self::shard_of(fp)).remove(&fp);
        if let Some(entry) = removed {
            self.book_eviction(&entry);
        }
    }

    fn book_eviction(&self, entry: &KeyEntry) {
        self.resident_keys.fetch_sub(1, Ordering::Relaxed);
        self.resident_bytes
            .fetch_sub(entry.bytes as u64, Ordering::Relaxed);
        self.resident_subtrees
            .fetch_sub(entry.subtrees.len() as u64, Ordering::Relaxed);
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
            resident_keys: self.resident_keys.load(Ordering::Relaxed),
            resident_subtrees: self.resident_subtrees.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_sphincs::address::{Address, AddressType};
    use hero_sphincs::hash::HashCtx;
    use hero_sphincs::merkle;

    fn tiny_params() -> Params {
        let mut p = Params::sphincs_128f();
        p.h = 6;
        p.d = 3;
        p.log_t = 4;
        p.k = 8;
        p
    }

    fn key(seed: u8) -> SigningKey {
        let p = tiny_params();
        hero_sphincs::keygen_from_seeds(
            p,
            vec![seed; p.n],
            vec![seed + 1; p.n],
            vec![seed + 2; p.n],
        )
        .0
    }

    fn levels_for(sk: &SigningKey, layer: u32, tree: u64) -> Arc<TreeLevels> {
        let ctx = HashCtx::with_alg(*sk.params(), sk.pk_seed(), sk.alg());
        let mut adrs = Address::new();
        adrs.set_layer(layer);
        adrs.set_tree(tree);
        adrs.set_type(AddressType::Tree);
        let n = sk.params().n;
        Arc::new(merkle::treehash_levels(
            &ctx,
            sk.params().tree_height(),
            &adrs,
            0,
            |buf| {
                for (i, slot) in buf.chunks_exact_mut(n).enumerate() {
                    slot.fill(i as u8);
                }
            },
        ))
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = HypertreeCache::new(CacheConfig::default());
        let sk = key(10);
        assert!(cache.get(&sk, 2, 0).is_none());
        let levels = levels_for(&sk, 2, 0);
        cache.insert(&sk, 2, 0, Arc::clone(&levels));
        assert_eq!(cache.get(&sk, 2, 0).as_deref(), Some(&*levels));
        assert!(cache.contains(&sk, 2, 0));
        assert!(!cache.contains(&sk, 2, 1));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
        assert_eq!(s.resident_keys, 1);
        assert_eq!(s.resident_subtrees, 1);
        assert_eq!(s.resident_bytes, levels.byte_len() as u64);
    }

    #[test]
    fn disabled_cache_is_inert() {
        let cache = HypertreeCache::new(CacheConfig::disabled());
        let sk = key(11);
        cache.insert(&sk, 2, 0, levels_for(&sk, 2, 0));
        assert!(cache.get(&sk, 2, 0).is_none());
        assert!(!cache.caches_layer(sk.params(), 2));
        assert!(cache.warm_coordinates(sk.params()).is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn keys_do_not_alias() {
        let cache = HypertreeCache::new(CacheConfig::default());
        let (a, b) = (key(20), key(30));
        cache.insert(&a, 2, 0, levels_for(&a, 2, 0));
        assert!(cache.get(&b, 2, 0).is_none());
        assert_eq!(cache.stats().resident_keys, 1);
        cache.insert(&b, 2, 0, levels_for(&b, 2, 0));
        assert_ne!(
            cache.get(&a, 2, 0).unwrap().root(),
            cache.get(&b, 2, 0).unwrap().root()
        );
    }

    #[test]
    fn key_bound_evicts_exactly_the_lru_key() {
        let cache = HypertreeCache::new(CacheConfig {
            max_keys: 3,
            ..CacheConfig::default()
        });
        let keys: Vec<SigningKey> = (0..4).map(|i| key(40 + i * 5)).collect();
        for sk in &keys[..3] {
            cache.insert(sk, 2, 0, levels_for(sk, 2, 0));
        }
        // Touch key 0 so key 1 becomes the LRU.
        assert!(cache.get(&keys[0], 2, 0).is_some());
        assert_eq!(cache.stats().evictions, 0);
        cache.insert(&keys[3], 2, 0, levels_for(&keys[3], 2, 0));
        let s = cache.stats();
        assert_eq!(s.evictions, 1, "exactly one eviction");
        assert_eq!(s.resident_keys, 3);
        assert!(cache.contains(&keys[0], 2, 0), "recently touched survives");
        assert!(!cache.contains(&keys[1], 2, 0), "LRU key evicted");
    }

    #[test]
    fn byte_bound_degrades_to_empty_not_error() {
        let sk = key(60);
        let one = levels_for(&sk, 2, 0);
        let cache = HypertreeCache::new(CacheConfig {
            // Two subtrees fit, three do not.
            max_bytes: one.byte_len() * 2,
            ..CacheConfig::default()
        });
        cache.insert(&sk, 2, 0, Arc::clone(&one));
        cache.insert(&sk, 1, 0, levels_for(&sk, 1, 0));
        assert_eq!(cache.stats().evictions, 0);
        // Third subtree pushes the single resident key over the byte
        // bound: the whole key evicts, then the insert-before-enforce
        // ordering leaves the cache empty — cold, never an error.
        cache.insert(&sk, 1, 1, levels_for(&sk, 1, 1));
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.resident_bytes, 0);
        assert!(cache.get(&sk, 2, 0).is_none());
    }

    #[test]
    fn layer_policy_tracks_tree_counts() {
        let p = tiny_params(); // h = 6, d = 3, h' = 2
        assert_eq!(layer_tree_count(&p, 0), 16);
        assert_eq!(layer_tree_count(&p, 1), 4);
        assert_eq!(layer_tree_count(&p, 2), 1);
        let full = Params::sphincs_128f();
        assert!(layer_tree_count(&full, 0) > 1 << 40);

        let cache = HypertreeCache::new(CacheConfig {
            max_trees_per_layer: 4,
            ..CacheConfig::default()
        });
        assert!(!cache.caches_layer(&p, 0));
        assert!(cache.caches_layer(&p, 1));
        assert!(cache.caches_layer(&p, 2));
        // Warm covers the memoizable layers top-down within budget.
        assert_eq!(
            cache.warm_coordinates(&p),
            vec![(2, 0), (1, 0), (1, 1), (1, 2), (1, 3)]
        );
    }

    #[test]
    fn warm_budget_stops_at_layer_boundary() {
        let p = tiny_params();
        let cache = HypertreeCache::new(CacheConfig {
            warm_trees: 3, // top layer (1 tree) fits, layer 1 (4 trees) does not
            ..CacheConfig::default()
        });
        assert_eq!(cache.warm_coordinates(&p), vec![(2, 0)]);
    }

    #[test]
    fn fingerprints_separate_params_alg_and_seeds() {
        let a = key(10);
        let b = key(11);
        assert_ne!(fingerprint(&a), fingerprint(&b));
        let p = tiny_params();
        let shake = hero_sphincs::keygen_from_seeds_with_alg(
            p,
            HashAlg::Shake256,
            vec![10; p.n],
            vec![11; p.n],
            vec![12; p.n],
        )
        .0;
        assert_ne!(fingerprint(&a), fingerprint(&shake));
        let mut wider = p;
        wider.k = 9;
        let other =
            hero_sphincs::keygen_from_seeds(wider, vec![10; p.n], vec![11; p.n], vec![12; p.n]).0;
        assert_ne!(fingerprint(&a), fingerprint(&other));
    }

    #[test]
    fn config_validation() {
        CacheConfig::default().validate().unwrap();
        CacheConfig::disabled().validate().unwrap();
        for bad in [
            CacheConfig {
                max_keys: 0,
                ..CacheConfig::default()
            },
            CacheConfig {
                max_bytes: 0,
                ..CacheConfig::default()
            },
        ] {
            assert!(matches!(bad.validate(), Err(HeroError::InvalidOptions(_))));
        }
        // Zero bounds are fine on a disabled cache.
        CacheConfig {
            max_keys: 0,
            ..CacheConfig::disabled()
        }
        .validate()
        .unwrap();
    }
}
