//! Shared latency statistics: the percentile machinery every
//! throughput-measuring surface uses.
//!
//! The CLI `throughput` command, the `bench_server` load generator, and
//! the server's metrics endpoint all report the same p50/p90/p99 shape;
//! this module is the single implementation behind all three. The
//! percentile is nearest-rank on the sorted sample set — the convention
//! the CLI has reported since the service landed — so numbers stay
//! comparable across surfaces.
//!
//! ```
//! use hero_sign::stats::LatencySummary;
//! use std::time::Duration;
//!
//! let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
//! let s = LatencySummary::from_unsorted(samples).unwrap();
//! assert_eq!(s.p50, Duration::from_micros(51)); // nearest rank, 0-indexed
//! assert_eq!(s.p99, Duration::from_micros(99));
//! assert_eq!(s.count, 100);
//! ```

use std::time::Duration;

/// Nearest-rank percentile over an already-sorted slice. `p` is in
/// percent (`50.0` = median). Returns [`Duration::ZERO`] on an empty
/// slice so metrics surfaces never panic on a quiet tenant.
pub fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((p / 100.0) * (sorted.len().saturating_sub(1)) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The latency digest all throughput surfaces report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Median latency.
    pub p50: Duration,
    /// 90th-percentile latency.
    pub p90: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Number of samples summarized.
    pub count: usize,
}

impl LatencySummary {
    /// Summarizes an unsorted sample set (sorts in place). Returns
    /// `None` for an empty set — callers decide whether that renders as
    /// zeros (metrics) or is an error (benches).
    pub fn from_unsorted(mut samples: Vec<Duration>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        Some(Self::from_sorted(&samples))
    }

    /// Summarizes a sorted sample set.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the slice is not sorted.
    pub fn from_sorted(sorted: &[Duration]) -> Self {
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "samples unsorted");
        if sorted.is_empty() {
            return Self::default();
        }
        let total: Duration = sorted.iter().sum();
        Self {
            p50: percentile(sorted, 50.0),
            p90: percentile(sorted, 90.0),
            p99: percentile(sorted, 99.0),
            mean: total / sorted.len() as u32,
            count: sorted.len(),
        }
    }

    /// Renders as the one-line `p50 … | p90 … | p99 … | mean …` form
    /// (microseconds) the CLI and metrics endpoint print.
    pub fn render_us(&self) -> String {
        format!(
            "p50 {:.1} us | p90 {:.1} us | p99 {:.1} us | mean {:.1} us",
            self.p50.as_secs_f64() * 1e6,
            self.p90.as_secs_f64() * 1e6,
            self.p99.as_secs_f64() * 1e6,
            self.mean.as_secs_f64() * 1e6,
        )
    }
}

/// A bounded reservoir of recent latency samples feeding
/// [`LatencySummary`] — the metrics endpoint's backing store. Keeps the
/// most recent `capacity` samples (ring overwrite), so long-running
/// servers report current behavior, not all-time history.
#[derive(Clone, Debug)]
pub struct LatencyWindow {
    samples: Vec<Duration>,
    next: usize,
    capacity: usize,
}

impl LatencyWindow {
    /// A window keeping the last `capacity` samples (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            samples: Vec::new(),
            next: 0,
            capacity: capacity.max(1),
        }
    }

    /// Records one sample, evicting the oldest once full.
    pub fn record(&mut self, sample: Duration) {
        if self.samples.len() < self.capacity {
            self.samples.push(sample);
        } else {
            self.samples[self.next] = sample;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Discards every held sample (capacity is kept). Used when the
    /// window's consistency can no longer be trusted — e.g. after its
    /// owning lock was poisoned mid-`record` — where an empty window is
    /// honest and a half-updated one is not.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.next = 0;
    }

    /// Summary of the held samples; `None` when empty.
    pub fn summary(&self) -> Option<LatencySummary> {
        LatencySummary::from_unsorted(self.samples.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted: Vec<Duration> = (1..=4).map(Duration::from_millis).collect();
        assert_eq!(percentile(&sorted, 0.0), Duration::from_millis(1));
        assert_eq!(percentile(&sorted, 50.0), Duration::from_millis(3));
        assert_eq!(percentile(&sorted, 100.0), Duration::from_millis(4));
        assert_eq!(percentile(&[], 50.0), Duration::ZERO);
    }

    #[test]
    fn summary_matches_manual_computation() {
        let samples: Vec<Duration> = (1..=10).rev().map(Duration::from_micros).collect();
        let s = LatencySummary::from_unsorted(samples).unwrap();
        assert_eq!(s.count, 10);
        assert_eq!(s.p50, Duration::from_micros(6));
        assert_eq!(s.p90, Duration::from_micros(9));
        assert_eq!(s.p99, Duration::from_micros(10));
        assert_eq!(s.mean, Duration::from_nanos(5500));
        assert!(s.render_us().contains("p99 10.0 us"), "{}", s.render_us());
    }

    #[test]
    fn empty_sets_are_none() {
        assert!(LatencySummary::from_unsorted(Vec::new()).is_none());
    }

    #[test]
    fn window_keeps_only_recent_samples() {
        let mut w = LatencyWindow::new(4);
        assert!(w.is_empty());
        for ms in 1..=10u64 {
            w.record(Duration::from_millis(ms));
        }
        assert_eq!(w.len(), 4);
        // Only 7..=10 remain.
        let s = w.summary().unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.p50, Duration::from_millis(9));
        assert_eq!(s.p99, Duration::from_millis(10));
    }
}
