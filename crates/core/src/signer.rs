//! The backend-agnostic [`Signer`] trait and the CPU [`ReferenceSigner`].
//!
//! Callers that only need *signatures* — services, the CLI, benches —
//! program against `dyn Signer` and pick a backend at the edge:
//!
//! * [`crate::engine::HeroSigner`] — the paper's three-kernel
//!   decomposition, running functionally on the scoped worker pool with
//!   the simulated-GPU performance model attached.
//! * [`ReferenceSigner`] — a plain wrapper over the `hero-sphincs`
//!   reference signer: single-threaded, no tuning, no simulation; the
//!   correctness oracle and the fallback backend for environments where
//!   the engine's worker pool is unwanted.
//!
//! Every backend produces bit-identical signatures for the same key and
//! message; backends differ in *how* the work is executed, never in the
//! bytes produced.

use crate::cache::CacheStats;
use crate::error::HeroError;
use crate::kernels::verify::VerifyOutcome;

use hero_sphincs::params::Params;
use hero_sphincs::sign::{Signature, SigningKey, VerifyingKey};
use rand::RngCore;

/// A SPHINCS+ signing backend.
///
/// The trait is object-safe: `Box<dyn Signer>` lets services select the
/// backend at runtime (see `examples/batch_signing_service.rs`).
pub trait Signer {
    /// The parameter set this backend was constructed for.
    fn params(&self) -> &Params;

    /// A short human-readable backend label (for logs and CLI output).
    fn backend(&self) -> &'static str;

    /// Generates a key pair for this backend's parameter set, under the
    /// shape's preferred hash primitive (SHAKE-256 for the `shake_*`
    /// shapes, SHA-256 otherwise).
    ///
    /// # Errors
    ///
    /// [`HeroError::InvalidParams`] if the parameter set fails substrate
    /// validation.
    fn keygen(&self, rng: &mut dyn RngCore) -> Result<(SigningKey, VerifyingKey), HeroError> {
        // Reborrow: `keygen_with_alg` is generic over sized `R: RngCore`,
        // and `&mut dyn RngCore` itself implements `RngCore`.
        let mut rng = rng;
        let params = *self.params();
        hero_sphincs::keygen_with_alg(params, params.preferred_alg(), &mut rng)
            .map_err(HeroError::from)
    }

    /// Signs `msg` with `sk`.
    ///
    /// # Errors
    ///
    /// [`HeroError::KeyMismatch`] if `sk` was generated for a different
    /// parameter set than this backend.
    fn sign(&self, sk: &SigningKey, msg: &[u8]) -> Result<Signature, HeroError>;

    /// Signs every message in `msgs`, in order.
    ///
    /// # Errors
    ///
    /// As [`Signer::sign`]; the default implementation stops at the
    /// first failure.
    fn sign_batch(&self, sk: &SigningKey, msgs: &[&[u8]]) -> Result<Vec<Signature>, HeroError> {
        msgs.iter().map(|m| self.sign(sk, m)).collect()
    }

    /// Snapshot of this backend's hypertree-memoization counters, or
    /// `None` for backends without a cache (the default). Lets
    /// `dyn Signer` holders — servers, the CLI — report cache health
    /// without downcasting to a concrete engine.
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }

    /// Pre-fills this backend's hypertree cache for `sk`, returning how
    /// many subtrees were freshly built. The default (for backends
    /// without a cache) does nothing and reports zero.
    ///
    /// # Errors
    ///
    /// [`HeroError::KeyMismatch`] if `sk` was generated for a different
    /// parameter set than this backend.
    fn warm_key(&self, sk: &SigningKey) -> Result<usize, HeroError> {
        let _ = sk;
        Ok(0)
    }

    /// Verifies `sig` over `msg` with `vk`.
    ///
    /// # Errors
    ///
    /// [`HeroError::KeyMismatch`] on a foreign key;
    /// [`HeroError::Sphincs`] when verification fails.
    fn verify(&self, vk: &VerifyingKey, msg: &[u8], sig: &Signature) -> Result<(), HeroError> {
        check_key(self.params(), vk.params())?;
        vk.verify(msg, sig).map_err(HeroError::from)
    }

    /// Verifies every `sigs[i]` over `msgs[i]`, returning one typed
    /// [`VerifyOutcome`] per message — a mixed batch reports exactly
    /// which indices failed, and never short-circuits. The default is
    /// the sequential scalar oracle; engine backends override it with
    /// the planned, lane-batched path and must agree bit-for-bit.
    ///
    /// # Errors
    ///
    /// [`HeroError::KeyMismatch`] on a foreign key;
    /// [`HeroError::BatchMismatch`] when `msgs.len() != sigs.len()`.
    fn verify_batch(
        &self,
        vk: &VerifyingKey,
        msgs: &[&[u8]],
        sigs: &[Signature],
    ) -> Result<Vec<VerifyOutcome>, HeroError> {
        check_key(self.params(), vk.params())?;
        if msgs.len() != sigs.len() {
            return Err(HeroError::BatchMismatch {
                messages: msgs.len(),
                signatures: sigs.len(),
            });
        }
        Ok(msgs
            .iter()
            .zip(sigs)
            .map(|(msg, sig)| VerifyOutcome::from_result(vk.verify(msg, sig)))
            .collect())
    }
}

/// Rejects keys generated for a different parameter set.
pub(crate) fn check_key(engine: &Params, key: &Params) -> Result<(), HeroError> {
    if engine == key {
        Ok(())
    } else {
        Err(crate::error::KeyMismatch {
            engine: *engine,
            key: *key,
        }
        .into_error())
    }
}

/// The plain CPU reference backend: `hero-sphincs` signing with no
/// kernel decomposition, worker pool, tuning, or device model.
#[derive(Clone, Debug)]
pub struct ReferenceSigner {
    params: Params,
}

impl ReferenceSigner {
    /// Builds a reference backend for `params`.
    ///
    /// # Errors
    ///
    /// [`HeroError::InvalidParams`] if the set fails validation.
    pub fn new(params: Params) -> Result<Self, HeroError> {
        params.validate().map_err(HeroError::InvalidParams)?;
        Ok(Self { params })
    }
}

impl Signer for ReferenceSigner {
    fn params(&self) -> &Params {
        &self.params
    }

    fn backend(&self) -> &'static str {
        "reference-cpu"
    }

    fn sign(&self, sk: &SigningKey, msg: &[u8]) -> Result<Signature, HeroError> {
        check_key(&self.params, sk.params())?;
        Ok(sk.sign(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_params() -> Params {
        let mut p = Params::sphincs_128f();
        p.h = 6;
        p.d = 3;
        p.log_t = 4;
        p.k = 8;
        p
    }

    #[test]
    fn reference_round_trip() {
        let signer = ReferenceSigner::new(tiny_params()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let (sk, vk) = signer.keygen(&mut rng).unwrap();
        let sig = signer.sign(&sk, b"reference backend").unwrap();
        signer.verify(&vk, b"reference backend", &sig).unwrap();
        assert!(signer.verify(&vk, b"other message", &sig).is_err());
    }

    #[test]
    fn reference_rejects_invalid_params() {
        let mut p = Params::sphincs_128f();
        p.d = 5; // does not divide h = 66
        assert!(matches!(
            ReferenceSigner::new(p),
            Err(HeroError::InvalidParams(_))
        ));
    }

    #[test]
    fn reference_rejects_foreign_keys() {
        let signer = ReferenceSigner::new(tiny_params()).unwrap();
        let mut other = tiny_params();
        other.k = 9;
        let mut rng = StdRng::seed_from_u64(4);
        let (sk, _) = hero_sphincs::keygen(other, &mut rng).unwrap();
        assert!(matches!(
            signer.sign(&sk, b"x"),
            Err(HeroError::KeyMismatch(_))
        ));
    }

    #[test]
    fn batch_default_impl_signs_in_order() {
        let signer = ReferenceSigner::new(tiny_params()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let (sk, vk) = signer.keygen(&mut rng).unwrap();
        let msgs: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i; 8]).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let sigs = signer.sign_batch(&sk, &refs).unwrap();
        for (m, s) in refs.iter().zip(&sigs) {
            signer.verify(&vk, m, s).unwrap();
        }
    }
}
