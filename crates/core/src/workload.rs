//! Analytic hash-work censuses for the three SPHINCS+ signing kernels.
//!
//! Every count here is exact arithmetic over the parameter set — the same
//! quantities the paper quotes (560/816/1072 compressions per
//! `wots_gen_leaf`, 2112/8448/17920 FORS leaves, …) — and feeds the
//! simulator's instruction totals.

use hero_sphincs::hash::SeededHasher;
use hero_sphincs::params::Params;

/// Compressions of one `F`/`PRF` call (single block after the seed state).
pub fn f_compressions(params: &Params) -> u64 {
    SeededHasher::compressions_for_tail(22 + params.n) as u64
}

/// Compressions of one `H` call (two `n`-byte inputs).
pub fn h_compressions(params: &Params) -> u64 {
    SeededHasher::compressions_for_tail(22 + 2 * params.n) as u64
}

/// Compressions of one `T_l` call over `l` inputs.
pub fn t_l_compressions(params: &Params, l: usize) -> u64 {
    SeededHasher::compressions_for_tail(22 + l * params.n) as u64
}

/// Compressions of one `wots_gen_leaf`: `len` PRF + `len·(w-1)` chain `F`
/// + the `T_len` public-key compression.
///
/// The paper's §III quotes the chain-hash core (`len·w`) as 560 / 816 /
/// 1072 for the three `-f` sets; [`wots_gen_leaf_chain_hashes`] exposes
/// that number exactly.
pub fn wots_gen_leaf_compressions(params: &Params) -> u64 {
    wots_gen_leaf_chain_hashes(params) + t_l_compressions(params, params.wots_len())
}

/// The `len·w` chain-hash count of one `wots_gen_leaf` (PRF + chain F).
pub fn wots_gen_leaf_chain_hashes(params: &Params) -> u64 {
    (params.wots_len() * params.w) as u64
}

/// Total compressions of one message's `FORS_Sign`: `k` trees × (`t` PRF +
/// `t` leaf-F + `(t-1)` node-H) + final `T_k` roots compression.
pub fn fors_sign_compressions(params: &Params) -> u64 {
    let t = params.t() as u64;
    let per_tree = t * f_compressions(params)      // PRF per leaf
        + t * f_compressions(params)                // F per leaf
        + (t - 1) * h_compressions(params); // internal nodes
    params.k as u64 * per_tree + t_l_compressions(params, params.k)
}

/// Total compressions of one message's `TREE_Sign`: `d` subtrees ×
/// (`2^h'` WOTS+ leaves + `2^h' - 1` node-H).
pub fn tree_sign_compressions(params: &Params) -> u64 {
    let leaves = params.subtree_leaves() as u64;
    let per_tree =
        leaves * wots_gen_leaf_compressions(params) + (leaves - 1) * h_compressions(params);
    params.d as u64 * per_tree
}

/// Expected compressions of one message's `WOTS+_Sign`: `d` layers ×
/// (`len` PRF + on average `len·(w-1)/2` chain steps).
///
/// Signing reveals intermediate chain nodes, so the work is message-
/// dependent; the expectation over uniform digits is what batch
/// throughput sees.
pub fn wots_sign_expected_compressions(params: &Params) -> u64 {
    let len = params.wots_len() as u64;
    let avg_steps = (params.w as u64 - 1) / 2 * len + len / 2;
    params.d as u64 * (len * f_compressions(params) + avg_steps * f_compressions(params))
}

/// Grand total expected compressions for one full signature (the paper's
/// intro: "more than 100,000 hash computations").
pub fn total_sign_compressions(params: &Params) -> u64 {
    fors_sign_compressions(params)
        + tree_sign_compressions(params)
        + wots_sign_expected_compressions(params)
}

/// Per-thread serial compressions in `TREE_Sign` (one thread builds one
/// WOTS+ leaf): the longest dependence chain of the kernel.
pub fn tree_sign_critical_compressions(params: &Params) -> u64 {
    wots_gen_leaf_compressions(params) + params.tree_height() as u64 * h_compressions(params)
}

/// Per-thread serial compressions in `FORS_Sign` under a fused layout
/// where each thread owns one leaf of each of `ceil(k / concurrent)` tree
/// rounds: leaf work + `log t` reduction levels.
pub fn fors_sign_critical_compressions(params: &Params, concurrent_trees: u32) -> u64 {
    let rounds = (params.k as u64).div_ceil(concurrent_trees.max(1) as u64);
    rounds * (2 * f_compressions(params) + params.log_t as u64 * h_compressions(params))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_block_f_for_all_sets() {
        for p in Params::fast_sets() {
            assert_eq!(f_compressions(&p), 1, "{}", p.name());
        }
    }

    #[test]
    fn h_compressions_by_width() {
        assert_eq!(h_compressions(&Params::sphincs_128f()), 1);
        assert_eq!(h_compressions(&Params::sphincs_192f()), 2);
        assert_eq!(h_compressions(&Params::sphincs_256f()), 2);
    }

    #[test]
    fn paper_quoted_wots_leaf_hashes() {
        assert_eq!(wots_gen_leaf_chain_hashes(&Params::sphincs_128f()), 560);
        assert_eq!(wots_gen_leaf_chain_hashes(&Params::sphincs_192f()), 816);
        assert_eq!(wots_gen_leaf_chain_hashes(&Params::sphincs_256f()), 1072);
    }

    #[test]
    fn total_exceeds_hundred_thousand() {
        // Intro: "more than 100,000 hash computations in Hypertree".
        for p in Params::fast_sets() {
            assert!(total_sign_compressions(&p) > 100_000, "{}", p.name());
        }
    }

    #[test]
    fn tree_work_dominates() {
        // Table II's MSS column dominates in every set. (FORS beats WOTS+
        // in *time* despite similar hash counts because its dataflow is
        // smem-coupled — that ordering emerges from the kernel model, not
        // the census.)
        for p in Params::fast_sets() {
            let tree = tree_sign_compressions(&p);
            let fors = fors_sign_compressions(&p);
            let wots = wots_sign_expected_compressions(&p);
            assert!(tree > 3 * fors, "{}: {tree} vs {fors}", p.name());
            assert!(tree > 3 * wots, "{}: {tree} vs {wots}", p.name());
        }
    }

    #[test]
    fn fors_work_grows_with_security_level() {
        let c128 = fors_sign_compressions(&Params::sphincs_128f());
        let c192 = fors_sign_compressions(&Params::sphincs_192f());
        let c256 = fors_sign_compressions(&Params::sphincs_256f());
        assert!(c128 < c192 && c192 < c256);
    }

    #[test]
    fn critical_path_shrinks_with_more_concurrent_trees() {
        let p = Params::sphincs_128f();
        let serial = fors_sign_critical_compressions(&p, 1);
        let fused = fors_sign_critical_compressions(&p, 33);
        assert!(fused < serial);
        assert_eq!(serial, 33 * (2 + 6));
    }

    #[test]
    fn consistency_with_reference_census() {
        // hero-sphincs counts hash *calls* (33·191 + 1 = 6304 for 128f);
        // the compression census differs only in the final T_k, which
        // absorbs k·n = 528 bytes = 9 compressions instead of 1.
        let p = Params::sphincs_128f();
        let call_census = hero_sphincs::fors::sign_hash_count(&p) as u64; // 6304
        assert_eq!(
            fors_sign_compressions(&p),
            call_census - 1 + t_l_compressions(&p, p.k)
        );
        assert_eq!(t_l_compressions(&p, p.k), 9);
    }
}
