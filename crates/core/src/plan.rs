//! The cross-message batch planner: one stage graph for the whole
//! `sign_batch` call.
//!
//! ## Why plan across messages
//!
//! The paper's throughput argument (§IV-E1) is that SPHINCS+ signing only
//! saturates a device when the *batch* fills it — a single message never
//! does. The CPU analogue has the same gap: within one message, the big
//! stages (FORS bottom layers, subtree leaf generation) fill all SHA
//! lanes and workers, but the small ones drain them — top Merkle levels
//! with fewer nodes than lanes, WOTS+ chains retiring at their message
//! digits, and the three per-message barriers (`FORS → TREE → WOTS+`)
//! that idle the pool while one kernel's tail finishes.
//!
//! The planner removes both drains by making the **batch** the unit of
//! execution:
//!
//! 1. [`sign_batch`] decomposes every message into stage work-items —
//!    FORS tree groups ([`crate::kernels::fors_sign::sign_trees`]),
//!    per-layer subtree treehashes
//!    ([`crate::kernels::tree_sign::subtrees`]), and WOTS+ chain groups
//!    ([`crate::kernels::wots_sign::sign_chain_groups`]) — where one item
//!    may carry work from *several* messages.
//! 2. The items become closure nodes of a
//!    [`hero_task_graph::TaskGraph`], with edges only where the signature
//!    really demands them: a message's `T_k` FORS-pk compression waits
//!    for its tree groups; its layer-0 WOTS+ signs wait for the FORS pk;
//!    its layer-`l` WOTS+ signs wait for the layer-`l−1` subtree root.
//!    Nothing else orders anything — message A's layer-3 treehash
//!    co-schedules with message B's FORS leaves.
//! 3. [`hero_task_graph::Executor::run`] submits the whole DAG onto the
//!    engine's *persistent* worker pool — no thread spin-up per call,
//!    and concurrent `sign_batch` calls from different threads interleave
//!    their work-items on the same workers like kernels from different
//!    CUDA streams — while the grouped stages keep all SHA lanes full
//!    across message boundaries (mixed-address `h_many` / `f_many_at`
//!    sweeps).
//!
//! ## The batch ↔ GPU-stream analogy
//!
//! On the GPU, HERO-Sign fills the device by launching one kernel over a
//! whole batch and letting blocks from many messages share SMs; streams
//! and CUDA graphs keep the next batch's transfers and kernels
//! overlapped so the device never idles between messages. Here the
//! worker pool plays the SM array and the multi-lane SHA engine plays the
//! warp: the stage graph is the CUDA graph (dependencies instead of
//! barriers), the ready queue is the stream scheduler, and grouped
//! work-items are the blocks that mix messages on one SM. Sequential
//! per-message signing corresponds to `batch_size = 1` on the device —
//! the configuration Fig. 12 shows wasting most of the hardware.
//!
//! Planned output is byte-identical to sequential signing: every hash
//! call keeps its exact address and input bytes; only the packing into
//! lanes and the execution order of *independent* calls change (pinned by
//! proptests and the pre-refactor fixtures).

use crate::cache::HypertreeCache;
use crate::kernels::verify::VerifyOutcome;
use crate::kernels::{fors_sign, tree_sign, wots_sign};

use hero_sphincs::address::{Address, AddressType};
use hero_sphincs::fors::{self, ForsSignature, ForsTreeRequest, ForsTreeSig};
use hero_sphincs::hash::{self, HashCtx};
use hero_sphincs::hypertree::{self, HtSignature, XmssSig};
use hero_sphincs::params::Params;
use hero_sphincs::sign::{SignError, Signature, SigningKey, VerifyingKey};
use hero_task_graph::{Executor, TaskGraph};

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Work-item grouping of one planned batch: how many per-message units
/// each stage node carries. Larger groups amortize scheduling and fill
/// lanes across messages; smaller groups give the ready queue more
/// balance. The defaults come from [`PlanShape::for_batch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanShape {
    /// FORS trees per [`fors_sign::sign_trees`] node.
    pub fors_trees_per_item: usize,
    /// Hypertree subtrees per [`tree_sign::subtrees`] node.
    pub subtrees_per_item: usize,
    /// WOTS+ layer signs per [`wots_sign::sign_chain_groups`] node.
    pub chains_per_item: usize,
}

impl PlanShape {
    /// The shape used by [`sign_batch`]: single-message batches keep
    /// subtree items at one-per-node (maximum pool balance, matching the
    /// pre-planner `TREE_Sign` decomposition); multi-message batches pair
    /// subtrees so reductions merge across items without starving the
    /// queue.
    pub fn for_batch(messages: usize) -> Self {
        Self {
            fors_trees_per_item: 8,
            subtrees_per_item: if messages >= 4 { 2 } else { 1 },
            chains_per_item: 4,
        }
    }
}

/// Node census of a plan, for observability and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanSummary {
    /// Messages in the batch.
    pub messages: usize,
    /// FORS tree-group nodes.
    pub fors_items: usize,
    /// Per-message `T_k` FORS-pk nodes.
    pub fors_pk_items: usize,
    /// Subtree treehash nodes.
    pub subtree_items: usize,
    /// WOTS+ chain-group nodes.
    pub chain_items: usize,
}

impl PlanSummary {
    /// Total DAG nodes.
    pub fn nodes(&self) -> usize {
        self.fors_items + self.fors_pk_items + self.subtree_items + self.chain_items
    }
}

/// The node census [`sign_batch_shaped`] would build for `messages`
/// messages of `params` under `shape`, without signing anything.
pub fn summarize(params: &Params, messages: usize, shape: &PlanShape) -> PlanSummary {
    let flat_trees = messages * params.k;
    let flat_layers = messages * params.d;
    PlanSummary {
        messages,
        fors_items: flat_trees.div_ceil(shape.fors_trees_per_item.max(1)),
        fors_pk_items: messages,
        subtree_items: flat_layers.div_ceil(shape.subtrees_per_item.max(1)),
        chain_items: flat_layers.div_ceil(shape.chains_per_item.max(1)),
    }
}

/// Host-side preamble of one message (Fig. 2): randomizer, digest split,
/// FORS keypair address, and the hypertree coordinate walk. Computed at
/// plan time, distributed over the worker pool (digesting a long message
/// is itself real hash work) — it seeds every work-item.
struct Preamble {
    randomizer: Vec<u8>,
    keypair_adrs: Address,
    /// One subtree item per hypertree layer (the `(tree, leaf)` walk).
    subtrees: Vec<tree_sign::SubtreeItem>,
    /// One FORS tree request per tree, leaf indices decoded from `md`.
    fors_reqs: Vec<ForsTreeRequest>,
}

fn preamble(ctx: &HashCtx, sk: &SigningKey, msg: &[u8]) -> Preamble {
    let params = ctx.params();
    let randomizer = ctx.prf_msg(sk.sk_prf(), sk.pk_seed(), msg);
    let digest = ctx.h_msg(&randomizer, sk.pk_root(), msg);
    let (md, tree_idx, leaf_idx) = hash::split_digest(params, &digest);

    let mut keypair_adrs = Address::new();
    keypair_adrs.set_layer(0);
    keypair_adrs.set_tree(tree_idx);
    keypair_adrs.set_type(AddressType::ForsTree);
    keypair_adrs.set_keypair(leaf_idx);

    Preamble {
        randomizer,
        keypair_adrs,
        subtrees: tree_sign::subtree_items(params, tree_idx, leaf_idx),
        fors_reqs: fors_sign::tree_requests(params, &md, &keypair_adrs),
    }
}

/// Interior-mutable output slots shared between stage nodes: a node
/// writes its slot exactly once; dependents read it only after the DAG
/// edge guarantees it was filled.
struct Slots<T>(Vec<Mutex<Option<T>>>);

impl<T> Slots<T> {
    fn new(len: usize) -> Self {
        Self((0..len).map(|_| Mutex::new(None)).collect())
    }

    fn set(&self, i: usize, value: T) {
        *self.0[i].lock().unwrap() = Some(value);
    }

    fn with<R>(&self, i: usize, f: impl FnOnce(&T) -> R) -> R {
        f(self.0[i]
            .lock()
            .unwrap()
            .as_ref()
            .expect("slot filled by dependency"))
    }

    fn take(&self, i: usize) -> T {
        self.0[i]
            .lock()
            .unwrap()
            .take()
            .expect("slot filled by executed node")
    }
}

/// Plans and signs a whole batch as one stage graph submitted onto
/// `exec`, with the default [`PlanShape`] — see the module docs for the
/// decomposition. Output is byte-identical to signing each message
/// sequentially.
pub fn sign_batch(
    ctx: &HashCtx,
    sk: &SigningKey,
    msgs: &[&[u8]],
    exec: &Executor,
) -> Vec<Signature> {
    sign_batch_shaped(ctx, sk, msgs, exec, &PlanShape::for_batch(msgs.len()))
}

/// [`sign_batch`] consulting a per-key hypertree memoization cache:
/// memoized subtrees are sliced at plan time (warm path — no node, no
/// hashing), and memoizable misses become first-class *fill* stage nodes
/// that build the whole retained pyramid, publish it to `cache`, and
/// co-schedule on `exec` like any other work. Output is byte-identical
/// to [`sign_batch`] — a disabled or empty cache merely changes what
/// the stage graph recomputes.
pub fn sign_batch_cached(
    ctx: &HashCtx,
    sk: &SigningKey,
    msgs: &[&[u8]],
    exec: &Executor,
    cache: &HypertreeCache,
) -> Vec<Signature> {
    sign_batch_inner(
        ctx,
        sk,
        msgs,
        exec,
        &PlanShape::for_batch(msgs.len()),
        Some(cache),
    )
}

/// [`sign_batch`] with an explicit work-item grouping.
pub fn sign_batch_shaped(
    ctx: &HashCtx,
    sk: &SigningKey,
    msgs: &[&[u8]],
    exec: &Executor,
    shape: &PlanShape,
) -> Vec<Signature> {
    sign_batch_inner(ctx, sk, msgs, exec, shape, None)
}

fn sign_batch_inner(
    ctx: &HashCtx,
    sk: &SigningKey,
    msgs: &[&[u8]],
    exec: &Executor,
    shape: &PlanShape,
    cache: Option<&HypertreeCache>,
) -> Vec<Signature> {
    let params = *ctx.params();
    let m = msgs.len();
    if m == 0 {
        return Vec::new();
    }
    let (k, d, n) = (params.k, params.d, params.n);
    let sk_seed = sk.sk_seed();

    // Host preamble per message (parallel: message digesting is hash
    // work too), then the flattened cross-message work-item lists
    // (message-major, so a chunk mixes messages exactly at the
    // boundaries).
    let pres: Vec<Preamble> =
        crate::par::par_map_on(exec, msgs, exec.workers(), |msg| preamble(ctx, sk, msg));
    let fors_reqs: Vec<ForsTreeRequest> = pres
        .iter()
        .flat_map(|pre| pre.fors_reqs.iter().copied())
        .collect();
    let subtree_items: Vec<tree_sign::SubtreeItem> = pres
        .iter()
        .flat_map(|pre| pre.subtrees.iter().copied())
        .collect();

    // Output slots, indexed flat: message-major trees and layers.
    let fors_slots: Slots<(ForsTreeSig, Vec<u8>)> = Slots::new(m * k);
    let pk_slots: Slots<Vec<u8>> = Slots::new(m);
    let layer_slots: Slots<tree_sign::LayerTree> = Slots::new(m * d);
    let wots_slots: Slots<Vec<Vec<u8>>> = Slots::new(m * d);

    let fg = shape.fors_trees_per_item.max(1);
    let tg = shape.subtrees_per_item.max(1);
    let wg = shape.chains_per_item.max(1);

    // Subtree stage classification, optionally memoized. Each flat
    // (message, layer) item is classified once at plan time:
    //   * warm — the subtree's retained pyramid is resident in the
    //     cache; its LayerTree is sliced immediately (no node, no
    //     hashing — the steady-state payoff).
    //   * fill — memoizable but missing; *distinct* coordinates become
    //     first-class fill nodes that build the whole pyramid, publish
    //     it to the cache, and slice every dependent item's LayerTree
    //     (a batch's repeated upper trees are built once, not per
    //     message).
    //   * plain — not memoizable (layer too wide for the cache policy,
    //     or no cache at all): the original auth-path-only treehash
    //     groups, with no dependencies (coordinates derive from the
    //     digest alone — the independence §III-A exploits).
    //
    // Declared before the graph so the node closures borrowing these
    // lists outlive it.
    let mut plain_items: Vec<(usize, tree_sign::SubtreeItem)> = Vec::new();
    let mut fill_groups: Vec<(tree_sign::SubtreeItem, Vec<(usize, tree_sign::SubtreeItem)>)> =
        Vec::new();
    let mut fill_index: HashMap<(u32, u64), usize> = HashMap::new();
    for (flat, item) in subtree_items.iter().copied().enumerate() {
        match cache {
            Some(cache) if cache.caches_layer(&params, item.layer) => {
                if let Some(levels) = cache.get(sk, item.layer, item.tree_idx) {
                    layer_slots.set(flat, tree_sign::layer_tree_from_levels(&levels, &item));
                } else {
                    let group = *fill_index
                        .entry((item.layer, item.tree_idx))
                        .or_insert_with(|| {
                            fill_groups.push((item, Vec::new()));
                            fill_groups.len() - 1
                        });
                    fill_groups[group].1.push((flat, item));
                }
            }
            _ => plain_items.push((flat, item)),
        }
    }

    let mut graph = TaskGraph::new();

    // FORS tree groups: no dependencies.
    let fors_nodes: Vec<_> = fors_reqs
        .chunks(fg)
        .enumerate()
        .map(|(c, chunk)| {
            let base = c * fg;
            let fors_slots = &fors_slots;
            graph.task(move || {
                crate::faults::stage(crate::faults::PLAN_STAGE);
                for (off, out) in fors_sign::sign_trees(ctx, sk_seed, chunk)
                    .into_iter()
                    .enumerate()
                {
                    fors_slots.set(base + off, out);
                }
            })
        })
        .collect();

    // Per-message T_k compression: waits for the tree groups covering
    // this message's k trees.
    let pk_nodes: Vec<_> = (0..m)
        .map(|mi| {
            let (fors_slots, pk_slots, pres) = (&fors_slots, &pk_slots, &pres);
            let node = graph.task(move || {
                crate::faults::stage(crate::faults::PLAN_STAGE);
                let mut roots_flat = vec![0u8; k * n];
                for tree in 0..k {
                    fors_slots.with(mi * k + tree, |(_, root)| {
                        roots_flat[tree * n..(tree + 1) * n].copy_from_slice(root);
                    });
                }
                pk_slots.set(
                    mi,
                    fors_sign::roots_to_pk(ctx, &pres[mi].keypair_adrs, &roots_flat),
                );
            });
            for &group in &fors_nodes[(mi * k) / fg..=((mi + 1) * k - 1) / fg] {
                graph.depends_on(node, group);
            }
            node
        })
        .collect();

    // Producer node of each flat subtree slot (`None` = sliced warm at
    // plan time, nothing to wait for).
    let mut subtree_dep: Vec<Option<hero_task_graph::NodeId>> = vec![None; m * d];
    for chunk in plain_items.chunks(tg) {
        let layer_slots = &layer_slots;
        let node = graph.task(move || {
            crate::faults::stage(crate::faults::PLAN_STAGE);
            let items: Vec<tree_sign::SubtreeItem> = chunk.iter().map(|&(_, item)| item).collect();
            for (&(flat, _), out) in chunk.iter().zip(tree_sign::subtrees(ctx, sk_seed, &items)) {
                layer_slots.set(flat, out);
            }
        });
        for &(flat, _) in chunk {
            subtree_dep[flat] = Some(node);
        }
    }
    for group_chunk in fill_groups.chunks(tg) {
        let layer_slots = &layer_slots;
        let cache = cache.expect("fill groups only exist with a cache");
        let node = graph.task(move || {
            crate::faults::stage(crate::faults::PLAN_STAGE);
            let items: Vec<tree_sign::SubtreeItem> =
                group_chunk.iter().map(|(item, _)| *item).collect();
            for ((item, dependents), levels) in group_chunk
                .iter()
                .zip(tree_sign::subtree_levels(ctx, sk_seed, &items))
            {
                let levels = Arc::new(levels);
                cache.insert(sk, item.layer, item.tree_idx, Arc::clone(&levels));
                for &(flat, item) in dependents {
                    layer_slots.set(flat, tree_sign::layer_tree_from_levels(&levels, &item));
                }
            }
        });
        for (_, dependents) in group_chunk {
            for &(flat, _) in dependents {
                subtree_dep[flat] = Some(node);
            }
        }
    }

    // WOTS+ chain groups: layer 0 signs the FORS pk, layer l > 0 signs
    // the layer-(l−1) subtree root; each group depends on exactly the
    // nodes producing its inputs.
    let flat_layers = m * d;
    let mut start = 0usize;
    while start < flat_layers {
        let end = (start + wg).min(flat_layers);
        let (pk_slots, layer_slots, wots_slots, pres) =
            (&pk_slots, &layer_slots, &wots_slots, &pres);
        let node = graph.task(move || {
            crate::faults::stage(crate::faults::PLAN_STAGE);
            // Own the messages first (cloned out of the slots), then
            // borrow them into the chain-group items.
            let inputs: Vec<Vec<u8>> = (start..end)
                .map(|flat| {
                    let (mi, layer) = (flat / d, flat % d);
                    if layer == 0 {
                        pk_slots.with(mi, Vec::clone)
                    } else {
                        layer_slots.with(mi * d + layer - 1, |lt| lt.root.clone())
                    }
                })
                .collect();
            let items: Vec<wots_sign::ChainGroupItem<'_>> = (start..end)
                .zip(&inputs)
                .map(|(flat, msg)| {
                    let (mi, layer) = (flat / d, flat % d);
                    let subtree = pres[mi].subtrees[layer];
                    wots_sign::ChainGroupItem {
                        msg,
                        layer: layer as u32,
                        tree: subtree.tree_idx,
                        leaf: subtree.leaf_idx,
                    }
                })
                .collect();
            for (off, sig) in wots_sign::sign_chain_groups(ctx, sk_seed, &items)
                .into_iter()
                .enumerate()
            {
                wots_slots.set(start + off, sig);
            }
        });
        // Distinct producers of this group's inputs; groups are small
        // (`wg` entries), so a linear-scan dedup suffices.
        let mut deps: Vec<hero_task_graph::NodeId> = Vec::with_capacity(end - start);
        for flat in start..end {
            let (mi, layer) = (flat / d, flat % d);
            let dep = if layer == 0 {
                Some(pk_nodes[mi])
            } else {
                subtree_dep[mi * d + layer - 1]
            };
            if let Some(dep) = dep {
                if !deps.contains(&dep) {
                    deps.push(dep);
                }
            }
        }
        for dep in deps {
            graph.depends_on(node, dep);
        }
        start = end;
    }

    exec.run(graph)
        .expect("batch plan construction yields a DAG");

    // Assembly: drain the slots message by message.
    (0..m)
        .map(|mi| {
            let trees: Vec<ForsTreeSig> = (0..k)
                .map(|tree| fors_slots.take(mi * k + tree).0)
                .collect();
            let layers: Vec<XmssSig> = (0..d)
                .map(|layer| XmssSig {
                    wots_sig: wots_slots.take(mi * d + layer),
                    auth_path: layer_slots.take(mi * d + layer).auth_path,
                })
                .collect();
            Signature {
                randomizer: pres[mi].randomizer.clone(),
                fors: ForsSignature { trees },
                ht: HtSignature { layers },
            }
        })
        .collect()
}

/// Pre-fills `sk`'s memoizable upper hypertree layers
/// ([`HypertreeCache::warm_coordinates`]) as a stage graph on `exec` — a
/// cache fill co-schedules on the executor like any other planned work.
/// Best-effort under chaos: a dropped fill only means the next sign pays
/// cold. Returns the number of subtrees built (0 when the cache is
/// disabled, the warm budget is empty, or everything was resident).
pub fn warm_cache(
    ctx: &HashCtx,
    sk: &SigningKey,
    exec: &Executor,
    cache: &HypertreeCache,
) -> usize {
    let params = ctx.params();
    let sk_seed = sk.sk_seed();
    let items: Vec<tree_sign::SubtreeItem> = cache
        .warm_coordinates(params)
        .into_iter()
        .filter(|&(layer, tree_idx)| !cache.contains(sk, layer, tree_idx))
        .map(|(layer, tree_idx)| tree_sign::SubtreeItem {
            layer,
            tree_idx,
            leaf_idx: 0,
        })
        .collect();
    if items.is_empty() {
        return 0;
    }
    let mut graph = TaskGraph::new();
    for chunk in items.chunks(2) {
        graph.task(move || {
            crate::faults::stage(crate::faults::PLAN_STAGE);
            for (item, levels) in chunk
                .iter()
                .zip(tree_sign::subtree_levels(ctx, sk_seed, chunk))
            {
                cache.insert(sk, item.layer, item.tree_idx, Arc::new(levels));
            }
        });
    }
    exec.run(graph).expect("warm plan is a DAG");
    items.len()
}

/// Signatures per verify stage node. Each group's FORS recovery and
/// per-layer XMSS root recomputations become one *chain* of DAG nodes
/// (the signature forces that order within a group), but different
/// groups share no edges — group A's layer-2 node co-schedules with
/// group B's FORS node on the same workers, and every node's hashing is
/// itself lane-batched across the group's members.
const VERIFY_GROUP: usize = 4;

/// Host-side preamble of one signature under verification: the shape
/// gate, the message digest split, the FORS keypair address, and the
/// precomputed `(tree, leaf)` hypertree walk — everything the stage
/// nodes need that does not depend on recovered roots.
struct VerifyPreamble {
    md: Vec<u8>,
    keypair_adrs: Address,
    /// `(tree, leaf)` coordinates per hypertree layer.
    walk: Vec<(u64, u32)>,
}

/// Plans and verifies a whole batch as one cross-signature stage graph
/// submitted onto `exec`.
///
/// Signatures are grouped [`VERIFY_GROUP`] at a time; each group's
/// pipeline — FORS root recovery, then one XMSS root recomputation per
/// hypertree layer — is a chain of lane-batched DAG nodes, and the
/// chains of different groups interleave freely on the pool. Shape
/// failures ([`Signature::check_shape`]) are resolved at plan time and
/// never enter the graph; the surviving signatures' verdicts are
/// bit-for-bit what [`VerifyingKey::verify`] returns.
///
/// Without real parallelism — a single-worker executor, or a host with
/// one hardware thread — the graph is pure scheduling overhead, so the
/// batch degrades to one [`VerifyingKey::verify_many`] lane sweep with
/// identical verdicts.
///
/// # Panics
///
/// When `msgs.len() != sigs.len()` — the typed-error surface lives one
/// layer up in [`crate::kernels::verify::run_batch_planned`].
///
/// # Examples
///
/// ```
/// use hero_sign::{plan, VerifyOutcome};
/// use hero_task_graph::Executor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut params = hero_sphincs::Params::sphincs_128f();
/// params.h = 6;
/// params.d = 3;
/// params.log_t = 4;
/// params.k = 8;
/// let mut rng = StdRng::seed_from_u64(9);
/// let (sk, vk) = hero_sphincs::keygen(params, &mut rng).unwrap();
///
/// let msgs: Vec<&[u8]> = vec![b"a", b"b"];
/// let mut sigs: Vec<_> = msgs.iter().map(|m| sk.sign(m)).collect();
/// sigs[1].fors.trees[0].sk[0] ^= 1;
///
/// let exec = Executor::new(2).unwrap();
/// let outcomes = plan::verify_batch(&vk, &msgs, &sigs, &exec);
/// assert_eq!(outcomes, [VerifyOutcome::Valid, VerifyOutcome::Invalid]);
/// ```
pub fn verify_batch(
    vk: &VerifyingKey,
    msgs: &[&[u8]],
    sigs: &[Signature],
    exec: &Executor,
) -> Vec<VerifyOutcome> {
    assert_eq!(
        msgs.len(),
        sigs.len(),
        "one message per signature in a verify batch"
    );
    let params = *vk.params();
    let m = msgs.len();
    if m == 0 {
        return Vec::new();
    }
    let d = params.d;
    let ctx = HashCtx::with_alg(params, vk.pk_seed(), vk.alg());
    let pk_root = vk.pk_root();

    // Without real parallelism — a single-worker executor, or a host
    // with one hardware thread — preamble distribution and the stage
    // graph below are pure scheduling overhead on top of the same
    // lane-batched hash sweeps, so the batch degrades to the plain
    // lane path. Fault injection for the verify planner rides the
    // graph path, where a panicking node poisons only its own
    // submission.
    static SINGLE_THREADED_HOST: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    let single_threaded = exec.workers() <= 1
        || *SINGLE_THREADED_HOST
            .get_or_init(|| std::thread::available_parallelism().is_ok_and(|p| p.get() == 1));
    if single_threaded {
        let refs: Vec<&Signature> = sigs.iter().collect();
        return vk
            .verify_many(msgs, &refs)
            .into_iter()
            .map(VerifyOutcome::from_result)
            .collect();
    }

    // Preamble per signature, distributed over the pool (digesting a
    // long message is real hash work): the shape gate plus the digest
    // split and coordinate walk.
    let pres: Vec<Result<VerifyPreamble, SignError>> =
        crate::par::par_map_indexed_on(exec, m, exec.workers(), |i| {
            sigs[i].check_shape(&params)?;
            let digest = ctx.h_msg(&sigs[i].randomizer, pk_root, msgs[i]);
            let (md, mut tree_idx, mut leaf_idx) = hash::split_digest(&params, &digest);

            let mut keypair_adrs = Address::new();
            keypair_adrs.set_layer(0);
            keypair_adrs.set_tree(tree_idx);
            keypair_adrs.set_type(AddressType::ForsTree);
            keypair_adrs.set_keypair(leaf_idx);

            let mut walk = Vec::with_capacity(d);
            for _ in 0..d {
                walk.push((tree_idx, leaf_idx));
                leaf_idx = (tree_idx & ((1 << params.tree_height()) - 1)) as u32;
                tree_idx >>= params.tree_height();
            }
            Ok(VerifyPreamble {
                md,
                keypair_adrs,
                walk,
            })
        });

    // Malformed signatures resolve at plan time; the rest are "live"
    // and enter the graph, Valid until their recovered root says
    // otherwise.
    let mut out: Vec<VerifyOutcome> = pres
        .iter()
        .map(|pre| match pre {
            Ok(_) => VerifyOutcome::Valid,
            Err(e) => VerifyOutcome::from_result(Err(e.clone())),
        })
        .collect();
    let live: Vec<usize> = (0..m).filter(|&i| pres[i].is_ok()).collect();
    if live.is_empty() {
        return out;
    }
    let pres_ok: Vec<&VerifyPreamble> = live
        .iter()
        .map(|&i| pres[i].as_ref().expect("live indices are Ok"))
        .collect();

    // One rolling node slot per live signature: the FORS node writes
    // the recovered FORS pk, each layer node takes the previous root
    // and writes the next — the DAG edge is the hand-off.
    let node_slots: Slots<Vec<u8>> = Slots::new(live.len());

    let mut graph = TaskGraph::new();
    for (g, chunk) in live.chunks(VERIFY_GROUP).enumerate() {
        let base = g * VERIFY_GROUP;
        let (node_slots_ref, pres_ok_ref, ctx_ref) = (&node_slots, &pres_ok, &ctx);
        let fors_node = graph.task(move || {
            let (node_slots, pres_ok) = (node_slots_ref, pres_ok_ref);
            crate::faults::stage(crate::faults::PLAN_STAGE);
            let fors_sigs: Vec<&ForsSignature> = chunk.iter().map(|&i| &sigs[i].fors).collect();
            let mds: Vec<&[u8]> = (0..chunk.len())
                .map(|j| pres_ok[base + j].md.as_slice())
                .collect();
            let adrs: Vec<Address> = (0..chunk.len())
                .map(|j| pres_ok[base + j].keypair_adrs)
                .collect();
            for (off, pk) in fors::pk_from_sig_many(ctx_ref, &fors_sigs, &mds, &adrs)
                .into_iter()
                .enumerate()
            {
                node_slots.set(base + off, pk);
            }
        });
        let mut prev = fors_node;
        for layer in 0..d {
            let (node_slots_ref, pres_ok_ref, ctx_ref) = (&node_slots, &pres_ok, &ctx);
            let node = graph.task(move || {
                let (node_slots, pres_ok) = (node_slots_ref, pres_ok_ref);
                crate::faults::stage(crate::faults::PLAN_STAGE);
                // Own the previous roots first, then borrow them into
                // the lane-batched requests.
                let inputs: Vec<Vec<u8>> = (0..chunk.len())
                    .map(|j| node_slots.take(base + j))
                    .collect();
                let reqs: Vec<hypertree::XmssVerifyRequest> = chunk
                    .iter()
                    .zip(&inputs)
                    .enumerate()
                    .map(|(j, (&i, input))| {
                        let (tree, leaf_idx) = pres_ok[base + j].walk[layer];
                        hypertree::XmssVerifyRequest {
                            sig: &sigs[i].ht.layers[layer],
                            msg: input,
                            tree,
                            leaf_idx,
                        }
                    })
                    .collect();
                for (off, root) in hypertree::xmss_pk_from_sig_many(ctx_ref, layer as u32, &reqs)
                    .into_iter()
                    .enumerate()
                {
                    node_slots.set(base + off, root);
                }
            });
            graph.depends_on(node, prev);
            prev = node;
        }
    }
    exec.run(graph)
        .expect("verify plan construction yields a DAG");

    // Assembly: the surviving root either is the public key or the
    // signature is a well-formed forgery.
    for (j, &i) in live.iter().enumerate() {
        if node_slots.take(j) != pk_root {
            out[i] = VerifyOutcome::Invalid;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_params() -> Params {
        let mut p = Params::sphincs_128f();
        p.h = 6;
        p.d = 3;
        p.log_t = 4;
        p.k = 8;
        p
    }

    fn ctx_for(sk: &SigningKey) -> HashCtx {
        HashCtx::with_alg(*sk.params(), sk.pk_seed(), sk.alg())
    }

    #[test]
    fn planned_batch_matches_sequential_reference() {
        let mut rng = StdRng::seed_from_u64(41);
        let params = tiny_params();
        let (sk, vk) = hero_sphincs::keygen(params, &mut rng).unwrap();
        let ctx = ctx_for(&sk);
        for batch in [1usize, 2, 5] {
            let msgs_owned: Vec<Vec<u8>> = (0..batch).map(|i| vec![i as u8; 24 + i]).collect();
            let msgs: Vec<&[u8]> = msgs_owned.iter().map(Vec::as_slice).collect();
            for workers in [1usize, 4] {
                let exec = Executor::new(workers).unwrap();
                let sigs = sign_batch(&ctx, &sk, &msgs, &exec);
                assert_eq!(sigs.len(), batch);
                for (i, (msg, sig)) in msgs.iter().zip(&sigs).enumerate() {
                    assert_eq!(
                        *sig,
                        sk.sign(msg),
                        "batch={batch} workers={workers} msg {i}"
                    );
                    vk.verify(msg, sig).unwrap();
                }
            }
        }
    }

    #[test]
    fn shapes_do_not_change_bytes() {
        let mut rng = StdRng::seed_from_u64(42);
        let params = tiny_params();
        let (sk, _) = hero_sphincs::keygen(params, &mut rng).unwrap();
        let ctx = ctx_for(&sk);
        let msgs_owned: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i; 10]).collect();
        let msgs: Vec<&[u8]> = msgs_owned.iter().map(Vec::as_slice).collect();
        let exec2 = Executor::new(2).unwrap();
        let exec3 = Executor::new(3).unwrap();
        let reference = sign_batch(&ctx, &sk, &msgs, &exec2);
        for shape in [
            PlanShape {
                fors_trees_per_item: 1,
                subtrees_per_item: 1,
                chains_per_item: 1,
            },
            PlanShape {
                fors_trees_per_item: 3,
                subtrees_per_item: 4,
                chains_per_item: 5,
            },
            PlanShape {
                fors_trees_per_item: 1000,
                subtrees_per_item: 1000,
                chains_per_item: 1000,
            },
        ] {
            assert_eq!(
                sign_batch_shaped(&ctx, &sk, &msgs, &exec3, &shape),
                reference,
                "{shape:?}"
            );
        }
    }

    #[test]
    fn cached_batches_match_plain_cold_and_warm() {
        let mut rng = StdRng::seed_from_u64(44);
        let params = tiny_params();
        let (sk, vk) = hero_sphincs::keygen(params, &mut rng).unwrap();
        let ctx = ctx_for(&sk);
        let exec = Executor::new(4).unwrap();
        let cache = crate::cache::HypertreeCache::new(crate::cache::CacheConfig::default());
        let msgs_owned: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 20]).collect();
        let msgs: Vec<&[u8]> = msgs_owned.iter().map(Vec::as_slice).collect();
        let reference = sign_batch(&ctx, &sk, &msgs, &exec);

        let cold = sign_batch_cached(&ctx, &sk, &msgs, &exec, &cache);
        assert_eq!(cold, reference, "cold fill path");
        let after_cold = cache.stats();
        assert!(after_cold.misses > 0 && after_cold.resident_subtrees > 0);
        assert_eq!(after_cold.hits, 0);

        let warm = sign_batch_cached(&ctx, &sk, &msgs, &exec, &cache);
        assert_eq!(warm, reference, "warm slice path");
        let after_warm = cache.stats();
        assert_eq!(
            after_warm.hits,
            (msgs.len() * params.d) as u64,
            "every layer of every message served warm"
        );
        for (msg, sig) in msgs.iter().zip(&warm) {
            vk.verify(msg, sig).unwrap();
        }

        // A disabled cache routes everything down the plain path.
        let off = crate::cache::HypertreeCache::new(crate::cache::CacheConfig::disabled());
        assert_eq!(sign_batch_cached(&ctx, &sk, &msgs, &exec, &off), reference);
        assert_eq!(off.stats(), crate::cache::CacheStats::default());
    }

    #[test]
    fn warm_cache_prefills_so_first_sign_hits() {
        let mut rng = StdRng::seed_from_u64(45);
        let (sk, _) = hero_sphincs::keygen(tiny_params(), &mut rng).unwrap();
        let ctx = ctx_for(&sk);
        let exec = Executor::new(4).unwrap();
        let cache = crate::cache::HypertreeCache::new(crate::cache::CacheConfig::default());
        // Tiny shape: 16 + 4 + 1 trees, all within the default budget.
        assert_eq!(warm_cache(&ctx, &sk, &exec, &cache), 21);
        assert_eq!(warm_cache(&ctx, &sk, &exec, &cache), 0, "idempotent");

        let sigs = sign_batch_cached(&ctx, &sk, &[b"warmed"], &exec, &cache);
        assert_eq!(sigs[0], sk.sign(b"warmed"));
        let stats = cache.stats();
        assert_eq!(stats.hits, 3, "all layers pre-filled");
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn eviction_degrades_to_cold_never_errors() {
        let mut rng = StdRng::seed_from_u64(46);
        let params = tiny_params();
        let (sk_a, _) = hero_sphincs::keygen(params, &mut rng).unwrap();
        let (sk_b, _) = hero_sphincs::keygen(params, &mut rng).unwrap();
        let exec = Executor::new(2).unwrap();
        // One resident key: every key switch evicts the other.
        let cache = crate::cache::HypertreeCache::new(crate::cache::CacheConfig {
            max_keys: 1,
            ..crate::cache::CacheConfig::default()
        });
        for round in 0..3u8 {
            for sk in [&sk_a, &sk_b] {
                let ctx = ctx_for(sk);
                let msg = vec![round; 9];
                let sigs = sign_batch_cached(&ctx, sk, &[&msg], &exec, &cache);
                assert_eq!(sigs[0], sk.sign(&msg), "round {round}");
            }
        }
        let stats = cache.stats();
        assert!(stats.evictions >= 4, "{stats:?}");
        assert_eq!(stats.resident_keys, 1);
    }

    #[test]
    fn planned_verify_matches_scalar_verdicts() {
        let mut rng = StdRng::seed_from_u64(47);
        let params = tiny_params();
        let (sk, vk) = hero_sphincs::keygen(params, &mut rng).unwrap();
        for batch in [1usize, 2, 5, 9] {
            let msgs_owned: Vec<Vec<u8>> = (0..batch).map(|i| vec![i as u8; 16 + i]).collect();
            let msgs: Vec<&[u8]> = msgs_owned.iter().map(Vec::as_slice).collect();
            let mut sigs: Vec<Signature> = msgs.iter().map(|m| sk.sign(m)).collect();
            // Tamper with a spread of regions so mixed batches exercise
            // the per-index verdicts, not just all-pass.
            if batch > 1 {
                sigs[1].randomizer[0] ^= 1;
            }
            if batch > 4 {
                sigs[3].ht.layers[1].auth_path[0][0] ^= 1;
                sigs[4].fors.trees.pop();
            }
            for workers in [1usize, 4] {
                let exec = Executor::new(workers).unwrap();
                let outcomes = verify_batch(&vk, &msgs, &sigs, &exec);
                assert_eq!(outcomes.len(), batch);
                for (i, outcome) in outcomes.iter().enumerate() {
                    let scalar = VerifyOutcome::from_result(vk.verify(msgs[i], &sigs[i]));
                    assert_eq!(*outcome, scalar, "batch={batch} workers={workers} sig {i}");
                }
            }
        }
    }

    #[test]
    fn planned_verify_all_malformed_never_builds_a_graph() {
        let mut rng = StdRng::seed_from_u64(48);
        let (sk, vk) = hero_sphincs::keygen(tiny_params(), &mut rng).unwrap();
        let mut sig = sk.sign(b"m");
        sig.randomizer.pop();
        let exec = Executor::new(2).unwrap();
        let outcomes = verify_batch(&vk, &[b"m"], std::slice::from_ref(&sig), &exec);
        assert!(matches!(outcomes[0], VerifyOutcome::Malformed(_)));
    }

    #[test]
    fn planned_verify_empty_batch_is_empty() {
        let mut rng = StdRng::seed_from_u64(49);
        let (_, vk) = hero_sphincs::keygen(tiny_params(), &mut rng).unwrap();
        let exec = Executor::new(2).unwrap();
        assert!(verify_batch(&vk, &[], &[], &exec).is_empty());
    }

    #[test]
    fn empty_batch_is_empty() {
        let mut rng = StdRng::seed_from_u64(43);
        let (sk, _) = hero_sphincs::keygen(tiny_params(), &mut rng).unwrap();
        let ctx = ctx_for(&sk);
        let exec = Executor::new(4).unwrap();
        assert!(sign_batch(&ctx, &sk, &[], &exec).is_empty());
    }

    #[test]
    fn summary_counts_match_shape() {
        let params = tiny_params(); // k = 8, d = 3
        let shape = PlanShape {
            fors_trees_per_item: 8,
            subtrees_per_item: 2,
            chains_per_item: 4,
        };
        let s = summarize(&params, 5, &shape);
        assert_eq!(s.messages, 5);
        assert_eq!(s.fors_items, 5); // 40 trees / 8
        assert_eq!(s.fors_pk_items, 5);
        assert_eq!(s.subtree_items, 8); // 15 layers / 2
        assert_eq!(s.chain_items, 4); // 15 layers / 4
        assert_eq!(s.nodes(), 22);
        // The default shape widens subtree items only for real batches.
        assert_eq!(PlanShape::for_batch(1).subtrees_per_item, 1);
        assert_eq!(PlanShape::for_batch(64).subtrees_per_item, 2);
    }
}
