//! The `WOTS+_Sign` kernel: one-time signatures for every hypertree layer.
//!
//! Launched once the FORS and subtree roots exist (the only cross-kernel
//! dependency in the task graph, §III-F). Chains are fully independent —
//! one thread per chain, `d · len` chains per message. The baseline's
//! expensive division/modulo index arithmetic is rewritten into shifts
//! and masks (§IV-D), which is where most of its 2× speedup comes from.

use crate::kernels::{calib, KernelConfig};
use crate::ptx::{self, KernelKind};
use crate::workload;

use hero_gpu_sim::device::DeviceProps;
use hero_gpu_sim::isa::InstrClass;
use hero_gpu_sim::kernel::{KernelDesc, RoDataPlacement};
use hero_gpu_sim::occupancy::BlockResources;

use hero_sphincs::address::{Address, AddressType};
use hero_sphincs::hash::HashCtx;
use hero_sphincs::params::Params;
use hero_sphincs::wots;

/// Block geometry: one thread per WOTS+ chain, all layers of one message
/// in one block where they fit (`d · len` threads), else split.
pub fn block_threads(params: &Params) -> u32 {
    let chains = (params.d * params.wots_len()) as u32;
    if chains <= 1024 {
        chains
    } else {
        chains.div_ceil(2)
    }
}

/// Blocks per message (1 or 2 depending on chain count).
pub fn blocks_per_message(params: &Params) -> u32 {
    ((params.d * params.wots_len()) as u32).div_ceil(block_threads(params))
}

/// Builds the analytic kernel descriptor for `messages` messages.
pub fn describe(
    device: &DeviceProps,
    params: &Params,
    messages: u32,
    config: &KernelConfig,
) -> KernelDesc {
    let threads = block_threads(params);
    let mut regs = ptx::regs_per_thread(KernelKind::WotsSign, params, config.path);
    // The kernel must be resident: cap registers like __launch_bounds__
    // does when a big block would exceed the register file.
    let max_regs = device.registers_per_sm / threads;
    regs = regs.min(max_regs);

    let block = BlockResources {
        threads,
        regs_per_thread: regs,
        smem_bytes: 0,
    };
    let mut desc = KernelDesc::empty("WOTS+_Sign", messages * blocks_per_message(params), block);
    desc.ipc_factor = calib::WOTS_IPC;
    desc.active_thread_fraction = calib::WOTS_ACTIVE;

    let compressions = workload::wots_sign_expected_compressions(params) * messages as u64;
    desc.instr_total =
        ptx::compression_mix(KernelKind::WotsSign, params, config.path).scaled(compressions);

    // Index math: base-w digit extraction, checksum, chain addressing.
    let index_alu = if config.index_shift_rewrite {
        calib::SHIFT_ALU
    } else {
        calib::DIVMOD_ALU
    };
    desc.instr_total
        .add_count(InstrClass::Alu, index_alu * compressions);

    // Critical path: the longest chain (w-1 steps) plus PRF.
    desc.critical_path =
        ptx::compression_mix(KernelKind::WotsSign, params, config.path).scaled(params.w as u64);

    desc.syncs_per_block = 0; // chains never synchronize
    desc.ro_placement = config.placement;
    let output_bytes = (params.d * params.wots_sig_bytes()) as u64;
    match config.placement {
        RoDataPlacement::Constant | RoDataPlacement::GlobalVectorized => {
            desc.cmem_reads = compressions;
            desc.gmem_bytes = output_bytes * messages as u64;
        }
        RoDataPlacement::Global => {
            desc.gmem_bytes =
                compressions * calib::SEED_BYTES_PER_HASH / 2 + output_bytes * messages as u64;
        }
    }
    desc
}

/// One WOTS+ chain-group entry: sign `msg` (a FORS pk or subtree root)
/// with the keypair at `(layer, tree, leaf)`. Groups may span messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainGroupItem<'a> {
    /// The `n`-byte value this layer signs.
    pub msg: &'a [u8],
    /// Hypertree layer of the signing keypair.
    pub layer: u32,
    /// Tree index within the layer.
    pub tree: u64,
    /// Leaf (keypair) index within the tree.
    pub leaf: u32,
}

/// One plannable `WOTS+_Sign` stage: all chains of every item advance
/// through one shared multi-lane batch ([`wots::sign_many`]), so chains
/// retiring early in one item leave lanes to the others — the
/// cross-message mirror of the kernel's masked-thread retirement. Output
/// is bit-identical per item to [`hero_sphincs::wots::sign`].
pub fn sign_chain_groups(
    ctx: &HashCtx,
    sk_seed: &[u8],
    items: &[ChainGroupItem<'_>],
) -> Vec<Vec<Vec<u8>>> {
    let msgs: Vec<&[u8]> = items.iter().map(|item| item.msg).collect();
    let adrs_list: Vec<Address> = items
        .iter()
        .map(|item| {
            let mut adrs = Address::new();
            adrs.set_layer(item.layer);
            adrs.set_tree(item.tree);
            adrs.set_type(AddressType::WotsHash);
            adrs.set_keypair(item.leaf);
            adrs
        })
        .collect();
    wots::sign_many(ctx, &msgs, sk_seed, &adrs_list)
}

/// Functional `WOTS+_Sign`: signs `fors_pk` at layer 0 and each lower
/// layer's root above it, chains parallelized across workers.
/// Run-to-completion wrapper over the plannable [`sign_chain_groups`]
/// stage, one item per layer.
///
/// `roots[i]` is layer `i`'s subtree root (from
/// [`crate::kernels::tree_sign::run`]); `coords[i]` its `(tree, leaf)`.
/// Output is bit-identical to [`hero_sphincs::wots::sign`] per layer.
pub fn run(
    ctx: &HashCtx,
    sk_seed: &[u8],
    fors_pk: &[u8],
    roots: &[Vec<u8>],
    coords: &[(u64, u32)],
    workers: usize,
) -> Vec<Vec<Vec<u8>>> {
    let params = *ctx.params();
    assert_eq!(roots.len(), params.d);
    assert_eq!(coords.len(), params.d);

    crate::par::par_map_indexed(params.d, workers, |layer| {
        let msg = if layer == 0 {
            fors_pk
        } else {
            &roots[layer - 1]
        };
        let (tree, leaf) = coords[layer];
        let item = ChainGroupItem {
            msg,
            layer: layer as u32,
            tree,
            leaf,
        };
        sign_chain_groups(ctx, sk_seed, &[item])
            .pop()
            .expect("one output per item")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::tree_sign;
    use hero_gpu_sim::device::rtx_4090;
    use hero_gpu_sim::engine::simulate_kernel;
    use hero_gpu_sim::isa::Sha2Path;

    #[test]
    fn geometry_one_thread_per_chain() {
        let p128 = Params::sphincs_128f();
        assert_eq!(block_threads(&p128), 770); // 22 × 35
        assert_eq!(blocks_per_message(&p128), 1);
        let p192 = Params::sphincs_192f();
        assert_eq!(block_threads(&p192), 561); // 22 × 51 = 1122 split in 2
        assert_eq!(blocks_per_message(&p192), 2);
    }

    #[test]
    fn shift_rewrite_drives_speedup() {
        // Table VIII: WOTS+_Sign gains ~1.7–2× and its *compute
        // throughput decreases* — fewer instructions for the same work.
        let d = rtx_4090();
        for p in Params::fast_sets() {
            let path = if p.n == 32 {
                Sha2Path::Ptx
            } else {
                Sha2Path::Native
            };
            let base = simulate_kernel(&d, &describe(&d, &p, 1024, &KernelConfig::baseline()));
            let hero = simulate_kernel(&d, &describe(&d, &p, 1024, &KernelConfig::hero(path)));
            let speedup = base.time_us / hero.time_us;
            assert!(speedup > 1.3 && speedup < 3.0, "{}: {speedup}", p.name());
        }
    }

    #[test]
    fn functional_output_matches_reference_and_verifies() {
        let mut params = Params::sphincs_128f();
        params.h = 6;
        params.d = 3;
        let ctx = HashCtx::new(params, &[4u8; 16]);
        let sk_seed = vec![6u8; 16];
        let fors_pk = vec![0x11u8; 16];

        let layers = tree_sign::run(&ctx, &sk_seed, 2, 1, 8);
        let roots: Vec<Vec<u8>> = layers.iter().map(|l| l.root.clone()).collect();
        let coords: Vec<(u64, u32)> = layers.iter().map(|l| (l.tree_idx, l.leaf_idx)).collect();
        let sigs = run(&ctx, &sk_seed, &fors_pk, &roots, &coords, 8);

        // Each layer's WOTS+ signature must reconstruct that layer's leaf,
        // i.e. equal the reference signer's output.
        for (layer, sig) in sigs.iter().enumerate() {
            let msg = if layer == 0 {
                &fors_pk
            } else {
                &roots[layer - 1]
            };
            let (tree, leaf) = coords[layer];
            let mut adrs = Address::new();
            adrs.set_layer(layer as u32);
            adrs.set_tree(tree);
            adrs.set_type(AddressType::WotsHash);
            adrs.set_keypair(leaf);
            assert_eq!(
                *sig,
                wots::sign(&ctx, msg, &sk_seed, &adrs),
                "layer {layer}"
            );
        }
    }

    #[test]
    fn descriptor_always_resident() {
        let d = rtx_4090();
        for p in Params::fast_sets() {
            for cfg in [KernelConfig::baseline(), KernelConfig::hero(Sha2Path::Ptx)] {
                let desc = describe(&d, &p, 64, &cfg);
                let occ = hero_gpu_sim::occupancy::occupancy(&d, &desc.block);
                assert!(occ.blocks_per_sm >= 1, "{} {:?}", p.name(), desc.block);
            }
        }
    }
}
