//! The `TREE_Sign` kernel: hypertree (MSS) Merkle roots and
//! authentication paths for all `d` layers.
//!
//! One thread builds one WOTS+ leaf (`wots_gen_leaf`, the register-hungry
//! routine of Table III); the block then tree-reduces each subtree in
//! shared memory. All `d` subtrees are independent because every layer's
//! `(tree, leaf)` coordinates derive from the message digest alone
//! (Fig. 2), which is what lets HERO-Sign launch them together (§III-A).

use crate::kernels::{calib, KernelConfig};
use crate::ptx::{self, KernelKind};
use crate::workload;

use hero_gpu_sim::banks::{AccessStats, PaddingScheme, SharedMem};
use hero_gpu_sim::device::DeviceProps;
use hero_gpu_sim::isa::InstrClass;
use hero_gpu_sim::kernel::{KernelDesc, RoDataPlacement};
use hero_gpu_sim::occupancy::BlockResources;

use hero_sphincs::hash::HashCtx;
use hero_sphincs::hypertree;
use hero_sphincs::merkle::TreeHashOutput;
use hero_sphincs::params::Params;

/// Per-layer output of the kernel: the subtree's root plus the
/// authentication path of the signing leaf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayerTree {
    /// Hypertree layer (0 = bottom).
    pub layer: u32,
    /// Tree index within the layer.
    pub tree_idx: u64,
    /// Leaf used for signing at this layer.
    pub leaf_idx: u32,
    /// Merkle root of the subtree.
    pub root: Vec<u8>,
    /// Authentication path (`h/d` nodes).
    pub auth_path: Vec<Vec<u8>>,
}

/// The `(layer, tree, leaf)` walk derived from the digest (Fig. 2's loop).
pub fn layer_coordinates(params: &Params, mut tree_idx: u64, mut leaf_idx: u32) -> Vec<(u64, u32)> {
    let mut coords = Vec::with_capacity(params.d);
    for _ in 0..params.d {
        coords.push((tree_idx, leaf_idx));
        leaf_idx = (tree_idx & ((1 << params.tree_height()) - 1)) as u32;
        tree_idx >>= params.tree_height();
    }
    coords
}

/// Effective registers per thread after optional `__launch_bounds__`
/// capping.
pub fn effective_regs(params: &Params, config: &KernelConfig) -> u32 {
    let regs = ptx::regs_per_thread(KernelKind::TreeSign, params, config.path);
    if config.launch_bounds {
        regs.min(calib::TREE_LAUNCH_BOUNDS_REGS)
    } else {
        regs
    }
}

/// Replays the subtree reductions through the bank model: `d` subtrees of
/// `2^h'` leaves reduce side by side in one block's shared memory.
pub fn measure_reduction(params: &Params, padding: PaddingScheme) -> (AccessStats, AccessStats) {
    let mut sm = SharedMem::new(padding, params.n);
    let leaves_per_tree = params.subtree_leaves();
    let total = params.d * leaves_per_tree;

    // Leaf stores.
    for warp_start in (0..total).step_by(32) {
        let slots: Vec<usize> = (warp_start..(warp_start + 32).min(total)).collect();
        sm.warp_store(&slots);
    }
    // Reduction levels across all subtrees at once (each subtree owns a
    // contiguous slot range; parents are packed above the level).
    let mut level_base = 0usize;
    let mut per_tree = leaves_per_tree;
    while per_tree > 1 {
        let parents_per_tree = per_tree / 2;
        let total_parents = params.d * parents_per_tree;
        let parent_base = level_base + params.d * per_tree;
        for warp_start in (0..total_parents).step_by(32) {
            let end = (warp_start + 32).min(total_parents);
            let to_child = |i: usize, off: usize| {
                let tree = i / parents_per_tree;
                let within = i % parents_per_tree;
                level_base + tree * per_tree + 2 * within + off
            };
            let even: Vec<usize> = (warp_start..end).map(|i| to_child(i, 0)).collect();
            let odd: Vec<usize> = (warp_start..end).map(|i| to_child(i, 1)).collect();
            sm.warp_load(&even);
            sm.warp_load(&odd);
            let parents: Vec<usize> = (warp_start..end)
                .map(|i| {
                    parent_base + (i / parents_per_tree) * parents_per_tree + i % parents_per_tree
                })
                .collect();
            sm.warp_store(&parents);
        }
        level_base = parent_base;
        per_tree = parents_per_tree;
    }

    (sm.load_stats(), sm.store_stats())
}

/// Builds the analytic kernel descriptor for `messages` messages.
///
/// Block geometry: one block per message, one thread per hypertree leaf
/// (176/176/272 threads, §III-B1).
pub fn describe(
    device: &DeviceProps,
    params: &Params,
    messages: u32,
    config: &KernelConfig,
) -> KernelDesc {
    let padding = if config.padding {
        PaddingScheme::for_width(params.n)
    } else {
        PaddingScheme::none()
    };
    let threads = params.hypertree_total_leaves() as u32;
    let smem = (padding.padded_len(threads as usize * params.n) as u32)
        .min(device.smem_dynamic_max_per_block);
    let block = BlockResources {
        threads,
        regs_per_thread: effective_regs(params, config),
        smem_bytes: smem,
    };

    let mut desc = KernelDesc::empty("TREE_Sign", messages, block);
    desc.ipc_factor = calib::TREE_IPC;
    desc.active_thread_fraction = calib::TREE_ACTIVE;

    let compressions = workload::tree_sign_compressions(params) * messages as u64;
    desc.instr_total =
        ptx::compression_mix(KernelKind::TreeSign, params, config.path).scaled(compressions);

    // Critical path: one wots_gen_leaf plus the reduction tail.
    desc.critical_path = ptx::compression_mix(KernelKind::TreeSign, params, config.path)
        .scaled(workload::tree_sign_critical_compressions(params));

    let (loads, stores) = measure_reduction(params, padding);
    desc.smem_transactions = (loads.transactions + stores.transactions) * messages as u64;
    desc.smem_conflicts = (loads.conflicts + stores.conflicts) * messages as u64;
    desc.syncs_per_block = params.tree_height() as u64 + 1;

    desc.ro_placement = config.placement;
    let output_bytes =
        (params.d * (params.wots_sig_bytes() + params.tree_height() * params.n)) as u64;
    match config.placement {
        RoDataPlacement::Constant | RoDataPlacement::GlobalVectorized => {
            // §III-D: for TREE_Sign memory access is infrequent; HERO
            // keeps read-only data in global memory with vectorized
            // loads for 192f, constant memory otherwise. Either way the
            // per-hash scalar traffic disappears.
            desc.cmem_reads = compressions / 8;
            desc.gmem_bytes = output_bytes * messages as u64;
        }
        RoDataPlacement::Global => {
            desc.gmem_bytes =
                compressions * calib::SEED_BYTES_PER_HASH / 8 + output_bytes * messages as u64;
        }
    }
    desc.instr_total
        .add_count(InstrClass::Lds, desc.smem_transactions / 2);
    desc.instr_total
        .add_count(InstrClass::Sts, desc.smem_transactions / 2);

    desc
}

/// One hypertree subtree work item — a `(layer, tree, leaf)` treehash of
/// any message in the batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubtreeItem {
    /// Hypertree layer (0 = bottom).
    pub layer: u32,
    /// Tree index within the layer.
    pub tree_idx: u64,
    /// Leaf used for signing at this layer.
    pub leaf_idx: u32,
}

/// The per-message subtree item list (one per layer), from the digest's
/// `(tree, leaf)` walk.
pub fn subtree_items(params: &Params, tree_idx: u64, leaf_idx: u32) -> Vec<SubtreeItem> {
    layer_coordinates(params, tree_idx, leaf_idx)
        .into_iter()
        .enumerate()
        .map(|(layer, (tree, leaf))| SubtreeItem {
            layer: layer as u32,
            tree_idx: tree,
            leaf_idx: leaf,
        })
        .collect()
}

/// One plannable `TREE_Sign` stage: builds a group of subtrees — from any
/// mix of layers and messages — with every reduction level halved through
/// one combined multi-lane sweep
/// ([`hero_sphincs::merkle::treehash_many`]). Byte-identical per item to
/// a standalone treehash.
pub fn subtrees(ctx: &HashCtx, sk_seed: &[u8], items: &[SubtreeItem]) -> Vec<LayerTree> {
    let params = *ctx.params();
    let n = params.n;
    let jobs: Vec<hero_sphincs::merkle::TreeHashJob> = items
        .iter()
        .map(|item| {
            let mut node_adrs = hero_sphincs::address::Address::new();
            node_adrs.set_layer(item.layer);
            node_adrs.set_tree(item.tree_idx);
            node_adrs.set_type(hero_sphincs::address::AddressType::Tree);
            hero_sphincs::merkle::TreeHashJob {
                leaf_idx: item.leaf_idx,
                node_adrs,
                leaf_offset: 0,
            }
        })
        .collect();
    let outs = hero_sphincs::merkle::treehash_many(ctx, params.tree_height(), &jobs, |j, buf| {
        let item = &items[j];
        for (i, slot) in buf.chunks_exact_mut(n).enumerate() {
            hypertree::wots_leaf_into(ctx, sk_seed, item.layer, item.tree_idx, i as u32, slot);
        }
    });
    items
        .iter()
        .zip(outs)
        .map(|(item, TreeHashOutput { root, auth_path })| LayerTree {
            layer: item.layer,
            tree_idx: item.tree_idx,
            leaf_idx: item.leaf_idx,
            root,
            auth_path,
        })
        .collect()
}

/// Node-retaining variant of [`subtrees`]: builds each item's *entire*
/// subtree pyramid via
/// [`hero_sphincs::merkle::treehash_many_levels`] — same combined
/// multi-lane sweeps, but every level survives, so the result can be
/// memoized and later serve **any** leaf's root and authentication path.
/// [`LayerTree`]s sliced from the result
/// ([`layer_tree_from_levels`]) are byte-identical to [`subtrees`]'
/// output for the same coordinates.
pub fn subtree_levels(
    ctx: &HashCtx,
    sk_seed: &[u8],
    items: &[SubtreeItem],
) -> Vec<hero_sphincs::merkle::TreeLevels> {
    let params = *ctx.params();
    let n = params.n;
    let jobs: Vec<hero_sphincs::merkle::TreeHashJob> = items
        .iter()
        .map(|item| {
            let mut node_adrs = hero_sphincs::address::Address::new();
            node_adrs.set_layer(item.layer);
            node_adrs.set_tree(item.tree_idx);
            node_adrs.set_type(hero_sphincs::address::AddressType::Tree);
            hero_sphincs::merkle::TreeHashJob {
                leaf_idx: item.leaf_idx,
                node_adrs,
                leaf_offset: 0,
            }
        })
        .collect();
    hero_sphincs::merkle::treehash_many_levels(ctx, params.tree_height(), &jobs, |j, buf| {
        let item = &items[j];
        for (i, slot) in buf.chunks_exact_mut(n).enumerate() {
            hypertree::wots_leaf_into(ctx, sk_seed, item.layer, item.tree_idx, i as u32, slot);
        }
    })
}

/// Slices one item's [`LayerTree`] out of a retained subtree pyramid —
/// the warm-path counterpart of [`subtrees`], no hashing involved.
pub fn layer_tree_from_levels(
    levels: &hero_sphincs::merkle::TreeLevels,
    item: &SubtreeItem,
) -> LayerTree {
    let TreeHashOutput { root, auth_path } = levels.output_for(item.leaf_idx);
    LayerTree {
        layer: item.layer,
        tree_idx: item.tree_idx,
        leaf_idx: item.leaf_idx,
        root,
        auth_path,
    }
}

/// Functional `TREE_Sign`: computes every layer's subtree (root + auth
/// path + signing coordinates) in parallel. Run-to-completion wrapper
/// over the plannable [`subtrees`] stage, one item per layer.
///
/// Outputs are bit-identical to running
/// [`hero_sphincs::hypertree::xmss_sign`] layer by layer.
pub fn run(
    ctx: &HashCtx,
    sk_seed: &[u8],
    tree_idx: u64,
    leaf_idx: u32,
    workers: usize,
) -> Vec<LayerTree> {
    let params = *ctx.params();
    let items = subtree_items(&params, tree_idx, leaf_idx);

    crate::par::par_map_indexed(params.d, workers, |layer| {
        subtrees(ctx, sk_seed, &items[layer..layer + 1])
            .pop()
            .expect("one output per item")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_gpu_sim::device::rtx_4090;
    use hero_gpu_sim::engine::simulate_kernel;
    use hero_gpu_sim::isa::Sha2Path;

    #[test]
    fn coordinates_walk_matches_reference_loop() {
        let p = Params::sphincs_128f();
        let coords = layer_coordinates(&p, 0b101_011_111, 5);
        assert_eq!(coords.len(), p.d);
        assert_eq!(coords[0], (0b101_011_111, 5));
        assert_eq!(coords[1], (0b101_011, 0b111));
        assert_eq!(coords[2], (0b101, 0b011));
        assert_eq!(coords[3], (0, 0b101));
        assert_eq!(coords[4], (0, 0));
    }

    #[test]
    fn block_geometry_matches_paper_occupancies() {
        // §III-B1/Table III decoding: 176 threads @128 regs → 2 blocks →
        // 12 warps of 48 = 25%; 256f: 272 @168 → 1 block → 9 warps = 18.75%
        // ≈ the paper's 19%, and PTX (95 regs) doubles it to 37.5%.
        let d = rtx_4090();
        let p128 = Params::sphincs_128f();
        let base = describe(&d, &p128, 1024, &KernelConfig::baseline());
        let occ = hero_gpu_sim::occupancy::occupancy(&d, &base.block);
        assert!((occ.ratio - 0.25).abs() < 1e-9, "{occ:?}");

        let p256 = Params::sphincs_256f();
        let native = describe(&d, &p256, 1024, &KernelConfig::baseline());
        let occ_n = hero_gpu_sim::occupancy::occupancy(&d, &native.block);
        assert!((occ_n.ratio - 0.1875).abs() < 1e-9, "{occ_n:?}");

        let mut hero_cfg = KernelConfig::hero(Sha2Path::Ptx);
        hero_cfg.launch_bounds = false;
        let ptx = describe(&d, &p256, 1024, &hero_cfg);
        let occ_p = hero_gpu_sim::occupancy::occupancy(&d, &ptx.block);
        assert!((occ_p.ratio - 0.375).abs() < 1e-9, "{occ_p:?}");
        assert!((occ_p.ratio / occ_n.ratio - 2.0).abs() < 1e-9); // ≈ paper's 1.97×
    }

    #[test]
    fn hero_beats_baseline_moderately() {
        // Table VIII: TREE_Sign speedups are the smallest (1.06–1.26×) —
        // the kernel is compute-bound with little idle to recover.
        let d = rtx_4090();
        for p in Params::fast_sets() {
            let path = if p.n == 32 {
                Sha2Path::Ptx
            } else {
                Sha2Path::Native
            };
            let base =
                simulate_kernel(&d, &describe(&d, &p, 1024, &KernelConfig::baseline())).time_us;
            let hero =
                simulate_kernel(&d, &describe(&d, &p, 1024, &KernelConfig::hero(path))).time_us;
            let speedup = base / hero;
            assert!(speedup > 1.0 && speedup < 1.9, "{}: {speedup}", p.name());
        }
    }

    #[test]
    fn functional_output_matches_reference() {
        let mut params = Params::sphincs_128f();
        params.h = 6;
        params.d = 3;
        let ctx = HashCtx::new(params, &[8u8; 16]);
        let sk_seed = vec![2u8; 16];
        let layers = run(&ctx, &sk_seed, 0b10_01, 2, 8);
        assert_eq!(layers.len(), 3);

        // Compare each layer against xmss_sign's treehash output.
        let msg = vec![0xAAu8; 16];
        let mut root = msg.clone();
        let coords = layer_coordinates(&params, 0b10_01, 2);
        for (layer, lt) in layers.iter().enumerate() {
            let (tree, leaf) = coords[layer];
            assert_eq!((lt.tree_idx, lt.leaf_idx), (tree, leaf));
            let (sig, tree_root) =
                hypertree::xmss_sign(&ctx, &root, &sk_seed, layer as u32, tree, leaf);
            assert_eq!(lt.root, tree_root);
            assert_eq!(lt.auth_path, sig.auth_path);
            root = tree_root;
        }
    }

    #[test]
    fn retained_subtree_levels_slice_byte_identically() {
        let mut params = Params::sphincs_128f();
        params.h = 6;
        params.d = 3;
        let ctx = HashCtx::new(params, &[8u8; 16]);
        let sk_seed = vec![2u8; 16];
        let items = subtree_items(&params, 0b10_01, 2);
        let fresh = subtrees(&ctx, &sk_seed, &items);
        let retained = subtree_levels(&ctx, &sk_seed, &items);
        for ((item, fresh), levels) in items.iter().zip(&fresh).zip(&retained) {
            assert_eq!(&layer_tree_from_levels(levels, item), fresh);
            // The pyramid serves other leaves of the same tree too.
            let other = SubtreeItem {
                leaf_idx: item.leaf_idx ^ 1,
                ..*item
            };
            let fresh_other = subtrees(&ctx, &sk_seed, &[other]).pop().unwrap();
            assert_eq!(layer_tree_from_levels(levels, &other), fresh_other);
        }
    }

    #[test]
    fn padding_reduces_tree_conflicts() {
        for p in Params::fast_sets() {
            let (l0, s0) = measure_reduction(&p, PaddingScheme::none());
            let (l1, s1) = measure_reduction(&p, PaddingScheme::for_width(p.n));
            assert!(l1.conflicts + s1.conflicts <= l0.conflicts + s0.conflicts);
            // Table VI: TREE_Sign conflicts are orders of magnitude below
            // FORS_Sign's (hundreds vs tens of thousands per run).
            let fors_geom = super::super::fors_sign::ForsLayout::Mmtp.geometry(&p);
            let (fl, fs) =
                super::super::fors_sign::measure_reduction(&p, &fors_geom, PaddingScheme::none());
            let k = p.k as u64;
            assert!(
                (l0.conflicts + s0.conflicts) < (fl.conflicts + fs.conflicts) * k,
                "{}",
                p.name()
            );
        }
    }
}
