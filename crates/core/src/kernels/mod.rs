//! The three HERO-Sign component kernels.
//!
//! Each kernel has two faces:
//!
//! * a **functional** face, decomposed into plannable stages
//!   ([`fors_sign::sign_trees`] + [`fors_sign::roots_to_pk`],
//!   [`tree_sign::subtrees`], [`wots_sign::sign_chain_groups`]) that the
//!   cross-message batch planner ([`crate::plan`]) schedules as DAG
//!   nodes — one stage may carry work from several messages, filling the
//!   SHA lanes across message boundaries. The run-to-completion wrappers
//!   ([`fors_sign::run`], [`tree_sign::run`], [`wots_sign::run`]) drive
//!   the same stages over the worker pool for single-message use, and
//! * an **analytic** face (`describe`) that emits a
//!   [`hero_gpu_sim::KernelDesc`] for the timing engine, with
//!   bank-conflict counts *measured* by replaying the kernel's shared-
//!   memory access pattern through the bank model.

pub mod fors_sign;
pub mod tree_sign;
pub mod verify;
pub mod wots_sign;

use hero_gpu_sim::isa::Sha2Path;
use hero_gpu_sim::kernel::RoDataPlacement;

/// Per-kernel code-generation/config options (the levers of §III-C/D/E).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelConfig {
    /// SHA-2 code path (native or PTX).
    pub path: Sha2Path,
    /// Read-only data placement (§III-D Hybrid Memory).
    pub placement: RoDataPlacement,
    /// Bank-conflict padding enabled (§III-E FreeBank).
    pub padding: bool,
    /// `__launch_bounds__` register capping (§III-A / §IV-D: "idle time is
    /// largely mitigated through constraining register allocation").
    pub launch_bounds: bool,
    /// Division/modulo index math rewritten to shifts and masks
    /// (§IV-D: the WOTS+ compute-throughput reduction).
    pub index_shift_rewrite: bool,
}

impl KernelConfig {
    /// The baseline (TCAS-SPHINCSp) configuration.
    pub const fn baseline() -> Self {
        Self {
            path: Sha2Path::Native,
            placement: RoDataPlacement::Global,
            padding: false,
            launch_bounds: false,
            index_shift_rewrite: false,
        }
    }

    /// Fully optimized HERO-Sign configuration with `path` chosen by the
    /// adaptive selection.
    pub const fn hero(path: Sha2Path) -> Self {
        Self {
            path,
            placement: RoDataPlacement::Constant,
            padding: true,
            launch_bounds: true,
            index_shift_rewrite: true,
        }
    }
}

/// Calibration constants specific to the SPHINCS+ kernels (the GPU-wide
/// constants live in `hero_gpu_sim::engine::calib`). Values are fixed
/// against the paper's RTX 4090 measurements and then held for every
/// other architecture and experiment.
pub mod calib {
    /// Pipeline-efficiency factor of `FORS_Sign` (smem-coupled tree
    /// reduction — the reference dataflow the engine's `ETA_IPC` is
    /// anchored on).
    pub const FORS_IPC: f64 = 1.0;

    /// `TREE_Sign`: long independent WOTS+ chains per thread dual-issue
    /// far better than the reduction dataflow (ratio of the two kernels'
    /// per-compression rates in Table VIII).
    pub const TREE_IPC: f64 = 2.5;

    /// `WOTS+_Sign`: short fully independent chains, no shared memory in
    /// the inner loop at all.
    pub const WOTS_IPC: f64 = 3.5;

    /// Fraction of a sequential `Set` round's serial latency that remains
    /// exposed after cross-round pipelining (leaf PRF of round `i+1`
    /// overlaps the reduction tail of round `i`).
    pub const ROUND_OVERLAP_EXPOSED: f64 = 0.50;

    /// Average active-thread fraction of the baseline single-subtree FORS
    /// kernel (yields the ~27% achieved occupancy of Table VIII).
    pub const BASELINE_FORS_ACTIVE: f64 = 0.40;

    /// Active fraction of a fused FORS block (leaf phase dominates; the
    /// reduction tail idles half the threads per level).
    pub const FUSED_LEAF_ACTIVE: f64 = 0.75;

    /// Active fraction of `TREE_Sign` (uniform-length chains, minimal
    /// divergence).
    pub const TREE_ACTIVE: f64 = 0.95;

    /// Active fraction of `WOTS+_Sign` (message-dependent chain lengths
    /// diverge within warps).
    pub const WOTS_ACTIVE: f64 = 0.80;

    /// Extra ALU per compression for the baseline's division/modulo index
    /// arithmetic (emulated integer division on GPU).
    pub const DIVMOD_ALU: u64 = 500;

    /// Same index math after the shift/mask rewrite.
    pub const SHIFT_ALU: u64 = 24;

    /// Read-only seed/state bytes fetched per compression when seeds live
    /// in global memory (baseline; §III-D moves these to constant memory).
    pub const SEED_BYTES_PER_HASH: u64 = 48;

    /// Register cap applied by `__launch_bounds__` on `TREE_Sign`.
    pub const TREE_LAUNCH_BOUNDS_REGS: u32 = 104;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_and_hero_configs_differ_everywhere() {
        let b = KernelConfig::baseline();
        let h = KernelConfig::hero(Sha2Path::Ptx);
        assert_ne!(b.path, h.path);
        assert_ne!(b.placement, h.placement);
        assert!(!b.padding && h.padding);
        assert!(!b.launch_bounds && h.launch_bounds);
        assert!(!b.index_shift_rewrite && h.index_shift_rewrite);
    }
}
