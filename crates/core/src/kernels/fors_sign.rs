//! The `FORS_Sign` kernel: functional execution plus analytic descriptor.
//!
//! The paper's central FORS optimizations all live here: multiple-tree
//! parallelization (MMTP, §III-A), `Set` fusion with the OFFSET reuse
//! trick (§III-B2), the Relax-FORS register buffer (§III-B4), and the
//! bank-padding applied to the tree reduction (§III-E).

use crate::kernels::{calib, KernelConfig};
use crate::ptx::{self, KernelKind};
use crate::tuning::FusionCandidate;
use crate::workload;

use hero_gpu_sim::banks::{AccessStats, PaddingScheme, SharedMem};
use hero_gpu_sim::device::DeviceProps;
use hero_gpu_sim::isa::InstrClass;
use hero_gpu_sim::kernel::{KernelDesc, RoDataPlacement};
use hero_gpu_sim::occupancy::BlockResources;

use hero_sphincs::address::Address;
use hero_sphincs::fors::{self, ForsSignature};
use hero_sphincs::hash::HashCtx;
use hero_sphincs::params::Params;

/// How FORS trees are mapped onto thread blocks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ForsLayout {
    /// TCAS-SPHINCSp: one tree's leaves in flight at a time; the k trees
    /// serialize within the block.
    Baseline,
    /// Multiple Merkle trees in parallel, as many as fit a 1024-thread
    /// block, but `Set`s still serialize on shared memory (Fig. 3, left).
    Mmtp,
    /// Fused `Set`s from the Auto Tree Tuning search (Fig. 3, right).
    Fused(FusionCandidate),
    /// Fused layout with the Relax buffer: one thread produces two leaves
    /// into registers, halving bottom-layer shared memory (Fig. 4).
    Relax(FusionCandidate),
}

/// Resolved block geometry for a layout.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ForsGeometry {
    /// Threads per block.
    pub block_threads: u32,
    /// Trees materialized concurrently per block.
    pub concurrent_trees: u32,
    /// Sequential `Set` rounds per block (`ceil(k / concurrent)`).
    pub rounds: u32,
    /// Shared memory per block (bytes), before padding.
    pub smem_bytes: u32,
    /// Leaves generated per thread in the bottom phase (2 under Relax).
    pub leaves_per_thread: u32,
}

impl ForsLayout {
    /// Resolves the layout's geometry for `params`.
    pub fn geometry(&self, params: &Params) -> ForsGeometry {
        let t = params.t() as u32;
        let n = params.n as u32;
        let k = params.k as u32;
        match *self {
            ForsLayout::Baseline => ForsGeometry {
                block_threads: 1024,
                concurrent_trees: 1,
                rounds: k,
                smem_bytes: t * n,
                leaves_per_thread: 1,
            },
            ForsLayout::Mmtp => {
                let concurrent = (1024 / t).clamp(1, k);
                ForsGeometry {
                    block_threads: concurrent * t,
                    concurrent_trees: concurrent,
                    rounds: k.div_ceil(concurrent),
                    smem_bytes: concurrent * t * n,
                    leaves_per_thread: 1,
                }
            }
            ForsLayout::Fused(c) => ForsGeometry {
                block_threads: c.block_threads(),
                concurrent_trees: c.concurrent_trees(),
                rounds: k.div_ceil(c.concurrent_trees()),
                smem_bytes: c.smem_bytes,
                leaves_per_thread: 1,
            },
            ForsLayout::Relax(c) => ForsGeometry {
                block_threads: c.block_threads(),
                concurrent_trees: c.concurrent_trees(),
                rounds: k.div_ceil(c.concurrent_trees()),
                smem_bytes: c.smem_bytes,
                leaves_per_thread: 1 << c.relax_depth.max(1),
            },
        }
    }
}

/// Replays one `Set` round's tree reduction through the shared-memory
/// bank model, returning (load, store) statistics.
///
/// Layout mirrors Fig. 7: leaves occupy slots `[0, C·t)`; each level's
/// parents are stored above the previous level; thread `i` of a level
/// loads children `2i, 2i+1` (issued as an even and an odd warp phase)
/// and stores one parent.
pub fn measure_reduction(
    params: &Params,
    geometry: &ForsGeometry,
    padding: PaddingScheme,
) -> (AccessStats, AccessStats) {
    let mut sm = SharedMem::new(padding, params.n);
    let leaves = (geometry.concurrent_trees * params.t() as u32) as usize;
    // Levels 1..=depth reduce inside the register Relax Buffer: no
    // shared-memory traffic until a thread stores its level-`depth` node.
    let depth = geometry.leaves_per_thread.trailing_zeros() as usize;

    // Leaf phase: every leaf is stored once — unless Relax buffers the
    // bottom layer(s) in registers and stores level-`depth` nodes
    // directly.
    if depth == 0 {
        for warp_start in (0..leaves).step_by(32) {
            let slots: Vec<usize> = (warp_start..(warp_start + 32).min(leaves)).collect();
            sm.warp_store(&slots);
        }
    }

    let mut level_base = 0usize;
    let mut level_len = leaves;
    let mut level = 0usize;
    while level_len > 1 {
        level += 1;
        let parents = level_len / 2;
        let parent_base = level_base + level_len;
        let in_register_buffer = level < depth;
        if in_register_buffer {
            // Fully register-resident level: no smem traffic at all.
            level_base = parent_base;
            level_len = parents;
            continue;
        }
        if level > depth {
            // Loads of the two children per parent thread.
            for warp_start in (0..parents).step_by(32) {
                let end = (warp_start + 32).min(parents);
                let even: Vec<usize> = (warp_start..end).map(|i| level_base + 2 * i).collect();
                let odd: Vec<usize> = (warp_start..end).map(|i| level_base + 2 * i + 1).collect();
                sm.warp_load(&even);
                sm.warp_load(&odd);
            }
        }
        // Stores of the parents.
        for warp_start in (0..parents).step_by(32) {
            let end = (warp_start + 32).min(parents);
            let slots: Vec<usize> = (warp_start..end).map(|i| parent_base + i).collect();
            sm.warp_store(&slots);
        }
        level_base = parent_base;
        level_len = parents;
    }

    (sm.load_stats(), sm.store_stats())
}

/// Builds the analytic kernel descriptor for signing `messages` messages.
pub fn describe(
    device: &DeviceProps,
    params: &Params,
    messages: u32,
    layout: &ForsLayout,
    config: &KernelConfig,
) -> KernelDesc {
    let geometry = layout.geometry(params);
    let padding = if config.padding {
        PaddingScheme::for_width(params.n)
    } else {
        PaddingScheme::none()
    };

    // Real kernels must be resident: past the register file the compiler
    // spills (what `__launch_bounds__` forces), so cap the footprint.
    let regs = ptx::regs_per_thread(KernelKind::ForsSign, params, config.path)
        .min(device.registers_per_sm / geometry.block_threads);
    // Padding may push a budget-exact fusion past the device's opt-in
    // limit (e.g. Pascal has no dynamic smem above 48 KiB); real code
    // would shave one pad region, so clamp.
    let smem = (padding.padded_len(geometry.smem_bytes as usize) as u32)
        .min(device.smem_dynamic_max_per_block);
    let block = BlockResources {
        threads: geometry.block_threads,
        regs_per_thread: regs,
        smem_bytes: smem,
    };

    let mut desc = KernelDesc::empty("FORS_Sign", messages, block);
    desc.ipc_factor = calib::FORS_IPC;

    // Active-thread fraction: leaf-phase activity × block fill across
    // rounds (the last round is usually partial).
    let fill = params.k as f64 / (geometry.rounds as f64 * geometry.concurrent_trees as f64);
    desc.active_thread_fraction = match layout {
        ForsLayout::Baseline => calib::BASELINE_FORS_ACTIVE,
        _ => calib::FUSED_LEAF_ACTIVE * fill,
    };

    // Instruction total: every compression of every message.
    let compressions = workload::fors_sign_compressions(params) * messages as u64;
    desc.instr_total =
        ptx::compression_mix(KernelKind::ForsSign, params, config.path).scaled(compressions);

    // Critical path: sequential Set rounds, each a serial leaf phase
    // (2^depth leaves + the register-local sub-reduction) plus the shared
    // reduction levels; cross-round pipelining hides most of it.
    let h = workload::h_compressions(params);
    let lpt = geometry.leaves_per_thread as u64;
    let depth = geometry.leaves_per_thread.trailing_zeros() as u64;
    let serial_per_round = 2 * lpt + (lpt - 1) * h + (params.log_t as u64 - depth) * h;
    let exposed = (geometry.rounds as u64 * serial_per_round) as f64 * calib::ROUND_OVERLAP_EXPOSED;
    desc.critical_path = ptx::compression_mix(KernelKind::ForsSign, params, config.path)
        .scaled(exposed.ceil() as u64);

    // Shared-memory traffic: measured reduction pattern × rounds × msgs.
    let (loads, stores) = measure_reduction(params, &geometry, padding);
    let per_round = loads.transactions + stores.transactions;
    let conflicts_per_round = loads.conflicts + stores.conflicts;
    desc.smem_transactions = per_round * geometry.rounds as u64 * messages as u64;
    desc.smem_conflicts = conflicts_per_round * geometry.rounds as u64 * messages as u64;

    // Barriers: one per reduction level per round, plus the leaf barrier.
    desc.syncs_per_block = geometry.rounds as u64 * (params.log_t as u64 + 1);

    // Memory placement of seeds / initial state (§III-D).
    desc.ro_placement = config.placement;
    match config.placement {
        RoDataPlacement::Constant => {
            desc.cmem_reads = compressions * 2;
            desc.gmem_bytes = params.fors_sig_bytes() as u64 * messages as u64;
        }
        _ => {
            desc.gmem_bytes = compressions * calib::SEED_BYTES_PER_HASH
                + params.fors_sig_bytes() as u64 * messages as u64;
        }
    }
    desc.instr_total
        .add_count(InstrClass::Lds, desc.smem_transactions / 2);
    desc.instr_total
        .add_count(InstrClass::Sts, desc.smem_transactions / 2);

    desc
}

/// Builds the `FORS_Sign` work-item list for one message: one
/// [`fors::ForsTreeRequest`] per tree, leaf indices decoded from `md`.
/// The batch planner concatenates these lists across messages and chunks
/// them into [`sign_trees`] stages.
pub fn tree_requests(
    params: &Params,
    md: &[u8],
    keypair_adrs: &Address,
) -> Vec<fors::ForsTreeRequest> {
    fors::message_to_indices(params, md)
        .into_iter()
        .enumerate()
        .map(|(tree_idx, leaf_idx)| fors::ForsTreeRequest {
            keypair_adrs: *keypair_adrs,
            tree_idx: tree_idx as u32,
            leaf_idx,
        })
        .collect()
}

/// One plannable `FORS_Sign` stage: builds a group of trees — from any
/// mix of messages — returning each tree's revealed secret + auth path
/// and its root. Secrets derive in one `PRF` sweep and the reductions run
/// through [`fors::tree_hash_many`]'s combined lanes.
pub fn sign_trees(
    ctx: &HashCtx,
    sk_seed: &[u8],
    reqs: &[fors::ForsTreeRequest],
) -> Vec<(fors::ForsTreeSig, Vec<u8>)> {
    let sks = fors::sk_elements_many(ctx, sk_seed, reqs);
    let outs = fors::tree_hash_many(ctx, sk_seed, reqs);
    sks.into_iter()
        .zip(outs)
        .map(|(sk, out)| {
            (
                fors::ForsTreeSig {
                    sk,
                    auth_path: out.auth_path,
                },
                out.root,
            )
        })
        .collect()
}

/// The final `T_k` stage: compresses one message's `k` tree roots
/// (concatenated in `roots_flat`) into its FORS public key.
pub fn roots_to_pk(ctx: &HashCtx, keypair_adrs: &Address, roots_flat: &[u8]) -> Vec<u8> {
    let mut roots_adrs = Address::new();
    roots_adrs.copy_subtree_from(keypair_adrs);
    roots_adrs.set_type(hero_sphincs::address::AddressType::ForsRoots);
    roots_adrs.set_keypair(keypair_adrs.keypair());
    let mut pk = vec![0u8; ctx.params().n];
    ctx.t_l_flat_into(&roots_adrs, roots_flat, &mut pk);
    pk
}

/// Functional `FORS_Sign`: computes the FORS signature and public key for
/// one message digest, parallelized across the `k` trees (the data
/// independence of §II-A2). Run-to-completion wrapper over the plannable
/// stages ([`sign_trees`] per tree, then [`roots_to_pk`]).
///
/// The output is bit-identical to [`hero_sphincs::fors::sign`] /
/// [`hero_sphincs::fors::pk_from_sig`].
pub fn run(
    ctx: &HashCtx,
    sk_seed: &[u8],
    md: &[u8],
    keypair_adrs: &Address,
    workers: usize,
) -> (ForsSignature, Vec<u8>) {
    let params = *ctx.params();
    let reqs = tree_requests(&params, md, keypair_adrs);

    let trees = crate::par::par_map_indexed(params.k, workers, |tree_idx| {
        sign_trees(ctx, sk_seed, &reqs[tree_idx..tree_idx + 1])
            .pop()
            .expect("one output per request")
    });

    let n = params.n;
    let mut tree_sigs = Vec::with_capacity(params.k);
    let mut roots_flat = vec![0u8; params.k * n];
    for (tree_idx, (sig, root)) in trees.into_iter().enumerate() {
        tree_sigs.push(sig);
        roots_flat[tree_idx * n..(tree_idx + 1) * n].copy_from_slice(&root);
    }
    let pk = roots_to_pk(ctx, keypair_adrs, &roots_flat);

    (ForsSignature { trees: tree_sigs }, pk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuning::{tune, tune_auto, TuningOptions};
    use hero_gpu_sim::device::rtx_4090;
    use hero_gpu_sim::engine::simulate_kernel;
    use hero_gpu_sim::isa::Sha2Path;
    use hero_sphincs::address::AddressType;

    fn fused_layout(params: &Params) -> ForsLayout {
        let r = tune_auto(&rtx_4090(), params, &TuningOptions::default()).unwrap();
        if r.best.block_threads() < params.t() as u32 || params.n == 32 {
            ForsLayout::Relax(r.best)
        } else {
            ForsLayout::Fused(r.best)
        }
    }

    #[test]
    fn geometry_sanity() {
        let p = Params::sphincs_128f();
        let base = ForsLayout::Baseline.geometry(&p);
        assert_eq!(base.rounds, 33);
        let mmtp = ForsLayout::Mmtp.geometry(&p);
        assert_eq!(mmtp.concurrent_trees, 16);
        assert_eq!(mmtp.rounds, 3);
        let fused = fused_layout(&p).geometry(&p);
        assert_eq!(fused.concurrent_trees, 33);
        assert_eq!(fused.rounds, 1);
    }

    #[test]
    fn padding_eliminates_measured_conflicts() {
        for p in Params::fast_sets() {
            let geom = ForsLayout::Mmtp.geometry(&p);
            let (l0, s0) = measure_reduction(&p, &geom, PaddingScheme::none());
            let (l1, s1) = measure_reduction(&p, &geom, PaddingScheme::for_width(p.n));
            assert!(
                l0.conflicts + s0.conflicts > 0,
                "{}: baseline must conflict",
                p.name()
            );
            assert!(
                l1.conflicts + s1.conflicts <= (l0.conflicts + s0.conflicts) / 10,
                "{}: padding must (near-)eliminate conflicts: {} -> {}",
                p.name(),
                l0.conflicts + s0.conflicts,
                l1.conflicts + s1.conflicts
            );
        }
    }

    #[test]
    fn fusion_speeds_up_fors() {
        // The Fig. 11 ladder must be monotone: baseline < mmtp < fused.
        let d = rtx_4090();
        let p = Params::sphincs_128f();
        let cfg = KernelConfig::baseline();
        let t_base =
            simulate_kernel(&d, &describe(&d, &p, 1024, &ForsLayout::Baseline, &cfg)).time_us;
        let t_mmtp = simulate_kernel(&d, &describe(&d, &p, 1024, &ForsLayout::Mmtp, &cfg)).time_us;
        let fused = fused_layout(&p);
        let t_fused = simulate_kernel(&d, &describe(&d, &p, 1024, &fused, &cfg)).time_us;
        assert!(t_mmtp < t_base, "mmtp {t_mmtp} vs baseline {t_base}");
        assert!(t_fused <= t_mmtp * 1.02, "fused {t_fused} vs mmtp {t_mmtp}");
    }

    #[test]
    fn hero_config_beats_baseline_config() {
        let d = rtx_4090();
        for p in Params::fast_sets() {
            let fused = fused_layout(&p);
            let base = simulate_kernel(
                &d,
                &describe(
                    &d,
                    &p,
                    1024,
                    &ForsLayout::Baseline,
                    &KernelConfig::baseline(),
                ),
            )
            .time_us;
            let hero = simulate_kernel(
                &d,
                &describe(&d, &p, 1024, &fused, &KernelConfig::hero(Sha2Path::Ptx)),
            )
            .time_us;
            let speedup = base / hero;
            assert!(
                speedup > 1.25 && speedup < 4.0,
                "{}: speedup {speedup}",
                p.name()
            );
        }
    }

    #[test]
    fn functional_output_matches_reference() {
        let params = {
            let mut p = Params::sphincs_128f();
            p.k = 8;
            p.log_t = 4;
            p
        };
        let ctx = HashCtx::new(params, &[3u8; 16]);
        let sk_seed = vec![9u8; 16];
        let mut adrs = Address::new();
        adrs.set_tree(77);
        adrs.set_type(AddressType::ForsTree);
        adrs.set_keypair(5);
        let md = vec![0xB4u8; 4];

        let (sig, pk) = run(&ctx, &sk_seed, &md, &adrs, 8);
        let reference = fors::sign(&ctx, &md, &sk_seed, &adrs);
        assert_eq!(sig, reference);
        assert_eq!(pk, fors::pk_from_sig(&ctx, &reference, &md, &adrs));
    }

    #[test]
    fn relax_skips_bottom_layer_stores() {
        let p = Params::sphincs_256f();
        let r = crate::tuning::tune_relax(&rtx_4090(), &p, &TuningOptions::default()).unwrap();
        let relax_geom = ForsLayout::Relax(r.best).geometry(&p);
        let plain = tune(&rtx_4090(), &p, &TuningOptions::default()).unwrap();
        let plain_geom = ForsLayout::Fused(plain.best).geometry(&p);
        let (rl, rs) = measure_reduction(&p, &relax_geom, PaddingScheme::none());
        let (_, ps) = measure_reduction(&p, &plain_geom, PaddingScheme::none());
        // Per concurrent tree, relax performs fewer stores (no leaf layer).
        let relax_stores_per_tree = rs.transactions / relax_geom.concurrent_trees as u64;
        let plain_stores_per_tree = ps.transactions / plain_geom.concurrent_trees as u64;
        assert!(relax_stores_per_tree < plain_stores_per_tree);
        assert!(rl.transactions > 0);
    }

    #[test]
    fn descriptor_is_launchable() {
        let d = rtx_4090();
        for p in Params::fast_sets() {
            let fused = fused_layout(&p);
            for cfg in [KernelConfig::baseline(), KernelConfig::hero(Sha2Path::Ptx)] {
                let desc = describe(&d, &p, 256, &fused, &cfg);
                let occ = hero_gpu_sim::occupancy::occupancy(&d, &desc.block);
                assert!(
                    occ.blocks_per_sm >= 1,
                    "{} {:?}: not resident ({:?})",
                    p.name(),
                    cfg.path,
                    desc.block
                );
            }
        }
    }
}
