//! Batch signature **verification** on the GPU model (extension beyond
//! the paper, which accelerates generation only).
//!
//! Verification is far lighter than signing — one FORS leaf + path per
//! tree and one WOTS+ `pk_from_sig` chain completion per layer, no tree
//! builds — but high-throughput consumers (block validators, update
//! servers) batch-verify too. The kernel decomposition mirrors signing:
//! chains and trees are independent, one block per message.

use crate::kernels::{calib, KernelConfig};
use crate::ptx::{self, KernelKind};
use crate::workload;

use hero_gpu_sim::device::DeviceProps;
use hero_gpu_sim::kernel::KernelDesc;
use hero_gpu_sim::occupancy::BlockResources;

use hero_sphincs::params::Params;
use hero_sphincs::sign::SignError;
use hero_sphincs::{Signature, VerifyingKey};

/// Expected compressions to verify one signature: FORS (k × (1 leaf-F +
/// log t path-H) + T_k) plus hypertree (d × (len chain completions
/// averaging (w-1)/2 steps + T_len + h' path-H)).
pub fn verify_expected_compressions(params: &Params) -> u64 {
    let f = workload::f_compressions(params);
    let h = workload::h_compressions(params);
    let fors = params.k as u64 * (f + params.log_t as u64 * h)
        + workload::t_l_compressions(params, params.k);
    let len = params.wots_len() as u64;
    let avg_chain_remainder = len * (params.w as u64 - 1) / 2;
    let ht = params.d as u64
        * (avg_chain_remainder * f
            + workload::t_l_compressions(params, params.wots_len())
            + params.tree_height() as u64 * h);
    fors + ht
}

/// Analytic descriptor for a batch-verification kernel over `messages`
/// signatures: one thread per WOTS+ chain / FORS tree, one block per
/// message (chains dominate, so geometry follows `WOTS+_Sign`).
pub fn describe(
    device: &DeviceProps,
    params: &Params,
    messages: u32,
    config: &KernelConfig,
) -> KernelDesc {
    let threads = ((params.d * params.wots_len() + params.k) as u32).min(1024);
    let mut regs = ptx::regs_per_thread(KernelKind::WotsSign, params, config.path);
    regs = regs.min(device.registers_per_sm / threads);
    let block = BlockResources {
        threads,
        regs_per_thread: regs,
        smem_bytes: 0,
    };

    let mut desc = KernelDesc::empty("Verify", messages, block);
    desc.ipc_factor = calib::WOTS_IPC;
    desc.active_thread_fraction = calib::WOTS_ACTIVE;

    let compressions = verify_expected_compressions(params) * messages as u64;
    desc.instr_total =
        ptx::compression_mix(KernelKind::WotsSign, params, config.path).scaled(compressions);
    desc.critical_path = ptx::compression_mix(KernelKind::WotsSign, params, config.path)
        .scaled(params.w as u64 + params.log_t as u64);

    desc.ro_placement = config.placement;
    // Verification streams the whole signature in from global memory.
    desc.gmem_bytes = params.sig_bytes() as u64 * messages as u64;
    desc
}

/// Functional batch verification: verifies `sigs[i]` over `msgs[i]`,
/// parallelized across messages on the worker pool.
///
/// Returns per-message results (all `Ok` for a valid batch); does not
/// short-circuit, matching a GPU batch that always runs to completion.
///
/// # Errors
///
/// [`crate::HeroError::BatchMismatch`] when `msgs.len() != sigs.len()`
/// (nothing is silently paired by the shorter slice).
pub fn run_batch(
    vk: &VerifyingKey,
    msgs: &[&[u8]],
    sigs: &[Signature],
    workers: usize,
) -> Result<Vec<Result<(), SignError>>, crate::HeroError> {
    if msgs.len() != sigs.len() {
        return Err(crate::HeroError::BatchMismatch {
            messages: msgs.len(),
            signatures: sigs.len(),
        });
    }
    Ok(crate::par::par_map_indexed(msgs.len(), workers, |i| {
        vk.verify(msgs[i], &sigs[i])
    }))
}

/// [`run_batch`] submitting onto an explicit persistent runtime — the
/// engine's path ([`crate::engine::HeroSigner::verify_batch`]), so
/// concurrent verification interleaves with in-flight signing
/// submissions on the same workers.
///
/// # Errors
///
/// As [`run_batch`].
pub fn run_batch_on(
    vk: &VerifyingKey,
    msgs: &[&[u8]],
    sigs: &[Signature],
    exec: &hero_task_graph::Executor,
) -> Result<Vec<Result<(), SignError>>, crate::HeroError> {
    if msgs.len() != sigs.len() {
        return Err(crate::HeroError::BatchMismatch {
            messages: msgs.len(),
            signatures: sigs.len(),
        });
    }
    Ok(crate::par::par_map_indexed_on(
        exec,
        msgs.len(),
        exec.workers(),
        |i| vk.verify(msgs[i], &sigs[i]),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_gpu_sim::device::rtx_4090;
    use hero_gpu_sim::engine::simulate_kernel;
    use hero_gpu_sim::isa::Sha2Path;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_params() -> Params {
        let mut p = Params::sphincs_128f();
        p.h = 6;
        p.d = 3;
        p.log_t = 4;
        p.k = 8;
        p
    }

    #[test]
    fn verification_is_much_cheaper_than_signing() {
        for p in Params::fast_sets() {
            let sign = workload::total_sign_compressions(&p);
            let verify = verify_expected_compressions(&p);
            assert!(
                verify * 10 < sign,
                "{}: verify {verify} vs sign {sign}",
                p.name()
            );
        }
    }

    #[test]
    fn batch_verify_functional() {
        let mut rng = StdRng::seed_from_u64(77);
        let params = tiny_params();
        let (sk, vk) = hero_sphincs::keygen(params, &mut rng).unwrap();
        let msgs: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 16]).collect();
        let slices: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let mut sigs: Vec<Signature> = slices.iter().map(|m| sk.sign(m)).collect();

        let results = run_batch(&vk, &slices, &sigs, 4).unwrap();
        assert!(results.iter().all(Result::is_ok));

        // Corrupt one signature: exactly that slot fails, others still pass.
        sigs[2].fors.trees[0].sk[0] ^= 1;
        let results = run_batch(&vk, &slices, &sigs, 4).unwrap();
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.is_err(), i == 2, "slot {i}");
        }
    }

    #[test]
    fn verify_kernel_simulates_fast() {
        let d = rtx_4090();
        for p in Params::fast_sets() {
            let cfg = KernelConfig::hero(Sha2Path::Native);
            let verify = simulate_kernel(&d, &describe(&d, &p, 1024, &cfg));
            assert!(verify.time_us.is_finite() && verify.time_us > 0.0);
            // Verification throughput dwarfs signing throughput.
            let kops = 1024.0 / verify.time_us * 1.0e3;
            assert!(kops > 100.0, "{}: verify at {kops} KOPS", p.name());
        }
    }

    #[test]
    fn mismatched_batch_lengths_are_typed_errors() {
        let mut rng = StdRng::seed_from_u64(78);
        let params = tiny_params();
        let (sk, vk) = hero_sphincs::keygen(params, &mut rng).unwrap();
        let sig = sk.sign(b"one");
        let err = run_batch(
            &vk,
            &[b"one".as_slice(), b"two".as_slice()],
            std::slice::from_ref(&sig),
            1,
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                crate::HeroError::BatchMismatch {
                    messages: 2,
                    signatures: 1
                }
            ),
            "{err}"
        );
        // The empty batch is consistent, not mismatched.
        assert!(run_batch(&vk, &[], &[], 1).unwrap().is_empty());
    }
}
