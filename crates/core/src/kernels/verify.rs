//! Batch signature **verification** on the GPU model (extension beyond
//! the paper, which accelerates generation only).
//!
//! Verification is far lighter than signing — one FORS leaf + path per
//! tree and one WOTS+ `pk_from_sig` chain completion per layer, no tree
//! builds — but high-throughput consumers (block validators, update
//! servers) batch-verify too. The kernel decomposition mirrors signing:
//! chains and trees are independent, one block per message.
//!
//! Three functional flavors, all returning the same typed
//! [`VerifyOutcome`] verdicts bit-for-bit:
//!
//! * [`run_batch`] / [`run_batch_on`] — scalar per-message verifies
//!   parallelized across the batch (the oracle).
//! * [`run_batch_lanes`] — one [`VerifyingKey::verify_many`] call, so
//!   every hash stage sweeps all signatures through the multi-lane hash
//!   cores at once.
//! * [`run_batch_planned`] — the lane-batched stages become a
//!   cross-signature stage graph ([`crate::plan::verify_batch`]) on the
//!   persistent worker pool.

use crate::kernels::{calib, KernelConfig};
use crate::ptx::{self, KernelKind};
use crate::workload;

use hero_gpu_sim::device::DeviceProps;
use hero_gpu_sim::kernel::KernelDesc;
use hero_gpu_sim::occupancy::BlockResources;

use hero_sphincs::params::Params;
use hero_sphincs::sign::SignError;
use hero_sphincs::{Signature, VerifyingKey};

/// Per-message verdict of a batched verification.
///
/// A mixed batch must report exactly *which* indices failed, and why —
/// a single pass/fail bit over the whole batch forces callers to
/// re-verify sequentially to locate the bad signature. The three
/// variants split the two distinct failure modes:
///
/// * [`VerifyOutcome::Invalid`] — the signature is well-formed, the
///   full root recomputation ran, and the recovered root does not match
///   the public key (a forgery, tampering, or the wrong key).
/// * [`VerifyOutcome::Malformed`] — the signature failed the shape
///   gate ([`hero_sphincs::Signature::check_shape`]) and never reached
///   root recomputation; the payload says which dimension was off.
///
/// # Examples
///
/// ```
/// use hero_sign::kernels::verify::{run_batch, VerifyOutcome};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut params = hero_sphincs::Params::sphincs_128f();
/// params.h = 6;
/// params.d = 3;
/// params.log_t = 4;
/// params.k = 8;
/// let mut rng = StdRng::seed_from_u64(7);
/// let (sk, vk) = hero_sphincs::keygen(params, &mut rng).unwrap();
///
/// let msgs: Vec<&[u8]> = vec![b"pay alice", b"pay bob"];
/// let mut sigs: Vec<_> = msgs.iter().map(|m| sk.sign(m)).collect();
/// sigs[1].randomizer[0] ^= 1; // tamper with the second signature
///
/// let outcomes = run_batch(&vk, &msgs, &sigs, 2).unwrap();
/// assert_eq!(outcomes[0], VerifyOutcome::Valid);
/// assert_eq!(outcomes[1], VerifyOutcome::Invalid);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// The signature verified under the key.
    Valid,
    /// Well-formed signature whose recomputed hypertree root does not
    /// match the public key.
    Invalid,
    /// The signature failed the shape gate before any hashing; the
    /// string names the offending dimension.
    Malformed(String),
}

impl VerifyOutcome {
    /// `true` only for [`VerifyOutcome::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, VerifyOutcome::Valid)
    }

    /// Folds a scalar [`VerifyingKey::verify`] result into the typed
    /// outcome (the bridge between the substrate's `Result` surface and
    /// the batch API).
    pub fn from_result(result: Result<(), SignError>) -> Self {
        match result {
            Ok(()) => VerifyOutcome::Valid,
            Err(SignError::VerificationFailed) => VerifyOutcome::Invalid,
            Err(SignError::MalformedSignature(what)) | Err(SignError::InvalidParams(what)) => {
                VerifyOutcome::Malformed(what)
            }
        }
    }
}

impl std::fmt::Display for VerifyOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyOutcome::Valid => write!(f, "valid"),
            VerifyOutcome::Invalid => write!(f, "invalid"),
            VerifyOutcome::Malformed(what) => write!(f, "malformed ({what})"),
        }
    }
}

fn check_lengths(msgs: &[&[u8]], sigs: &[Signature]) -> Result<(), crate::HeroError> {
    if msgs.len() != sigs.len() {
        return Err(crate::HeroError::BatchMismatch {
            messages: msgs.len(),
            signatures: sigs.len(),
        });
    }
    Ok(())
}

/// Expected compressions to verify one signature: FORS (k × (1 leaf-F +
/// log t path-H) + T_k) plus hypertree (d × (len chain completions
/// averaging (w-1)/2 steps + T_len + h' path-H)).
pub fn verify_expected_compressions(params: &Params) -> u64 {
    let f = workload::f_compressions(params);
    let h = workload::h_compressions(params);
    let fors = params.k as u64 * (f + params.log_t as u64 * h)
        + workload::t_l_compressions(params, params.k);
    let len = params.wots_len() as u64;
    let avg_chain_remainder = len * (params.w as u64 - 1) / 2;
    let ht = params.d as u64
        * (avg_chain_remainder * f
            + workload::t_l_compressions(params, params.wots_len())
            + params.tree_height() as u64 * h);
    fors + ht
}

/// Analytic descriptor for a batch-verification kernel over `messages`
/// signatures: one thread per WOTS+ chain / FORS tree, one block per
/// message (chains dominate, so geometry follows `WOTS+_Sign`).
pub fn describe(
    device: &DeviceProps,
    params: &Params,
    messages: u32,
    config: &KernelConfig,
) -> KernelDesc {
    let threads = ((params.d * params.wots_len() + params.k) as u32).min(1024);
    let mut regs = ptx::regs_per_thread(KernelKind::WotsSign, params, config.path);
    regs = regs.min(device.registers_per_sm / threads);
    let block = BlockResources {
        threads,
        regs_per_thread: regs,
        smem_bytes: 0,
    };

    let mut desc = KernelDesc::empty("Verify", messages, block);
    desc.ipc_factor = calib::WOTS_IPC;
    desc.active_thread_fraction = calib::WOTS_ACTIVE;

    let compressions = verify_expected_compressions(params) * messages as u64;
    desc.instr_total =
        ptx::compression_mix(KernelKind::WotsSign, params, config.path).scaled(compressions);
    desc.critical_path = ptx::compression_mix(KernelKind::WotsSign, params, config.path)
        .scaled(params.w as u64 + params.log_t as u64);

    desc.ro_placement = config.placement;
    // Verification streams the whole signature in from global memory.
    desc.gmem_bytes = params.sig_bytes() as u64 * messages as u64;
    desc
}

/// Functional batch verification, scalar flavor: verifies `sigs[i]`
/// over `msgs[i]` with independent per-message `vk.verify` calls,
/// parallelized across messages on a transient worker pool.
///
/// Returns one typed [`VerifyOutcome`] per message (all `Valid` for a
/// valid batch); does not short-circuit, matching a GPU batch that
/// always runs to completion. This is the correctness oracle the
/// lane-batched ([`run_batch_lanes`]) and planned ([`run_batch_planned`])
/// flavors must agree with bit-for-bit.
///
/// # Errors
///
/// [`crate::HeroError::BatchMismatch`] when `msgs.len() != sigs.len()`
/// (nothing is silently paired by the shorter slice).
pub fn run_batch(
    vk: &VerifyingKey,
    msgs: &[&[u8]],
    sigs: &[Signature],
    workers: usize,
) -> Result<Vec<VerifyOutcome>, crate::HeroError> {
    check_lengths(msgs, sigs)?;
    Ok(crate::par::par_map_indexed(msgs.len(), workers, |i| {
        VerifyOutcome::from_result(vk.verify(msgs[i], &sigs[i]))
    }))
}

/// [`run_batch`] submitting onto an explicit persistent runtime, so
/// concurrent verification interleaves with in-flight signing
/// submissions on the same workers.
///
/// # Errors
///
/// As [`run_batch`].
pub fn run_batch_on(
    vk: &VerifyingKey,
    msgs: &[&[u8]],
    sigs: &[Signature],
    exec: &hero_task_graph::Executor,
) -> Result<Vec<VerifyOutcome>, crate::HeroError> {
    check_lengths(msgs, sigs)?;
    Ok(crate::par::par_map_indexed_on(
        exec,
        msgs.len(),
        exec.workers(),
        |i| VerifyOutcome::from_result(vk.verify(msgs[i], &sigs[i])),
    ))
}

/// Lane-batched batch verification: the whole batch runs through
/// [`VerifyingKey::verify_many`], so every hash stage — WOTS+ chain
/// completion, FORS leaf recovery, every auth-path climb — sweeps all
/// signatures through the multi-lane hash cores in one pass instead of
/// one signature at a time. Single-threaded but lane-parallel: this is
/// the flavor to compare against [`run_batch`] to isolate the lane win
/// from the scheduling win.
///
/// Verdicts are bit-for-bit the scalar flavor's.
///
/// # Errors
///
/// As [`run_batch`].
pub fn run_batch_lanes(
    vk: &VerifyingKey,
    msgs: &[&[u8]],
    sigs: &[Signature],
) -> Result<Vec<VerifyOutcome>, crate::HeroError> {
    check_lengths(msgs, sigs)?;
    let refs: Vec<&Signature> = sigs.iter().collect();
    Ok(vk
        .verify_many(msgs, &refs)
        .into_iter()
        .map(VerifyOutcome::from_result)
        .collect())
}

/// Planned batch verification: the batch becomes a cross-signature
/// stage graph on `exec` ([`crate::plan::verify_batch`]) — signature
/// A's layer-2 WOTS+ recomputation co-schedules with signature B's FORS
/// root recovery, and every stage node is itself lane-batched. The
/// engine's path ([`crate::engine::HeroSigner::verify_batch`]).
///
/// Verdicts are bit-for-bit the scalar flavor's.
///
/// # Errors
///
/// As [`run_batch`].
pub fn run_batch_planned(
    vk: &VerifyingKey,
    msgs: &[&[u8]],
    sigs: &[Signature],
    exec: &hero_task_graph::Executor,
) -> Result<Vec<VerifyOutcome>, crate::HeroError> {
    check_lengths(msgs, sigs)?;
    Ok(crate::plan::verify_batch(vk, msgs, sigs, exec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_gpu_sim::device::rtx_4090;
    use hero_gpu_sim::engine::simulate_kernel;
    use hero_gpu_sim::isa::Sha2Path;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_params() -> Params {
        let mut p = Params::sphincs_128f();
        p.h = 6;
        p.d = 3;
        p.log_t = 4;
        p.k = 8;
        p
    }

    #[test]
    fn verification_is_much_cheaper_than_signing() {
        for p in Params::fast_sets() {
            let sign = workload::total_sign_compressions(&p);
            let verify = verify_expected_compressions(&p);
            assert!(
                verify * 10 < sign,
                "{}: verify {verify} vs sign {sign}",
                p.name()
            );
        }
    }

    #[test]
    fn batch_verify_functional() {
        let mut rng = StdRng::seed_from_u64(77);
        let params = tiny_params();
        let (sk, vk) = hero_sphincs::keygen(params, &mut rng).unwrap();
        let msgs: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 16]).collect();
        let slices: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let mut sigs: Vec<Signature> = slices.iter().map(|m| sk.sign(m)).collect();

        let results = run_batch(&vk, &slices, &sigs, 4).unwrap();
        assert!(results.iter().all(VerifyOutcome::is_valid));

        // Corrupt one signature: exactly that slot fails, others still pass.
        sigs[2].fors.trees[0].sk[0] ^= 1;
        let results = run_batch(&vk, &slices, &sigs, 4).unwrap();
        for (i, r) in results.iter().enumerate() {
            assert_eq!(!r.is_valid(), i == 2, "slot {i}");
        }
        assert_eq!(results[2], VerifyOutcome::Invalid);
    }

    /// Satellite regression: a mixed valid / invalid / malformed batch
    /// reports *which* indices failed and *how*, identically across the
    /// scalar, lane-batched, and planned flavors.
    #[test]
    fn mixed_batch_reports_failing_indices_across_flavors() {
        let mut rng = StdRng::seed_from_u64(79);
        let params = tiny_params();
        let (sk, vk) = hero_sphincs::keygen(params, &mut rng).unwrap();
        let msgs: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i; 12 + i as usize]).collect();
        let slices: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let mut sigs: Vec<Signature> = slices.iter().map(|m| sk.sign(m)).collect();

        // Slot 1: tampered FORS secret element → Invalid.
        sigs[1].fors.trees[0].sk[0] ^= 1;
        // Slot 3: truncated hypertree → Malformed, never hashed.
        sigs[3].ht.layers.pop();
        // Slot 4: flipped randomizer bit → digest walks a different
        // hypertree path → Invalid.
        sigs[4].randomizer[0] ^= 0x80;

        let scalar = run_batch(&vk, &slices, &sigs, 4).unwrap();
        assert_eq!(scalar[0], VerifyOutcome::Valid);
        assert_eq!(scalar[1], VerifyOutcome::Invalid);
        assert_eq!(scalar[2], VerifyOutcome::Valid);
        assert!(
            matches!(scalar[3], VerifyOutcome::Malformed(_)),
            "{:?}",
            scalar[3]
        );
        assert_eq!(scalar[4], VerifyOutcome::Invalid);
        assert_eq!(scalar[5], VerifyOutcome::Valid);

        let lanes = run_batch_lanes(&vk, &slices, &sigs).unwrap();
        assert_eq!(lanes, scalar, "lane-batched verdicts must match scalar");

        let exec = hero_task_graph::Executor::new(4).unwrap();
        let planned = run_batch_planned(&vk, &slices, &sigs, &exec).unwrap();
        assert_eq!(planned, scalar, "planned verdicts must match scalar");
    }

    #[test]
    fn outcome_display_and_helpers() {
        assert!(VerifyOutcome::Valid.is_valid());
        assert!(!VerifyOutcome::Invalid.is_valid());
        assert_eq!(VerifyOutcome::from_result(Ok(())), VerifyOutcome::Valid);
        assert_eq!(
            VerifyOutcome::from_result(Err(SignError::VerificationFailed)),
            VerifyOutcome::Invalid
        );
        let malformed = VerifyOutcome::from_result(Err(SignError::MalformedSignature("x".into())));
        assert_eq!(malformed, VerifyOutcome::Malformed("x".into()));
        assert_eq!(malformed.to_string(), "malformed (x)");
        assert_eq!(VerifyOutcome::Valid.to_string(), "valid");
        assert_eq!(VerifyOutcome::Invalid.to_string(), "invalid");
    }

    #[test]
    fn verify_kernel_simulates_fast() {
        let d = rtx_4090();
        for p in Params::fast_sets() {
            let cfg = KernelConfig::hero(Sha2Path::Native);
            let verify = simulate_kernel(&d, &describe(&d, &p, 1024, &cfg));
            assert!(verify.time_us.is_finite() && verify.time_us > 0.0);
            // Verification throughput dwarfs signing throughput.
            let kops = 1024.0 / verify.time_us * 1.0e3;
            assert!(kops > 100.0, "{}: verify at {kops} KOPS", p.name());
        }
    }

    #[test]
    fn mismatched_batch_lengths_are_typed_errors() {
        let mut rng = StdRng::seed_from_u64(78);
        let params = tiny_params();
        let (sk, vk) = hero_sphincs::keygen(params, &mut rng).unwrap();
        let sig = sk.sign(b"one");
        let err = run_batch(
            &vk,
            &[b"one".as_slice(), b"two".as_slice()],
            std::slice::from_ref(&sig),
            1,
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                crate::HeroError::BatchMismatch {
                    messages: 2,
                    signatures: 1
                }
            ),
            "{err}"
        );
        // The empty batch is consistent, not mismatched — in every flavor.
        assert!(run_batch(&vk, &[], &[], 1).unwrap().is_empty());
        assert!(run_batch_lanes(&vk, &[], &[]).unwrap().is_empty());
        let exec = hero_task_graph::Executor::new(1).unwrap();
        assert!(run_batch_planned(&vk, &[], &[], &exec).unwrap().is_empty());
    }
}
