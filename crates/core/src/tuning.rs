//! The offline **Auto Tree Tuning** search (Algorithm 1 of the paper).
//!
//! Given FORS parameters `(k, log t, n)` and a device's shared-memory
//! budget, the search enumerates `(T_set, F)` configurations — threads per
//! `Set` and number of fused `Set`s — under thread and shared-memory
//! constraints, then ranks candidates by `(sync points ↑, thread
//! utilization ↓, smem utilization ↓)` exactly as Algorithm 1's final
//! `argmin` does.

use hero_gpu_sim::device::{DeviceProps, SmemPolicy};
use hero_sphincs::hash::HashAlg;
use hero_sphincs::params::Params;

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// One candidate fusion configuration from the search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FusionCandidate {
    /// Threads allocated per `Set` (`T_set`), a multiple of `T_min = t`.
    pub threads_per_set: u32,
    /// FORS trees processed concurrently inside one `Set`
    /// (`N_tree = T_set / T_min`).
    pub trees_per_set: u32,
    /// Number of fused `Set`s per block (`F`).
    pub fused_sets: u32,
    /// Thread utilization `U_T = T_set / T_max`.
    pub thread_utilization: f64,
    /// Shared-memory utilization `U_S = F·S_set / S_max`.
    pub smem_utilization: f64,
    /// Synchronization points after fusion:
    /// `log t · ceil(k / N_tree) / F`.
    pub sync_points: f64,
    /// Shared memory used per block in bytes (`F · S_set`).
    pub smem_bytes: u32,
    /// Relax-FORS buffering depth: each thread produces `2^depth` leaves
    /// into its register Relax Buffer (0 = plain fusion, 1 = the paper's
    /// Relax model, >1 = the generalized extension for `-s` sets).
    pub relax_depth: u32,
}

impl FusionCandidate {
    /// Total threads a fused block runs (`T_set`; threads are *fixed per
    /// Set* and reused across fused sets via the OFFSET trick, Fig. 3).
    pub fn block_threads(&self) -> u32 {
        self.threads_per_set
    }

    /// Trees materialized in shared memory at once
    /// (`N_tree · F`).
    pub fn concurrent_trees(&self) -> u32 {
        self.trees_per_set * self.fused_sets
    }
}

/// Result of the tuning search: the winner plus the ranked candidate set
/// (the paper keeps near-optimal candidates for profiling-driven final
/// selection, §III-B3).
#[derive(Clone, Debug)]
pub struct TuningResult {
    /// The `argmin` winner `(T*, F*)`.
    pub best: FusionCandidate,
    /// All valid candidates, best first.
    pub candidates: Vec<FusionCandidate>,
}

/// Tuning knobs of Algorithm 1.
#[derive(Clone, Copy, Debug)]
pub struct TuningOptions {
    /// The optional tune factor `α` (line 18): candidates with
    /// `U_T < α` are discarded unless they fully use both resources.
    pub alpha: f64,
    /// Which shared-memory limit `SEMEPerBlock()` reports.
    pub smem_policy: SmemPolicy,
    /// Exclude configurations that saturate *both* threads and shared
    /// memory (lines 18–19: full saturation raises contention).
    pub exclude_full_saturation: bool,
    /// The hash primitive the tuned kernels will run. The search itself
    /// is modelled at hash-invocation granularity (thread and
    /// shared-memory budgets do not depend on the primitive), but the
    /// primitive is part of the cache fingerprint so in-memory and
    /// on-disk entries for the SHA-2 and SHAKE kernel families never
    /// collide — per-primitive cost models can later diverge without a
    /// cache-format change.
    pub hash: HashAlg,
}

impl Default for TuningOptions {
    /// `α = 0.6`: the paper calls `α` "an optional tune factor \[that\] may
    /// vary across GPU architectures"; 0.6 is the value under which the
    /// search reproduces Table IV on the RTX 4090 (a lower α admits
    /// half-empty blocks whose extra `Set` rounds the paper's profiling
    /// rejects).
    fn default() -> Self {
        Self {
            alpha: 0.6,
            smem_policy: SmemPolicy::Static,
            exclude_full_saturation: true,
            hash: HashAlg::Sha256,
        }
    }
}

/// Errors from the tuning search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TuneError {
    /// A single FORS tree needs more threads than a block can hold
    /// (handled by the Relax-FORS model instead, §III-B4).
    TreeTooLarge {
        /// Threads one tree requires (`2^log t`).
        needed: u32,
        /// Device block capacity.
        max: u32,
    },
    /// No configuration satisfied the constraints.
    NoCandidate,
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::TreeTooLarge { needed, max } => {
                write!(
                    f,
                    "one FORS tree needs {needed} threads, block maximum is {max}"
                )
            }
            TuneError::NoCandidate => f.write_str("no fusion configuration satisfies constraints"),
        }
    }
}

impl std::error::Error for TuneError {}

/// Runs Algorithm 1 for `params` on `device`.
///
/// # Errors
///
/// [`TuneError::NoCandidate`] if the constraint set is empty;
/// [`TuneError::TreeTooLarge`] if even one tree exceeds the block thread
/// limit (use [`tune_relax`] then).
pub fn tune(
    device: &DeviceProps,
    params: &Params,
    opts: &TuningOptions,
) -> Result<TuningResult, TuneError> {
    let t = params.t() as u32;
    search(device, params, opts, t, params.n as u32, 0)
}

/// Maximum bytes a thread's register Relax Buffer may hold — the paper's
/// per-thread register threshold `R_t` (§III-B4): 128 spare 32-bit
/// registers.
pub const RELAX_BUFFER_MAX_BYTES: u32 = 512;

/// Algorithm 1 with the **Relax-FORS** model (§III-B4): `T_min = t/2`
/// (one thread per leaf *pair*) and per-tree shared memory halved, because
/// the bottom layer is buffered in registers.
///
/// # Errors
///
/// Same as [`tune`].
pub fn tune_relax(
    device: &DeviceProps,
    params: &Params,
    opts: &TuningOptions,
) -> Result<TuningResult, TuneError> {
    tune_relax_depth(device, params, opts, 1)
}

/// Generalized Relax-FORS (extension beyond the paper): each thread
/// produces `2^depth` leaves, reduces them locally in its register
/// buffer, and stores one level-`depth` node — `T_min = t / 2^depth`.
/// `depth = 1` is the paper's model; deeper buffering admits the `-s`
/// parameter sets whose trees (`t` up to 16384) dwarf a thread block.
///
/// # Errors
///
/// [`TuneError::TreeTooLarge`] if even the buffered tree exceeds the
/// block limit or the buffer exceeds the register threshold `R_t`;
/// otherwise as [`tune`].
pub fn tune_relax_depth(
    device: &DeviceProps,
    params: &Params,
    opts: &TuningOptions,
    depth: u32,
) -> Result<TuningResult, TuneError> {
    assert!(
        depth >= 1 && depth < params.log_t as u32,
        "depth must be in [1, log t)"
    );
    let buffer_bytes = (1u32 << depth) * params.n as u32;
    if buffer_bytes > RELAX_BUFFER_MAX_BYTES {
        return Err(TuneError::TreeTooLarge {
            needed: buffer_bytes,
            max: RELAX_BUFFER_MAX_BYTES,
        });
    }
    let t_min = (params.t() >> depth) as u32;
    search(device, params, opts, t_min, params.n as u32, depth)
}

fn search(
    device: &DeviceProps,
    params: &Params,
    opts: &TuningOptions,
    t_min: u32,
    n: u32,
    relax_depth: u32,
) -> Result<TuningResult, TuneError> {
    let t_max = device.max_threads_per_block; // line 2
    let s_max = device.seme_per_block(opts.smem_policy) as u64;
    let t = params.t() as u64;
    let k = params.k as u32;

    if t_min > t_max {
        return Err(TuneError::TreeTooLarge {
            needed: t_min,
            max: t_max,
        });
    }

    // Shared memory one tree occupies: full tree normally; only the
    // layers above `relax_depth` when the bottom lives in the register
    // Relax Buffer.
    let tree_smem = (t >> relax_depth) * n as u64;

    let mut candidates = Vec::new();

    // Line 4: T_set from T_min to T_max step T_min.
    let mut t_set = t_min;
    while t_set <= t_max {
        let n_tree = t_set / t_min; // line 5
        let s_set = n_tree as u64 * tree_smem; // line 6
        if s_set > s_max {
            t_set += t_min;
            continue; // line 8
        }
        // Line 10: F_max = min(floor(S_max/S_set), floor(k/N_tree)).
        let f_max = ((s_max / s_set) as u32).min(k / n_tree);
        for f in 1..=f_max {
            let t_used = t_set; // line 12: threads fixed per Set
            let s_used = f as u64 * s_set; // line 13
            if t_used > t_max || s_used > s_max {
                continue; // line 15
            }
            let u_t = t_used as f64 / t_max as f64; // line 17
            let u_s = s_used as f64 / s_max as f64;
            // Lines 18-19: drop fully saturated configs and low-utilization
            // configs below α.
            if (opts.exclude_full_saturation && u_t >= 1.0 && u_s >= 1.0) || u_t < opts.alpha {
                continue;
            }
            // Line 21: sync points after fusion.
            let sync = params.log_t as f64 * (k as f64 / n_tree as f64).ceil() / f as f64;
            candidates.push(FusionCandidate {
                threads_per_set: t_set,
                trees_per_set: n_tree,
                fused_sets: f,
                thread_utilization: u_t,
                smem_utilization: u_s,
                sync_points: sync,
                smem_bytes: s_used as u32,
                relax_depth,
            });
        }
        t_set += t_min;
    }

    if candidates.is_empty() {
        return Err(TuneError::NoCandidate);
    }

    // Line 25: argmin over (sync, -U_T, -U_S).
    candidates.sort_by(|a, b| {
        a.sync_points
            .partial_cmp(&b.sync_points)
            .expect("finite sync")
            .then(
                b.thread_utilization
                    .partial_cmp(&a.thread_utilization)
                    .expect("finite U_T"),
            )
            .then(
                b.smem_utilization
                    .partial_cmp(&a.smem_utilization)
                    .expect("finite U_S"),
            )
    });

    Ok(TuningResult {
        best: candidates[0],
        candidates,
    })
}

/// Convenience: run [`tune`], falling back to [`tune_relax`] when a tree
/// exceeds block capacity or the standard search finds nothing useful —
/// the paper applies Relax-FORS to 256f where plain fusion degenerates
/// (`F = 1`, two trees, excessive synchronization).
pub fn tune_auto(
    device: &DeviceProps,
    params: &Params,
    opts: &TuningOptions,
) -> Result<TuningResult, TuneError> {
    match tune(device, params, opts) {
        Ok(result) => {
            // Degenerate plain fusion (≤2 concurrent trees) → prefer relax
            // if it fuses more trees (the 256f case).
            if result.best.concurrent_trees() <= 2 {
                if let Ok(relaxed) = tune_relax(device, params, opts) {
                    if relaxed.best.concurrent_trees() > result.best.concurrent_trees() {
                        return Ok(relaxed);
                    }
                }
            }
            Ok(result)
        }
        Err(TuneError::TreeTooLarge { .. }) => {
            // Deepen the Relax Buffer until the tree fits (generalized
            // model; services the -s sets).
            for depth in 1..params.log_t as u32 {
                match tune_relax_depth(device, params, opts, depth) {
                    Ok(result) => return Ok(result),
                    Err(_) => continue,
                }
            }
            Err(TuneError::NoCandidate)
        }
        Err(e) => Err(e),
    }
}

/// Cache key for one `(device, params, options)` search. Devices have no
/// `Hash` impl (they carry floats), so the full `Debug` rendering —
/// which covers every field, including mutations test rigs make to
/// catalog devices — stands in as the fingerprint.
#[derive(Clone, PartialEq, Eq, Hash)]
struct TuneCacheKey {
    device: String,
    params: Params,
    alpha_bits: u64,
    smem_policy: SmemPolicy,
    exclude_full_saturation: bool,
    hash: HashAlg,
}

impl TuneCacheKey {
    fn new(device: &DeviceProps, params: &Params, opts: &TuningOptions) -> Self {
        Self {
            device: format!("{device:?}"),
            params: *params,
            alpha_bits: opts.alpha.to_bits(),
            smem_policy: opts.smem_policy,
            exclude_full_saturation: opts.exclude_full_saturation,
            hash: opts.hash,
        }
    }

    /// Canonical rendering used for the disk fingerprint: every field
    /// that participates in the in-memory key, plus the format version.
    fn canonical(&self) -> String {
        format!(
            "v{}|{}|{:?}|{}|{:?}|{}|{:?}",
            TUNING_CACHE_DISK_VERSION,
            self.device,
            self.params,
            self.alpha_bits,
            self.smem_policy,
            self.exclude_full_saturation,
            self.hash,
        )
    }
}

/// One cache slot: filled exactly once, by whichever thread gets there
/// first; other threads asking for the same key block only on that
/// slot, never on the map.
type TuneCacheCell = Arc<OnceLock<Result<TuningResult, TuneError>>>;

struct TuneCache {
    map: HashMap<TuneCacheKey, TuneCacheCell>,
    hits: u64,
    misses: u64,
    disk_hits: u64,
}

fn cache() -> &'static Mutex<TuneCache> {
    static CACHE: OnceLock<Mutex<TuneCache>> = OnceLock::new();
    CACHE.get_or_init(|| {
        Mutex::new(TuneCache {
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            disk_hits: 0,
        })
    })
}

/// A snapshot of the process-wide tuning-cache counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TuningCacheStats {
    /// Lookups answered from the in-memory cache.
    pub hits: u64,
    /// Lookups that ran the full Algorithm 1 search.
    pub misses: u64,
    /// Lookups answered by loading a persisted entry from disk (no
    /// search ran; not counted as `hits` or `misses`).
    pub disk_hits: u64,
    /// Entries currently cached in memory.
    pub entries: usize,
}

/// Returns the current process-wide tuning-cache counters.
pub fn tuning_cache_stats() -> TuningCacheStats {
    let c = cache().lock().expect("tuning cache poisoned");
    TuningCacheStats {
        hits: c.hits,
        misses: c.misses,
        disk_hits: c.disk_hits,
        entries: c.map.len(),
    }
}

/// Empties the process-wide tuning cache (counters are preserved).
/// Intended for tests and long-lived services that hot-swap device
/// catalogs.
pub fn clear_tuning_cache() {
    cache().lock().expect("tuning cache poisoned").map.clear();
}

/// [`tune_auto`] behind a process-wide memoization cache keyed on
/// `(device, params, options)`.
///
/// The offline search is by far the most expensive part of engine
/// construction; services and CLIs that build one engine per request
/// would otherwise re-run it every time. The first call for a key runs
/// the search (a *miss*), every later call clones the stored result (a
/// *hit*) — including stored failures, which are deterministic for a
/// given key.
///
/// # Errors
///
/// Same as [`tune_auto`].
pub fn tune_auto_cached(
    device: &DeviceProps,
    params: &Params,
    opts: &TuningOptions,
) -> Result<TuningResult, TuneError> {
    tune_auto_cached_at(device, params, opts, None)
}

/// [`tune_auto_cached`] with an optional on-disk persistence layer.
///
/// With `cache_dir` set, an in-memory miss first consults the versioned
/// JSON entry at [`tuning_cache_disk_path`]; a valid entry is loaded
/// without searching (counted as a *disk hit*), so process restarts skip
/// the tuning sweep. Invalid entries — unparsable bytes, a different
/// format version, or a fingerprint that does not match this exact
/// `(device, params, options)` — fall back to the in-memory search, and
/// a successful search is written back (I/O failures are ignored: the
/// disk layer is an accelerator, never a correctness dependency).
/// Search *failures* are cached in memory only.
///
/// # Errors
///
/// Same as [`tune_auto`].
pub fn tune_auto_cached_at(
    device: &DeviceProps,
    params: &Params,
    opts: &TuningOptions,
    cache_dir: Option<&Path>,
) -> Result<TuningResult, TuneError> {
    let key = TuneCacheKey::new(device, params, opts);
    let canonical = key.canonical();
    // Take the map lock only long enough to fetch (or create) the key's
    // slot; the search itself runs outside it, so concurrent
    // constructions of *different* engines proceed in parallel while
    // concurrent constructions of the *same* engine still dedupe on the
    // slot's one-time initialization.
    let cell: TuneCacheCell = {
        let mut c = cache().lock().expect("tuning cache poisoned");
        c.map.entry(key).or_default().clone()
    };
    let mut searched = false;
    let mut disk_loaded = false;
    let result = cell
        .get_or_init(|| {
            if let Some(dir) = cache_dir {
                if let Some(loaded) = disk::load(&disk::entry_path(dir, &canonical), &canonical) {
                    disk_loaded = true;
                    return Ok(loaded);
                }
            }
            searched = true;
            let fresh = tune_auto(device, params, opts);
            if let (Some(dir), Ok(result)) = (cache_dir, &fresh) {
                disk::store(dir, &canonical, result);
            }
            fresh
        })
        .clone();
    {
        let mut c = cache().lock().expect("tuning cache poisoned");
        if searched {
            c.misses += 1;
        } else if disk_loaded {
            c.disk_hits += 1;
        } else {
            c.hits += 1;
        }
    }
    result
}

/// Version stamp of the on-disk tuning-cache format. Bumped whenever the
/// entry layout or the meaning of a cached result changes; entries
/// written under any other version are ignored (and rewritten).
///
/// v2: the hash primitive joined the fingerprint, so v1 entries (which
/// implicitly meant SHA-256) can no longer be disambiguated and are
/// invalidated wholesale.
pub const TUNING_CACHE_DISK_VERSION: u32 = 2;

/// The file a persisted tuning entry for `(device, params, opts)` lives
/// at under `dir` — exposed so operators and tests can inspect, seed, or
/// invalidate specific entries.
pub fn tuning_cache_disk_path(
    dir: &Path,
    device: &DeviceProps,
    params: &Params,
    opts: &TuningOptions,
) -> PathBuf {
    disk::entry_path(dir, &TuneCacheKey::new(device, params, opts).canonical())
}

/// The on-disk persistence layer: versioned single-entry JSON files,
/// hand-rolled (the workspace is offline — no serde), written and parsed
/// defensively. Every parse failure degrades to "no entry".
mod disk {
    use super::{FusionCandidate, TuningResult, TUNING_CACHE_DISK_VERSION};
    use std::path::{Path, PathBuf};

    /// FNV-1a 64 over `bytes`, from `basis` — filename-friendly digest.
    fn fnv1a(bytes: &[u8], basis: u64) -> u64 {
        let mut h = basis;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// 128-bit filename digest of the canonical key (two FNV streams).
    /// Collisions are guarded by the full fingerprint stored *inside*
    /// the entry, which [`load`] compares before trusting anything.
    fn digest(canonical: &str) -> String {
        let a = fnv1a(canonical.as_bytes(), 0xcbf2_9ce4_8422_2325);
        let b = fnv1a(canonical.as_bytes(), 0x6c62_272e_07bb_0142);
        format!("{a:016x}{b:016x}")
    }

    pub(super) fn entry_path(dir: &Path, canonical: &str) -> PathBuf {
        dir.join(format!(
            "hero-tune-v{TUNING_CACHE_DISK_VERSION}-{}.json",
            digest(canonical)
        ))
    }

    fn hex_encode(s: &str) -> String {
        s.bytes().map(|b| format!("{b:02x}")).collect()
    }

    fn render(canonical: &str, result: &TuningResult) -> String {
        let candidates: Vec<String> = result
            .candidates
            .iter()
            .map(|c| {
                format!(
                    "    {{\"threads_per_set\": {}, \"trees_per_set\": {}, \"fused_sets\": {}, \
                     \"thread_utilization\": {:?}, \"smem_utilization\": {:?}, \
                     \"sync_points\": {:?}, \"smem_bytes\": {}, \"relax_depth\": {}}}",
                    c.threads_per_set,
                    c.trees_per_set,
                    c.fused_sets,
                    c.thread_utilization,
                    c.smem_utilization,
                    c.sync_points,
                    c.smem_bytes,
                    c.relax_depth,
                )
            })
            .collect();
        format!(
            "{{\n  \"version\": {TUNING_CACHE_DISK_VERSION},\n  \"key_hex\": \"{}\",\n  \
             \"candidates\": [\n{}\n  ]\n}}\n",
            hex_encode(canonical),
            candidates.join(",\n"),
        )
    }

    /// Best-effort write; the disk cache is an accelerator, so I/O
    /// failures (read-only FS, permissions, injected faults) are
    /// silently ignored.
    ///
    /// Crash-safe: the entry is rendered into a process-unique temp file
    /// in the same directory and atomically renamed into place, so a
    /// crash (or an injected fault) mid-write can never leave a torn
    /// entry at the final path — readers see the old entry or the new
    /// one, never a prefix.
    pub(super) fn store(dir: &Path, canonical: &str, result: &TuningResult) {
        if crate::faults::fire(crate::faults::TUNING_DISK_WRITE) {
            return;
        }
        let _ = std::fs::create_dir_all(dir);
        let path = entry_path(dir, canonical);
        static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let tmp = dir.join(format!(
            ".hero-tune-{}-{}.tmp",
            std::process::id(),
            TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        ));
        if std::fs::write(&tmp, render(canonical, result)).is_ok()
            && std::fs::rename(&tmp, &path).is_err()
        {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    fn field_f64(obj: &str, name: &str) -> Option<f64> {
        let pat = format!("\"{name}\":");
        let at = obj.find(&pat)? + pat.len();
        let rest = obj[at..].trim_start();
        let end = rest
            .find(|c: char| c == ',' || c == '}' || c.is_whitespace())
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }

    fn field_u32(obj: &str, name: &str) -> Option<u32> {
        let v = field_f64(obj, name)?;
        (v.fract() == 0.0 && (0.0..=u32::MAX as f64).contains(&v)).then_some(v as u32)
    }

    fn field_str<'a>(obj: &'a str, name: &str) -> Option<&'a str> {
        let pat = format!("\"{name}\":");
        let at = obj.find(&pat)? + pat.len();
        let rest = obj[at..].trim_start().strip_prefix('"')?;
        rest.split('"').next()
    }

    fn parse(text: &str, canonical: &str) -> Option<TuningResult> {
        if field_u32(text, "version")? != TUNING_CACHE_DISK_VERSION {
            return None;
        }
        // Full-fingerprint comparison: a digest collision, a copied
        // file, or a stale device description all fail here.
        if field_str(text, "key_hex")? != hex_encode(canonical) {
            return None;
        }
        let list = &text[text.find("\"candidates\"")?..];
        let list = &list[list.find('[')? + 1..list.rfind(']')?];
        let mut candidates = Vec::new();
        let mut rest = list;
        while let Some(open) = rest.find('{') {
            let close = rest[open..].find('}')? + open;
            let obj = &rest[open..=close];
            candidates.push(FusionCandidate {
                threads_per_set: field_u32(obj, "threads_per_set")?,
                trees_per_set: field_u32(obj, "trees_per_set")?,
                fused_sets: field_u32(obj, "fused_sets")?,
                thread_utilization: field_f64(obj, "thread_utilization")?,
                smem_utilization: field_f64(obj, "smem_utilization")?,
                sync_points: field_f64(obj, "sync_points")?,
                smem_bytes: field_u32(obj, "smem_bytes")?,
                relax_depth: field_u32(obj, "relax_depth")?,
            });
            rest = &rest[close + 1..];
        }
        let best = *candidates.first()?;
        Some(TuningResult { best, candidates })
    }

    pub(super) fn load(path: &Path, canonical: &str) -> Option<TuningResult> {
        if crate::faults::fire(crate::faults::TUNING_DISK_READ) {
            return None;
        }
        parse(&std::fs::read_to_string(path).ok()?, canonical)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn sample() -> TuningResult {
            let a = FusionCandidate {
                threads_per_set: 704,
                trees_per_set: 11,
                fused_sets: 3,
                thread_utilization: 0.6875,
                smem_utilization: 0.687_500_000_000_001,
                sync_points: 6.0,
                smem_bytes: 33792,
                relax_depth: 0,
            };
            let mut b = a;
            b.fused_sets = 2;
            b.sync_points = 9.0;
            TuningResult {
                best: a,
                candidates: vec![a, b],
            }
        }

        #[test]
        fn render_parse_round_trip_is_exact() {
            let canonical = "v1|Device { name: \"X\" }|params|0|Static|true";
            let text = render(canonical, &sample());
            let back = parse(&text, canonical).expect("round trip");
            assert_eq!(back.best, sample().best);
            assert_eq!(back.candidates, sample().candidates);
            // Floats survive bit-exactly via the {:?} shortest repr.
            assert_eq!(
                back.best.smem_utilization.to_bits(),
                sample().best.smem_utilization.to_bits()
            );
        }

        #[test]
        fn foreign_fingerprint_rejected() {
            let text = render("key-A", &sample());
            assert!(parse(&text, "key-A").is_some());
            assert!(parse(&text, "key-B").is_none());
        }

        #[test]
        fn wrong_version_rejected() {
            let text = render("key", &sample()).replace(
                &format!("\"version\": {TUNING_CACHE_DISK_VERSION}"),
                "\"version\": 0",
            );
            assert!(parse(&text, "key").is_none());
        }

        #[test]
        fn garbage_rejected() {
            for bad in ["", "{", "not json at all", "{\"version\": 1}"] {
                assert!(parse(bad, "key").is_none(), "{bad:?}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_gpu_sim::device::{gtx_1070, h100, rtx_4090};

    #[test]
    fn hash_primitive_separates_cache_fingerprints() {
        // A SHAKE engine and a SHA engine with otherwise identical
        // options must hit different in-memory keys AND different
        // on-disk entries — a persisted SHA tuning result must never be
        // served to a SHAKE engine.
        let device = rtx_4090();
        let p = Params::sphincs_128f();
        let sha = TuningOptions::default();
        let shake = TuningOptions {
            hash: HashAlg::Shake256,
            ..sha
        };
        assert_ne!(
            TuneCacheKey::new(&device, &p, &sha).canonical(),
            TuneCacheKey::new(&device, &p, &shake).canonical()
        );
        let dir = std::path::Path::new("/tmp/hero-fingerprint-test");
        assert_ne!(
            tuning_cache_disk_path(dir, &device, &p, &sha),
            tuning_cache_disk_path(dir, &device, &p, &shake)
        );
        // The shake-named shapes separate entries even at equal options.
        assert_ne!(
            tuning_cache_disk_path(dir, &device, &Params::shake_128f(), &shake),
            tuning_cache_disk_path(dir, &device, &p, &shake)
        );
    }

    #[test]
    fn table_iv_128f() {
        // Table IV: SPHINCS+-128f on RTX 4090 → U_S = U_T = 0.6875, F = 3.
        let r = tune(
            &rtx_4090(),
            &Params::sphincs_128f(),
            &TuningOptions::default(),
        )
        .unwrap();
        assert_eq!(r.best.fused_sets, 3);
        assert!(
            (r.best.thread_utilization - 0.6875).abs() < 1e-9,
            "{:?}",
            r.best
        );
        assert!((r.best.smem_utilization - 0.6875).abs() < 1e-9);
        assert_eq!(r.best.threads_per_set, 704); // 11 trees × 64 threads
        assert_eq!(r.best.trees_per_set, 11);
    }

    #[test]
    fn table_iv_192f() {
        // Table IV: SPHINCS+-192f on RTX 4090 → U_S = U_T = 0.75, F = 2.
        let r = tune(
            &rtx_4090(),
            &Params::sphincs_192f(),
            &TuningOptions::default(),
        )
        .unwrap();
        assert_eq!(r.best.fused_sets, 2);
        assert!(
            (r.best.thread_utilization - 0.75).abs() < 1e-9,
            "{:?}",
            r.best
        );
        assert!((r.best.smem_utilization - 0.75).abs() < 1e-9);
        assert_eq!(r.best.trees_per_set, 3); // 3 trees × 256 threads
    }

    #[test]
    fn plain_256f_is_degenerate() {
        // 256f: t=512 leaves × 32 B = 16 KB/tree; at most 2 trees in
        // static 48 KB with 512 threads each (§III-B4).
        let r = tune(
            &rtx_4090(),
            &Params::sphincs_256f(),
            &TuningOptions::default(),
        )
        .unwrap();
        assert!(r.best.concurrent_trees() <= 2, "{:?}", r.best);
    }

    #[test]
    fn relax_256f_fuses_more_trees() {
        let plain = tune(
            &rtx_4090(),
            &Params::sphincs_256f(),
            &TuningOptions::default(),
        )
        .unwrap();
        let relax = tune_relax(
            &rtx_4090(),
            &Params::sphincs_256f(),
            &TuningOptions::default(),
        )
        .unwrap();
        assert!(relax.best.concurrent_trees() > plain.best.concurrent_trees());
        // Relax halves both thread and smem demand per tree: 256 threads,
        // 8 KB per tree.
        assert_eq!(relax.best.threads_per_set % 256, 0);
    }

    #[test]
    fn tune_auto_picks_relax_for_256f_only() {
        let opts = TuningOptions::default();
        let d = rtx_4090();
        let r128 = tune_auto(&d, &Params::sphincs_128f(), &opts).unwrap();
        assert_eq!(r128.best.fused_sets, 3); // plain fusion result retained
        let r256 = tune_auto(&d, &Params::sphincs_256f(), &opts).unwrap();
        assert!(r256.best.concurrent_trees() > 2); // relax result
    }

    #[test]
    fn candidates_sorted_by_priority() {
        let r = tune(
            &rtx_4090(),
            &Params::sphincs_128f(),
            &TuningOptions::default(),
        )
        .unwrap();
        for pair in r.candidates.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            assert!(
                a.sync_points < b.sync_points
                    || (a.sync_points == b.sync_points
                        && a.thread_utilization >= b.thread_utilization),
                "ordering violated: {a:?} then {b:?}"
            );
        }
    }

    #[test]
    fn constraints_respected_by_all_candidates() {
        let d = rtx_4090();
        let opts = TuningOptions::default();
        for p in Params::fast_sets() {
            let result = tune_auto(&d, &p, &opts).unwrap();
            for c in &result.candidates {
                assert!(c.block_threads() <= d.max_threads_per_block);
                assert!(c.smem_bytes <= d.smem_static_per_block);
                assert!(c.thread_utilization >= opts.alpha);
                assert!(c.concurrent_trees() <= p.k as u32);
            }
        }
    }

    #[test]
    fn dynamic_smem_policy_admits_larger_fusions() {
        // Fig. 14: bigger shared memory (e.g. Hopper's 227 KB dynamic)
        // admits deeper fusion than the static 48 KB limit.
        let opts_static = TuningOptions::default();
        let opts_dyn = TuningOptions {
            smem_policy: SmemPolicy::DynamicMax,
            ..opts_static
        };
        let h = h100();
        let p = Params::sphincs_192f();
        let s = tune(&h, &p, &opts_static).unwrap();
        let d = tune(&h, &p, &opts_dyn).unwrap();
        assert!(d.best.smem_bytes >= s.best.smem_bytes);
    }

    #[test]
    fn pascal_small_smem_restricts_fusion() {
        // GTX 1070: 48 KB static and no opt-in — fusion depth can't exceed
        // the 4090's.
        let p = Params::sphincs_128f();
        let pascal = tune(&gtx_1070(), &p, &TuningOptions::default()).unwrap();
        let ada = tune(&rtx_4090(), &p, &TuningOptions::default()).unwrap();
        assert!(pascal.best.concurrent_trees() <= ada.best.concurrent_trees());
    }

    #[test]
    fn alpha_filters_low_utilization() {
        let strict = TuningOptions {
            alpha: 0.9,
            ..TuningOptions::default()
        };
        match tune(&rtx_4090(), &Params::sphincs_128f(), &strict) {
            Ok(r) => assert!(r.candidates.iter().all(|c| c.thread_utilization >= 0.9)),
            Err(TuneError::NoCandidate) => {} // also acceptable
            Err(e) => panic!("unexpected: {e}"),
        }
    }

    #[test]
    fn sync_points_formula() {
        // 128f winner: log t=6, ceil(33/11)=3, F=3 → 6 sync points.
        let r = tune(
            &rtx_4090(),
            &Params::sphincs_128f(),
            &TuningOptions::default(),
        )
        .unwrap();
        assert!((r.best.sync_points - 6.0).abs() < 1e-9);
    }

    #[test]
    fn generalized_relax_admits_s_variants() {
        // -s trees (t = 4096..16384) dwarf a 1024-thread block; the
        // generalized Relax Buffer deepens until one thread carries
        // 2^depth leaves and the tree fits.
        let d = rtx_4090();
        let opts = TuningOptions::default();
        for (p, min_depth) in [
            (Params::sphincs_128s(), 2), // t=4096 → t/4 = 1024
            (Params::sphincs_192s(), 4), // t=16384 → t/16 = 1024
            (Params::sphincs_256s(), 4),
        ] {
            assert!(matches!(
                tune(&d, &p, &opts),
                Err(TuneError::TreeTooLarge { .. })
            ));
            let r = tune_auto(&d, &p, &opts).unwrap_or_else(|e| panic!("{}: {e}", p.name()));
            assert!(
                r.best.relax_depth >= min_depth,
                "{}: {:?}",
                p.name(),
                r.best
            );
            assert!(r.best.block_threads() <= 1024);
            // Register buffer respects the R_t threshold.
            assert!((1u32 << r.best.relax_depth) * p.n as u32 <= RELAX_BUFFER_MAX_BYTES);
        }
    }

    #[test]
    fn relax_depth_recorded_on_candidates() {
        let d = rtx_4090();
        let opts = TuningOptions::default();
        let plain = tune(&d, &Params::sphincs_128f(), &opts).unwrap();
        assert!(plain.candidates.iter().all(|c| c.relax_depth == 0));
        let relax = tune_relax(&d, &Params::sphincs_256f(), &opts).unwrap();
        assert!(relax.candidates.iter().all(|c| c.relax_depth == 1));
    }

    #[test]
    fn relax_buffer_threshold_enforced() {
        // A hypothetical wide-hash deep buffer must be rejected.
        let d = rtx_4090();
        let p = Params::sphincs_256s(); // n=32: depth 5 → 32 × 32 = 1024 B
        assert!(matches!(
            tune_relax_depth(&d, &p, &TuningOptions::default(), 5),
            Err(TuneError::TreeTooLarge { .. })
        ));
    }
}
