//! Deterministic fault injection: named fault points on the hot seams,
//! fired by a seeded, reproducible schedule.
//!
//! ## Why deterministic
//!
//! PR-by-PR robustness hardening only sticks if the faults that found a
//! bug can be *replayed*. Every fault decision here is a pure function of
//! `(seed, point, per-spec evaluation index)` — no wall clock, no OS
//! randomness — so a failing chaos run reproduces from its `HERO_FAULTS`
//! string alone, across machines and across `--release`/debug builds.
//!
//! ## The schedule grammar
//!
//! A plan is installed from a spec string (usually the `HERO_FAULTS`
//! environment variable, see [`init_from_env`]):
//!
//! ```text
//! HERO_FAULTS="seed:7,spec:executor.worker.claim@0.02/4,spec:server.write.slow@0.1*5ms"
//! ```
//!
//! Comma-separated tokens: one optional `seed:<u64>` and any number of
//! `spec:<point>@<probability>[/<max-fires>][*<delay>ms]` entries. A spec
//! *with* a `*<delay>ms` suffix injects latency (a sleep at the point);
//! one *without* injects a **failure** — what a failure means is defined
//! by the call site (an I/O error, a dropped connection, a worker
//! panic). `<probability>` is per evaluation in `[0, 1]`; `/<max-fires>`
//! caps the total fires of the spec (essential for worker-death specs,
//! which would otherwise kill every respawned replacement forever).
//!
//! ## Zero cost when disabled
//!
//! Every call site goes through [`fire`], whose disabled path is a single
//! relaxed atomic load and a predictable branch — the fault machinery is
//! compiled into release builds so the chaos suite exercises the exact
//! binary that ships, at no measurable cost to production traffic.
//!
//! ## Fault-point catalog
//!
//! Core and executor points are the constants below; `hero-server` adds
//! its own (connection drops, partial/slow writes, keystore I/O — see
//! that crate). [`install`] also wires the [`hero_task_graph::chaos`]
//! hook so executor points participate in the same schedule.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

/// Executor point: a fired **fail** spec kills the worker thread (which
/// the pool respawns). See [`hero_task_graph::chaos::WORKER_CLAIM`].
pub const EXECUTOR_WORKER_CLAIM: &str = hero_task_graph::chaos::WORKER_CLAIM;

/// Executor point: intended for **delay** specs — a stalled worker. See
/// [`hero_task_graph::chaos::QUEUE_STALL`].
pub const EXECUTOR_QUEUE_STALL: &str = hero_task_graph::chaos::QUEUE_STALL;

/// Batch-planner point, evaluated once per stage node (FORS tree group,
/// T_k compression, subtree treehash, WOTS+ chain group). **Delay**
/// specs model slow hash hardware; **fail** specs panic the node, which
/// poisons only its own submission (the service answers the batch with a
/// typed internal error and keeps serving).
pub const PLAN_STAGE: &str = "plan.stage";

/// Hypertree-memoization point, evaluated on cache fills *and* hits. A
/// fired **fail** spec at fill time drops the freshly built subtree (the
/// signature still completes from the fresh nodes — the next sign pays
/// cold again); at hit time it force-evicts the key and serves a miss.
/// Either way signing degrades to cold cost, never errors. **Delay**
/// specs model a slow cache tier.
pub const HYPERTREE_CACHE: &str = "hypertree.cache";

/// Tuning-cache persistence point: a fired **fail** spec makes the disk
/// write fail (the cache degrades to in-memory, never corrupts).
pub const TUNING_DISK_WRITE: &str = "tuning.disk.write";

/// Tuning-cache load point: a fired **fail** spec makes the disk read
/// miss (falls back to the search).
pub const TUNING_DISK_READ: &str = "tuning.disk.read";

/// What a matched spec does at its point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// The call site's failure behavior (I/O error, dropped connection,
    /// worker panic — defined where the point is announced).
    Fail,
    /// Sleep this long at the point, then continue normally.
    Delay(Duration),
}

/// One parsed schedule entry: fire `action` at `point` with
/// `probability` per evaluation, at most `max_fires` times.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// The fault-point name this spec matches (exact string equality).
    pub point: String,
    /// Per-evaluation fire probability in `[0, 1]`.
    pub probability: f64,
    /// Lifetime cap on fires; `None` is unbounded.
    pub max_fires: Option<u64>,
    /// What firing does.
    pub action: FaultAction,
}

/// A full fault schedule: the seed plus every spec.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of the deterministic decision stream.
    pub seed: u64,
    /// The schedule entries.
    pub specs: Vec<FaultSpec>,
}

/// A `HERO_FAULTS` string that could not be parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultParseError(String);

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultParseError {}

impl FaultPlan {
    /// Parses the schedule grammar (see the module docs).
    ///
    /// # Errors
    ///
    /// [`FaultParseError`] naming the offending token.
    pub fn parse(text: &str) -> Result<Self, FaultParseError> {
        let mut seed = 0u64;
        let mut specs = Vec::new();
        for token in text.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            if let Some(v) = token.strip_prefix("seed:") {
                seed = v
                    .trim()
                    .parse()
                    .map_err(|_| FaultParseError(format!("bad seed {v:?}")))?;
            } else if let Some(v) = token.strip_prefix("spec:") {
                specs.push(Self::parse_spec(v.trim())?);
            } else {
                return Err(FaultParseError(format!(
                    "unknown token {token:?} (expected seed:… or spec:…)"
                )));
            }
        }
        if specs.is_empty() {
            return Err(FaultParseError("no spec: entries".to_string()));
        }
        Ok(Self { seed, specs })
    }

    /// One `point@prob[/max][*delayms]` entry.
    fn parse_spec(text: &str) -> Result<FaultSpec, FaultParseError> {
        let (point, rest) = text
            .split_once('@')
            .ok_or_else(|| FaultParseError(format!("spec {text:?} is missing @probability")))?;
        if point.is_empty() {
            return Err(FaultParseError(format!("spec {text:?} has an empty point")));
        }
        let (rest, action) = match rest.split_once('*') {
            Some((head, delay)) => {
                let ms: u64 = delay
                    .strip_suffix("ms")
                    .and_then(|d| d.parse().ok())
                    .ok_or_else(|| {
                        FaultParseError(format!("bad delay {delay:?} (expected <u64>ms)"))
                    })?;
                (head, FaultAction::Delay(Duration::from_millis(ms)))
            }
            None => (rest, FaultAction::Fail),
        };
        let (prob, max_fires) = match rest.split_once('/') {
            Some((p, m)) => {
                let max = m
                    .parse()
                    .map_err(|_| FaultParseError(format!("bad max-fires {m:?}")))?;
                (p, Some(max))
            }
            None => (rest, None),
        };
        let probability: f64 = prob
            .parse()
            .map_err(|_| FaultParseError(format!("bad probability {prob:?}")))?;
        if !(0.0..=1.0).contains(&probability) {
            return Err(FaultParseError(format!(
                "probability {probability} outside [0, 1]"
            )));
        }
        Ok(FaultSpec {
            point: point.to_string(),
            probability,
            max_fires,
            action,
        })
    }

    /// A human-readable one-line rendering (banner, logs, tests).
    pub fn describe(&self) -> String {
        let specs: Vec<String> = self
            .specs
            .iter()
            .map(|s| {
                let max = s.max_fires.map(|m| format!("/{m}")).unwrap_or_default();
                let action = match s.action {
                    FaultAction::Fail => String::new(),
                    FaultAction::Delay(d) => format!("*{}ms", d.as_millis()),
                };
                format!("{}@{}{max}{action}", s.point, s.probability)
            })
            .collect();
        format!("seed:{} {}", self.seed, specs.join(" "))
    }
}

/// One installed spec plus its live counters.
struct SpecState {
    spec: FaultSpec,
    /// Fire when the mixed decision value is below this (probability
    /// scaled to the u64 range).
    threshold: u64,
    /// Stream offset: hash of the point name, mixed with the seed.
    stream: u64,
    evals: AtomicU64,
    fired: AtomicU64,
}

struct PlanState {
    plan: FaultPlan,
    specs: Vec<SpecState>,
}

/// Fast-path gate: `true` only while a plan is installed.
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn state_slot() -> &'static RwLock<Option<Arc<PlanState>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<PlanState>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// FNV-1a 64 of `s` — the per-point stream selector.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer: the deterministic decision mix.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Installs `plan` process-wide (replacing any previous plan) and wires
/// the executor's [`hero_task_graph::chaos`] hook into the same
/// schedule: a fired **fail** spec at an executor point panics the
/// worker (which the pool respawns); **delay** specs sleep.
pub fn install(plan: FaultPlan) {
    let specs = plan
        .specs
        .iter()
        .map(|spec| SpecState {
            threshold: if spec.probability >= 1.0 {
                u64::MAX
            } else {
                (spec.probability * u64::MAX as f64) as u64
            },
            stream: plan.seed ^ fnv1a(&spec.point),
            evals: AtomicU64::new(0),
            fired: AtomicU64::new(0),
            spec: spec.clone(),
        })
        .collect();
    *state_slot().write().unwrap_or_else(|e| e.into_inner()) =
        Some(Arc::new(PlanState { plan, specs }));
    ACTIVE.store(true, Ordering::Release);
    hero_task_graph::chaos::install(Arc::new(|point| {
        if fire(point) {
            panic!("injected fault: {point}");
        }
    }));
}

/// Uninstalls the plan (and the executor hook); [`fire`] returns to its
/// no-op fast path.
pub fn clear() {
    hero_task_graph::chaos::clear();
    ACTIVE.store(false, Ordering::Release);
    *state_slot().write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Whether a fault plan is installed.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Acquire)
}

/// Installs a plan from the `HERO_FAULTS` environment variable. Unset or
/// empty leaves injection disabled and returns `Ok(false)`; a parseable
/// plan is installed (`Ok(true)`).
///
/// # Errors
///
/// [`FaultParseError`] for a present-but-malformed value — callers should
/// refuse to start rather than run with a silently-ignored schedule.
pub fn init_from_env() -> Result<bool, FaultParseError> {
    match std::env::var("HERO_FAULTS") {
        Ok(v) if !v.trim().is_empty() => {
            install(FaultPlan::parse(&v)?);
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Evaluates fault point `point` against the installed plan. Sleeps
/// through any fired **delay** spec, then returns `true` iff a **fail**
/// spec fired — the call site decides what its failure looks like.
/// Disabled path: one relaxed atomic load.
#[inline]
pub fn fire(point: &str) -> bool {
    if !ACTIVE.load(Ordering::Acquire) {
        return false;
    }
    fire_slow(point)
}

#[cold]
fn fire_slow(point: &str) -> bool {
    let state = match &*state_slot().read().unwrap_or_else(|e| e.into_inner()) {
        Some(s) => Arc::clone(s),
        None => return false,
    };
    let mut fail = false;
    for s in state.specs.iter().filter(|s| s.spec.point == point) {
        let idx = s.evals.fetch_add(1, Ordering::Relaxed);
        if splitmix64(s.stream ^ idx.wrapping_mul(0x9e37_79b9_7f4a_7c15)) >= s.threshold {
            continue;
        }
        // Respect the lifetime cap atomically (respawned workers race
        // through worker-death specs).
        if let Some(max) = s.spec.max_fires {
            let claimed = s
                .fired
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                    (v < max).then_some(v + 1)
                })
                .is_ok();
            if !claimed {
                continue;
            }
        } else {
            s.fired.fetch_add(1, Ordering::Relaxed);
        }
        match s.spec.action {
            FaultAction::Fail => fail = true,
            FaultAction::Delay(d) => std::thread::sleep(d),
        }
    }
    fail
}

/// Shorthand for plan-stage call sites: panic (with a recognizable
/// payload) when a fail spec fires at `point`. The panic is confined by
/// the executor's submission poisoning.
#[inline]
pub fn stage(point: &'static str) {
    if fire(point) {
        panic!("injected fault: {point}");
    }
}

/// Total fires recorded for `point` across all specs (0 when disabled).
pub fn fired(point: &str) -> u64 {
    match &*state_slot().read().unwrap_or_else(|e| e.into_inner()) {
        Some(state) => state
            .specs
            .iter()
            .filter(|s| s.spec.point == point)
            .map(|s| s.fired.load(Ordering::Relaxed))
            .sum(),
        None => 0,
    }
}

/// Total fires across every spec (0 when disabled).
pub fn total_fired() -> u64 {
    match &*state_slot().read().unwrap_or_else(|e| e.into_inner()) {
        Some(state) => state
            .specs
            .iter()
            .map(|s| s.fired.load(Ordering::Relaxed))
            .sum(),
        None => 0,
    }
}

/// One-line description of the installed plan, if any (serve banner).
pub fn describe_active() -> Option<String> {
    state_slot()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map(|s| s.plan.describe())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Plan installation is process-global; serialize tests that use it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parse_full_grammar() {
        let plan = FaultPlan::parse(
            "seed:7, spec:executor.worker.claim@0.02/4, spec:server.write.slow@0.1*5ms",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(
            plan.specs,
            vec![
                FaultSpec {
                    point: "executor.worker.claim".to_string(),
                    probability: 0.02,
                    max_fires: Some(4),
                    action: FaultAction::Fail,
                },
                FaultSpec {
                    point: "server.write.slow".to_string(),
                    probability: 0.1,
                    max_fires: None,
                    action: FaultAction::Delay(Duration::from_millis(5)),
                },
            ]
        );
        let shown = plan.describe();
        assert!(shown.contains("seed:7"), "{shown}");
        assert!(shown.contains("executor.worker.claim@0.02/4"), "{shown}");
        assert!(shown.contains("server.write.slow@0.1*5ms"), "{shown}");
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "seed:7",                 // no specs
            "spec:x",                 // no probability
            "spec:@0.5",              // empty point
            "spec:x@1.5",             // probability out of range
            "spec:x@0.5/lots",        // bad max
            "spec:x@0.5*soon",        // bad delay
            "bogus:1,spec:x@0.5",     // unknown token
            "seed:twelve,spec:x@0.5", // bad seed
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn same_seed_same_decisions() {
        let _g = lock();
        let decide = || {
            install(FaultPlan::parse("seed:99,spec:p@0.5").unwrap());
            let seq: Vec<bool> = (0..64).map(|_| fire("p")).collect();
            clear();
            seq
        };
        let a = decide();
        let b = decide();
        assert_eq!(a, b, "decision stream must be reproducible");
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f));
    }

    #[test]
    fn max_fires_caps_the_spec() {
        let _g = lock();
        install(FaultPlan::parse("seed:1,spec:p@1/3").unwrap());
        let fires = (0..100).filter(|_| fire("p")).count();
        assert_eq!(fires, 3);
        assert_eq!(fired("p"), 3);
        assert_eq!(total_fired(), 3);
        clear();
    }

    #[test]
    fn probability_zero_never_fires_and_one_always() {
        let _g = lock();
        install(FaultPlan::parse("seed:5,spec:never@0,spec:always@1").unwrap());
        assert!((0..200).all(|_| !fire("never")));
        assert!((0..200).all(|_| fire("always")));
        clear();
    }

    #[test]
    fn delay_specs_sleep_but_do_not_fail() {
        let _g = lock();
        install(FaultPlan::parse("seed:3,spec:slow@1*10ms").unwrap());
        let start = std::time::Instant::now();
        assert!(!fire("slow"), "delay specs are not failures");
        assert!(start.elapsed() >= Duration::from_millis(10));
        clear();
    }

    #[test]
    fn disabled_is_inert() {
        let _g = lock();
        clear();
        assert!(!active());
        assert!(!fire("anything"));
        assert_eq!(total_fired(), 0);
        assert_eq!(describe_active(), None);
    }

    #[test]
    fn install_wires_the_executor_hook() {
        let _g = lock();
        install(FaultPlan::parse("seed:4,spec:executor.worker.claim@1/1").unwrap());
        assert!(hero_task_graph::chaos::active());
        clear();
        assert!(!hero_task_graph::chaos::active());
    }
}
