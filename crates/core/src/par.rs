//! Minimal scoped-thread parallel map.
//!
//! The functional side of HERO-Sign's kernels executes on CPU threads
//! (std scoped workers play the role of CUDA thread blocks); this
//! helper distributes independent work items — messages, FORS trees,
//! hypertree layers — across a worker pool.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of workers to use by default: the machine's available
/// parallelism, capped to keep test runs snappy.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(32)
}

/// Applies `f` to every index in `0..len` on `workers` threads, returning
/// results in index order.
///
/// Work-steals via an atomic cursor that hands out *chunks* of indices:
/// each `fetch_add` claims `max(1, len / (workers · 8))` consecutive
/// items, so fine-grained workloads (FORS leaves) don't serialize on the
/// cursor while uneven item costs (e.g. WOTS+ chain lengths) still
/// balance — the same reason the GPU kernels interleave chains across
/// warps.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn par_map_indexed<R, F>(len: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, len);
    if workers == 1 {
        return (0..len).map(f).collect();
    }

    // ~8 claims per worker keeps stealing granular enough to balance
    // uneven items without contending on every index.
    let chunk = (len / (workers * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..len).map(|_| None).collect();
    let slots_ptr = SendPtr(slots.as_mut_ptr());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= len {
                    break;
                }
                for i in start..(start + chunk).min(len) {
                    let value = f(i);
                    // SAFETY: each index belongs to exactly one chunk and
                    // each chunk is claimed by exactly one worker via the
                    // atomic cursor, so writes are disjoint; the scope
                    // guarantees the buffer outlives all workers.
                    unsafe { slots_ptr.write(i, Some(value)) }
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("all slots filled"))
        .collect()
}

/// Applies `f` to every element of `items` in parallel, preserving order.
pub fn par_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), workers, |i| f(&items[i]))
}

struct SendPtr<T>(*mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// # Safety
    ///
    /// `i` must be in bounds and no other thread may access index `i`.
    unsafe fn write(&self, i: usize, value: T) {
        *self.0.add(i) = value;
    }
}

// SAFETY: workers write disjoint indices only (enforced by the atomic
// cursor protocol above).
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map_indexed(100, 8, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map_indexed(0, 8, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_path() {
        let out = par_map_indexed(10, 1, |i| i + 1);
        assert_eq!(out[9], 10);
    }

    #[test]
    fn par_map_over_slice() {
        let items = vec!["a", "bb", "ccc"];
        let out = par_map(&items, 4, |s| s.len());
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn uneven_work_balances() {
        // Items with wildly different costs still all complete correctly.
        let out = par_map_indexed(64, 8, |i| {
            let mut acc = 0u64;
            for _ in 0..(i % 7) * 10_000 {
                acc = acc.wrapping_mul(31).wrapping_add(i as u64);
            }
            (i, acc)
        });
        for (i, entry) in out.iter().enumerate() {
            assert_eq!(entry.0, i);
        }
    }

    #[test]
    fn workers_capped_to_len() {
        let out = par_map_indexed(3, 64, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn chunked_claims_cover_ragged_lengths() {
        // Lengths that do not divide the chunk size still visit every
        // index exactly once.
        for len in [1usize, 7, 97, 1000, 1025] {
            for workers in [2usize, 3, 8] {
                let out = par_map_indexed(len, workers, |i| i);
                assert_eq!(out, (0..len).collect::<Vec<_>>(), "len={len} w={workers}");
            }
        }
    }
}
