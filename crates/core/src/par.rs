//! Parallel maps on the persistent worker-pool runtime.
//!
//! The functional side of HERO-Sign's kernels executes on CPU threads
//! (pool workers play the role of CUDA thread blocks); these helpers
//! distribute independent work items — messages, FORS trees, hypertree
//! layers — across a [`hero_task_graph::Executor`].
//!
//! Two pools exist:
//!
//! * every [`crate::engine::HeroSigner`] owns (or shares, via
//!   [`crate::builder::HeroSignerBuilder::runtime`]) an executor sized by
//!   its `workers` setting — engine signing submits there through
//!   [`par_map_indexed_on`];
//! * the free functions [`par_map_indexed`]/[`par_map`] submit onto a
//!   lazily created process-wide [`shared_executor`], so standalone
//!   kernel entry points keep their `workers: usize` signatures without
//!   spinning a `std::thread::scope` up per call (the per-call-pool
//!   behavior the persistent runtime replaced).

use hero_task_graph::{Executor, TaskGraph};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Number of workers to use by default: the `HERO_WORKERS` environment
/// variable when set to a positive integer (the CI matrix pins 1 and 8),
/// otherwise the machine's available parallelism, capped to keep test
/// runs snappy.
pub fn default_workers() -> usize {
    if let Some(n) = env_workers() {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(32)
}

fn env_workers() -> Option<usize> {
    std::env::var("HERO_WORKERS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
        .map(|n| n.min(256))
}

/// The process-wide executor backing the free `par_map*` functions,
/// created on first use with [`default_workers`] threads. Engines built
/// through [`crate::builder::HeroSignerBuilder`] get their own (or an
/// explicitly shared) pool instead; this one serves standalone kernel
/// calls and tests.
pub fn shared_executor() -> &'static Arc<Executor> {
    static POOL: OnceLock<Arc<Executor>> = OnceLock::new();
    POOL.get_or_init(|| Arc::new(Executor::new(default_workers()).expect("default_workers() >= 1")))
}

/// Applies `f` to every index in `0..len` on the process-wide
/// [`shared_executor`], returning results in index order. `workers`
/// bounds the submission's parallelism (number of chunk-claiming nodes),
/// not the pool size; `workers == 1` runs sequentially on the caller.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn par_map_indexed<R, F>(len: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_indexed_on(shared_executor(), len, workers, f)
}

/// [`par_map_indexed`] on an explicit executor: the engine's hot path,
/// submitting onto the runtime the [`crate::engine::HeroSigner`] holds
/// instead of the process-wide pool.
///
/// Work-steals via an atomic cursor that hands out *chunks* of indices:
/// each of the `workers` submission nodes claims
/// `max(1, len / (workers · 8))` consecutive items per `fetch_add`, so
/// fine-grained workloads (FORS leaves) don't serialize on the cursor
/// while uneven item costs (e.g. WOTS+ chain lengths) still balance —
/// the same reason the GPU kernels interleave chains across warps.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn par_map_indexed_on<R, F>(exec: &Executor, len: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, len);
    if workers == 1 {
        return (0..len).map(f).collect();
    }

    // ~8 claims per worker keeps stealing granular enough to balance
    // uneven items without contending on every index.
    let chunk = (len / (workers * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..len).map(|_| None).collect();
    let slots_ptr = SendPtr(slots.as_mut_ptr());

    let mut graph = TaskGraph::new();
    for _ in 0..workers {
        let cursor = &cursor;
        let f = &f;
        graph.task(move || loop {
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= len {
                break;
            }
            for i in start..(start + chunk).min(len) {
                let value = f(i);
                // SAFETY: each index belongs to exactly one chunk and
                // each chunk is claimed by exactly one node via the
                // atomic cursor, so writes are disjoint; `Executor::run`
                // blocks until every node retired, so the buffer
                // outlives all writes.
                unsafe { slots_ptr.write(i, Some(value)) }
            }
        });
    }
    exec.run(graph)
        .expect("independent chunk nodes form an acyclic graph");

    slots
        .into_iter()
        .map(|s| s.expect("all slots filled"))
        .collect()
}

/// Applies `f` to every element of `items` in parallel, preserving order.
pub fn par_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), workers, |i| f(&items[i]))
}

/// [`par_map`] on an explicit executor.
pub fn par_map_on<T, R, F>(exec: &Executor, items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed_on(exec, items.len(), workers, |i| f(&items[i]))
}

struct SendPtr<T>(*mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// # Safety
    ///
    /// `i` must be in bounds and no other thread may access index `i`.
    unsafe fn write(&self, i: usize, value: T) {
        *self.0.add(i) = value;
    }
}

// SAFETY: workers write disjoint indices only (enforced by the atomic
// cursor protocol above).
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map_indexed(100, 8, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map_indexed(0, 8, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_path() {
        let out = par_map_indexed(10, 1, |i| i + 1);
        assert_eq!(out[9], 10);
    }

    #[test]
    fn par_map_over_slice() {
        let items = vec!["a", "bb", "ccc"];
        let out = par_map(&items, 4, |s| s.len());
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn uneven_work_balances() {
        // Items with wildly different costs still all complete correctly.
        let out = par_map_indexed(64, 8, |i| {
            let mut acc = 0u64;
            for _ in 0..(i % 7) * 10_000 {
                acc = acc.wrapping_mul(31).wrapping_add(i as u64);
            }
            (i, acc)
        });
        for (i, entry) in out.iter().enumerate() {
            assert_eq!(entry.0, i);
        }
    }

    #[test]
    fn workers_capped_to_len() {
        let out = par_map_indexed(3, 64, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn chunked_claims_cover_ragged_lengths() {
        // Lengths that do not divide the chunk size still visit every
        // index exactly once.
        for len in [1usize, 7, 97, 1000, 1025] {
            for workers in [2usize, 3, 8] {
                let out = par_map_indexed(len, workers, |i| i);
                assert_eq!(out, (0..len).collect::<Vec<_>>(), "len={len} w={workers}");
            }
        }
    }

    #[test]
    fn explicit_executor_matches_shared_pool() {
        let exec = Executor::new(3).unwrap();
        let out = par_map_indexed_on(&exec, 128, 4, |i| i * 3);
        assert_eq!(out, (0..128).map(|i| i * 3).collect::<Vec<_>>());
        let items: Vec<u32> = (0..40).collect();
        let mapped = par_map_on(&exec, &items, 4, |v| v + 1);
        assert_eq!(mapped, (1..=40).collect::<Vec<_>>());
    }

    #[test]
    fn env_override_parses_strictly() {
        // Pure parse logic (the env var itself is process-global, so the
        // CI matrix exercises the live path).
        assert_eq!(
            "8".trim().parse::<usize>().ok().filter(|&n| n >= 1),
            Some(8)
        );
        assert_eq!("0".trim().parse::<usize>().ok().filter(|&n| n >= 1), None);
        assert_eq!(
            "lots".trim().parse::<usize>().ok().filter(|&n| n >= 1),
            None
        );
        assert!(default_workers() >= 1);
    }
}
