//! The HERO-Sign engine: configuration, tuning, adaptive branch
//! selection, functional batch signing, and full-pipeline simulation.
//!
//! This is the integration point of everything the paper proposes:
//! [`OptConfig`] switches each optimization on independently (the Fig. 11
//! ablation ladder), [`HeroSigner::new`] runs the offline Tree Tuning
//! search and the profiling-driven PTX/native selection, and
//! [`HeroSigner::simulate_pipeline`] replays multi-batch signing over
//! streams or CUDA-Graph-style task graphs (Fig. 12).

use crate::kernels::{fors_sign, tree_sign, wots_sign, KernelConfig};
use crate::ptx::{BranchSelection, KernelKind};
use crate::tuning::{self, TuningOptions, TuningResult};

use hero_gpu_sim::device::DeviceProps;
use hero_gpu_sim::engine::{simulate_kernel, KernelReport};
use hero_gpu_sim::isa::Sha2Path;
use hero_gpu_sim::kernel::{KernelDesc, RoDataPlacement};
use hero_gpu_sim::stream::{LaunchMode, Timeline};
use hero_task_graph::GraphBuilder;

use hero_sphincs::address::{Address, AddressType};
use hero_sphincs::hash::{self, HashCtx};
use hero_sphincs::params::Params;
use hero_sphincs::sign::{Signature, SigningKey};

/// PTX branch policy (§III-C2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PtxPolicy {
    /// Native code everywhere (baseline).
    #[default]
    Off,
    /// Profile both paths per kernel and keep the winner (HERO-Sign).
    Adaptive,
    /// Force the PTX path everywhere (for ablation).
    ForceAll,
}

/// Independent switches for every optimization in the paper.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OptConfig {
    /// §III-A multiple-Merkle-tree parallelization.
    pub mmtp: bool,
    /// §III-B FORS fusion via the Auto Tree Tuning search.
    pub fusion: bool,
    /// §III-C PTX branch policy.
    pub ptx: PtxPolicy,
    /// §III-D hybrid memory allocation.
    pub hybrid_memory: bool,
    /// §III-E bank-conflict padding.
    pub free_bank: bool,
    /// `__launch_bounds__` register capping on `TREE_Sign`.
    pub launch_bounds: bool,
    /// §III-F task-graph batch execution.
    pub graph: bool,
}

impl OptConfig {
    /// The TCAS-SPHINCSp baseline: hypertree parallelism only.
    pub const fn baseline() -> Self {
        Self {
            mmtp: false,
            fusion: false,
            ptx: PtxPolicy::Off,
            hybrid_memory: false,
            free_bank: false,
            launch_bounds: false,
            graph: false,
        }
    }

    /// Fully optimized HERO-Sign.
    pub const fn hero() -> Self {
        Self {
            mmtp: true,
            fusion: true,
            ptx: PtxPolicy::Adaptive,
            hybrid_memory: true,
            free_bank: true,
            launch_bounds: true,
            graph: true,
        }
    }

    /// The Fig. 11 ablation ladder: each step adds one optimization.
    /// Returns `(label, config)` pairs in the paper's order.
    pub fn ablation_ladder() -> Vec<(&'static str, OptConfig)> {
        let mut cfg = OptConfig::baseline();
        let mut steps = vec![("Baseline", cfg)];
        cfg.mmtp = true;
        steps.push(("MMTP", cfg));
        cfg.fusion = true;
        steps.push(("+FS", cfg));
        cfg.ptx = PtxPolicy::Adaptive;
        steps.push(("+PTX", cfg));
        cfg.hybrid_memory = true;
        steps.push(("+HybridME", cfg));
        cfg.free_bank = true;
        steps.push(("+FreeBank", cfg));
        steps
    }
}

/// Full-pipeline simulation result (the Fig. 12 quantities).
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// End-to-end time for all batches (µs).
    pub makespan_us: f64,
    /// Signatures per second / 1000.
    pub kops: f64,
    /// Cumulative host launch overhead (µs) — Fig. 12's latency panel.
    pub launch_overhead_us: f64,
    /// Host launches performed.
    pub launch_count: u64,
    /// Device idle time between kernel executions (µs) — Table II's
    /// "Idle Time" column.
    pub idle_us: f64,
    /// Per-kernel device time for one batch (µs): FORS, TREE, WOTS+.
    pub kernel_batch_us: [f64; 3],
}

/// The HERO-Sign engine for one (device, parameter set, configuration).
#[derive(Clone, Debug)]
pub struct HeroSigner {
    device: DeviceProps,
    params: Params,
    config: OptConfig,
    tuning: Option<TuningResult>,
    selection: BranchSelection,
    workers: usize,
}

impl HeroSigner {
    /// Builds an engine: runs the offline Tree Tuning search (if fusion is
    /// enabled) and the profiling-driven branch selection (if adaptive).
    ///
    /// # Panics
    ///
    /// Panics if `params` fails validation.
    pub fn new(device: DeviceProps, params: Params, config: OptConfig) -> Self {
        params.validate().expect("valid parameter set");
        let tuning = if config.fusion {
            tuning::tune_auto(&device, &params, &TuningOptions::default()).ok()
        } else {
            None
        };
        let mut engine = Self {
            device,
            params,
            config,
            tuning,
            selection: BranchSelection::all_native(),
            workers: crate::par::default_workers(),
        };
        engine.selection = match config.ptx {
            PtxPolicy::Off => BranchSelection::all_native(),
            PtxPolicy::ForceAll => BranchSelection {
                fors: Sha2Path::Ptx,
                tree: Sha2Path::Ptx,
                wots: Sha2Path::Ptx,
            },
            PtxPolicy::Adaptive => engine.profile_branch_selection(),
        };
        engine
    }

    /// Convenience: fully optimized engine.
    pub fn hero(device: DeviceProps, params: Params) -> Self {
        Self::new(device, params, OptConfig::hero())
    }

    /// Convenience: baseline engine.
    pub fn baseline(device: DeviceProps, params: Params) -> Self {
        Self::new(device, params, OptConfig::baseline())
    }

    /// The device this engine targets.
    pub fn device(&self) -> &DeviceProps {
        &self.device
    }

    /// The parameter set.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The active configuration.
    pub fn config(&self) -> &OptConfig {
        &self.config
    }

    /// The tuning result, if fusion is enabled.
    pub fn tuning(&self) -> Option<&TuningResult> {
        self.tuning.as_ref()
    }

    /// The resolved PTX/native selection (Table V's row for this set).
    pub fn selection(&self) -> BranchSelection {
        self.selection
    }

    /// Overrides the worker-thread count for functional signing.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// The FORS block layout implied by the configuration.
    pub fn fors_layout(&self) -> fors_sign::ForsLayout {
        match (&self.tuning, self.config.mmtp, self.config.fusion) {
            (Some(t), _, true) => {
                if t.best.relax_depth > 0 {
                    fors_sign::ForsLayout::Relax(t.best)
                } else {
                    fors_sign::ForsLayout::Fused(t.best)
                }
            }
            (_, true, _) => fors_sign::ForsLayout::Mmtp,
            _ => fors_sign::ForsLayout::Baseline,
        }
    }

    /// Per-kernel code-generation config implied by the optimization set.
    pub fn kernel_config(&self, kind: KernelKind) -> KernelConfig {
        let path = self.selection.path(kind);
        let placement = if self.config.hybrid_memory {
            match (kind, self.params.n) {
                // §III-D: TREE_Sign's read-only data stays in global
                // memory with vectorized loads for 192f.
                (KernelKind::TreeSign, 24) => RoDataPlacement::GlobalVectorized,
                _ => RoDataPlacement::Constant,
            }
        } else {
            RoDataPlacement::Global
        };
        KernelConfig {
            path,
            placement,
            padding: self.config.free_bank,
            launch_bounds: self.config.launch_bounds,
            // The shift rewrite ships with MMTP's kernel rewrite.
            index_shift_rewrite: self.config.mmtp,
        }
    }

    /// Analytic descriptors for the three kernels over `messages` messages.
    pub fn kernel_descs(&self, messages: u32) -> [KernelDesc; 3] {
        let layout = self.fors_layout();
        [
            fors_sign::describe(
                &self.device,
                &self.params,
                messages,
                &layout,
                &self.kernel_config(KernelKind::ForsSign),
            ),
            tree_sign::describe(
                &self.device,
                &self.params,
                messages,
                &self.kernel_config(KernelKind::TreeSign),
            ),
            wots_sign::describe(
                &self.device,
                &self.params,
                messages,
                &self.kernel_config(KernelKind::WotsSign),
            ),
        ]
    }

    /// Simulated timing reports for the three kernels.
    pub fn kernel_reports(&self, messages: u32) -> [KernelReport; 3] {
        self.kernel_descs(messages).map(|d| simulate_kernel(&self.device, &d))
    }

    /// Profiling-driven branch selection: simulate each kernel under both
    /// paths, keep the winner (§III-C2's "more intuitive approach").
    fn profile_branch_selection(&self) -> BranchSelection {
        let pick = |kind: KernelKind| {
            let mut best = (f64::INFINITY, Sha2Path::Native);
            for path in [Sha2Path::Native, Sha2Path::Ptx] {
                let mut cfg = self.kernel_config_with_path(kind, path);
                cfg.padding = self.config.free_bank;
                let desc = match kind {
                    KernelKind::ForsSign => fors_sign::describe(
                        &self.device,
                        &self.params,
                        1024,
                        &self.fors_layout(),
                        &cfg,
                    ),
                    KernelKind::TreeSign => {
                        tree_sign::describe(&self.device, &self.params, 1024, &cfg)
                    }
                    KernelKind::WotsSign => {
                        wots_sign::describe(&self.device, &self.params, 1024, &cfg)
                    }
                };
                let t = simulate_kernel(&self.device, &desc).time_us;
                if t < best.0 {
                    best = (t, path);
                }
            }
            best.1
        };
        BranchSelection {
            fors: pick(KernelKind::ForsSign),
            tree: pick(KernelKind::TreeSign),
            wots: pick(KernelKind::WotsSign),
        }
    }

    fn kernel_config_with_path(&self, kind: KernelKind, path: Sha2Path) -> KernelConfig {
        let mut cfg = self.kernel_config(kind);
        cfg.path = path;
        cfg
    }

    /// Functional signing of one message via the three-kernel
    /// decomposition. Bit-identical to [`SigningKey::sign`].
    pub fn sign(&self, sk: &SigningKey, msg: &[u8]) -> Signature {
        let params = self.params;
        assert_eq!(
            *sk.params(),
            params,
            "signing key parameter set must match the engine"
        );
        let ctx = HashCtx::with_alg(params, sk.pk_seed(), sk.alg());

        // Host-side preamble (Fig. 2): randomizer, digest, indices.
        let randomizer = ctx.prf_msg(sk.sk_prf(), sk.pk_seed(), msg);
        let digest = ctx.h_msg(&randomizer, sk.pk_root(), msg);
        let (md, tree_idx, leaf_idx) = hash::split_digest(&params, &digest);

        let mut keypair_adrs = Address::new();
        keypair_adrs.set_layer(0);
        keypair_adrs.set_tree(tree_idx);
        keypair_adrs.set_type(AddressType::ForsTree);
        keypair_adrs.set_keypair(leaf_idx);

        // FORS_Sign ∥ TREE_Sign, then WOTS+_Sign (the task-graph DAG).
        let (fors_sig, fors_pk) =
            fors_sign::run(&ctx, sk.sk_seed(), &md, &keypair_adrs, self.workers);
        let layers = tree_sign::run(&ctx, sk.sk_seed(), tree_idx, leaf_idx, self.workers);
        let roots: Vec<Vec<u8>> = layers.iter().map(|l| l.root.clone()).collect();
        let coords: Vec<(u64, u32)> = layers.iter().map(|l| (l.tree_idx, l.leaf_idx)).collect();
        let wots_sigs =
            wots_sign::run(&ctx, sk.sk_seed(), &fors_pk, &roots, &coords, self.workers);

        let ht_layers = layers
            .into_iter()
            .zip(wots_sigs)
            .map(|(lt, wots_sig)| hero_sphincs::hypertree::XmssSig {
                wots_sig,
                auth_path: lt.auth_path,
            })
            .collect();

        Signature {
            randomizer,
            fors: fors_sig,
            ht: hero_sphincs::hypertree::HtSignature { layers: ht_layers },
        }
    }

    /// Functional batch signing: messages distributed across workers.
    pub fn sign_batch(&self, sk: &SigningKey, msgs: &[&[u8]]) -> Vec<Signature> {
        // Parallelism lives inside each signature's kernels; batches just
        // iterate (matching the GPU, where one batch fills the device).
        msgs.iter().map(|m| self.sign(sk, m)).collect()
    }

    /// Functional batch verification on the worker pool (extension: the
    /// paper accelerates generation only). Returns one result per
    /// message; never short-circuits, like a GPU batch.
    pub fn verify_batch(
        &self,
        vk: &hero_sphincs::VerifyingKey,
        msgs: &[&[u8]],
        sigs: &[Signature],
    ) -> Vec<Result<(), hero_sphincs::sign::SignError>> {
        crate::kernels::verify::run_batch(vk, msgs, sigs, self.workers)
    }

    /// Simulates the pipeline *including PCIe transfers* (§IV-E1): each
    /// batch uploads `msg_bytes`-byte messages, computes, and downloads
    /// its signatures, with copies overlapping compute on dedicated copy
    /// engines. Returns `(report, transfers)` — `report.kops` includes
    /// transfer time.
    ///
    /// This is where the paper's two-sided batch guidance emerges:
    /// compute hides transfers at moderate batches, but the pipeline
    /// fill/drain grows with batch size, so latency-sensitive deployments
    /// prefer smaller batches (§IV-E1's "near 64").
    pub fn simulate_pipeline_pcie(
        &self,
        messages: u32,
        batch_size: u32,
        streams: usize,
        msg_bytes: u32,
    ) -> (PipelineReport, hero_gpu_sim::pcie::PipelinedTransfers) {
        let batch_size = batch_size.clamp(1, messages);
        let batches = messages.div_ceil(batch_size);
        let compute = self.simulate_pipeline(messages, batch_size, streams);
        let per_batch_compute_us = compute.makespan_us / batches as f64;
        let h2d = batch_size as u64 * (msg_bytes as u64 + 2 * self.params.n as u64);
        let d2h = batch_size as u64 * self.params.sig_bytes() as u64;
        let transfers = hero_gpu_sim::pcie::pipeline_with_transfers(
            &self.device,
            batches,
            per_batch_compute_us,
            h2d,
            d2h,
        );
        let mut report = compute;
        report.makespan_us = transfers.makespan_us;
        report.kops = messages as f64 / transfers.makespan_us * 1.0e3;
        (report, transfers)
    }

    /// Simulated batch-verification throughput (KOPS) for `messages`
    /// signatures on this device.
    pub fn simulate_verify_kops(&self, messages: u32) -> f64 {
        let cfg = self.kernel_config(KernelKind::WotsSign);
        let desc =
            crate::kernels::verify::describe(&self.device, &self.params, messages, &cfg);
        let report = simulate_kernel(&self.device, &desc);
        messages as f64 / report.time_us * 1.0e3
    }

    /// Simulates end-to-end pipeline execution of `messages` messages
    /// split into `batch_size`-message batches over `streams` concurrent
    /// streams (Fig. 12 / Fig. 13).
    pub fn simulate_pipeline(&self, messages: u32, batch_size: u32, streams: usize) -> PipelineReport {
        self.simulate_pipeline_traced(messages, batch_size, streams).0
    }

    /// [`HeroSigner::simulate_pipeline`], also returning the populated
    /// [`Timeline`] — e.g. for [`hero_gpu_sim::trace::chrome_trace`]
    /// schedule visualization.
    pub fn simulate_pipeline_traced(
        &self,
        messages: u32,
        batch_size: u32,
        streams: usize,
    ) -> (PipelineReport, Timeline) {
        let batch_size = batch_size.clamp(1, messages);
        let batches = messages.div_ceil(batch_size);
        let reports = self.kernel_reports(batch_size);
        let [fors_us, tree_us, wots_us] =
            [reports[0].time_us, reports[1].time_us, reports[2].time_us];
        let descs = self.kernel_descs(batch_size);
        let sms = |d: &KernelDesc| d.grid_blocks.min(self.device.sm_count);

        let mut tl = Timeline::new(self.device.clone());

        if self.config.graph {
            let mut g = GraphBuilder::new();
            let f = g.kernel("FORS_Sign", fors_us, sms(&descs[0]));
            let t = g.kernel("TREE_Sign", tree_us, sms(&descs[1]));
            let w = g.kernel("WOTS+_Sign", wots_us, sms(&descs[2]));
            g.depends_on(w, f);
            g.depends_on(w, t);
            let exe = g.instantiate(&self.device);
            for b in 0..batches {
                exe.launch(&mut tl, b as usize % streams.max(1));
            }
        } else {
            for b in 0..batches {
                let s = tl.stream(b as usize % streams.max(1));
                let f = tl.launch("FORS_Sign", s, fors_us, sms(&descs[0]), LaunchMode::Stream, &[]);
                let t = tl.launch("TREE_Sign", s, tree_us, sms(&descs[1]), LaunchMode::Stream, &[]);
                tl.launch("WOTS+_Sign", s, wots_us, sms(&descs[2]), LaunchMode::Stream, &[f, t]);
            }
        }

        let makespan = tl.makespan_us();
        let report = PipelineReport {
            makespan_us: makespan,
            kops: messages as f64 / makespan * 1.0e3,
            launch_overhead_us: tl.launch_overhead_total_us(),
            launch_count: tl.launch_count(),
            idle_us: tl.idle_us() + tl.dispatch_idle_total_us(),
            kernel_batch_us: [fors_us, tree_us, wots_us],
        };
        (report, tl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_gpu_sim::device::rtx_4090;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_params() -> Params {
        let mut p = Params::sphincs_128f();
        p.h = 6;
        p.d = 3;
        p.log_t = 4;
        p.k = 8;
        p
    }

    #[test]
    fn hero_sign_matches_reference_exactly() {
        let mut rng = StdRng::seed_from_u64(7);
        let params = tiny_params();
        let (sk, vk) = hero_sphincs::keygen(params, &mut rng).unwrap();
        let engine = HeroSigner::hero(rtx_4090(), params);
        let msg = b"hero-sign functional equivalence";
        let hero_sig = engine.sign(&sk, msg);
        let reference = sk.sign(msg);
        assert_eq!(hero_sig, reference);
        vk.verify(msg, &hero_sig).unwrap();
    }

    #[test]
    fn batch_signing_verifies() {
        let mut rng = StdRng::seed_from_u64(8);
        let params = tiny_params();
        let (sk, vk) = hero_sphincs::keygen(params, &mut rng).unwrap();
        let engine = HeroSigner::hero(rtx_4090(), params);
        let msgs: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 20]).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let sigs = engine.sign_batch(&sk, &refs);
        for (m, s) in refs.iter().zip(&sigs) {
            vk.verify(m, s).unwrap();
        }
    }

    #[test]
    fn adaptive_selection_reproduces_table_v() {
        // Table V on RTX 4090: FORS → PTX everywhere; TREE/WOTS native at
        // 128f/192f, PTX at 256f.
        let d = rtx_4090();
        for p in Params::fast_sets() {
            let engine = HeroSigner::hero(d.clone(), p);
            let sel = engine.selection();
            assert_eq!(sel.fors, Sha2Path::Ptx, "{} FORS", p.name());
            let expect = if p.n == 32 { Sha2Path::Ptx } else { Sha2Path::Native };
            assert_eq!(sel.tree, expect, "{} TREE", p.name());
            assert_eq!(sel.wots, expect, "{} WOTS", p.name());
        }
    }

    #[test]
    fn hero_outperforms_baseline_per_kernel() {
        let d = rtx_4090();
        for p in Params::fast_sets() {
            let base = HeroSigner::baseline(d.clone(), p).kernel_reports(1024);
            let hero = HeroSigner::hero(d.clone(), p).kernel_reports(1024);
            for (b, h) in base.iter().zip(hero.iter()) {
                assert!(
                    h.time_us < b.time_us,
                    "{} {}: {} !< {}",
                    p.name(),
                    b.name,
                    h.time_us,
                    b.time_us
                );
            }
        }
    }

    #[test]
    fn ablation_ladder_is_monotone_enough() {
        // Each Fig. 11 step may be small but the cumulative trend must be
        // strictly downward in FORS time.
        let d = rtx_4090();
        let p = Params::sphincs_128f();
        let mut last = f64::INFINITY;
        for (label, cfg) in OptConfig::ablation_ladder() {
            let engine = HeroSigner::new(d.clone(), p, cfg);
            let fors = &engine.kernel_reports(1024)[0];
            assert!(
                fors.time_us <= last * 1.005,
                "{label}: {} vs previous {last}",
                fors.time_us
            );
            last = fors.time_us;
        }
    }

    #[test]
    fn graph_pipeline_slashes_launch_overhead() {
        let d = rtx_4090();
        let p = Params::sphincs_128f();
        let hero_graph = HeroSigner::hero(d.clone(), p).simulate_pipeline(1024, 64, 4);
        let mut no_graph_cfg = OptConfig::hero();
        no_graph_cfg.graph = false;
        let hero_stream =
            HeroSigner::new(d.clone(), p, no_graph_cfg).simulate_pipeline(1024, 64, 4);
        // Two orders of magnitude vs per-message baseline launches.
        let baseline = HeroSigner::baseline(d.clone(), p).simulate_pipeline(1024, 1, 4);
        assert!(
            baseline.launch_overhead_us / hero_graph.launch_overhead_us > 50.0,
            "{} vs {}",
            baseline.launch_overhead_us,
            hero_graph.launch_overhead_us
        );
        assert!(hero_graph.launch_overhead_us < hero_stream.launch_overhead_us);
        assert!(hero_graph.kops >= hero_stream.kops * 0.99);
    }

    #[test]
    fn pipeline_kops_in_paper_decade() {
        // Fig. 12: 128f full pipeline ≈ 93 (baseline) → 119 (HERO+graph).
        // The baseline launches per-message kernels over many streams
        // (CUSPX-style streams ≈ tasks/cores); HERO signs ≥512-message
        // batches (§IV-E1's throughput guidance).
        let d = rtx_4090();
        let p = Params::sphincs_128f();
        let base = HeroSigner::baseline(d.clone(), p).simulate_pipeline(1024, 1, 128);
        let hero = HeroSigner::hero(d.clone(), p).simulate_pipeline(1024, 512, 4);
        assert!(base.kops > 40.0 && base.kops < 200.0, "baseline {}", base.kops);
        assert!(hero.kops > base.kops, "{} vs {}", hero.kops, base.kops);
        let speedup = hero.kops / base.kops;
        assert!(speedup > 1.1 && speedup < 2.2, "speedup {speedup}");
    }

    #[test]
    fn s_variants_supported_via_deep_relax() {
        // The -s sets run end to end on the engine thanks to the
        // generalized Relax Buffer (extension beyond the paper's -f scope).
        let d = rtx_4090();
        for p in [Params::sphincs_128s(), Params::sphincs_192s(), Params::sphincs_256s()] {
            let engine = HeroSigner::hero(d.clone(), p);
            assert!(matches!(engine.fors_layout(), fors_sign::ForsLayout::Relax(_)));
            let reports = engine.kernel_reports(256);
            for r in &reports {
                assert!(r.time_us.is_finite() && r.time_us > 0.0, "{} {}", p.name(), r.name);
            }
            // -s trades throughput for signature size: slower than -f.
            let f_equiv = match p.n {
                16 => Params::sphincs_128f(),
                24 => Params::sphincs_192f(),
                _ => Params::sphincs_256f(),
            };
            let s_pipe = engine.simulate_pipeline(512, 256, 4);
            let f_pipe = HeroSigner::hero(d.clone(), f_equiv).simulate_pipeline(512, 256, 4);
            assert!(s_pipe.kops < f_pipe.kops, "{}: -s must be slower", p.name());
        }
    }

    #[test]
    fn engine_signs_with_sha512_keys() {
        use hero_sphincs::hash::HashAlg;
        let mut rng = StdRng::seed_from_u64(64);
        let params = tiny_params();
        let (sk, vk) =
            hero_sphincs::keygen_with_alg(params, HashAlg::Sha512, &mut rng).unwrap();
        let engine = HeroSigner::hero(rtx_4090(), params);
        let sig = engine.sign(&sk, b"sha512 through the kernels");
        assert_eq!(sig, sk.sign(b"sha512 through the kernels"));
        vk.verify(b"sha512 through the kernels", &sig).unwrap();
    }

    #[test]
    fn fors_layout_tracks_config() {
        let d = rtx_4090();
        let p = Params::sphincs_128f();
        assert!(matches!(
            HeroSigner::baseline(d.clone(), p).fors_layout(),
            fors_sign::ForsLayout::Baseline
        ));
        let mut cfg = OptConfig::baseline();
        cfg.mmtp = true;
        assert!(matches!(
            HeroSigner::new(d.clone(), p, cfg).fors_layout(),
            fors_sign::ForsLayout::Mmtp
        ));
        assert!(matches!(
            HeroSigner::hero(d.clone(), p).fors_layout(),
            fors_sign::ForsLayout::Fused(_)
        ));
        assert!(matches!(
            HeroSigner::hero(d, Params::sphincs_256f()).fors_layout(),
            fors_sign::ForsLayout::Relax(_)
        ));
    }
}
