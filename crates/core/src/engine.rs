//! The HERO-Sign engine: configuration, tuning, adaptive branch
//! selection, functional batch signing, and full-pipeline simulation.
//!
//! This is the integration point of everything the paper proposes:
//! [`OptConfig`] switches each optimization on independently (the Fig. 11
//! ablation ladder), [`HeroSigner::builder`] runs the offline Tree Tuning
//! search (through the process-wide cache) and the profiling-driven
//! PTX/native selection, and [`HeroSigner::simulate`] replays multi-batch
//! signing over streams or CUDA-Graph-style task graphs (Fig. 12) under a
//! [`PipelineOptions`] description of the workload.

use crate::builder::HeroSignerBuilder;
use crate::cache::{CacheStats, HypertreeCache};
use crate::error::HeroError;
use crate::kernels::{fors_sign, tree_sign, wots_sign, KernelConfig};
use crate::ptx::{BranchSelection, KernelKind};
use crate::signer::{check_key, Signer};
use crate::tuning::TuningResult;

use hero_gpu_sim::device::DeviceProps;
use hero_gpu_sim::engine::{simulate_kernel, KernelReport};
use hero_gpu_sim::isa::Sha2Path;
use hero_gpu_sim::kernel::{KernelDesc, RoDataPlacement};
use hero_gpu_sim::pcie::PipelinedTransfers;
use hero_gpu_sim::stream::{LaunchMode, Timeline};
use hero_task_graph::{Executor, GraphBuilder};

use hero_sphincs::hash::HashCtx;
use hero_sphincs::params::Params;
use hero_sphincs::sign::{Signature, SigningKey};

use std::sync::Arc;

/// PTX branch policy (§III-C2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PtxPolicy {
    /// Native code everywhere (baseline).
    #[default]
    Off,
    /// Profile both paths per kernel and keep the winner (HERO-Sign).
    Adaptive,
    /// Force the PTX path everywhere (for ablation).
    ForceAll,
}

/// Independent switches for every optimization in the paper.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OptConfig {
    /// §III-A multiple-Merkle-tree parallelization.
    pub mmtp: bool,
    /// §III-B FORS fusion via the Auto Tree Tuning search.
    pub fusion: bool,
    /// §III-C PTX branch policy.
    pub ptx: PtxPolicy,
    /// §III-D hybrid memory allocation.
    pub hybrid_memory: bool,
    /// §III-E bank-conflict padding.
    pub free_bank: bool,
    /// `__launch_bounds__` register capping on `TREE_Sign`.
    pub launch_bounds: bool,
    /// §III-F task-graph batch execution.
    pub graph: bool,
}

impl OptConfig {
    /// The TCAS-SPHINCSp baseline: hypertree parallelism only.
    pub const fn baseline() -> Self {
        Self {
            mmtp: false,
            fusion: false,
            ptx: PtxPolicy::Off,
            hybrid_memory: false,
            free_bank: false,
            launch_bounds: false,
            graph: false,
        }
    }

    /// Fully optimized HERO-Sign.
    pub const fn hero() -> Self {
        Self {
            mmtp: true,
            fusion: true,
            ptx: PtxPolicy::Adaptive,
            hybrid_memory: true,
            free_bank: true,
            launch_bounds: true,
            graph: true,
        }
    }

    /// The Fig. 11 ablation ladder: each step adds one optimization.
    /// Returns `(label, config)` pairs in the paper's order.
    pub fn ablation_ladder() -> Vec<(&'static str, OptConfig)> {
        let mut cfg = OptConfig::baseline();
        let mut steps = vec![("Baseline", cfg)];
        cfg.mmtp = true;
        steps.push(("MMTP", cfg));
        cfg.fusion = true;
        steps.push(("+FS", cfg));
        cfg.ptx = PtxPolicy::Adaptive;
        steps.push(("+PTX", cfg));
        cfg.hybrid_memory = true;
        steps.push(("+HybridME", cfg));
        cfg.free_bank = true;
        steps.push(("+FreeBank", cfg));
        steps
    }
}

/// How a simulated pipeline issues work to the device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LaunchPolicy {
    /// Follow the engine's [`OptConfig::graph`] switch.
    #[default]
    Auto,
    /// Force CUDA-Graph-style batched launches.
    Graph,
    /// Force per-kernel stream launches.
    Streams,
}

/// A description of one simulated signing workload, replacing the old
/// positional `simulate_pipeline(messages, batch_size, streams)` family.
///
/// ```
/// use hero_sign::PipelineOptions;
///
/// let opts = PipelineOptions::new(1024).batch_size(64).streams(8);
/// assert_eq!(opts.messages, 1024);
/// // Defaults: batch 512, 4 streams, launch mode follows the engine.
/// assert_eq!(PipelineOptions::default().batch_size, 512);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PipelineOptions {
    /// Total messages to sign.
    pub messages: u32,
    /// Messages per device batch. Must not exceed `messages`
    /// ([`PipelineOptions::validate`] reports the mismatch as a typed
    /// error instead of silently clamping); the final batch may still be
    /// short when `batch_size` does not divide `messages`.
    pub batch_size: u32,
    /// Concurrent streams batches rotate across.
    pub streams: usize,
    /// Launch mode override.
    pub launch: LaunchPolicy,
    /// When `Some(msg_bytes)`, the simulation includes PCIe transfers
    /// (§IV-E1): each batch uploads `msg_bytes`-byte messages and
    /// downloads its signatures, with copies overlapping compute on
    /// dedicated copy engines. The resulting
    /// [`PipelineReport::transfers`] is populated.
    pub pcie_msg_bytes: Option<u32>,
}

impl Default for PipelineOptions {
    /// The paper's standard workload: 1024 messages in 512-message
    /// batches over 4 streams, engine-selected launch mode, no PCIe
    /// modeling.
    fn default() -> Self {
        Self {
            messages: 1024,
            batch_size: 512,
            streams: 4,
            launch: LaunchPolicy::Auto,
            pcie_msg_bytes: None,
        }
    }
}

impl PipelineOptions {
    /// A workload of `messages` messages with default batching (the
    /// standard 512-message batch, shrunk to `messages` for small
    /// workloads so the default always passes
    /// [`PipelineOptions::validate`]).
    pub fn new(messages: u32) -> Self {
        let defaults = Self::default();
        Self {
            messages,
            batch_size: defaults.batch_size.min(messages.max(1)),
            ..defaults
        }
    }

    /// Sets the per-batch message count.
    pub fn batch_size(mut self, batch_size: u32) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Sets the stream count.
    pub fn streams(mut self, streams: usize) -> Self {
        self.streams = streams;
        self
    }

    /// Overrides the launch mode.
    pub fn launch(mut self, launch: LaunchPolicy) -> Self {
        self.launch = launch;
        self
    }

    /// Enables PCIe transfer modeling with `msg_bytes`-byte messages.
    pub fn pcie_overlap(mut self, msg_bytes: u32) -> Self {
        self.pcie_msg_bytes = Some(msg_bytes);
        self
    }

    /// Checks the workload description for unusable values.
    ///
    /// # Errors
    ///
    /// [`HeroError::InvalidOptions`] naming the offending field —
    /// including `batch_size > messages`, which used to be clamped
    /// silently; a dispatcher that wants a short final batch says so by
    /// sizing batches to the workload, not the other way around.
    pub fn validate(&self) -> Result<(), HeroError> {
        if self.messages == 0 {
            return Err(HeroError::InvalidOptions(
                "messages must be >= 1".to_string(),
            ));
        }
        if self.batch_size == 0 {
            return Err(HeroError::InvalidOptions(
                "batch_size must be >= 1".to_string(),
            ));
        }
        if self.batch_size > self.messages {
            return Err(HeroError::InvalidOptions(format!(
                "batch_size ({}) must not exceed messages ({})",
                self.batch_size, self.messages
            )));
        }
        if self.streams == 0 {
            return Err(HeroError::InvalidOptions(
                "streams must be >= 1".to_string(),
            ));
        }
        Ok(())
    }
}

/// Full-pipeline simulation result (the Fig. 12 quantities).
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// End-to-end time for all batches (µs), including transfers when
    /// PCIe modeling is enabled.
    pub makespan_us: f64,
    /// Signatures per second / 1000.
    pub kops: f64,
    /// Cumulative host launch overhead (µs) — Fig. 12's latency panel.
    pub launch_overhead_us: f64,
    /// Host launches performed.
    pub launch_count: u64,
    /// Device idle time between kernel executions (µs) — Table II's
    /// "Idle Time" column.
    pub idle_us: f64,
    /// Per-kernel device time for one batch (µs): FORS, TREE, WOTS+.
    pub kernel_batch_us: [f64; 3],
    /// PCIe transfer breakdown, when
    /// [`PipelineOptions::pcie_msg_bytes`] was set.
    pub transfers: Option<PipelinedTransfers>,
}

/// The HERO-Sign engine for one (device, parameter set, configuration).
///
/// Holds an [`Executor`] — the persistent stream runtime — in an
/// [`Arc`]: cloning the engine shares the same worker pool, the way
/// multiple CUDA streams share one device, and concurrent `sign` /
/// `sign_batch` calls interleave their stage graphs on those workers
/// instead of serializing behind per-call thread pools.
#[derive(Clone, Debug)]
pub struct HeroSigner {
    device: DeviceProps,
    params: Params,
    config: OptConfig,
    tuning: Option<TuningResult>,
    selection: BranchSelection,
    executor: Arc<Executor>,
    /// Per-key hypertree memoization, shared by clones (like the
    /// executor): many services signing through clones of one engine
    /// pool their warm subtrees.
    cache: Arc<HypertreeCache>,
}

impl HeroSigner {
    /// Starts configuring an engine; see [`HeroSignerBuilder`].
    pub fn builder(device: DeviceProps, params: Params) -> HeroSignerBuilder {
        HeroSignerBuilder::new(device, params)
    }

    /// Convenience: fully optimized engine with default options.
    ///
    /// # Errors
    ///
    /// As [`HeroSignerBuilder::build`].
    pub fn hero(device: DeviceProps, params: Params) -> Result<Self, HeroError> {
        Self::builder(device, params).build()
    }

    /// Convenience: baseline engine with default options.
    ///
    /// # Errors
    ///
    /// As [`HeroSignerBuilder::build`].
    pub fn baseline(device: DeviceProps, params: Params) -> Result<Self, HeroError> {
        Self::builder(device, params)
            .config(OptConfig::baseline())
            .build()
    }

    /// Assembles a validated engine: resolves the profiling-driven
    /// PTX/native selection for the given configuration. Called by
    /// [`HeroSignerBuilder::build`] after validation and tuning.
    pub(crate) fn construct(
        device: DeviceProps,
        params: Params,
        config: OptConfig,
        tuning: Option<TuningResult>,
        executor: Arc<Executor>,
        cache: Arc<HypertreeCache>,
    ) -> Self {
        let mut engine = Self {
            device,
            params,
            config,
            tuning,
            selection: BranchSelection::all_native(),
            executor,
            cache,
        };
        engine.selection = match config.ptx {
            PtxPolicy::Off => BranchSelection::all_native(),
            PtxPolicy::ForceAll => BranchSelection {
                fors: Sha2Path::Ptx,
                tree: Sha2Path::Ptx,
                wots: Sha2Path::Ptx,
            },
            PtxPolicy::Adaptive => engine.profile_branch_selection(),
        };
        engine
    }

    /// The device this engine targets.
    pub fn device(&self) -> &DeviceProps {
        &self.device
    }

    /// The parameter set.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The active configuration.
    pub fn config(&self) -> &OptConfig {
        &self.config
    }

    /// The tuning result, if fusion is enabled and the search succeeded.
    pub fn tuning(&self) -> Option<&TuningResult> {
        self.tuning.as_ref()
    }

    /// The resolved PTX/native selection (Table V's row for this set).
    pub fn selection(&self) -> BranchSelection {
        self.selection
    }

    /// The functional-signing worker-thread count of the runtime.
    pub fn workers(&self) -> usize {
        self.executor.workers()
    }

    /// The persistent stream runtime this engine submits onto. Share it
    /// across engines (via [`crate::builder::HeroSignerBuilder::runtime`])
    /// or hand it to services and benchmarks that want to co-schedule
    /// their own [`hero_task_graph::TaskGraph`] submissions with signing.
    pub fn runtime(&self) -> &Arc<Executor> {
        &self.executor
    }

    /// The FORS block layout implied by the configuration.
    pub fn fors_layout(&self) -> fors_sign::ForsLayout {
        match (&self.tuning, self.config.mmtp, self.config.fusion) {
            (Some(t), _, true) => {
                if t.best.relax_depth > 0 {
                    fors_sign::ForsLayout::Relax(t.best)
                } else {
                    fors_sign::ForsLayout::Fused(t.best)
                }
            }
            (_, true, _) => fors_sign::ForsLayout::Mmtp,
            _ => fors_sign::ForsLayout::Baseline,
        }
    }

    /// Per-kernel code-generation config implied by the optimization set.
    pub fn kernel_config(&self, kind: KernelKind) -> KernelConfig {
        let path = self.selection.path(kind);
        let placement = if self.config.hybrid_memory {
            match (kind, self.params.n) {
                // §III-D: TREE_Sign's read-only data stays in global
                // memory with vectorized loads for 192f.
                (KernelKind::TreeSign, 24) => RoDataPlacement::GlobalVectorized,
                _ => RoDataPlacement::Constant,
            }
        } else {
            RoDataPlacement::Global
        };
        KernelConfig {
            path,
            placement,
            padding: self.config.free_bank,
            launch_bounds: self.config.launch_bounds,
            // The shift rewrite ships with MMTP's kernel rewrite.
            index_shift_rewrite: self.config.mmtp,
        }
    }

    /// Analytic descriptors for the three kernels over `messages` messages.
    pub fn kernel_descs(&self, messages: u32) -> [KernelDesc; 3] {
        let layout = self.fors_layout();
        [
            fors_sign::describe(
                &self.device,
                &self.params,
                messages,
                &layout,
                &self.kernel_config(KernelKind::ForsSign),
            ),
            tree_sign::describe(
                &self.device,
                &self.params,
                messages,
                &self.kernel_config(KernelKind::TreeSign),
            ),
            wots_sign::describe(
                &self.device,
                &self.params,
                messages,
                &self.kernel_config(KernelKind::WotsSign),
            ),
        ]
    }

    /// Simulated timing reports for the three kernels.
    pub fn kernel_reports(&self, messages: u32) -> [KernelReport; 3] {
        self.kernel_descs(messages)
            .map(|d| simulate_kernel(&self.device, &d))
    }

    /// Profiling-driven branch selection: simulate each kernel under both
    /// paths, keep the winner (§III-C2's "more intuitive approach").
    fn profile_branch_selection(&self) -> BranchSelection {
        let pick = |kind: KernelKind| {
            let mut best = (f64::INFINITY, Sha2Path::Native);
            for path in [Sha2Path::Native, Sha2Path::Ptx] {
                let mut cfg = self.kernel_config_with_path(kind, path);
                cfg.padding = self.config.free_bank;
                let desc = match kind {
                    KernelKind::ForsSign => fors_sign::describe(
                        &self.device,
                        &self.params,
                        1024,
                        &self.fors_layout(),
                        &cfg,
                    ),
                    KernelKind::TreeSign => {
                        tree_sign::describe(&self.device, &self.params, 1024, &cfg)
                    }
                    KernelKind::WotsSign => {
                        wots_sign::describe(&self.device, &self.params, 1024, &cfg)
                    }
                };
                let t = simulate_kernel(&self.device, &desc).time_us;
                if t < best.0 {
                    best = (t, path);
                }
            }
            best.1
        };
        BranchSelection {
            fors: pick(KernelKind::ForsSign),
            tree: pick(KernelKind::TreeSign),
            wots: pick(KernelKind::WotsSign),
        }
    }

    fn kernel_config_with_path(&self, kind: KernelKind, path: Sha2Path) -> KernelConfig {
        let mut cfg = self.kernel_config(kind);
        cfg.path = path;
        cfg
    }

    /// Functional signing of one message: a planned batch of one
    /// ([`HeroSigner::sign_batch`]). Bit-identical to
    /// [`SigningKey::sign`].
    ///
    /// # Errors
    ///
    /// [`HeroError::KeyMismatch`] if `sk` was generated for a different
    /// parameter set than this engine.
    pub fn sign(&self, sk: &SigningKey, msg: &[u8]) -> Result<Signature, HeroError> {
        Ok(self
            .sign_batch(sk, &[msg])?
            .pop()
            .expect("batch of one yields one signature"))
    }

    /// Functional batch signing through the cross-message planner
    /// ([`crate::plan`]): the whole batch becomes one stage graph whose
    /// ready work-items — FORS tree groups, subtree treehashes, WOTS+
    /// chain groups, possibly spanning messages — co-schedule on the
    /// worker pool, the CPU analogue of one device-filling GPU batch.
    /// The seeded hash state is computed once per call, not per message.
    ///
    /// Output is byte-identical to signing each message sequentially.
    ///
    /// # Errors
    ///
    /// [`HeroError::KeyMismatch`] if `sk` was generated for a different
    /// parameter set than this engine.
    pub fn sign_batch(&self, sk: &SigningKey, msgs: &[&[u8]]) -> Result<Vec<Signature>, HeroError> {
        check_key(&self.params, sk.params())?;
        let ctx = HashCtx::with_alg(self.params, sk.pk_seed(), sk.alg());
        Ok(crate::plan::sign_batch_cached(
            &ctx,
            sk,
            msgs,
            &self.executor,
            &self.cache,
        ))
    }

    /// The engine's per-key hypertree memoization cache, shared across
    /// clones. Exposed so services and servers can inspect or pool it.
    pub fn cache(&self) -> &Arc<HypertreeCache> {
        &self.cache
    }

    /// Snapshot of the hypertree cache counters (hits, misses,
    /// evictions, resident bytes/keys/subtrees).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Pre-fills the hypertree cache for `sk`: plans the memoizable
    /// upper-layer subtrees as a stage graph and runs it on the shared
    /// executor, so the first real `sign_batch` for the key starts warm.
    /// Idempotent — already-resident subtrees are skipped. Returns how
    /// many subtrees were freshly built.
    ///
    /// # Errors
    ///
    /// [`HeroError::KeyMismatch`] if `sk` was generated for a different
    /// parameter set than this engine.
    pub fn warm_key(&self, sk: &SigningKey) -> Result<usize, HeroError> {
        check_key(&self.params, sk.params())?;
        let ctx = HashCtx::with_alg(self.params, sk.pk_seed(), sk.alg());
        Ok(crate::plan::warm_cache(
            &ctx,
            sk,
            &self.executor,
            &self.cache,
        ))
    }

    /// Planned batch verification on the worker pool (extension: the
    /// paper accelerates generation only): the batch becomes a
    /// cross-signature stage graph ([`crate::plan::verify_batch`]) whose
    /// lane-batched nodes interleave with any in-flight signing work on
    /// the same executor. Returns one typed
    /// [`crate::VerifyOutcome`] per message; never short-circuits, like
    /// a GPU batch, and verdicts are bit-for-bit the scalar verifier's.
    ///
    /// # Errors
    ///
    /// [`HeroError::BatchMismatch`] when `msgs` and `sigs` differ in
    /// length (nothing is silently paired by the shorter slice).
    pub fn verify_batch(
        &self,
        vk: &hero_sphincs::VerifyingKey,
        msgs: &[&[u8]],
        sigs: &[Signature],
    ) -> Result<Vec<crate::VerifyOutcome>, HeroError> {
        crate::kernels::verify::run_batch_planned(vk, msgs, sigs, &self.executor)
    }

    /// Simulated batch-verification throughput (KOPS) for `messages`
    /// signatures on this device.
    pub fn simulate_verify_kops(&self, messages: u32) -> f64 {
        let cfg = self.kernel_config(KernelKind::WotsSign);
        let desc = crate::kernels::verify::describe(&self.device, &self.params, messages, &cfg);
        let report = simulate_kernel(&self.device, &desc);
        messages as f64 / report.time_us * 1.0e3
    }

    /// Simulates end-to-end pipeline execution of the workload described
    /// by `opts` (Fig. 12 / Fig. 13): `opts.messages` messages split into
    /// `opts.batch_size`-message batches over `opts.streams` concurrent
    /// streams, launched per the engine configuration or the
    /// [`PipelineOptions::launch`] override, with PCIe transfer modeling
    /// when [`PipelineOptions::pcie_msg_bytes`] is set (§IV-E1 — where
    /// the paper's two-sided batch guidance emerges: compute hides
    /// transfers at moderate batches, but pipeline fill/drain grows with
    /// batch size, so latency-sensitive deployments prefer batches "near
    /// 64").
    ///
    /// # Errors
    ///
    /// [`HeroError::InvalidOptions`] via [`PipelineOptions::validate`].
    pub fn simulate(&self, opts: PipelineOptions) -> Result<PipelineReport, HeroError> {
        Ok(self.simulate_traced(opts)?.0)
    }

    /// [`HeroSigner::simulate`], also returning the populated
    /// [`Timeline`] — e.g. for [`hero_gpu_sim::trace::chrome_trace`]
    /// schedule visualization.
    ///
    /// # Errors
    ///
    /// As [`HeroSigner::simulate`].
    pub fn simulate_traced(
        &self,
        opts: PipelineOptions,
    ) -> Result<(PipelineReport, Timeline), HeroError> {
        opts.validate()?;
        let messages = opts.messages;
        let batch_size = opts.batch_size;
        let streams = opts.streams;
        let batches = messages.div_ceil(batch_size);

        let reports = self.kernel_reports(batch_size);
        let [fors_us, tree_us, wots_us] =
            [reports[0].time_us, reports[1].time_us, reports[2].time_us];
        let descs = self.kernel_descs(batch_size);
        let sms = |d: &KernelDesc| d.grid_blocks.min(self.device.sm_count);

        let use_graph = match opts.launch {
            LaunchPolicy::Auto => self.config.graph,
            LaunchPolicy::Graph => true,
            LaunchPolicy::Streams => false,
        };

        let mut tl = Timeline::new(self.device.clone());

        if use_graph {
            let mut g = GraphBuilder::new();
            let f = g.kernel("FORS_Sign", fors_us, sms(&descs[0]));
            let t = g.kernel("TREE_Sign", tree_us, sms(&descs[1]));
            let w = g.kernel("WOTS+_Sign", wots_us, sms(&descs[2]));
            g.depends_on(w, f);
            g.depends_on(w, t);
            let exe = g.instantiate(&self.device);
            for b in 0..batches {
                exe.launch(&mut tl, b as usize % streams);
            }
        } else {
            for b in 0..batches {
                let s = tl.stream(b as usize % streams);
                let f = tl.launch(
                    "FORS_Sign",
                    s,
                    fors_us,
                    sms(&descs[0]),
                    LaunchMode::Stream,
                    &[],
                );
                let t = tl.launch(
                    "TREE_Sign",
                    s,
                    tree_us,
                    sms(&descs[1]),
                    LaunchMode::Stream,
                    &[],
                );
                tl.launch(
                    "WOTS+_Sign",
                    s,
                    wots_us,
                    sms(&descs[2]),
                    LaunchMode::Stream,
                    &[f, t],
                );
            }
        }

        let makespan = tl.makespan_us();
        let mut report = PipelineReport {
            makespan_us: makespan,
            kops: messages as f64 / makespan * 1.0e3,
            launch_overhead_us: tl.launch_overhead_total_us(),
            launch_count: tl.launch_count(),
            idle_us: tl.idle_us() + tl.dispatch_idle_total_us(),
            kernel_batch_us: [fors_us, tree_us, wots_us],
            transfers: None,
        };

        if let Some(msg_bytes) = opts.pcie_msg_bytes {
            let per_batch_compute_us = report.makespan_us / batches as f64;
            let h2d = batch_size as u64 * (msg_bytes as u64 + 2 * self.params.n as u64);
            let d2h = batch_size as u64 * self.params.sig_bytes() as u64;
            let transfers = hero_gpu_sim::pcie::pipeline_with_transfers(
                &self.device,
                batches,
                per_batch_compute_us,
                h2d,
                d2h,
            );
            report.makespan_us = transfers.makespan_us;
            report.kops = messages as f64 / transfers.makespan_us * 1.0e3;
            report.transfers = Some(transfers);
        }

        Ok((report, tl))
    }
}

impl Signer for HeroSigner {
    fn params(&self) -> &Params {
        &self.params
    }

    fn backend(&self) -> &'static str {
        "hero-gpu"
    }

    fn sign(&self, sk: &SigningKey, msg: &[u8]) -> Result<Signature, HeroError> {
        HeroSigner::sign(self, sk, msg)
    }

    fn sign_batch(&self, sk: &SigningKey, msgs: &[&[u8]]) -> Result<Vec<Signature>, HeroError> {
        HeroSigner::sign_batch(self, sk, msgs)
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(HeroSigner::cache_stats(self))
    }

    fn warm_key(&self, sk: &SigningKey) -> Result<usize, HeroError> {
        HeroSigner::warm_key(self, sk)
    }

    fn verify_batch(
        &self,
        vk: &hero_sphincs::VerifyingKey,
        msgs: &[&[u8]],
        sigs: &[Signature],
    ) -> Result<Vec<crate::VerifyOutcome>, HeroError> {
        HeroSigner::verify_batch(self, vk, msgs, sigs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_gpu_sim::device::rtx_4090;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_params() -> Params {
        let mut p = Params::sphincs_128f();
        p.h = 6;
        p.d = 3;
        p.log_t = 4;
        p.k = 8;
        p
    }

    fn build(device: DeviceProps, params: Params, cfg: OptConfig) -> HeroSigner {
        HeroSigner::builder(device, params)
            .config(cfg)
            .build()
            .unwrap()
    }

    fn pipe(messages: u32, batch: u32, streams: usize) -> PipelineOptions {
        PipelineOptions::new(messages)
            .batch_size(batch)
            .streams(streams)
    }

    #[test]
    fn hero_sign_matches_reference_exactly() {
        let mut rng = StdRng::seed_from_u64(7);
        let params = tiny_params();
        let (sk, vk) = hero_sphincs::keygen(params, &mut rng).unwrap();
        let engine = HeroSigner::hero(rtx_4090(), params).unwrap();
        let msg = b"hero-sign functional equivalence";
        let hero_sig = engine.sign(&sk, msg).unwrap();
        let reference = sk.sign(msg);
        assert_eq!(hero_sig, reference);
        vk.verify(msg, &hero_sig).unwrap();
    }

    #[test]
    fn batch_signing_verifies() {
        let mut rng = StdRng::seed_from_u64(8);
        let params = tiny_params();
        let (sk, vk) = hero_sphincs::keygen(params, &mut rng).unwrap();
        let engine = HeroSigner::hero(rtx_4090(), params).unwrap();
        let msgs: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 20]).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let sigs = engine.sign_batch(&sk, &refs).unwrap();
        for (m, s) in refs.iter().zip(&sigs) {
            vk.verify(m, s).unwrap();
        }
    }

    #[test]
    fn sign_rejects_mismatched_key() {
        let mut rng = StdRng::seed_from_u64(9);
        let key_params = tiny_params();
        let (sk, _) = hero_sphincs::keygen(key_params, &mut rng).unwrap();
        let engine = HeroSigner::hero(rtx_4090(), Params::sphincs_128f()).unwrap();
        let err = engine.sign(&sk, b"mismatch").unwrap_err();
        assert!(matches!(err, HeroError::KeyMismatch(_)), "{err}");
    }

    #[test]
    fn adaptive_selection_reproduces_table_v() {
        // Table V on RTX 4090: FORS → PTX everywhere; TREE/WOTS native at
        // 128f/192f, PTX at 256f.
        let d = rtx_4090();
        for p in Params::fast_sets() {
            let engine = HeroSigner::hero(d.clone(), p).unwrap();
            let sel = engine.selection();
            assert_eq!(sel.fors, Sha2Path::Ptx, "{} FORS", p.name());
            let expect = if p.n == 32 {
                Sha2Path::Ptx
            } else {
                Sha2Path::Native
            };
            assert_eq!(sel.tree, expect, "{} TREE", p.name());
            assert_eq!(sel.wots, expect, "{} WOTS", p.name());
        }
    }

    #[test]
    fn hero_outperforms_baseline_per_kernel() {
        let d = rtx_4090();
        for p in Params::fast_sets() {
            let base = HeroSigner::baseline(d.clone(), p)
                .unwrap()
                .kernel_reports(1024);
            let hero = HeroSigner::hero(d.clone(), p).unwrap().kernel_reports(1024);
            for (b, h) in base.iter().zip(hero.iter()) {
                assert!(
                    h.time_us < b.time_us,
                    "{} {}: {} !< {}",
                    p.name(),
                    b.name,
                    h.time_us,
                    b.time_us
                );
            }
        }
    }

    #[test]
    fn ablation_ladder_is_monotone_enough() {
        // Each Fig. 11 step may be small but the cumulative trend must be
        // strictly downward in FORS time.
        let d = rtx_4090();
        let p = Params::sphincs_128f();
        let mut last = f64::INFINITY;
        for (label, cfg) in OptConfig::ablation_ladder() {
            let engine = build(d.clone(), p, cfg);
            let fors = &engine.kernel_reports(1024)[0];
            assert!(
                fors.time_us <= last * 1.005,
                "{label}: {} vs previous {last}",
                fors.time_us
            );
            last = fors.time_us;
        }
    }

    #[test]
    fn graph_pipeline_slashes_launch_overhead() {
        let d = rtx_4090();
        let p = Params::sphincs_128f();
        let hero = HeroSigner::hero(d.clone(), p).unwrap();
        let hero_graph = hero.simulate(pipe(1024, 64, 4)).unwrap();
        // The same engine replayed with per-kernel stream launches.
        let hero_stream = hero
            .simulate(pipe(1024, 64, 4).launch(LaunchPolicy::Streams))
            .unwrap();
        // Two orders of magnitude vs per-message baseline launches.
        let baseline = HeroSigner::baseline(d.clone(), p)
            .unwrap()
            .simulate(pipe(1024, 1, 4))
            .unwrap();
        assert!(
            baseline.launch_overhead_us / hero_graph.launch_overhead_us > 50.0,
            "{} vs {}",
            baseline.launch_overhead_us,
            hero_graph.launch_overhead_us
        );
        assert!(hero_graph.launch_overhead_us < hero_stream.launch_overhead_us);
        assert!(hero_graph.kops >= hero_stream.kops * 0.99);
    }

    #[test]
    fn pipeline_kops_in_paper_decade() {
        // Fig. 12: 128f full pipeline ≈ 93 (baseline) → 119 (HERO+graph).
        // The baseline launches per-message kernels over many streams
        // (CUSPX-style streams ≈ tasks/cores); HERO signs ≥512-message
        // batches (§IV-E1's throughput guidance).
        let d = rtx_4090();
        let p = Params::sphincs_128f();
        let base = HeroSigner::baseline(d.clone(), p)
            .unwrap()
            .simulate(pipe(1024, 1, 128))
            .unwrap();
        let hero = HeroSigner::hero(d.clone(), p)
            .unwrap()
            .simulate(pipe(1024, 512, 4))
            .unwrap();
        assert!(
            base.kops > 40.0 && base.kops < 200.0,
            "baseline {}",
            base.kops
        );
        assert!(hero.kops > base.kops, "{} vs {}", hero.kops, base.kops);
        let speedup = hero.kops / base.kops;
        assert!(speedup > 1.1 && speedup < 2.2, "speedup {speedup}");
    }

    #[test]
    fn s_variants_supported_via_deep_relax() {
        // The -s sets run end to end on the engine thanks to the
        // generalized Relax Buffer (extension beyond the paper's -f scope).
        let d = rtx_4090();
        for p in [
            Params::sphincs_128s(),
            Params::sphincs_192s(),
            Params::sphincs_256s(),
        ] {
            let engine = HeroSigner::hero(d.clone(), p).unwrap();
            assert!(matches!(
                engine.fors_layout(),
                fors_sign::ForsLayout::Relax(_)
            ));
            let reports = engine.kernel_reports(256);
            for r in &reports {
                assert!(
                    r.time_us.is_finite() && r.time_us > 0.0,
                    "{} {}",
                    p.name(),
                    r.name
                );
            }
            // -s trades throughput for signature size: slower than -f.
            let f_equiv = match p.n {
                16 => Params::sphincs_128f(),
                24 => Params::sphincs_192f(),
                _ => Params::sphincs_256f(),
            };
            let s_pipe = engine.simulate(pipe(512, 256, 4)).unwrap();
            let f_pipe = HeroSigner::hero(d.clone(), f_equiv)
                .unwrap()
                .simulate(pipe(512, 256, 4))
                .unwrap();
            assert!(s_pipe.kops < f_pipe.kops, "{}: -s must be slower", p.name());
        }
    }

    #[test]
    fn engine_signs_with_sha512_keys() {
        use hero_sphincs::hash::HashAlg;
        let mut rng = StdRng::seed_from_u64(64);
        let params = tiny_params();
        let (sk, vk) = hero_sphincs::keygen_with_alg(params, HashAlg::Sha512, &mut rng).unwrap();
        let engine = HeroSigner::hero(rtx_4090(), params).unwrap();
        let sig = engine.sign(&sk, b"sha512 through the kernels").unwrap();
        assert_eq!(sig, sk.sign(b"sha512 through the kernels"));
        vk.verify(b"sha512 through the kernels", &sig).unwrap();
    }

    #[test]
    fn fors_layout_tracks_config() {
        let d = rtx_4090();
        let p = Params::sphincs_128f();
        assert!(matches!(
            HeroSigner::baseline(d.clone(), p).unwrap().fors_layout(),
            fors_sign::ForsLayout::Baseline
        ));
        let mut cfg = OptConfig::baseline();
        cfg.mmtp = true;
        assert!(matches!(
            build(d.clone(), p, cfg).fors_layout(),
            fors_sign::ForsLayout::Mmtp
        ));
        assert!(matches!(
            HeroSigner::hero(d.clone(), p).unwrap().fors_layout(),
            fors_sign::ForsLayout::Fused(_)
        ));
        assert!(matches!(
            HeroSigner::hero(d, Params::sphincs_256f())
                .unwrap()
                .fors_layout(),
            fors_sign::ForsLayout::Relax(_)
        ));
    }

    #[test]
    fn pipeline_options_are_validated() {
        let engine = HeroSigner::hero(rtx_4090(), Params::sphincs_128f()).unwrap();
        for bad in [
            PipelineOptions::new(0),
            PipelineOptions::new(64).batch_size(0),
            PipelineOptions::new(64).streams(0),
            PipelineOptions::new(64).batch_size(65),
        ] {
            let err = engine.simulate(bad).unwrap_err();
            assert!(
                matches!(err, HeroError::InvalidOptions(_)),
                "{bad:?}: {err}"
            );
        }
    }

    #[test]
    fn pcie_option_populates_transfers() {
        let engine = HeroSigner::hero(rtx_4090(), Params::sphincs_128f()).unwrap();
        let pure = engine.simulate(pipe(512, 128, 4)).unwrap();
        assert!(pure.transfers.is_none());
        let with_pcie = engine.simulate(pipe(512, 128, 4).pcie_overlap(64)).unwrap();
        let transfers = with_pcie.transfers.expect("transfer breakdown");
        assert!(transfers.makespan_us >= pure.makespan_us);
        assert!(with_pcie.kops <= pure.kops);
    }
}
