//! Adaptive PTX/native branch selection (§III-C of the paper).
//!
//! Each of the three kernels can run its SHA-2 core either as native
//! compiler-scheduled code or as the hand-tuned PTX path (`prmt`
//! byte-permutes, decoyed `mad`). The trade-off the paper measures:
//!
//! * PTX lowers the register footprint (occupancy ↑) and removes shift
//!   chains, **but** its `asm volatile` blocks are opaque to the
//!   compiler, forfeiting cross-iteration optimizations. Chain-heavy
//!   kernels (`TREE_Sign`, `WOTS+_Sign`) iterate SHA-2 over nearly
//!   constant message blocks, where the native compiler hoists parts of
//!   the message schedule — a benefit the PTX path loses.
//! * Selection is therefore *empirical*: profile both, keep the winner
//!   per kernel per parameter set (Table V), then monomorphize a single
//!   code path at compile time (Fig. 6).

use hero_gpu_sim::isa::{InstrClass, InstrMix, Sha2Path};
use hero_sphincs::params::Params;

/// The three component kernels of HERO-Sign.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// FORS signature kernel.
    ForsSign,
    /// Hypertree / MSS kernel.
    TreeSign,
    /// WOTS+ signature kernel.
    WotsSign,
}

impl KernelKind {
    /// All kernels in the paper's column order.
    pub const ALL: [KernelKind; 3] = [
        KernelKind::ForsSign,
        KernelKind::TreeSign,
        KernelKind::WotsSign,
    ];

    /// Display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::ForsSign => "FORS_Sign",
            KernelKind::TreeSign => "TREE_Sign",
            KernelKind::WotsSign => "WOTS+_Sign",
        }
    }
}

/// Security level index for per-parameter tables (0: 128f, 1: 192f, 2: 256f).
fn level(params: &Params) -> usize {
    match params.n {
        16 => 0,
        24 => 1,
        _ => 2,
    }
}

/// Registers per thread for (kernel, parameter set, path).
///
/// Native values follow Table III (64/128/72 for 128f) and the paper's
/// §III-C2 figures for 256f (`TREE_Sign`: 168 native → 95 PTX); values
/// for the remaining cells interpolate with hash-width growth, which is
/// what drives register demand (wider chaining state per thread).
pub fn regs_per_thread(kernel: KernelKind, params: &Params, path: Sha2Path) -> u32 {
    let l = level(params);
    match (kernel, path) {
        (KernelKind::ForsSign, Sha2Path::Native) => [64, 72, 80][l],
        (KernelKind::ForsSign, Sha2Path::Ptx) => [56, 62, 68][l],
        (KernelKind::TreeSign, Sha2Path::Native) => [128, 144, 168][l],
        (KernelKind::TreeSign, Sha2Path::Ptx) => [96, 96, 95][l],
        (KernelKind::WotsSign, Sha2Path::Native) => [72, 84, 100][l],
        (KernelKind::WotsSign, Sha2Path::Ptx) => [64, 72, 80][l],
    }
}

/// Per-compression instruction mix for `kernel` on `path` under `params`,
/// including the kernel- and level-dependent compiler effects the paper
/// describes (§III-C):
///
/// * Chain-heavy kernels (`TREE_Sign`, `WOTS+_Sign`) get a
///   *schedule-reuse discount* on the native path: the compiler hoists
///   the near-constant part of the SHA-2 message schedule across chain
///   iterations, which opaque `asm` blocks forfeit. At `n = 32` (256f)
///   that same aggressive hoisting is what balloons registers to 168 and
///   it stops paying off — "PTX can help alleviate aggressive compiler
///   optimizations" (§III-C2) — so the discount collapses.
/// * The PTX path pays a small operand-marshalling overhead at the asm
///   boundary for the 32-bit `prmt` form; the 64-bit form used at wider
///   state (Fig. 5) amortizes it away.
pub fn compression_mix(kernel: KernelKind, params: &Params, path: Sha2Path) -> InstrMix {
    let base = path.compression_mix();
    let wide = level(params) == 2; // 256f
    match (kernel, path) {
        (KernelKind::ForsSign, _) => base,
        (KernelKind::TreeSign | KernelKind::WotsSign, Sha2Path::Native) => {
            let discount_pct = if wide { 98 } else { 88 };
            let mut m = InstrMix::new();
            m.add_count(InstrClass::Shl, base.count(InstrClass::Shl));
            m.add_count(
                InstrClass::Alu,
                base.count(InstrClass::Alu) * discount_pct / 100,
            );
            m.add_count(InstrClass::Iadd3, base.count(InstrClass::Iadd3));
            m
        }
        (KernelKind::TreeSign | KernelKind::WotsSign, Sha2Path::Ptx) => {
            if wide {
                base
            } else {
                base.with(InstrClass::Alu, 24)
            }
        }
    }
}

/// Issue cycles of one compression for (kernel, params, path).
pub fn compression_cycles(kernel: KernelKind, params: &Params, path: Sha2Path) -> f64 {
    compression_mix(kernel, params, path).issue_cycles()
}

/// A complete branch-selection decision: one path per kernel (Table V's
/// rows), resolved at "compile time" by monomorphizing the chosen path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchSelection {
    /// Path for `FORS_Sign`.
    pub fors: Sha2Path,
    /// Path for `TREE_Sign`.
    pub tree: Sha2Path,
    /// Path for `WOTS+_Sign`.
    pub wots: Sha2Path,
}

impl BranchSelection {
    /// All-native selection (the baseline).
    pub const fn all_native() -> Self {
        Self {
            fors: Sha2Path::Native,
            tree: Sha2Path::Native,
            wots: Sha2Path::Native,
        }
    }

    /// Path for a kernel.
    pub fn path(&self, kernel: KernelKind) -> Sha2Path {
        match kernel {
            KernelKind::ForsSign => self.fors,
            KernelKind::TreeSign => self.tree,
            KernelKind::WotsSign => self.wots,
        }
    }

    /// Whether all kernels resolved to the same path (the case where the
    /// paper emits a branch-free specialized copy, §III-C3).
    pub fn is_uniform(&self) -> bool {
        self.fors == self.tree && self.tree == self.wots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_tables_match_paper_anchors() {
        // Table III: 128f native registers 64 / 128 / 72.
        let p = Params::sphincs_128f();
        assert_eq!(
            regs_per_thread(KernelKind::ForsSign, &p, Sha2Path::Native),
            64
        );
        assert_eq!(
            regs_per_thread(KernelKind::TreeSign, &p, Sha2Path::Native),
            128
        );
        assert_eq!(
            regs_per_thread(KernelKind::WotsSign, &p, Sha2Path::Native),
            72
        );
        // §III-C2: 256f TREE_Sign 168 → 95.
        let p256 = Params::sphincs_256f();
        assert_eq!(
            regs_per_thread(KernelKind::TreeSign, &p256, Sha2Path::Native),
            168
        );
        assert_eq!(
            regs_per_thread(KernelKind::TreeSign, &p256, Sha2Path::Ptx),
            95
        );
    }

    #[test]
    fn ptx_always_reduces_registers() {
        for p in Params::fast_sets() {
            for k in KernelKind::ALL {
                assert!(
                    regs_per_thread(k, &p, Sha2Path::Ptx)
                        < regs_per_thread(k, &p, Sha2Path::Native),
                    "{} {}",
                    k.name(),
                    p.name()
                );
            }
        }
    }

    #[test]
    fn instruction_mix_preferences_follow_table_v() {
        // Pure instruction-cost view (occupancy effects stack on top):
        // PTX wins for FORS everywhere; native wins for TREE/WOTS at
        // 128f/192f (schedule reuse); PTX wins for chain kernels at 256f
        // (the hoisting collapse) — exactly Table V's pattern.
        for p in Params::fast_sets() {
            assert!(
                compression_cycles(KernelKind::ForsSign, &p, Sha2Path::Ptx)
                    < compression_cycles(KernelKind::ForsSign, &p, Sha2Path::Native),
                "{}",
                p.name()
            );
        }
        for k in [KernelKind::TreeSign, KernelKind::WotsSign] {
            for p in [Params::sphincs_128f(), Params::sphincs_192f()] {
                assert!(
                    compression_cycles(k, &p, Sha2Path::Native)
                        < compression_cycles(k, &p, Sha2Path::Ptx),
                    "{} {}",
                    k.name(),
                    p.name()
                );
            }
            let p256 = Params::sphincs_256f();
            assert!(
                compression_cycles(k, &p256, Sha2Path::Ptx)
                    < compression_cycles(k, &p256, Sha2Path::Native),
                "{}",
                k.name()
            );
        }
    }

    #[test]
    fn uniform_detection() {
        assert!(BranchSelection::all_native().is_uniform());
        let mixed = BranchSelection {
            fors: Sha2Path::Ptx,
            tree: Sha2Path::Native,
            wots: Sha2Path::Native,
        };
        assert!(!mixed.is_uniform());
        assert_eq!(mixed.path(KernelKind::ForsSign), Sha2Path::Ptx);
    }
}
