//! Fallible construction of [`HeroSigner`] engines.
//!
//! [`HeroSignerBuilder`] replaces the old panicking
//! `HeroSigner::new(device, params, config)` constructor: every
//! precondition — parameter validation, worker counts, tuning outcomes —
//! surfaces as a [`HeroError`] instead of a panic, and the expensive
//! Auto Tree Tuning search is answered from the process-wide cache
//! ([`crate::tuning::tune_auto_cached`]) so building the same engine
//! twice runs the search once.

use crate::cache::{CacheConfig, HypertreeCache};
use crate::engine::{HeroSigner, OptConfig};
use crate::error::HeroError;
use crate::tuning::{self, TuningOptions, TuningResult};

use hero_gpu_sim::device::DeviceProps;
use hero_sphincs::hash::HashAlg;
use hero_sphincs::params::Params;
use hero_task_graph::Executor;

use std::path::PathBuf;
use std::sync::Arc;

/// Step-by-step configuration for a [`HeroSigner`].
///
/// Obtained from [`HeroSigner::builder`]; defaults to the fully
/// optimized HERO configuration with the paper's tuning options and the
/// machine's available parallelism.
///
/// ```
/// use hero_gpu_sim::device::rtx_4090;
/// use hero_sign::{HeroSigner, OptConfig};
/// use hero_sphincs::Params;
///
/// # fn main() -> Result<(), hero_sign::HeroError> {
/// let engine = HeroSigner::builder(rtx_4090(), Params::sphincs_128f())
///     .config(OptConfig::hero())
///     .workers(8)
///     .build()?;
/// assert_eq!(engine.params().name(), "SPHINCS+-128f");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct HeroSignerBuilder {
    device: DeviceProps,
    params: Params,
    config: OptConfig,
    tuning: TuningOptions,
    workers: Option<usize>,
    runtime: Option<Arc<Executor>>,
    strict_tuning: bool,
    use_cache: bool,
    cache_dir: Option<PathBuf>,
    cache_config: CacheConfig,
}

impl HeroSignerBuilder {
    pub(crate) fn new(device: DeviceProps, params: Params) -> Self {
        Self {
            device,
            params,
            config: OptConfig::hero(),
            tuning: TuningOptions {
                hash: params.preferred_alg(),
                ..TuningOptions::default()
            },
            workers: None,
            runtime: None,
            strict_tuning: false,
            use_cache: true,
            cache_dir: None,
            cache_config: CacheConfig::default(),
        }
    }

    /// Selects the optimization set (defaults to [`OptConfig::hero`]).
    pub fn config(mut self, config: OptConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the Auto Tree Tuning search knobs.
    pub fn tuning_options(mut self, tuning: TuningOptions) -> Self {
        self.tuning = tuning;
        self
    }

    /// Records the hash primitive in the tuning-cache fingerprint
    /// (shorthand for setting [`TuningOptions::hash`]), so SHA and
    /// SHAKE engines never share a cached or persisted tuning entry.
    /// Defaults to the shape's [`Params::preferred_alg`].
    ///
    /// This keys the *cache*, not the kernels: the primitive actually
    /// hashed with is carried by the signing key (`SigningKey::alg`),
    /// and [`crate::Signer::keygen`] derives it from the engine's
    /// parameter shape.
    pub fn hash_alg(mut self, alg: HashAlg) -> Self {
        self.tuning.hash = alg;
        self
    }

    /// Sets the functional-signing worker-thread count (defaults to the
    /// machine's available parallelism, or `HERO_WORKERS` when set).
    /// Zero is rejected by [`HeroSignerBuilder::build`]. Ignored when an
    /// explicit [`HeroSignerBuilder::runtime`] is supplied.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Attaches an existing persistent runtime instead of spawning a
    /// fresh one: engines sharing an [`Executor`] co-schedule their
    /// submissions on the same workers, the way multiple CUDA streams
    /// share one device.
    pub fn runtime(mut self, runtime: Arc<Executor>) -> Self {
        self.runtime = Some(runtime);
        self
    }

    /// Enables the on-disk tuning cache under `dir`: Auto Tree Tuning
    /// results are persisted as versioned JSON keyed by a
    /// device+params+options digest, so process restarts skip the sweep
    /// entirely. Corrupt, stale, or version-mismatched files fall back
    /// to the in-memory search (and are rewritten).
    pub fn tuning_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Configures the per-key hypertree memoization cache
    /// ([`crate::cache::HypertreeCache`]) the engine signs through:
    /// capacity bounds, the per-layer memoization policy, and the warm
    /// budget. Defaults to [`CacheConfig::default`]; pass
    /// [`CacheConfig::disabled`] to sign fully cold every time.
    pub fn cache_config(mut self, cache_config: CacheConfig) -> Self {
        self.cache_config = cache_config;
        self
    }

    /// Makes a failed tuning search fatal.
    ///
    /// By default a failed search degrades gracefully: the engine falls
    /// back to the unfused MMTP (or baseline) FORS layout, matching the
    /// paper's treatment of shapes plain fusion cannot serve. Strict
    /// mode instead surfaces [`HeroError::Tuning`], for callers that
    /// must know fusion is active (e.g. the ablation harness).
    pub fn strict_tuning(mut self) -> Self {
        self.strict_tuning = true;
        self
    }

    /// Bypasses the process-wide tuning cache (the search re-runs even
    /// for a cached key). Intended for tuning-ablation rigs that mutate
    /// search internals between runs.
    pub fn no_tuning_cache(mut self) -> Self {
        self.use_cache = false;
        self
    }

    /// Validates the configuration, resolves the tuning search (through
    /// the process-wide cache) and the adaptive PTX selection, and
    /// constructs the engine.
    ///
    /// # Errors
    ///
    /// * [`HeroError::InvalidParams`] — `params` failed validation.
    /// * [`HeroError::InvalidOptions`] — `workers(0)`, or an enabled
    ///   [`HeroSignerBuilder::cache_config`] with a zero capacity bound.
    /// * [`HeroError::Tuning`] — the search failed under
    ///   [`HeroSignerBuilder::strict_tuning`].
    pub fn build(self) -> Result<HeroSigner, HeroError> {
        self.params.validate().map_err(HeroError::InvalidParams)?;
        self.cache_config.validate()?;
        if self.workers == Some(0) {
            return Err(HeroError::InvalidOptions(
                "workers must be >= 1".to_string(),
            ));
        }
        let executor =
            match self.runtime {
                Some(runtime) => runtime,
                None => {
                    let workers = self.workers.unwrap_or_else(crate::par::default_workers);
                    Arc::new(Executor::new(workers).map_err(|_| {
                        HeroError::InvalidOptions("workers must be >= 1".to_string())
                    })?)
                }
            };

        let tuning: Option<TuningResult> = if self.config.fusion {
            let searched = if self.use_cache {
                tuning::tune_auto_cached_at(
                    &self.device,
                    &self.params,
                    &self.tuning,
                    self.cache_dir.as_deref(),
                )
            } else {
                tuning::tune_auto(&self.device, &self.params, &self.tuning)
            };
            match searched {
                Ok(result) => Some(result),
                Err(e) if self.strict_tuning => return Err(HeroError::Tuning(e)),
                Err(_) => None,
            }
        } else {
            None
        };

        Ok(HeroSigner::construct(
            self.device,
            self.params,
            self.config,
            tuning,
            executor,
            Arc::new(HypertreeCache::new(self.cache_config)),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuning::TuneError;
    use hero_gpu_sim::device::rtx_4090;

    #[test]
    fn build_rejects_invalid_params() {
        let mut p = Params::sphincs_128f();
        p.log_t = 0;
        let err = HeroSigner::builder(rtx_4090(), p).build().unwrap_err();
        assert!(matches!(err, HeroError::InvalidParams(_)), "{err}");
    }

    #[test]
    fn build_rejects_zero_workers() {
        let err = HeroSigner::builder(rtx_4090(), Params::sphincs_128f())
            .workers(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, HeroError::InvalidOptions(_)), "{err}");
    }

    #[test]
    fn build_rejects_zero_capacity_cache() {
        let err = HeroSigner::builder(rtx_4090(), Params::sphincs_128f())
            .cache_config(CacheConfig {
                max_keys: 0,
                ..CacheConfig::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, HeroError::InvalidOptions(_)), "{err}");
    }

    #[test]
    fn strict_tuning_surfaces_search_failures() {
        // k = 1 with a tiny tree leaves nothing worth fusing: the search
        // legitimately returns NoCandidate, which strict mode raises.
        let mut p = Params::sphincs_128f();
        p.log_t = 1;
        p.k = 1;
        let strict = HeroSigner::builder(rtx_4090(), p).strict_tuning().build();
        assert_eq!(
            strict.unwrap_err(),
            HeroError::Tuning(TuneError::NoCandidate)
        );
        // Default mode degrades to an unfused layout instead.
        let lenient = HeroSigner::builder(rtx_4090(), p).build().unwrap();
        assert!(lenient.tuning().is_none());
    }

    #[test]
    fn engines_can_share_one_runtime() {
        let runtime = Arc::new(Executor::new(3).unwrap());
        let a = HeroSigner::builder(rtx_4090(), Params::sphincs_128f())
            .runtime(Arc::clone(&runtime))
            .build()
            .unwrap();
        let b = HeroSigner::builder(rtx_4090(), Params::sphincs_192f())
            .runtime(Arc::clone(&runtime))
            .build()
            .unwrap();
        assert!(Arc::ptr_eq(a.runtime(), b.runtime()));
        assert_eq!(a.workers(), 3);
        // An explicit runtime wins over a workers() hint.
        let c = HeroSigner::builder(rtx_4090(), Params::sphincs_128f())
            .workers(7)
            .runtime(Arc::clone(&runtime))
            .build()
            .unwrap();
        assert_eq!(c.workers(), 3);
        // Clones share the pool too (stream semantics, not device copies).
        let d = a.clone();
        assert!(Arc::ptr_eq(a.runtime(), d.runtime()));
    }

    #[test]
    fn builder_defaults_to_hero_config() {
        let engine = HeroSigner::builder(rtx_4090(), Params::sphincs_128f())
            .build()
            .unwrap();
        assert_eq!(*engine.config(), OptConfig::hero());
        assert!(engine.tuning().is_some());
    }
}
