//! The adaptive micro-batching sign service: many concurrent callers,
//! one shared accelerator.
//!
//! ## Why a service
//!
//! HERO-Sign's throughput rests on *batches*: the device (here, the
//! persistent [`Executor`](hero_task_graph::Executor) runtime inside
//! [`HeroSigner`]) only saturates when one
//! submission carries many messages. Real signing servers don't receive
//! batches — they receive single requests from many clients. The
//! [`SignService`] closes that gap the way high-throughput PQC signing
//! servers do: requests from all callers land in one bounded queue, a
//! micro-batcher coalesces whatever is pending into a planned
//! `sign_batch` (up to [`ServiceConfig::max_batch`], waiting at most
//! [`ServiceConfig::max_wait`] for stragglers), and each caller gets its
//! signature back through a [`SignTicket`]. This is the CPU analogue of
//! the paper's stream pipeline: the queue is the host-side staging
//! buffer, the coalesced batch is the device-filling launch, and
//! overlapping collection with signing is the PCIe/compute overlap.
//!
//! The batcher is *adaptive*: under a single slow caller it shrinks its
//! coalescing wait (latency mode — no point holding a lone request
//! hostage), and once concurrent traffic appears it stretches back to
//! `max_wait` so batches fill (throughput mode). The decision tracks an
//! EWMA of recent batch sizes.
//!
//! ## The verify lane
//!
//! Verification is a first-class workload on the same service: a verify
//! request carries `(message, signature)` and redeems a
//! [`VerifyTicket`] for a typed [`VerifyOutcome`]. The verify lane is a
//! second instance of the *same* bounded-queue machinery — its own
//! coalescing window and batch-size EWMA (verify batches are far
//! cheaper than sign batches, so their adaptive signal must not mix),
//! its own micro-batcher thread feeding the backend's planned
//! [`Signer::verify_batch`] — while sharing the queue-depth bound,
//! deadline expiry, ticket, and drain-on-shutdown machinery with sign
//! traffic. Both lanes submit onto the same engine executor, so
//! signature A's verification co-schedules with signature B's signing
//! exactly like mixed kernels on one device.
//!
//! ## Deploying as a signing server — quickstart
//!
//! ```
//! use hero_gpu_sim::device::rtx_4090;
//! use hero_sign::service::{ServiceConfig, SignService};
//! use hero_sign::{HeroSigner, Signer, VerifyOutcome};
//! use hero_sphincs::params::Params;
//! use rand::{rngs::StdRng, SeedableRng};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Reduced parameters keep the doc test fast.
//! let mut params = Params::sphincs_128f();
//! params.h = 6; params.d = 3; params.log_t = 4; params.k = 8;
//!
//! let engine = Arc::new(HeroSigner::builder(rtx_4090(), params).workers(4).build()?);
//! let (sk, vk) = engine.keygen(&mut StdRng::seed_from_u64(1))?;
//!
//! // One service per signing key; clients share it behind an Arc.
//! let service = Arc::new(SignService::start(
//!     engine.clone(),
//!     sk,
//!     ServiceConfig::tuned_for(&engine),
//! )?);
//!
//! // Each client: submit, keep the ticket, wait when the result is needed.
//! let tickets: Vec<_> = (0..8u8)
//!     .map(|i| service.submit(vec![i; 16]))
//!     .collect::<Result<_, _>>()?;
//! let mut sigs = Vec::new();
//! for (i, ticket) in tickets.into_iter().enumerate() {
//!     let sig = ticket.wait()?;
//!     vk.verify(&vec![i as u8; 16], &sig)?;
//!     sigs.push(sig);
//! }
//!
//! // The verify lane rides the same service: coalesced, planned, typed.
//! let probe = service.submit_verify(vec![0u8; 16], sigs[0].clone())?;
//! assert_eq!(probe.wait()?, VerifyOutcome::Valid);
//!
//! // Shutdown drains: accepted requests are answered, new ones refused.
//! service.shutdown();
//! # Ok(())
//! # }
//! ```

use crate::engine::HeroSigner;
use crate::error::HeroError;
use crate::kernels::verify::VerifyOutcome;
use crate::signer::{check_key, Signer};

use hero_sphincs::sign::{Signature, SigningKey, VerifyingKey};

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Errors surfaced by the service layer (distinct from [`HeroError`]:
/// these describe the request path, not the engine).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServiceError {
    /// The service is shutting down (or already shut); the request was
    /// not accepted.
    ShuttingDown,
    /// [`SignService::try_submit`] found the bounded queue full — the
    /// caller should back off (or use the blocking [`SignService::submit`]).
    QueueFull,
    /// The request's deadline passed before the batcher could sign it
    /// (or had already passed at submission). Expired requests are
    /// answered immediately instead of burning executor time on a
    /// signature nobody is waiting for.
    DeadlineExceeded,
    /// The engine rejected the coalesced batch this request rode in.
    Engine(HeroError),
    /// The batcher died mid-request (a bug — batches are panic-isolated,
    /// so this should never surface in practice).
    Internal(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::ShuttingDown => f.write_str("sign service is shutting down"),
            ServiceError::QueueFull => f.write_str("sign service queue is full"),
            ServiceError::DeadlineExceeded => f.write_str("request deadline passed before signing"),
            ServiceError::Engine(e) => write!(f, "sign service engine: {e}"),
            ServiceError::Internal(what) => write!(f, "sign service internal: {what}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HeroError> for ServiceError {
    fn from(e: HeroError) -> Self {
        ServiceError::Engine(e)
    }
}

/// Micro-batcher knobs (applied to both the sign and verify lanes; each
/// lane coalesces independently under the same bounds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Most messages one coalesced batch may carry. Defaults to 64 —
    /// the paper's §IV-E1 guidance for latency-sensitive pipelines
    /// ("near 64": compute still hides transfers, fill/drain stays low).
    pub max_batch: usize,
    /// Longest the batcher waits for stragglers after the first request
    /// of a batch arrives (throughput mode; the adaptive batcher shrinks
    /// this under lone-caller traffic).
    pub max_wait: Duration,
    /// Bound of each lane's pending-request queue; [`SignService::submit`]
    /// blocks (and [`SignService::try_submit`] returns
    /// [`ServiceError::QueueFull`]) while the lane is at depth.
    pub queue_depth: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_wait: Duration::from_micros(500),
            queue_depth: 1024,
        }
    }
}

impl ServiceConfig {
    /// Checks the configuration for unusable values.
    ///
    /// # Errors
    ///
    /// [`HeroError::InvalidOptions`] naming the offending field.
    pub fn validate(&self) -> Result<(), HeroError> {
        if self.max_batch == 0 {
            return Err(HeroError::InvalidOptions(
                "max_batch must be >= 1".to_string(),
            ));
        }
        if self.queue_depth == 0 {
            return Err(HeroError::InvalidOptions(
                "queue_depth must be >= 1".to_string(),
            ));
        }
        Ok(())
    }

    /// Defaults derived from the engine's cached Auto Tree Tuning result
    /// (`tune_auto_cached` ran at engine construction): the batch is
    /// sized so the simulated device fills — one fused FORS block per SM
    /// covers `sm_count · concurrent_trees / k` messages — then clamped
    /// to `[16, 128]`, the upper bound keeping latency near the paper's
    /// batch-64 guidance. Without a tuning result (fusion off or
    /// degenerate shape), falls back to 8 messages per worker.
    pub fn tuned_for(engine: &HeroSigner) -> Self {
        let params = engine.params();
        let fill = match engine.tuning() {
            Some(t) => {
                let sm = engine.device().sm_count as usize;
                (sm * t.best.concurrent_trees() as usize) / params.k.max(1)
            }
            None => engine.workers() * 8,
        };
        Self {
            max_batch: fill.clamp(16, 128),
            ..Self::default()
        }
    }
}

/// Counters exposed by [`SignService::stats`]. The `verify_*` fields
/// mirror the sign-lane fields one-for-one — the lanes share machinery
/// but account separately.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Sign requests accepted into the queue.
    pub submitted: u64,
    /// Sign requests answered (successfully or with an engine error).
    pub completed: u64,
    /// Coalesced sign batches signed.
    pub batches: u64,
    /// Largest sign batch coalesced so far.
    pub max_batch_observed: u64,
    /// Sign requests answered with [`ServiceError::DeadlineExceeded`]
    /// because their deadline passed while they were queued.
    pub deadline_expired: u64,
    /// Verify requests accepted into the queue.
    pub verify_submitted: u64,
    /// Verify requests answered.
    pub verify_completed: u64,
    /// Coalesced verify batches run.
    pub verify_batches: u64,
    /// Largest verify batch coalesced so far.
    pub verify_max_batch_observed: u64,
    /// Verify requests expired before verification.
    pub verify_deadline_expired: u64,
}

/// One pending request's result slot: written exactly once by the
/// batcher, read exactly once by the ticket holder.
struct TicketState<T> {
    result: Mutex<Option<Result<T, ServiceError>>>,
    ready: Condvar,
}

impl<T> TicketState<T> {
    fn fulfill(&self, value: Result<T, ServiceError>) {
        let mut slot = self.result.lock().expect("ticket slot");
        assert!(slot.is_none(), "request answered twice");
        *slot = Some(value);
        self.ready.notify_all();
    }
}

/// The caller's handle to an accepted request — a plain
/// receiver-future: hold it, do other work, [`Ticket::wait`] when the
/// result is needed. [`SignTicket`] redeems a [`Signature`],
/// [`VerifyTicket`] a [`VerifyOutcome`].
pub struct Ticket<T> {
    state: Arc<TicketState<T>>,
}

/// A [`Ticket`] for a signing request.
pub type SignTicket = Ticket<Signature>;

/// A [`Ticket`] for a verification request: redeems the typed
/// [`VerifyOutcome`] verdict (`Err` is reserved for the request path —
/// an invalid signature is `Ok(VerifyOutcome::Invalid)`).
pub type VerifyTicket = Ticket<VerifyOutcome>;

impl<T> fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ticket")
            .field("ready", &self.is_ready())
            .finish()
    }
}

impl<T> Ticket<T> {
    /// Blocks until the request is answered.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Engine`] if the engine rejected the batch;
    /// [`ServiceError::ShuttingDown`] if the service stopped before the
    /// request could be served (only possible when the batcher died —
    /// orderly shutdown drains accepted requests).
    pub fn wait(self) -> Result<T, ServiceError> {
        let mut slot = self.state.result.lock().expect("ticket slot");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.state.ready.wait(slot).expect("ticket slot");
        }
    }

    /// Non-blocking probe: `true` once the request has been answered
    /// (a subsequent [`Ticket::wait`] returns immediately).
    pub fn is_ready(&self) -> bool {
        self.state.result.lock().expect("ticket slot").is_some()
    }
}

struct Request<P, T> {
    payload: P,
    ticket: Arc<TicketState<T>>,
    /// Answer with [`ServiceError::DeadlineExceeded`] instead of serving
    /// if this instant passes while the request is still queued.
    deadline: Option<Instant>,
}

struct QueueState<P, T> {
    items: VecDeque<Request<P, T>>,
    /// Cleared on shutdown; submissions are refused afterwards and the
    /// batcher exits once the queue drains.
    open: bool,
}

/// One micro-batching lane: a bounded queue, its adaptive batch-size
/// EWMA, and its exactly-once accounting. The sign and verify lanes are
/// two instances of this one machine — shared deadline expiry, shared
/// backpressure, separate coalescing signals.
struct Lane<P, T> {
    queue: Mutex<QueueState<P, T>>,
    not_empty: Condvar,
    not_full: Condvar,
    submitted: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
    max_batch_observed: AtomicU64,
    deadline_expired: AtomicU64,
    /// Scaled EWMA (×1000) of recent batch sizes — the adaptive signal.
    ewma_milli: AtomicUsize,
}

impl<P, T> Lane<P, T> {
    fn new() -> Self {
        Self {
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                open: true,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_batch_observed: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            ewma_milli: AtomicUsize::new(1000),
        }
    }

    /// Answers an expired request with the typed error and books it as
    /// completed — the exactly-once accounting is identical to a served
    /// request's.
    fn expire(&self, req: Request<P, T>) {
        req.ticket.fulfill(Err(ServiceError::DeadlineExceeded));
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    fn enqueue(
        &self,
        payload: P,
        deadline: Option<Instant>,
        block: bool,
        depth: usize,
    ) -> Result<Ticket<T>, ServiceError> {
        if deadline.is_some_and(|d| d <= Instant::now()) {
            self.deadline_expired.fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::DeadlineExceeded);
        }
        let state = Arc::new(TicketState {
            result: Mutex::new(None),
            ready: Condvar::new(),
        });
        {
            let mut q = self.queue.lock().expect("service queue");
            loop {
                if !q.open {
                    return Err(ServiceError::ShuttingDown);
                }
                if q.items.len() < depth {
                    break;
                }
                if !block {
                    return Err(ServiceError::QueueFull);
                }
                q = self.not_full.wait(q).expect("service queue");
            }
            q.items.push_back(Request {
                payload,
                ticket: Arc::clone(&state),
                deadline,
            });
        }
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.not_empty.notify_one();
        Ok(Ticket { state })
    }

    /// Collects one batch from the lane: the first request immediately,
    /// then stragglers until `max_batch`, the adaptive deadline, or
    /// shutdown-with-empty-queue. Returns `None` when the service has
    /// shut down and the queue is fully drained.
    ///
    /// Requests whose per-request deadline has already passed are
    /// answered with [`ServiceError::DeadlineExceeded`] at pop time and
    /// never join a batch — an expired request costs the lane a queue
    /// slot, never executor time.
    fn collect(&self, config: &ServiceConfig) -> Option<Vec<Request<P, T>>> {
        let mut q = self.queue.lock().expect("service queue");
        let first = loop {
            match q.items.pop_front() {
                Some(req) if req.deadline.is_some_and(|d| d <= Instant::now()) => {
                    self.expire(req);
                }
                Some(req) => break req,
                None => {
                    if !q.open {
                        return None;
                    }
                    q = self.not_empty.wait(q).expect("service queue");
                }
            }
        };
        let mut batch = vec![first];

        // Adaptive coalescing: recent lone-request batches mean a single
        // caller — waiting max_wait would only add latency. Recent multi-
        // request batches mean concurrent traffic — wait the full window
        // so the batch fills. Threshold 1.5 on the batch-size EWMA.
        let ewma = self.ewma_milli.load(Ordering::Relaxed);
        let wait = if ewma > 1500 {
            config.max_wait
        } else {
            config.max_wait / 8
        };
        let deadline = Instant::now() + wait;
        while batch.len() < config.max_batch {
            if let Some(req) = q.items.pop_front() {
                if req.deadline.is_some_and(|d| d <= Instant::now()) {
                    self.expire(req);
                } else {
                    batch.push(req);
                }
                continue;
            }
            if !q.open {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) = self
                .not_empty
                .wait_timeout(q, deadline - now)
                .expect("service queue");
            q = guard;
        }
        drop(q);
        self.not_full.notify_all();

        let len = batch.len();
        let prev = self.ewma_milli.load(Ordering::Relaxed);
        self.ewma_milli
            .store((3 * prev + len * 1000) / 4, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.max_batch_observed
            .fetch_max(len as u64, Ordering::Relaxed);
        Some(batch)
    }

    /// Refuses further submissions and wakes every waiter.
    fn close(&self) {
        self.queue.lock().expect("service queue").open = false;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Fails any requests left in a closed queue (only possible when the
    /// lane's batcher died abnormally) so their ticket holders don't hang.
    fn fail_stranded(&self) {
        let stranded: Vec<Request<P, T>> = {
            let mut q = self.queue.lock().expect("service queue");
            q.items.drain(..).collect()
        };
        for req in stranded {
            req.ticket.fulfill(Err(ServiceError::ShuttingDown));
            self.completed.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn depth(&self) -> usize {
        self.queue.lock().expect("service queue").items.len()
    }
}

/// Payload of one verify-lane request.
struct VerifyItem {
    msg: Vec<u8>,
    sig: Signature,
}

struct ServiceShared {
    sign: Lane<Vec<u8>, Signature>,
    verify: Lane<VerifyItem, VerifyOutcome>,
}

/// A shared signing *and verification* service over one engine and one
/// signing key — see the module docs for the architecture and a
/// deployment quickstart.
///
/// Thread-safe: share it behind an [`Arc`]; every clone of the handle
/// submits into the same queues and batchers.
pub struct SignService {
    shared: Arc<ServiceShared>,
    config: ServiceConfig,
    batcher: Mutex<Option<JoinHandle<()>>>,
    verifier: Mutex<Option<JoinHandle<()>>>,
}

impl SignService {
    /// Validates `config`, checks `sk` against the signer's parameter
    /// set, and starts the lane threads (`hero-service-batcher` for the
    /// sign lane, `hero-service-verifier` for the verify lane; the
    /// verify lane's key is `sk.verifying_key()`).
    ///
    /// # Errors
    ///
    /// [`HeroError::InvalidOptions`] for zero `max_batch`/`queue_depth`;
    /// [`HeroError::KeyMismatch`] when `sk` belongs to a different
    /// parameter set than the signer.
    pub fn start(
        signer: Arc<dyn Signer + Send + Sync>,
        sk: SigningKey,
        config: ServiceConfig,
    ) -> Result<Self, HeroError> {
        config.validate()?;
        check_key(signer.params(), sk.params())?;
        let vk = sk.verifying_key();
        let shared = Arc::new(ServiceShared {
            sign: Lane::new(),
            verify: Lane::new(),
        });
        let batcher = {
            let shared = Arc::clone(&shared);
            let signer = Arc::clone(&signer);
            std::thread::Builder::new()
                .name("hero-service-batcher".to_string())
                .spawn(move || batcher_loop(&shared, signer.as_ref(), &sk, &config))
                .expect("spawn service batcher thread")
        };
        let verifier = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("hero-service-verifier".to_string())
                .spawn(move || verifier_loop(&shared, signer.as_ref(), &vk, &config))
                .expect("spawn service verifier thread")
        };
        Ok(Self {
            shared,
            config,
            batcher: Mutex::new(Some(batcher)),
            verifier: Mutex::new(Some(verifier)),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Submits `msg` for signing, blocking while the bounded queue is at
    /// [`ServiceConfig::queue_depth`] (backpressure). Returns a ticket
    /// redeemable for the signature.
    ///
    /// # Errors
    ///
    /// [`ServiceError::ShuttingDown`] once [`SignService::shutdown`] has
    /// begun.
    pub fn submit(&self, msg: impl Into<Vec<u8>>) -> Result<SignTicket, ServiceError> {
        self.shared
            .sign
            .enqueue(msg.into(), None, true, self.config.queue_depth)
    }

    /// [`SignService::submit`] with a deadline: if `deadline` passes
    /// while the request is still queued, it is answered with
    /// [`ServiceError::DeadlineExceeded`] instead of being signed —
    /// expired work never reaches the executor.
    ///
    /// # Errors
    ///
    /// [`ServiceError::DeadlineExceeded`] immediately when `deadline`
    /// has already passed; otherwise as [`SignService::submit`].
    pub fn submit_with_deadline(
        &self,
        msg: impl Into<Vec<u8>>,
        deadline: Instant,
    ) -> Result<SignTicket, ServiceError> {
        self.shared
            .sign
            .enqueue(msg.into(), Some(deadline), true, self.config.queue_depth)
    }

    /// Non-blocking [`SignService::submit`].
    ///
    /// # Errors
    ///
    /// [`ServiceError::QueueFull`] instead of blocking;
    /// [`ServiceError::ShuttingDown`] once shutdown has begun.
    pub fn try_submit(&self, msg: impl Into<Vec<u8>>) -> Result<SignTicket, ServiceError> {
        self.shared
            .sign
            .enqueue(msg.into(), None, false, self.config.queue_depth)
    }

    /// Non-blocking [`SignService::submit_with_deadline`].
    ///
    /// # Errors
    ///
    /// As [`SignService::try_submit`], plus
    /// [`ServiceError::DeadlineExceeded`] for an already-passed deadline.
    pub fn try_submit_with_deadline(
        &self,
        msg: impl Into<Vec<u8>>,
        deadline: Instant,
    ) -> Result<SignTicket, ServiceError> {
        self.shared
            .sign
            .enqueue(msg.into(), Some(deadline), false, self.config.queue_depth)
    }

    /// Submits `(msg, sig)` for verification on the verify lane,
    /// blocking while that lane's bounded queue is at
    /// [`ServiceConfig::queue_depth`]. Returns a ticket redeemable for
    /// the typed [`VerifyOutcome`] — an invalid signature is a verdict,
    /// not an error.
    ///
    /// # Errors
    ///
    /// [`ServiceError::ShuttingDown`] once [`SignService::shutdown`] has
    /// begun.
    pub fn submit_verify(
        &self,
        msg: impl Into<Vec<u8>>,
        sig: Signature,
    ) -> Result<VerifyTicket, ServiceError> {
        self.shared.verify.enqueue(
            VerifyItem {
                msg: msg.into(),
                sig,
            },
            None,
            true,
            self.config.queue_depth,
        )
    }

    /// [`SignService::submit_verify`] with a deadline — expired verify
    /// work never reaches the executor, same as the sign lane.
    ///
    /// # Errors
    ///
    /// [`ServiceError::DeadlineExceeded`] immediately when `deadline`
    /// has already passed; otherwise as [`SignService::submit_verify`].
    pub fn submit_verify_with_deadline(
        &self,
        msg: impl Into<Vec<u8>>,
        sig: Signature,
        deadline: Instant,
    ) -> Result<VerifyTicket, ServiceError> {
        self.shared.verify.enqueue(
            VerifyItem {
                msg: msg.into(),
                sig,
            },
            Some(deadline),
            true,
            self.config.queue_depth,
        )
    }

    /// Non-blocking [`SignService::submit_verify`].
    ///
    /// # Errors
    ///
    /// [`ServiceError::QueueFull`] instead of blocking;
    /// [`ServiceError::ShuttingDown`] once shutdown has begun.
    pub fn try_submit_verify(
        &self,
        msg: impl Into<Vec<u8>>,
        sig: Signature,
    ) -> Result<VerifyTicket, ServiceError> {
        self.shared.verify.enqueue(
            VerifyItem {
                msg: msg.into(),
                sig,
            },
            None,
            false,
            self.config.queue_depth,
        )
    }

    /// Non-blocking [`SignService::submit_verify_with_deadline`].
    ///
    /// # Errors
    ///
    /// [`ServiceError::QueueFull`] instead of blocking;
    /// [`ServiceError::DeadlineExceeded`] immediately when `deadline`
    /// has already passed; [`ServiceError::ShuttingDown`] once shutdown
    /// has begun.
    pub fn try_submit_verify_with_deadline(
        &self,
        msg: impl Into<Vec<u8>>,
        sig: Signature,
        deadline: Instant,
    ) -> Result<VerifyTicket, ServiceError> {
        self.shared.verify.enqueue(
            VerifyItem {
                msg: msg.into(),
                sig,
            },
            Some(deadline),
            false,
            self.config.queue_depth,
        )
    }

    /// Sign requests currently queued and not yet claimed by the batcher
    /// (a live gauge for metrics surfaces; racy by nature).
    pub fn queue_depth(&self) -> usize {
        self.shared.sign.depth()
    }

    /// Verify requests currently queued on the verify lane.
    pub fn verify_queue_depth(&self) -> usize {
        self.shared.verify.depth()
    }

    /// Snapshot of the service counters, both lanes.
    pub fn stats(&self) -> ServiceStats {
        let sign = &self.shared.sign;
        let verify = &self.shared.verify;
        ServiceStats {
            submitted: sign.submitted.load(Ordering::Relaxed),
            completed: sign.completed.load(Ordering::Relaxed),
            batches: sign.batches.load(Ordering::Relaxed),
            max_batch_observed: sign.max_batch_observed.load(Ordering::Relaxed),
            deadline_expired: sign.deadline_expired.load(Ordering::Relaxed),
            verify_submitted: verify.submitted.load(Ordering::Relaxed),
            verify_completed: verify.completed.load(Ordering::Relaxed),
            verify_batches: verify.batches.load(Ordering::Relaxed),
            verify_max_batch_observed: verify.max_batch_observed.load(Ordering::Relaxed),
            verify_deadline_expired: verify.deadline_expired.load(Ordering::Relaxed),
        }
    }

    /// Clean shutdown: refuses new submissions on both lanes, drains and
    /// answers every accepted request, then joins both lane threads.
    /// Idempotent; also runs on drop. Safe to call through a shared
    /// `Arc<SignService>` while clients still hold tickets — each
    /// accepted request is answered exactly once.
    pub fn shutdown(&self) {
        self.shared.sign.close();
        self.shared.verify.close();
        // Hold the handle locks across join *and* the stranded sweep:
        // a concurrent shutdown() otherwise sees `None`, skips the
        // join, and drains requests the still-running batcher would
        // have served — failing accepted tickets with ShuttingDown.
        let mut batcher = self.batcher.lock().expect("batcher handle");
        let mut verifier = self.verifier.lock().expect("verifier handle");
        if let Some(handle) = batcher.take() {
            let _ = handle.join();
        }
        if let Some(handle) = verifier.take() {
            let _ = handle.join();
        }
        // Belt and braces: if a lane thread died abnormally, fail any
        // stranded requests instead of hanging their ticket holders.
        self.shared.sign.fail_stranded();
        self.shared.verify.fail_stranded();
        drop(verifier);
        drop(batcher);
    }
}

impl Drop for SignService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl fmt::Debug for SignService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SignService")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

fn batcher_loop(
    shared: &ServiceShared,
    signer: &(dyn Signer + Send + Sync),
    sk: &SigningKey,
    config: &ServiceConfig,
) {
    // Warm the backend's hypertree cache for the tenant's key before
    // serving the first batch, so even the first request signs warm.
    // Best-effort: a failed or panicking warm-up costs only the cold
    // fill the first batch would have paid anyway.
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| signer.warm_key(sk)));
    while let Some(batch) = shared.sign.collect(config) {
        let msgs: Vec<&[u8]> = batch.iter().map(|r| r.payload.as_slice()).collect();
        // Panic isolation: a batch that explodes answers its own tickets
        // with an Internal error and the batcher keeps serving.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            signer.sign_batch(sk, &msgs)
        }));
        match outcome {
            Ok(Ok(sigs)) => {
                debug_assert_eq!(sigs.len(), batch.len());
                for (req, sig) in batch.iter().zip(sigs) {
                    req.ticket.fulfill(Ok(sig));
                }
            }
            Ok(Err(e)) => {
                for req in &batch {
                    req.ticket.fulfill(Err(ServiceError::Engine(e.clone())));
                }
            }
            Err(_) => {
                for req in &batch {
                    req.ticket
                        .fulfill(Err(ServiceError::Internal("batch panicked".to_string())));
                }
            }
        }
        shared
            .sign
            .completed
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
    }
}

fn verifier_loop(
    shared: &ServiceShared,
    signer: &(dyn Signer + Send + Sync),
    vk: &VerifyingKey,
    config: &ServiceConfig,
) {
    while let Some(batch) = shared.verify.collect(config) {
        // Unzip into contiguous message and signature slices (the
        // planned batch verifier wants them flat), keeping tickets
        // index-aligned.
        let mut msgs_owned = Vec::with_capacity(batch.len());
        let mut sigs = Vec::with_capacity(batch.len());
        let mut tickets = Vec::with_capacity(batch.len());
        for req in batch {
            msgs_owned.push(req.payload.msg);
            sigs.push(req.payload.sig);
            tickets.push(req.ticket);
        }
        let msgs: Vec<&[u8]> = msgs_owned.iter().map(Vec::as_slice).collect();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            signer.verify_batch(vk, &msgs, &sigs)
        }));
        match outcome {
            Ok(Ok(verdicts)) => {
                debug_assert_eq!(verdicts.len(), tickets.len());
                for (ticket, verdict) in tickets.iter().zip(verdicts) {
                    ticket.fulfill(Ok(verdict));
                }
            }
            Ok(Err(e)) => {
                for ticket in &tickets {
                    ticket.fulfill(Err(ServiceError::Engine(e.clone())));
                }
            }
            Err(_) => {
                for ticket in &tickets {
                    ticket.fulfill(Err(ServiceError::Internal(
                        "verify batch panicked".to_string(),
                    )));
                }
            }
        }
        shared
            .verify
            .completed
            .fetch_add(tickets.len() as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signer::ReferenceSigner;
    use hero_gpu_sim::device::rtx_4090;
    use hero_sphincs::params::Params;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_params() -> Params {
        let mut p = Params::sphincs_128f();
        p.h = 6;
        p.d = 3;
        p.log_t = 4;
        p.k = 8;
        p
    }

    fn engine() -> Arc<HeroSigner> {
        Arc::new(
            HeroSigner::builder(rtx_4090(), tiny_params())
                .workers(4)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn service_signs_byte_identical_to_direct_signing() {
        let engine = engine();
        let mut rng = StdRng::seed_from_u64(21);
        let (sk, vk) = engine.keygen(&mut rng).unwrap();
        let service =
            SignService::start(engine.clone(), sk.clone(), ServiceConfig::default()).unwrap();
        let tickets: Vec<_> = (0..5u8)
            .map(|i| service.submit(vec![i; 12]).unwrap())
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let msg = [i as u8; 12];
            let sig = t.wait().unwrap();
            assert_eq!(sig, sk.sign(&msg), "msg {i}");
            vk.verify(&msg, &sig).unwrap();
        }
        let stats = service.stats();
        assert_eq!(stats.submitted, 5);
        assert_eq!(stats.completed, 5);
        assert!(stats.batches >= 1);
    }

    #[test]
    fn verify_lane_returns_scalar_verdicts() {
        let engine = engine();
        let mut rng = StdRng::seed_from_u64(31);
        let (sk, vk) = engine.keygen(&mut rng).unwrap();
        let service =
            SignService::start(engine.clone(), sk.clone(), ServiceConfig::default()).unwrap();

        let msgs: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 10]).collect();
        let mut sigs: Vec<Signature> = msgs.iter().map(|m| sk.sign(m)).collect();
        sigs[1].fors.trees[0].sk[0] ^= 1; // Invalid
        sigs[3].ht.layers.pop(); // Malformed

        let tickets: Vec<_> = msgs
            .iter()
            .zip(&sigs)
            .map(|(m, s)| service.submit_verify(m.clone(), s.clone()).unwrap())
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let verdict = t.wait().unwrap();
            let oracle = VerifyOutcome::from_result(vk.verify(&msgs[i], &sigs[i]));
            assert_eq!(verdict, oracle, "request {i}");
        }
        let stats = service.stats();
        assert_eq!(stats.verify_submitted, 4);
        assert_eq!(stats.verify_completed, 4);
        assert!(stats.verify_batches >= 1);
        // Sign-lane counters untouched by verify traffic.
        assert_eq!(stats.submitted, 0);
        assert_eq!(stats.batches, 0);
    }

    #[test]
    fn verify_lane_deadline_and_shutdown_semantics() {
        let engine = engine();
        let mut rng = StdRng::seed_from_u64(32);
        let (sk, _) = engine.keygen(&mut rng).unwrap();
        let sig = sk.sign(b"v");
        let service = SignService::start(engine, sk, ServiceConfig::default()).unwrap();
        // Already-expired deadline: typed error at submit time.
        let past = Instant::now() - Duration::from_millis(1);
        assert_eq!(
            service
                .submit_verify_with_deadline(b"v".to_vec(), sig.clone(), past)
                .unwrap_err(),
            ServiceError::DeadlineExceeded
        );
        assert_eq!(service.stats().verify_deadline_expired, 1);
        // Accepted before shutdown: answered. After: refused.
        let accepted = service.submit_verify(b"v".to_vec(), sig.clone()).unwrap();
        service.shutdown();
        assert_eq!(accepted.wait().unwrap(), VerifyOutcome::Valid);
        assert_eq!(
            service.submit_verify(b"v".to_vec(), sig).unwrap_err(),
            ServiceError::ShuttingDown
        );
        let s = service.stats();
        assert_eq!(s.verify_submitted, s.verify_completed, "exactly-once");
    }

    #[test]
    fn config_edge_cases_are_typed_errors() {
        let engine = engine();
        let mut rng = StdRng::seed_from_u64(22);
        let (sk, _) = engine.keygen(&mut rng).unwrap();
        for bad in [
            ServiceConfig {
                max_batch: 0,
                ..ServiceConfig::default()
            },
            ServiceConfig {
                queue_depth: 0,
                ..ServiceConfig::default()
            },
        ] {
            let err = SignService::start(engine.clone(), sk.clone(), bad).unwrap_err();
            assert!(
                matches!(err, HeroError::InvalidOptions(_)),
                "{bad:?}: {err}"
            );
        }
    }

    #[test]
    fn foreign_key_rejected_at_start() {
        let engine = engine();
        let mut other = tiny_params();
        other.k = 9;
        let mut rng = StdRng::seed_from_u64(23);
        let (sk, _) = hero_sphincs::keygen(other, &mut rng).unwrap();
        assert!(matches!(
            SignService::start(engine, sk, ServiceConfig::default()),
            Err(HeroError::KeyMismatch(_))
        ));
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let engine = engine();
        let mut rng = StdRng::seed_from_u64(24);
        let (sk, _) = engine.keygen(&mut rng).unwrap();
        let service = SignService::start(engine, sk, ServiceConfig::default()).unwrap();
        let accepted = service.submit(b"before".to_vec()).unwrap();
        service.shutdown();
        accepted.wait().unwrap();
        assert_eq!(
            service.submit(b"after".to_vec()).unwrap_err(),
            ServiceError::ShuttingDown
        );
        // Idempotent.
        service.shutdown();
    }

    #[test]
    fn try_submit_reports_backpressure() {
        // A stopped-up queue (depth 1, engine busy elsewhere is not even
        // needed — we never start draining because max_wait keeps the
        // batcher holding the first request only briefly; use depth 1 and
        // rapid-fire submissions to hit the bound).
        let engine = engine();
        let mut rng = StdRng::seed_from_u64(25);
        let (sk, _) = engine.keygen(&mut rng).unwrap();
        let service = SignService::start(
            engine,
            sk,
            ServiceConfig {
                queue_depth: 1,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        // With depth 1, at least one of a burst of try_submits must
        // either be accepted or see QueueFull; all accepted ones must be
        // answered. (Timing-tolerant: the batcher may drain between
        // calls.)
        let mut accepted = Vec::new();
        let mut full = 0;
        for i in 0..64u8 {
            match service.try_submit(vec![i; 8]) {
                Ok(t) => accepted.push(t),
                Err(ServiceError::QueueFull) => full += 1,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        for t in accepted {
            t.wait().unwrap();
        }
        // Not asserting `full > 0`: a fast batcher may keep up. The
        // invariant is that QueueFull is the only rejection reason.
        let _ = full;
    }

    #[test]
    fn tuned_config_tracks_the_engine() {
        let engine = engine();
        let tuned = ServiceConfig::tuned_for(&engine);
        assert!(tuned.max_batch >= 16 && tuned.max_batch <= 128, "{tuned:?}");
        tuned.validate().unwrap();
    }

    #[test]
    fn expired_deadline_rejected_at_submit() {
        let engine = engine();
        let mut rng = StdRng::seed_from_u64(27);
        let (sk, _) = engine.keygen(&mut rng).unwrap();
        let service = SignService::start(engine, sk, ServiceConfig::default()).unwrap();
        let past = Instant::now() - Duration::from_millis(1);
        assert_eq!(
            service
                .submit_with_deadline(b"late".to_vec(), past)
                .unwrap_err(),
            ServiceError::DeadlineExceeded
        );
        assert_eq!(service.stats().deadline_expired, 1);
        // A generous deadline signs normally.
        let far = Instant::now() + Duration::from_secs(60);
        service
            .submit_with_deadline(b"on time".to_vec(), far)
            .unwrap()
            .wait()
            .unwrap();
    }

    #[test]
    fn queued_requests_expire_typed_not_signed() {
        // Stall the batcher behind a slow first batch, pile up requests
        // with tiny deadlines behind it, and watch them expire at pop
        // time with the typed error. The deadline (1ms) is far below the
        // time the blocking batch takes, so this is timing-robust.
        let engine = engine();
        let mut rng = StdRng::seed_from_u64(28);
        let (sk, vk) = engine.keygen(&mut rng).unwrap();
        let service = SignService::start(
            engine,
            sk,
            ServiceConfig {
                max_batch: 1, // each request is its own batch
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        // Head-of-line request (no deadline): occupies the batcher.
        let head = service.submit(b"head".to_vec()).unwrap();
        let mut doomed = Vec::new();
        let mut expired = 0u64;
        for i in 0..4u8 {
            match service
                .submit_with_deadline(vec![i; 8], Instant::now() + Duration::from_millis(1))
            {
                Ok(t) => doomed.push(t),
                // A harsh scheduler may expire it before enqueue even runs.
                Err(ServiceError::DeadlineExceeded) => expired += 1,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        std::thread::sleep(Duration::from_millis(5));
        let tail = service.submit(b"tail".to_vec()).unwrap();
        let sig = head.wait().unwrap();
        vk.verify(b"head", &sig).unwrap();
        for t in doomed {
            match t.wait() {
                Err(ServiceError::DeadlineExceeded) => expired += 1,
                Ok(_) => {} // the batcher got there in time — fine
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        // The service keeps serving after expiries.
        tail.wait().unwrap();
        assert_eq!(service.stats().deadline_expired, expired);
        service.shutdown();
        let s = service.stats();
        assert_eq!(s.submitted, s.completed, "exactly-once accounting");
    }

    #[test]
    fn works_over_the_reference_backend_too() {
        let params = tiny_params();
        let signer = Arc::new(ReferenceSigner::new(params).unwrap());
        let mut rng = StdRng::seed_from_u64(26);
        let (sk, vk) = signer.keygen(&mut rng).unwrap();
        let service = SignService::start(signer, sk, ServiceConfig::default()).unwrap();
        let sig = service.submit(b"ref".to_vec()).unwrap().wait().unwrap();
        vk.verify(b"ref", &sig).unwrap();
        // The verify lane rides the reference backend's default
        // (sequential oracle) verify_batch.
        let verdict = service
            .submit_verify(b"ref".to_vec(), sig)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(verdict, VerifyOutcome::Valid);
    }
}
