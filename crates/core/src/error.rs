//! The typed error surface of the HERO-Sign engine.
//!
//! Every fallible operation in this crate — engine construction through
//! [`crate::builder::HeroSignerBuilder`], signing through the
//! [`crate::signer::Signer`] trait, and pipeline simulation — reports a
//! [`HeroError`]. The CLI and services wrap it rather than matching on
//! strings.

use crate::tuning::TuneError;
use hero_sphincs::params::Params;
use hero_sphincs::sign::SignError;
use std::fmt;

/// Errors produced by the HERO-Sign engine and its builders.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum HeroError {
    /// The parameter set failed [`hero_sphincs::Params::validate`].
    InvalidParams(String),
    /// An option carried an unusable value (zero workers, zero messages,
    /// zero streams, …); the message names the offending field.
    InvalidOptions(String),
    /// The Auto Tree Tuning search failed and the builder was configured
    /// to treat that as fatal (see
    /// [`crate::builder::HeroSignerBuilder::strict_tuning`]).
    Tuning(TuneError),
    /// A key built for one parameter set was used with an engine built
    /// for another. Boxed to keep the error small; carries the full
    /// sets, since two customized shapes can share a name while
    /// differing structurally.
    KeyMismatch(Box<KeyMismatch>),
    /// A batch operation was handed mismatched slice lengths (e.g.
    /// `verify_batch` with a different number of messages and
    /// signatures); nothing was paired or verified.
    BatchMismatch {
        /// Number of messages supplied.
        messages: usize,
        /// Number of signatures supplied.
        signatures: usize,
    },
    /// An error bubbled up from the `hero-sphincs` substrate (keygen,
    /// signature parsing, verification).
    Sphincs(SignError),
}

/// Details of a [`HeroError::KeyMismatch`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyMismatch {
    /// Parameter set the engine was constructed for.
    pub engine: Params,
    /// Parameter set the key carries.
    pub key: Params,
}

impl KeyMismatch {
    /// Wraps the mismatch into a [`HeroError`].
    pub fn into_error(self) -> HeroError {
        HeroError::KeyMismatch(Box::new(self))
    }
}

impl fmt::Display for HeroError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeroError::InvalidParams(what) => write!(f, "invalid parameter set: {what}"),
            HeroError::InvalidOptions(what) => write!(f, "invalid options: {what}"),
            HeroError::Tuning(e) => write!(f, "tree tuning failed: {e}"),
            HeroError::KeyMismatch(m) => {
                let (engine, key) = (&m.engine, &m.key);
                if engine.name() == key.name() {
                    // Same label, different shape: print every field.
                    write!(
                        f,
                        "key parameters {key:?} do not match engine parameters {engine:?}"
                    )
                } else {
                    write!(
                        f,
                        "key parameter set {key} does not match engine parameter set {engine}"
                    )
                }
            }
            HeroError::BatchMismatch {
                messages,
                signatures,
            } => write!(
                f,
                "batch length mismatch: {messages} messages vs {signatures} signatures"
            ),
            HeroError::Sphincs(e) => write!(f, "sphincs substrate: {e}"),
        }
    }
}

impl std::error::Error for HeroError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HeroError::Tuning(e) => Some(e),
            HeroError::Sphincs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TuneError> for HeroError {
    fn from(e: TuneError) -> Self {
        HeroError::Tuning(e)
    }
}

impl From<SignError> for HeroError {
    fn from(e: SignError) -> Self {
        match e {
            SignError::InvalidParams(what) => HeroError::InvalidParams(what),
            other => HeroError::Sphincs(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = KeyMismatch {
            engine: Params::sphincs_128f(),
            key: Params::sphincs_192f(),
        }
        .into_error();
        assert!(e.to_string().contains("SPHINCS+-128f"));
        assert!(e.to_string().contains("SPHINCS+-192f"));

        // Same name, customized shape: the message must expose the
        // differing fields, not assert two identical labels differ.
        let mut tiny = Params::sphincs_128f();
        tiny.k = 8;
        let same_name = KeyMismatch {
            engine: Params::sphincs_128f(),
            key: tiny,
        }
        .into_error();
        assert!(same_name.to_string().contains("k: 8"), "{same_name}");
        assert!(HeroError::InvalidOptions("workers must be >= 1".into())
            .to_string()
            .contains("workers"));

        let mismatch = HeroError::BatchMismatch {
            messages: 3,
            signatures: 1,
        };
        assert!(mismatch.to_string().contains("3 messages"), "{mismatch}");
        assert!(mismatch.to_string().contains("1 signatures"), "{mismatch}");
    }

    #[test]
    fn sphincs_invalid_params_normalizes() {
        let e = HeroError::from(SignError::InvalidParams("d must divide h".into()));
        assert!(matches!(e, HeroError::InvalidParams(_)));
        let v = HeroError::from(SignError::VerificationFailed);
        assert!(matches!(
            v,
            HeroError::Sphincs(SignError::VerificationFailed)
        ));
    }

    #[test]
    fn tuning_errors_keep_their_source() {
        use std::error::Error;
        let e = HeroError::from(TuneError::NoCandidate);
        assert!(e.source().is_some());
    }
}
