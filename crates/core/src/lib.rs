//! # hero-sign
//!
//! A Rust reproduction of **HERO-Sign** (Zhou & Wang, HPCA 2026):
//! hierarchical tuning and compile-time GPU optimizations for SPHINCS+
//! signature generation, running on the `hero-gpu-sim` execution model
//! with functionally real signatures from `hero-sphincs`.
//!
//! ## What's here
//!
//! * [`signer`] — the backend-agnostic [`Signer`] trait and the plain
//!   CPU [`ReferenceSigner`]; services program against `dyn Signer` and
//!   pick a backend at the edge.
//! * [`builder`] — fallible, cached construction of [`HeroSigner`]
//!   engines ([`HeroSigner::builder`]).
//! * [`error`] — the typed [`HeroError`] every fallible operation
//!   reports.
//! * [`faults`] — deterministic, seeded fault injection (`HERO_FAULTS`)
//!   threaded through the hot seams; zero-cost no-op when disabled.
//! * [`cache`] — per-key hypertree memoization: a sharded LRU cache of
//!   retained subtree node pyramids, so steady-state signing with one
//!   key pays only FORS plus the churning bottom layers.
//! * [`tuning`] — the offline **Auto Tree Tuning** search (Algorithm 1)
//!   and the Relax-FORS variant, behind a process-wide memoization cache;
//!   reproduces Table IV.
//! * [`kernels`] — the three component kernels (`FORS_Sign`, `TREE_Sign`,
//!   `WOTS+_Sign`), each with a functional face (real parallel signing on
//!   CPU workers) and an analytic face (simulator descriptors with
//!   *measured* bank-conflict counts).
//! * [`ptx`] — native/PTX SHA-2 code-path models and the per-kernel
//!   register tables; the raw material of Table V.
//! * [`plan`] — the cross-message batch planner: one `sign_batch` call
//!   becomes one stage graph (FORS tree groups, subtree treehashes,
//!   WOTS+ chain groups spanning messages) submitted onto the persistent
//!   [`hero_task_graph::Executor`] runtime.
//! * [`engine`] — [`HeroSigner`]: tune → select branches → plan and sign
//!   batches → simulate [`PipelineOptions`] workloads (Figs. 11–14);
//!   holds the stream runtime in an `Arc` so clones and concurrent
//!   callers share one worker pool.
//! * [`service`] — [`SignService`]: the adaptive micro-batching signing
//!   server; many clients, one coalesced accelerator.
//! * [`stats`] — the shared latency-percentile machinery (p50/p90/p99)
//!   behind the CLI `throughput` command, `bench_server`, and the
//!   server's metrics endpoint.
//! * [`workload`] — exact hash-work censuses per kernel.
//! * [`par`] — parallel maps over the persistent runtime.
//!
//! ## Quickstart
//!
//! Build an engine through the fallible builder, sign through the
//! [`Signer`] trait, and simulate the same workload on the modeled
//! RTX 4090:
//!
//! ```
//! use hero_gpu_sim::device::rtx_4090;
//! use hero_sign::{HeroSigner, PipelineOptions, ReferenceSigner, Signer};
//! use hero_sphincs::params::Params;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Reduced parameters keep the doc test fast.
//! let mut params = Params::sphincs_128f();
//! params.h = 6; params.d = 3; params.log_t = 4; params.k = 8;
//!
//! let engine = HeroSigner::builder(rtx_4090(), params).workers(4).build()?;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let (sk, vk) = engine.keygen(&mut rng)?;
//! let sig = engine.sign(&sk, b"hello")?;
//! vk.verify(b"hello", &sig)?;
//!
//! // Any backend produces identical bytes: swap in the CPU reference.
//! let backends: Vec<Box<dyn Signer>> =
//!     vec![Box::new(engine.clone()), Box::new(ReferenceSigner::new(params)?)];
//! for backend in &backends {
//!     assert_eq!(backend.sign(&sk, b"hello")?, sig);
//! }
//!
//! // Simulated RTX 4090 throughput for a 1024-message batch pipeline:
//! let report = engine.simulate(PipelineOptions::new(1024).batch_size(64))?;
//! assert!(report.kops > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod cache;
pub mod engine;
pub mod error;
pub mod faults;
pub mod kernels;
pub mod par;
pub mod plan;
pub mod ptx;
pub mod service;
pub mod signer;
pub mod stats;
pub mod tuning;
pub mod workload;

pub use builder::HeroSignerBuilder;
pub use cache::{CacheConfig, CacheStats, HypertreeCache};
pub use engine::{HeroSigner, LaunchPolicy, OptConfig, PipelineOptions, PipelineReport, PtxPolicy};
pub use error::HeroError;
pub use faults::{FaultAction, FaultPlan, FaultSpec};
pub use kernels::verify::VerifyOutcome;
pub use plan::{PlanShape, PlanSummary};
pub use ptx::{BranchSelection, KernelKind};
pub use service::{
    ServiceConfig, ServiceError, ServiceStats, SignService, SignTicket, Ticket, VerifyTicket,
};
pub use signer::{ReferenceSigner, Signer};
pub use stats::{LatencySummary, LatencyWindow};
pub use tuning::{
    tune, tune_auto, tune_auto_cached, tune_auto_cached_at, tune_relax, tuning_cache_disk_path,
    tuning_cache_stats, FusionCandidate, TuningCacheStats, TuningOptions, TuningResult,
    TUNING_CACHE_DISK_VERSION,
};
