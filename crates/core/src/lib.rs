//! # hero-sign
//!
//! A Rust reproduction of **HERO-Sign** (Zhou & Wang, HPCA 2026):
//! hierarchical tuning and compile-time GPU optimizations for SPHINCS+
//! signature generation, running on the `hero-gpu-sim` execution model
//! with functionally real signatures from `hero-sphincs`.
//!
//! ## What's here
//!
//! * [`tuning`] — the offline **Auto Tree Tuning** search (Algorithm 1)
//!   and the Relax-FORS variant; reproduces Table IV.
//! * [`kernels`] — the three component kernels (`FORS_Sign`, `TREE_Sign`,
//!   `WOTS+_Sign`), each with a functional face (real parallel signing on
//!   CPU workers) and an analytic face (simulator descriptors with
//!   *measured* bank-conflict counts).
//! * [`ptx`] — native/PTX SHA-2 code-path models and the per-kernel
//!   register tables; the raw material of Table V.
//! * [`engine`] — [`engine::HeroSigner`]: tune → select branches → sign
//!   batches → simulate pipelines (Figs. 11–14).
//! * [`workload`] — exact hash-work censuses per kernel.
//! * [`par`] — the scoped worker pool the functional kernels run on.
//!
//! ## Quickstart
//!
//! ```
//! use hero_gpu_sim::device::rtx_4090;
//! use hero_sign::engine::HeroSigner;
//! use hero_sphincs::params::Params;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Reduced parameters keep the doc test fast.
//! let mut params = Params::sphincs_128f();
//! params.h = 6; params.d = 3; params.log_t = 4; params.k = 8;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let (sk, vk) = hero_sphincs::keygen(params, &mut rng)?;
//! let engine = HeroSigner::hero(rtx_4090(), params);
//! let sig = engine.sign(&sk, b"hello");
//! vk.verify(b"hello", &sig)?;
//!
//! // Simulated RTX 4090 throughput for a 1024-message batch:
//! let report = engine.simulate_pipeline(1024, 64, 4);
//! assert!(report.kops > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod kernels;
pub mod par;
pub mod ptx;
pub mod tuning;
pub mod workload;

pub use engine::{HeroSigner, OptConfig, PipelineReport, PtxPolicy};
pub use ptx::{BranchSelection, KernelKind};
pub use tuning::{tune, tune_auto, tune_relax, FusionCandidate, TuningOptions, TuningResult};
