//! Property-based tests over HERO-Sign's tuning and kernel layer:
//! Algorithm 1 invariants under randomized FORS parameters and devices,
//! layout geometry conservation, and functional/analytic consistency.

use hero_gpu_sim::device::{catalog, rtx_4090};
use hero_sign::engine::{HeroSigner, OptConfig};
use hero_sign::kernels::fors_sign::{self, ForsLayout};
use hero_sign::kernels::KernelConfig;
use hero_sign::tuning::{tune, tune_auto, TuneError, TuningOptions};
use hero_sphincs::params::Params;
use proptest::prelude::*;

/// Random-but-valid FORS shapes: k trees of height log_t at width n.
fn arb_params() -> impl Strategy<Value = Params> {
    (2usize..=10, 4usize..=40, 0usize..3).prop_map(|(log_t, k, width)| {
        let mut p = match width {
            0 => Params::sphincs_128f(),
            1 => Params::sphincs_192f(),
            _ => Params::sphincs_256f(),
        };
        p.log_t = log_t;
        p.k = k;
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tuner_candidates_always_satisfy_constraints(p in arb_params(), dev_idx in 0usize..6) {
        let device = catalog().swap_remove(dev_idx);
        let opts = TuningOptions::default();
        match tune(&device, &p, &opts) {
            Ok(result) => {
                for c in &result.candidates {
                    prop_assert!(c.block_threads() <= device.max_threads_per_block);
                    prop_assert!(c.smem_bytes <= device.smem_static_per_block);
                    prop_assert!(c.trees_per_set >= 1);
                    prop_assert!(c.fused_sets >= 1);
                    prop_assert!(c.concurrent_trees() <= p.k as u32);
                    prop_assert!(c.thread_utilization >= opts.alpha);
                    prop_assert!(c.thread_utilization <= 1.0 + 1e-9);
                    prop_assert!(c.smem_utilization <= 1.0 + 1e-9);
                    prop_assert!(c.sync_points > 0.0);
                }
                // Winner is the argmin under the paper's priority.
                let best = result.best;
                for c in &result.candidates {
                    prop_assert!(
                        best.sync_points <= c.sync_points + 1e-9,
                        "winner {best:?} beaten by {c:?}"
                    );
                }
            }
            Err(TuneError::TreeTooLarge { needed, max }) => {
                prop_assert!(needed > max);
                prop_assert_eq!(needed, p.t() as u32);
            }
            Err(TuneError::NoCandidate) => {
                // Legal when α filters everything (e.g. tiny k).
            }
        }
    }

    #[test]
    fn fused_geometry_conserves_trees(p in arb_params()) {
        let device = rtx_4090();
        if let Ok(result) = tune_auto(&device, &p, &TuningOptions::default()) {
            let plain_threads = p.t() as u32 * result.best.trees_per_set;
            let layout = if result.best.block_threads() < plain_threads {
                ForsLayout::Relax(result.best)
            } else {
                ForsLayout::Fused(result.best)
            };
            let geom = layout.geometry(&p);
            // Every tree is processed exactly once across rounds.
            prop_assert!(geom.rounds * geom.concurrent_trees >= p.k as u32);
            prop_assert!((geom.rounds - 1) * geom.concurrent_trees < p.k as u32);
        }
    }

    #[test]
    fn bank_measurement_transactions_scale_with_trees(p in arb_params()) {
        use hero_gpu_sim::banks::PaddingScheme;
        let geom_small = ForsLayout::Baseline.geometry(&p);
        let geom_large = ForsLayout::Mmtp.geometry(&p);
        let (l_s, s_s) = fors_sign::measure_reduction(&p, &geom_small, PaddingScheme::none());
        let (l_l, s_l) = fors_sign::measure_reduction(&p, &geom_large, PaddingScheme::none());
        // More concurrent trees → at least as many transactions per round.
        prop_assert!(l_l.transactions + s_l.transactions >= l_s.transactions + s_s.transactions);
    }

    #[test]
    fn descriptors_always_resident_and_finite(p in arb_params(), messages in 1u32..2048) {
        let device = rtx_4090();
        let engine = HeroSigner::hero(device.clone(), p).unwrap();
        for desc in engine.kernel_descs(messages) {
            let occ = hero_gpu_sim::occupancy::occupancy(&device, &desc.block);
            prop_assert!(occ.blocks_per_sm >= 1, "{:?}", desc.block);
            let report = hero_gpu_sim::engine::simulate_kernel(&device, &desc);
            prop_assert!(report.time_us.is_finite() && report.time_us > 0.0);
        }
    }

    #[test]
    fn hero_beats_baseline_for_any_fors_shape(p in arb_params()) {
        let device = rtx_4090();
        let base = HeroSigner::baseline(device.clone(), p).unwrap().kernel_reports(256)[0].time_us;
        let hero = HeroSigner::hero(device.clone(), p).unwrap().kernel_reports(256)[0].time_us;
        prop_assert!(hero <= base * 1.05, "hero {hero} vs base {base} for {p:?}");
    }

    #[test]
    fn ablation_first_and_last_bracket_all_steps(msgs in 64u32..1024) {
        let device = rtx_4090();
        let p = Params::sphincs_128f();
        let ladder = OptConfig::ablation_ladder();
        let times: Vec<f64> = ladder
            .iter()
            .map(|(_, cfg)| {
                HeroSigner::builder(device.clone(), p).config(*cfg).build().unwrap().kernel_reports(msgs)[0].time_us
            })
            .collect();
        let first = times[0];
        let last = *times.last().unwrap();
        for (i, t) in times.iter().enumerate() {
            prop_assert!(*t <= first * 1.01, "step {i} slower than baseline");
            prop_assert!(*t >= last * 0.99, "step {i} faster than full HERO");
        }
    }

    #[test]
    fn kernel_config_padding_reduces_or_keeps_time(p in arb_params()) {
        let device = rtx_4090();
        let engine = HeroSigner::hero(device.clone(), p).unwrap();
        let layout = engine.fors_layout();
        let mut cfg = KernelConfig::hero(hero_gpu_sim::isa::Sha2Path::Ptx);
        cfg.padding = false;
        let unpadded = fors_sign::describe(&device, &p, 256, &layout, &cfg);
        cfg.padding = true;
        let padded = fors_sign::describe(&device, &p, 256, &layout, &cfg);
        prop_assert!(padded.smem_conflicts <= unpadded.smem_conflicts);
    }
}
