//! Mixed-workload service tests: sign and verify clients sharing one
//! [`SignService`] — the two lanes coalesce independently on the same
//! engine, every request is answered exactly once, verify verdicts
//! match the sequential oracle, and shutdown under load drops nothing
//! on either lane.

use hero_gpu_sim::device::rtx_4090;
use hero_sign::service::{ServiceConfig, ServiceError, SignService};
use hero_sign::{HeroSigner, VerifyOutcome};
use hero_sphincs::params::Params;
use hero_sphincs::sign::keygen_from_seeds;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn tiny_params() -> Params {
    let mut p = Params::sphincs_128f();
    p.h = 6;
    p.d = 3;
    p.log_t = 4;
    p.k = 8;
    p
}

fn deterministic_key(params: Params) -> (hero_sphincs::SigningKey, hero_sphincs::VerifyingKey) {
    let n = params.n;
    keygen_from_seeds(
        params,
        (0..n as u8).collect(),
        (30..30 + n as u8).collect(),
        (90..90 + n as u8).collect(),
    )
}

fn msg_for(client: usize, iter: usize) -> Vec<u8> {
    format!("mixed client {client} message {iter}").into_bytes()
}

#[test]
fn eight_sign_and_eight_verify_clients_share_one_service() {
    const SIGN_CLIENTS: usize = 8;
    const VERIFY_CLIENTS: usize = 8;
    const PER_CLIENT: usize = 4;

    let params = tiny_params();
    let (sk, vk) = deterministic_key(params);
    let engine = Arc::new(
        HeroSigner::builder(rtx_4090(), params)
            .workers(4)
            .build()
            .unwrap(),
    );
    let service = Arc::new(
        SignService::start(
            engine,
            sk.clone(),
            ServiceConfig {
                max_batch: 16,
                max_wait: Duration::from_millis(2),
                queue_depth: 64,
            },
        )
        .unwrap(),
    );

    // The verify clients' fixtures, oracle-checked up front: a third of
    // the signatures are corrupted somewhere (randomizer, FORS secret
    // element, hypertree auth path) and must come back Invalid.
    let fixtures: Vec<Vec<(Vec<u8>, hero_sphincs::Signature, VerifyOutcome)>> = (0..VERIFY_CLIENTS)
        .map(|c| {
            (0..PER_CLIENT)
                .map(|i| {
                    let msg = msg_for(100 + c, i);
                    let mut sig = sk.sign(&msg);
                    match (c + i) % 3 {
                        1 => sig.randomizer[0] ^= 1,
                        2 => sig.fors.trees[0].sk[0] ^= 0x80,
                        _ => {}
                    }
                    let expected = VerifyOutcome::from_result(vk.verify(&msg, &sig));
                    (msg, sig, expected)
                })
                .collect()
        })
        .collect();

    std::thread::scope(|scope| {
        for t in 0..SIGN_CLIENTS {
            let service = Arc::clone(&service);
            let (sk, vk) = (&sk, &vk);
            scope.spawn(move || {
                for i in 0..PER_CLIENT {
                    let msg = msg_for(t, i);
                    let sig = service.submit(msg.clone()).unwrap().wait().unwrap();
                    assert_eq!(sig, sk.sign(&msg), "sign client {t} msg {i}");
                    vk.verify(&msg, &sig).unwrap();
                }
            });
        }
        for (c, items) in fixtures.iter().enumerate() {
            let service = Arc::clone(&service);
            scope.spawn(move || {
                for (i, (msg, sig, expected)) in items.iter().enumerate() {
                    let outcome = service
                        .submit_verify(msg.clone(), sig.clone())
                        .unwrap()
                        .wait()
                        .unwrap();
                    assert_eq!(&outcome, expected, "verify client {c} item {i}");
                }
            });
        }
    });

    let stats = service.stats();
    assert_eq!(stats.submitted, (SIGN_CLIENTS * PER_CLIENT) as u64);
    assert_eq!(stats.completed, stats.submitted, "sign lane exactly-once");
    assert_eq!(stats.verify_submitted, (VERIFY_CLIENTS * PER_CLIENT) as u64);
    assert_eq!(
        stats.verify_completed, stats.verify_submitted,
        "verify lane exactly-once"
    );
    // Both lanes ran; concurrent verify clients must coalesce into
    // fewer executor trips than items (the point of the lane).
    assert!(stats.batches >= 1);
    assert!(
        stats.verify_batches < stats.verify_submitted,
        "verify batches {} vs items {}",
        stats.verify_batches,
        stats.verify_submitted
    );
    service.shutdown();
}

#[test]
fn shutdown_under_mixed_load_drops_nothing_on_either_lane() {
    const CLIENTS: usize = 4; // of each kind

    let params = tiny_params();
    let (sk, vk) = deterministic_key(params);
    let engine = Arc::new(
        HeroSigner::builder(rtx_4090(), params)
            .workers(2)
            .build()
            .unwrap(),
    );
    let service = Arc::new(
        SignService::start(
            engine,
            sk.clone(),
            ServiceConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(1),
                queue_depth: 256,
            },
        )
        .unwrap(),
    );

    // One reusable verify fixture per client (signing inside the loop
    // would slow submission below the shutdown window).
    let fixtures: Vec<(Vec<u8>, hero_sphincs::Signature)> = (0..CLIENTS)
        .map(|c| {
            let msg = msg_for(200 + c, 0);
            let sig = sk.sign(&msg);
            (msg, sig)
        })
        .collect();

    let sign_accepted = AtomicUsize::new(0);
    let sign_answered = AtomicUsize::new(0);
    let verify_accepted = AtomicUsize::new(0);
    let verify_answered = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..CLIENTS {
            let service = Arc::clone(&service);
            let (sign_accepted, sign_answered, vk) = (&sign_accepted, &sign_answered, &vk);
            scope.spawn(move || {
                for i in 0..64usize {
                    let msg = msg_for(t, i);
                    match service.submit(msg.clone()) {
                        Ok(ticket) => {
                            sign_accepted.fetch_add(1, Ordering::Relaxed);
                            let sig = ticket.wait().expect("accepted sign answered");
                            vk.verify(&msg, &sig).unwrap();
                            sign_answered.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServiceError::ShuttingDown) => break,
                        Err(e) => panic!("unexpected sign error: {e}"),
                    }
                }
            });
        }
        for (t, (msg, sig)) in fixtures.iter().enumerate() {
            let service = Arc::clone(&service);
            let (verify_accepted, verify_answered) = (&verify_accepted, &verify_answered);
            scope.spawn(move || {
                for _ in 0..64usize {
                    match service.submit_verify(msg.clone(), sig.clone()) {
                        Ok(ticket) => {
                            verify_accepted.fetch_add(1, Ordering::Relaxed);
                            let outcome = ticket.wait().expect("accepted verify answered");
                            assert!(outcome.is_valid(), "client {t}: oracle signature rejected");
                            verify_answered.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServiceError::ShuttingDown) => break,
                        Err(e) => panic!("unexpected verify error: {e}"),
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_millis(5));
        service.shutdown();
    });

    let stats = service.stats();
    assert_eq!(
        sign_answered.load(Ordering::Relaxed),
        sign_accepted.load(Ordering::Relaxed),
        "every accepted sign answered exactly once"
    );
    assert_eq!(
        verify_answered.load(Ordering::Relaxed),
        verify_accepted.load(Ordering::Relaxed),
        "every accepted verify answered exactly once"
    );
    assert_eq!(
        stats.submitted,
        sign_accepted.load(Ordering::Relaxed) as u64
    );
    assert_eq!(stats.completed, stats.submitted);
    assert_eq!(
        stats.verify_submitted,
        verify_accepted.load(Ordering::Relaxed) as u64
    );
    assert_eq!(stats.verify_completed, stats.verify_submitted);
    assert!(
        verify_answered.load(Ordering::Relaxed) >= 1,
        "the load phase must have verified something for the test to mean anything"
    );
}
