//! Fault-injected worker deaths, end to end through the signing engine.
//!
//! The self-healing contract under test: killing k of n workers
//! mid-graph (via the `executor.worker.claim` fault point) never loses
//! a submission — the graph completes, the pool heals back to n, and
//! everything signed during *and after* the chaos is byte-identical to
//! the sequential reference oracle.

use hero_gpu_sim::device::rtx_4090;
use hero_sign::faults::{self, FaultAction, FaultPlan, FaultSpec};
use hero_sign::HeroSigner;
use hero_sphincs::params::Params;
use hero_sphincs::sign::keygen_from_seeds;

use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The fault plan is process-global; tests in this binary serialize on
/// this lock so one test's schedule never leaks into another.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn tiny_params() -> Params {
    let mut p = Params::sphincs_128f();
    p.h = 6;
    p.d = 3;
    p.log_t = 4;
    p.k = 8;
    p
}

fn deterministic_key(params: Params) -> (hero_sphincs::SigningKey, hero_sphincs::VerifyingKey) {
    let n = params.n;
    keygen_from_seeds(
        params,
        (0..n as u8).collect(),
        (60..60 + n as u8).collect(),
        (120..120 + n as u8).collect(),
    )
}

/// Polls until the pool is back to `want` live workers (respawn runs on
/// the dying thread's unwind path, so it is visible only eventually).
fn wait_for_pool(runtime: &hero_task_graph::Executor, want: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while runtime.alive_workers() != want {
        assert!(
            Instant::now() < deadline,
            "pool stuck at {} of {want} workers",
            runtime.alive_workers()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn killed_workers_respawn_and_bytes_stay_oracle_identical() {
    let _guard = lock();
    const WORKERS: usize = 4;
    const DEATHS: u64 = 2;

    let params = tiny_params();
    let (sk, vk) = deterministic_key(params);
    let engine = HeroSigner::builder(rtx_4090(), params)
        .workers(WORKERS)
        .build()
        .unwrap();

    let msgs: Vec<Vec<u8>> = (0..8)
        .map(|i| format!("chaos executor message {i}").into_bytes())
        .collect();
    // Sequential oracle on the reference path, computed before any
    // fault is armed.
    let oracle: Vec<hero_sphincs::Signature> = msgs.iter().map(|m| sk.sign(m)).collect();

    // Kill exactly DEATHS workers at the claim point: probability 1
    // fires on the first evaluations, max_fires caps the damage.
    faults::install(FaultPlan {
        seed: 0xC0FFEE,
        specs: vec![FaultSpec {
            point: faults::EXECUTOR_WORKER_CLAIM.to_string(),
            probability: 1.0,
            max_fires: Some(DEATHS),
            action: FaultAction::Fail,
        }],
    });

    // Every graph submitted while workers are dying still completes,
    // with oracle-identical bytes.
    for (msg, want) in msgs.iter().zip(&oracle).take(4) {
        let sig = engine.sign(&sk, msg).unwrap();
        assert_eq!(&sig, want, "signature diverged during chaos");
    }
    let deaths = faults::fired(faults::EXECUTOR_WORKER_CLAIM);
    faults::clear();
    assert_eq!(deaths, DEATHS, "the fault schedule should have fired out");

    // The pool heals back to full strength and remembers the toll.
    wait_for_pool(engine.runtime(), WORKERS);
    assert_eq!(engine.runtime().respawned_workers(), DEATHS);
    assert_eq!(engine.workers(), WORKERS);

    // Post-chaos submissions are byte-identical to the oracle too —
    // respawned workers share the same deterministic pipeline.
    for (msg, want) in msgs.iter().zip(&oracle).skip(4) {
        let sig = engine.sign(&sk, msg).unwrap();
        assert_eq!(&sig, want, "signature diverged after recovery");
    }
    let results = vk_verify_all(&vk, &msgs, &oracle);
    assert!(results, "oracle signatures must verify");
}

fn vk_verify_all(
    vk: &hero_sphincs::VerifyingKey,
    msgs: &[Vec<u8>],
    sigs: &[hero_sphincs::Signature],
) -> bool {
    msgs.iter().zip(sigs).all(|(m, s)| vk.verify(m, s).is_ok())
}

#[test]
fn plan_stage_fault_fails_one_submission_typed_not_the_engine() {
    let _guard = lock();
    let params = tiny_params();
    let (sk, _vk) = deterministic_key(params);
    let engine = HeroSigner::builder(rtx_4090(), params)
        .workers(2)
        .build()
        .unwrap();
    let msg = b"plan stage chaos".to_vec();
    let oracle = sk.sign(&msg);

    // A plan-stage fail panics one node, poisoning only that
    // submission; at the raw engine level the panic re-raises on the
    // submitting thread (the service layer is what types it), so catch
    // it here. The engine and its pool must keep serving regardless.
    faults::install(FaultPlan {
        seed: 7,
        specs: vec![FaultSpec {
            point: faults::PLAN_STAGE.to_string(),
            probability: 1.0,
            max_fires: Some(1),
            action: FaultAction::Fail,
        }],
    });
    let poisoned =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.sign(&sk, &msg)));
    faults::clear();
    assert!(
        poisoned.is_err(),
        "the poisoned submission must re-raise the injected panic"
    );

    // Same engine, same message, clean bytes afterwards.
    wait_for_pool(engine.runtime(), 2);
    let sig = engine.sign(&sk, &msg).unwrap();
    assert_eq!(sig, oracle);
}
