//! The process-wide tuning cache must amortize the Auto Tree Tuning
//! search across engine constructions.
//!
//! Kept as its own integration-test binary: the cache counters are
//! process-global, and this is the only test in the process, so the
//! hit/miss deltas below are exact.

use hero_gpu_sim::device::rtx_4090;
use hero_sign::{tuning_cache_stats, HeroSigner, TuningOptions};
use hero_sphincs::params::Params;

#[test]
fn constructing_the_same_engine_twice_runs_the_search_once() {
    // A key no other construction in this process uses: a non-default α
    // close enough to the paper's 0.6 to keep Table IV's winner.
    let opts = TuningOptions {
        alpha: 0.612_345,
        ..TuningOptions::default()
    };
    let device = rtx_4090();
    let params = Params::sphincs_128f();

    let before = tuning_cache_stats();
    let first = HeroSigner::builder(device.clone(), params)
        .tuning_options(opts)
        .build()
        .unwrap();
    let after_first = tuning_cache_stats();
    assert_eq!(
        after_first.misses - before.misses,
        1,
        "first build must run the search"
    );
    assert_eq!(after_first.hits, before.hits, "nothing to hit yet");

    let second = HeroSigner::builder(device.clone(), params)
        .tuning_options(opts)
        .build()
        .unwrap();
    let after_second = tuning_cache_stats();
    assert_eq!(
        after_second.misses, after_first.misses,
        "second build must not search again"
    );
    assert_eq!(
        after_second.hits - after_first.hits,
        1,
        "second build must hit the cache"
    );

    // Cached and fresh results are identical.
    assert_eq!(first.tuning().unwrap().best, second.tuning().unwrap().best);

    // A different key (another parameter set) is a genuine miss, not a
    // false hit.
    let other = HeroSigner::builder(device.clone(), Params::sphincs_192f())
        .tuning_options(opts)
        .build()
        .unwrap();
    let after_other = tuning_cache_stats();
    assert_eq!(after_other.misses - after_second.misses, 1);
    assert_ne!(
        first.tuning().unwrap().best.trees_per_set,
        other.tuning().unwrap().best.trees_per_set
    );

    // Devices participate in the key: mutating any resource field (as
    // the cross-architecture rigs do) must not alias the cached entry.
    let mut bigger = device.clone();
    bigger.smem_static_per_block *= 2;
    bigger.smem_per_sm *= 2;
    let _ = HeroSigner::builder(bigger, params)
        .tuning_options(opts)
        .build()
        .unwrap();
    let after_device = tuning_cache_stats();
    assert_eq!(after_device.misses - after_other.misses, 1);

    // Opting out of the cache always searches.
    let _ = HeroSigner::builder(device.clone(), params)
        .tuning_options(opts)
        .no_tuning_cache()
        .build()
        .unwrap();
    let after_nocache = tuning_cache_stats();
    assert_eq!(
        after_nocache.hits, after_device.hits,
        "no_tuning_cache must bypass lookups"
    );
}
