//! Property tests pinning the hypertree-memoized signing path
//! byte-identical to the cold path and the scalar reference signer.
//!
//! The cache only retains subtree node pyramids that are *functions of
//! the key* — every byte a warm sign emits must therefore match a cold
//! sign and `SigningKey::sign` exactly, across parameter families, hash
//! primitives, and worker counts. A second, deterministic test pins the
//! LRU capacity bound: filling capacity + 1 keys evicts exactly one
//! (the least-recently-used) key, and re-signing with the evicted key
//! still produces oracle bytes (eviction degrades to cold cost, never
//! to wrong output).

use hero_gpu_sim::device::rtx_4090;
use hero_sign::{CacheConfig, HeroSigner};
use hero_sphincs::hash::HashAlg;
use hero_sphincs::params::Params;
use hero_sphincs::sign::keygen_from_seeds_with_alg;
use proptest::prelude::*;

/// Reduced shapes, one per paper parameter family named by the issue
/// (128f/128s/192f): each keeps its family's `n` and `w`, which drive
/// the hash-path differences the cache must be transparent to.
fn reduced_sets() -> [Params; 3] {
    let mut p128f = Params::sphincs_128f();
    p128f.h = 6;
    p128f.d = 3;
    p128f.log_t = 4;
    p128f.k = 8;

    let mut p128s = Params::sphincs_128s();
    p128s.h = 8;
    p128s.d = 2;
    p128s.log_t = 5;
    p128s.k = 10;

    let mut p192f = Params::sphincs_192f();
    p192f.h = 6;
    p192f.d = 3;
    p192f.log_t = 4;
    p192f.k = 8;

    [p128f, p128s, p192f]
}

fn key_for(params: Params, alg: HashAlg, seed_byte: u8) -> hero_sphincs::SigningKey {
    let n = params.n;
    let (sk, _) = keygen_from_seeds_with_alg(
        params,
        alg,
        (0..n as u8).map(|b| b ^ seed_byte).collect(),
        (50..50 + n as u8).collect(),
        (100..100 + n as u8).collect(),
    );
    sk
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Cold (cache disabled), filling (first pass on a fresh cache),
    /// and warm (second pass, upper layers resident) signing all emit
    /// the scalar reference bytes, for every family × hash primitive ×
    /// worker count the issue names.
    #[test]
    fn warm_signing_is_byte_identical_to_cold_and_oracle(
        set_idx in 0usize..3,
        alg_idx in 0usize..2,
        workers_idx in 0usize..2,
        batch in 1usize..=5,
        payload in proptest::collection::vec(any::<u8>(), 1..32),
    ) {
        let params = reduced_sets()[set_idx];
        let alg = [HashAlg::Sha256, HashAlg::Shake256][alg_idx];
        let workers = [1usize, 8][workers_idx];
        let sk = key_for(params, alg, set_idx as u8 ^ (alg_idx as u8) << 4);

        let cold_engine = HeroSigner::builder(rtx_4090(), params)
            .workers(workers)
            .cache_config(CacheConfig::disabled())
            .build()
            .unwrap();
        let cached_engine = HeroSigner::builder(rtx_4090(), params)
            .workers(workers)
            .build()
            .unwrap();

        let msgs_owned: Vec<Vec<u8>> = (0..batch)
            .map(|i| {
                let mut m = payload.clone();
                m.push(i as u8);
                m
            })
            .collect();
        let msgs: Vec<&[u8]> = msgs_owned.iter().map(Vec::as_slice).collect();

        let cold = cold_engine.sign_batch(&sk, &msgs).unwrap();
        let filling = cached_engine.sign_batch(&sk, &msgs).unwrap();
        let warm = cached_engine.sign_batch(&sk, &msgs).unwrap();
        let stats = cached_engine.cache_stats();
        prop_assert!(stats.hits > 0, "second pass must hit: {stats:?}");

        for (i, msg) in msgs.iter().enumerate() {
            let oracle = sk.sign(msg);
            prop_assert_eq!(
                &cold[i], &oracle,
                "cold: set={} alg={:?} workers={} slot={}",
                params.name(), alg, workers, i
            );
            prop_assert_eq!(
                &filling[i], &oracle,
                "fill: set={} alg={:?} workers={} slot={}",
                params.name(), alg, workers, i
            );
            prop_assert_eq!(
                &warm[i], &oracle,
                "warm: set={} alg={:?} workers={} slot={}",
                params.name(), alg, workers, i
            );
        }
    }
}

/// Capacity `k`, touch `k + 1` keys: exactly one (LRU) key is evicted,
/// and the evicted key re-signs to oracle bytes afterwards.
#[test]
fn lru_bound_evicts_exactly_one_key_and_resigns_correctly() {
    let params = reduced_sets()[0];
    let capacity = 3usize;
    let engine = HeroSigner::builder(rtx_4090(), params)
        .workers(4)
        .cache_config(CacheConfig {
            max_keys: capacity,
            ..CacheConfig::default()
        })
        .build()
        .unwrap();
    let keys: Vec<_> = (0..=capacity)
        .map(|i| key_for(params, HashAlg::Sha256, 0x20 + i as u8))
        .collect();

    for key in &keys[..capacity] {
        assert!(engine.warm_key(key).unwrap() > 0);
    }
    let full = engine.cache_stats();
    assert_eq!(full.evictions, 0, "{full:?}");
    assert_eq!(full.resident_keys, capacity as u64, "{full:?}");

    // Touch key 0 so key 1 becomes the least recently used.
    let sig0 = engine.sign(&keys[0], b"recency touch").unwrap();
    assert_eq!(sig0, keys[0].sign(b"recency touch"));

    // A (capacity + 1)-th key forces out exactly the LRU key.
    assert!(engine.warm_key(&keys[capacity]).unwrap() > 0);
    let after = engine.cache_stats();
    assert_eq!(after.evictions, 1, "{after:?}");
    assert_eq!(after.resident_keys, capacity as u64, "{after:?}");

    // The evicted key degrades to cold cost, never to wrong bytes (and
    // its refill pushes out another LRU key to hold the bound).
    let resigned = engine.sign(&keys[1], b"after eviction").unwrap();
    assert_eq!(resigned, keys[1].sign(b"after eviction"));
    assert_eq!(engine.cache_stats().resident_keys, capacity as u64);
}
