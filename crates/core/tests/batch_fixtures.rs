//! The pre-refactor signature fixtures, replayed through the batch
//! planner.
//!
//! The pinned digests below are the seed-era fixtures of
//! `crates/sphincs/tests/fixtures.rs` (captured from the pre-batching
//! scalar implementation and already survived the PR 2 multi-lane
//! refactor). Here the same deterministic keys sign the same message
//! through `HeroSigner::sign_batch` — the planned cross-message path —
//! and every signature in the batch must serialize to the very same
//! pinned digest.

use hero_gpu_sim::device::rtx_4090;
use hero_sign::HeroSigner;
use hero_sphincs::hash::HashAlg;
use hero_sphincs::params::Params;
use hero_sphincs::sha256::Sha256;
use hero_sphincs::sign::keygen_from_seeds_with_alg;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn tiny(mut p: Params) -> Params {
    p.h = 6;
    p.d = 3;
    p.log_t = 4;
    p.k = 8;
    p
}

#[test]
fn planned_batches_reproduce_seed_era_fixtures() {
    // (label, params, alg, pinned sig digest) — digests shared with
    // crates/sphincs/tests/fixtures.rs.
    let cases: [(&str, Params, HashAlg, &str); 4] = [
        (
            "tiny-128/sha256",
            tiny(Params::sphincs_128f()),
            HashAlg::Sha256,
            "27ddf7ae9592344331ddb61d129e0690c533cffccf348c940984865556cfd578",
        ),
        (
            "tiny-192/sha256",
            tiny(Params::sphincs_192f()),
            HashAlg::Sha256,
            "98969ee70ac94d74bbcfe3b2c1bfbd22a8a79159cf8c6ec2b5e2d85941701afc",
        ),
        (
            "tiny-256/sha256",
            tiny(Params::sphincs_256f()),
            HashAlg::Sha256,
            "28482bbf1e61dc01c687768b478dfd885ed07b62d21d10dab2f3dc67d106c7e3",
        ),
        (
            "tiny-128/sha512",
            tiny(Params::sphincs_128f()),
            HashAlg::Sha512,
            "39bde7badd3751737b6c128f1029fc37e32f79356f842bff614761ca5a9cb670",
        ),
    ];

    let msg = b"seed-era fixture message";
    for (label, params, alg, sig_expected) in cases {
        let n = params.n;
        let (sk, vk) = keygen_from_seeds_with_alg(
            params,
            alg,
            (0..n as u8).collect(),
            (100..100 + n as u8).collect(),
            (200..200 + n as u8).collect(),
        );
        let engine = HeroSigner::builder(rtx_4090(), params)
            .workers(4)
            .build()
            .unwrap();

        // Batch of three copies: the planner must produce the pinned
        // bytes for every slot, with cross-message groups in play.
        let msgs: Vec<&[u8]> = vec![msg, msg, msg];
        let sigs = engine.sign_batch(&sk, &msgs).unwrap();
        assert_eq!(sigs.len(), 3, "{label}");
        for (slot, sig) in sigs.iter().enumerate() {
            assert_eq!(
                hex(&Sha256::digest(&sig.to_bytes(&params))),
                sig_expected,
                "{label}: planned signature drifted from the seed-era \
                 fixture (slot {slot})"
            );
            vk.verify(msg, sig).unwrap();
        }
    }
}
