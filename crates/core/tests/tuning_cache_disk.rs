//! The on-disk tuning cache must survive process restarts (simulated
//! here by clearing the in-memory layer), reject corrupt and
//! version-bumped entries, and never change tuning results.
//!
//! Kept as its own integration-test binary with a single `#[test]`: the
//! cache counters are process-global, so exact hit/miss/disk-hit deltas
//! need a process to themselves.

use hero_gpu_sim::device::rtx_4090;
use hero_sign::tuning::clear_tuning_cache;
use hero_sign::{
    tuning_cache_disk_path, tuning_cache_stats, HeroSigner, TuningOptions,
    TUNING_CACHE_DISK_VERSION,
};
use hero_sphincs::params::Params;

#[test]
fn disk_cache_round_trip_corruption_and_version_bump() {
    let dir = std::env::temp_dir().join(format!("hero-tune-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // A key no other test in this process uses.
    let opts = TuningOptions {
        alpha: 0.617_283,
        ..TuningOptions::default()
    };
    let device = rtx_4090();
    let params = Params::sphincs_128f();
    let entry = tuning_cache_disk_path(&dir, &device, &params, &opts);
    assert!(
        entry
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .contains(&format!("v{TUNING_CACHE_DISK_VERSION}")),
        "entry files are version-stamped: {entry:?}"
    );

    let build = || {
        HeroSigner::builder(device.clone(), params)
            .tuning_options(opts)
            .tuning_cache_dir(&dir)
            .build()
            .unwrap()
    };

    // 1. Cold everything: the search runs (miss) and persists its result.
    let before = tuning_cache_stats();
    let first = build();
    let after_first = tuning_cache_stats();
    assert_eq!(after_first.misses - before.misses, 1, "cold build searches");
    assert_eq!(after_first.disk_hits, before.disk_hits);
    assert!(entry.is_file(), "search result persisted to {entry:?}");

    // 2. "Restart" (in-memory cache cleared): the disk entry answers the
    //    lookup — no search, identical result.
    clear_tuning_cache();
    let second = build();
    let after_second = tuning_cache_stats();
    assert_eq!(
        after_second.misses, after_first.misses,
        "restart must not re-run the sweep"
    );
    assert_eq!(
        after_second.disk_hits - after_first.disk_hits,
        1,
        "restart answers from disk"
    );
    assert_eq!(
        first.tuning().unwrap().best,
        second.tuning().unwrap().best,
        "disk round trip preserves the winner"
    );
    assert_eq!(
        first.tuning().unwrap().candidates,
        second.tuning().unwrap().candidates,
        "disk round trip preserves the full candidate ranking"
    );

    // 3. In-memory hits still short-circuit before the disk is touched.
    let _ = build();
    let after_third = tuning_cache_stats();
    assert_eq!(after_third.hits - after_second.hits, 1);
    assert_eq!(after_third.disk_hits, after_second.disk_hits);

    // 4. Corruption: garbage bytes fall back to the search (a fresh
    //    miss) and the entry is rewritten valid.
    std::fs::write(&entry, b"{ this is not a cache entry").unwrap();
    clear_tuning_cache();
    let fourth = build();
    let after_fourth = tuning_cache_stats();
    assert_eq!(
        after_fourth.misses - after_third.misses,
        1,
        "corrupt entry must re-search"
    );
    assert_eq!(fourth.tuning().unwrap().best, first.tuning().unwrap().best);
    clear_tuning_cache();
    let _ = build();
    assert_eq!(
        tuning_cache_stats().disk_hits - after_fourth.disk_hits,
        1,
        "rewritten entry loads again"
    );

    // 5. Version bump: an entry whose embedded version is stale is
    //    ignored even though it parses.
    let valid = std::fs::read_to_string(&entry).unwrap();
    let stale = valid.replace(
        &format!("\"version\": {TUNING_CACHE_DISK_VERSION}"),
        "\"version\": 0",
    );
    assert_ne!(valid, stale, "replacement must hit the version field");
    std::fs::write(&entry, stale).unwrap();
    clear_tuning_cache();
    let before_stale = tuning_cache_stats();
    let _ = build();
    let after_stale = tuning_cache_stats();
    assert_eq!(
        after_stale.misses - before_stale.misses,
        1,
        "version-bumped entry must re-search"
    );
    assert_eq!(after_stale.disk_hits, before_stale.disk_hits);

    // 6. Entries are key-exact: a different parameter set gets its own
    //    file, never a false share.
    let other = tuning_cache_disk_path(&dir, &device, &Params::sphincs_192f(), &opts);
    assert_ne!(entry, other);

    let _ = std::fs::remove_dir_all(&dir);
}
