//! Concurrency stress tests for the persistent runtime and the
//! micro-batching service: many threads, one engine, byte-identical
//! signatures, and lossless shutdown under load.

use hero_gpu_sim::device::rtx_4090;
use hero_sign::service::{ServiceConfig, ServiceError, SignService};
use hero_sign::HeroSigner;
use hero_sphincs::params::Params;
use hero_sphincs::sign::keygen_from_seeds;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn tiny_params() -> Params {
    let mut p = Params::sphincs_128f();
    p.h = 6;
    p.d = 3;
    p.log_t = 4;
    p.k = 8;
    p
}

fn deterministic_key(params: Params) -> (hero_sphincs::SigningKey, hero_sphincs::VerifyingKey) {
    let n = params.n;
    keygen_from_seeds(
        params,
        (0..n as u8).collect(),
        (60..60 + n as u8).collect(),
        (120..120 + n as u8).collect(),
    )
}

/// Message for (thread, iteration) — distinct digests per slot.
fn msg_for(thread: usize, iter: usize) -> Vec<u8> {
    format!("stress thread {thread} message {iter}").into_bytes()
}

#[test]
fn eight_threads_share_one_signer_byte_identically() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 4;

    let params = tiny_params();
    let (sk, vk) = deterministic_key(params);
    let engine = Arc::new(
        HeroSigner::builder(rtx_4090(), params)
            .workers(4)
            .build()
            .unwrap(),
    );

    // Sequential oracle, computed up front on the reference signer.
    let expected: Vec<Vec<hero_sphincs::Signature>> = (0..THREADS)
        .map(|t| (0..PER_THREAD).map(|i| sk.sign(&msg_for(t, i))).collect())
        .collect();

    // All eight threads hammer the same engine: every concurrent batch
    // plan interleaves with the others on the one shared runtime, and
    // every byte must still match the sequential oracle.
    let submissions = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let engine = Arc::clone(&engine);
            let (sk, expected) = (&sk, &expected);
            let submissions = Arc::clone(&submissions);
            scope.spawn(move || {
                for (i, oracle) in expected[t].iter().enumerate() {
                    let msg = msg_for(t, i);
                    // Mix single signs and small batches across threads.
                    let sig = if i % 2 == 0 {
                        engine.sign(sk, &msg).unwrap()
                    } else {
                        engine
                            .sign_batch(sk, &[msg.as_slice()])
                            .unwrap()
                            .pop()
                            .unwrap()
                    };
                    assert_eq!(&sig, oracle, "thread {t} msg {i}");
                    submissions.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(submissions.load(Ordering::Relaxed), THREADS * PER_THREAD);
    // One persistent pool served everything; nothing spun up per call.
    assert_eq!(engine.workers(), 4);
    assert!(engine.runtime().submissions() > 0);

    // Spot-check verification through the same shared runtime.
    let m0 = msg_for(0, 0);
    let results = engine
        .verify_batch(&vk, &[m0.as_slice()], &expected[0][..1])
        .unwrap();
    assert!(results[0].is_valid());
}

#[test]
fn eight_service_clients_get_sequential_bytes() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 4;

    let params = tiny_params();
    let (sk, vk) = deterministic_key(params);
    let engine = Arc::new(
        HeroSigner::builder(rtx_4090(), params)
            .workers(4)
            .build()
            .unwrap(),
    );
    let service = Arc::new(
        SignService::start(
            engine,
            sk.clone(),
            ServiceConfig {
                max_batch: 16,
                max_wait: Duration::from_millis(2),
                queue_depth: 64,
            },
        )
        .unwrap(),
    );

    std::thread::scope(|scope| {
        for t in 0..CLIENTS {
            let service = Arc::clone(&service);
            let (sk, vk) = (&sk, &vk);
            scope.spawn(move || {
                for i in 0..PER_CLIENT {
                    let msg = msg_for(t, i);
                    let sig = service.submit(msg.clone()).unwrap().wait().unwrap();
                    assert_eq!(sig, sk.sign(&msg), "client {t} msg {i}");
                    vk.verify(&msg, &sig).unwrap();
                }
            });
        }
    });

    let stats = service.stats();
    assert_eq!(stats.submitted, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(stats.completed, (CLIENTS * PER_CLIENT) as u64);
    // Concurrent clients must actually coalesce (the whole point of the
    // micro-batcher): strictly fewer batches than requests.
    assert!(
        stats.batches < stats.submitted,
        "batches {} vs requests {}",
        stats.batches,
        stats.submitted
    );
    assert!(stats.max_batch_observed >= 2);
}

#[test]
fn shutdown_under_load_drops_nothing_and_answers_once() {
    const CLIENTS: usize = 6;

    let params = tiny_params();
    let (sk, vk) = deterministic_key(params);
    let engine = Arc::new(
        HeroSigner::builder(rtx_4090(), params)
            .workers(2)
            .build()
            .unwrap(),
    );
    let service = Arc::new(
        SignService::start(
            engine,
            sk,
            ServiceConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(1),
                queue_depth: 256,
            },
        )
        .unwrap(),
    );

    // Clients submit as fast as they can until refused; main shuts the
    // service down mid-stream. Every *accepted* ticket must resolve to
    // exactly one valid signature (the per-ticket slot asserts
    // answered-exactly-once internally); refusals must all be
    // ShuttingDown.
    let answered = AtomicUsize::new(0);
    let refused = AtomicUsize::new(0);
    let accepted = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..CLIENTS {
            let service = Arc::clone(&service);
            let (answered, refused, accepted, vk) = (&answered, &refused, &accepted, &vk);
            scope.spawn(move || {
                for i in 0..64usize {
                    let msg = msg_for(t, i);
                    match service.submit(msg.clone()) {
                        Ok(ticket) => {
                            accepted.fetch_add(1, Ordering::Relaxed);
                            let sig = ticket.wait().expect("accepted requests are signed");
                            vk.verify(&msg, &sig).unwrap();
                            answered.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServiceError::ShuttingDown) => {
                            refused.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            });
        }
        // Let some traffic through, then pull the plug while clients are
        // still submitting.
        std::thread::sleep(Duration::from_millis(5));
        service.shutdown();
    });

    let stats = service.stats();
    assert_eq!(
        answered.load(Ordering::Relaxed),
        accepted.load(Ordering::Relaxed),
        "every accepted request must be answered exactly once"
    );
    assert_eq!(stats.submitted, accepted.load(Ordering::Relaxed) as u64);
    assert_eq!(
        stats.completed, stats.submitted,
        "drain must complete in-flight work"
    );
    assert!(
        answered.load(Ordering::Relaxed) >= 1,
        "the load phase must have signed something for the test to mean anything"
    );
}
