//! Property tests pinning the cross-message batch planner byte-identical
//! to sequential signing.
//!
//! The planner reorders and regroups *independent* hash calls only; every
//! signature byte must match the `hero-sphincs` reference signer
//! (`SigningKey::sign`) — the same oracle `HeroSigner::sign` has been
//! pinned against since the seed. Shapes cover all four widths the paper
//! names (128f/128s/192f/256f, reduced in h/d/log_t/k for test speed but
//! keeping each set's `n` and `w`, which drive the hash-path
//! differences), worker counts 1/4/8, and batch sizes 1–17 (odd sizes
//! exercise partial lane and group fill).

use hero_gpu_sim::device::rtx_4090;
use hero_sign::plan::{self, PlanShape};
use hero_sign::HeroSigner;
use hero_sphincs::hash::HashCtx;
use hero_sphincs::params::Params;
use hero_sphincs::sign::keygen_from_seeds;
use hero_task_graph::Executor;
use proptest::prelude::*;

/// Reduced shapes: one per paper parameter family. The -s member keeps a
/// taller subtree (h' = 4) and more FORS trees than its -f siblings, the
/// way the real -s sets trade signature size for tree depth.
fn reduced_sets() -> [Params; 4] {
    let mut p128f = Params::sphincs_128f();
    p128f.h = 6;
    p128f.d = 3;
    p128f.log_t = 4;
    p128f.k = 8;

    let mut p128s = Params::sphincs_128s();
    p128s.h = 8;
    p128s.d = 2;
    p128s.log_t = 5;
    p128s.k = 10;

    let mut p192f = Params::sphincs_192f();
    p192f.h = 6;
    p192f.d = 3;
    p192f.log_t = 4;
    p192f.k = 8;

    let mut p256f = Params::sphincs_256f();
    p256f.h = 6;
    p256f.d = 3;
    p256f.log_t = 4;
    p256f.k = 8;

    [p128f, p128s, p192f, p256f]
}

fn key_for(params: Params, seed_byte: u8) -> hero_sphincs::SigningKey {
    let n = params.n;
    let (sk, _) = keygen_from_seeds(
        params,
        (0..n as u8).map(|b| b ^ seed_byte).collect(),
        (50..50 + n as u8).collect(),
        (100..100 + n as u8).collect(),
    );
    sk
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Planner output == reference signer, any parameter family, any
    /// worker count, any batch size in 1..=17.
    #[test]
    fn planned_batch_is_byte_identical_to_sequential(
        set_idx in 0usize..4,
        workers_idx in 0usize..3,
        batch in 1usize..=17,
        payload in proptest::collection::vec(any::<u8>(), 1..48),
    ) {
        let params = reduced_sets()[set_idx];
        let workers = [1usize, 4, 8][workers_idx];
        let sk = key_for(params, set_idx as u8);
        let ctx = HashCtx::with_alg(params, sk.pk_seed(), sk.alg());

        let msgs_owned: Vec<Vec<u8>> = (0..batch)
            .map(|i| {
                let mut m = payload.clone();
                m.push(i as u8); // distinct digests per slot
                m
            })
            .collect();
        let msgs: Vec<&[u8]> = msgs_owned.iter().map(Vec::as_slice).collect();

        let exec = Executor::new(workers).unwrap();
        let planned = plan::sign_batch(&ctx, &sk, &msgs, &exec);
        prop_assert_eq!(planned.len(), batch);
        for (i, (msg, sig)) in msgs.iter().zip(&planned).enumerate() {
            let reference = sk.sign(msg);
            prop_assert_eq!(
                sig, &reference,
                "set={} workers={} batch={} slot={}",
                params.name(), workers, batch, i
            );
        }
    }

    /// The engine's public `sign_batch` (which hoists the hash context
    /// and routes through the planner) agrees with looping its own
    /// `sign`, and with the serialized reference bytes.
    #[test]
    fn engine_batch_equals_looped_sign(
        set_idx in 0usize..4,
        batch in 1usize..=7,
    ) {
        let params = reduced_sets()[set_idx];
        let sk = key_for(params, 0x5A ^ set_idx as u8);
        let engine = HeroSigner::builder(rtx_4090(), params)
            .workers(4)
            .build()
            .unwrap();

        let msgs_owned: Vec<Vec<u8>> = (0..batch).map(|i| vec![i as u8; 9]).collect();
        let msgs: Vec<&[u8]> = msgs_owned.iter().map(Vec::as_slice).collect();
        let batched = engine.sign_batch(&sk, &msgs).unwrap();
        for (msg, sig) in msgs.iter().zip(&batched) {
            let single = engine.sign(&sk, msg).unwrap();
            prop_assert_eq!(sig, &single);
            prop_assert_eq!(
                sig.to_bytes(&params),
                sk.sign(msg).to_bytes(&params)
            );
        }
    }

    /// Grouping is a pure scheduling choice: any shape produces the same
    /// bytes as the default.
    #[test]
    fn plan_shape_never_changes_bytes(
        fors_g in 1usize..=40,
        tree_g in 1usize..=12,
        chain_g in 1usize..=12,
        batch in 1usize..=5,
    ) {
        let params = reduced_sets()[0];
        let sk = key_for(params, 7);
        let ctx = HashCtx::with_alg(params, sk.pk_seed(), sk.alg());
        let msgs_owned: Vec<Vec<u8>> = (0..batch).map(|i| vec![0xC0 | i as u8; 5]).collect();
        let msgs: Vec<&[u8]> = msgs_owned.iter().map(Vec::as_slice).collect();
        let shape = PlanShape {
            fors_trees_per_item: fors_g,
            subtrees_per_item: tree_g,
            chains_per_item: chain_g,
        };
        let exec = Executor::new(4).unwrap();
        prop_assert_eq!(
            plan::sign_batch_shaped(&ctx, &sk, &msgs, &exec, &shape),
            plan::sign_batch(&ctx, &sk, &msgs, &exec),
            "{:?}", shape
        );
    }
}
