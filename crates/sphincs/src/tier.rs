//! Runtime ISA-tier selection for the hash cores — the dispatch ladder
//! behind [`crate::sha256::compress_x`] and [`crate::keccak::permute_x`].
//!
//! A 128f sign burns ~113k compressions, so the primitive core dominates
//! end-to-end signature throughput. Instead of consulting
//! `is_x86_feature_detected!` inside every multi-lane call, each
//! primitive resolves a [`HashTier`] **once per process** (a ladder walk
//! over what the host CPU supports, cached in an atomic; the feature
//! probes themselves run inside a `OnceLock`) and the hot paths read the
//! cached tier with a single relaxed load.
//!
//! ## The ladder
//!
//! Tiers are ordered best-first per primitive and per architecture:
//!
//! | primitive | x86-64 | aarch64 |
//! |---|---|---|
//! | SHA-256 | `sha-ni` → `avx512` → `avx2` → `scalar` | `neon` → `scalar` |
//! | Keccak-f\[1600\] | `avx512` → `avx2` → `scalar` | `neon` → `scalar` |
//!
//! SHA-NI outranks the 8-lane AVX-512 interleave for SHA-256 because the
//! dedicated rounds beat lane interleaving on real WOTS+ chains (short
//! dependent sequences leave lanes idle; the SHA extensions keep one
//! chain at full rate). SHA-NI is meaningless for Keccak, so requesting
//! it there resolves to the best Keccak tier instead.
//!
//! ## Overrides and fallback
//!
//! `HERO_HASH_TIER=<name>` pins both primitives to one requested tier.
//! An unknown name is a typed [`TierError`] listing the valid names
//! (surfaced eagerly by [`init_from_env`], which `hero serve` and the
//! benches call before touching the hot path); requesting a tier the
//! host CPU lacks — or one that does not apply to a primitive — **falls
//! back down the ladder with a logged warning, never undefined
//! behavior**: the resolved tier is always one whose required CPU
//! features were positively detected.
//!
//! ```
//! use hero_sphincs::tier::{self, HashTier};
//! // Whatever the host supports, the resolved tiers are supported ones.
//! assert!(tier::supported_sha256_tiers().contains(&tier::sha256_tier()));
//! assert!(tier::supported_keccak_tiers().contains(&tier::keccak_tier()));
//! // Unknown names are typed errors that list the ladder.
//! let err = HashTier::from_label("sse2").unwrap_err();
//! assert!(err.to_string().contains("scalar"));
//! ```

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Environment variable that pins the hash tier for both primitives.
pub const ENV_VAR: &str = "HERO_HASH_TIER";

/// One rung of the ISA ladder a hash core can execute on.
///
/// Variants are ordered worst-to-best in generic preference order; the
/// per-primitive ladders in this module decide what "best" means for
/// each core (SHA-NI outranks AVX-512 for SHA-256 and is skipped
/// entirely for Keccak).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum HashTier {
    /// Portable straight-line Rust, no SIMD requirements.
    Scalar = 0,
    /// Lane-interleaved code compiled for AVX2 (256-bit integer SIMD).
    Avx2 = 1,
    /// AVX-512F+VL: single-µop rotates (`vprold`/`vprolq`) and ternary
    /// logic (`vpternlog`) over the interleaved lanes.
    Avx512 = 2,
    /// x86 SHA extensions (`_mm_sha256rnds2`-based rounds). SHA-256
    /// only; resolves down the ladder for Keccak.
    ShaNi = 3,
    /// aarch64 Advanced SIMD; the SHA-256 path additionally requires
    /// the SHA2 crypto extension (`vsha256h`/`vsha256su` rounds).
    Neon = 4,
}

/// All tier labels, best-documented order (the order error messages and
/// usage text list them in). Mirrors `HashAlg::NAMES`.
pub const TIER_NAMES: [&str; 5] = ["scalar", "avx2", "avx512", "sha-ni", "neon"];

/// A typed error for an unrecognized tier name (satisfying the
/// `HERO_HASH_TIER` contract: unknown names never panic and never
/// silently misconfigure — they name every valid rung).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TierError {
    /// The name that failed to parse.
    pub name: String,
}

impl std::fmt::Display for TierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown hash tier '{}' (valid tiers: {})",
            self.name,
            TIER_NAMES.join(", ")
        )
    }
}

impl std::error::Error for TierError {}

impl std::fmt::Display for HashTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl HashTier {
    /// The canonical label — the inverse of [`HashTier::from_label`];
    /// used by the env override, the serve banner, the metrics page,
    /// and `BENCH_hot_path.json`.
    pub const fn label(self) -> &'static str {
        match self {
            HashTier::Scalar => "scalar",
            HashTier::Avx2 => "avx2",
            HashTier::Avx512 => "avx512",
            HashTier::ShaNi => "sha-ni",
            HashTier::Neon => "neon",
        }
    }

    /// Parses a label (case-insensitive; `sha-ni`/`shani`/`sha_ni` all
    /// accepted). Unknown names are a typed [`TierError`] listing every
    /// valid tier.
    ///
    /// ```
    /// use hero_sphincs::tier::HashTier;
    /// assert_eq!(HashTier::from_label("SHA-NI"), Ok(HashTier::ShaNi));
    /// assert!(HashTier::from_label("mmx").is_err());
    /// ```
    pub fn from_label(label: &str) -> Result<Self, TierError> {
        match label.trim().to_ascii_lowercase().as_str() {
            "scalar" => Ok(HashTier::Scalar),
            "avx2" => Ok(HashTier::Avx2),
            "avx512" | "avx-512" => Ok(HashTier::Avx512),
            "sha-ni" | "shani" | "sha_ni" => Ok(HashTier::ShaNi),
            "neon" => Ok(HashTier::Neon),
            other => Err(TierError {
                name: other.to_string(),
            }),
        }
    }

    fn from_repr(v: u8) -> Option<Self> {
        match v {
            0 => Some(HashTier::Scalar),
            1 => Some(HashTier::Avx2),
            2 => Some(HashTier::Avx512),
            3 => Some(HashTier::ShaNi),
            4 => Some(HashTier::Neon),
            _ => None,
        }
    }
}

/// Which hash core a ladder decision is for (the two primitives have
/// different ladders — SHA-NI only exists for SHA-256).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Primitive {
    /// The SHA-256 compression core ([`crate::sha256`]).
    Sha256,
    /// The Keccak-f\[1600\] permutation core ([`crate::keccak`]).
    Keccak,
}

/// The ladder for `primitive` on this architecture, best tier first.
/// Always ends in [`HashTier::Scalar`].
pub fn ladder(primitive: Primitive) -> &'static [HashTier] {
    #[cfg(target_arch = "x86_64")]
    {
        match primitive {
            Primitive::Sha256 => &[
                HashTier::ShaNi,
                HashTier::Avx512,
                HashTier::Avx2,
                HashTier::Scalar,
            ],
            Primitive::Keccak => &[HashTier::Avx512, HashTier::Avx2, HashTier::Scalar],
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        let _ = primitive;
        &[HashTier::Neon, HashTier::Scalar]
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        let _ = primitive;
        &[HashTier::Scalar]
    }
}

/// Whether the host CPU can execute `tier` for `primitive`.
///
/// This is the positive-detection gate every resolved tier passes
/// through: a tier this returns `false` for is never dispatched, so the
/// `#[target_feature]` cores below it are never reached on a CPU that
/// lacks them.
pub fn supported(primitive: Primitive, tier: HashTier) -> bool {
    match tier {
        HashTier::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        HashTier::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
        #[cfg(target_arch = "x86_64")]
        HashTier::Avx512 => {
            std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512vl")
        }
        #[cfg(target_arch = "x86_64")]
        HashTier::ShaNi => {
            primitive == Primitive::Sha256
                && std::arch::is_x86_feature_detected!("sha")
                && std::arch::is_x86_feature_detected!("ssse3")
                && std::arch::is_x86_feature_detected!("sse4.1")
        }
        #[cfg(target_arch = "aarch64")]
        HashTier::Neon => match primitive {
            // The Keccak path needs only Advanced SIMD (mandatory on
            // aarch64); the SHA-256 path needs the crypto extension.
            Primitive::Keccak => true,
            Primitive::Sha256 => std::arch::is_aarch64_feature_detected!("sha2"),
        },
        #[allow(unreachable_patterns)]
        _ => false,
    }
}

/// Every tier of `primitive`'s ladder the host supports, best first
/// (always non-empty: scalar is universal). This is what the per-tier
/// identity tests and `bench_hot_path`'s per-tier sections iterate.
pub fn supported_tiers(primitive: Primitive) -> Vec<HashTier> {
    ladder(primitive)
        .iter()
        .copied()
        .filter(|&t| supported(primitive, t))
        .collect()
}

/// [`supported_tiers`] for the SHA-256 core.
pub fn supported_sha256_tiers() -> Vec<HashTier> {
    supported_tiers(Primitive::Sha256)
}

/// [`supported_tiers`] for the Keccak core.
pub fn supported_keccak_tiers() -> Vec<HashTier> {
    supported_tiers(Primitive::Keccak)
}

/// Resolves a (possibly absent) requested tier for `primitive` against
/// the host: the request itself if the ladder contains it and the CPU
/// supports it, otherwise the best supported tier at or below the
/// request's rung — never an unsupported tier. Returns the resolved
/// tier and whether it differs from an explicit request (the caller
/// logs the fallback warning so resolution itself stays silent and
/// reusable).
fn resolve(primitive: Primitive, requested: Option<HashTier>) -> (HashTier, bool) {
    let rungs = ladder(primitive);
    match requested {
        Some(want) => {
            // Walk from the requested rung downward. A request absent
            // from this primitive's ladder (SHA-NI for Keccak, NEON on
            // x86) starts from the top: "the best this core has".
            let start = rungs.iter().position(|&t| t == want).unwrap_or(0);
            for &t in &rungs[start..] {
                if supported(primitive, t) {
                    return (t, t != want);
                }
            }
            (HashTier::Scalar, want != HashTier::Scalar)
        }
        None => {
            for &t in rungs {
                if supported(primitive, t) {
                    return (t, false);
                }
            }
            (HashTier::Scalar, false)
        }
    }
}

/// The parsed `HERO_HASH_TIER` request, read at most once per process.
/// `Some(Err(_))` remembers a malformed value so both the eager
/// ([`init_from_env`]) and lazy (first hash call) paths agree on it.
fn env_request() -> &'static Option<Result<HashTier, TierError>> {
    static ENV: OnceLock<Option<Result<HashTier, TierError>>> = OnceLock::new();
    ENV.get_or_init(|| {
        std::env::var(ENV_VAR)
            .ok()
            .map(|v| HashTier::from_label(&v))
    })
}

/// Sentinel for "not yet resolved" in the per-primitive active-tier
/// caches (no `HashTier` discriminant uses it).
const UNRESOLVED: u8 = u8::MAX;

static SHA256_ACTIVE: AtomicU8 = AtomicU8::new(UNRESOLVED);
static KECCAK_ACTIVE: AtomicU8 = AtomicU8::new(UNRESOLVED);

fn active_cell(primitive: Primitive) -> &'static AtomicU8 {
    match primitive {
        Primitive::Sha256 => &SHA256_ACTIVE,
        Primitive::Keccak => &KECCAK_ACTIVE,
    }
}

#[cold]
fn resolve_and_cache(primitive: Primitive) -> HashTier {
    let requested = match env_request() {
        Some(Ok(t)) => Some(*t),
        Some(Err(e)) => {
            // The lazy path cannot return an error; operators get the
            // typed error from `init_from_env` (serve/bench call it
            // eagerly). Here we warn once and auto-resolve — a typo
            // must never change bytes or crash a signer.
            warn_once(&format!("{ENV_VAR}: {e}; auto-detecting"));
            None
        }
        None => None,
    };
    let (tier, fell_back) = resolve(primitive, requested);
    if fell_back {
        if let Some(want) = requested {
            warn_once(&format!(
                "{ENV_VAR}={want} unavailable for {primitive:?} on this host; \
                 falling back to {tier}"
            ));
        }
    }
    active_cell(primitive).store(tier as u8, Ordering::Relaxed);
    tier
}

/// Warns on stderr, deduplicating repeats (both primitives resolving
/// under the same bad override should not double-print).
fn warn_once(msg: &str) {
    use std::sync::Mutex;
    static SEEN: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let mut seen = SEEN.lock().unwrap_or_else(|e| e.into_inner());
    if !seen.iter().any(|m| m == msg) {
        eprintln!("hero-sphincs: {msg}");
        seen.push(msg.to_string());
    }
}

/// The active SHA-256 tier: one relaxed load on the hot path, with the
/// ladder walk behind a `#[cold]` first-call slow path.
#[inline]
pub fn sha256_tier() -> HashTier {
    match HashTier::from_repr(SHA256_ACTIVE.load(Ordering::Relaxed)) {
        Some(t) => t,
        None => resolve_and_cache(Primitive::Sha256),
    }
}

/// The active Keccak tier (see [`sha256_tier`]).
#[inline]
pub fn keccak_tier() -> HashTier {
    match HashTier::from_repr(KECCAK_ACTIVE.load(Ordering::Relaxed)) {
        Some(t) => t,
        None => resolve_and_cache(Primitive::Keccak),
    }
}

/// Eagerly applies the `HERO_HASH_TIER` override, returning the typed
/// [`TierError`] for an unknown name. `hero serve` and the benches call
/// this before first use so a typo is a startup error, not a silent
/// auto-detect; requesting a *valid but unsupported* tier is not an
/// error — it falls down the ladder with a warning (see module docs).
pub fn init_from_env() -> Result<(), TierError> {
    if let Some(Err(e)) = env_request() {
        return Err(e.clone());
    }
    sha256_tier();
    keccak_tier();
    Ok(())
}

/// Forces the active tier for both primitives, resolving each down its
/// ladder exactly like the env override (so an unsupported request is a
/// supported fallback, never UB). Returns the previously active tiers
/// `(sha256, keccak)` so callers can restore them.
///
/// This exists for `bench_hot_path`'s per-tier sections and the forced-
/// tier test legs. It is process-global: concurrent hashers observe the
/// change — which is safe, because **every tier produces identical
/// bytes** (pinned by the per-tier identity tests); only throughput
/// differs.
pub fn force_tier(tier: HashTier) -> (HashTier, HashTier) {
    let prev = (sha256_tier(), keccak_tier());
    let (sha, _) = resolve(Primitive::Sha256, Some(tier));
    let (keccak, _) = resolve(Primitive::Keccak, Some(tier));
    SHA256_ACTIVE.store(sha as u8, Ordering::Relaxed);
    KECCAK_ACTIVE.store(keccak as u8, Ordering::Relaxed);
    prev
}

/// Restores tiers previously returned by [`force_tier`].
pub fn restore_tier(prev: (HashTier, HashTier)) {
    let (sha, _) = resolve(Primitive::Sha256, Some(prev.0));
    let (keccak, _) = resolve(Primitive::Keccak, Some(prev.1));
    SHA256_ACTIVE.store(sha as u8, Ordering::Relaxed);
    KECCAK_ACTIVE.store(keccak as u8, Ordering::Relaxed);
}

/// One-line operator-facing description of the resolved ladder, e.g.
/// `sha256=sha-ni keccak=avx512` (plus the override, when one is set).
/// Shown by the `hero serve` banner, the metrics page and
/// `bench_hot_path`.
pub fn description() -> String {
    let base = format!("sha256={} keccak={}", sha256_tier(), keccak_tier());
    match env_request() {
        Some(Ok(t)) => format!("{base} ({ENV_VAR}={t})"),
        Some(Err(e)) => format!("{base} ({ENV_VAR} ignored: unknown tier '{}')", e.name),
        None => base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for name in TIER_NAMES {
            let tier = HashTier::from_label(name).expect(name);
            assert_eq!(tier.label(), name);
            assert_eq!(HashTier::from_label(&name.to_uppercase()), Ok(tier));
        }
        assert_eq!(HashTier::from_label("shani"), Ok(HashTier::ShaNi));
        assert_eq!(HashTier::from_label("sha_ni"), Ok(HashTier::ShaNi));
        assert_eq!(HashTier::from_label(" avx-512 "), Ok(HashTier::Avx512));
    }

    #[test]
    fn unknown_tier_is_typed_and_lists_valid_names() {
        let err = HashTier::from_label("quantum").unwrap_err();
        assert_eq!(err.name, "quantum");
        let msg = err.to_string();
        for name in TIER_NAMES {
            assert!(msg.contains(name), "{msg} missing {name}");
        }
    }

    #[test]
    fn ladders_end_in_scalar_and_resolve_supported() {
        for primitive in [Primitive::Sha256, Primitive::Keccak] {
            assert_eq!(*ladder(primitive).last().unwrap(), HashTier::Scalar);
            let tiers = supported_tiers(primitive);
            assert!(tiers.contains(&HashTier::Scalar));
            for t in tiers {
                let (resolved, fell_back) = resolve(primitive, Some(t));
                assert_eq!(
                    resolved, t,
                    "{primitive:?} supported tier resolves to itself"
                );
                assert!(!fell_back);
            }
        }
    }

    #[test]
    fn unsupported_requests_fall_down_the_ladder() {
        // NEON is never supported on x86 (and vice versa); SHA-NI is
        // never in the Keccak ladder. Both must resolve to a supported
        // tier without panicking.
        for primitive in [Primitive::Sha256, Primitive::Keccak] {
            for want in [
                HashTier::Neon,
                HashTier::ShaNi,
                HashTier::Avx512,
                HashTier::Avx2,
            ] {
                let (resolved, _) = resolve(primitive, Some(want));
                assert!(
                    supported(primitive, resolved),
                    "{primitive:?} {want:?} resolved to unsupported {resolved:?}"
                );
            }
        }
    }

    #[test]
    fn scalar_request_is_always_honored() {
        for primitive in [Primitive::Sha256, Primitive::Keccak] {
            let (resolved, fell_back) = resolve(primitive, Some(HashTier::Scalar));
            assert_eq!(resolved, HashTier::Scalar);
            assert!(!fell_back);
        }
    }

    #[test]
    fn force_and_restore_round_trip() {
        let prev = force_tier(HashTier::Scalar);
        assert_eq!(sha256_tier(), HashTier::Scalar);
        assert_eq!(keccak_tier(), HashTier::Scalar);
        restore_tier(prev);
        assert_eq!((sha256_tier(), keccak_tier()), prev);
    }

    #[test]
    fn description_names_both_primitives() {
        let d = description();
        assert!(d.contains("sha256="), "{d}");
        assert!(d.contains("keccak="), "{d}");
    }
}
