//! SPHINCS+ parameter sets (Table I of the paper).
//!
//! The paper targets the *fast* (`-f`) variants with SHA-256; the small
//! (`-s`) variants are included as an extension because the tuner and the
//! GPU kernels are parameter-generic. The `shake_*` shapes pair the same
//! six `(n, h, d, log t, k, w)` tuples with the SHAKE-256 instantiation
//! ([`Params::preferred_alg`]), completing the NIST parameter matrix.
//!
//! ```
//! use hero_sphincs::{hash::HashAlg, params::Params};
//! let p = Params::shake_128f();
//! assert_eq!(p.sig_bytes(), 17_088); // sizes depend only on the shape
//! assert_eq!(p.preferred_alg(), HashAlg::Shake256);
//! ```

use crate::hash::HashAlg;
use std::fmt;

/// A SPHINCS+ parameter set.
///
/// All derived quantities (WOTS+ lengths, signature sizes, hash counts)
/// are computed from the six base parameters of Table I.
///
/// ```
/// use hero_sphincs::params::Params;
/// let p = Params::sphincs_128f();
/// assert_eq!(p.sig_bytes(), 17_088); // matches the paper's intro
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Params {
    name: &'static str,
    /// Security parameter: bytes of hash output, secret keys, public seeds.
    pub n: usize,
    /// Total hypertree height.
    pub h: usize,
    /// Number of hypertree layers.
    pub d: usize,
    /// Height of each FORS tree (`log t`, written `a` in the spec).
    pub log_t: usize,
    /// Number of FORS trees.
    pub k: usize,
    /// Winternitz parameter.
    pub w: usize,
}

impl fmt::Debug for Params {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Params")
            .field("name", &self.name)
            .field("n", &self.n)
            .field("h", &self.h)
            .field("d", &self.d)
            .field("log_t", &self.log_t)
            .field("k", &self.k)
            .field("w", &self.w)
            .finish()
    }
}

impl fmt::Display for Params {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

impl Params {
    /// SPHINCS+-128f: n=16, h=66, d=22, log t=6, k=33, w=16.
    pub const fn sphincs_128f() -> Self {
        Self {
            name: "SPHINCS+-128f",
            n: 16,
            h: 66,
            d: 22,
            log_t: 6,
            k: 33,
            w: 16,
        }
    }

    /// SPHINCS+-192f: n=24, h=66, d=22, log t=8, k=33, w=16.
    pub const fn sphincs_192f() -> Self {
        Self {
            name: "SPHINCS+-192f",
            n: 24,
            h: 66,
            d: 22,
            log_t: 8,
            k: 33,
            w: 16,
        }
    }

    /// SPHINCS+-256f: n=32, h=68, d=17, log t=9, k=35, w=16.
    pub const fn sphincs_256f() -> Self {
        Self {
            name: "SPHINCS+-256f",
            n: 32,
            h: 68,
            d: 17,
            log_t: 9,
            k: 35,
            w: 16,
        }
    }

    /// SPHINCS+-128s (extension; not evaluated in the paper).
    pub const fn sphincs_128s() -> Self {
        Self {
            name: "SPHINCS+-128s",
            n: 16,
            h: 63,
            d: 7,
            log_t: 12,
            k: 14,
            w: 16,
        }
    }

    /// SPHINCS+-192s (extension; not evaluated in the paper).
    pub const fn sphincs_192s() -> Self {
        Self {
            name: "SPHINCS+-192s",
            n: 24,
            h: 63,
            d: 7,
            log_t: 14,
            k: 17,
            w: 16,
        }
    }

    /// SPHINCS+-256s (extension; not evaluated in the paper).
    pub const fn sphincs_256s() -> Self {
        Self {
            name: "SPHINCS+-256s",
            n: 32,
            h: 64,
            d: 8,
            log_t: 14,
            k: 22,
            w: 16,
        }
    }

    /// SPHINCS+-SHAKE-128f: the 128f shape under the SHAKE-256
    /// instantiation. Signature, key and digest sizes depend only on
    /// `(n, h, d, log t, k, w)`, so they match [`Params::sphincs_128f`];
    /// the name differs so tuning-cache fingerprints, key files and CLI
    /// labels never conflate the two hash families.
    pub const fn shake_128f() -> Self {
        Self {
            name: "SPHINCS+-SHAKE-128f",
            ..Self::sphincs_128f()
        }
    }

    /// SPHINCS+-SHAKE-192f (see [`Params::shake_128f`]).
    pub const fn shake_192f() -> Self {
        Self {
            name: "SPHINCS+-SHAKE-192f",
            ..Self::sphincs_192f()
        }
    }

    /// SPHINCS+-SHAKE-256f (see [`Params::shake_128f`]).
    pub const fn shake_256f() -> Self {
        Self {
            name: "SPHINCS+-SHAKE-256f",
            ..Self::sphincs_256f()
        }
    }

    /// SPHINCS+-SHAKE-128s (see [`Params::shake_128f`]).
    pub const fn shake_128s() -> Self {
        Self {
            name: "SPHINCS+-SHAKE-128s",
            ..Self::sphincs_128s()
        }
    }

    /// SPHINCS+-SHAKE-192s (see [`Params::shake_128f`]).
    pub const fn shake_192s() -> Self {
        Self {
            name: "SPHINCS+-SHAKE-192s",
            ..Self::sphincs_192s()
        }
    }

    /// SPHINCS+-SHAKE-256s (see [`Params::shake_128f`]).
    pub const fn shake_256s() -> Self {
        Self {
            name: "SPHINCS+-SHAKE-256s",
            ..Self::sphincs_256s()
        }
    }

    /// The three `-f` sets evaluated throughout the paper.
    pub const fn fast_sets() -> [Self; 3] {
        [
            Self::sphincs_128f(),
            Self::sphincs_192f(),
            Self::sphincs_256f(),
        ]
    }

    /// All built-in SHA-2 parameter sets.
    pub const fn all_sets() -> [Self; 6] {
        [
            Self::sphincs_128f(),
            Self::sphincs_192f(),
            Self::sphincs_256f(),
            Self::sphincs_128s(),
            Self::sphincs_192s(),
            Self::sphincs_256s(),
        ]
    }

    /// All six SHAKE-256 parameter sets.
    pub const fn shake_sets() -> [Self; 6] {
        [
            Self::shake_128f(),
            Self::shake_192f(),
            Self::shake_256f(),
            Self::shake_128s(),
            Self::shake_192s(),
            Self::shake_256s(),
        ]
    }

    /// The hash primitive this shape is named for: [`HashAlg::Shake256`]
    /// for the `shake_*` shapes, [`HashAlg::Sha256`] otherwise. Shapes
    /// and primitives stay independently combinable ([`crate::hash::HashCtx`]
    /// accepts any pairing); this is the default the CLI and key files
    /// use when no explicit algorithm is given.
    pub const fn preferred_alg(&self) -> HashAlg {
        if self.is_shake_shape() {
            HashAlg::Shake256
        } else {
            HashAlg::Sha256
        }
    }

    /// Whether this is one of the `shake_*`-named shapes.
    const fn is_shake_shape(&self) -> bool {
        // const-compatible prefix test on the name.
        const PREFIX: &[u8] = b"SPHINCS+-SHAKE-";
        let name = self.name.as_bytes();
        if name.len() < PREFIX.len() {
            return false;
        }
        let mut i = 0;
        while i < PREFIX.len() {
            if name[i] != PREFIX[i] {
                return false;
            }
            i += 1;
        }
        true
    }

    /// Human-readable name, e.g. `"SPHINCS+-128f"`.
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Looks a built-in set up by label: `128f`, `shake-192s`,
    /// `SPHINCS+-SHAKE-128f`, … (case-insensitive; the `SPHINCS+-`
    /// prefix and the dash after `shake` are optional). The single
    /// parser behind the CLI, key files, and the server's keygen op.
    ///
    /// ```
    /// use hero_sphincs::params::Params;
    /// assert_eq!(Params::from_label("128f"), Some(Params::sphincs_128f()));
    /// assert_eq!(Params::from_label("SHAKE256s"), Some(Params::shake_256s()));
    /// assert_eq!(Params::from_label("512f"), None);
    /// ```
    pub fn from_label(label: &str) -> Option<Self> {
        let norm = label.trim().to_ascii_lowercase();
        let norm = norm.strip_prefix("sphincs+-").unwrap_or(&norm);
        match norm {
            "128f" => Some(Self::sphincs_128f()),
            "192f" => Some(Self::sphincs_192f()),
            "256f" => Some(Self::sphincs_256f()),
            "128s" => Some(Self::sphincs_128s()),
            "192s" => Some(Self::sphincs_192s()),
            "256s" => Some(Self::sphincs_256s()),
            "shake-128f" | "shake128f" => Some(Self::shake_128f()),
            "shake-192f" | "shake192f" => Some(Self::shake_192f()),
            "shake-256f" | "shake256f" => Some(Self::shake_256f()),
            "shake-128s" | "shake128s" => Some(Self::shake_128s()),
            "shake-192s" | "shake192s" => Some(Self::shake_192s()),
            "shake-256s" | "shake256s" => Some(Self::shake_256s()),
            _ => None,
        }
    }

    /// Height of each subtree in the hypertree (`h/d`, written `h'`).
    pub const fn tree_height(&self) -> usize {
        self.h / self.d
    }

    /// Number of leaves per FORS tree (`t = 2^log_t`).
    pub const fn t(&self) -> usize {
        1 << self.log_t
    }

    /// `log2(w)`: bits encoded per WOTS+ chain.
    pub const fn log_w(&self) -> usize {
        self.w.trailing_zeros() as usize
    }

    /// WOTS+ message chains: `len1 = ceil(8n / log2 w)`.
    pub const fn wots_len1(&self) -> usize {
        (8 * self.n).div_ceil(self.log_w())
    }

    /// WOTS+ checksum chains: `len2 = floor(log2(len1*(w-1)) / log2 w) + 1`.
    pub const fn wots_len2(&self) -> usize {
        let max_csum = self.wots_len1() * (self.w - 1);
        // floor(log2(max_csum)) via leading zeros.
        let log2 = usize::BITS as usize - 1 - max_csum.leading_zeros() as usize;
        log2 / self.log_w() + 1
    }

    /// Total WOTS+ chains: `len = len1 + len2`.
    pub const fn wots_len(&self) -> usize {
        self.wots_len1() + self.wots_len2()
    }

    /// Bytes of a WOTS+ signature (`len · n`).
    pub const fn wots_sig_bytes(&self) -> usize {
        self.wots_len() * self.n
    }

    /// Bytes of a FORS signature: `k · (n + log_t · n)` (secret element plus
    /// authentication path per tree).
    pub const fn fors_sig_bytes(&self) -> usize {
        self.k * (self.n + self.log_t * self.n)
    }

    /// Bytes of the full SPHINCS+ signature:
    /// `n (randomizer) + FORS + d · (WOTS+ + h' · n)`.
    pub const fn sig_bytes(&self) -> usize {
        self.n
            + self.fors_sig_bytes()
            + self.d * (self.wots_sig_bytes() + self.tree_height() * self.n)
    }

    /// Bytes of the public key (`pk_seed || pk_root`).
    pub const fn pk_bytes(&self) -> usize {
        2 * self.n
    }

    /// Bytes of the secret key (`sk_seed || sk_prf || pk_seed || pk_root`).
    pub const fn sk_bytes(&self) -> usize {
        4 * self.n
    }

    /// Total FORS leaves across all `k` trees (`k · t`), the quantity that
    /// overflows a 1024-thread block and motivates FORS Fusion (§III-B).
    pub const fn fors_total_leaves(&self) -> usize {
        self.k * self.t()
    }

    /// Leaves per hypertree subtree (`2^(h/d)`).
    pub const fn subtree_leaves(&self) -> usize {
        1 << self.tree_height()
    }

    /// Total hypertree leaf nodes across all `d` layers (`d · 2^(h/d)`),
    /// e.g. 176 / 176 / 272 for 128f/192f/256f (§III-B1).
    pub const fn hypertree_total_leaves(&self) -> usize {
        self.d * self.subtree_leaves()
    }

    /// Message-digest length in bytes consumed by `H_msg` splitting:
    /// `ceil(k·log_t/8) + ceil((h - h/d)/8) + ceil(h'/8)`.
    pub const fn digest_bytes(&self) -> usize {
        let md = (self.k * self.log_t).div_ceil(8);
        let tree = (self.h - self.tree_height()).div_ceil(8);
        let leaf = self.tree_height().div_ceil(8);
        md + tree + leaf
    }

    /// Validates internal consistency of a (possibly custom) parameter set.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !matches!(self.n, 16 | 24 | 32) {
            return Err(format!("unsupported n={} (need 16, 24 or 32)", self.n));
        }
        if !self.w.is_power_of_two() || self.w < 4 {
            return Err(format!("w={} must be a power of two >= 4", self.w));
        }
        if !(8 * self.n).is_multiple_of(self.log_w()) {
            // base_w consumes exactly len1·log2(w) message bits; a
            // non-dividing w would demand more bits than the n-byte
            // digest carries.
            return Err(format!(
                "w={}: log2(w) must divide the digest bits 8n={}",
                self.w,
                8 * self.n
            ));
        }
        if self.d == 0 || !self.h.is_multiple_of(self.d) {
            return Err(format!("d={} must divide h={}", self.d, self.h));
        }
        if self.log_t == 0 || self.log_t > 16 {
            return Err(format!("log_t={} out of range", self.log_t));
        }
        if self.k == 0 {
            return Err("k must be positive".to_string());
        }
        if self.h > 64 + self.tree_height() {
            return Err(format!("h={} too large for 64-bit tree index", self.h));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_values() {
        let p128 = Params::sphincs_128f();
        assert_eq!(
            (p128.n, p128.h, p128.d, p128.log_t, p128.k, p128.w),
            (16, 66, 22, 6, 33, 16)
        );
        let p192 = Params::sphincs_192f();
        assert_eq!(
            (p192.n, p192.h, p192.d, p192.log_t, p192.k, p192.w),
            (24, 66, 22, 8, 33, 16)
        );
        let p256 = Params::sphincs_256f();
        assert_eq!(
            (p256.n, p256.h, p256.d, p256.log_t, p256.k, p256.w),
            (32, 68, 17, 9, 35, 16)
        );
    }

    #[test]
    fn wots_lengths() {
        // For w=16: len1 = 2n, len2 = 3 for all three sets.
        assert_eq!(Params::sphincs_128f().wots_len(), 35);
        assert_eq!(Params::sphincs_192f().wots_len(), 51);
        assert_eq!(Params::sphincs_256f().wots_len(), 67);
    }

    #[test]
    fn signature_sizes_match_published() {
        // Published SPHINCS+ round-3 signature sizes.
        assert_eq!(Params::sphincs_128f().sig_bytes(), 17_088);
        assert_eq!(Params::sphincs_192f().sig_bytes(), 35_664);
        assert_eq!(Params::sphincs_256f().sig_bytes(), 49_856);
        assert_eq!(Params::sphincs_128s().sig_bytes(), 7_856);
        assert_eq!(Params::sphincs_192s().sig_bytes(), 16_224);
        assert_eq!(Params::sphincs_256s().sig_bytes(), 29_792);
    }

    #[test]
    fn hypertree_leaf_counts_match_paper() {
        // §III-B1: 176, 176, 272 hypertree leaves.
        assert_eq!(Params::sphincs_128f().hypertree_total_leaves(), 176);
        assert_eq!(Params::sphincs_192f().hypertree_total_leaves(), 176);
        assert_eq!(Params::sphincs_256f().hypertree_total_leaves(), 272);
    }

    #[test]
    fn fors_leaf_counts_match_paper() {
        // §III-B1: 2112, 8448, 17920 FORS leaves.
        assert_eq!(Params::sphincs_128f().fors_total_leaves(), 2_112);
        assert_eq!(Params::sphincs_192f().fors_total_leaves(), 8_448);
        assert_eq!(Params::sphincs_256f().fors_total_leaves(), 17_920);
    }

    #[test]
    fn all_sets_validate() {
        for p in Params::all_sets() {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name()));
        }
    }

    #[test]
    fn invalid_sets_rejected() {
        let mut p = Params::sphincs_128f();
        p.n = 20;
        assert!(p.validate().is_err());
        let mut p = Params::sphincs_128f();
        p.d = 23; // does not divide 66
        assert!(p.validate().is_err());
        let mut p = Params::sphincs_128f();
        p.w = 12;
        assert!(p.validate().is_err());
        let mut p = Params::sphincs_128f();
        p.k = 0;
        assert!(p.validate().is_err());
    }
}
