//! Hash-function addressing scheme (ADRS).
//!
//! Every tweakable-hash call in SPHINCS+ is domain-separated by a 32-byte
//! address describing *where* in the structure the hash sits. The layout
//! follows the SPHINCS+ round-3 specification (§2.7.3): eight big-endian
//! 32-bit words.
//!
//! ```
//! use hero_sphincs::address::{Address, AddressType};
//! let mut a = Address::new();
//! a.set_layer(3);
//! a.set_tree(0x1234);
//! a.set_type(AddressType::WotsHash);
//! a.set_keypair(7);
//! a.set_chain(11);
//! a.set_hash(2);
//! assert_eq!(a.layer(), 3);
//! ```

/// The seven address types of the SPHINCS+ specification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum AddressType {
    /// A hash inside a WOTS+ chain.
    WotsHash = 0,
    /// Compression of a WOTS+ public key.
    WotsPk = 1,
    /// A node of a hypertree Merkle tree.
    Tree = 2,
    /// A node of a FORS tree.
    ForsTree = 3,
    /// Compression of the FORS tree roots.
    ForsRoots = 4,
    /// WOTS+ secret-key generation (PRF).
    WotsPrf = 5,
    /// FORS secret-key generation (PRF).
    ForsPrf = 6,
}

/// Word indices within the 8-word address.
const LAYER: usize = 0;
const TREE_HI: usize = 1;
const TREE_MID: usize = 2;
const TREE_LO: usize = 3;
const TYPE: usize = 4;
const KEYPAIR: usize = 5;
const CHAIN_OR_HEIGHT: usize = 6;
const HASH_OR_INDEX: usize = 7;

/// A 32-byte hash address.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Address {
    words: [u32; 8],
}

impl Address {
    /// Creates an all-zero address.
    pub const fn new() -> Self {
        Self { words: [0; 8] }
    }

    /// The address as bytes (big-endian words), as absorbed by the hashes.
    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, w) in self.words.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// Hypertree layer (0 = bottom).
    pub fn layer(&self) -> u32 {
        self.words[LAYER]
    }

    /// Sets the hypertree layer.
    pub fn set_layer(&mut self, layer: u32) {
        self.words[LAYER] = layer;
    }

    /// Sets the 96-bit tree index (we carry 64 bits, the maximum any
    /// built-in parameter set needs).
    pub fn set_tree(&mut self, tree: u64) {
        self.words[TREE_HI] = 0;
        self.words[TREE_MID] = (tree >> 32) as u32;
        self.words[TREE_LO] = tree as u32;
    }

    /// Tree index (lower 64 bits).
    pub fn tree(&self) -> u64 {
        ((self.words[TREE_MID] as u64) << 32) | self.words[TREE_LO] as u64
    }

    /// Sets the address type, zeroing the type-specific trailer words as
    /// the specification requires.
    pub fn set_type(&mut self, ty: AddressType) {
        self.words[TYPE] = ty as u32;
        self.words[KEYPAIR] = 0;
        self.words[CHAIN_OR_HEIGHT] = 0;
        self.words[HASH_OR_INDEX] = 0;
    }

    /// Address type, if the stored discriminant is valid.
    pub fn address_type(&self) -> Option<AddressType> {
        Some(match self.words[TYPE] {
            0 => AddressType::WotsHash,
            1 => AddressType::WotsPk,
            2 => AddressType::Tree,
            3 => AddressType::ForsTree,
            4 => AddressType::ForsRoots,
            5 => AddressType::WotsPrf,
            6 => AddressType::ForsPrf,
            _ => return None,
        })
    }

    /// Sets the key pair index (leaf index within the subtree).
    pub fn set_keypair(&mut self, keypair: u32) {
        self.words[KEYPAIR] = keypair;
    }

    /// Key pair index.
    pub fn keypair(&self) -> u32 {
        self.words[KEYPAIR]
    }

    /// Sets the WOTS+ chain index.
    pub fn set_chain(&mut self, chain: u32) {
        self.words[CHAIN_OR_HEIGHT] = chain;
    }

    /// Sets the WOTS+ hash index within a chain.
    pub fn set_hash(&mut self, hash: u32) {
        self.words[HASH_OR_INDEX] = hash;
    }

    /// Sets the tree height field (Merkle node level; leaves are 0).
    pub fn set_tree_height(&mut self, height: u32) {
        self.words[CHAIN_OR_HEIGHT] = height;
    }

    /// Tree height field.
    pub fn tree_height(&self) -> u32 {
        self.words[CHAIN_OR_HEIGHT]
    }

    /// Sets the tree index field (Merkle node index within its level).
    pub fn set_tree_index(&mut self, index: u32) {
        self.words[HASH_OR_INDEX] = index;
    }

    /// Tree index field.
    pub fn tree_index(&self) -> u32 {
        self.words[HASH_OR_INDEX]
    }

    /// The compressed 22-byte address used by the SHA-256 instantiation
    /// (spec §7.2.2): 1-byte layer, 8-byte tree, 1-byte type, then the
    /// three trailer words. Compression keeps every `F`/`PRF` call within
    /// a single SHA-256 block, which is what lets the GPU kernels charge
    /// one compression per chain step.
    pub fn to_compressed_bytes(self) -> [u8; 22] {
        let mut out = [0u8; 22];
        out[0] = self.words[LAYER] as u8;
        out[1..9].copy_from_slice(&self.tree().to_be_bytes());
        out[9] = self.words[TYPE] as u8;
        out[10..14].copy_from_slice(&self.words[KEYPAIR].to_be_bytes());
        out[14..18].copy_from_slice(&self.words[CHAIN_OR_HEIGHT].to_be_bytes());
        out[18..22].copy_from_slice(&self.words[HASH_OR_INDEX].to_be_bytes());
        out
    }

    /// Copies the subtree coordinates (layer + tree) from `other`,
    /// the common pattern when deriving leaf addresses from a tree address.
    pub fn copy_subtree_from(&mut self, other: &Address) {
        self.words[LAYER] = other.words[LAYER];
        self.words[TREE_HI] = other.words[TREE_HI];
        self.words[TREE_MID] = other.words[TREE_MID];
        self.words[TREE_LO] = other.words[TREE_LO];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_fields() {
        let mut a = Address::new();
        a.set_layer(5);
        a.set_tree(0xdead_beef_cafe);
        a.set_type(AddressType::ForsTree);
        a.set_keypair(42);
        a.set_tree_height(3);
        a.set_tree_index(1000);
        assert_eq!(a.layer(), 5);
        assert_eq!(a.tree(), 0xdead_beef_cafe);
        assert_eq!(a.address_type(), Some(AddressType::ForsTree));
        assert_eq!(a.keypair(), 42);
        assert_eq!(a.tree_height(), 3);
        assert_eq!(a.tree_index(), 1000);
    }

    #[test]
    fn set_type_clears_trailer() {
        let mut a = Address::new();
        a.set_keypair(9);
        a.set_chain(4);
        a.set_hash(2);
        a.set_type(AddressType::Tree);
        assert_eq!(a.keypair(), 0);
        assert_eq!(a.tree_height(), 0);
        assert_eq!(a.tree_index(), 0);
    }

    #[test]
    fn distinct_addresses_have_distinct_bytes() {
        let mut a = Address::new();
        let mut b = Address::new();
        a.set_type(AddressType::WotsHash);
        b.set_type(AddressType::WotsPrf);
        assert_ne!(a.to_bytes(), b.to_bytes());

        let mut c = a;
        c.set_hash(1);
        assert_ne!(a.to_bytes(), c.to_bytes());
    }

    #[test]
    fn bytes_are_big_endian_words() {
        let mut a = Address::new();
        a.set_layer(0x0102_0304);
        let bytes = a.to_bytes();
        assert_eq!(&bytes[..4], &[1, 2, 3, 4]);
    }

    #[test]
    fn copy_subtree_copies_only_coordinates() {
        let mut src = Address::new();
        src.set_layer(2);
        src.set_tree(77);
        src.set_keypair(5);
        let mut dst = Address::new();
        dst.set_keypair(9);
        dst.copy_subtree_from(&src);
        assert_eq!(dst.layer(), 2);
        assert_eq!(dst.tree(), 77);
        assert_eq!(dst.keypair(), 9, "trailer must be untouched");
    }

    #[test]
    fn invalid_type_discriminant() {
        let mut a = Address::new();
        a.words[TYPE] = 99;
        assert_eq!(a.address_type(), None);
    }
}
