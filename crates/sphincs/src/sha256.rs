//! From-scratch FIPS 180-4 SHA-256, scalar and multi-lane.
//!
//! The compression function is exposed ([`compress`]) because the GPU cost
//! model in `hero-gpu-sim` charges kernels per compression invocation, and
//! HERO-Sign's PTX-tuned SHA-2 path is modelled at compression granularity.
//!
//! [`Sha256xN`] and [`compress_x`] are the CPU analogue of the paper's
//! warp-level batching: [`LANES`] independent messages advance through the
//! 64 rounds in lockstep, written as straight-line code with the lane index
//! innermost so the compiler autovectorizes each round into SIMD lanes
//! (the Table 10 AVX2 baseline uses the same 8-way interleaving).
//!
//! ```
//! use hero_sphincs::sha256::Sha256;
//! let digest = Sha256::digest(b"abc");
//! assert_eq!(digest[0], 0xba);
//! ```

/// Number of bytes in a SHA-256 digest.
pub const DIGEST_LEN: usize = 32;

/// Number of bytes in a SHA-256 message block.
pub const BLOCK_LEN: usize = 64;

/// SHA-256 initial hash value (FIPS 180-4 §5.3.3).
pub const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// SHA-256 round constants (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

#[inline(always)]
fn big_sigma0(x: u32) -> u32 {
    x.rotate_right(2) ^ x.rotate_right(13) ^ x.rotate_right(22)
}

#[inline(always)]
fn big_sigma1(x: u32) -> u32 {
    x.rotate_right(6) ^ x.rotate_right(11) ^ x.rotate_right(25)
}

#[inline(always)]
fn small_sigma0(x: u32) -> u32 {
    x.rotate_right(7) ^ x.rotate_right(18) ^ (x >> 3)
}

#[inline(always)]
fn small_sigma1(x: u32) -> u32 {
    x.rotate_right(17) ^ x.rotate_right(19) ^ (x >> 10)
}

#[inline(always)]
fn ch(x: u32, y: u32, z: u32) -> u32 {
    (x & y) ^ (!x & z)
}

#[inline(always)]
fn maj(x: u32, y: u32, z: u32) -> u32 {
    (x & y) ^ (x & z) ^ (y & z)
}

/// Applies the SHA-256 compression function to `state` with one 64-byte
/// `block`.
///
/// This is the unit of work the GPU model charges for: one call = one
/// "compression" (64 rounds). The big-endian loads of the message schedule
/// correspond to the `prmt`-vs-`shl` choice the paper tunes in PTX.
///
/// Dispatches through the resolved ISA tier ([`crate::tier::sha256_tier`]):
/// on a SHA-NI host the 64 rounds run as `_mm_sha256rnds2` pairs, on a
/// SHA2-capable aarch64 host as `vsha256h`/`vsha256h2` quads; every tier
/// is byte-identical to the portable rounds.
pub fn compress(state: &mut [u32; 8], block: &[u8; BLOCK_LEN]) {
    #[cfg(target_arch = "x86_64")]
    if crate::tier::sha256_tier() == crate::tier::HashTier::ShaNi {
        // SAFETY: the tier cache only ever holds positively-detected
        // tiers (tier::supported probed sha+ssse3+sse4.1).
        unsafe { compress_shani(state, block) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    if crate::tier::sha256_tier() == crate::tier::HashTier::Neon {
        // SAFETY: tier resolution detected the sha2 crypto extension.
        unsafe { compress_neon(state, block) };
        return;
    }
    compress_portable(state, block);
}

/// Portable straight-line body of [`compress`] — the scalar reference
/// every ISA tier is byte-identity-tested against.
fn compress_portable(state: &mut [u32; 8], block: &[u8; BLOCK_LEN]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        w[i] = small_sigma1(w[i - 2])
            .wrapping_add(w[i - 7])
            .wrapping_add(small_sigma0(w[i - 15]))
            .wrapping_add(w[i - 16]);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;

    for i in 0..64 {
        let t1 = h
            .wrapping_add(big_sigma1(e))
            .wrapping_add(ch(e, f, g))
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let t2 = big_sigma0(a).wrapping_add(maj(a, b, c));
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Number of interleaved lanes in the multi-lane engine ([`Sha256xN`]).
///
/// Eight 32-bit lanes fill one AVX2 register; on narrower targets the
/// compiler splits each round into two or four SIMD ops, which still beats
/// the scalar path because the round dataflow is identical across lanes.
pub const LANES: usize = 8;

/// Applies the compression function to [`LANES`] independent states, one
/// 64-byte block each, in lockstep.
///
/// This is the multi-lane analogue of [`compress`]: `states[l]` absorbs
/// `blocks[l]`. Dispatch walks the resolved ISA tier
/// ([`crate::tier::sha256_tier`]) — resolved once per process, then a
/// single relaxed atomic load per call; no feature probe runs in the
/// hot loop. Every tier produces identical bytes.
pub fn compress_x(states: &mut [[u32; 8]; LANES], blocks: &[&[u8; BLOCK_LEN]; LANES]) {
    // SAFETY (all arms): the tier cache only ever holds tiers whose CPU
    // features were positively detected by `tier::supported` during the
    // one-time ladder walk, so each `#[target_feature]` core is reached
    // only on a CPU that has its ISA.
    match crate::tier::sha256_tier() {
        #[cfg(target_arch = "x86_64")]
        crate::tier::HashTier::ShaNi => unsafe { compress_x_shani(states, blocks) },
        #[cfg(target_arch = "x86_64")]
        crate::tier::HashTier::Avx512 => unsafe { compress_x_avx512(states, blocks) },
        #[cfg(target_arch = "x86_64")]
        crate::tier::HashTier::Avx2 => unsafe { compress_x_avx2(states, blocks) },
        #[cfg(target_arch = "aarch64")]
        crate::tier::HashTier::Neon => unsafe { compress_x_neon(states, blocks) },
        _ => compress_x_portable(states, blocks),
    }
}

/// [`compress_x`] under an explicit tier instead of the process-wide
/// resolved one — the seam the per-tier byte-identity tests and
/// `bench_hot_path`'s per-tier sections drive directly.
///
/// A tier the host CPU lacks (or that does not apply to SHA-256) falls
/// back to the portable body, mirroring the dispatch ladder's
/// never-UB guarantee; callers enumerate real tiers with
/// [`crate::tier::supported_sha256_tiers`].
pub fn compress_x_with(
    tier: crate::tier::HashTier,
    states: &mut [[u32; 8]; LANES],
    blocks: &[&[u8; BLOCK_LEN]; LANES],
) {
    use crate::tier::{supported, HashTier, Primitive};
    // SAFETY (all arms): guarded by a positive `tier::supported` probe.
    match tier {
        #[cfg(target_arch = "x86_64")]
        HashTier::ShaNi if supported(Primitive::Sha256, tier) => unsafe {
            compress_x_shani(states, blocks)
        },
        #[cfg(target_arch = "x86_64")]
        HashTier::Avx512 if supported(Primitive::Sha256, tier) => unsafe {
            compress_x_avx512(states, blocks)
        },
        #[cfg(target_arch = "x86_64")]
        HashTier::Avx2 if supported(Primitive::Sha256, tier) => unsafe {
            compress_x_avx2(states, blocks)
        },
        #[cfg(target_arch = "aarch64")]
        HashTier::Neon if supported(Primitive::Sha256, tier) => unsafe {
            compress_x_neon(states, blocks)
        },
        _ => compress_x_portable(states, blocks),
    }
}

/// One-block SHA-NI compression: the 64 rounds as sixteen
/// `_mm_sha256rnds2_epu32` pairs with the message schedule advanced by
/// `sha256msg1`/`sha256msg2`, in Intel's canonical `ABEF`/`CDGH`
/// register arrangement.
///
/// # Safety
///
/// Callers must ensure the CPU supports the SHA extensions plus
/// SSSE3/SSE4.1 (the byte shuffle and blend).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sha,ssse3,sse4.1")]
unsafe fn compress_shani(state: &mut [u32; 8], block: &[u8; BLOCK_LEN]) {
    use std::arch::x86_64::*;
    unsafe {
        // Big-endian word loads: reverse the bytes of each u32.
        let be_shuf = _mm_set_epi64x(0x0c0d0e0f_08090a0bu64 as i64, 0x04050607_00010203u64 as i64);

        // Fold [a,b,c,d] / [e,f,g,h] into the (ABEF, CDGH) pair the
        // rnds2 instruction works on.
        let dcba = _mm_loadu_si128(state.as_ptr() as *const __m128i);
        let hgfe = _mm_loadu_si128(state.as_ptr().add(4) as *const __m128i);
        let cdab = _mm_shuffle_epi32(dcba, 0xB1);
        let efgh = _mm_shuffle_epi32(hgfe, 0x1B);
        let mut abef = _mm_alignr_epi8(cdab, efgh, 8);
        let mut cdgh = _mm_blend_epi16(efgh, cdab, 0xF0);
        let (save_abef, save_cdgh) = (abef, cdgh);

        let mut m: [__m128i; 4] = std::array::from_fn(|i| {
            _mm_shuffle_epi8(
                _mm_loadu_si128(block.as_ptr().add(16 * i) as *const __m128i),
                be_shuf,
            )
        });

        for r in 0..16 {
            let k = _mm_loadu_si128(K.as_ptr().add(4 * r) as *const __m128i);
            let wk = _mm_add_epi32(m[r % 4], k);
            // rnds2 consumes two W+K values per call: low pair first,
            // then the high pair moved down. After each call the result
            // register holds the new ABEF and the other operand is the
            // new CDGH — the canonical ping-pong.
            cdgh = _mm_sha256rnds2_epu32(cdgh, abef, wk);
            abef = _mm_sha256rnds2_epu32(abef, cdgh, _mm_shuffle_epi32(wk, 0x0E));
            if r < 12 {
                // W[i] = σ1(W[i-2]) + W[i-7] + σ0(W[i-15]) + W[i-16]:
                // msg1 folds σ0, the alignr supplies W[i-7], msg2 folds σ1.
                let w_minus_7 = _mm_alignr_epi8(m[(r + 3) % 4], m[(r + 2) % 4], 4);
                let partial =
                    _mm_add_epi32(_mm_sha256msg1_epu32(m[r % 4], m[(r + 1) % 4]), w_minus_7);
                m[r % 4] = _mm_sha256msg2_epu32(partial, m[(r + 3) % 4]);
            }
        }

        abef = _mm_add_epi32(abef, save_abef);
        cdgh = _mm_add_epi32(cdgh, save_cdgh);
        let feba = _mm_shuffle_epi32(abef, 0x1B);
        let dchg = _mm_shuffle_epi32(cdgh, 0xB1);
        _mm_storeu_si128(
            state.as_mut_ptr() as *mut __m128i,
            _mm_blend_epi16(feba, dchg, 0xF0),
        );
        _mm_storeu_si128(
            state.as_mut_ptr().add(4) as *mut __m128i,
            _mm_alignr_epi8(dchg, feba, 8),
        );
    }
}

/// SHA-NI body of [`compress_x`]: each lane runs the dedicated-rounds
/// block back to back. No interleaving is spelled out — consecutive
/// lanes share no registers, so out-of-order execution overlaps the
/// `sha256rnds2` chains of neighbouring lanes on its own, and the
/// dedicated rounds beat 8-lane interleaving per lane by a wide margin
/// (the reason SHA-NI tops the SHA-256 ladder).
///
/// # Safety
///
/// Callers must ensure the CPU supports SHA+SSSE3+SSE4.1.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sha,ssse3,sse4.1")]
unsafe fn compress_x_shani(states: &mut [[u32; 8]; LANES], blocks: &[&[u8; BLOCK_LEN]; LANES]) {
    for (state, block) in states.iter_mut().zip(blocks.iter()) {
        // SAFETY: same target features as this wrapper.
        unsafe { compress_shani(state, block) };
    }
}

/// AVX-512 body of [`compress_x`]: the same 8-lane interleave as the
/// AVX2 path, but with the round primitives lowered to single-µop
/// AVX-512VL forms — `vprord` rotates for the Σ/σ functions and
/// `vpternlogd` for `ch` (selector `0xCA`), `maj` (`0xE8`) and the
/// three-way XORs (`0x96`). That removes roughly half the round
/// instructions the AVX2 build needs for the same dataflow.
///
/// # Safety
///
/// Callers must ensure the CPU supports AVX-512F and AVX-512VL.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl")]
unsafe fn compress_x_avx512(states: &mut [[u32; 8]; LANES], blocks: &[&[u8; BLOCK_LEN]; LANES]) {
    use std::arch::x86_64::*;
    unsafe {
        // Transposed message schedule: wv[i] holds word i of all lanes.
        let mut w = [[0u32; LANES]; 16];
        for (i, wi) in w.iter_mut().enumerate() {
            for (l, wil) in wi.iter_mut().enumerate() {
                let o = i * 4;
                *wil = u32::from_be_bytes([
                    blocks[l][o],
                    blocks[l][o + 1],
                    blocks[l][o + 2],
                    blocks[l][o + 3],
                ]);
            }
        }
        let mut wv: [__m256i; 16] =
            std::array::from_fn(|i| _mm256_loadu_si256(w[i].as_ptr() as *const __m256i));

        macro_rules! xor3 {
            ($a:expr, $b:expr, $c:expr) => {
                _mm256_ternarylogic_epi32($a, $b, $c, 0x96)
            };
        }
        macro_rules! big_sigma0 {
            ($x:expr) => {{
                let x = $x;
                xor3!(
                    _mm256_ror_epi32::<2>(x),
                    _mm256_ror_epi32::<13>(x),
                    _mm256_ror_epi32::<22>(x)
                )
            }};
        }
        macro_rules! big_sigma1 {
            ($x:expr) => {{
                let x = $x;
                xor3!(
                    _mm256_ror_epi32::<6>(x),
                    _mm256_ror_epi32::<11>(x),
                    _mm256_ror_epi32::<25>(x)
                )
            }};
        }
        macro_rules! small_sigma0 {
            ($x:expr) => {{
                let x = $x;
                xor3!(
                    _mm256_ror_epi32::<7>(x),
                    _mm256_ror_epi32::<18>(x),
                    _mm256_srli_epi32::<3>(x)
                )
            }};
        }
        macro_rules! small_sigma1 {
            ($x:expr) => {{
                let x = $x;
                xor3!(
                    _mm256_ror_epi32::<17>(x),
                    _mm256_ror_epi32::<19>(x),
                    _mm256_srli_epi32::<10>(x)
                )
            }};
        }

        // Transpose the lane-major states into one vector per working
        // variable (cheap next to 64 vector rounds).
        let mut vars: [__m256i; 8] = std::array::from_fn(|word| {
            _mm256_set_epi32(
                states[7][word] as i32,
                states[6][word] as i32,
                states[5][word] as i32,
                states[4][word] as i32,
                states[3][word] as i32,
                states[2][word] as i32,
                states[1][word] as i32,
                states[0][word] as i32,
            )
        });
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = vars;

        for i in 0..64 {
            let wt = if i < 16 {
                wv[i]
            } else {
                let next = _mm256_add_epi32(
                    _mm256_add_epi32(small_sigma1!(wv[(i - 2) % 16]), wv[(i - 7) % 16]),
                    _mm256_add_epi32(small_sigma0!(wv[(i - 15) % 16]), wv[i % 16]),
                );
                wv[i % 16] = next;
                next
            };
            // ch(e,f,g) = e ? f : g — one vpternlogd.
            let ch = _mm256_ternarylogic_epi32(e, f, g, 0xCA);
            let t1 = _mm256_add_epi32(
                _mm256_add_epi32(_mm256_add_epi32(h, big_sigma1!(e)), ch),
                _mm256_add_epi32(_mm256_set1_epi32(K[i] as i32), wt),
            );
            let maj = _mm256_ternarylogic_epi32(a, b, c, 0xE8);
            let t2 = _mm256_add_epi32(big_sigma0!(a), maj);
            h = g;
            g = f;
            f = e;
            e = _mm256_add_epi32(d, t1);
            d = c;
            c = b;
            b = a;
            a = _mm256_add_epi32(t1, t2);
        }

        vars = [a, b, c, d, e, f, g, h];
        for (word, var) in vars.iter().enumerate() {
            let mut lanes = [0u32; LANES];
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, *var);
            for (l, lane) in lanes.iter().enumerate() {
                states[l][word] = states[l][word].wrapping_add(*lane);
            }
        }
    }
}

/// One-block aarch64 SHA2-crypto-extension compression: the 64 rounds
/// as sixteen `vsha256h`/`vsha256h2` quads with the schedule advanced
/// by `vsha256su0`/`vsha256su1`. The ARM instructions take the state as
/// plain `[a,b,c,d]`/`[e,f,g,h]` vectors, so unlike SHA-NI there is no
/// register rearrangement.
///
/// # Safety
///
/// Callers must ensure the CPU supports the SHA2 crypto extension.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon,sha2")]
unsafe fn compress_neon(state: &mut [u32; 8], block: &[u8; BLOCK_LEN]) {
    use std::arch::aarch64::*;
    unsafe {
        let mut s0 = vld1q_u32(state.as_ptr());
        let mut s1 = vld1q_u32(state.as_ptr().add(4));
        let (save0, save1) = (s0, s1);

        // Big-endian word loads: byte-reverse within each u32.
        let mut m: [uint32x4_t; 4] = std::array::from_fn(|i| {
            vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(block.as_ptr().add(16 * i))))
        });

        for r in 0..16 {
            let wk = vaddq_u32(m[r % 4], vld1q_u32(K.as_ptr().add(4 * r)));
            if r < 12 {
                m[r % 4] = vsha256su1q_u32(
                    vsha256su0q_u32(m[r % 4], m[(r + 1) % 4]),
                    m[(r + 2) % 4],
                    m[(r + 3) % 4],
                );
            }
            let abcd = s0;
            s0 = vsha256hq_u32(s0, s1, wk);
            s1 = vsha256h2q_u32(s1, abcd, wk);
        }

        vst1q_u32(state.as_mut_ptr(), vaddq_u32(s0, save0));
        vst1q_u32(state.as_mut_ptr().add(4), vaddq_u32(s1, save1));
    }
}

/// NEON body of [`compress_x`]: each lane runs the crypto-extension
/// block back to back (see [`compress_x_shani`] for why no manual
/// interleave — the lanes are register-independent).
///
/// # Safety
///
/// Callers must ensure the CPU supports the SHA2 crypto extension.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon,sha2")]
unsafe fn compress_x_neon(states: &mut [[u32; 8]; LANES], blocks: &[&[u8; BLOCK_LEN]; LANES]) {
    for (state, block) in states.iter_mut().zip(blocks.iter()) {
        // SAFETY: same target features as this wrapper.
        unsafe { compress_neon(state, block) };
    }
}

/// [`compress_x_portable`] compiled with AVX2 codegen enabled, so the
/// lane-innermost loops vectorize to 8×32-bit ymm operations.
///
/// # Safety
///
/// Callers must ensure the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn compress_x_avx2(states: &mut [[u32; 8]; LANES], blocks: &[&[u8; BLOCK_LEN]; LANES]) {
    compress_x_portable(states, blocks);
}

/// Portable straight-line body of [`compress_x`]: a rolling 16-entry
/// message schedule and the 64 rounds, each expressed as an elementwise
/// operation over the [`LANES`]-wide lane arrays.
#[inline(always)]
fn compress_x_portable(states: &mut [[u32; 8]; LANES], blocks: &[&[u8; BLOCK_LEN]; LANES]) {
    // Transposed message schedule: w[i][l] is word i of lane l.
    let mut w = [[0u32; LANES]; 16];
    for (i, wi) in w.iter_mut().enumerate() {
        for (l, wil) in wi.iter_mut().enumerate() {
            let o = i * 4;
            *wil = u32::from_be_bytes([
                blocks[l][o],
                blocks[l][o + 1],
                blocks[l][o + 2],
                blocks[l][o + 3],
            ]);
        }
    }

    // Transposed working variables.
    let mut a = [0u32; LANES];
    let mut b = [0u32; LANES];
    let mut c = [0u32; LANES];
    let mut d = [0u32; LANES];
    let mut e = [0u32; LANES];
    let mut f = [0u32; LANES];
    let mut g = [0u32; LANES];
    let mut h = [0u32; LANES];
    for l in 0..LANES {
        [a[l], b[l], c[l], d[l], e[l], f[l], g[l], h[l]] = states[l];
    }

    for i in 0..64 {
        let mut wt = [0u32; LANES];
        if i < 16 {
            wt = w[i];
        } else {
            for l in 0..LANES {
                wt[l] = small_sigma1(w[(i - 2) % 16][l])
                    .wrapping_add(w[(i - 7) % 16][l])
                    .wrapping_add(small_sigma0(w[(i - 15) % 16][l]))
                    .wrapping_add(w[i % 16][l]);
            }
            w[i % 16] = wt;
        }
        for l in 0..LANES {
            let t1 = h[l]
                .wrapping_add(big_sigma1(e[l]))
                .wrapping_add(ch(e[l], f[l], g[l]))
                .wrapping_add(K[i])
                .wrapping_add(wt[l]);
            let t2 = big_sigma0(a[l]).wrapping_add(maj(a[l], b[l], c[l]));
            h[l] = g[l];
            g[l] = f[l];
            f[l] = e[l];
            e[l] = d[l].wrapping_add(t1);
            d[l] = c[l];
            c[l] = b[l];
            b[l] = a[l];
            a[l] = t1.wrapping_add(t2);
        }
    }

    for l in 0..LANES {
        states[l][0] = states[l][0].wrapping_add(a[l]);
        states[l][1] = states[l][1].wrapping_add(b[l]);
        states[l][2] = states[l][2].wrapping_add(c[l]);
        states[l][3] = states[l][3].wrapping_add(d[l]);
        states[l][4] = states[l][4].wrapping_add(e[l]);
        states[l][5] = states[l][5].wrapping_add(f[l]);
        states[l][6] = states[l][6].wrapping_add(g[l]);
        states[l][7] = states[l][7].wrapping_add(h[l]);
    }
}

/// Writes SHA-256 message padding after a tail already resident in
/// `buf[..tail_len]`, returning the number of 64-byte blocks used (1 or
/// 2).
///
/// `absorbed_prefix` is the (block-aligned) byte count already compressed
/// before the tail — the seeded `pk_seed || pad` block in the
/// tweakable-hash layer. The batched hashers assemble each lane's tail
/// directly in its block buffer, pad it with this helper, and feed the
/// resulting blocks to [`compress_x`].
///
/// # Panics
///
/// Panics if `tail_len > 119` (the two-block capacity).
pub fn pad_in_place(buf: &mut [u8; 2 * BLOCK_LEN], tail_len: usize, absorbed_prefix: u64) -> usize {
    assert!(
        tail_len <= 2 * BLOCK_LEN - 9,
        "tail too long for two blocks"
    );
    let blocks = (tail_len + 1 + 8).div_ceil(BLOCK_LEN);
    let total = blocks * BLOCK_LEN;
    buf[tail_len] = 0x80;
    buf[tail_len + 1..total - 8].fill(0);
    let bit_len = (absorbed_prefix + tail_len as u64) * 8;
    buf[total - 8..total].copy_from_slice(&bit_len.to_be_bytes());
    blocks
}

/// A [`LANES`]-wide batch of SHA-256 states advancing in lockstep.
///
/// Used by the batched tweakable hashes: every lane starts from the same
/// precomputed `pk_seed` chaining state ([`Sha256xN::broadcast`]), absorbs
/// its own (pre-padded) blocks via [`Sha256xN::compress`], and its digest
/// is read back with [`Sha256xN::digest_into`].
#[derive(Clone, Debug)]
pub struct Sha256xN {
    states: [[u32; 8]; LANES],
}

impl Sha256xN {
    /// Starts every lane from the same chaining `state`.
    pub fn broadcast(state: [u32; 8]) -> Self {
        Self {
            states: [state; LANES],
        }
    }

    /// Absorbs one (already padded) 64-byte block per lane.
    pub fn compress(&mut self, blocks: &[&[u8; BLOCK_LEN]; LANES]) {
        compress_x(&mut self.states, blocks);
    }

    /// Writes the big-endian digest of `lane`, truncated to `out.len()`
    /// bytes (`out.len() <= 32`). Lanes are finalized by padding their
    /// input blocks ([`pad_in_place`]), so this is a pure state read-out.
    pub fn digest_into(&self, lane: usize, out: &mut [u8]) {
        debug_assert!(out.len() <= DIGEST_LEN);
        let mut full = [0u8; DIGEST_LEN];
        for (i, word) in self.states[lane].iter().enumerate() {
            full[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out.copy_from_slice(&full[..out.len()]);
    }
}

/// Incremental SHA-256 hasher.
///
/// ```
/// use hero_sphincs::sha256::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"he");
/// h.update(b"llo");
/// assert_eq!(h.finalize(), Sha256::digest(b"hello"));
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
    total_len: u64,
    compressions: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a hasher initialized with the standard IV.
    pub fn new() -> Self {
        Self::from_state(H0, 0)
    }

    /// Creates a hasher from a precomputed chaining `state` that already
    /// absorbed `absorbed_bytes` bytes (must be a multiple of 64).
    ///
    /// SPHINCS+ SHA-256 implementations precompute the state after hashing
    /// `pk_seed || padding` once, then reuse it for every `F`/`H`/`PRF`
    /// call; the GPU kernels rely on this to keep per-node cost at a single
    /// compression.
    ///
    /// # Panics
    ///
    /// Panics if `absorbed_bytes` is not a multiple of 64.
    pub fn from_state(state: [u32; 8], absorbed_bytes: u64) -> Self {
        assert!(
            absorbed_bytes.is_multiple_of(BLOCK_LEN as u64),
            "absorbed byte count must be block aligned"
        );
        Self {
            state,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
            total_len: absorbed_bytes,
            compressions: 0,
        }
    }

    /// Returns the current chaining state.
    ///
    /// Only meaningful at a block boundary (`buffered_len() == 0`).
    pub fn state(&self) -> [u32; 8] {
        self.state
    }

    /// Number of bytes currently buffered (not yet compressed).
    pub fn buffered_len(&self) -> usize {
        self.buf_len
    }

    /// Number of compression-function invocations performed so far by this
    /// hasher instance (used by the cost model in tests).
    pub fn compressions(&self) -> u64 {
        self.compressions
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        let mut input = data;
        self.total_len = self.total_len.wrapping_add(data.len() as u64);

        if self.buf_len > 0 {
            let need = BLOCK_LEN - self.buf_len;
            let take = need.min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                compress(&mut self.state, &block);
                self.compressions += 1;
                self.buf_len = 0;
            }
        }

        while input.len() >= BLOCK_LEN {
            let block: &[u8; BLOCK_LEN] = input[..BLOCK_LEN].try_into().expect("exact block");
            compress(&mut self.state, block);
            self.compressions += 1;
            input = &input[BLOCK_LEN..];
        }

        if !input.is_empty() {
            self.buf[..input.len()].copy_from_slice(input);
            self.buf_len = input.len();
        }
    }

    /// Finalizes and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update_padding_only(&[0x80]);
        while self.buf_len != 56 {
            self.update_padding_only(&[0]);
        }
        self.update_padding_only(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// `update` that does not advance `total_len` (padding bytes are not
    /// part of the message length).
    fn update_padding_only(&mut self, data: &[u8]) {
        for &byte in data {
            self.buf[self.buf_len] = byte;
            self.buf_len += 1;
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                compress(&mut self.state, &block);
                self.compressions += 1;
                self.buf_len = 0;
            }
        }
    }

    /// One-shot digest of `data`.
    pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut hasher = Self::new();
        hasher.update(data);
        hasher.finalize()
    }
}

/// MGF1 mask generation function over SHA-256 (RFC 8017 §B.2.1), used by
/// `H_msg` to expand a digest to arbitrary length.
pub fn mgf1(seed: &[u8], out_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(out_len);
    let mut counter: u32 = 0;
    while out.len() < out_len {
        let mut hasher = Sha256::new();
        hasher.update(seed);
        hasher.update(&counter.to_be_bytes());
        out.extend_from_slice(&hasher.finalize());
        counter += 1;
    }
    out.truncate(out_len);
    out
}

/// Returns the number of compression calls SHA-256 performs for a message
/// of `message_len` bytes (including padding), starting from the IV.
///
/// The analytic kernel descriptors use this to count work without hashing.
pub fn compressions_for_len(message_len: usize) -> usize {
    // Padding adds 1 byte of 0x80 plus an 8-byte length, rounded up to 64.
    (message_len + 1 + 8).div_ceil(BLOCK_LEN)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_vector() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&Sha256::digest(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..997u32).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 63, 64, 65, 128, 996] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha256::digest(&data), "split={split}");
        }
    }

    #[test]
    fn state_resume_matches_full_hash() {
        // Precompute the state over one full block, resume, and compare.
        let prefix = [7u8; BLOCK_LEN];
        let suffix = b"tail bytes";
        let mut full = Sha256::new();
        full.update(&prefix);
        full.update(suffix);

        let mut pre = Sha256::new();
        pre.update(&prefix);
        assert_eq!(pre.buffered_len(), 0);
        let mut resumed = Sha256::from_state(pre.state(), BLOCK_LEN as u64);
        resumed.update(suffix);

        assert_eq!(full.finalize(), resumed.finalize());
    }

    #[test]
    fn compression_count_matches_formula() {
        for len in [0usize, 1, 55, 56, 63, 64, 119, 120, 128, 1000] {
            let mut h = Sha256::new();
            h.update(&vec![0u8; len]);
            let total = {
                let before = h.compressions();
                let _ = h.clone().finalize();
                before
            };
            // compressions() counts only update-phase work here; check the
            // full count via a fresh digest-like run.
            let mut h2 = Sha256::new();
            h2.update(&vec![0u8; len]);
            let mut h2c = h2.clone();
            let _ = h2c.finalize_count();
            assert_eq!(
                h2c.compressions() as usize,
                compressions_for_len(len),
                "len={len}"
            );
            let _ = total;
        }
    }

    impl Sha256 {
        /// Test helper: finalize in place so compression count is observable.
        fn finalize_count(&mut self) -> [u8; DIGEST_LEN] {
            let clone = self.clone();
            let digest = clone.finalize();
            // Re-run padding on self to update counters.
            let bit_len = self.total_len.wrapping_mul(8);
            self.update_padding_only(&[0x80]);
            while self.buf_len != 56 {
                self.update_padding_only(&[0]);
            }
            self.update_padding_only(&bit_len.to_be_bytes());
            digest
        }
    }

    #[test]
    fn multi_lane_matches_scalar_compress() {
        // Eight distinct blocks, one per lane, vs eight scalar calls.
        let mut blocks = [[0u8; BLOCK_LEN]; LANES];
        for (l, block) in blocks.iter_mut().enumerate() {
            for (i, byte) in block.iter_mut().enumerate() {
                *byte = (l * 37 + i * 11) as u8;
            }
        }
        let mut states = [H0; LANES];
        let refs: [&[u8; BLOCK_LEN]; LANES] = std::array::from_fn(|l| &blocks[l]);
        compress_x(&mut states, &refs);
        for l in 0..LANES {
            let mut scalar = H0;
            compress(&mut scalar, &blocks[l]);
            assert_eq!(states[l], scalar, "lane {l}");
        }
    }

    #[test]
    fn pad_in_place_matches_incremental_padding() {
        // Pad a tail after one absorbed block and compare against the
        // incremental hasher's digest for every boundary length.
        for tail_len in [0usize, 1, 54, 55, 56, 63, 64, 86, 119] {
            let tail: Vec<u8> = (0..tail_len as u32).map(|i| (i % 251) as u8).collect();
            let prefix = [0xA5u8; BLOCK_LEN];

            let mut buf = [0u8; 2 * BLOCK_LEN];
            buf[..tail.len()].copy_from_slice(&tail);
            let blocks = pad_in_place(&mut buf, tail.len(), BLOCK_LEN as u64);
            assert_eq!(blocks, (tail_len + 9).div_ceil(BLOCK_LEN).max(1));
            let mut state = {
                let mut h = Sha256::new();
                h.update(&prefix);
                h.state()
            };
            for b in 0..blocks {
                let block: &[u8; BLOCK_LEN] =
                    buf[b * BLOCK_LEN..(b + 1) * BLOCK_LEN].try_into().unwrap();
                compress(&mut state, block);
            }

            let mut reference = Sha256::new();
            reference.update(&prefix);
            reference.update(&tail);
            let expected = reference.finalize();
            let mut got = [0u8; DIGEST_LEN];
            for (i, word) in state.iter().enumerate() {
                got[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
            }
            assert_eq!(got, expected, "tail_len={tail_len}");
        }
    }

    #[test]
    fn sha256xn_broadcast_digests_each_lane() {
        let seeded = {
            let mut h = Sha256::new();
            h.update(&[7u8; BLOCK_LEN]);
            h.state()
        };
        let mut bufs = [[0u8; 2 * BLOCK_LEN]; LANES];
        for (l, buf) in bufs.iter_mut().enumerate() {
            buf[..40].copy_from_slice(&[l as u8; 40]);
            assert_eq!(pad_in_place(buf, 40, BLOCK_LEN as u64), 1);
        }
        let mut mx = Sha256xN::broadcast(seeded);
        let refs: [&[u8; BLOCK_LEN]; LANES] =
            std::array::from_fn(|l| bufs[l][..BLOCK_LEN].try_into().unwrap());
        mx.compress(&refs);
        for l in 0..LANES {
            let mut out = [0u8; 16];
            mx.digest_into(l, &mut out);
            let mut reference = Sha256::new();
            reference.update(&[7u8; BLOCK_LEN]);
            reference.update(&[l as u8; 40]);
            assert_eq!(out, reference.finalize()[..16], "lane {l}");
        }
    }

    #[test]
    fn mgf1_is_deterministic_prefix_consistent() {
        let a = mgf1(b"seed", 100);
        let b = mgf1(b"seed", 40);
        assert_eq!(&a[..40], &b[..]);
        assert_ne!(mgf1(b"seed2", 40), b);
    }
}
