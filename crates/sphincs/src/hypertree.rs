//! Hypertree (HT): `d` layers of XMSS (MSS + WOTS+) trees (§II-A3/A4).
//!
//! Layer 0 signs the FORS public key; each layer above signs the Merkle
//! root of the layer below; the top root is the SPHINCS+ public key root.
//! Every layer's Merkle tree is independent once its leaf index is known —
//! the tree-level parallelism behind HERO-Sign's `TREE_Sign` kernel.
//!
//! ```
//! use hero_sphincs::{hash::HashCtx, hypertree, params::Params};
//!
//! // Reduced shape (h=6, d=3): three layers of height-2 subtrees.
//! let mut params = Params::sphincs_128f();
//! params.h = 6;
//! params.d = 3;
//! let ctx = HashCtx::new(params, &[0u8; 16]);
//! let sk_seed = [1u8; 16];
//!
//! let root = hypertree::public_root(&ctx, &sk_seed);
//! // Sign an n-byte value (a FORS public key in the full scheme).
//! let sig = hypertree::sign(&ctx, &[9u8; 16], &sk_seed, 2, 1);
//! assert_eq!(sig.layers.len(), params.d);
//! assert_eq!(hypertree::root_from_sig(&ctx, &sig, &[9u8; 16], 2, 1), root);
//! ```

use crate::address::{Address, AddressType};
use crate::hash::HashCtx;
use crate::merkle;
use crate::params::Params;
use crate::wots;

/// One layer of a hypertree signature: a WOTS+ signature over the layer
/// below's root plus the authentication path of the signing leaf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XmssSig {
    /// WOTS+ signature (`len` nodes of `n` bytes).
    pub wots_sig: Vec<Vec<u8>>,
    /// Authentication path, `h/d` nodes.
    pub auth_path: Vec<Vec<u8>>,
}

/// A full hypertree signature: `d` [`XmssSig`] layers, bottom to top.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HtSignature {
    /// Per-layer signatures (layer 0 first).
    pub layers: Vec<XmssSig>,
}

/// Computes the WOTS+ leaf `leaf_idx` of the subtree at (`layer`, `tree`):
/// the compressed public key of that leaf's WOTS+ key pair.
///
/// This is `wots_gen_leaf` in the reference code — the register-hungry
/// routine Table III profiles.
pub fn wots_leaf(ctx: &HashCtx, sk_seed: &[u8], layer: u32, tree: u64, leaf_idx: u32) -> Vec<u8> {
    let mut out = vec![0u8; ctx.params().n];
    wots_leaf_into(ctx, sk_seed, layer, tree, leaf_idx, &mut out);
    out
}

/// [`wots_leaf`] writing the `n`-byte leaf into `out` — the allocation-free
/// treehash leaf filler (chains batched inside
/// [`wots::pk_gen_into`]).
pub fn wots_leaf_into(
    ctx: &HashCtx,
    sk_seed: &[u8],
    layer: u32,
    tree: u64,
    leaf_idx: u32,
    out: &mut [u8],
) {
    let mut adrs = Address::new();
    adrs.set_layer(layer);
    adrs.set_tree(tree);
    adrs.set_type(AddressType::WotsHash);
    adrs.set_keypair(leaf_idx);
    wots::pk_gen_into(ctx, sk_seed, &adrs, out);
}

/// Signs `msg` (an `n`-byte root or FORS pk) with the XMSS tree at
/// (`layer`, `tree`), using leaf `leaf_idx`. Returns the signature and the
/// tree's root.
pub fn xmss_sign(
    ctx: &HashCtx,
    msg: &[u8],
    sk_seed: &[u8],
    layer: u32,
    tree: u64,
    leaf_idx: u32,
) -> (XmssSig, Vec<u8>) {
    let params = *ctx.params();

    let mut wots_adrs = Address::new();
    wots_adrs.set_layer(layer);
    wots_adrs.set_tree(tree);
    wots_adrs.set_type(AddressType::WotsHash);
    wots_adrs.set_keypair(leaf_idx);
    let wots_sig = wots::sign(ctx, msg, sk_seed, &wots_adrs);

    let mut node_adrs = Address::new();
    node_adrs.set_layer(layer);
    node_adrs.set_tree(tree);
    node_adrs.set_type(AddressType::Tree);
    let out = merkle::treehash(
        ctx,
        params.tree_height(),
        leaf_idx,
        &node_adrs,
        |i, slot| wots_leaf_into(ctx, sk_seed, layer, tree, i, slot),
    );

    (
        XmssSig {
            wots_sig,
            auth_path: out.auth_path,
        },
        out.root,
    )
}

/// Recomputes the root of the XMSS tree at (`layer`, `tree`) from a
/// signature over `msg` at `leaf_idx`.
pub fn xmss_pk_from_sig(
    ctx: &HashCtx,
    sig: &XmssSig,
    msg: &[u8],
    layer: u32,
    tree: u64,
    leaf_idx: u32,
) -> Vec<u8> {
    let mut wots_adrs = Address::new();
    wots_adrs.set_layer(layer);
    wots_adrs.set_tree(tree);
    wots_adrs.set_type(AddressType::WotsHash);
    wots_adrs.set_keypair(leaf_idx);
    let leaf = wots::pk_from_sig(ctx, &sig.wots_sig, msg, &wots_adrs);

    let mut node_adrs = Address::new();
    node_adrs.set_layer(layer);
    node_adrs.set_tree(tree);
    node_adrs.set_type(AddressType::Tree);
    merkle::root_from_auth_path(ctx, &leaf, leaf_idx, &sig.auth_path, &node_adrs)
}

/// One signature's share of a batched XMSS layer recomputation: its
/// layer signature, the node it authenticates (FORS pk at layer 0, the
/// layer below's recovered root above), and its tree/leaf coordinates.
#[derive(Clone, Copy, Debug)]
pub struct XmssVerifyRequest<'a> {
    /// The layer's XMSS signature.
    pub sig: &'a XmssSig,
    /// The `n`-byte value the WOTS+ signature covers.
    pub msg: &'a [u8],
    /// Tree index within the layer.
    pub tree: u64,
    /// Leaf index within the tree.
    pub leaf_idx: u32,
}

/// [`xmss_pk_from_sig`] across many signatures sharing one layer: every
/// request's WOTS+ chains complete through one shared
/// [`wots::pk_from_sig_many`] lane batch, then every recovered leaf
/// climbs its authentication path in one combined
/// [`merkle::roots_from_auth_paths_many`] sweep. This is the batched
/// stage body the verify planner schedules per layer.
///
/// Output is byte-identical to calling [`xmss_pk_from_sig`] per request.
///
/// ```
/// use hero_sphincs::{hash::HashCtx, hypertree, params::Params};
///
/// let mut params = Params::sphincs_128f();
/// params.h = 6;
/// params.d = 3;
/// let ctx = HashCtx::new(params, &[0u8; 16]);
/// let (sig, root) = hypertree::xmss_sign(&ctx, &[9u8; 16], &[1u8; 16], 0, 2, 1);
/// let reqs = [hypertree::XmssVerifyRequest {
///     sig: &sig,
///     msg: &[9u8; 16],
///     tree: 2,
///     leaf_idx: 1,
/// }];
/// assert_eq!(hypertree::xmss_pk_from_sig_many(&ctx, 0, &reqs), vec![root]);
/// ```
pub fn xmss_pk_from_sig_many(
    ctx: &HashCtx,
    layer: u32,
    reqs: &[XmssVerifyRequest],
) -> Vec<Vec<u8>> {
    if reqs.is_empty() {
        return Vec::new();
    }
    let wots_adrs: Vec<Address> = reqs
        .iter()
        .map(|r| {
            let mut a = Address::new();
            a.set_layer(layer);
            a.set_tree(r.tree);
            a.set_type(AddressType::WotsHash);
            a.set_keypair(r.leaf_idx);
            a
        })
        .collect();
    let sigs: Vec<&[Vec<u8>]> = reqs.iter().map(|r| r.sig.wots_sig.as_slice()).collect();
    let msgs: Vec<&[u8]> = reqs.iter().map(|r| r.msg).collect();
    let leaves = wots::pk_from_sig_many(ctx, &sigs, &msgs, &wots_adrs);

    let jobs: Vec<merkle::AuthPathJob> = reqs
        .iter()
        .zip(&leaves)
        .map(|(r, leaf)| {
            let mut node_adrs = Address::new();
            node_adrs.set_layer(layer);
            node_adrs.set_tree(r.tree);
            node_adrs.set_type(AddressType::Tree);
            merkle::AuthPathJob {
                leaf,
                leaf_idx: r.leaf_idx,
                auth_path: &r.sig.auth_path,
                node_adrs,
                leaf_offset: 0,
            }
        })
        .collect();
    merkle::roots_from_auth_paths_many(ctx, &jobs)
}

/// Signs `msg` under the full hypertree, walking from (`tree_idx`,
/// `leaf_idx`) at layer 0 up to the top (the loop of Fig. 2 in the paper).
pub fn sign(
    ctx: &HashCtx,
    msg: &[u8],
    sk_seed: &[u8],
    mut tree_idx: u64,
    mut leaf_idx: u32,
) -> HtSignature {
    let params = *ctx.params();
    let mut layers = Vec::with_capacity(params.d);
    let mut root = msg.to_vec();
    for layer in 0..params.d as u32 {
        let (sig, new_root) = xmss_sign(ctx, &root, sk_seed, layer, tree_idx, leaf_idx);
        layers.push(sig);
        root = new_root;
        // Next layer: this tree's position within its parent.
        leaf_idx = (tree_idx & ((1 << params.tree_height()) - 1)) as u32;
        tree_idx >>= params.tree_height();
    }
    HtSignature { layers }
}

/// Verifies a hypertree signature over `msg`, returning the reconstructed
/// top root (compare against `pk_root`).
pub fn root_from_sig(
    ctx: &HashCtx,
    sig: &HtSignature,
    msg: &[u8],
    mut tree_idx: u64,
    mut leaf_idx: u32,
) -> Vec<u8> {
    let params = *ctx.params();
    assert_eq!(sig.layers.len(), params.d, "hypertree layer count");
    let mut node = msg.to_vec();
    for (layer, layer_sig) in sig.layers.iter().enumerate() {
        node = xmss_pk_from_sig(ctx, layer_sig, &node, layer as u32, tree_idx, leaf_idx);
        leaf_idx = (tree_idx & ((1 << params.tree_height()) - 1)) as u32;
        tree_idx >>= params.tree_height();
    }
    node
}

/// The hypertree public root: the root of the single top-layer tree.
pub fn public_root(ctx: &HashCtx, sk_seed: &[u8]) -> Vec<u8> {
    let params = *ctx.params();
    let layer = params.d as u32 - 1;
    let mut node_adrs = Address::new();
    node_adrs.set_layer(layer);
    node_adrs.set_tree(0);
    node_adrs.set_type(AddressType::Tree);
    merkle::treehash(ctx, params.tree_height(), 0, &node_adrs, |i, slot| {
        wots_leaf_into(ctx, sk_seed, layer, 0, i, slot)
    })
    .root
}

/// `F`-call census for one hypertree signature: `d` subtrees, each with
/// `2^h'` WOTS+ leaf generations plus the internal `H` nodes, plus the
/// WOTS+ signing chains (bounded by leaf generation, already counted via
/// pk_gen during treehash).
pub fn sign_hash_count(params: &Params) -> usize {
    let per_tree = params.subtree_leaves() * wots::pk_gen_hash_count(params)
        + merkle::internal_node_count(params.tree_height());
    params.d * per_tree
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reduced parameters keep hypertree tests fast: h=6, d=3 (h'=2).
    fn tiny_params() -> Params {
        let mut p = Params::sphincs_128f();
        p.h = 6;
        p.d = 3;
        p
    }

    fn setup() -> (Params, HashCtx, Vec<u8>) {
        let params = tiny_params();
        let ctx = HashCtx::new(params, &[21u8; 16]);
        (params, ctx, vec![6u8; 16])
    }

    #[test]
    fn xmss_roundtrip_all_leaves() {
        let (params, ctx, sk_seed) = setup();
        let msg = vec![0xC3u8; params.n];
        for leaf_idx in 0..params.subtree_leaves() as u32 {
            let (sig, root) = xmss_sign(&ctx, &msg, &sk_seed, 0, 3, leaf_idx);
            assert_eq!(xmss_pk_from_sig(&ctx, &sig, &msg, 0, 3, leaf_idx), root);
        }
    }

    #[test]
    fn ht_roundtrip() {
        let (params, ctx, sk_seed) = setup();
        let msg = vec![0x77u8; params.n];
        let pk_root = public_root(&ctx, &sk_seed);
        let idx_bits = params.h - params.tree_height();
        for tree_idx in [0u64, 1, (1 << idx_bits) - 1] {
            for leaf_idx in [0u32, params.subtree_leaves() as u32 - 1] {
                let sig = sign(&ctx, &msg, &sk_seed, tree_idx, leaf_idx);
                assert_eq!(
                    root_from_sig(&ctx, &sig, &msg, tree_idx, leaf_idx),
                    pk_root,
                    "tree={tree_idx} leaf={leaf_idx}"
                );
            }
        }
    }

    #[test]
    fn xmss_pk_from_sig_many_matches_per_request() {
        // Requests spanning different trees and leaves of one layer —
        // the verify planner's per-layer stage — must each recover a
        // root byte-identical to the scalar xmss_pk_from_sig.
        let (params, ctx, sk_seed) = setup();
        for count in [1usize, 2, 5] {
            let made: Vec<(XmssSig, Vec<u8>, u64, u32)> = (0..count)
                .map(|i| {
                    let msg: Vec<u8> = (0..params.n).map(|b| (i * 29 + b) as u8).collect();
                    let tree = i as u64 % 4;
                    let leaf_idx = i as u32 % params.subtree_leaves() as u32;
                    let (sig, _) = xmss_sign(&ctx, &msg, &sk_seed, 1, tree, leaf_idx);
                    (sig, msg, tree, leaf_idx)
                })
                .collect();
            let reqs: Vec<XmssVerifyRequest> = made
                .iter()
                .map(|(sig, msg, tree, leaf_idx)| XmssVerifyRequest {
                    sig,
                    msg,
                    tree: *tree,
                    leaf_idx: *leaf_idx,
                })
                .collect();
            let batched = xmss_pk_from_sig_many(&ctx, 1, &reqs);
            assert_eq!(batched.len(), count);
            for (i, (sig, msg, tree, leaf_idx)) in made.iter().enumerate() {
                assert_eq!(
                    batched[i],
                    xmss_pk_from_sig(&ctx, sig, msg, 1, *tree, *leaf_idx),
                    "count={count} request {i}"
                );
            }
        }
        assert!(xmss_pk_from_sig_many(&ctx, 0, &[]).is_empty());
    }

    #[test]
    fn ht_rejects_wrong_message() {
        let (params, ctx, sk_seed) = setup();
        let msg = vec![0x77u8; params.n];
        let bad = vec![0x78u8; params.n];
        let pk_root = public_root(&ctx, &sk_seed);
        let sig = sign(&ctx, &msg, &sk_seed, 2, 1);
        assert_ne!(root_from_sig(&ctx, &sig, &bad, 2, 1), pk_root);
    }

    #[test]
    fn ht_rejects_wrong_indices() {
        let (params, ctx, sk_seed) = setup();
        let msg = vec![0x77u8; params.n];
        let pk_root = public_root(&ctx, &sk_seed);
        let sig = sign(&ctx, &msg, &sk_seed, 2, 1);
        assert_ne!(root_from_sig(&ctx, &sig, &msg, 2, 2), pk_root);
        assert_ne!(root_from_sig(&ctx, &sig, &msg, 3, 1), pk_root);
    }

    #[test]
    fn wots_leaf_deterministic_and_positional() {
        let (_, ctx, sk_seed) = setup();
        let a = wots_leaf(&ctx, &sk_seed, 0, 0, 0);
        assert_eq!(a, wots_leaf(&ctx, &sk_seed, 0, 0, 0));
        assert_ne!(a, wots_leaf(&ctx, &sk_seed, 0, 0, 1));
        assert_ne!(a, wots_leaf(&ctx, &sk_seed, 0, 1, 0));
        assert_ne!(a, wots_leaf(&ctx, &sk_seed, 1, 0, 0));
    }

    #[test]
    fn hash_census_scales_with_d() {
        let p = Params::sphincs_128f();
        // 22 layers * (8 leaves * 560 + 7) = 22 * 4487 = 98,714 — the
        // "more than 100,000 hash computations" of the paper's intro.
        assert_eq!(sign_hash_count(&p), 22 * (8 * 560 + 7));
    }
}
