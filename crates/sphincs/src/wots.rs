//! WOTS+ (Winternitz One-Time Signature Plus).
//!
//! A WOTS+ key is `len` hash chains of length `w`; a signature reveals one
//! intermediate node per chain, positioned by the base-`w` digits of the
//! message plus a checksum (§II-A1 of the paper). Chains are mutually
//! independent — the property HERO-Sign's `WOTS+_Sign` kernel exploits with
//! chain-level thread parallelism.

use crate::address::{Address, AddressType};
use crate::hash::HashCtx;
use crate::params::Params;

/// Converts `msg` into `out_len` base-`w` digits (spec Algorithm 1).
///
/// # Panics
///
/// Panics if `msg` has fewer bits than `out_len` digits require.
pub fn base_w(params: &Params, msg: &[u8], out_len: usize) -> Vec<u32> {
    let log_w = params.log_w();
    assert!(
        msg.len() * 8 >= out_len * log_w,
        "message too short: {} bits for {} digits of {} bits",
        msg.len() * 8,
        out_len,
        log_w
    );
    let mut out = Vec::with_capacity(out_len);
    let mut bits: u32 = 0;
    let mut acc: u32 = 0;
    let mut idx = 0usize;
    for _ in 0..out_len {
        if bits < log_w as u32 {
            acc = (acc << 8) | msg[idx] as u32;
            idx += 1;
            bits += 8;
        }
        bits -= log_w as u32;
        out.push((acc >> bits) & (params.w as u32 - 1));
    }
    out
}

/// Computes the WOTS+ checksum digits for message digits `msg_w`
/// (spec Algorithm 5 lines 2-6).
pub fn checksum(params: &Params, msg_w: &[u32]) -> Vec<u32> {
    let mut csum: u32 = msg_w.iter().map(|&d| params.w as u32 - 1 - d).sum();
    // Left-shift so the checksum occupies whole bytes before base-w.
    let len2 = params.wots_len2();
    let log_w = params.log_w();
    let shift = (8 - (len2 * log_w) % 8) % 8;
    csum <<= shift;
    let csum_bytes_len = (len2 * log_w).div_ceil(8);
    let bytes = csum.to_be_bytes();
    let csum_bytes = &bytes[4 - csum_bytes_len..];
    base_w(params, csum_bytes, len2)
}

/// Message digits followed by checksum digits: the chain lengths a WOTS+
/// signature reveals.
pub fn chain_lengths(params: &Params, msg: &[u8]) -> Vec<u32> {
    let mut lengths = base_w(params, msg, params.wots_len1());
    lengths.extend(checksum(params, &lengths));
    debug_assert_eq!(lengths.len(), params.wots_len());
    lengths
}

/// Applies the chaining function: `steps` iterations of `F` starting from
/// position `start` (spec Algorithm 2).
///
/// `adrs` must have its chain index set; the hash index is written here.
pub fn chain(ctx: &HashCtx, x: &[u8], start: u32, steps: u32, adrs: &mut Address) -> Vec<u8> {
    let mut value = x.to_vec();
    for i in start..start + steps {
        adrs.set_hash(i);
        value = ctx.f(adrs, &value);
    }
    value
}

/// Derives the secret element for chain `chain_idx` of the key pair at
/// `adrs` (which carries layer/tree/keypair coordinates).
pub fn sk_element(ctx: &HashCtx, sk_seed: &[u8], adrs: &Address, chain_idx: u32) -> Vec<u8> {
    let mut sk_adrs = Address::new();
    sk_adrs.copy_subtree_from(adrs);
    sk_adrs.set_type(AddressType::WotsPrf);
    sk_adrs.set_keypair(adrs.keypair());
    sk_adrs.set_chain(chain_idx);
    ctx.prf(&sk_adrs, sk_seed)
}

/// Computes the WOTS+ public key (the `T_len` compression of all chain
/// ends) for the key pair at `adrs`.
pub fn pk_gen(ctx: &HashCtx, sk_seed: &[u8], adrs: &Address) -> Vec<u8> {
    let params = *ctx.params();
    let mut chain_ends = Vec::with_capacity(params.wots_len());
    let mut hash_adrs = *adrs;
    hash_adrs.set_type(AddressType::WotsHash);
    hash_adrs.set_keypair(adrs.keypair());
    for i in 0..params.wots_len() as u32 {
        let sk = sk_element(ctx, sk_seed, adrs, i);
        hash_adrs.set_chain(i);
        chain_ends.push(chain(ctx, &sk, 0, params.w as u32 - 1, &mut hash_adrs));
    }
    let mut pk_adrs = *adrs;
    pk_adrs.set_type(AddressType::WotsPk);
    pk_adrs.set_keypair(adrs.keypair());
    let parts: Vec<&[u8]> = chain_ends.iter().map(Vec::as_slice).collect();
    ctx.t_l(&pk_adrs, &parts)
}

/// Signs an `n`-byte message, revealing one chain node per digit.
pub fn sign(ctx: &HashCtx, msg: &[u8], sk_seed: &[u8], adrs: &Address) -> Vec<Vec<u8>> {
    let params = *ctx.params();
    debug_assert_eq!(msg.len(), params.n);
    let lengths = chain_lengths(&params, msg);
    let mut hash_adrs = *adrs;
    hash_adrs.set_type(AddressType::WotsHash);
    hash_adrs.set_keypair(adrs.keypair());
    lengths
        .iter()
        .enumerate()
        .map(|(i, &steps)| {
            let sk = sk_element(ctx, sk_seed, adrs, i as u32);
            hash_adrs.set_chain(i as u32);
            chain(ctx, &sk, 0, steps, &mut hash_adrs)
        })
        .collect()
}

/// Recomputes the public key from a signature (verification primitive).
pub fn pk_from_sig(ctx: &HashCtx, sig: &[Vec<u8>], msg: &[u8], adrs: &Address) -> Vec<u8> {
    let params = *ctx.params();
    debug_assert_eq!(sig.len(), params.wots_len());
    let lengths = chain_lengths(&params, msg);
    let mut hash_adrs = *adrs;
    hash_adrs.set_type(AddressType::WotsHash);
    hash_adrs.set_keypair(adrs.keypair());
    let chain_ends: Vec<Vec<u8>> = sig
        .iter()
        .zip(lengths.iter())
        .enumerate()
        .map(|(i, (node, &steps))| {
            hash_adrs.set_chain(i as u32);
            chain(
                ctx,
                node,
                steps,
                params.w as u32 - 1 - steps,
                &mut hash_adrs,
            )
        })
        .collect();
    let mut pk_adrs = *adrs;
    pk_adrs.set_type(AddressType::WotsPk);
    pk_adrs.set_keypair(adrs.keypair());
    let parts: Vec<&[u8]> = chain_ends.iter().map(Vec::as_slice).collect();
    ctx.t_l(&pk_adrs, &parts)
}

/// Total `F` invocations of one `wots_gen_leaf` (pk_gen): `len · (w-1)`
/// chain hashes plus `len` PRF calls — the per-leaf workload the paper
/// quotes as ~560 hashes for 128f (§III).
pub fn pk_gen_hash_count(params: &Params) -> usize {
    params.wots_len() * (params.w - 1) + params.wots_len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Params, HashCtx, Vec<u8>, Address) {
        let params = Params::sphincs_128f();
        let ctx = HashCtx::new(params, &[9u8; 16]);
        let sk_seed = vec![3u8; 16];
        let mut adrs = Address::new();
        adrs.set_layer(1);
        adrs.set_tree(5);
        adrs.set_keypair(2);
        (params, ctx, sk_seed, adrs)
    }

    #[test]
    fn base_w_extracts_nibbles() {
        let params = Params::sphincs_128f();
        let digits = base_w(&params, &[0x12, 0xAB], 4);
        assert_eq!(digits, vec![1, 2, 0xA, 0xB]);
    }

    #[test]
    #[should_panic(expected = "message too short")]
    fn base_w_rejects_short_input() {
        let params = Params::sphincs_128f();
        let _ = base_w(&params, &[0x12], 4);
    }

    #[test]
    fn checksum_zero_message_is_max() {
        // All digits 0 => csum = len1*(w-1) = 480 = 0x1E0.
        let params = Params::sphincs_128f();
        let msg_w = vec![0u32; params.wots_len1()];
        let digits = checksum(&params, &msg_w);
        assert_eq!(digits.len(), params.wots_len2());
        // 480 << 4 = 0x1E00 in 2 bytes -> digits 1, 14, 0.
        assert_eq!(digits, vec![1, 14, 0]);
    }

    #[test]
    fn chain_composes() {
        let (_, ctx, _, adrs) = setup();
        let x = vec![1u8; 16];
        let mut a1 = adrs;
        let full = chain(&ctx, &x, 0, 10, &mut a1);
        let mut a2 = adrs;
        let half = chain(&ctx, &x, 0, 4, &mut a2);
        let mut a3 = adrs;
        let rest = chain(&ctx, &half, 4, 6, &mut a3);
        assert_eq!(full, rest);
    }

    #[test]
    fn chain_zero_steps_is_identity() {
        let (_, ctx, _, adrs) = setup();
        let x = vec![1u8; 16];
        let mut a = adrs;
        assert_eq!(chain(&ctx, &x, 3, 0, &mut a), x);
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (params, ctx, sk_seed, adrs) = setup();
        let msg = vec![0x5Au8; params.n];
        let pk = pk_gen(&ctx, &sk_seed, &adrs);
        let sig = sign(&ctx, &msg, &sk_seed, &adrs);
        assert_eq!(sig.len(), params.wots_len());
        assert_eq!(pk_from_sig(&ctx, &sig, &msg, &adrs), pk);
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let (params, ctx, sk_seed, adrs) = setup();
        let msg = vec![0x5Au8; params.n];
        let other = vec![0x5Bu8; params.n];
        let pk = pk_gen(&ctx, &sk_seed, &adrs);
        let sig = sign(&ctx, &msg, &sk_seed, &adrs);
        assert_ne!(pk_from_sig(&ctx, &sig, &other, &adrs), pk);
    }

    #[test]
    fn verify_rejects_tampered_sig() {
        let (params, ctx, sk_seed, adrs) = setup();
        let msg = vec![0x5Au8; params.n];
        let pk = pk_gen(&ctx, &sk_seed, &adrs);
        let mut sig = sign(&ctx, &msg, &sk_seed, &adrs);
        sig[0][0] ^= 1;
        assert_ne!(pk_from_sig(&ctx, &sig, &msg, &adrs), pk);
    }

    #[test]
    fn different_keypairs_different_pks() {
        let (_, ctx, sk_seed, adrs) = setup();
        let mut adrs2 = adrs;
        adrs2.set_keypair(3);
        assert_ne!(
            pk_gen(&ctx, &sk_seed, &adrs),
            pk_gen(&ctx, &sk_seed, &adrs2)
        );
    }

    #[test]
    fn hash_count_matches_paper_order() {
        // §III: "approximately 560 iterations ... in one wots_gen_leaf"
        // for 128f. len·(w-1) = 35·15 = 525, plus 35 PRF calls = 560.
        assert_eq!(pk_gen_hash_count(&Params::sphincs_128f()), 560);
        assert_eq!(pk_gen_hash_count(&Params::sphincs_192f()), 816);
        assert_eq!(pk_gen_hash_count(&Params::sphincs_256f()), 1072);
    }

    #[test]
    fn chain_lengths_sum_bounded() {
        let params = Params::sphincs_128f();
        let lengths = chain_lengths(&params, &[0xFFu8; 16]);
        assert!(lengths.iter().all(|&l| l < params.w as u32));
    }
}
