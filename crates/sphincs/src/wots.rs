//! WOTS+ (Winternitz One-Time Signature Plus).
//!
//! A WOTS+ key is `len` hash chains of length `w`; a signature reveals one
//! intermediate node per chain, positioned by the base-`w` digits of the
//! message plus a checksum (§II-A1 of the paper). Chains are mutually
//! independent — the property HERO-Sign's `WOTS+_Sign` kernel exploits with
//! chain-level thread parallelism.
//!
//! On CPU the same independence is exploited across SIMD lanes: all `len`
//! chains live in one flat `n`-stride buffer and advance one `F` step per
//! round through [`HashCtx::f_many_at`], with chains that reached their
//! target length dropping out of the batch ([`pk_gen_into`], [`sign`],
//! [`pk_from_sig`]). One `pk_gen` performs zero heap allocations. The
//! chain step is whatever primitive the [`HashCtx`] carries — SHA-256
//! lanes and SHAKE-256 lanes batch identically.
//!
//! ```
//! use hero_sphincs::{address::Address, hash::HashCtx, params::Params, wots};
//!
//! let params = Params::sphincs_128f();
//! let ctx = HashCtx::new(params, &[0u8; 16]);
//! let sk_seed = [1u8; 16];
//! let mut adrs = Address::new();
//! adrs.set_keypair(3);
//!
//! let pk = wots::pk_gen(&ctx, &sk_seed, &adrs);
//! let sig = wots::sign(&ctx, &[7u8; 16], &sk_seed, &adrs);
//! // Verification recomputes the public key by finishing the chains.
//! assert_eq!(wots::pk_from_sig(&ctx, &sig, &[7u8; 16], &adrs), pk);
//! ```

use crate::address::{Address, AddressType};
use crate::hash::HashCtx;
use crate::params::Params;

/// Stack-buffer bound on `wots_len()`: the largest chain count any
/// parameter set accepted by `Params::validate()` can produce is 133
/// (`w = 4`, `n = 32`: `len1 = 128`, `len2 = 5`).
const MAX_LEN: usize = 136;
/// Stack-buffer bound on `n` (`validate()` caps it at 32).
const MAX_N: usize = 32;

/// Converts `msg` into `out_len` base-`w` digits (spec Algorithm 1).
///
/// # Panics
///
/// Panics if `msg` has fewer bits than `out_len` digits require.
pub fn base_w(params: &Params, msg: &[u8], out_len: usize) -> Vec<u32> {
    let log_w = params.log_w();
    assert!(
        msg.len() * 8 >= out_len * log_w,
        "message too short: {} bits for {} digits of {} bits",
        msg.len() * 8,
        out_len,
        log_w
    );
    let mut out = Vec::with_capacity(out_len);
    let mut bits: u32 = 0;
    let mut acc: u32 = 0;
    let mut idx = 0usize;
    for _ in 0..out_len {
        if bits < log_w as u32 {
            acc = (acc << 8) | msg[idx] as u32;
            idx += 1;
            bits += 8;
        }
        bits -= log_w as u32;
        out.push((acc >> bits) & (params.w as u32 - 1));
    }
    out
}

/// Computes the WOTS+ checksum digits for message digits `msg_w`
/// (spec Algorithm 5 lines 2-6).
pub fn checksum(params: &Params, msg_w: &[u32]) -> Vec<u32> {
    let mut csum: u32 = msg_w.iter().map(|&d| params.w as u32 - 1 - d).sum();
    // Left-shift so the checksum occupies whole bytes before base-w.
    let len2 = params.wots_len2();
    let log_w = params.log_w();
    let shift = (8 - (len2 * log_w) % 8) % 8;
    csum <<= shift;
    let csum_bytes_len = (len2 * log_w).div_ceil(8);
    let bytes = csum.to_be_bytes();
    let csum_bytes = &bytes[4 - csum_bytes_len..];
    base_w(params, csum_bytes, len2)
}

/// Message digits followed by checksum digits: the chain lengths a WOTS+
/// signature reveals.
pub fn chain_lengths(params: &Params, msg: &[u8]) -> Vec<u32> {
    let mut lengths = base_w(params, msg, params.wots_len1());
    lengths.extend(checksum(params, &lengths));
    debug_assert_eq!(lengths.len(), params.wots_len());
    lengths
}

/// Applies the chaining function: `steps` iterations of `F` starting from
/// position `start` (spec Algorithm 2).
///
/// `adrs` must have its chain index set; the hash index is written here.
pub fn chain(ctx: &HashCtx, x: &[u8], start: u32, steps: u32, adrs: &mut Address) -> Vec<u8> {
    let mut value = x.to_vec();
    let mut out = vec![0u8; value.len()];
    for i in start..start + steps {
        adrs.set_hash(i);
        ctx.f_into(adrs, &value, &mut out);
        std::mem::swap(&mut value, &mut out);
    }
    value
}

/// The PRF address deriving chain `chain_idx`'s secret element — the one
/// place the WotsPrf field sequence is spelled out; scalar
/// ([`sk_element`]) and batched paths share it.
fn prf_adrs_for(adrs: &Address, chain_idx: u32) -> Address {
    let mut a = Address::new();
    a.copy_subtree_from(adrs);
    a.set_type(AddressType::WotsPrf);
    a.set_keypair(adrs.keypair());
    a.set_chain(chain_idx);
    a
}

/// The `F`-chain address of chain `chain_idx` (hash index set per step by
/// the caller).
fn hash_adrs_for(adrs: &Address, chain_idx: u32) -> Address {
    let mut h = *adrs;
    h.set_type(AddressType::WotsHash);
    h.set_keypair(adrs.keypair());
    h.set_chain(chain_idx);
    h
}

/// Fills the per-chain PRF addresses for the key pair at `adrs`.
fn prf_addresses(adrs: &Address, len: usize, prf_adrs: &mut [Address; MAX_LEN]) {
    for (i, slot) in prf_adrs[..len].iter_mut().enumerate() {
        *slot = prf_adrs_for(adrs, i as u32);
    }
}

/// Fills the per-chain `F` addresses for the key pair at `adrs`.
/// Verification needs only these — chains start from revealed signature
/// nodes, so no PRF addresses are built there.
fn hash_addresses(adrs: &Address, len: usize, hash_adrs: &mut [Address; MAX_LEN]) {
    for (i, slot) in hash_adrs[..len].iter_mut().enumerate() {
        *slot = hash_adrs_for(adrs, i as u32);
    }
}

/// Advances every chain in the flat `values` buffer (`len` nodes of `n`
/// bytes): chain `i` runs `steps[i]` iterations of `F` from hash index
/// `starts[i]`. Each round batches all still-active chains into one
/// multi-lane sweep — the lockstep execution of the paper's `WOTS+_Sign`
/// warp, with finished chains retiring like masked-off threads.
///
/// `adrs_scratch`/`idx_scratch` are per-round staging buffers of at least
/// `len` entries, caller-provided so the single-keypair paths stay on
/// stack arrays while [`sign_many`] spans arbitrarily many keypairs.
fn advance_chains(
    ctx: &HashCtx,
    values: &mut [u8],
    hash_adrs: &[Address],
    starts: &[u32],
    steps: &[u32],
    adrs_scratch: &mut [Address],
    idx_scratch: &mut [usize],
) {
    let len = hash_adrs.len();
    debug_assert!(adrs_scratch.len() >= len && idx_scratch.len() >= len);
    let max_steps = steps.iter().copied().max().unwrap_or(0);
    for round in 0..max_steps {
        let mut active = 0usize;
        for i in 0..len {
            if round < steps[i] {
                let mut a = hash_adrs[i];
                a.set_hash(starts[i] + round);
                adrs_scratch[active] = a;
                idx_scratch[active] = i;
                active += 1;
            }
        }
        if active == 0 {
            break;
        }
        ctx.f_many_at(&adrs_scratch[..active], values, &idx_scratch[..active]);
    }
}

/// Derives the secret element for chain `chain_idx` of the key pair at
/// `adrs` (which carries layer/tree/keypair coordinates).
pub fn sk_element(ctx: &HashCtx, sk_seed: &[u8], adrs: &Address, chain_idx: u32) -> Vec<u8> {
    ctx.prf(&prf_adrs_for(adrs, chain_idx), sk_seed)
}

/// Computes the WOTS+ public key (the `T_len` compression of all chain
/// ends) for the key pair at `adrs`.
pub fn pk_gen(ctx: &HashCtx, sk_seed: &[u8], adrs: &Address) -> Vec<u8> {
    let mut out = vec![0u8; ctx.params().n];
    pk_gen_into(ctx, sk_seed, adrs, &mut out);
    out
}

/// [`pk_gen`] writing the `n`-byte public key into `out`, allocation-free:
/// all `len` chain seeds derive in one [`HashCtx::prf_many`] sweep, the
/// chains advance `w-1` batched rounds in a flat stack buffer, and the
/// final `T_len` compresses that buffer directly.
///
/// This is `wots_gen_leaf` — the treehash leaf routine whose ~560 hashes
/// per leaf dominate signing (§III of the paper).
pub fn pk_gen_into(ctx: &HashCtx, sk_seed: &[u8], adrs: &Address, out: &mut [u8]) {
    let params = *ctx.params();
    let len = params.wots_len();
    let n = params.n;
    assert!(
        len <= MAX_LEN && n <= MAX_N,
        "parameter set exceeds WOTS+ lane bounds"
    );

    let mut prf_adrs = [Address::new(); MAX_LEN];
    let mut hash_adrs = [Address::new(); MAX_LEN];
    prf_addresses(adrs, len, &mut prf_adrs);
    hash_addresses(adrs, len, &mut hash_adrs);

    let mut values = [0u8; MAX_LEN * MAX_N];
    let values = &mut values[..len * n];
    ctx.prf_many(&prf_adrs[..len], sk_seed, values);

    let starts = [0u32; MAX_LEN];
    let steps = [params.w as u32 - 1; MAX_LEN];
    let mut adrs_scratch = [Address::new(); MAX_LEN];
    let mut idx_scratch = [0usize; MAX_LEN];
    advance_chains(
        ctx,
        values,
        &hash_adrs[..len],
        &starts[..len],
        &steps[..len],
        &mut adrs_scratch,
        &mut idx_scratch,
    );

    let mut pk_adrs = *adrs;
    pk_adrs.set_type(AddressType::WotsPk);
    pk_adrs.set_keypair(adrs.keypair());
    ctx.t_l_flat_into(&pk_adrs, values, out);
}

/// Signs an `n`-byte message, revealing one chain node per digit.
///
/// Chains are batched across the `len` lanes; the per-chain step counts
/// come from the message digits, so lanes retire as their chains finish.
pub fn sign(ctx: &HashCtx, msg: &[u8], sk_seed: &[u8], adrs: &Address) -> Vec<Vec<u8>> {
    let params = *ctx.params();
    let len = params.wots_len();
    let n = params.n;
    debug_assert_eq!(msg.len(), n);
    assert!(
        len <= MAX_LEN && n <= MAX_N,
        "parameter set exceeds WOTS+ lane bounds"
    );
    let lengths = chain_lengths(&params, msg);

    let mut prf_adrs = [Address::new(); MAX_LEN];
    let mut hash_adrs = [Address::new(); MAX_LEN];
    prf_addresses(adrs, len, &mut prf_adrs);
    hash_addresses(adrs, len, &mut hash_adrs);

    let mut values = [0u8; MAX_LEN * MAX_N];
    let values = &mut values[..len * n];
    ctx.prf_many(&prf_adrs[..len], sk_seed, values);

    let starts = [0u32; MAX_LEN];
    let mut adrs_scratch = [Address::new(); MAX_LEN];
    let mut idx_scratch = [0usize; MAX_LEN];
    advance_chains(
        ctx,
        values,
        &hash_adrs[..len],
        &starts[..len],
        &lengths,
        &mut adrs_scratch,
        &mut idx_scratch,
    );

    values.chunks_exact(n).map(<[u8]>::to_vec).collect()
}

/// Signs many `n`-byte messages, each under its own keypair address, with
/// every chain of every request advancing through one shared multi-lane
/// batch. This is the cross-message chain group of the batch planner:
/// where a lone [`sign`] ends its rounds with fewer live chains than SHA
/// lanes (chains retire at their message digits), a group keeps the lanes
/// full with chains from the other requests. All requests share
/// `sk_seed` (one signing key signs the whole batch); `adrs_list[i]`
/// carries request `i`'s layer/tree/keypair coordinates.
///
/// Output is byte-identical to calling [`sign`] per request.
///
/// # Panics
///
/// Panics if `msgs.len() != adrs_list.len()`.
pub fn sign_many(
    ctx: &HashCtx,
    msgs: &[&[u8]],
    sk_seed: &[u8],
    adrs_list: &[Address],
) -> Vec<Vec<Vec<u8>>> {
    let params = *ctx.params();
    let len = params.wots_len();
    let n = params.n;
    assert_eq!(msgs.len(), adrs_list.len(), "one address per message");
    assert!(
        len <= MAX_LEN && n <= MAX_N,
        "parameter set exceeds WOTS+ lane bounds"
    );
    let count = msgs.len();
    if count == 0 {
        return Vec::new();
    }

    let total = count * len;
    let mut prf_adrs = vec![Address::new(); total];
    let mut hash_adrs = vec![Address::new(); total];
    let mut steps = vec![0u32; total];
    for (r, (msg, adrs)) in msgs.iter().zip(adrs_list).enumerate() {
        debug_assert_eq!(msg.len(), n);
        let lengths = chain_lengths(&params, msg);
        for i in 0..len {
            prf_adrs[r * len + i] = prf_adrs_for(adrs, i as u32);
            hash_adrs[r * len + i] = hash_adrs_for(adrs, i as u32);
            steps[r * len + i] = lengths[i];
        }
    }

    let mut values = vec![0u8; total * n];
    ctx.prf_many(&prf_adrs, sk_seed, &mut values);

    let starts = vec![0u32; total];
    let mut adrs_scratch = vec![Address::new(); total];
    let mut idx_scratch = vec![0usize; total];
    advance_chains(
        ctx,
        &mut values,
        &hash_adrs,
        &starts,
        &steps,
        &mut adrs_scratch,
        &mut idx_scratch,
    );

    (0..count)
        .map(|r| {
            values[r * len * n..(r + 1) * len * n]
                .chunks_exact(n)
                .map(<[u8]>::to_vec)
                .collect()
        })
        .collect()
}

/// Recomputes the public key from a signature (verification primitive).
///
/// The remaining `w-1-digit` steps of every chain run batched, exactly
/// mirroring [`sign`]. Only the chain addresses are built — chains start
/// from the revealed signature nodes, so no PRF material is needed.
///
/// # Panics
///
/// Panics if `sig` does not hold `wots_len()` nodes of `n` bytes each
/// (the library verify path checks shapes first and returns a typed
/// error).
pub fn pk_from_sig(ctx: &HashCtx, sig: &[Vec<u8>], msg: &[u8], adrs: &Address) -> Vec<u8> {
    let params = *ctx.params();
    let len = params.wots_len();
    let n = params.n;
    assert_eq!(sig.len(), len, "WOTS+ signature must have len nodes");
    assert!(
        len <= MAX_LEN && n <= MAX_N,
        "parameter set exceeds WOTS+ lane bounds"
    );
    let lengths = chain_lengths(&params, msg);

    let mut hash_adrs = [Address::new(); MAX_LEN];
    hash_addresses(adrs, len, &mut hash_adrs);

    let mut values = [0u8; MAX_LEN * MAX_N];
    let values = &mut values[..len * n];
    for (slot, node) in values.chunks_exact_mut(n).zip(sig) {
        assert_eq!(node.len(), n, "WOTS+ signature node must be n bytes");
        slot.copy_from_slice(node);
    }

    let mut remaining = [0u32; MAX_LEN];
    for (r, &digit) in remaining.iter_mut().zip(lengths.iter()) {
        *r = params.w as u32 - 1 - digit;
    }
    let mut adrs_scratch = [Address::new(); MAX_LEN];
    let mut idx_scratch = [0usize; MAX_LEN];
    advance_chains(
        ctx,
        values,
        &hash_adrs[..len],
        &lengths,
        &remaining[..len],
        &mut adrs_scratch,
        &mut idx_scratch,
    );

    let mut pk_adrs = *adrs;
    pk_adrs.set_type(AddressType::WotsPk);
    pk_adrs.set_keypair(adrs.keypair());
    let mut out = vec![0u8; n];
    ctx.t_l_flat_into(&pk_adrs, values, &mut out);
    out
}

/// Recomputes many WOTS+ public keys from signatures, each under its own
/// keypair address, with every chain of every request advancing through
/// one shared multi-lane batch — the verification twin of [`sign_many`].
/// Where signing runs `msg[i]` steps per chain, verification runs the
/// complementary `w-1-msg[i]` steps from the revealed node, so chains
/// retire at mixed lengths; batching across requests keeps the SIMD
/// lanes full as lone chains drop out (masked retirement).
///
/// Output is byte-identical to calling [`pk_from_sig`] per request.
///
/// ```
/// use hero_sphincs::{address::Address, hash::HashCtx, params::Params, wots};
///
/// let params = Params::sphincs_128f();
/// let ctx = HashCtx::new(params, &[0u8; 16]);
/// let sk_seed = [1u8; 16];
/// let mut a0 = Address::new();
/// a0.set_keypair(0);
/// let mut a1 = Address::new();
/// a1.set_keypair(1);
/// let msgs: [&[u8]; 2] = [&[7u8; 16], &[8u8; 16]];
///
/// let sigs = wots::sign_many(&ctx, &msgs, &sk_seed, &[a0, a1]);
/// let pks = wots::pk_from_sig_many(&ctx, &[&sigs[0], &sigs[1]], &msgs, &[a0, a1]);
/// assert_eq!(pks[0], wots::pk_gen(&ctx, &sk_seed, &a0));
/// assert_eq!(pks[1], wots::pk_gen(&ctx, &sk_seed, &a1));
/// ```
///
/// # Panics
///
/// Panics if the slice lengths disagree or any signature does not hold
/// `wots_len()` nodes of `n` bytes (the library verify path checks
/// shapes first and returns a typed error).
pub fn pk_from_sig_many(
    ctx: &HashCtx,
    sigs: &[&[Vec<u8>]],
    msgs: &[&[u8]],
    adrs_list: &[Address],
) -> Vec<Vec<u8>> {
    let params = *ctx.params();
    let len = params.wots_len();
    let n = params.n;
    assert_eq!(sigs.len(), msgs.len(), "one message per signature");
    assert_eq!(sigs.len(), adrs_list.len(), "one address per signature");
    assert!(
        len <= MAX_LEN && n <= MAX_N,
        "parameter set exceeds WOTS+ lane bounds"
    );
    let count = sigs.len();
    if count == 0 {
        return Vec::new();
    }

    let total = count * len;
    let mut hash_adrs = vec![Address::new(); total];
    let mut starts = vec![0u32; total];
    let mut steps = vec![0u32; total];
    let mut values = vec![0u8; total * n];
    for (r, ((sig, msg), adrs)) in sigs.iter().zip(msgs).zip(adrs_list).enumerate() {
        assert_eq!(sig.len(), len, "WOTS+ signature must have len nodes");
        debug_assert_eq!(msg.len(), n);
        let lengths = chain_lengths(&params, msg);
        for i in 0..len {
            hash_adrs[r * len + i] = hash_adrs_for(adrs, i as u32);
            starts[r * len + i] = lengths[i];
            steps[r * len + i] = params.w as u32 - 1 - lengths[i];
        }
        for (slot, node) in values[r * len * n..(r + 1) * len * n]
            .chunks_exact_mut(n)
            .zip(*sig)
        {
            assert_eq!(node.len(), n, "WOTS+ signature node must be n bytes");
            slot.copy_from_slice(node);
        }
    }

    let mut adrs_scratch = vec![Address::new(); total];
    let mut idx_scratch = vec![0usize; total];
    advance_chains(
        ctx,
        &mut values,
        &hash_adrs,
        &starts,
        &steps,
        &mut adrs_scratch,
        &mut idx_scratch,
    );

    adrs_list
        .iter()
        .enumerate()
        .map(|(r, adrs)| {
            let mut pk_adrs = *adrs;
            pk_adrs.set_type(AddressType::WotsPk);
            pk_adrs.set_keypair(adrs.keypair());
            let mut out = vec![0u8; n];
            ctx.t_l_flat_into(&pk_adrs, &values[r * len * n..(r + 1) * len * n], &mut out);
            out
        })
        .collect()
}

/// Total `F` invocations of one `wots_gen_leaf` (pk_gen): `len · (w-1)`
/// chain hashes plus `len` PRF calls — the per-leaf workload the paper
/// quotes as ~560 hashes for 128f (§III).
pub fn pk_gen_hash_count(params: &Params) -> usize {
    params.wots_len() * (params.w - 1) + params.wots_len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Params, HashCtx, Vec<u8>, Address) {
        let params = Params::sphincs_128f();
        let ctx = HashCtx::new(params, &[9u8; 16]);
        let sk_seed = vec![3u8; 16];
        let mut adrs = Address::new();
        adrs.set_layer(1);
        adrs.set_tree(5);
        adrs.set_keypair(2);
        (params, ctx, sk_seed, adrs)
    }

    #[test]
    fn base_w_extracts_nibbles() {
        let params = Params::sphincs_128f();
        let digits = base_w(&params, &[0x12, 0xAB], 4);
        assert_eq!(digits, vec![1, 2, 0xA, 0xB]);
    }

    #[test]
    #[should_panic(expected = "message too short")]
    fn base_w_rejects_short_input() {
        let params = Params::sphincs_128f();
        let _ = base_w(&params, &[0x12], 4);
    }

    #[test]
    fn checksum_zero_message_is_max() {
        // All digits 0 => csum = len1*(w-1) = 480 = 0x1E0.
        let params = Params::sphincs_128f();
        let msg_w = vec![0u32; params.wots_len1()];
        let digits = checksum(&params, &msg_w);
        assert_eq!(digits.len(), params.wots_len2());
        // 480 << 4 = 0x1E00 in 2 bytes -> digits 1, 14, 0.
        assert_eq!(digits, vec![1, 14, 0]);
    }

    #[test]
    fn chain_composes() {
        let (_, ctx, _, adrs) = setup();
        let x = vec![1u8; 16];
        let mut a1 = adrs;
        let full = chain(&ctx, &x, 0, 10, &mut a1);
        let mut a2 = adrs;
        let half = chain(&ctx, &x, 0, 4, &mut a2);
        let mut a3 = adrs;
        let rest = chain(&ctx, &half, 4, 6, &mut a3);
        assert_eq!(full, rest);
    }

    #[test]
    fn chain_zero_steps_is_identity() {
        let (_, ctx, _, adrs) = setup();
        let x = vec![1u8; 16];
        let mut a = adrs;
        assert_eq!(chain(&ctx, &x, 3, 0, &mut a), x);
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (params, ctx, sk_seed, adrs) = setup();
        let msg = vec![0x5Au8; params.n];
        let pk = pk_gen(&ctx, &sk_seed, &adrs);
        let sig = sign(&ctx, &msg, &sk_seed, &adrs);
        assert_eq!(sig.len(), params.wots_len());
        assert_eq!(pk_from_sig(&ctx, &sig, &msg, &adrs), pk);
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let (params, ctx, sk_seed, adrs) = setup();
        let msg = vec![0x5Au8; params.n];
        let other = vec![0x5Bu8; params.n];
        let pk = pk_gen(&ctx, &sk_seed, &adrs);
        let sig = sign(&ctx, &msg, &sk_seed, &adrs);
        assert_ne!(pk_from_sig(&ctx, &sig, &other, &adrs), pk);
    }

    #[test]
    fn verify_rejects_tampered_sig() {
        let (params, ctx, sk_seed, adrs) = setup();
        let msg = vec![0x5Au8; params.n];
        let pk = pk_gen(&ctx, &sk_seed, &adrs);
        let mut sig = sign(&ctx, &msg, &sk_seed, &adrs);
        sig[0][0] ^= 1;
        assert_ne!(pk_from_sig(&ctx, &sig, &msg, &adrs), pk);
    }

    #[test]
    fn sign_many_matches_per_request_sign() {
        // Requests at different layers/trees/keypairs — the mix a
        // cross-message chain group carries — must each be byte-identical
        // to a lone sign() call, for odd group sizes too.
        let (params, ctx, sk_seed, _) = setup();
        for count in [1usize, 2, 5] {
            let msgs_owned: Vec<Vec<u8>> = (0..count)
                .map(|i| (0..params.n).map(|b| (i * 37 + b) as u8).collect())
                .collect();
            let msgs: Vec<&[u8]> = msgs_owned.iter().map(Vec::as_slice).collect();
            let adrs_list: Vec<Address> = (0..count)
                .map(|i| {
                    let mut a = Address::new();
                    a.set_layer(i as u32 % 3);
                    a.set_tree(i as u64 * 11);
                    a.set_keypair(i as u32);
                    a
                })
                .collect();
            let batched = sign_many(&ctx, &msgs, &sk_seed, &adrs_list);
            assert_eq!(batched.len(), count);
            for i in 0..count {
                assert_eq!(
                    batched[i],
                    sign(&ctx, msgs[i], &sk_seed, &adrs_list[i]),
                    "count={count} request {i}"
                );
            }
        }
        assert!(sign_many(&ctx, &[], &sk_seed, &[]).is_empty());
    }

    #[test]
    fn pk_from_sig_many_matches_per_request() {
        // The verification twin of sign_many_matches_per_request_sign:
        // mixed layers/trees/keypairs, odd group sizes, every recovered
        // public key byte-identical to a lone pk_from_sig() call.
        let (params, ctx, sk_seed, _) = setup();
        for count in [1usize, 2, 5] {
            let msgs_owned: Vec<Vec<u8>> = (0..count)
                .map(|i| (0..params.n).map(|b| (i * 53 + b) as u8).collect())
                .collect();
            let msgs: Vec<&[u8]> = msgs_owned.iter().map(Vec::as_slice).collect();
            let adrs_list: Vec<Address> = (0..count)
                .map(|i| {
                    let mut a = Address::new();
                    a.set_layer(i as u32 % 3);
                    a.set_tree(i as u64 * 7);
                    a.set_keypair(i as u32 + 1);
                    a
                })
                .collect();
            let sigs = sign_many(&ctx, &msgs, &sk_seed, &adrs_list);
            let sig_refs: Vec<&[Vec<u8>]> = sigs.iter().map(Vec::as_slice).collect();
            let batched = pk_from_sig_many(&ctx, &sig_refs, &msgs, &adrs_list);
            assert_eq!(batched.len(), count);
            for i in 0..count {
                assert_eq!(
                    batched[i],
                    pk_from_sig(&ctx, &sigs[i], msgs[i], &adrs_list[i]),
                    "count={count} request {i}"
                );
                assert_eq!(
                    batched[i],
                    pk_gen(&ctx, &sk_seed, &adrs_list[i]),
                    "count={count} request {i} pk"
                );
            }
        }
        assert!(pk_from_sig_many(&ctx, &[], &[], &[]).is_empty());
    }

    #[test]
    fn different_keypairs_different_pks() {
        let (_, ctx, sk_seed, adrs) = setup();
        let mut adrs2 = adrs;
        adrs2.set_keypair(3);
        assert_ne!(
            pk_gen(&ctx, &sk_seed, &adrs),
            pk_gen(&ctx, &sk_seed, &adrs2)
        );
    }

    #[test]
    fn hash_count_matches_paper_order() {
        // §III: "approximately 560 iterations ... in one wots_gen_leaf"
        // for 128f. len·(w-1) = 35·15 = 525, plus 35 PRF calls = 560.
        assert_eq!(pk_gen_hash_count(&Params::sphincs_128f()), 560);
        assert_eq!(pk_gen_hash_count(&Params::sphincs_192f()), 816);
        assert_eq!(pk_gen_hash_count(&Params::sphincs_256f()), 1072);
    }

    #[test]
    fn chain_lengths_sum_bounded() {
        let params = Params::sphincs_128f();
        let lengths = chain_lengths(&params, &[0xFFu8; 16]);
        assert!(lengths.iter().all(|&l| l < params.w as u32));
    }

    #[test]
    fn small_w_parameter_sets_round_trip() {
        // Every (w, n) combination validate() accepts must fit the lane
        // buffers: w=4 with n=32 is the worst case (len = 133). (w=8
        // requires 3 | n for base_w to have enough digest bits; n=24 is
        // its only valid size here.)
        for (w, n) in [(4usize, 16usize), (4, 24), (4, 32), (8, 24)] {
            let mut params = Params::sphincs_256f();
            params.w = w;
            params.n = n;
            params.validate().unwrap();
            assert!(params.wots_len() <= MAX_LEN, "w={w} n={n}");
            let ctx = HashCtx::new(params, &vec![9u8; n]);
            let sk_seed = vec![3u8; n];
            let mut adrs = Address::new();
            adrs.set_keypair(1);
            let pk = pk_gen(&ctx, &sk_seed, &adrs);
            let msg = vec![0x6Cu8; n];
            let sig = sign(&ctx, &msg, &sk_seed, &adrs);
            assert_eq!(sig.len(), params.wots_len(), "w={w} n={n}");
            assert_eq!(pk_from_sig(&ctx, &sig, &msg, &adrs), pk, "w={w} n={n}");
        }
    }
}
