//! FORS (Forest Of Random Subsets) few-time signature scheme.
//!
//! `k` Merkle trees of height `log t`; the message digest selects one leaf
//! per tree, and the signature reveals that leaf's secret preimage plus its
//! authentication path (§II-A2 of the paper). Tree independence is the
//! parallelism HERO-Sign's FORS Fusion exploits.
//!
//! Leaf generation is fully batched: a tree's `t` leaves derive their
//! secrets with chunked [`HashCtx::prf_many`] sweeps straight into the
//! flat treehash buffer and hash to leaves in place with
//! [`HashCtx::f_many_at`] — the CPU mirror of the fused `Set` filling a
//! block's shared memory with one leaf per thread (§III-B).
//!
//! ```
//! use hero_sphincs::{address::{Address, AddressType}, fors, hash::HashCtx, params::Params};
//!
//! // Reduced shape: k=8 trees of 2^4 leaves keeps the example fast.
//! let mut params = Params::sphincs_128f();
//! params.log_t = 4;
//! params.k = 8;
//! let ctx = HashCtx::new(params, &[0u8; 16]);
//! let mut adrs = Address::new();
//! adrs.set_type(AddressType::ForsTree);
//!
//! // The message digest picks one leaf per tree (k·log_t = 32 bits).
//! let md = [0b1011_0001u8, 0x7f, 0x33, 0x04];
//! let sig = fors::sign(&ctx, &md, &[1u8; 16], &adrs);
//! assert_eq!(sig.trees.len(), params.k);
//! // Verification recomputes the k roots and compresses them.
//! let pk = fors::pk_from_sig(&ctx, &sig, &md, &adrs);
//! assert_eq!(pk.len(), params.n);
//! ```

use crate::address::{Address, AddressType};
use crate::hash::HashCtx;
use crate::merkle::{self, TreeHashOutput};
use crate::params::Params;

/// Leaves batched per scratch refill while filling a tree's bottom layer.
const LEAF_CHUNK: usize = 128;

/// One tree's share of a FORS signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForsTreeSig {
    /// Revealed secret element (`n` bytes).
    pub sk: Vec<u8>,
    /// Authentication path, `log t` nodes.
    pub auth_path: Vec<Vec<u8>>,
}

/// A complete FORS signature: one [`ForsTreeSig`] per tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForsSignature {
    /// Per-tree signatures, length `k`.
    pub trees: Vec<ForsTreeSig>,
}

impl ForsSignature {
    /// Serialized length in bytes for `params`.
    pub fn byte_len(params: &Params) -> usize {
        params.fors_sig_bytes()
    }
}

/// Maps the message digest `md` to `k` leaf indices, one per FORS tree
/// (spec Algorithm 14 `message_to_indices`): consumes `log_t` bits per
/// index, MSB first.
pub fn message_to_indices(params: &Params, md: &[u8]) -> Vec<u32> {
    let mut indices = Vec::with_capacity(params.k);
    let mut offset = 0usize;
    for _ in 0..params.k {
        let mut idx: u32 = 0;
        for _ in 0..params.log_t {
            let byte = md[offset >> 3];
            let bit = (byte >> (7 - (offset & 7))) & 1;
            idx = (idx << 1) | bit as u32;
            offset += 1;
        }
        indices.push(idx);
    }
    indices
}

/// The PRF address of the forest-global leaf slot `global_idx`
/// (`tree_idx · t + leaf_idx`) — the single place the ForsPrf field
/// sequence is spelled out; scalar and batched paths share it.
fn prf_adrs_for(keypair_adrs: &Address, global_idx: u32) -> Address {
    let mut adrs = Address::new();
    adrs.copy_subtree_from(keypair_adrs);
    adrs.set_type(AddressType::ForsPrf);
    adrs.set_keypair(keypair_adrs.keypair());
    adrs.set_tree_height(0);
    adrs.set_tree_index(global_idx);
    adrs
}

/// The leaf-hash (`F`) address of forest-global leaf slot `global_idx`.
fn leaf_adrs_for(keypair_adrs: &Address, global_idx: u32) -> Address {
    let mut adrs = Address::new();
    adrs.copy_subtree_from(keypair_adrs);
    adrs.set_type(AddressType::ForsTree);
    adrs.set_keypair(keypair_adrs.keypair());
    adrs.set_tree_height(0);
    adrs.set_tree_index(global_idx);
    adrs
}

/// Derives the secret element for leaf `leaf_idx` of FORS tree `tree_idx`.
///
/// The global leaf offset `tree_idx · t + leaf_idx` is the tree-index
/// field, matching the reference implementation's addressing.
pub fn sk_element(
    ctx: &HashCtx,
    sk_seed: &[u8],
    keypair_adrs: &Address,
    tree_idx: u32,
    leaf_idx: u32,
) -> Vec<u8> {
    let params = ctx.params();
    let global = tree_idx * params.t() as u32 + leaf_idx;
    ctx.prf(&prf_adrs_for(keypair_adrs, global), sk_seed)
}

/// Computes leaf `leaf_idx` of tree `tree_idx`: `F(PRF(..))`.
pub fn leaf(
    ctx: &HashCtx,
    sk_seed: &[u8],
    keypair_adrs: &Address,
    tree_idx: u32,
    leaf_idx: u32,
) -> Vec<u8> {
    let params = ctx.params();
    let sk = sk_element(ctx, sk_seed, keypair_adrs, tree_idx, leaf_idx);
    let global = tree_idx * params.t() as u32 + leaf_idx;
    ctx.f(&leaf_adrs_for(keypair_adrs, global), &sk)
}

/// The forest-global node address carried by every internal `H` of a
/// tree's reduction.
fn node_adrs_for(keypair_adrs: &Address) -> Address {
    let mut node_adrs = Address::new();
    node_adrs.copy_subtree_from(keypair_adrs);
    node_adrs.set_type(AddressType::ForsTree);
    node_adrs.set_keypair(keypair_adrs.keypair());
    node_adrs
}

/// Streams one tree's whole bottom layer into `buf`: chunks of
/// [`LEAF_CHUNK`] leaves run `PRF` then `F` through the multi-lane engine
/// directly into the flat level buffer.
fn fill_tree_leaves(
    ctx: &HashCtx,
    sk_seed: &[u8],
    keypair_adrs: &Address,
    leaf_offset: u32,
    buf: &mut [u8],
) {
    let n = ctx.params().n;
    let t = ctx.params().t();
    let mut prf_adrs = [Address::new(); LEAF_CHUNK];
    let mut leaf_adrs = [Address::new(); LEAF_CHUNK];
    let identity: [usize; LEAF_CHUNK] = std::array::from_fn(|j| j);
    let mut start = 0usize;
    while start < t {
        let chunk = LEAF_CHUNK.min(t - start);
        for j in 0..chunk {
            let global = leaf_offset + (start + j) as u32;
            prf_adrs[j] = prf_adrs_for(keypair_adrs, global);
            leaf_adrs[j] = leaf_adrs_for(keypair_adrs, global);
        }
        let slots = &mut buf[start * n..(start + chunk) * n];
        ctx.prf_many(&prf_adrs[..chunk], sk_seed, slots);
        ctx.f_many_at(&leaf_adrs[..chunk], slots, &identity[..chunk]);
        start += chunk;
    }
}

/// Tree-hashes FORS tree `tree_idx`, returning root and auth path for
/// `leaf_idx`.
///
/// The whole bottom layer is generated batched (`fill_tree_leaves`
/// streams `prf_many`/`f_many_at` chunks into the flat buffer);
/// [`tree_hash_many`] is the cross-message spelling that fuses several
/// trees into one sweep.
pub fn tree_hash(
    ctx: &HashCtx,
    sk_seed: &[u8],
    keypair_adrs: &Address,
    tree_idx: u32,
    leaf_idx: u32,
) -> TreeHashOutput {
    let params = *ctx.params();
    // Node addresses are forest-global: tree `j` occupies leaf slots
    // [j·t, (j+1)·t).
    let leaf_offset = tree_idx * params.t() as u32;
    merkle::treehash_flat(
        ctx,
        params.log_t,
        leaf_idx,
        &node_adrs_for(keypair_adrs),
        leaf_offset,
        |buf| fill_tree_leaves(ctx, sk_seed, keypair_adrs, leaf_offset, buf),
    )
}

/// One FORS tree of one message in a cross-message batch: the message's
/// keypair address (layer-0 tree/leaf coordinates) plus which of its `k`
/// trees to build and which leaf the digest selected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ForsTreeRequest {
    /// The message's FORS keypair address.
    pub keypair_adrs: Address,
    /// Tree index within the forest (`0..k`).
    pub tree_idx: u32,
    /// Leaf revealed by the message digest.
    pub leaf_idx: u32,
}

impl ForsTreeRequest {
    fn leaf_offset(&self, params: &Params) -> u32 {
        self.tree_idx * params.t() as u32
    }
}

/// [`tree_hash`] over many trees — possibly belonging to different
/// messages — in one [`merkle::treehash_many`] sweep: every reduction
/// level hashes all requests' sibling pairs through one combined
/// multi-lane batch, so the near-root levels (fewer nodes than lanes for
/// a single tree) stay full. Byte-identical per request to
/// [`tree_hash`].
pub fn tree_hash_many(
    ctx: &HashCtx,
    sk_seed: &[u8],
    reqs: &[ForsTreeRequest],
) -> Vec<TreeHashOutput> {
    let params = *ctx.params();
    let jobs: Vec<merkle::TreeHashJob> = reqs
        .iter()
        .map(|req| merkle::TreeHashJob {
            leaf_idx: req.leaf_idx,
            node_adrs: node_adrs_for(&req.keypair_adrs),
            leaf_offset: req.leaf_offset(&params),
        })
        .collect();
    merkle::treehash_many(ctx, params.log_t, &jobs, |j, buf| {
        let req = &reqs[j];
        fill_tree_leaves(
            ctx,
            sk_seed,
            &req.keypair_adrs,
            req.leaf_offset(&params),
            buf,
        )
    })
}

/// [`sk_element`] over a batch of requests in one `PRF` sweep (the
/// revealed-leaf secrets of a cross-message tree group).
pub fn sk_elements_many(ctx: &HashCtx, sk_seed: &[u8], reqs: &[ForsTreeRequest]) -> Vec<Vec<u8>> {
    let params = *ctx.params();
    let n = params.n;
    let adrs: Vec<Address> = reqs
        .iter()
        .map(|req| prf_adrs_for(&req.keypair_adrs, req.leaf_offset(&params) + req.leaf_idx))
        .collect();
    let mut out = vec![0u8; reqs.len() * n];
    ctx.prf_many(&adrs, sk_seed, &mut out);
    out.chunks_exact(n).map(<[u8]>::to_vec).collect()
}

/// Signs message digest `md`, producing one revealed leaf per tree.
pub fn sign(ctx: &HashCtx, md: &[u8], sk_seed: &[u8], keypair_adrs: &Address) -> ForsSignature {
    let params = *ctx.params();
    let indices = message_to_indices(&params, md);
    let trees = indices
        .iter()
        .enumerate()
        .map(|(tree_idx, &leaf_idx)| {
            let sk = sk_element(ctx, sk_seed, keypair_adrs, tree_idx as u32, leaf_idx);
            let out = tree_hash(ctx, sk_seed, keypair_adrs, tree_idx as u32, leaf_idx);
            ForsTreeSig {
                sk,
                auth_path: out.auth_path,
            }
        })
        .collect();
    ForsSignature { trees }
}

/// Recomputes the FORS public key from a signature and digest.
pub fn pk_from_sig(
    ctx: &HashCtx,
    sig: &ForsSignature,
    md: &[u8],
    keypair_adrs: &Address,
) -> Vec<u8> {
    let params = *ctx.params();
    let indices = message_to_indices(&params, md);
    assert_eq!(sig.trees.len(), params.k, "FORS signature tree count");

    let mut node_adrs = Address::new();
    node_adrs.copy_subtree_from(keypair_adrs);
    node_adrs.set_type(AddressType::ForsTree);
    node_adrs.set_keypair(keypair_adrs.keypair());

    let roots: Vec<Vec<u8>> = sig
        .trees
        .iter()
        .zip(indices.iter())
        .enumerate()
        .map(|(tree_idx, (tree_sig, &leaf_idx))| {
            // Leaf = F(sk) at the forest-global index.
            let mut leaf_adrs = node_adrs;
            leaf_adrs.set_tree_height(0);
            leaf_adrs.set_tree_index(tree_idx as u32 * params.t() as u32 + leaf_idx);
            let leaf = ctx.f(&leaf_adrs, &tree_sig.sk);
            merkle::root_from_auth_path_with_offset(
                ctx,
                &leaf,
                leaf_idx,
                &tree_sig.auth_path,
                &node_adrs,
                tree_idx as u32 * params.t() as u32,
            )
        })
        .collect();

    let mut roots_adrs = Address::new();
    roots_adrs.copy_subtree_from(keypair_adrs);
    roots_adrs.set_type(AddressType::ForsRoots);
    roots_adrs.set_keypair(keypair_adrs.keypair());
    let parts: Vec<&[u8]> = roots.iter().map(Vec::as_slice).collect();
    ctx.t_l(&roots_adrs, &parts)
}

/// Recomputes many FORS public keys from signatures in one batched
/// sweep — the verification twin of [`tree_hash_many`]. All `count · k`
/// revealed leaves hash in one [`HashCtx::f_many`] call, every tree of
/// every signature climbs its authentication path through the combined
/// per-level [`merkle::roots_from_auth_paths_many`] sweep (trees from
/// different signatures share SIMD lanes), and each signature compresses
/// its `k` roots with `T_k`.
///
/// Output is byte-identical to calling [`pk_from_sig`] per signature.
///
/// ```
/// use hero_sphincs::{address::{Address, AddressType}, fors, hash::HashCtx, params::Params};
///
/// let mut params = Params::sphincs_128f();
/// params.log_t = 4;
/// params.k = 8;
/// let ctx = HashCtx::new(params, &[0u8; 16]);
/// let mut adrs = Address::new();
/// adrs.set_type(AddressType::ForsTree);
/// let md = [0xB1u8, 0x7f, 0x33, 0x04];
/// let sig = fors::sign(&ctx, &md, &[1u8; 16], &adrs);
///
/// let pks = fors::pk_from_sig_many(&ctx, &[&sig], &[&md], &[adrs]);
/// assert_eq!(pks[0], fors::pk_from_sig(&ctx, &sig, &md, &adrs));
/// ```
///
/// # Panics
///
/// Panics if the slice lengths disagree or any signature's shape is
/// malformed (the library verify path checks shapes first and returns a
/// typed error).
pub fn pk_from_sig_many(
    ctx: &HashCtx,
    sigs: &[&ForsSignature],
    mds: &[&[u8]],
    keypair_adrs_list: &[Address],
) -> Vec<Vec<u8>> {
    let params = *ctx.params();
    let n = params.n;
    let k = params.k;
    let t = params.t() as u32;
    assert_eq!(sigs.len(), mds.len(), "one digest per signature");
    assert_eq!(
        sigs.len(),
        keypair_adrs_list.len(),
        "one address per signature"
    );
    let count = sigs.len();
    if count == 0 {
        return Vec::new();
    }

    // All revealed secrets hash to leaves in one F sweep at their
    // forest-global addresses.
    let mut indices = Vec::with_capacity(count);
    let mut leaf_adrs = Vec::with_capacity(count * k);
    let mut sk_flat = vec![0u8; count * k * n];
    for (s, (sig, md)) in sigs.iter().zip(mds).enumerate() {
        assert_eq!(sig.trees.len(), k, "FORS signature tree count");
        let idxs = message_to_indices(&params, md);
        for (tree_idx, (tree_sig, &leaf_idx)) in sig.trees.iter().zip(&idxs).enumerate() {
            assert_eq!(tree_sig.sk.len(), n, "FORS sk element must be n bytes");
            leaf_adrs.push(leaf_adrs_for(
                &keypair_adrs_list[s],
                tree_idx as u32 * t + leaf_idx,
            ));
            sk_flat[(s * k + tree_idx) * n..(s * k + tree_idx + 1) * n]
                .copy_from_slice(&tree_sig.sk);
        }
        indices.push(idxs);
    }
    let mut leaves = vec![0u8; count * k * n];
    ctx.f_many(&leaf_adrs, &sk_flat, &mut leaves);

    // Every tree of every signature climbs in one combined sweep.
    let jobs: Vec<merkle::AuthPathJob> = sigs
        .iter()
        .enumerate()
        .flat_map(|(s, sig)| {
            let node_adrs = node_adrs_for(&keypair_adrs_list[s]);
            let leaves = &leaves;
            let indices = &indices;
            sig.trees
                .iter()
                .enumerate()
                .map(move |(tree_idx, tree_sig)| merkle::AuthPathJob {
                    leaf: &leaves[(s * k + tree_idx) * n..(s * k + tree_idx + 1) * n],
                    leaf_idx: indices[s][tree_idx],
                    auth_path: &tree_sig.auth_path,
                    node_adrs,
                    leaf_offset: tree_idx as u32 * t,
                })
        })
        .collect();
    let roots = merkle::roots_from_auth_paths_many(ctx, &jobs);

    (0..count)
        .map(|s| {
            let mut roots_adrs = Address::new();
            roots_adrs.copy_subtree_from(&keypair_adrs_list[s]);
            roots_adrs.set_type(AddressType::ForsRoots);
            roots_adrs.set_keypair(keypair_adrs_list[s].keypair());
            let parts: Vec<&[u8]> = roots[s * k..(s + 1) * k]
                .iter()
                .map(Vec::as_slice)
                .collect();
            ctx.t_l(&roots_adrs, &parts)
        })
        .collect()
}

/// Hash-call census for one FORS signature generation (used by the GPU
/// cost model): per tree `t` PRF + `t` F leaves and `t-1` H nodes, plus the
/// final `T_k` roots compression.
pub fn sign_hash_count(params: &Params) -> usize {
    params.k * (2 * params.t() + params.t() - 1) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Params, HashCtx, Vec<u8>, Address) {
        let params = Params::sphincs_128f();
        let ctx = HashCtx::new(params, &[13u8; 16]);
        let sk_seed = vec![4u8; 16];
        let mut adrs = Address::new();
        adrs.set_tree(9);
        adrs.set_keypair(1);
        (params, ctx, sk_seed, adrs)
    }

    fn digest_for(params: &Params, fill: u8) -> Vec<u8> {
        vec![fill; (params.k * params.log_t).div_ceil(8)]
    }

    #[test]
    fn indices_extract_bits_msb_first() {
        let params = Params::sphincs_128f(); // log_t = 6
        let md = [0b1010_1011, 0b1100_0000];
        let idx = message_to_indices(
            &params,
            &vec![
                md[0], md[1], 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
            ],
        );
        assert_eq!(idx[0], 0b101010);
        assert_eq!(idx[1], 0b111100);
    }

    #[test]
    fn indices_in_range() {
        let (params, ctx, _, _) = setup();
        let md = ctx.h_msg(&[1; 16], &[2; 16], b"x");
        for idx in message_to_indices(&params, &md) {
            assert!((idx as usize) < params.t());
        }
    }

    #[test]
    fn sign_pk_roundtrip() {
        let (params, ctx, sk_seed, adrs) = setup();
        let md = digest_for(&params, 0xA7);
        let sig = sign(&ctx, &md, &sk_seed, &adrs);
        assert_eq!(sig.trees.len(), params.k);
        let pk1 = pk_from_sig(&ctx, &sig, &md, &adrs);
        let pk2 = pk_from_sig(&ctx, &sig, &md, &adrs);
        assert_eq!(pk1, pk2);
        assert_eq!(pk1.len(), params.n);
    }

    #[test]
    fn wrong_digest_changes_pk() {
        let (params, ctx, sk_seed, adrs) = setup();
        let md = digest_for(&params, 0xA7);
        let md2 = digest_for(&params, 0xA6);
        let sig = sign(&ctx, &md, &sk_seed, &adrs);
        assert_ne!(
            pk_from_sig(&ctx, &sig, &md, &adrs),
            pk_from_sig(&ctx, &sig, &md2, &adrs)
        );
    }

    #[test]
    fn tampered_sk_changes_pk() {
        let (params, ctx, sk_seed, adrs) = setup();
        let md = digest_for(&params, 0x33);
        let sig = sign(&ctx, &md, &sk_seed, &adrs);
        let pk = pk_from_sig(&ctx, &sig, &md, &adrs);
        let mut bad = sig.clone();
        bad.trees[0].sk[0] ^= 1;
        assert_ne!(pk_from_sig(&ctx, &bad, &md, &adrs), pk);
    }

    #[test]
    fn consistency_sign_derives_same_roots_as_treehash() {
        // The pk from a signature must equal the pk from recomputing all
        // trees directly.
        let (params, ctx, sk_seed, adrs) = setup();
        let md = digest_for(&params, 0x55);
        let indices = message_to_indices(&params, &md);
        let sig = sign(&ctx, &md, &sk_seed, &adrs);
        let pk = pk_from_sig(&ctx, &sig, &md, &adrs);

        // Direct computation.
        let roots: Vec<Vec<u8>> = (0..params.k as u32)
            .map(|t| tree_hash(&ctx, &sk_seed, &adrs, t, indices[t as usize]).root)
            .collect();
        let mut roots_adrs = Address::new();
        roots_adrs.copy_subtree_from(&adrs);
        roots_adrs.set_type(AddressType::ForsRoots);
        roots_adrs.set_keypair(adrs.keypair());
        let parts: Vec<&[u8]> = roots.iter().map(Vec::as_slice).collect();
        assert_eq!(ctx.t_l(&roots_adrs, &parts), pk);
    }

    #[test]
    fn tree_hash_many_matches_per_tree() {
        // Trees from two different "messages" (distinct keypair
        // addresses) interleaved in one request batch.
        let (params, ctx, sk_seed, adrs) = setup();
        let mut adrs2 = Address::new();
        adrs2.set_tree(12);
        adrs2.set_keypair(3);
        let reqs: Vec<ForsTreeRequest> = (0..5u32)
            .map(|i| ForsTreeRequest {
                keypair_adrs: if i % 2 == 0 { adrs } else { adrs2 },
                tree_idx: i % params.k as u32,
                leaf_idx: (i * 13) % params.t() as u32,
            })
            .collect();
        let many = tree_hash_many(&ctx, &sk_seed, &reqs);
        let sks = sk_elements_many(&ctx, &sk_seed, &reqs);
        for (i, req) in reqs.iter().enumerate() {
            let single = tree_hash(
                &ctx,
                &sk_seed,
                &req.keypair_adrs,
                req.tree_idx,
                req.leaf_idx,
            );
            assert_eq!(many[i], single, "request {i}");
            assert_eq!(
                sks[i],
                sk_element(
                    &ctx,
                    &sk_seed,
                    &req.keypair_adrs,
                    req.tree_idx,
                    req.leaf_idx
                ),
                "request {i} sk"
            );
        }
        assert!(tree_hash_many(&ctx, &sk_seed, &[]).is_empty());
    }

    #[test]
    fn pk_from_sig_many_matches_per_signature() {
        // Signatures under distinct keypair addresses and digests — the
        // cross-signature verify batch — must each recover a public key
        // byte-identical to the scalar pk_from_sig.
        let (params, ctx, sk_seed, _) = setup();
        for count in [1usize, 2, 4] {
            let sigs_md: Vec<(ForsSignature, Vec<u8>, Address)> = (0..count)
                .map(|i| {
                    let mut a = Address::new();
                    a.set_tree(i as u64 * 3 + 1);
                    a.set_keypair(i as u32);
                    let md = digest_for(&params, 0x41 + i as u8);
                    (sign(&ctx, &md, &sk_seed, &a), md, a)
                })
                .collect();
            let sigs: Vec<&ForsSignature> = sigs_md.iter().map(|(s, ..)| s).collect();
            let mds: Vec<&[u8]> = sigs_md.iter().map(|(_, md, _)| md.as_slice()).collect();
            let adrs_list: Vec<Address> = sigs_md.iter().map(|(.., a)| *a).collect();
            let batched = pk_from_sig_many(&ctx, &sigs, &mds, &adrs_list);
            assert_eq!(batched.len(), count);
            for (i, (sig, md, a)) in sigs_md.iter().enumerate() {
                assert_eq!(
                    batched[i],
                    pk_from_sig(&ctx, sig, md, a),
                    "count={count} signature {i}"
                );
            }
        }
        assert!(pk_from_sig_many(&ctx, &[], &[], &[]).is_empty());
    }

    #[test]
    fn hash_count_census() {
        let p = Params::sphincs_128f();
        // 33 trees * (64 PRF + 64 F + 63 H) + 1 = 33*191+1 = 6304.
        assert_eq!(sign_hash_count(&p), 6_304);
    }
}
