//! Generic Merkle tree-hash with authentication-path extraction.
//!
//! Used by both FORS trees and the hypertree's XMSS subtrees. The
//! level-by-level formulation here is deliberately the same shape as the
//! GPU kernels' tree-based reduction (Fig. 7 of the paper): compute all
//! leaves, then halve level by level.
//!
//! The hot path is allocation-free in the steady state: leaves are
//! produced into one flat `n`-stride buffer ([`treehash_flat`]), every
//! level is halved with one batched [`HashCtx::h_many`] sweep (the CPU
//! analogue of a warp hashing sibling pairs in lockstep), and
//! authentication-path siblings are sliced straight out of the flat level
//! buffer instead of cloning `Vec<Vec<u8>>` levels. Everything is
//! generic over the hash primitive carried by the [`HashCtx`].
//!
//! ```
//! use hero_sphincs::{address::Address, hash::HashCtx, merkle, params::Params};
//!
//! let ctx = HashCtx::new(Params::sphincs_128f(), &[0u8; 16]);
//! let adrs = Address::new();
//! // A height-3 tree whose leaf i is [i; 16]; extract leaf 5's path.
//! let out = merkle::treehash(&ctx, 3, 5, &adrs, |i, slot: &mut [u8]| {
//!     slot.fill(i as u8);
//! });
//! assert_eq!(out.auth_path.len(), 3);
//! let rebuilt = merkle::root_from_auth_path(&ctx, &[5u8; 16], 5, &out.auth_path, &adrs);
//! assert_eq!(rebuilt, out.root);
//! ```

use crate::address::Address;
use crate::hash::HashCtx;

/// Result of a treehash: the root plus the authentication path for one leaf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeHashOutput {
    /// Merkle root (`n` bytes).
    pub root: Vec<u8>,
    /// Sibling nodes from the leaf's level up (each `n` bytes).
    pub auth_path: Vec<Vec<u8>>,
}

/// Computes the Merkle root and the authentication path of `leaf_idx` for a
/// tree of `height` levels whose leaves are produced by
/// `leaf_fn(i, slot)` writing leaf `i` into the `n`-byte `slot`.
///
/// `node_adrs` carries the layer/tree coordinates; tree-height and
/// tree-index fields are set here for every internal `H` call.
///
/// # Panics
///
/// Panics if `leaf_idx >= 2^height`.
pub fn treehash<F>(
    ctx: &HashCtx,
    height: usize,
    leaf_idx: u32,
    node_adrs: &Address,
    leaf_fn: F,
) -> TreeHashOutput
where
    F: FnMut(u32, &mut [u8]),
{
    treehash_with_offset(ctx, height, leaf_idx, node_adrs, 0, leaf_fn)
}

/// [`treehash`] for a tree embedded in a forest: node addresses at level
/// `z` use index `(leaf_offset >> z) + i`, so each of the `k` FORS trees
/// hashes under forest-global coordinates (as the reference implementation
/// does).
///
/// # Panics
///
/// Panics if `leaf_idx >= 2^height` or `leaf_offset` is not a multiple of
/// `2^height`.
pub fn treehash_with_offset<F>(
    ctx: &HashCtx,
    height: usize,
    leaf_idx: u32,
    node_adrs: &Address,
    leaf_offset: u32,
    mut leaf_fn: F,
) -> TreeHashOutput
where
    F: FnMut(u32, &mut [u8]),
{
    let n = ctx.params().n;
    treehash_flat(ctx, height, leaf_idx, node_adrs, leaf_offset, |leaves| {
        for (i, slot) in leaves.chunks_exact_mut(n).enumerate() {
            leaf_fn(i as u32, slot);
        }
    })
}

/// The flat-buffer treehash core: `fill_leaves` writes all `2^height`
/// leaves into one `2^height * n`-byte buffer at once (letting the caller
/// batch leaf generation across the whole bottom layer), then levels halve
/// in place via [`HashCtx::h_many`].
///
/// # Panics
///
/// As [`treehash_with_offset`].
pub fn treehash_flat<F>(
    ctx: &HashCtx,
    height: usize,
    leaf_idx: u32,
    node_adrs: &Address,
    leaf_offset: u32,
    fill_leaves: F,
) -> TreeHashOutput
where
    F: FnOnce(&mut [u8]),
{
    let n = ctx.params().n;
    let num_leaves = 1usize << height;
    assert!((leaf_idx as usize) < num_leaves, "leaf index out of range");
    assert!(
        (leaf_offset as usize).is_multiple_of(num_leaves),
        "leaf offset must be a multiple of the tree size"
    );

    // Ping-pong level buffers: `level` holds the current level's nodes
    // contiguously, `next` receives the parents.
    let mut level = vec![0u8; num_leaves * n];
    fill_leaves(&mut level);
    let mut next = vec![0u8; (num_leaves / 2).max(1) * n];
    let mut adrs_buf: Vec<Address> = Vec::with_capacity(num_leaves / 2);

    let mut auth_path = Vec::with_capacity(height);
    let mut idx = leaf_idx;
    let mut adrs = *node_adrs;
    let mut len = num_leaves;

    for level_height in 1..=height {
        let sibling = (idx ^ 1) as usize;
        auth_path.push(level[sibling * n..(sibling + 1) * n].to_vec());

        adrs.set_tree_height(level_height as u32);
        let level_offset = leaf_offset >> level_height;
        let parents = len / 2;
        adrs_buf.clear();
        for i in 0..parents as u32 {
            let mut a = adrs;
            a.set_tree_index(level_offset + i);
            adrs_buf.push(a);
        }
        ctx.h_many(&adrs_buf, &level[..len * n], &mut next[..parents * n]);
        std::mem::swap(&mut level, &mut next);
        len = parents;
        idx >>= 1;
    }

    debug_assert_eq!(len, 1);
    TreeHashOutput {
        root: level[..n].to_vec(),
        auth_path,
    }
}

/// One tree's coordinates in a combined [`treehash_many`] sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeHashJob {
    /// Leaf whose authentication path is extracted.
    pub leaf_idx: u32,
    /// Layer/tree coordinates for node addressing.
    pub node_adrs: Address,
    /// Forest-global leaf offset (0 for hypertree subtrees, `tree·t` for
    /// FORS trees).
    pub leaf_offset: u32,
}

/// Builds many same-height trees in one sweep: every tree's level is
/// halved by a *single* combined [`HashCtx::h_many`] call over all jobs,
/// so the near-root levels — where one tree has fewer nodes than SHA
/// lanes — still fill the multi-lane engine with siblings from the other
/// jobs. The jobs may belong to different messages entirely (the
/// cross-message batching of the batch planner); per-job output is
/// byte-identical to calling [`treehash_flat`] per tree.
///
/// `fill_leaves(j, buf)` writes job `j`'s whole `2^height · n`-byte leaf
/// layer.
///
/// # Panics
///
/// As [`treehash_with_offset`], per job.
pub fn treehash_many<F>(
    ctx: &HashCtx,
    height: usize,
    jobs: &[TreeHashJob],
    mut fill_leaves: F,
) -> Vec<TreeHashOutput>
where
    F: FnMut(usize, &mut [u8]),
{
    let n = ctx.params().n;
    let num_leaves = 1usize << height;
    let jn = jobs.len();
    if jn == 0 {
        return Vec::new();
    }
    for job in jobs {
        assert!(
            (job.leaf_idx as usize) < num_leaves,
            "leaf index out of range"
        );
        assert!(
            (job.leaf_offset as usize).is_multiple_of(num_leaves),
            "leaf offset must be a multiple of the tree size"
        );
    }

    // One flat buffer holds every job's current level back to back; the
    // stride shrinks as levels halve, keeping each job's nodes contiguous
    // so sibling pairs never straddle a job boundary.
    let mut level = vec![0u8; jn * num_leaves * n];
    for (j, region) in level.chunks_exact_mut(num_leaves * n).enumerate() {
        fill_leaves(j, region);
    }
    let mut next = vec![0u8; jn * (num_leaves / 2).max(1) * n];
    let mut adrs_buf: Vec<Address> = Vec::with_capacity(jn * num_leaves / 2);

    let mut auth_paths: Vec<Vec<Vec<u8>>> = (0..jn).map(|_| Vec::with_capacity(height)).collect();
    let mut idxs: Vec<u32> = jobs.iter().map(|job| job.leaf_idx).collect();
    let mut len = num_leaves;

    for level_height in 1..=height {
        let parents = len / 2;
        adrs_buf.clear();
        for (j, job) in jobs.iter().enumerate() {
            let sibling = (idxs[j] ^ 1) as usize;
            let base = j * len * n;
            auth_paths[j].push(level[base + sibling * n..base + (sibling + 1) * n].to_vec());
            idxs[j] >>= 1;

            let mut adrs = job.node_adrs;
            adrs.set_tree_height(level_height as u32);
            let level_offset = job.leaf_offset >> level_height;
            for i in 0..parents as u32 {
                let mut a = adrs;
                a.set_tree_index(level_offset + i);
                adrs_buf.push(a);
            }
        }
        ctx.h_many(
            &adrs_buf,
            &level[..jn * len * n],
            &mut next[..jn * parents * n],
        );
        std::mem::swap(&mut level, &mut next);
        len = parents;
    }

    debug_assert_eq!(len, 1);
    auth_paths
        .into_iter()
        .enumerate()
        .map(|(j, auth_path)| TreeHashOutput {
            root: level[j * n..(j + 1) * n].to_vec(),
            auth_path,
        })
        .collect()
}

/// Every level of a built Merkle tree, bottom to top: level `0` is the
/// flat leaf layer (`2^height · n` bytes), level `z` the flat layer of
/// `2^(height−z)` nodes, and the top level the `n`-byte root.
///
/// Retaining the levels is what makes a subtree *memoizable*: the root
/// and the authentication path of **any** leaf can be sliced out later
/// without re-hashing ([`TreeLevels::output_for`]), byte-identical to
/// what [`treehash_flat`] would have extracted for that leaf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeLevels {
    n: usize,
    levels: Vec<Vec<u8>>,
}

impl TreeLevels {
    /// Tree height (number of halving levels retained above the leaves).
    pub fn height(&self) -> usize {
        self.levels.len() - 1
    }

    /// The `n`-byte Merkle root.
    pub fn root(&self) -> &[u8] {
        &self.levels[self.levels.len() - 1]
    }

    /// The authentication path of `leaf_idx`, sliced from the retained
    /// levels — byte-identical to [`treehash_flat`]'s path for the same
    /// leaf.
    ///
    /// # Panics
    ///
    /// Panics if `leaf_idx >= 2^height`.
    pub fn auth_path(&self, leaf_idx: u32) -> Vec<Vec<u8>> {
        let n = self.n;
        assert!(
            (leaf_idx as usize) < (1usize << self.height()),
            "leaf index out of range"
        );
        let mut idx = leaf_idx as usize;
        (0..self.height())
            .map(|z| {
                let sibling = idx ^ 1;
                let node = self.levels[z][sibling * n..(sibling + 1) * n].to_vec();
                idx >>= 1;
                node
            })
            .collect()
    }

    /// Root plus `leaf_idx`'s authentication path, as the
    /// [`TreeHashOutput`] a fresh treehash of this tree would produce.
    ///
    /// # Panics
    ///
    /// As [`TreeLevels::auth_path`].
    pub fn output_for(&self, leaf_idx: u32) -> TreeHashOutput {
        TreeHashOutput {
            root: self.root().to_vec(),
            auth_path: self.auth_path(leaf_idx),
        }
    }

    /// Total retained node bytes (`(2^(height+1) − 1) · n`) — the
    /// memoization layer's accounting unit for its memory bound.
    pub fn byte_len(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }
}

/// [`treehash_flat`] that retains every level instead of ping-ponging
/// them away, for memoization. The per-level hashing is the same batched
/// [`HashCtx::h_many`] sweep, so node bytes are identical.
///
/// # Panics
///
/// Panics if `leaf_offset` is not a multiple of `2^height`.
pub fn treehash_levels<F>(
    ctx: &HashCtx,
    height: usize,
    node_adrs: &Address,
    leaf_offset: u32,
    fill_leaves: F,
) -> TreeLevels
where
    F: FnOnce(&mut [u8]),
{
    let mut fill = Some(fill_leaves);
    let job = TreeHashJob {
        leaf_idx: 0,
        node_adrs: *node_adrs,
        leaf_offset,
    };
    treehash_many_levels(ctx, height, &[job], |_, buf| {
        (fill.take().expect("single job"))(buf)
    })
    .pop()
    .expect("one output per job")
}

/// [`treehash_many`] that retains every job's levels, for memoization:
/// the same combined per-level [`HashCtx::h_many`] sweep across all jobs,
/// but instead of one leaf's authentication path, each job keeps its
/// whole node pyramid ([`TreeLevels`]) so any leaf can be served later.
/// Jobs' `leaf_idx` fields are not consulted.
///
/// # Panics
///
/// Panics if any job's `leaf_offset` is not a multiple of `2^height`.
pub fn treehash_many_levels<F>(
    ctx: &HashCtx,
    height: usize,
    jobs: &[TreeHashJob],
    mut fill_leaves: F,
) -> Vec<TreeLevels>
where
    F: FnMut(usize, &mut [u8]),
{
    let n = ctx.params().n;
    let num_leaves = 1usize << height;
    let jn = jobs.len();
    if jn == 0 {
        return Vec::new();
    }
    for job in jobs {
        assert!(
            (job.leaf_offset as usize).is_multiple_of(num_leaves),
            "leaf offset must be a multiple of the tree size"
        );
    }

    let mut out: Vec<TreeLevels> = (0..jn)
        .map(|_| TreeLevels {
            n,
            levels: Vec::with_capacity(height + 1),
        })
        .collect();

    // Same flat shrinking-stride layout as `treehash_many`; each level is
    // copied out per job as it is produced.
    let mut level = vec![0u8; jn * num_leaves * n];
    for (j, region) in level.chunks_exact_mut(num_leaves * n).enumerate() {
        fill_leaves(j, region);
        out[j].levels.push(region.to_vec());
    }
    let mut next = vec![0u8; jn * (num_leaves / 2).max(1) * n];
    let mut adrs_buf: Vec<Address> = Vec::with_capacity(jn * num_leaves / 2);

    let mut len = num_leaves;
    for level_height in 1..=height {
        let parents = len / 2;
        adrs_buf.clear();
        for job in jobs {
            let mut adrs = job.node_adrs;
            adrs.set_tree_height(level_height as u32);
            let level_offset = job.leaf_offset >> level_height;
            for i in 0..parents as u32 {
                let mut a = adrs;
                a.set_tree_index(level_offset + i);
                adrs_buf.push(a);
            }
        }
        ctx.h_many(
            &adrs_buf,
            &level[..jn * len * n],
            &mut next[..jn * parents * n],
        );
        for (j, region) in next[..jn * parents * n]
            .chunks_exact(parents * n)
            .enumerate()
        {
            out[j].levels.push(region.to_vec());
        }
        std::mem::swap(&mut level, &mut next);
        len = parents;
    }
    out
}

/// Recomputes a Merkle root from a leaf and its authentication path
/// (verification side of [`treehash`]).
pub fn root_from_auth_path(
    ctx: &HashCtx,
    leaf: &[u8],
    leaf_idx: u32,
    auth_path: &[Vec<u8>],
    node_adrs: &Address,
) -> Vec<u8> {
    root_from_auth_path_with_offset(ctx, leaf, leaf_idx, auth_path, node_adrs, 0)
}

/// Verification counterpart of [`treehash_with_offset`].
pub fn root_from_auth_path_with_offset(
    ctx: &HashCtx,
    leaf: &[u8],
    leaf_idx: u32,
    auth_path: &[Vec<u8>],
    node_adrs: &Address,
    leaf_offset: u32,
) -> Vec<u8> {
    let n = ctx.params().n;
    let mut node = leaf.to_vec();
    let mut out = vec![0u8; n];
    let mut idx = leaf_idx;
    let mut adrs = *node_adrs;
    for (level, sibling) in auth_path.iter().enumerate() {
        let height = level as u32 + 1;
        adrs.set_tree_height(height);
        adrs.set_tree_index((leaf_offset >> height) + (idx >> 1));
        if idx & 1 == 0 {
            ctx.h_into(&adrs, &node, sibling, &mut out);
        } else {
            ctx.h_into(&adrs, sibling, &node, &mut out);
        }
        std::mem::swap(&mut node, &mut out);
        idx >>= 1;
    }
    node
}

/// One leaf-to-root recomputation in a batched auth-path sweep: the
/// verification-side analogue of [`TreeHashJob`]. `leaf_offset` embeds
/// the job's tree in a forest exactly as in
/// [`root_from_auth_path_with_offset`].
pub struct AuthPathJob<'a> {
    /// The recomputed leaf node (`n` bytes).
    pub leaf: &'a [u8],
    /// Index of the leaf within its tree.
    pub leaf_idx: u32,
    /// Sibling nodes from the leaf's level up (each `n` bytes).
    pub auth_path: &'a [Vec<u8>],
    /// Address carrying layer/tree coordinates; tree-height and
    /// tree-index are set here per level.
    pub node_adrs: Address,
    /// Forest-global index of the tree's first leaf.
    pub leaf_offset: u32,
}

/// Recomputes many Merkle roots from leaves and authentication paths in
/// one combined sweep: all jobs climb in lockstep, each level hashing
/// every job's (node, sibling) pair through a single batched
/// [`HashCtx::h_many`] call — the verification twin of
/// [`treehash_many`]. All jobs must share one auth-path height (true for
/// both FORS forests, `log_t` per tree, and XMSS layers, `tree_height`
/// per layer).
///
/// Output is byte-identical to calling [`root_from_auth_path_with_offset`]
/// per job.
///
/// ```
/// use hero_sphincs::{address::Address, hash::HashCtx, merkle, params::Params};
///
/// let ctx = HashCtx::new(Params::sphincs_128f(), &[0u8; 16]);
/// let adrs = Address::new();
/// let out = merkle::treehash(&ctx, 3, 5, &adrs, |i, slot: &mut [u8]| slot.fill(i as u8));
/// let jobs = [merkle::AuthPathJob {
///     leaf: &[5u8; 16],
///     leaf_idx: 5,
///     auth_path: &out.auth_path,
///     node_adrs: adrs,
///     leaf_offset: 0,
/// }];
/// assert_eq!(merkle::roots_from_auth_paths_many(&ctx, &jobs), vec![out.root]);
/// ```
///
/// # Panics
///
/// Panics if jobs disagree on auth-path height or any node is not `n`
/// bytes (the library verify path checks shapes first and returns a
/// typed error).
pub fn roots_from_auth_paths_many(ctx: &HashCtx, jobs: &[AuthPathJob]) -> Vec<Vec<u8>> {
    let n = ctx.params().n;
    let jn = jobs.len();
    if jn == 0 {
        return Vec::new();
    }
    let height = jobs[0].auth_path.len();
    let mut nodes = vec![0u8; jn * n];
    let mut idxs = vec![0u32; jn];
    for (j, job) in jobs.iter().enumerate() {
        assert_eq!(
            job.auth_path.len(),
            height,
            "all jobs must share one auth-path height"
        );
        assert_eq!(job.leaf.len(), n, "leaf must be n bytes");
        nodes[j * n..(j + 1) * n].copy_from_slice(job.leaf);
        idxs[j] = job.leaf_idx;
    }

    let mut pairs = vec![0u8; 2 * jn * n];
    let mut out = vec![0u8; jn * n];
    let mut adrs_buf: Vec<Address> = Vec::with_capacity(jn);
    for level in 0..height {
        let level_height = level as u32 + 1;
        adrs_buf.clear();
        for (j, job) in jobs.iter().enumerate() {
            let sibling = &job.auth_path[level];
            assert_eq!(sibling.len(), n, "auth-path node must be n bytes");
            let node = &nodes[j * n..(j + 1) * n];
            let pair = &mut pairs[j * 2 * n..(j + 1) * 2 * n];
            // Even index: the node is a left child, sibling on the right.
            if idxs[j] & 1 == 0 {
                pair[..n].copy_from_slice(node);
                pair[n..].copy_from_slice(sibling);
            } else {
                pair[..n].copy_from_slice(sibling);
                pair[n..].copy_from_slice(node);
            }
            let mut a = job.node_adrs;
            a.set_tree_height(level_height);
            a.set_tree_index((job.leaf_offset >> level_height) + (idxs[j] >> 1));
            adrs_buf.push(a);
            idxs[j] >>= 1;
        }
        ctx.h_many(&adrs_buf, &pairs, &mut out);
        std::mem::swap(&mut nodes, &mut out);
    }
    nodes.chunks_exact(n).map(<[u8]>::to_vec).collect()
}

/// Number of `H` calls a treehash of `height` performs: `2^height - 1`.
pub fn internal_node_count(height: usize) -> usize {
    (1 << height) - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;

    fn ctx() -> HashCtx {
        HashCtx::new(Params::sphincs_128f(), &[11u8; 16])
    }

    fn leaf(i: u32, slot: &mut [u8]) {
        slot.fill(0);
        slot[..4].copy_from_slice(&i.to_be_bytes());
    }

    fn leaf_vec(i: u32) -> Vec<u8> {
        let mut v = vec![0u8; 16];
        leaf(i, &mut v);
        v
    }

    #[test]
    fn auth_path_reconstructs_root_every_leaf() {
        let ctx = ctx();
        let adrs = Address::new();
        let height = 4;
        for leaf_idx in 0..(1u32 << height) {
            let out = treehash(&ctx, height, leaf_idx, &adrs, leaf);
            assert_eq!(out.auth_path.len(), height);
            let rebuilt =
                root_from_auth_path(&ctx, &leaf_vec(leaf_idx), leaf_idx, &out.auth_path, &adrs);
            assert_eq!(rebuilt, out.root, "leaf {leaf_idx}");
        }
    }

    #[test]
    fn flat_fill_matches_per_leaf_fill() {
        let ctx = ctx();
        let adrs = Address::new();
        for leaf_idx in [0u32, 3, 7] {
            let per_leaf = treehash(&ctx, 3, leaf_idx, &adrs, leaf);
            let flat = treehash_flat(&ctx, 3, leaf_idx, &adrs, 0, |buf| {
                for (i, slot) in buf.chunks_exact_mut(16).enumerate() {
                    leaf(i as u32, slot);
                }
            });
            assert_eq!(per_leaf, flat);
        }
    }

    #[test]
    fn scalar_oracle_agrees_with_batched_levels() {
        // Reference model: explicit Vec<Vec<u8>> levels hashed with the
        // scalar two-to-one H (the seed-era implementation).
        let ctx = ctx();
        let mut base = Address::new();
        base.set_tree(3);
        let height = 5;
        let leaf_offset = 3 << height;
        let leaf_idx = 11u32;

        let mut level: Vec<Vec<u8>> = (0..1u32 << height).map(leaf_vec).collect();
        let mut idx = leaf_idx;
        let mut adrs = base;
        let mut expected_path = Vec::new();
        for level_height in 1..=height {
            expected_path.push(level[(idx ^ 1) as usize].clone());
            adrs.set_tree_height(level_height as u32);
            let level_offset = leaf_offset >> level_height;
            level = (0..level.len() / 2)
                .map(|i| {
                    adrs.set_tree_index(level_offset + i as u32);
                    ctx.h(&adrs, &level[2 * i], &level[2 * i + 1])
                })
                .collect();
            idx >>= 1;
        }

        let out = treehash_with_offset(&ctx, height, leaf_idx, &base, leaf_offset, leaf);
        assert_eq!(out.root, level[0]);
        assert_eq!(out.auth_path, expected_path);
    }

    #[test]
    fn batched_auth_path_sweep_matches_scalar_climb() {
        // Jobs spanning different trees of a forest, different leaves,
        // and offsets — the FORS verification mix — must each be
        // byte-identical to a lone root_from_auth_path_with_offset.
        let ctx = ctx();
        for jn in [1usize, 2, 5, 8] {
            let height = 4;
            let outs: Vec<(u32, u32, Address, TreeHashOutput)> = (0..jn)
                .map(|t| {
                    let mut adrs = Address::new();
                    adrs.set_tree(t as u64);
                    let leaf_idx = (t as u32 * 5) % (1 << height);
                    let leaf_offset = (t as u32) << height;
                    let out =
                        treehash_with_offset(&ctx, height, leaf_idx, &adrs, leaf_offset, leaf);
                    (leaf_idx, leaf_offset, adrs, out)
                })
                .collect();
            let leaves: Vec<Vec<u8>> = outs.iter().map(|(idx, ..)| leaf_vec(*idx)).collect();
            let jobs: Vec<AuthPathJob> = outs
                .iter()
                .zip(&leaves)
                .map(|((leaf_idx, leaf_offset, adrs, out), leaf)| AuthPathJob {
                    leaf,
                    leaf_idx: *leaf_idx,
                    auth_path: &out.auth_path,
                    node_adrs: *adrs,
                    leaf_offset: *leaf_offset,
                })
                .collect();
            let roots = roots_from_auth_paths_many(&ctx, &jobs);
            assert_eq!(roots.len(), jn);
            for (j, ((leaf_idx, leaf_offset, adrs, out), root)) in
                outs.iter().zip(&roots).enumerate()
            {
                assert_eq!(root, &out.root, "jn={jn} job {j} root");
                let scalar = root_from_auth_path_with_offset(
                    &ctx,
                    &leaves[j],
                    *leaf_idx,
                    &out.auth_path,
                    adrs,
                    *leaf_offset,
                );
                assert_eq!(root, &scalar, "jn={jn} job {j} scalar");
            }
        }
        assert!(roots_from_auth_paths_many(&ctx, &[]).is_empty());
    }

    #[test]
    fn root_independent_of_chosen_leaf() {
        let ctx = ctx();
        let adrs = Address::new();
        let r0 = treehash(&ctx, 3, 0, &adrs, leaf).root;
        let r7 = treehash(&ctx, 3, 7, &adrs, leaf).root;
        assert_eq!(r0, r7);
    }

    #[test]
    fn wrong_leaf_fails_reconstruction() {
        let ctx = ctx();
        let adrs = Address::new();
        let out = treehash(&ctx, 3, 2, &adrs, leaf);
        let rebuilt = root_from_auth_path(&ctx, &leaf_vec(3), 2, &out.auth_path, &adrs);
        assert_ne!(rebuilt, out.root);
    }

    #[test]
    fn tampered_path_fails_reconstruction() {
        let ctx = ctx();
        let adrs = Address::new();
        let mut out = treehash(&ctx, 3, 5, &adrs, leaf);
        out.auth_path[1][0] ^= 0x80;
        let rebuilt = root_from_auth_path(&ctx, &leaf_vec(5), 5, &out.auth_path, &adrs);
        assert_ne!(rebuilt, out.root);
    }

    #[test]
    fn height_zero_tree() {
        let ctx = ctx();
        let adrs = Address::new();
        let out = treehash(&ctx, 0, 0, &adrs, leaf);
        assert_eq!(out.root, leaf_vec(0));
        assert!(out.auth_path.is_empty());
    }

    #[test]
    #[should_panic(expected = "leaf index out of range")]
    fn leaf_index_bounds_checked() {
        let ctx = ctx();
        let adrs = Address::new();
        let _ = treehash(&ctx, 2, 4, &adrs, leaf);
    }

    #[test]
    fn internal_counts() {
        assert_eq!(internal_node_count(0), 0);
        assert_eq!(internal_node_count(6), 63);
        assert_eq!(internal_node_count(9), 511);
    }

    #[test]
    fn treehash_many_matches_per_tree_flat() {
        // Jobs with different addresses, offsets, and leaf indices (as a
        // cross-message batch would mix) must each reproduce the
        // single-tree output exactly.
        let ctx = ctx();
        let height = 3;
        let jobs: Vec<TreeHashJob> = (0..5u32)
            .map(|j| {
                let mut adrs = Address::new();
                adrs.set_tree(j as u64 * 7);
                TreeHashJob {
                    leaf_idx: j % (1 << height),
                    node_adrs: adrs,
                    leaf_offset: j * (1 << height),
                }
            })
            .collect();
        // Leaves differ per job so cross-job mixups would be caught.
        let many = treehash_many(&ctx, height, &jobs, |j, buf| {
            for (i, slot) in buf.chunks_exact_mut(16).enumerate() {
                leaf(i as u32 + 100 * j as u32, slot);
            }
        });
        for (j, job) in jobs.iter().enumerate() {
            let single = treehash_flat(
                &ctx,
                height,
                job.leaf_idx,
                &job.node_adrs,
                job.leaf_offset,
                |buf| {
                    for (i, slot) in buf.chunks_exact_mut(16).enumerate() {
                        leaf(i as u32 + 100 * j as u32, slot);
                    }
                },
            );
            assert_eq!(many[j], single, "job {j}");
        }
    }

    #[test]
    fn treehash_many_single_job_and_empty() {
        let ctx = ctx();
        let adrs = Address::new();
        let job = TreeHashJob {
            leaf_idx: 2,
            node_adrs: adrs,
            leaf_offset: 0,
        };
        let many = treehash_many(&ctx, 3, &[job], |_, buf| {
            for (i, slot) in buf.chunks_exact_mut(16).enumerate() {
                leaf(i as u32, slot);
            }
        });
        assert_eq!(many[0], treehash(&ctx, 3, 2, &adrs, leaf));
        assert!(treehash_many(&ctx, 3, &[], |_, _| {}).is_empty());
    }

    #[test]
    fn treehash_many_height_zero() {
        let ctx = ctx();
        let jobs = [
            TreeHashJob {
                leaf_idx: 0,
                node_adrs: Address::new(),
                leaf_offset: 0,
            },
            TreeHashJob {
                leaf_idx: 0,
                node_adrs: Address::new(),
                leaf_offset: 5,
            },
        ];
        let out = treehash_many(&ctx, 0, &jobs, |j, buf| leaf(j as u32, buf));
        assert_eq!(out[0].root, leaf_vec(0));
        assert_eq!(out[1].root, leaf_vec(1));
        assert!(out[0].auth_path.is_empty());
    }

    #[test]
    fn retained_levels_serve_every_leaf_byte_identically() {
        let ctx = ctx();
        let mut adrs = Address::new();
        adrs.set_tree(9);
        let height = 4;
        let fill = |buf: &mut [u8]| {
            for (i, slot) in buf.chunks_exact_mut(16).enumerate() {
                leaf(i as u32, slot);
            }
        };
        let levels = treehash_levels(&ctx, height, &adrs, 0, fill);
        assert_eq!(levels.height(), height);
        assert_eq!(levels.byte_len(), ((1 << (height + 1)) - 1) * 16);
        for leaf_idx in 0..(1u32 << height) {
            let fresh = treehash_flat(&ctx, height, leaf_idx, &adrs, 0, fill);
            assert_eq!(levels.output_for(leaf_idx), fresh, "leaf {leaf_idx}");
        }
    }

    #[test]
    fn many_levels_match_single_levels_with_offsets() {
        let ctx = ctx();
        let height = 3;
        let jobs: Vec<TreeHashJob> = (0..4u32)
            .map(|j| {
                let mut adrs = Address::new();
                adrs.set_tree(j as u64 * 5);
                TreeHashJob {
                    leaf_idx: 0,
                    node_adrs: adrs,
                    leaf_offset: j * (1 << height),
                }
            })
            .collect();
        let many = treehash_many_levels(&ctx, height, &jobs, |j, buf| {
            for (i, slot) in buf.chunks_exact_mut(16).enumerate() {
                leaf(i as u32 + 50 * j as u32, slot);
            }
        });
        for (j, job) in jobs.iter().enumerate() {
            let single = treehash_levels(&ctx, height, &job.node_adrs, job.leaf_offset, |buf| {
                for (i, slot) in buf.chunks_exact_mut(16).enumerate() {
                    leaf(i as u32 + 50 * j as u32, slot);
                }
            });
            assert_eq!(many[j], single, "job {j}");
            // And the sliced output matches the auth-path treehash.
            let fresh = treehash_flat(&ctx, height, 5, &job.node_adrs, job.leaf_offset, |buf| {
                for (i, slot) in buf.chunks_exact_mut(16).enumerate() {
                    leaf(i as u32 + 50 * j as u32, slot);
                }
            });
            assert_eq!(many[j].output_for(5), fresh, "job {j}");
        }
        assert!(treehash_many_levels(&ctx, height, &[], |_, _| {}).is_empty());
    }

    #[test]
    fn levels_height_zero() {
        let ctx = ctx();
        let adrs = Address::new();
        let levels = treehash_levels(&ctx, 0, &adrs, 0, |buf| leaf(7, buf));
        assert_eq!(levels.height(), 0);
        assert_eq!(levels.root(), &leaf_vec(7)[..]);
        assert!(levels.auth_path(0).is_empty());
        assert_eq!(levels.byte_len(), 16);
    }

    #[test]
    #[should_panic(expected = "leaf index out of range")]
    fn levels_leaf_bounds_checked() {
        let ctx = ctx();
        let adrs = Address::new();
        let levels = treehash_levels(&ctx, 2, &adrs, 0, |buf| {
            for (i, slot) in buf.chunks_exact_mut(16).enumerate() {
                leaf(i as u32, slot);
            }
        });
        let _ = levels.auth_path(4);
    }

    #[test]
    fn different_tree_addresses_different_roots() {
        let ctx = ctx();
        let a = Address::new();
        let mut b = Address::new();
        b.set_tree(1);
        assert_ne!(
            treehash(&ctx, 2, 0, &a, leaf).root,
            treehash(&ctx, 2, 0, &b, leaf).root
        );
    }
}
