//! From-scratch FIPS 180-4 SHA-512.
//!
//! The paper's optimizations are "algorithm-agnostic and do not depend on
//! \[a\] specific hash function" (§I); SHA-512 is the first alternative it
//! names. This module provides the primitive; [`crate::hash::HashAlg`]
//! lets every tweakable-hash layer run on it.

/// Bytes in a SHA-512 digest.
pub const DIGEST_LEN: usize = 64;

/// Bytes in a SHA-512 message block.
pub const BLOCK_LEN: usize = 128;

/// SHA-512 initial hash value (FIPS 180-4 §5.3.5).
pub const H0: [u64; 8] = [
    0x6a09e667f3bcc908,
    0xbb67ae8584caa73b,
    0x3c6ef372fe94f82b,
    0xa54ff53a5f1d36f1,
    0x510e527fade682d1,
    0x9b05688c2b3e6c1f,
    0x1f83d9abfb41bd6b,
    0x5be0cd19137e2179,
];

/// SHA-512 round constants (FIPS 180-4 §4.2.3).
const K: [u64; 80] = [
    0x428a2f98d728ae22,
    0x7137449123ef65cd,
    0xb5c0fbcfec4d3b2f,
    0xe9b5dba58189dbbc,
    0x3956c25bf348b538,
    0x59f111f1b605d019,
    0x923f82a4af194f9b,
    0xab1c5ed5da6d8118,
    0xd807aa98a3030242,
    0x12835b0145706fbe,
    0x243185be4ee4b28c,
    0x550c7dc3d5ffb4e2,
    0x72be5d74f27b896f,
    0x80deb1fe3b1696b1,
    0x9bdc06a725c71235,
    0xc19bf174cf692694,
    0xe49b69c19ef14ad2,
    0xefbe4786384f25e3,
    0x0fc19dc68b8cd5b5,
    0x240ca1cc77ac9c65,
    0x2de92c6f592b0275,
    0x4a7484aa6ea6e483,
    0x5cb0a9dcbd41fbd4,
    0x76f988da831153b5,
    0x983e5152ee66dfab,
    0xa831c66d2db43210,
    0xb00327c898fb213f,
    0xbf597fc7beef0ee4,
    0xc6e00bf33da88fc2,
    0xd5a79147930aa725,
    0x06ca6351e003826f,
    0x142929670a0e6e70,
    0x27b70a8546d22ffc,
    0x2e1b21385c26c926,
    0x4d2c6dfc5ac42aed,
    0x53380d139d95b3df,
    0x650a73548baf63de,
    0x766a0abb3c77b2a8,
    0x81c2c92e47edaee6,
    0x92722c851482353b,
    0xa2bfe8a14cf10364,
    0xa81a664bbc423001,
    0xc24b8b70d0f89791,
    0xc76c51a30654be30,
    0xd192e819d6ef5218,
    0xd69906245565a910,
    0xf40e35855771202a,
    0x106aa07032bbd1b8,
    0x19a4c116b8d2d0c8,
    0x1e376c085141ab53,
    0x2748774cdf8eeb99,
    0x34b0bcb5e19b48a8,
    0x391c0cb3c5c95a63,
    0x4ed8aa4ae3418acb,
    0x5b9cca4f7763e373,
    0x682e6ff3d6b2b8a3,
    0x748f82ee5defb2fc,
    0x78a5636f43172f60,
    0x84c87814a1f0ab72,
    0x8cc702081a6439ec,
    0x90befffa23631e28,
    0xa4506cebde82bde9,
    0xbef9a3f7b2c67915,
    0xc67178f2e372532b,
    0xca273eceea26619c,
    0xd186b8c721c0c207,
    0xeada7dd6cde0eb1e,
    0xf57d4f7fee6ed178,
    0x06f067aa72176fba,
    0x0a637dc5a2c898a6,
    0x113f9804bef90dae,
    0x1b710b35131c471b,
    0x28db77f523047d84,
    0x32caab7b40c72493,
    0x3c9ebe0a15c9bebc,
    0x431d67c49c100d4c,
    0x4cc5d4becb3e42b6,
    0x597f299cfc657e2a,
    0x5fcb6fab3ad6faec,
    0x6c44198c4a475817,
];

#[inline(always)]
fn big_sigma0(x: u64) -> u64 {
    x.rotate_right(28) ^ x.rotate_right(34) ^ x.rotate_right(39)
}

#[inline(always)]
fn big_sigma1(x: u64) -> u64 {
    x.rotate_right(14) ^ x.rotate_right(18) ^ x.rotate_right(41)
}

#[inline(always)]
fn small_sigma0(x: u64) -> u64 {
    x.rotate_right(1) ^ x.rotate_right(8) ^ (x >> 7)
}

#[inline(always)]
fn small_sigma1(x: u64) -> u64 {
    x.rotate_right(19) ^ x.rotate_right(61) ^ (x >> 6)
}

/// Applies the SHA-512 compression function to `state` with one 128-byte
/// block (80 rounds; the 64-bit `prmt` variant of Fig. 5 services these
/// big-endian loads on the GPU path).
pub fn compress(state: &mut [u64; 8], block: &[u8; BLOCK_LEN]) {
    let mut w = [0u64; 80];
    for (i, chunk) in block.chunks_exact(8).enumerate() {
        w[i] = u64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
    }
    for i in 16..80 {
        w[i] = small_sigma1(w[i - 2])
            .wrapping_add(w[i - 7])
            .wrapping_add(small_sigma0(w[i - 15]))
            .wrapping_add(w[i - 16]);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..80 {
        let t1 = h
            .wrapping_add(big_sigma1(e))
            .wrapping_add((e & f) ^ (!e & g))
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let t2 = big_sigma0(a).wrapping_add((a & b) ^ (a & c) ^ (b & c));
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Incremental SHA-512 hasher (same surface as
/// [`crate::sha256::Sha256`]).
#[derive(Clone, Debug)]
pub struct Sha512 {
    state: [u64; 8],
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
    total_len: u128,
}

impl Default for Sha512 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha512 {
    /// Creates a hasher initialized with the standard IV.
    pub fn new() -> Self {
        Self::from_state(H0, 0)
    }

    /// Creates a hasher from a precomputed chaining state that already
    /// absorbed `absorbed_bytes` (must be a multiple of 128) — the
    /// seed-state reuse trick, same as SHA-256's.
    ///
    /// # Panics
    ///
    /// Panics if `absorbed_bytes` is not a multiple of 128.
    pub fn from_state(state: [u64; 8], absorbed_bytes: u128) -> Self {
        assert!(
            absorbed_bytes.is_multiple_of(BLOCK_LEN as u128),
            "state must be block aligned"
        );
        Self {
            state,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
            total_len: absorbed_bytes,
        }
    }

    /// Current chaining state (meaningful at block boundaries).
    pub fn state(&self) -> [u64; 8] {
        self.state
    }

    /// Bytes buffered and not yet compressed.
    pub fn buffered_len(&self) -> usize {
        self.buf_len
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        let mut input = data;
        self.total_len = self.total_len.wrapping_add(data.len() as u128);

        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                compress(&mut self.state, &block);
                self.buf_len = 0;
            }
        }
        while input.len() >= BLOCK_LEN {
            let block: &[u8; BLOCK_LEN] = input[..BLOCK_LEN].try_into().expect("exact block");
            compress(&mut self.state, block);
            input = &input[BLOCK_LEN..];
        }
        if !input.is_empty() {
            self.buf[..input.len()].copy_from_slice(input);
            self.buf_len = input.len();
        }
    }

    /// Finalizes and returns the 64-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.pad_byte(0x80);
        while self.buf_len != 112 {
            self.pad_byte(0);
        }
        for &byte in bit_len.to_be_bytes().iter() {
            self.pad_byte(byte);
        }
        debug_assert_eq!(self.buf_len, 0);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn pad_byte(&mut self, byte: u8) {
        self.buf[self.buf_len] = byte;
        self.buf_len += 1;
        if self.buf_len == BLOCK_LEN {
            let block = self.buf;
            compress(&mut self.state, &block);
            self.buf_len = 0;
        }
    }

    /// One-shot digest.
    pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }
}

/// Compression calls for a `message_len`-byte message from the IV
/// (17-byte padding footprint: 0x80 + 16-byte length).
pub fn compressions_for_len(message_len: usize) -> usize {
    (message_len + 1 + 16).div_ceil(BLOCK_LEN)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_vector() {
        assert_eq!(
            hex(&Sha512::digest(b"")),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce\
             47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"
                .replace(char::is_whitespace, "")
                .as_str()
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(&Sha512::digest(b"abc")),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a\
             2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
                .replace(char::is_whitespace, "")
                .as_str()
        );
    }

    #[test]
    fn two_block_vector() {
        // NIST CAVS vector for the 896-bit message.
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
                    hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        let clean: Vec<u8> = msg
            .iter()
            .copied()
            .filter(|b| !b.is_ascii_whitespace())
            .collect();
        assert_eq!(
            hex(&Sha512::digest(&clean)),
            "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018\
             501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909"
                .replace(char::is_whitespace, "")
                .as_str()
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 127, 128, 129, 500, 999] {
            let mut h = Sha512::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha512::digest(&data), "split={split}");
        }
    }

    #[test]
    fn state_resume() {
        let prefix = [9u8; BLOCK_LEN];
        let mut pre = Sha512::new();
        pre.update(&prefix);
        let mut resumed = Sha512::from_state(pre.state(), BLOCK_LEN as u128);
        resumed.update(b"suffix");
        let mut full = Sha512::new();
        full.update(&prefix);
        full.update(b"suffix");
        assert_eq!(resumed.finalize(), full.finalize());
    }

    #[test]
    fn compression_census() {
        assert_eq!(compressions_for_len(0), 1);
        assert_eq!(compressions_for_len(111), 1);
        assert_eq!(compressions_for_len(112), 2);
        assert_eq!(compressions_for_len(128), 2);
        assert_eq!(compressions_for_len(239), 2);
        assert_eq!(compressions_for_len(240), 3);
    }
}
