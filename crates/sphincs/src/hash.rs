//! Tweakable hash functions for the SHA-256 *simple* instantiation.
//!
//! All of SPHINCS+ is built from six functions (spec §7.2):
//!
//! * `F(pk_seed, adrs, m)` — one-block tweakable hash (WOTS+ chains, FORS leaves)
//! * `H(pk_seed, adrs, m1 || m2)` — two-to-one node hash
//! * `T_l(pk_seed, adrs, m1..ml)` — l-to-one compression (WOTS+ pk, FORS roots)
//! * `PRF(pk_seed, sk_seed, adrs)` — secret-key element derivation
//! * `PRF_msg(sk_prf, opt_rand, m)` — message randomizer
//! * `H_msg(r, pk_seed, pk_root, m)` — message digest + index derivation
//!
//! The `pk_seed` is absorbed once into a precomputed SHA-256 chaining state
//! ([`SeededHasher`]); every subsequent call costs exactly
//! `compressions_for_tail(len)` compressions. HERO-Sign's GPU kernels keep
//! this state in constant memory (§III-D of the paper).

use crate::address::Address;
use crate::params::Params;
use crate::sha256::{self, Sha256, BLOCK_LEN};
use crate::sha512::Sha512;

/// The underlying hash primitive for the tweakable-hash layer.
///
/// The paper selects SHA-256 "due to its widespread adoption" but states
/// the optimizations "do not depend on \[a\] specific hash function" (§I);
/// every component layer (WOTS+, FORS, Merkle, hypertree) is generic over
/// this choice.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum HashAlg {
    /// SHA-256 (the paper's baseline).
    #[default]
    Sha256,
    /// SHA-512 (the first alternative the paper names).
    Sha512,
}

/// A hasher with the `pk_seed || pad` block pre-absorbed.
///
/// Cloning this and continuing is how every `F`/`H`/`T_l`/`PRF` call starts;
/// it mirrors the constant-memory seed state of the CUDA kernels.
#[derive(Clone, Debug)]
pub struct SeededHasher {
    state: [u32; 8],
}

impl SeededHasher {
    /// Absorbs `pk_seed` padded with zeros to one 64-byte block.
    pub fn new(pk_seed: &[u8]) -> Self {
        assert!(pk_seed.len() <= BLOCK_LEN, "seed longer than one block");
        let mut block = [0u8; BLOCK_LEN];
        block[..pk_seed.len()].copy_from_slice(pk_seed);
        let mut hasher = Sha256::new();
        hasher.update(&block);
        debug_assert_eq!(hasher.buffered_len(), 0);
        Self {
            state: hasher.state(),
        }
    }

    /// Starts a hash that has already absorbed the seed block.
    pub fn start(&self) -> Sha256 {
        Sha256::from_state(self.state, BLOCK_LEN as u64)
    }

    /// Number of compressions a call with `tail_len` further bytes costs
    /// (excluding the amortized seed block).
    pub fn compressions_for_tail(tail_len: usize) -> usize {
        sha256::compressions_for_len(BLOCK_LEN + tail_len) - 1
    }
}

/// The tweakable hash context: parameters plus the seeded state.
///
/// ```
/// use hero_sphincs::{hash::HashCtx, params::Params, address::Address};
/// let params = Params::sphincs_128f();
/// let ctx = HashCtx::new(params, &[0u8; 16]);
/// let out = ctx.f(&Address::new(), &[0u8; 16]);
/// assert_eq!(out.len(), 16);
/// ```
#[derive(Clone, Debug)]
pub struct HashCtx {
    params: Params,
    pk_seed: Vec<u8>,
    alg: HashAlg,
    seeded: SeededHasher,
    seeded512: [u64; 8],
}

impl HashCtx {
    /// Creates a SHA-256 context for `params` with the given `pk_seed`
    /// (`pk_seed.len()` must equal `params.n`).
    ///
    /// # Panics
    ///
    /// Panics if `pk_seed.len() != params.n`.
    pub fn new(params: Params, pk_seed: &[u8]) -> Self {
        Self::with_alg(params, pk_seed, HashAlg::Sha256)
    }

    /// Creates a context over an explicit hash primitive.
    ///
    /// # Panics
    ///
    /// Panics if `pk_seed.len() != params.n`.
    pub fn with_alg(params: Params, pk_seed: &[u8], alg: HashAlg) -> Self {
        assert_eq!(pk_seed.len(), params.n, "pk_seed must be n bytes");
        let seeded512 = {
            let mut block = [0u8; crate::sha512::BLOCK_LEN];
            block[..pk_seed.len()].copy_from_slice(pk_seed);
            let mut h = Sha512::new();
            h.update(&block);
            debug_assert_eq!(h.buffered_len(), 0);
            h.state()
        };
        Self {
            params,
            pk_seed: pk_seed.to_vec(),
            alg,
            seeded: SeededHasher::new(pk_seed),
            seeded512,
        }
    }

    /// The parameter set this context hashes for.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The hash primitive in use.
    pub fn alg(&self) -> HashAlg {
        self.alg
    }

    /// Seeded tweakable hash over `adrs || parts…`, truncated to `n`.
    fn tweak(&self, adrs: &Address, parts: &[&[u8]]) -> Vec<u8> {
        match self.alg {
            HashAlg::Sha256 => {
                let mut h = self.seeded.start();
                h.update(&adrs.to_compressed_bytes());
                for part in parts {
                    h.update(part);
                }
                h.finalize()[..self.params.n].to_vec()
            }
            HashAlg::Sha512 => {
                let mut h = Sha512::from_state(self.seeded512, crate::sha512::BLOCK_LEN as u128);
                h.update(&adrs.to_compressed_bytes());
                for part in parts {
                    h.update(part);
                }
                h.finalize()[..self.params.n].to_vec()
            }
        }
    }

    fn truncated(&self, digest: [u8; 32]) -> Vec<u8> {
        digest[..self.params.n].to_vec()
    }

    /// `F`: one-block tweakable hash of a single `n`-byte value.
    pub fn f(&self, adrs: &Address, m: &[u8]) -> Vec<u8> {
        debug_assert_eq!(m.len(), self.params.n);
        self.tweak(adrs, &[m])
    }

    /// `H`: two-to-one hash of sibling nodes.
    pub fn h(&self, adrs: &Address, left: &[u8], right: &[u8]) -> Vec<u8> {
        debug_assert_eq!(left.len(), self.params.n);
        debug_assert_eq!(right.len(), self.params.n);
        self.tweak(adrs, &[left, right])
    }

    /// `T_l`: compresses `l` concatenated `n`-byte values (WOTS+ public key,
    /// FORS roots).
    pub fn t_l(&self, adrs: &Address, parts: &[&[u8]]) -> Vec<u8> {
        #[cfg(debug_assertions)]
        for part in parts {
            debug_assert_eq!(part.len(), self.params.n);
        }
        self.tweak(adrs, parts)
    }

    /// `PRF`: derives a secret element from `sk_seed` at `adrs`.
    ///
    /// Computes `Hash(pk_seed || pad || adrs_c || sk_seed)`; keeping
    /// `sk_seed` last means the seeded state is reused here too.
    pub fn prf(&self, adrs: &Address, sk_seed: &[u8]) -> Vec<u8> {
        debug_assert_eq!(sk_seed.len(), self.params.n);
        self.tweak(adrs, &[sk_seed])
    }

    /// `PRF_msg`: message randomizer `r = PRF(sk_prf, opt_rand, m)`.
    pub fn prf_msg(&self, sk_prf: &[u8], opt_rand: &[u8], m: &[u8]) -> Vec<u8> {
        match self.alg {
            HashAlg::Sha256 => {
                let mut h = Sha256::new();
                h.update(sk_prf);
                h.update(opt_rand);
                h.update(m);
                self.truncated(h.finalize())
            }
            HashAlg::Sha512 => {
                let mut h = Sha512::new();
                h.update(sk_prf);
                h.update(opt_rand);
                h.update(m);
                h.finalize()[..self.params.n].to_vec()
            }
        }
    }

    /// `H_msg`: `MGF1(r || Hash(r || pk_seed || pk_root || m))`, expanded
    /// to the digest length needed for index derivation (spec §7.2.1).
    pub fn h_msg(&self, r: &[u8], pk_root: &[u8], m: &[u8]) -> Vec<u8> {
        let digest: Vec<u8> = match self.alg {
            HashAlg::Sha256 => {
                let mut h = Sha256::new();
                h.update(r);
                h.update(&self.pk_seed);
                h.update(pk_root);
                h.update(m);
                h.finalize().to_vec()
            }
            HashAlg::Sha512 => {
                let mut h = Sha512::new();
                h.update(r);
                h.update(&self.pk_seed);
                h.update(pk_root);
                h.update(m);
                h.finalize().to_vec()
            }
        };
        let mut seed = Vec::with_capacity(r.len() + digest.len());
        seed.extend_from_slice(r);
        seed.extend_from_slice(&digest);
        sha256::mgf1(&seed, self.params.digest_bytes())
    }
}

impl SeededHasher {
    /// The precomputed chaining state (the GPU kernels' constant-memory
    /// image of `pk_seed || pad`).
    pub fn state(&self) -> [u32; 8] {
        self.state
    }
}

/// Splits an `H_msg` digest into FORS indices material, hypertree index and
/// leaf index (spec Algorithm 20 lines 5-9).
///
/// Returns `(md, tree_idx, leaf_idx)` where `md` is the first
/// `ceil(k·log_t/8)` bytes used by [`crate::fors::message_to_indices`].
pub fn split_digest(params: &Params, digest: &[u8]) -> (Vec<u8>, u64, u32) {
    let md_len = (params.k * params.log_t).div_ceil(8);
    let tree_bits = params.h - params.tree_height();
    let tree_len = tree_bits.div_ceil(8);
    let leaf_bits = params.tree_height();
    let leaf_len = leaf_bits.div_ceil(8);
    assert!(
        digest.len() >= md_len + tree_len + leaf_len,
        "digest too short"
    );

    let md = digest[..md_len].to_vec();

    let mut tree_idx: u64 = 0;
    for &b in &digest[md_len..md_len + tree_len] {
        tree_idx = (tree_idx << 8) | b as u64;
    }
    if tree_bits < 64 {
        tree_idx &= (1u64 << tree_bits) - 1;
    }

    let mut leaf_idx: u32 = 0;
    for &b in &digest[md_len + tree_len..md_len + tree_len + leaf_len] {
        leaf_idx = (leaf_idx << 8) | b as u32;
    }
    leaf_idx &= (1u32 << leaf_bits) - 1;

    (md, tree_idx, leaf_idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::AddressType;

    fn ctx128() -> HashCtx {
        HashCtx::new(Params::sphincs_128f(), &[7u8; 16])
    }

    #[test]
    fn f_output_is_n_bytes_and_deterministic() {
        let ctx = ctx128();
        let mut a = Address::new();
        a.set_type(AddressType::WotsHash);
        let m = [1u8; 16];
        let out1 = ctx.f(&a, &m);
        let out2 = ctx.f(&a, &m);
        assert_eq!(out1.len(), 16);
        assert_eq!(out1, out2);
    }

    #[test]
    fn f_separates_addresses_and_seeds() {
        let ctx = ctx128();
        let ctx2 = HashCtx::new(Params::sphincs_128f(), &[8u8; 16]);
        let mut a = Address::new();
        a.set_type(AddressType::WotsHash);
        let mut b = a;
        b.set_hash(1);
        let m = [1u8; 16];
        assert_ne!(ctx.f(&a, &m), ctx.f(&b, &m));
        assert_ne!(ctx.f(&a, &m), ctx2.f(&a, &m));
    }

    #[test]
    fn h_differs_from_f_on_same_material() {
        let ctx = ctx128();
        let a = Address::new();
        let m = [3u8; 16];
        let hh = ctx.h(&a, &m, &m);
        let ff = ctx.f(&a, &m);
        assert_ne!(hh, ff[..].to_vec());
    }

    #[test]
    fn t_l_matches_h_for_two_parts() {
        // T_2 and H absorb identical bytes, so they must agree: this pins
        // the encoding.
        let ctx = ctx128();
        let a = Address::new();
        let l = [1u8; 16];
        let r = [2u8; 16];
        assert_eq!(ctx.h(&a, &l, &r), ctx.t_l(&a, &[&l, &r]));
    }

    #[test]
    fn single_compression_for_f_all_sets() {
        // The cost-model assumption: F costs exactly one compression after
        // the seed block, for every parameter set.
        for p in Params::fast_sets() {
            let tail = 22 + p.n; // compressed adrs + message
            assert_eq!(
                SeededHasher::compressions_for_tail(tail),
                1,
                "{}: F must be single-compression",
                p.name()
            );
        }
    }

    #[test]
    fn h_compression_counts() {
        // H absorbs 22 + 2n bytes: 1 compression for n=16, 2 for n=24/32.
        assert_eq!(SeededHasher::compressions_for_tail(22 + 32), 1);
        assert_eq!(SeededHasher::compressions_for_tail(22 + 48), 2);
        assert_eq!(SeededHasher::compressions_for_tail(22 + 64), 2);
    }

    #[test]
    fn h_msg_length_and_determinism() {
        for p in Params::fast_sets() {
            let ctx = HashCtx::new(p, &vec![5u8; p.n]);
            let d = ctx.h_msg(&vec![1u8; p.n], &vec![2u8; p.n], b"message");
            assert_eq!(d.len(), p.digest_bytes());
            assert_eq!(d, ctx.h_msg(&vec![1u8; p.n], &vec![2u8; p.n], b"message"));
            assert_ne!(d, ctx.h_msg(&vec![1u8; p.n], &vec![2u8; p.n], b"messagf"));
        }
    }

    #[test]
    fn split_digest_ranges() {
        for p in Params::fast_sets() {
            let ctx = HashCtx::new(p, &vec![5u8; p.n]);
            let d = ctx.h_msg(&vec![1u8; p.n], &vec![2u8; p.n], b"m");
            let (md, tree, leaf) = split_digest(&p, &d);
            assert_eq!(md.len(), (p.k * p.log_t).div_ceil(8));
            let tree_bits = p.h - p.tree_height();
            if tree_bits < 64 {
                assert!(tree < (1u64 << tree_bits));
            }
            assert!((leaf as usize) < p.subtree_leaves());
        }
    }

    #[test]
    fn sha512_context_works_end_to_end_per_primitive() {
        // Every tweakable hash works under SHA-512 with the same n-byte
        // interface, and outputs differ from SHA-256's.
        for p in Params::fast_sets() {
            let seed = vec![5u8; p.n];
            let c256 = HashCtx::with_alg(p, &seed, HashAlg::Sha256);
            let c512 = HashCtx::with_alg(p, &seed, HashAlg::Sha512);
            assert_eq!(c512.alg(), HashAlg::Sha512);
            let a = Address::new();
            let m = vec![9u8; p.n];
            let f256 = c256.f(&a, &m);
            let f512 = c512.f(&a, &m);
            assert_eq!(f512.len(), p.n);
            assert_ne!(f256, f512, "{}", p.name());
            assert_ne!(c256.h(&a, &m, &m), c512.h(&a, &m, &m));
            assert_ne!(c256.prf_msg(&seed, &m, b"x"), c512.prf_msg(&seed, &m, b"x"));
            let d512 = c512.h_msg(&m, &seed, b"msg");
            assert_eq!(d512.len(), p.digest_bytes());
        }
    }

    #[test]
    fn sha512_t2_matches_h() {
        let p = Params::sphincs_128f();
        let ctx = HashCtx::with_alg(p, &[7u8; 16], HashAlg::Sha512);
        let a = Address::new();
        let l = [1u8; 16];
        let r = [2u8; 16];
        assert_eq!(ctx.h(&a, &l, &r), ctx.t_l(&a, &[&l, &r]));
    }

    #[test]
    fn prf_msg_depends_on_all_inputs() {
        let ctx = ctx128();
        let base = ctx.prf_msg(&[1; 16], &[2; 16], b"m");
        assert_ne!(base, ctx.prf_msg(&[3; 16], &[2; 16], b"m"));
        assert_ne!(base, ctx.prf_msg(&[1; 16], &[3; 16], b"m"));
        assert_ne!(base, ctx.prf_msg(&[1; 16], &[2; 16], b"n"));
        assert_eq!(base.len(), 16);
    }
}
