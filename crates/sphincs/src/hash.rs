//! Tweakable hash functions for the SHA-256 *simple* instantiation.
//!
//! All of SPHINCS+ is built from six functions (spec §7.2):
//!
//! * `F(pk_seed, adrs, m)` — one-block tweakable hash (WOTS+ chains, FORS leaves)
//! * `H(pk_seed, adrs, m1 || m2)` — two-to-one node hash
//! * `T_l(pk_seed, adrs, m1..ml)` — l-to-one compression (WOTS+ pk, FORS roots)
//! * `PRF(pk_seed, sk_seed, adrs)` — secret-key element derivation
//! * `PRF_msg(sk_prf, opt_rand, m)` — message randomizer
//! * `H_msg(r, pk_seed, pk_root, m)` — message digest + index derivation
//!
//! The `pk_seed` is absorbed once into a precomputed SHA-256 chaining state
//! ([`SeededHasher`]); every subsequent call costs exactly
//! `compressions_for_tail(len)` compressions. HERO-Sign's GPU kernels keep
//! this state in constant memory (§III-D of the paper).
//!
//! ## Batched calls
//!
//! The hot path never hashes one node at a time: [`HashCtx::f_many`],
//! [`HashCtx::h_many`] and [`HashCtx::prf_many`] advance up to
//! [`sha256::LANES`] independent calls per compression through the
//! multi-lane engine ([`crate::sha256::Sha256xN`]), every lane starting
//! from the same precomputed seed state. This is the CPU mirror of the
//! paper's warp-level batching: the GPU keeps one node per thread, we keep
//! one node per SIMD lane. All batch APIs are byte-identical to looping
//! the scalar calls (pinned by proptests), and the `_into`/`_many`
//! variants write into caller-provided buffers so a signing loop performs
//! no per-hash allocations.
//!
//! ## The SHAKE-256 instantiation
//!
//! [`HashAlg::Shake256`] follows the SPHINCS+-SHAKE *simple* construction
//! and is deliberately **asymmetric** to the SHA-2 path in two ways the
//! spec dictates (round-3 §7.2.1 vs §7.2.2):
//!
//! * **No compressed address.** SHAKE calls absorb the full 32-byte
//!   `ADRS`, not the 22-byte compressed form — the sponge has no 64-byte
//!   block boundary to squeeze under, so compression buys nothing.
//! * **No precomputed seed state.** Every call is
//!   `SHAKE256(pk_seed || ADRS || M, 8n)`: `pk_seed` is re-absorbed as
//!   ordinary message bytes because a SHAKE-128f `F` input
//!   (`16 + 32 + 16 = 64` bytes) sits mid-block — there is no chaining
//!   state to snapshot at a block boundary, unlike SHA-256 where
//!   `pk_seed || pad` fills exactly one compression block.
//!
//! One permutation still covers every `F`/`H`/`PRF` call (the longest
//! tail, `32 + 32 + 64 = 128` bytes for 256-bit `H`, fits one 136-byte
//! rate block), so the batched SHAKE path advances [`keccak::LANES`]
//! calls per multi-lane permutation ([`crate::keccak::KeccakxN`]) — the
//! same lane↔thread mapping as the SHA engine, and the same batching the
//! high-throughput GPU Dilithium/SPHINCS+ Keccak kernels use. `H_msg`
//! squeezes the index-derivation digest directly from the XOF; the
//! SHA-2 paths need the MGF1 expansion loop instead.
//!
//! ```
//! use hero_sphincs::{hash::{HashAlg, HashCtx}, params::Params, address::Address};
//! let params = Params::shake_128f();
//! let ctx = HashCtx::with_alg(params, &[0u8; 16], HashAlg::Shake256);
//! let out = ctx.f(&Address::new(), &[0u8; 16]);
//! assert_eq!(out.len(), 16);
//! ```

use crate::address::Address;
use crate::keccak::{self, KeccakxN, Shake256};
use crate::params::Params;
use crate::sha256::{self, Sha256, Sha256xN, BLOCK_LEN, LANES};
use crate::sha512::Sha512;

/// Compressed-address prefix length of every tweakable-hash tail.
const ADRS_LEN: usize = 22;

/// Full (uncompressed) address length, as the SHAKE instantiation
/// absorbs it.
const FULL_ADRS_LEN: usize = 32;

/// Per-lane scratch: the longest batched tail is `H`'s `22 + 2n ≤ 86`
/// bytes, which pads into at most two 64-byte blocks.
const LANE_BUF: usize = 2 * BLOCK_LEN;

/// The underlying hash primitive for the tweakable-hash layer.
///
/// The paper selects SHA-256 "due to its widespread adoption" but states
/// the optimizations "do not depend on \[a\] specific hash function" (§I);
/// every component layer (WOTS+, FORS, Merkle, hypertree) is generic over
/// this choice.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum HashAlg {
    /// SHA-256 (the paper's baseline).
    #[default]
    Sha256,
    /// SHA-512 (the first alternative the paper names).
    Sha512,
    /// SHAKE-256 (FIPS 202) — the SPHINCS+-SHAKE half of the NIST
    /// parameter family. Uses the full 32-byte address and no
    /// precomputed seed state (see the module docs for the asymmetry).
    Shake256,
}

impl HashAlg {
    /// Every canonical label, in display order (the order error messages
    /// and usage text list them in).
    pub const NAMES: [&'static str; 3] = ["sha256", "sha512", "shake256"];

    /// The canonical label — the inverse of [`HashAlg::from_label`];
    /// used by key files, CLI output, and the wire protocol.
    pub const fn label(self) -> &'static str {
        match self {
            HashAlg::Sha256 => "sha256",
            HashAlg::Sha512 => "sha512",
            HashAlg::Shake256 => "shake256",
        }
    }

    /// Parses a label (case-insensitive; an optional dash before the
    /// width is accepted, e.g. `SHA-256`, `shake-256`).
    ///
    /// ```
    /// use hero_sphincs::hash::HashAlg;
    /// assert_eq!(HashAlg::from_label("Shake-256"), Some(HashAlg::Shake256));
    /// assert_eq!(HashAlg::from_label("md5"), None);
    /// ```
    pub fn from_label(label: &str) -> Option<Self> {
        match label.trim().to_ascii_lowercase().as_str() {
            "sha256" | "sha-256" => Some(HashAlg::Sha256),
            "sha512" | "sha-512" => Some(HashAlg::Sha512),
            "shake256" | "shake-256" => Some(HashAlg::Shake256),
            _ => None,
        }
    }
}

/// A hasher with the `pk_seed || pad` block pre-absorbed.
///
/// Cloning this and continuing is how every `F`/`H`/`T_l`/`PRF` call starts;
/// it mirrors the constant-memory seed state of the CUDA kernels.
#[derive(Clone, Debug)]
pub struct SeededHasher {
    state: [u32; 8],
}

impl SeededHasher {
    /// Absorbs `pk_seed` padded with zeros to one 64-byte block.
    pub fn new(pk_seed: &[u8]) -> Self {
        assert!(pk_seed.len() <= BLOCK_LEN, "seed longer than one block");
        let mut block = [0u8; BLOCK_LEN];
        block[..pk_seed.len()].copy_from_slice(pk_seed);
        let mut hasher = Sha256::new();
        hasher.update(&block);
        debug_assert_eq!(hasher.buffered_len(), 0);
        Self {
            state: hasher.state(),
        }
    }

    /// Starts a hash that has already absorbed the seed block.
    pub fn start(&self) -> Sha256 {
        Sha256::from_state(self.state, BLOCK_LEN as u64)
    }

    /// Number of compressions a call with `tail_len` further bytes costs
    /// (excluding the amortized seed block).
    pub fn compressions_for_tail(tail_len: usize) -> usize {
        sha256::compressions_for_len(BLOCK_LEN + tail_len) - 1
    }
}

/// The tweakable hash context: parameters plus the seeded state.
///
/// ```
/// use hero_sphincs::{hash::HashCtx, params::Params, address::Address};
/// let params = Params::sphincs_128f();
/// let ctx = HashCtx::new(params, &[0u8; 16]);
/// let out = ctx.f(&Address::new(), &[0u8; 16]);
/// assert_eq!(out.len(), 16);
/// ```
#[derive(Clone, Debug)]
pub struct HashCtx {
    params: Params,
    pk_seed: Vec<u8>,
    alg: HashAlg,
    seeded: SeededHasher,
    seeded512: [u64; 8],
}

impl HashCtx {
    /// Creates a SHA-256 context for `params` with the given `pk_seed`
    /// (`pk_seed.len()` must equal `params.n`).
    ///
    /// # Panics
    ///
    /// Panics if `pk_seed.len() != params.n`.
    pub fn new(params: Params, pk_seed: &[u8]) -> Self {
        Self::with_alg(params, pk_seed, HashAlg::Sha256)
    }

    /// Creates a context over an explicit hash primitive.
    ///
    /// # Panics
    ///
    /// Panics if `pk_seed.len() != params.n`.
    pub fn with_alg(params: Params, pk_seed: &[u8], alg: HashAlg) -> Self {
        assert_eq!(pk_seed.len(), params.n, "pk_seed must be n bytes");
        let seeded512 = {
            let mut block = [0u8; crate::sha512::BLOCK_LEN];
            block[..pk_seed.len()].copy_from_slice(pk_seed);
            let mut h = Sha512::new();
            h.update(&block);
            debug_assert_eq!(h.buffered_len(), 0);
            h.state()
        };
        Self {
            params,
            pk_seed: pk_seed.to_vec(),
            alg,
            seeded: SeededHasher::new(pk_seed),
            seeded512,
        }
    }

    /// The parameter set this context hashes for.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The hash primitive in use.
    pub fn alg(&self) -> HashAlg {
        self.alg
    }

    /// Seeded tweakable hash over `adrs || parts…`, truncated to `n`.
    fn tweak(&self, adrs: &Address, parts: &[&[u8]]) -> Vec<u8> {
        let mut out = vec![0u8; self.params.n];
        self.tweak_into(adrs, parts, &mut out);
        out
    }

    /// [`HashCtx::tweak`] writing the `n`-byte result into `out` without
    /// allocating.
    fn tweak_into(&self, adrs: &Address, parts: &[&[u8]], out: &mut [u8]) {
        debug_assert_eq!(out.len(), self.params.n);
        match self.alg {
            HashAlg::Sha256 => {
                let mut h = self.seeded.start();
                h.update(&adrs.to_compressed_bytes());
                for part in parts {
                    h.update(part);
                }
                out.copy_from_slice(&h.finalize()[..self.params.n]);
            }
            HashAlg::Sha512 => {
                let mut h = Sha512::from_state(self.seeded512, crate::sha512::BLOCK_LEN as u128);
                h.update(&adrs.to_compressed_bytes());
                for part in parts {
                    h.update(part);
                }
                out.copy_from_slice(&h.finalize()[..self.params.n]);
            }
            HashAlg::Shake256 => {
                // SHAKE256(pk_seed || ADRS || M, 8n): full address, no
                // seed state (module docs explain the asymmetry).
                let mut h = Shake256::new();
                h.update(&self.pk_seed);
                h.update(&adrs.to_bytes());
                for part in parts {
                    h.update(part);
                }
                h.finalize_into(out);
            }
        }
    }

    /// Pads lane buffer bytes `[0, tail_len)` as a message tail following
    /// the seed block, returning the block count.
    fn pad_lane(buf: &mut [u8; LANE_BUF], tail_len: usize) -> usize {
        sha256::pad_in_place(buf, tail_len, BLOCK_LEN as u64)
    }

    /// Compresses the first `nblocks` blocks of every lane buffer from the
    /// broadcast seed state.
    fn compress_lanes(&self, bufs: &[[u8; LANE_BUF]; LANES], nblocks: usize) -> Sha256xN {
        let mut mx = Sha256xN::broadcast(self.seeded.state);
        for b in 0..nblocks {
            let blocks: [&[u8; BLOCK_LEN]; LANES] = std::array::from_fn(|l| {
                bufs[l][b * BLOCK_LEN..(b + 1) * BLOCK_LEN]
                    .try_into()
                    .expect("block slice")
            });
            mx.compress(&blocks);
        }
        mx
    }

    /// SHA-256 batch core: call `i` hashes `adrs[i] || payload(i)` (all
    /// payloads `payload_len` bytes), writing `n`-byte digests to
    /// `out[i*n..]`. Lanes are processed [`LANES`] at a time; a partial
    /// final chunk repeats its last call in the unused lanes.
    fn tweak_many_256<'p>(
        &self,
        adrs: &[Address],
        payload_len: usize,
        payload: impl Fn(usize) -> &'p [u8],
        out: &mut [u8],
    ) {
        let n = self.params.n;
        let count = adrs.len();
        let tail_len = ADRS_LEN + payload_len;
        let nblocks = (tail_len + 1 + 8).div_ceil(BLOCK_LEN);
        debug_assert!(tail_len <= LANE_BUF - 9, "tail exceeds lane scratch");

        let mut bufs = [[0u8; LANE_BUF]; LANES];
        let mut start = 0usize;
        while start < count {
            let lanes = LANES.min(count - start);
            for (l, buf) in bufs.iter_mut().enumerate() {
                let i = start + l.min(lanes - 1);
                buf[..ADRS_LEN].copy_from_slice(&adrs[i].to_compressed_bytes());
                buf[ADRS_LEN..tail_len].copy_from_slice(payload(i));
                Self::pad_lane(buf, tail_len);
            }
            let mx = self.compress_lanes(&bufs, nblocks);
            for l in 0..lanes {
                let i = start + l;
                mx.digest_into(l, &mut out[i * n..(i + 1) * n]);
            }
            start += lanes;
        }
    }

    /// Fills one Keccak lane buffer with `pk_seed || ADRS || payload`
    /// and pads it to a single rate block, returning the tail length.
    fn fill_shake_lane(
        &self,
        buf: &mut [u8; keccak::RATE],
        adrs: &Address,
        payload: &[u8],
    ) -> usize {
        let n = self.params.n;
        let tail = n + FULL_ADRS_LEN + payload.len();
        debug_assert!(tail < keccak::RATE, "tail exceeds one rate block");
        buf[..n].copy_from_slice(&self.pk_seed);
        buf[n..n + FULL_ADRS_LEN].copy_from_slice(&adrs.to_bytes());
        buf[n + FULL_ADRS_LEN..tail].copy_from_slice(payload);
        keccak::pad_block_in_place(buf, tail);
        tail
    }

    /// SHAKE-256 batch core: call `i` hashes
    /// `pk_seed || adrs[i] || payload(i)` (all payloads `payload_len`
    /// bytes), writing `n`-byte digests to `out[i*n..]`. Every call fits
    /// one rate block (the longest tail is `n + 32 + 2n ≤ 128 < 136`
    /// bytes), so lanes advance [`keccak::LANES`] calls per multi-lane
    /// permutation; a partial final chunk repeats its last call in the
    /// unused lanes, exactly like the SHA engine's masked retirement.
    fn tweak_many_shake<'p>(
        &self,
        adrs: &[Address],
        payload: impl Fn(usize) -> &'p [u8],
        out: &mut [u8],
    ) {
        let n = self.params.n;
        let count = adrs.len();
        let mut bufs = [[0u8; keccak::RATE]; keccak::LANES];
        let mut start = 0usize;
        while start < count {
            let lanes = keccak::LANES.min(count - start);
            for (l, buf) in bufs.iter_mut().enumerate() {
                let i = start + l.min(lanes - 1);
                self.fill_shake_lane(buf, &adrs[i], payload(i));
            }
            let mut kx = KeccakxN::new();
            let refs: [&[u8; keccak::RATE]; keccak::LANES] = std::array::from_fn(|l| &bufs[l]);
            kx.absorb_blocks(&refs);
            for l in 0..lanes {
                let i = start + l;
                kx.squeeze_into(l, &mut out[i * n..(i + 1) * n]);
            }
            start += lanes;
        }
    }

    /// `F` over a batch: `out[i*n..] = F(adrs[i], msgs[i*n..])`.
    ///
    /// Byte-identical to calling [`HashCtx::f`] in a loop; the SHA-256
    /// path advances [`LANES`] calls per compression and the SHAKE-256
    /// path [`keccak::LANES`] calls per permutation.
    ///
    /// # Panics
    ///
    /// Panics if `msgs` or `out` is not `adrs.len() * n` bytes.
    pub fn f_many(&self, adrs: &[Address], msgs: &[u8], out: &mut [u8]) {
        let n = self.params.n;
        assert_eq!(msgs.len(), adrs.len() * n, "msgs must be count*n bytes");
        assert_eq!(out.len(), adrs.len() * n, "out must be count*n bytes");
        match self.alg {
            HashAlg::Sha256 => self.tweak_many_256(adrs, n, |i| &msgs[i * n..(i + 1) * n], out),
            HashAlg::Shake256 => self.tweak_many_shake(adrs, |i| &msgs[i * n..(i + 1) * n], out),
            HashAlg::Sha512 => {
                for (i, a) in adrs.iter().enumerate() {
                    let (m, o) = (&msgs[i * n..(i + 1) * n], &mut out[i * n..(i + 1) * n]);
                    self.tweak_into(a, &[m], o);
                }
            }
        }
    }

    /// In-place scatter variant of [`HashCtx::f_many`] for chain hashing:
    /// lane `j` reads node `buf[indices[j]*n..]` and overwrites it with
    /// `F(adrs[j], node)`. `indices` must be distinct.
    ///
    /// This is the WOTS+ chain step: every active chain advances one `F`
    /// without copying nodes out of the flat chain buffer.
    ///
    /// # Panics
    ///
    /// Panics if `indices.len() != adrs.len()` or an index is out of
    /// bounds of `buf`.
    pub fn f_many_at(&self, adrs: &[Address], buf: &mut [u8], indices: &[usize]) {
        let n = self.params.n;
        let count = adrs.len();
        assert_eq!(indices.len(), count, "one index per address");
        match self.alg {
            HashAlg::Sha256 => {
                let tail_len = ADRS_LEN + n;
                let nblocks = (tail_len + 1 + 8).div_ceil(BLOCK_LEN);
                let mut bufs = [[0u8; LANE_BUF]; LANES];
                let mut start = 0usize;
                while start < count {
                    let lanes = LANES.min(count - start);
                    for (l, lane_buf) in bufs.iter_mut().enumerate() {
                        let j = start + l.min(lanes - 1);
                        let slot = indices[j] * n;
                        lane_buf[..ADRS_LEN].copy_from_slice(&adrs[j].to_compressed_bytes());
                        lane_buf[ADRS_LEN..tail_len].copy_from_slice(&buf[slot..slot + n]);
                        Self::pad_lane(lane_buf, tail_len);
                    }
                    let mx = self.compress_lanes(&bufs, nblocks);
                    for l in 0..lanes {
                        let slot = indices[start + l] * n;
                        mx.digest_into(l, &mut buf[slot..slot + n]);
                    }
                    start += lanes;
                }
            }
            HashAlg::Shake256 => {
                let mut bufs = [[0u8; keccak::RATE]; keccak::LANES];
                let mut start = 0usize;
                while start < count {
                    let lanes = keccak::LANES.min(count - start);
                    for (l, lane_buf) in bufs.iter_mut().enumerate() {
                        let j = start + l.min(lanes - 1);
                        let slot = indices[j] * n;
                        // Reading straight from `buf` is safe: every
                        // lane of this chunk is filled before any lane
                        // squeezes back, and indices are distinct.
                        self.fill_shake_lane(lane_buf, &adrs[j], &buf[slot..slot + n]);
                    }
                    let mut kx = KeccakxN::new();
                    let refs: [&[u8; keccak::RATE]; keccak::LANES] =
                        std::array::from_fn(|l| &bufs[l]);
                    kx.absorb_blocks(&refs);
                    for l in 0..lanes {
                        let slot = indices[start + l] * n;
                        kx.squeeze_into(l, &mut buf[slot..slot + n]);
                    }
                    start += lanes;
                }
            }
            HashAlg::Sha512 => {
                let mut node = [0u8; 32];
                for (a, &idx) in adrs.iter().zip(indices) {
                    let slot = idx * n;
                    node[..n].copy_from_slice(&buf[slot..slot + n]);
                    self.tweak_into(a, &[&node[..n]], &mut buf[slot..slot + n]);
                }
            }
        }
    }

    /// `H` over a batch of sibling pairs: `out[i*n..] =
    /// H(adrs[i], pairs[2i*n..], pairs[(2i+1)*n..])`.
    ///
    /// This is one Merkle level: `pairs` holds the level's nodes
    /// contiguously (`2·count` nodes) and `out` receives the parents.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is not `2*count*n` bytes or `out` not `count*n`.
    pub fn h_many(&self, adrs: &[Address], pairs: &[u8], out: &mut [u8]) {
        let n = self.params.n;
        let count = adrs.len();
        assert_eq!(pairs.len(), count * 2 * n, "pairs must be 2*count*n bytes");
        assert_eq!(out.len(), count * n, "out must be count*n bytes");
        match self.alg {
            HashAlg::Sha256 => {
                self.tweak_many_256(adrs, 2 * n, |i| &pairs[2 * i * n..(2 * i + 2) * n], out)
            }
            HashAlg::Shake256 => {
                self.tweak_many_shake(adrs, |i| &pairs[2 * i * n..(2 * i + 2) * n], out)
            }
            HashAlg::Sha512 => {
                for (i, a) in adrs.iter().enumerate() {
                    let pair = &pairs[2 * i * n..(2 * i + 2) * n];
                    self.tweak_into(a, &[pair], &mut out[i * n..(i + 1) * n]);
                }
            }
        }
    }

    /// `PRF` over a batch of addresses sharing one `sk_seed`:
    /// `out[i*n..] = PRF(adrs[i], sk_seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not `adrs.len() * n` bytes or `sk_seed` not `n`.
    pub fn prf_many(&self, adrs: &[Address], sk_seed: &[u8], out: &mut [u8]) {
        let n = self.params.n;
        assert_eq!(sk_seed.len(), n, "sk_seed must be n bytes");
        assert_eq!(out.len(), adrs.len() * n, "out must be count*n bytes");
        match self.alg {
            HashAlg::Sha256 => self.tweak_many_256(adrs, n, |_| sk_seed, out),
            HashAlg::Shake256 => self.tweak_many_shake(adrs, |_| sk_seed, out),
            HashAlg::Sha512 => {
                for (i, a) in adrs.iter().enumerate() {
                    self.tweak_into(a, &[sk_seed], &mut out[i * n..(i + 1) * n]);
                }
            }
        }
    }

    fn truncated(&self, digest: [u8; 32]) -> Vec<u8> {
        digest[..self.params.n].to_vec()
    }

    /// `F`: one-block tweakable hash of a single `n`-byte value.
    pub fn f(&self, adrs: &Address, m: &[u8]) -> Vec<u8> {
        debug_assert_eq!(m.len(), self.params.n);
        self.tweak(adrs, &[m])
    }

    /// [`HashCtx::f`] writing the `n`-byte result into `out`.
    pub fn f_into(&self, adrs: &Address, m: &[u8], out: &mut [u8]) {
        debug_assert_eq!(m.len(), self.params.n);
        self.tweak_into(adrs, &[m], out);
    }

    /// `H`: two-to-one hash of sibling nodes.
    pub fn h(&self, adrs: &Address, left: &[u8], right: &[u8]) -> Vec<u8> {
        debug_assert_eq!(left.len(), self.params.n);
        debug_assert_eq!(right.len(), self.params.n);
        self.tweak(adrs, &[left, right])
    }

    /// [`HashCtx::h`] writing the `n`-byte result into `out`.
    pub fn h_into(&self, adrs: &Address, left: &[u8], right: &[u8], out: &mut [u8]) {
        debug_assert_eq!(left.len(), self.params.n);
        debug_assert_eq!(right.len(), self.params.n);
        self.tweak_into(adrs, &[left, right], out);
    }

    /// `T_l`: compresses `l` concatenated `n`-byte values (WOTS+ public key,
    /// FORS roots).
    pub fn t_l(&self, adrs: &Address, parts: &[&[u8]]) -> Vec<u8> {
        #[cfg(debug_assertions)]
        for part in parts {
            debug_assert_eq!(part.len(), self.params.n);
        }
        self.tweak(adrs, parts)
    }

    /// `T_l` over one flat `l*n`-byte buffer of concatenated parts,
    /// writing the result into `out` (the batch-era spelling: WOTS+ chain
    /// ends and FORS roots already live in flat node buffers).
    pub fn t_l_flat_into(&self, adrs: &Address, parts: &[u8], out: &mut [u8]) {
        debug_assert!(parts.len().is_multiple_of(self.params.n));
        self.tweak_into(adrs, &[parts], out);
    }

    /// `PRF`: derives a secret element from `sk_seed` at `adrs`.
    ///
    /// Computes `Hash(pk_seed || pad || adrs_c || sk_seed)`; keeping
    /// `sk_seed` last means the seeded state is reused here too.
    pub fn prf(&self, adrs: &Address, sk_seed: &[u8]) -> Vec<u8> {
        debug_assert_eq!(sk_seed.len(), self.params.n);
        self.tweak(adrs, &[sk_seed])
    }

    /// [`HashCtx::prf`] writing the `n`-byte result into `out`.
    pub fn prf_into(&self, adrs: &Address, sk_seed: &[u8], out: &mut [u8]) {
        debug_assert_eq!(sk_seed.len(), self.params.n);
        self.tweak_into(adrs, &[sk_seed], out);
    }

    /// `PRF_msg`: message randomizer `r = PRF(sk_prf, opt_rand, m)`.
    pub fn prf_msg(&self, sk_prf: &[u8], opt_rand: &[u8], m: &[u8]) -> Vec<u8> {
        match self.alg {
            HashAlg::Sha256 => {
                let mut h = Sha256::new();
                h.update(sk_prf);
                h.update(opt_rand);
                h.update(m);
                self.truncated(h.finalize())
            }
            HashAlg::Sha512 => {
                let mut h = Sha512::new();
                h.update(sk_prf);
                h.update(opt_rand);
                h.update(m);
                h.finalize()[..self.params.n].to_vec()
            }
            HashAlg::Shake256 => {
                let mut h = Shake256::new();
                h.update(sk_prf);
                h.update(opt_rand);
                h.update(m);
                let mut out = vec![0u8; self.params.n];
                h.finalize_into(&mut out);
                out
            }
        }
    }

    /// `H_msg`: the index-derivation digest (spec §7.2.1).
    ///
    /// The SHA-2 instantiations compute
    /// `MGF1(r || Hash(r || pk_seed || pk_root || m))` because a
    /// fixed-width hash must be expanded to the digest length; SHAKE-256
    /// squeezes `SHAKE256(r || pk_seed || pk_root || m)` to the full
    /// length directly — an XOF needs no MGF1 loop.
    pub fn h_msg(&self, r: &[u8], pk_root: &[u8], m: &[u8]) -> Vec<u8> {
        let digest: Vec<u8> = match self.alg {
            HashAlg::Sha256 => {
                let mut h = Sha256::new();
                h.update(r);
                h.update(&self.pk_seed);
                h.update(pk_root);
                h.update(m);
                h.finalize().to_vec()
            }
            HashAlg::Sha512 => {
                let mut h = Sha512::new();
                h.update(r);
                h.update(&self.pk_seed);
                h.update(pk_root);
                h.update(m);
                h.finalize().to_vec()
            }
            HashAlg::Shake256 => {
                let mut h = Shake256::new();
                h.update(r);
                h.update(&self.pk_seed);
                h.update(pk_root);
                h.update(m);
                let mut out = vec![0u8; self.params.digest_bytes()];
                h.finalize_into(&mut out);
                return out;
            }
        };
        let mut seed = Vec::with_capacity(r.len() + digest.len());
        seed.extend_from_slice(r);
        seed.extend_from_slice(&digest);
        sha256::mgf1(&seed, self.params.digest_bytes())
    }
}

impl SeededHasher {
    /// The precomputed chaining state (the GPU kernels' constant-memory
    /// image of `pk_seed || pad`).
    pub fn state(&self) -> [u32; 8] {
        self.state
    }
}

/// Splits an `H_msg` digest into FORS indices material, hypertree index and
/// leaf index (spec Algorithm 20 lines 5-9).
///
/// Returns `(md, tree_idx, leaf_idx)` where `md` is the first
/// `ceil(k·log_t/8)` bytes used by [`crate::fors::message_to_indices`].
pub fn split_digest(params: &Params, digest: &[u8]) -> (Vec<u8>, u64, u32) {
    let md_len = (params.k * params.log_t).div_ceil(8);
    let tree_bits = params.h - params.tree_height();
    let tree_len = tree_bits.div_ceil(8);
    let leaf_bits = params.tree_height();
    let leaf_len = leaf_bits.div_ceil(8);
    assert!(
        digest.len() >= md_len + tree_len + leaf_len,
        "digest too short"
    );

    let md = digest[..md_len].to_vec();

    let mut tree_idx: u64 = 0;
    for &b in &digest[md_len..md_len + tree_len] {
        tree_idx = (tree_idx << 8) | b as u64;
    }
    if tree_bits < 64 {
        tree_idx &= (1u64 << tree_bits) - 1;
    }

    let mut leaf_idx: u32 = 0;
    for &b in &digest[md_len + tree_len..md_len + tree_len + leaf_len] {
        leaf_idx = (leaf_idx << 8) | b as u32;
    }
    leaf_idx &= (1u32 << leaf_bits) - 1;

    (md, tree_idx, leaf_idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::AddressType;

    fn ctx128() -> HashCtx {
        HashCtx::new(Params::sphincs_128f(), &[7u8; 16])
    }

    #[test]
    fn f_output_is_n_bytes_and_deterministic() {
        let ctx = ctx128();
        let mut a = Address::new();
        a.set_type(AddressType::WotsHash);
        let m = [1u8; 16];
        let out1 = ctx.f(&a, &m);
        let out2 = ctx.f(&a, &m);
        assert_eq!(out1.len(), 16);
        assert_eq!(out1, out2);
    }

    #[test]
    fn f_separates_addresses_and_seeds() {
        let ctx = ctx128();
        let ctx2 = HashCtx::new(Params::sphincs_128f(), &[8u8; 16]);
        let mut a = Address::new();
        a.set_type(AddressType::WotsHash);
        let mut b = a;
        b.set_hash(1);
        let m = [1u8; 16];
        assert_ne!(ctx.f(&a, &m), ctx.f(&b, &m));
        assert_ne!(ctx.f(&a, &m), ctx2.f(&a, &m));
    }

    #[test]
    fn h_differs_from_f_on_same_material() {
        let ctx = ctx128();
        let a = Address::new();
        let m = [3u8; 16];
        let hh = ctx.h(&a, &m, &m);
        let ff = ctx.f(&a, &m);
        assert_ne!(hh, ff[..].to_vec());
    }

    #[test]
    fn t_l_matches_h_for_two_parts() {
        // T_2 and H absorb identical bytes, so they must agree: this pins
        // the encoding.
        let ctx = ctx128();
        let a = Address::new();
        let l = [1u8; 16];
        let r = [2u8; 16];
        assert_eq!(ctx.h(&a, &l, &r), ctx.t_l(&a, &[&l, &r]));
    }

    #[test]
    fn single_compression_for_f_all_sets() {
        // The cost-model assumption: F costs exactly one compression after
        // the seed block, for every parameter set.
        for p in Params::fast_sets() {
            let tail = 22 + p.n; // compressed adrs + message
            assert_eq!(
                SeededHasher::compressions_for_tail(tail),
                1,
                "{}: F must be single-compression",
                p.name()
            );
        }
    }

    #[test]
    fn h_compression_counts() {
        // H absorbs 22 + 2n bytes: 1 compression for n=16, 2 for n=24/32.
        assert_eq!(SeededHasher::compressions_for_tail(22 + 32), 1);
        assert_eq!(SeededHasher::compressions_for_tail(22 + 48), 2);
        assert_eq!(SeededHasher::compressions_for_tail(22 + 64), 2);
    }

    #[test]
    fn h_msg_length_and_determinism() {
        for p in Params::fast_sets() {
            let ctx = HashCtx::new(p, &vec![5u8; p.n]);
            let d = ctx.h_msg(&vec![1u8; p.n], &vec![2u8; p.n], b"message");
            assert_eq!(d.len(), p.digest_bytes());
            assert_eq!(d, ctx.h_msg(&vec![1u8; p.n], &vec![2u8; p.n], b"message"));
            assert_ne!(d, ctx.h_msg(&vec![1u8; p.n], &vec![2u8; p.n], b"messagf"));
        }
    }

    #[test]
    fn split_digest_ranges() {
        for p in Params::fast_sets() {
            let ctx = HashCtx::new(p, &vec![5u8; p.n]);
            let d = ctx.h_msg(&vec![1u8; p.n], &vec![2u8; p.n], b"m");
            let (md, tree, leaf) = split_digest(&p, &d);
            assert_eq!(md.len(), (p.k * p.log_t).div_ceil(8));
            let tree_bits = p.h - p.tree_height();
            if tree_bits < 64 {
                assert!(tree < (1u64 << tree_bits));
            }
            assert!((leaf as usize) < p.subtree_leaves());
        }
    }

    #[test]
    fn sha512_context_works_end_to_end_per_primitive() {
        // Every tweakable hash works under SHA-512 with the same n-byte
        // interface, and outputs differ from SHA-256's.
        for p in Params::fast_sets() {
            let seed = vec![5u8; p.n];
            let c256 = HashCtx::with_alg(p, &seed, HashAlg::Sha256);
            let c512 = HashCtx::with_alg(p, &seed, HashAlg::Sha512);
            assert_eq!(c512.alg(), HashAlg::Sha512);
            let a = Address::new();
            let m = vec![9u8; p.n];
            let f256 = c256.f(&a, &m);
            let f512 = c512.f(&a, &m);
            assert_eq!(f512.len(), p.n);
            assert_ne!(f256, f512, "{}", p.name());
            assert_ne!(c256.h(&a, &m, &m), c512.h(&a, &m, &m));
            assert_ne!(c256.prf_msg(&seed, &m, b"x"), c512.prf_msg(&seed, &m, b"x"));
            let d512 = c512.h_msg(&m, &seed, b"msg");
            assert_eq!(d512.len(), p.digest_bytes());
        }
    }

    #[test]
    fn sha512_t2_matches_h() {
        let p = Params::sphincs_128f();
        let ctx = HashCtx::with_alg(p, &[7u8; 16], HashAlg::Sha512);
        let a = Address::new();
        let l = [1u8; 16];
        let r = [2u8; 16];
        assert_eq!(ctx.h(&a, &l, &r), ctx.t_l(&a, &[&l, &r]));
    }

    #[test]
    fn shake256_context_works_end_to_end_per_primitive() {
        // Every tweakable hash works under SHAKE-256 with the same n-byte
        // interface, and outputs differ from both SHA paths.
        for p in Params::fast_sets() {
            let seed = vec![5u8; p.n];
            let c256 = HashCtx::with_alg(p, &seed, HashAlg::Sha256);
            let shake = HashCtx::with_alg(p, &seed, HashAlg::Shake256);
            assert_eq!(shake.alg(), HashAlg::Shake256);
            let a = Address::new();
            let m = vec![9u8; p.n];
            let f = shake.f(&a, &m);
            assert_eq!(f.len(), p.n);
            assert_ne!(f, c256.f(&a, &m), "{}", p.name());
            assert_ne!(shake.h(&a, &m, &m), c256.h(&a, &m, &m));
            assert_ne!(
                shake.prf_msg(&seed, &m, b"x"),
                c256.prf_msg(&seed, &m, b"x")
            );
            let d = shake.h_msg(&m, &seed, b"msg");
            assert_eq!(d.len(), p.digest_bytes());
            assert_ne!(d, c256.h_msg(&m, &seed, b"msg"));
        }
    }

    #[test]
    fn shake256_tweak_pins_spec_construction() {
        // The scalar SHAKE thash must be exactly
        // SHAKE256(pk_seed || ADRS(32 bytes) || M, 8n) — full address,
        // no compression, no seed state.
        use crate::keccak::Shake256;
        let p = Params::sphincs_128f();
        let pk_seed = [7u8; 16];
        let ctx = HashCtx::with_alg(p, &pk_seed, HashAlg::Shake256);
        let mut a = Address::new();
        a.set_type(AddressType::WotsHash);
        a.set_chain(3);
        let m = [9u8; 16];
        let mut reference = Vec::new();
        reference.extend_from_slice(&pk_seed);
        reference.extend_from_slice(&a.to_bytes());
        reference.extend_from_slice(&m);
        assert_eq!(ctx.f(&a, &m), Shake256::digest(&reference, 16));
    }

    #[test]
    fn shake256_t2_matches_h() {
        let p = Params::sphincs_128f();
        let ctx = HashCtx::with_alg(p, &[7u8; 16], HashAlg::Shake256);
        let a = Address::new();
        let l = [1u8; 16];
        let r = [2u8; 16];
        assert_eq!(ctx.h(&a, &l, &r), ctx.t_l(&a, &[&l, &r]));
    }

    #[test]
    fn batch_apis_match_scalar_for_both_algs() {
        for alg in [HashAlg::Sha256, HashAlg::Sha512, HashAlg::Shake256] {
            for p in Params::fast_sets() {
                let n = p.n;
                let ctx = HashCtx::with_alg(p, &vec![5u8; n], alg);
                let count = 13; // deliberately not a multiple of LANES
                let adrs: Vec<Address> = (0..count as u32)
                    .map(|i| {
                        let mut a = Address::new();
                        a.set_type(AddressType::WotsHash);
                        a.set_chain(i);
                        a.set_hash(i * 3);
                        a
                    })
                    .collect();
                let msgs: Vec<u8> = (0..count * n).map(|i| (i % 251) as u8).collect();
                let pairs: Vec<u8> = (0..count * 2 * n).map(|i| (i % 241) as u8).collect();
                let sk_seed = vec![9u8; n];

                let mut out = vec![0u8; count * n];
                ctx.f_many(&adrs, &msgs, &mut out);
                for i in 0..count {
                    assert_eq!(
                        out[i * n..(i + 1) * n],
                        ctx.f(&adrs[i], &msgs[i * n..(i + 1) * n])[..],
                        "{alg:?} {} f lane {i}",
                        p.name()
                    );
                }

                ctx.h_many(&adrs, &pairs, &mut out);
                for i in 0..count {
                    let l = &pairs[2 * i * n..(2 * i + 1) * n];
                    let r = &pairs[(2 * i + 1) * n..(2 * i + 2) * n];
                    assert_eq!(
                        out[i * n..(i + 1) * n],
                        ctx.h(&adrs[i], l, r)[..],
                        "{alg:?} {} h lane {i}",
                        p.name()
                    );
                }

                ctx.prf_many(&adrs, &sk_seed, &mut out);
                for i in 0..count {
                    assert_eq!(
                        out[i * n..(i + 1) * n],
                        ctx.prf(&adrs[i], &sk_seed)[..],
                        "{alg:?} {} prf lane {i}",
                        p.name()
                    );
                }

                // In-place scatter F over a permuted index set.
                let mut buf = msgs.clone();
                let indices: Vec<usize> = (0..count).rev().collect();
                ctx.f_many_at(&adrs, &mut buf, &indices);
                for (j, &idx) in indices.iter().enumerate() {
                    assert_eq!(
                        buf[idx * n..(idx + 1) * n],
                        ctx.f(&adrs[j], &msgs[idx * n..(idx + 1) * n])[..],
                        "{alg:?} {} f_at lane {j}",
                        p.name()
                    );
                }
            }
        }
    }

    #[test]
    fn into_variants_match_vec_apis() {
        let ctx = ctx128();
        let mut a = Address::new();
        a.set_type(AddressType::WotsHash);
        let m = [1u8; 16];
        let r = [2u8; 16];
        let mut out = [0u8; 16];
        ctx.f_into(&a, &m, &mut out);
        assert_eq!(out[..], ctx.f(&a, &m)[..]);
        ctx.h_into(&a, &m, &r, &mut out);
        assert_eq!(out[..], ctx.h(&a, &m, &r)[..]);
        ctx.prf_into(&a, &m, &mut out);
        assert_eq!(out[..], ctx.prf(&a, &m)[..]);
        let mut flat = [0u8; 32];
        flat[..16].copy_from_slice(&m);
        flat[16..].copy_from_slice(&r);
        ctx.t_l_flat_into(&a, &flat, &mut out);
        assert_eq!(out[..], ctx.t_l(&a, &[&m, &r])[..]);
    }

    #[test]
    fn prf_msg_depends_on_all_inputs() {
        let ctx = ctx128();
        let base = ctx.prf_msg(&[1; 16], &[2; 16], b"m");
        assert_ne!(base, ctx.prf_msg(&[3; 16], &[2; 16], b"m"));
        assert_ne!(base, ctx.prf_msg(&[1; 16], &[3; 16], b"m"));
        assert_ne!(base, ctx.prf_msg(&[1; 16], &[2; 16], b"n"));
        assert_eq!(base.len(), 16);
    }
}
