//! From-scratch FIPS 202 Keccak-f\[1600\] and SHAKE-256, scalar and
//! multi-lane.
//!
//! This is the hash core behind [`crate::hash::HashAlg::Shake256`] — the
//! SPHINCS+-SHAKE half of the NIST parameter family. The permutation is
//! exposed ([`keccak_f1600`]) for the same reason `sha256::compress` is:
//! the GPU cost model charges kernels per primitive invocation, and
//! high-throughput GPU PQC implementations batch Keccak across
//! independent inputs exactly like the paper batches SHA-256.
//!
//! [`KeccakxN`] is the multi-lane analogue of [`crate::sha256::Sha256xN`]:
//! [`LANES`] independent sponges advance through the 24 rounds in
//! lockstep, written as straight-line code with the lane index innermost
//! so the compiler autovectorizes each round into SIMD lanes (four
//! 64-bit lanes fill one AVX2 register). Lanes follow the same
//! masked-retirement pattern as the SHA engine: a partial final chunk
//! repeats its last input in the unused lanes and simply never reads
//! them back.
//!
//! Unlike the SHA-256 path there is **no precomputed seed state**: the
//! SHAKE tweakable-hash construction absorbs `pk_seed` fresh in every
//! call (see [`crate::hash`] for why), so the sponge always starts from
//! the all-zero state.
//!
//! ```
//! use hero_sphincs::keccak::Shake256;
//! // SHAKE-256("", 32) — FIPS 202 known answer.
//! let out = Shake256::digest(b"", 32);
//! assert_eq!(out[0], 0x46);
//! assert_eq!(out[31], 0x2f);
//! ```
//!
//! The whole scheme runs on this backend — signing and verifying under
//! [`crate::hash::HashAlg::Shake256`]:
//!
//! ```
//! use hero_sphincs::{hash::HashAlg, params::Params, sign};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), hero_sphincs::sign::SignError> {
//! // Reduced SPHINCS+-SHAKE-128f shape to keep the doc test fast.
//! let mut params = Params::shake_128f();
//! params.h = 6;
//! params.d = 3;
//! params.log_t = 4;
//! params.k = 8;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let (sk, vk) = sign::keygen_with_alg(params, HashAlg::Shake256, &mut rng)?;
//! let sig = sk.sign(b"shake-instantiated message");
//! vk.verify(b"shake-instantiated message", &sig)?;
//! assert!(vk.verify(b"another message", &sig).is_err());
//! # Ok(())
//! # }
//! ```

/// Number of bytes absorbed/squeezed per permutation (the SHAKE-256
/// rate: 1088 bits, leaving a 512-bit capacity).
pub const RATE: usize = 136;

/// Number of 64-bit words in the Keccak state.
const STATE_WORDS: usize = 25;

/// Number of interleaved lanes in the multi-lane engine ([`KeccakxN`]).
///
/// Four 64-bit lanes fill one AVX2 register; on narrower targets the
/// compiler splits each round into two or four SIMD ops, which still
/// beats the scalar path because the round dataflow is identical across
/// lanes.
pub const LANES: usize = 4;

/// SHAKE domain-separation byte appended to the message (FIPS 202 §6.2:
/// the `1111` suffix plus the first padding bit).
const DOMAIN: u8 = 0x1f;

/// Keccak round constants (FIPS 202 §3.2.5), one per round.
const RC: [u64; 24] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

/// ρ rotation offsets along the π permutation cycle: step `i` rotates
/// the word moving into position [`PI`]`[i]` (FIPS 202 §3.2.2).
const RHO: [u32; 24] = [
    1, 3, 6, 10, 15, 21, 28, 36, 45, 55, 2, 14, 27, 41, 56, 8, 25, 43, 62, 18, 39, 61, 20, 44,
];

/// The π lane permutation as a 24-step cycle starting at word 1
/// (word 0 is a fixed point), indexed `x + 5y` (FIPS 202 §3.2.3).
const PI: [usize; 24] = [
    10, 7, 11, 17, 18, 3, 5, 16, 8, 21, 24, 4, 15, 23, 19, 13, 12, 2, 20, 14, 22, 9, 6, 1,
];

/// Applies the Keccak-f\[1600\] permutation (24 rounds of θ, ρ, π, χ, ι)
/// to `state`, indexed `A[x][y] = state[x + 5y]`.
///
/// ρ+π walk the lane cycle in place with a single carried temporary and
/// χ buffers one 5-word row at a time, so the working set beyond the
/// state itself is 11 words — the formulation that keeps the multi-lane
/// variant ([`permute_x`]) from spilling its 4-wide lanes out of SIMD
/// registers.
///
/// This is the unit of work the GPU model charges the SHAKE kernels for:
/// one call = one permutation, exactly as one `sha256::compress` call =
/// one compression.
pub fn keccak_f1600(state: &mut [u64; STATE_WORDS]) {
    for rc in RC {
        // θ: column parities.
        let mut c = [0u64; 5];
        for x in 0..5 {
            c[x] = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20];
        }
        for x in 0..5 {
            let d = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            for y in 0..5 {
                state[x + 5 * y] ^= d;
            }
        }
        // ρ + π: rotate each word into its π position along the cycle.
        let mut t = state[1];
        for (rot, &pi) in RHO.iter().zip(PI.iter()) {
            let next = state[pi];
            state[pi] = t.rotate_left(*rot);
            t = next;
        }
        // χ: the only non-linear step, one row at a time.
        for y in 0..5 {
            let row: [u64; 5] = std::array::from_fn(|x| state[x + 5 * y]);
            for x in 0..5 {
                state[x + 5 * y] = row[x] ^ (!row[(x + 1) % 5] & row[(x + 2) % 5]);
            }
        }
        // ι.
        state[0] ^= rc;
    }
}

/// Applies Keccak-f\[1600\] to [`LANES`] independent states in lockstep.
///
/// The state is *lane-interleaved*: `states[w][l]` is word `w` of lane
/// `l`, so every elementwise loop below runs with the lane index
/// innermost over a contiguous `[u64; LANES]` — the layout the
/// autovectorizer maps onto 256-bit registers.
pub fn permute_x(states: &mut [[u64; LANES]; STATE_WORDS]) {
    // SAFETY (all arms): the tier cache only ever holds tiers whose CPU
    // features were positively detected by `tier::supported` during the
    // one-time ladder walk, so each `#[target_feature]` core is reached
    // only on a CPU that has its ISA.
    match crate::tier::keccak_tier() {
        #[cfg(target_arch = "x86_64")]
        crate::tier::HashTier::Avx512 => unsafe { permute_x_avx512(states) },
        #[cfg(target_arch = "x86_64")]
        crate::tier::HashTier::Avx2 => unsafe { permute_x_avx2(states) },
        #[cfg(target_arch = "aarch64")]
        crate::tier::HashTier::Neon => unsafe { permute_x_neon(states) },
        _ => permute_x_portable(states),
    }
}

/// [`permute_x`] under an explicit tier instead of the process-wide
/// resolved one — the seam the per-tier byte-identity tests and
/// `bench_hot_path`'s per-tier sections drive directly.
///
/// A tier the host CPU lacks (or that does not apply to Keccak, such as
/// SHA-NI) falls back to the portable body, mirroring the dispatch
/// ladder's never-UB guarantee; callers enumerate real tiers with
/// [`crate::tier::supported_keccak_tiers`].
pub fn permute_x_with(tier: crate::tier::HashTier, states: &mut [[u64; LANES]; STATE_WORDS]) {
    use crate::tier::{supported, HashTier, Primitive};
    // SAFETY (all arms): guarded by a positive `tier::supported` probe.
    match tier {
        #[cfg(target_arch = "x86_64")]
        HashTier::Avx512 if supported(Primitive::Keccak, tier) => unsafe {
            permute_x_avx512(states)
        },
        #[cfg(target_arch = "x86_64")]
        HashTier::Avx2 if supported(Primitive::Keccak, tier) => unsafe { permute_x_avx2(states) },
        #[cfg(target_arch = "aarch64")]
        HashTier::Neon if supported(Primitive::Keccak, tier) => unsafe { permute_x_neon(states) },
        _ => permute_x_portable(states),
    }
}

/// Explicit-intrinsics body of [`permute_x`]: each of the 25 state
/// words is one `__m256i` holding all [`LANES`] lanes. Unlike the
/// 8×32-bit SHA engine, the autovectorizer does *not* find this shape
/// on its own (the π cycle's table-driven rotations defeat it — the
/// measured autovectorized build ran at ~1× scalar), so the rounds are
/// spelled in `std::arch` intrinsics; rotations use the AVX2 variable
/// 64-bit shifts.
///
/// # Safety
///
/// Callers must ensure the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn permute_x_avx2(states: &mut [[u64; LANES]; STATE_WORDS]) {
    use std::arch::x86_64::*;

    /// `v <<< L` via constant shifts (`R = 64 - L`, spelled out because
    /// const arithmetic in generic position is unstable).
    #[inline(always)]
    unsafe fn rotl<const L: i32, const R: i32>(v: __m256i) -> __m256i {
        unsafe { _mm256_or_si256(_mm256_slli_epi64::<L>(v), _mm256_srli_epi64::<R>(v)) }
    }

    unsafe {
        let mut a: [__m256i; STATE_WORDS] =
            std::array::from_fn(|i| _mm256_loadu_si256(states[i].as_ptr() as *const __m256i));
        for rc in RC {
            // θ.
            let c: [__m256i; 5] = std::array::from_fn(|x| {
                _mm256_xor_si256(
                    _mm256_xor_si256(_mm256_xor_si256(a[x], a[x + 5]), a[x + 10]),
                    _mm256_xor_si256(a[x + 15], a[x + 20]),
                )
            });
            for x in 0..5 {
                let d = _mm256_xor_si256(c[(x + 4) % 5], rotl::<1, 63>(c[(x + 1) % 5]));
                for y in 0..5 {
                    a[x + 5 * y] = _mm256_xor_si256(a[x + 5 * y], d);
                }
            }
            // ρ + π, fully unrolled with literal indices and shifts:
            // dynamic `a[PI[i]]` indexing would force the whole state
            // array to the stack and cost the permutation its SIMD win.
            let mut t = a[1];
            macro_rules! step {
                ($pi:literal, $l:literal, $r:literal) => {{
                    let next = a[$pi];
                    a[$pi] = rotl::<$l, $r>(t);
                    t = next;
                }};
            }
            step!(10, 1, 63);
            step!(7, 3, 61);
            step!(11, 6, 58);
            step!(17, 10, 54);
            step!(18, 15, 49);
            step!(3, 21, 43);
            step!(5, 28, 36);
            step!(16, 36, 28);
            step!(8, 45, 19);
            step!(21, 55, 9);
            step!(24, 2, 62);
            step!(4, 14, 50);
            step!(15, 27, 37);
            step!(23, 41, 23);
            step!(19, 56, 8);
            step!(13, 8, 56);
            step!(12, 25, 39);
            step!(2, 43, 21);
            step!(20, 62, 2);
            step!(14, 18, 46);
            step!(22, 39, 25);
            step!(9, 61, 3);
            step!(6, 20, 44);
            step!(1, 44, 20);
            let _ = t; // the cycle closes; the final carry is dead

            // χ (andnot computes `!row[x+1] & row[x+2]` in one op).
            for y in 0..5 {
                let row: [__m256i; 5] = std::array::from_fn(|x| a[x + 5 * y]);
                for x in 0..5 {
                    a[x + 5 * y] = _mm256_xor_si256(
                        row[x],
                        _mm256_andnot_si256(row[(x + 1) % 5], row[(x + 2) % 5]),
                    );
                }
            }
            // ι.
            a[0] = _mm256_xor_si256(a[0], _mm256_set1_epi64x(rc as i64));
        }
        for (i, word) in a.iter().enumerate() {
            _mm256_storeu_si256(states[i].as_mut_ptr() as *mut __m256i, *word);
        }
    }
}

/// AVX-512VL body of [`permute_x`]: the same one-`__m256i`-per-word
/// dataflow as [`permute_x_avx2`], with the two ops AVX2 lacks lowered
/// to their single-µop AVX-512 forms — `vprolq` for every ρ/θ rotation
/// (the AVX2 path pays shift+shift+or each) and `vpternlogq` for the
/// five-way θ column parity (immediate `0x96`, two ops instead of four)
/// and the χ step (`x ^ (!y & z)`, immediate `0xD2`, one op instead of
/// two). That cuts the per-round instruction count by roughly a third.
///
/// The issue's sketch called for a 2-lane-per-register 512-bit packing;
/// measured against it, this 4-lane-ymm form wins because packing two
/// state words per zmm mixes θ column parities across the pair and
/// turns the π cycle into cross-lane shuffles — the wider registers
/// lose more to permutes than they gain in width. The AVX-512 win here
/// is the instruction diet, not the register width.
///
/// # Safety
///
/// Callers must ensure the CPU supports AVX-512F and AVX-512VL.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl")]
unsafe fn permute_x_avx512(states: &mut [[u64; LANES]; STATE_WORDS]) {
    use std::arch::x86_64::*;

    unsafe {
        let mut a: [__m256i; STATE_WORDS] =
            std::array::from_fn(|i| _mm256_loadu_si256(states[i].as_ptr() as *const __m256i));
        macro_rules! xor3 {
            ($a:expr, $b:expr, $c:expr) => {
                _mm256_ternarylogic_epi64($a, $b, $c, 0x96)
            };
        }
        for rc in RC {
            // θ: two ternlogs fold the five-way column XOR.
            let c: [__m256i; 5] = std::array::from_fn(|x| {
                xor3!(xor3!(a[x], a[x + 5], a[x + 10]), a[x + 15], a[x + 20])
            });
            for x in 0..5 {
                let d = _mm256_xor_si256(c[(x + 4) % 5], _mm256_rol_epi64::<1>(c[(x + 1) % 5]));
                for y in 0..5 {
                    a[x + 5 * y] = _mm256_xor_si256(a[x + 5 * y], d);
                }
            }
            // ρ + π, unrolled with literal indices exactly like the AVX2
            // body, but each rotation is one `vprolq`.
            let mut t = a[1];
            macro_rules! step {
                ($pi:literal, $l:literal) => {{
                    let next = a[$pi];
                    a[$pi] = _mm256_rol_epi64::<$l>(t);
                    t = next;
                }};
            }
            step!(10, 1);
            step!(7, 3);
            step!(11, 6);
            step!(17, 10);
            step!(18, 15);
            step!(3, 21);
            step!(5, 28);
            step!(16, 36);
            step!(8, 45);
            step!(21, 55);
            step!(24, 2);
            step!(4, 14);
            step!(15, 27);
            step!(23, 41);
            step!(19, 56);
            step!(13, 8);
            step!(12, 25);
            step!(2, 43);
            step!(20, 62);
            step!(14, 18);
            step!(22, 39);
            step!(9, 61);
            step!(6, 20);
            step!(1, 44);
            let _ = t; // the cycle closes; the final carry is dead

            // χ: one ternlog per word (a ^ (!b & c) = imm 0xD2).
            for y in 0..5 {
                let row: [__m256i; 5] = std::array::from_fn(|x| a[x + 5 * y]);
                for x in 0..5 {
                    a[x + 5 * y] =
                        _mm256_ternarylogic_epi64(row[x], row[(x + 1) % 5], row[(x + 2) % 5], 0xD2);
                }
            }
            // ι.
            a[0] = _mm256_xor_si256(a[0], _mm256_set1_epi64x(rc as i64));
        }
        for (i, word) in a.iter().enumerate() {
            _mm256_storeu_si256(states[i].as_mut_ptr() as *mut __m256i, *word);
        }
    }
}

/// NEON body of [`permute_x`]: the four lanes split into two
/// 2-lane-per-register passes, each state word one `uint64x2_t`. The
/// halves are fully independent, so the second pass's instruction
/// stream overlaps the first in the out-of-order window. χ uses `vbic`
/// (`z & !y`) and rotations are the shl/shr/orr triple — aarch64 NEON
/// has no 64-bit vector rotate.
///
/// # Safety
///
/// Callers must ensure the CPU supports NEON (baseline on aarch64, but
/// the tier probe still checks).
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn permute_x_neon(states: &mut [[u64; LANES]; STATE_WORDS]) {
    use std::arch::aarch64::*;

    /// `v <<< L` (`R = 64 - L`, spelled out because const arithmetic in
    /// generic position is unstable).
    #[inline(always)]
    unsafe fn rotl<const L: i32, const R: i32>(v: uint64x2_t) -> uint64x2_t {
        unsafe { vorrq_u64(vshlq_n_u64::<L>(v), vshrq_n_u64::<R>(v)) }
    }

    unsafe {
        for half in 0..2 {
            let lo = half * 2;
            let mut a: [uint64x2_t; STATE_WORDS] =
                std::array::from_fn(|i| vld1q_u64(states[i][lo..].as_ptr()));
            for rc in RC {
                // θ.
                let c: [uint64x2_t; 5] = std::array::from_fn(|x| {
                    veorq_u64(
                        veorq_u64(veorq_u64(a[x], a[x + 5]), a[x + 10]),
                        veorq_u64(a[x + 15], a[x + 20]),
                    )
                });
                for x in 0..5 {
                    let d = veorq_u64(c[(x + 4) % 5], rotl::<1, 63>(c[(x + 1) % 5]));
                    for y in 0..5 {
                        a[x + 5 * y] = veorq_u64(a[x + 5 * y], d);
                    }
                }
                // ρ + π, unrolled with literal indices and shifts.
                let mut t = a[1];
                macro_rules! step {
                    ($pi:literal, $l:literal, $r:literal) => {{
                        let next = a[$pi];
                        a[$pi] = rotl::<$l, $r>(t);
                        t = next;
                    }};
                }
                step!(10, 1, 63);
                step!(7, 3, 61);
                step!(11, 6, 58);
                step!(17, 10, 54);
                step!(18, 15, 49);
                step!(3, 21, 43);
                step!(5, 28, 36);
                step!(16, 36, 28);
                step!(8, 45, 19);
                step!(21, 55, 9);
                step!(24, 2, 62);
                step!(4, 14, 50);
                step!(15, 27, 37);
                step!(23, 41, 23);
                step!(19, 56, 8);
                step!(13, 8, 56);
                step!(12, 25, 39);
                step!(2, 43, 21);
                step!(20, 62, 2);
                step!(14, 18, 46);
                step!(22, 39, 25);
                step!(9, 61, 3);
                step!(6, 20, 44);
                step!(1, 44, 20);
                let _ = t; // the cycle closes; the final carry is dead

                // χ (`vbic` computes `row[x+2] & !row[x+1]` in one op).
                for y in 0..5 {
                    let row: [uint64x2_t; 5] = std::array::from_fn(|x| a[x + 5 * y]);
                    for x in 0..5 {
                        a[x + 5 * y] =
                            veorq_u64(row[x], vbicq_u64(row[(x + 2) % 5], row[(x + 1) % 5]));
                    }
                }
                // ι.
                a[0] = veorq_u64(a[0], vdupq_n_u64(rc));
            }
            for (i, word) in a.iter().enumerate() {
                vst1q_u64(states[i][lo..].as_mut_ptr(), *word);
            }
        }
    }
}

/// Portable straight-line body of [`permute_x`]: the 24 rounds with each
/// θ/ρ/π/χ/ι word operation expressed elementwise over the
/// [`LANES`]-wide lane arrays.
#[inline(always)]
fn permute_x_portable(states: &mut [[u64; LANES]; STATE_WORDS]) {
    for rc in RC {
        let mut c = [[0u64; LANES]; 5];
        for x in 0..5 {
            for l in 0..LANES {
                c[x][l] = states[x][l]
                    ^ states[x + 5][l]
                    ^ states[x + 10][l]
                    ^ states[x + 15][l]
                    ^ states[x + 20][l];
            }
        }
        for x in 0..5 {
            let mut d = [0u64; LANES];
            for l in 0..LANES {
                d[l] = c[(x + 4) % 5][l] ^ c[(x + 1) % 5][l].rotate_left(1);
            }
            for y in 0..5 {
                for l in 0..LANES {
                    states[x + 5 * y][l] ^= d[l];
                }
            }
        }
        let mut t = states[1];
        for (rot, &pi) in RHO.iter().zip(PI.iter()) {
            let next = states[pi];
            for l in 0..LANES {
                states[pi][l] = t[l].rotate_left(*rot);
            }
            t = next;
        }
        for y in 0..5 {
            let row: [[u64; LANES]; 5] = std::array::from_fn(|x| states[x + 5 * y]);
            for x in 0..5 {
                for l in 0..LANES {
                    states[x + 5 * y][l] = row[x][l] ^ (!row[(x + 1) % 5][l] & row[(x + 2) % 5][l]);
                }
            }
        }
        for word in states[0].iter_mut() {
            *word ^= rc;
        }
    }
}

/// Writes SHAKE-256 padding after a message tail already resident in
/// `buf[..tail_len]`, zeroing the rest of the block: domain byte `0x1F`
/// at `tail_len`, zeros, final bit `0x80` at the block end (pad10*1,
/// FIPS 202 §5.1).
///
/// This is the Keccak analogue of [`crate::sha256::pad_in_place`]: the
/// batched tweakable hashes assemble each lane's whole message in its
/// rate-block buffer, pad it here, and feed the block to
/// [`KeccakxN::absorb_blocks`]. `tail_len == RATE - 1` merges the
/// domain and final-bit bytes, as the spec requires.
///
/// # Panics
///
/// Panics if `tail_len >= RATE` (the single-block capacity).
pub fn pad_block_in_place(buf: &mut [u8; RATE], tail_len: usize) {
    assert!(tail_len < RATE, "tail too long for one rate block");
    buf[tail_len..].fill(0);
    buf[tail_len] = DOMAIN;
    buf[RATE - 1] |= 0x80;
}

/// A [`LANES`]-wide batch of Keccak sponges advancing in lockstep.
///
/// Used by the batched SHAKE tweakable hashes: every lane starts from
/// the all-zero sponge state (there is no seed state to broadcast —
/// SHAKE absorbs `pk_seed` as ordinary message bytes), absorbs its own
/// pre-padded rate blocks via [`KeccakxN::absorb_blocks`], and its
/// output is read back with [`KeccakxN::squeeze_into`].
#[derive(Clone, Debug)]
pub struct KeccakxN {
    states: [[u64; LANES]; STATE_WORDS],
}

impl Default for KeccakxN {
    fn default() -> Self {
        Self::new()
    }
}

impl KeccakxN {
    /// Starts every lane from the all-zero sponge state.
    pub fn new() -> Self {
        Self {
            states: [[0u64; LANES]; STATE_WORDS],
        }
    }

    /// Absorbs one (already padded) [`RATE`]-byte block per lane and
    /// permutes all lanes once.
    pub fn absorb_blocks(&mut self, blocks: &[&[u8; RATE]; LANES]) {
        for w in 0..RATE / 8 {
            for (l, block) in blocks.iter().enumerate() {
                self.states[w][l] ^=
                    u64::from_le_bytes(block[w * 8..(w + 1) * 8].try_into().expect("word slice"));
            }
        }
        permute_x(&mut self.states);
    }

    /// Writes the first `out.len()` squeezed bytes of `lane`
    /// (`out.len() <= RATE`). A lane is finalized by padding its input
    /// block ([`pad_block_in_place`]), so this is a pure state read-out;
    /// every tweakable-hash output is `n <= 32` bytes, well inside one
    /// rate block.
    pub fn squeeze_into(&self, lane: usize, out: &mut [u8]) {
        debug_assert!(out.len() <= RATE);
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = self.states[i / 8][lane].to_le_bytes()[i % 8];
        }
    }
}

/// Incremental SHAKE-256 hasher with arbitrary-length output.
///
/// ```
/// use hero_sphincs::keccak::Shake256;
/// let mut h = Shake256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// let mut out = [0u8; 32];
/// h.finalize_into(&mut out);
/// assert_eq!(out.to_vec(), Shake256::digest(b"abc", 32));
/// ```
#[derive(Clone, Debug)]
pub struct Shake256 {
    state: [u64; STATE_WORDS],
    buf: [u8; RATE],
    buf_len: usize,
    permutations: u64,
}

impl Default for Shake256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Shake256 {
    /// Creates a sponge in the all-zero initial state.
    pub fn new() -> Self {
        Self {
            state: [0u64; STATE_WORDS],
            buf: [0u8; RATE],
            buf_len: 0,
            permutations: 0,
        }
    }

    /// Number of Keccak-f\[1600\] invocations performed so far (used by
    /// the cost model in tests and the hash-core bench).
    pub fn permutations(&self) -> u64 {
        self.permutations
    }

    fn absorb_buf(&mut self) {
        for w in 0..RATE / 8 {
            self.state[w] ^=
                u64::from_le_bytes(self.buf[w * 8..(w + 1) * 8].try_into().expect("word slice"));
        }
        keccak_f1600(&mut self.state);
        self.permutations += 1;
        self.buf_len = 0;
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        let mut input = data;
        while !input.is_empty() {
            let take = (RATE - self.buf_len).min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == RATE {
                self.absorb_buf();
            }
        }
    }

    /// Finalizes (domain `0x1F`, pad10*1) and squeezes `out.len()` bytes.
    ///
    /// SHAKE is an XOF: any output length is valid, and a longer output
    /// is a prefix-extension of a shorter one. `H_msg` relies on this to
    /// fill the whole index-derivation digest without an MGF1 loop.
    pub fn finalize_into(mut self, out: &mut [u8]) {
        let tail = self.buf_len;
        pad_block_in_place(&mut self.buf, tail);
        self.absorb_buf();
        let mut offset = 0usize;
        loop {
            let take = RATE.min(out.len() - offset);
            for i in 0..take {
                out[offset + i] = self.state[i / 8].to_le_bytes()[i % 8];
            }
            offset += take;
            if offset == out.len() {
                return;
            }
            keccak_f1600(&mut self.state);
            self.permutations += 1;
        }
    }

    /// One-shot digest of `data`, squeezed to `out_len` bytes.
    pub fn digest(data: &[u8], out_len: usize) -> Vec<u8> {
        let mut out = vec![0u8; out_len];
        let mut h = Self::new();
        h.update(data);
        h.finalize_into(&mut out);
        out
    }
}

/// Returns the number of Keccak-f\[1600\] invocations SHAKE-256 performs
/// for a `message_len`-byte input squeezed to `out_len` bytes
/// (`out_len >= 1`).
///
/// The analytic kernel descriptors use this to count work without
/// hashing, mirroring [`crate::sha256::compressions_for_len`].
pub fn permutations_for_len(message_len: usize, out_len: usize) -> usize {
    assert!(out_len >= 1, "SHAKE output must be at least one byte");
    // Absorption: the padded message always occupies at least one block
    // (padding adds >= 1 byte). Squeezing: the first rate block of
    // output falls out of the final absorption permutation.
    (message_len + 1).div_ceil(RATE) + out_len.div_ceil(RATE) - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // Known-answer vectors cross-checked against an independent FIPS 202
    // implementation (CPython hashlib's shake_256).
    #[test]
    fn shake256_empty_vector() {
        assert_eq!(
            hex(&Shake256::digest(b"", 32)),
            "46b9dd2b0ba88d13233b3feb743eeb243fcd52ea62b81b82b50c27646ed5762f"
        );
    }

    #[test]
    fn shake256_abc_vector() {
        assert_eq!(
            hex(&Shake256::digest(b"abc", 32)),
            "483366601360a8771c6863080cc4114d8db44530f8f1e1ee4f94ea37e78b5739"
        );
        // XOF prefix property at a known 64-byte squeeze (crosses one
        // squeeze boundary check below for the long-output path).
        assert_eq!(
            hex(&Shake256::digest(b"abc", 64)),
            "483366601360a8771c6863080cc4114d8db44530f8f1e1ee4f94ea37e78b5739\
             d5a15bef186a5386c75744c0527e1faa9f8726e462a12a4feb06bd8801e751e4"
        );
    }

    #[test]
    fn shake256_1600_bit_vector() {
        // The classic 200×0xA3 NIST message (spans two rate blocks).
        assert_eq!(
            hex(&Shake256::digest(&[0xa3u8; 200], 32)),
            "cd8a920ed141aa0407a22d59288652e9d9f1a7ee0c1e7c1ca699424da84a904d"
        );
    }

    #[test]
    fn shake256_block_boundary_vectors() {
        // Exactly one full rate block: padding must open a second block.
        assert_eq!(
            hex(&Shake256::digest(&[0u8; RATE], 16)),
            "ea947b835fec1f9b0a7eabba901deb78"
        );
        // One byte past the block boundary.
        assert_eq!(
            hex(&Shake256::digest(&[0x5au8; 137], 48)),
            "57d39d9dc7e8036451eb10c5b073374abc31458aa64c7334e675d629531065d8\
             b4fdb669ad6172776077e7ab1a4e47f2"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..997u32).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 135, 136, 137, 272, 996] {
            let mut h = Shake256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            let mut out = [0u8; 32];
            h.finalize_into(&mut out);
            assert_eq!(out.to_vec(), Shake256::digest(&data, 32), "split={split}");
        }
    }

    #[test]
    fn xof_outputs_are_prefix_consistent() {
        for len in [1usize, 16, 135, 136, 137, 272, 500] {
            let long = Shake256::digest(b"prefix property", len);
            let short = Shake256::digest(b"prefix property", len / 2 + 1);
            assert_eq!(&long[..short.len()], &short[..], "len={len}");
        }
    }

    #[test]
    fn permutation_count_matches_formula() {
        // Independent count: full message blocks plus the padding block
        // during absorption, plus one permutation per squeeze block
        // after the first.
        for (msg_len, out_len) in [
            (0usize, 32usize),
            (1, 32),
            (135, 32),
            (136, 32),
            (137, 16),
            (300, 136),
            (10, 137),
            (10, 400),
        ] {
            let absorb = msg_len / RATE + 1;
            let squeeze = out_len.div_ceil(RATE) - 1;
            assert_eq!(
                permutations_for_len(msg_len, out_len),
                absorb + squeeze,
                "msg={msg_len} out={out_len}"
            );
        }
    }

    #[test]
    fn update_counts_full_block_permutations() {
        let mut h = Shake256::new();
        h.update(&[0u8; RATE - 1]);
        assert_eq!(h.permutations(), 0);
        h.update(&[0u8; 1]);
        assert_eq!(h.permutations(), 1, "full buffer absorbs immediately");
        h.update(&[0u8; 3 * RATE]);
        assert_eq!(h.permutations(), 4);
    }

    #[test]
    fn multi_lane_matches_scalar_permutation() {
        // Four distinct states, interleaved, vs four scalar permutations.
        let mut scalars = [[0u64; STATE_WORDS]; LANES];
        for (l, s) in scalars.iter_mut().enumerate() {
            for (w, word) in s.iter_mut().enumerate() {
                *word = ((l as u64) << 32) | (w as u64 * 0x9e37);
            }
        }
        let mut interleaved = [[0u64; LANES]; STATE_WORDS];
        for w in 0..STATE_WORDS {
            for l in 0..LANES {
                interleaved[w][l] = scalars[l][w];
            }
        }
        permute_x(&mut interleaved);
        for (l, s) in scalars.iter_mut().enumerate() {
            keccak_f1600(s);
            for w in 0..STATE_WORDS {
                assert_eq!(interleaved[w][l], s[w], "lane {l} word {w}");
            }
        }
    }

    #[test]
    fn keccakxn_lanes_match_scalar_shake() {
        // One padded single-block message per lane, squeezed, vs the
        // scalar hasher.
        let mut kx = KeccakxN::new();
        let mut blocks = [[0u8; RATE]; LANES];
        let msgs: Vec<Vec<u8>> = (0..LANES)
            .map(|l| (0..40 + l).map(|i| (l * 31 + i) as u8).collect())
            .collect();
        for (l, block) in blocks.iter_mut().enumerate() {
            block[..msgs[l].len()].copy_from_slice(&msgs[l]);
            pad_block_in_place(block, msgs[l].len());
        }
        let refs: [&[u8; RATE]; LANES] = std::array::from_fn(|l| &blocks[l]);
        kx.absorb_blocks(&refs);
        for (l, msg) in msgs.iter().enumerate() {
            let mut out = [0u8; 32];
            kx.squeeze_into(l, &mut out);
            assert_eq!(out.to_vec(), Shake256::digest(msg, 32), "lane {l}");
        }
    }

    #[test]
    fn pad_block_boundary_merges_domain_and_final_bit() {
        // tail_len == RATE-1: 0x1F and 0x80 share the last byte (0x9F).
        let mut buf = [0u8; RATE];
        let msg = [7u8; RATE - 1];
        buf[..RATE - 1].copy_from_slice(&msg);
        pad_block_in_place(&mut buf, RATE - 1);
        assert_eq!(buf[RATE - 1], 0x9f);
        let mut state = [0u64; STATE_WORDS];
        for w in 0..RATE / 8 {
            state[w] ^= u64::from_le_bytes(buf[w * 8..(w + 1) * 8].try_into().unwrap());
        }
        keccak_f1600(&mut state);
        let mut out = [0u8; 32];
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = state[i / 8].to_le_bytes()[i % 8];
        }
        assert_eq!(out.to_vec(), Shake256::digest(&msg, 32));
    }

    #[test]
    #[should_panic(expected = "tail too long")]
    fn pad_rejects_full_block_tail() {
        let mut buf = [0u8; RATE];
        pad_block_in_place(&mut buf, RATE);
    }
}
