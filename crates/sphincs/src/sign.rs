//! Top-level SPHINCS+ key generation, signing and verification
//! (the flow of Fig. 2 in the paper).

use crate::address::{Address, AddressType};
use crate::fors::{self, ForsSignature};
use crate::hash::{self, HashAlg, HashCtx};
use crate::hypertree::{self, HtSignature};
use crate::params::Params;

use rand::RngCore;
use std::fmt;

/// Errors returned by signing/verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SignError {
    /// Signature fields do not match the parameter set's dimensions.
    MalformedSignature(String),
    /// The signature did not verify.
    VerificationFailed,
    /// Parameter set failed validation.
    InvalidParams(String),
}

impl fmt::Display for SignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignError::MalformedSignature(what) => write!(f, "malformed signature: {what}"),
            SignError::VerificationFailed => f.write_str("signature verification failed"),
            SignError::InvalidParams(what) => write!(f, "invalid parameters: {what}"),
        }
    }
}

impl std::error::Error for SignError {}

/// A SPHINCS+ secret key: `(sk_seed, sk_prf, pk_seed, pk_root)`.
#[derive(Clone)]
pub struct SigningKey {
    params: Params,
    alg: HashAlg,
    sk_seed: Vec<u8>,
    sk_prf: Vec<u8>,
    pk_seed: Vec<u8>,
    pk_root: Vec<u8>,
}

impl fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print secret material.
        f.debug_struct("SigningKey")
            .field("params", &self.params)
            .finish_non_exhaustive()
    }
}

/// A SPHINCS+ public key: `(pk_seed, pk_root)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyingKey {
    params: Params,
    alg: HashAlg,
    pk_seed: Vec<u8>,
    pk_root: Vec<u8>,
}

/// A SPHINCS+ signature: randomizer, FORS signature, hypertree signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Signature {
    /// Message randomizer `r` (`n` bytes).
    pub randomizer: Vec<u8>,
    /// FORS component.
    pub fors: ForsSignature,
    /// Hypertree component.
    pub ht: HtSignature,
}

impl Signature {
    /// Serialized byte length for `params` (matches [`Params::sig_bytes`]).
    pub fn byte_len(&self, params: &Params) -> usize {
        params.sig_bytes()
    }

    /// Flattens the signature to bytes (`r || FORS || HT`).
    pub fn to_bytes(&self, params: &Params) -> Vec<u8> {
        let mut out = Vec::with_capacity(params.sig_bytes());
        out.extend_from_slice(&self.randomizer);
        for tree in &self.fors.trees {
            out.extend_from_slice(&tree.sk);
            for node in &tree.auth_path {
                out.extend_from_slice(node);
            }
        }
        for layer in &self.ht.layers {
            for node in &layer.wots_sig {
                out.extend_from_slice(node);
            }
            for node in &layer.auth_path {
                out.extend_from_slice(node);
            }
        }
        out
    }

    /// Parses a signature from bytes produced by [`Signature::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`SignError::MalformedSignature`] if `bytes` has the wrong
    /// length.
    pub fn from_bytes(params: &Params, bytes: &[u8]) -> Result<Self, SignError> {
        if bytes.len() != params.sig_bytes() {
            return Err(SignError::MalformedSignature(format!(
                "expected {} bytes, got {}",
                params.sig_bytes(),
                bytes.len()
            )));
        }
        let n = params.n;
        let mut pos = 0usize;
        let mut take = |len: usize| {
            let slice = bytes[pos..pos + len].to_vec();
            pos += len;
            slice
        };
        let randomizer = take(n);
        let mut trees = Vec::with_capacity(params.k);
        for _ in 0..params.k {
            let sk = take(n);
            let auth_path = (0..params.log_t).map(|_| take(n)).collect();
            trees.push(crate::fors::ForsTreeSig { sk, auth_path });
        }
        let mut layers = Vec::with_capacity(params.d);
        for _ in 0..params.d {
            let wots_sig = (0..params.wots_len()).map(|_| take(n)).collect();
            let auth_path = (0..params.tree_height()).map(|_| take(n)).collect();
            layers.push(crate::hypertree::XmssSig {
                wots_sig,
                auth_path,
            });
        }
        debug_assert_eq!(pos, bytes.len());
        Ok(Self {
            randomizer,
            fors: ForsSignature { trees },
            ht: HtSignature { layers },
        })
    }

    /// Checks every dimension of the signature against `params`: the
    /// shape gate [`VerifyingKey::verify`] applies before recomputing
    /// any hash, split out so batched and planned verification can
    /// pre-screen signatures without entering the lane sweeps.
    ///
    /// # Errors
    ///
    /// [`SignError::MalformedSignature`] naming the first bad field.
    pub fn check_shape(&self, params: &Params) -> Result<(), SignError> {
        if self.randomizer.len() != params.n {
            return Err(SignError::MalformedSignature("randomizer length".into()));
        }
        if self.fors.trees.len() != params.k {
            return Err(SignError::MalformedSignature("FORS tree count".into()));
        }
        if self.ht.layers.len() != params.d {
            return Err(SignError::MalformedSignature(
                "hypertree layer count".into(),
            ));
        }
        for tree in &self.fors.trees {
            if tree.sk.len() != params.n || tree.auth_path.len() != params.log_t {
                return Err(SignError::MalformedSignature("FORS tree shape".into()));
            }
            if tree.auth_path.iter().any(|node| node.len() != params.n) {
                return Err(SignError::MalformedSignature(
                    "FORS auth-path node length".into(),
                ));
            }
        }
        for layer in &self.ht.layers {
            if layer.wots_sig.len() != params.wots_len()
                || layer.auth_path.len() != params.tree_height()
            {
                return Err(SignError::MalformedSignature("XMSS layer shape".into()));
            }
            if layer
                .wots_sig
                .iter()
                .chain(layer.auth_path.iter())
                .any(|node| node.len() != params.n)
            {
                return Err(SignError::MalformedSignature(
                    "XMSS layer node length".into(),
                ));
            }
        }
        Ok(())
    }
}

/// Generates a key pair for `params` using `rng`.
///
/// # Errors
///
/// Returns [`SignError::InvalidParams`] if the parameter set is
/// inconsistent.
pub fn keygen<R: RngCore>(
    params: Params,
    rng: &mut R,
) -> Result<(SigningKey, VerifyingKey), SignError> {
    params.validate().map_err(SignError::InvalidParams)?;
    let mut sk_seed = vec![0u8; params.n];
    let mut sk_prf = vec![0u8; params.n];
    let mut pk_seed = vec![0u8; params.n];
    rng.fill_bytes(&mut sk_seed);
    rng.fill_bytes(&mut sk_prf);
    rng.fill_bytes(&mut pk_seed);
    Ok(keygen_from_seeds(params, sk_seed, sk_prf, pk_seed))
}

/// [`keygen`] over an explicit hash primitive (the paper's
/// hash-agnosticism claim: SHA-512 works wherever SHA-256 does).
///
/// # Errors
///
/// Returns [`SignError::InvalidParams`] if the parameter set is
/// inconsistent.
pub fn keygen_with_alg<R: RngCore>(
    params: Params,
    alg: HashAlg,
    rng: &mut R,
) -> Result<(SigningKey, VerifyingKey), SignError> {
    params.validate().map_err(SignError::InvalidParams)?;
    let mut sk_seed = vec![0u8; params.n];
    let mut sk_prf = vec![0u8; params.n];
    let mut pk_seed = vec![0u8; params.n];
    rng.fill_bytes(&mut sk_seed);
    rng.fill_bytes(&mut sk_prf);
    rng.fill_bytes(&mut pk_seed);
    Ok(keygen_from_seeds_with_alg(
        params, alg, sk_seed, sk_prf, pk_seed,
    ))
}

/// Deterministic key generation from explicit seeds (each `n` bytes).
///
/// # Panics
///
/// Panics if any seed has the wrong length.
pub fn keygen_from_seeds(
    params: Params,
    sk_seed: Vec<u8>,
    sk_prf: Vec<u8>,
    pk_seed: Vec<u8>,
) -> (SigningKey, VerifyingKey) {
    keygen_from_seeds_with_alg(params, HashAlg::Sha256, sk_seed, sk_prf, pk_seed)
}

/// [`keygen_from_seeds`] over an explicit hash primitive.
///
/// # Panics
///
/// Panics if any seed has the wrong length.
pub fn keygen_from_seeds_with_alg(
    params: Params,
    alg: HashAlg,
    sk_seed: Vec<u8>,
    sk_prf: Vec<u8>,
    pk_seed: Vec<u8>,
) -> (SigningKey, VerifyingKey) {
    assert_eq!(sk_seed.len(), params.n);
    assert_eq!(sk_prf.len(), params.n);
    assert_eq!(pk_seed.len(), params.n);
    let ctx = HashCtx::with_alg(params, &pk_seed, alg);
    let pk_root = hypertree::public_root(&ctx, &sk_seed);
    let sk = SigningKey {
        params,
        alg,
        sk_seed,
        sk_prf,
        pk_seed: pk_seed.clone(),
        pk_root: pk_root.clone(),
    };
    let vk = VerifyingKey {
        params,
        alg,
        pk_seed,
        pk_root,
    };
    (sk, vk)
}

impl SigningKey {
    /// The parameter set of this key.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The hash primitive this key signs with.
    pub fn alg(&self) -> HashAlg {
        self.alg
    }

    /// Secret FORS/WOTS+ seed (exposed for the GPU engine, which re-derives
    /// leaves inside kernels).
    pub fn sk_seed(&self) -> &[u8] {
        &self.sk_seed
    }

    /// PRF key for message randomization.
    pub fn sk_prf(&self) -> &[u8] {
        &self.sk_prf
    }

    /// Public seed.
    pub fn pk_seed(&self) -> &[u8] {
        &self.pk_seed
    }

    /// Public hypertree root.
    pub fn pk_root(&self) -> &[u8] {
        &self.pk_root
    }

    /// The corresponding public key.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey {
            params: self.params,
            alg: self.alg,
            pk_seed: self.pk_seed.clone(),
            pk_root: self.pk_root.clone(),
        }
    }

    /// Signs `msg`. `opt_rand` (`n` bytes) randomizes the signature;
    /// deterministic signing passes the public seed (the spec default).
    pub fn sign_with_rand(&self, msg: &[u8], opt_rand: &[u8]) -> Signature {
        let ctx = HashCtx::with_alg(self.params, &self.pk_seed, self.alg);
        let randomizer = ctx.prf_msg(&self.sk_prf, opt_rand, msg);
        let digest = ctx.h_msg(&randomizer, &self.pk_root, msg);
        let (md, tree_idx, leaf_idx) = hash::split_digest(&self.params, &digest);

        let mut keypair_adrs = Address::new();
        keypair_adrs.set_layer(0);
        keypair_adrs.set_tree(tree_idx);
        keypair_adrs.set_type(AddressType::ForsTree);
        keypair_adrs.set_keypair(leaf_idx);

        let fors_sig = fors::sign(&ctx, &md, &self.sk_seed, &keypair_adrs);
        let fors_pk = fors::pk_from_sig(&ctx, &fors_sig, &md, &keypair_adrs);
        let ht_sig = hypertree::sign(&ctx, &fors_pk, &self.sk_seed, tree_idx, leaf_idx);
        Signature {
            randomizer,
            fors: fors_sig,
            ht: ht_sig,
        }
    }

    /// Signs `msg` deterministically (opt_rand = pk_seed).
    pub fn sign(&self, msg: &[u8]) -> Signature {
        let pk_seed = self.pk_seed.clone();
        self.sign_with_rand(msg, &pk_seed)
    }
}

impl VerifyingKey {
    /// The parameter set of this key.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The hash primitive this key verifies with.
    pub fn alg(&self) -> HashAlg {
        self.alg
    }

    /// Serializes to the spec's `pk_seed || pk_root` (`2n` bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 * self.params.n);
        out.extend_from_slice(&self.pk_seed);
        out.extend_from_slice(&self.pk_root);
        out
    }

    /// Parses a public key serialized by [`VerifyingKey::to_bytes`].
    /// The parameter set and hash primitive are carried out of band (as
    /// the spec does).
    ///
    /// # Errors
    ///
    /// [`SignError::MalformedSignature`] on a wrong length.
    pub fn from_bytes(params: Params, alg: HashAlg, bytes: &[u8]) -> Result<Self, SignError> {
        if bytes.len() != params.pk_bytes() {
            return Err(SignError::MalformedSignature(format!(
                "public key must be {} bytes, got {}",
                params.pk_bytes(),
                bytes.len()
            )));
        }
        let n = params.n;
        Ok(Self {
            params,
            alg,
            pk_seed: bytes[..n].to_vec(),
            pk_root: bytes[n..].to_vec(),
        })
    }

    /// Public seed.
    pub fn pk_seed(&self) -> &[u8] {
        &self.pk_seed
    }

    /// Public hypertree root.
    pub fn pk_root(&self) -> &[u8] {
        &self.pk_root
    }

    /// Verifies `sig` over `msg`.
    ///
    /// # Errors
    ///
    /// [`SignError::MalformedSignature`] if dimensions are wrong,
    /// [`SignError::VerificationFailed`] if the root does not match.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> Result<(), SignError> {
        let params = &self.params;
        sig.check_shape(params)?;

        let ctx = HashCtx::with_alg(*params, &self.pk_seed, self.alg);
        let digest = ctx.h_msg(&sig.randomizer, &self.pk_root, msg);
        let (md, tree_idx, leaf_idx) = hash::split_digest(params, &digest);

        let mut keypair_adrs = Address::new();
        keypair_adrs.set_layer(0);
        keypair_adrs.set_tree(tree_idx);
        keypair_adrs.set_type(AddressType::ForsTree);
        keypair_adrs.set_keypair(leaf_idx);

        let fors_pk = fors::pk_from_sig(&ctx, &sig.fors, &md, &keypair_adrs);
        let root = hypertree::root_from_sig(&ctx, &sig.ht, &fors_pk, tree_idx, leaf_idx);
        if root == self.pk_root {
            Ok(())
        } else {
            Err(SignError::VerificationFailed)
        }
    }

    /// Verifies many signatures lane-batched: shape-invalid signatures
    /// short-circuit to their typed error, and the rest recompute
    /// together — all FORS roots in one [`fors::pk_from_sig_many`]
    /// sweep, then every hypertree layer across all signatures in one
    /// [`hypertree::xmss_pk_from_sig_many`] call, so signature A's
    /// chains share SIMD lanes with signature B's. Verdicts are
    /// bit-for-bit those of [`VerifyingKey::verify`] per pair, and the
    /// batch never short-circuits on a bad signature (like a GPU batch
    /// that always runs to completion).
    ///
    /// ```
    /// use hero_sphincs::params::Params;
    /// use hero_sphincs::sign::keygen_from_seeds;
    ///
    /// let mut params = Params::sphincs_128f();
    /// params.h = 6;
    /// params.d = 3;
    /// params.log_t = 4;
    /// params.k = 8;
    /// let n = params.n;
    /// let (sk, vk) = keygen_from_seeds(
    ///     params,
    ///     vec![1; n],
    ///     vec![2; n],
    ///     vec![3; n],
    /// );
    /// let sig_a = sk.sign(b"batch item a");
    /// let mut sig_b = sk.sign(b"batch item b");
    /// sig_b.randomizer[0] ^= 1; // tampered
    /// let verdicts = vk.verify_many(
    ///     &[b"batch item a", b"batch item b"],
    ///     &[&sig_a, &sig_b],
    /// );
    /// assert!(verdicts[0].is_ok());
    /// assert!(verdicts[1].is_err());
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `msgs.len() != sigs.len()`.
    pub fn verify_many(&self, msgs: &[&[u8]], sigs: &[&Signature]) -> Vec<Result<(), SignError>> {
        let params = &self.params;
        assert_eq!(msgs.len(), sigs.len(), "one message per signature");
        let count = sigs.len();
        let mut out: Vec<Result<(), SignError>> =
            sigs.iter().map(|sig| sig.check_shape(params)).collect();
        // Only well-formed signatures enter the lane sweeps.
        let live: Vec<usize> = (0..count).filter(|&i| out[i].is_ok()).collect();
        if live.is_empty() {
            return out;
        }

        let ctx = HashCtx::with_alg(*params, &self.pk_seed, self.alg);
        let mut mds = Vec::with_capacity(live.len());
        let mut tree_idxs = Vec::with_capacity(live.len());
        let mut leaf_idxs = Vec::with_capacity(live.len());
        let mut keypair_adrs_list = Vec::with_capacity(live.len());
        for &i in &live {
            let digest = ctx.h_msg(&sigs[i].randomizer, &self.pk_root, msgs[i]);
            let (md, tree_idx, leaf_idx) = hash::split_digest(params, &digest);
            let mut keypair_adrs = Address::new();
            keypair_adrs.set_layer(0);
            keypair_adrs.set_tree(tree_idx);
            keypair_adrs.set_type(AddressType::ForsTree);
            keypair_adrs.set_keypair(leaf_idx);
            mds.push(md);
            tree_idxs.push(tree_idx);
            leaf_idxs.push(leaf_idx);
            keypair_adrs_list.push(keypair_adrs);
        }

        let fors_sigs: Vec<&ForsSignature> = live.iter().map(|&i| &sigs[i].fors).collect();
        let md_refs: Vec<&[u8]> = mds.iter().map(Vec::as_slice).collect();
        let mut nodes = fors::pk_from_sig_many(&ctx, &fors_sigs, &md_refs, &keypair_adrs_list);

        for layer in 0..params.d as u32 {
            let reqs: Vec<hypertree::XmssVerifyRequest> = live
                .iter()
                .enumerate()
                .map(|(j, &i)| hypertree::XmssVerifyRequest {
                    sig: &sigs[i].ht.layers[layer as usize],
                    msg: &nodes[j],
                    tree: tree_idxs[j],
                    leaf_idx: leaf_idxs[j],
                })
                .collect();
            let next = hypertree::xmss_pk_from_sig_many(&ctx, layer, &reqs);
            for j in 0..live.len() {
                leaf_idxs[j] = (tree_idxs[j] & ((1 << params.tree_height()) - 1)) as u32;
                tree_idxs[j] >>= params.tree_height();
            }
            nodes = next;
        }

        for (j, &i) in live.iter().enumerate() {
            if nodes[j] != self.pk_root {
                out[i] = Err(SignError::VerificationFailed);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Tiny parameters so full sign/verify is test-speed: h=6, d=3,
    /// log_t=4, k=8.
    pub(crate) fn tiny_params() -> Params {
        let mut p = Params::sphincs_128f();
        p.h = 6;
        p.d = 3;
        p.log_t = 4;
        p.k = 8;
        p
    }

    #[test]
    fn keygen_sign_verify_roundtrip() {
        let mut rng = StdRng::seed_from_u64(42);
        let (sk, vk) = keygen(tiny_params(), &mut rng).expect("keygen");
        let sig = sk.sign(b"hello post-quantum world");
        vk.verify(b"hello post-quantum world", &sig)
            .expect("verify");
    }

    #[test]
    fn verify_rejects_other_message() {
        let mut rng = StdRng::seed_from_u64(43);
        let (sk, vk) = keygen(tiny_params(), &mut rng).unwrap();
        let sig = sk.sign(b"msg A");
        assert_eq!(
            vk.verify(b"msg B", &sig),
            Err(SignError::VerificationFailed)
        );
    }

    #[test]
    fn verify_rejects_tampered_components() {
        let mut rng = StdRng::seed_from_u64(44);
        let (sk, vk) = keygen(tiny_params(), &mut rng).unwrap();
        let msg = b"tamper test";
        let sig = sk.sign(msg);

        let mut bad = sig.clone();
        bad.randomizer[0] ^= 1;
        assert!(vk.verify(msg, &bad).is_err());

        let mut bad = sig.clone();
        bad.fors.trees[0].sk[0] ^= 1;
        assert!(vk.verify(msg, &bad).is_err());

        let mut bad = sig.clone();
        bad.ht.layers[0].wots_sig[0][0] ^= 1;
        assert!(vk.verify(msg, &bad).is_err());

        let mut bad = sig.clone();
        let last = bad.ht.layers.len() - 1;
        bad.ht.layers[last].auth_path[0][0] ^= 1;
        assert!(vk.verify(msg, &bad).is_err());
    }

    #[test]
    fn verify_rejects_wrong_length_nodes() {
        // Hand-built signatures with truncated nodes must fail with a
        // typed error, not a panic in the batched hot path.
        let mut rng = StdRng::seed_from_u64(54);
        let (sk, vk) = keygen(tiny_params(), &mut rng).unwrap();
        let msg = b"node length";
        let sig = sk.sign(msg);

        let mut bad = sig.clone();
        bad.ht.layers[0].wots_sig[0].pop();
        assert!(matches!(
            vk.verify(msg, &bad),
            Err(SignError::MalformedSignature(_))
        ));

        let mut bad = sig.clone();
        bad.ht.layers[1].auth_path[0].push(0);
        assert!(matches!(
            vk.verify(msg, &bad),
            Err(SignError::MalformedSignature(_))
        ));

        let mut bad = sig.clone();
        bad.fors.trees[0].auth_path[0].pop();
        assert!(matches!(
            vk.verify(msg, &bad),
            Err(SignError::MalformedSignature(_))
        ));
    }

    #[test]
    fn verify_many_matches_scalar_verdicts() {
        // A batch mixing valid, root-mismatching, and shape-invalid
        // signatures: every verdict must be bit-for-bit the scalar
        // verify's, in place, with no cross-contamination.
        let mut rng = StdRng::seed_from_u64(46);
        let (sk, vk) = keygen(tiny_params(), &mut rng).unwrap();
        let msgs: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i; 11]).collect();
        let mut sigs: Vec<Signature> = msgs.iter().map(|m| sk.sign(m)).collect();
        sigs[1].fors.trees[0].sk[0] ^= 1; // root mismatch
        sigs[3].ht.layers.pop(); // malformed shape
        sigs[4].randomizer[0] ^= 1; // root mismatch via digest

        let msg_refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let sig_refs: Vec<&Signature> = sigs.iter().collect();
        let batched = vk.verify_many(&msg_refs, &sig_refs);
        assert_eq!(batched.len(), sigs.len());
        for (i, verdict) in batched.iter().enumerate() {
            assert_eq!(verdict, &vk.verify(&msgs[i], &sigs[i]), "index {i}");
        }
        assert!(batched[0].is_ok());
        assert_eq!(batched[1], Err(SignError::VerificationFailed));
        assert!(matches!(batched[3], Err(SignError::MalformedSignature(_))));

        // All-malformed batches never touch the lane sweeps.
        let empty: Vec<&[u8]> = Vec::new();
        assert!(vk.verify_many(&empty, &[]).is_empty());
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let mut rng = StdRng::seed_from_u64(45);
        let params = tiny_params();
        let (sk, vk) = keygen(params, &mut rng).unwrap();
        let sig = sk.sign(b"serialize me");
        let bytes = sig.to_bytes(&params);
        assert_eq!(bytes.len(), params.sig_bytes());
        let parsed = Signature::from_bytes(&params, &bytes).expect("parse");
        assert_eq!(parsed, sig);
        vk.verify(b"serialize me", &parsed).expect("verify parsed");
    }

    #[test]
    fn from_bytes_rejects_wrong_length() {
        let params = tiny_params();
        assert!(matches!(
            Signature::from_bytes(&params, &[0u8; 10]),
            Err(SignError::MalformedSignature(_))
        ));
    }

    #[test]
    fn deterministic_signing_is_reproducible() {
        let mut rng = StdRng::seed_from_u64(46);
        let (sk, _) = keygen(tiny_params(), &mut rng).unwrap();
        assert_eq!(sk.sign(b"same"), sk.sign(b"same"));
    }

    #[test]
    fn randomized_signing_differs_but_verifies() {
        let mut rng = StdRng::seed_from_u64(47);
        let (sk, vk) = keygen(tiny_params(), &mut rng).unwrap();
        let s1 = sk.sign_with_rand(b"m", &[1u8; 16]);
        let s2 = sk.sign_with_rand(b"m", &[2u8; 16]);
        assert_ne!(s1, s2);
        vk.verify(b"m", &s1).unwrap();
        vk.verify(b"m", &s2).unwrap();
    }

    #[test]
    fn public_key_bytes_roundtrip() {
        use crate::hash::HashAlg;
        let mut rng = StdRng::seed_from_u64(51);
        let params = tiny_params();
        let (sk, vk) = keygen(params, &mut rng).unwrap();
        let bytes = vk.to_bytes();
        assert_eq!(bytes.len(), params.pk_bytes());
        let parsed = VerifyingKey::from_bytes(params, HashAlg::Sha256, &bytes).unwrap();
        assert_eq!(parsed, vk);
        let sig = sk.sign(b"pk wire");
        parsed.verify(b"pk wire", &sig).unwrap();
        assert!(VerifyingKey::from_bytes(params, HashAlg::Sha256, &bytes[1..]).is_err());
    }

    #[test]
    fn sha512_keygen_sign_verify_roundtrip() {
        // The paper's hash-agnosticism claim end to end: the whole scheme
        // runs unchanged on SHA-512.
        use crate::hash::HashAlg;
        let mut rng = StdRng::seed_from_u64(52);
        let (sk, vk) = keygen_with_alg(tiny_params(), HashAlg::Sha512, &mut rng).unwrap();
        assert_eq!(sk.alg(), HashAlg::Sha512);
        let sig = sk.sign(b"sha-512 instantiation");
        vk.verify(b"sha-512 instantiation", &sig).expect("verify");
        assert!(vk.verify(b"sha-512 instantiation!", &sig).is_err());
    }

    #[test]
    fn shake256_keygen_sign_verify_roundtrip() {
        // The SPHINCS+-SHAKE half of the parameter family end to end.
        use crate::hash::HashAlg;
        let mut rng = StdRng::seed_from_u64(55);
        let mut p = Params::shake_128f();
        p.h = 6;
        p.d = 3;
        p.log_t = 4;
        p.k = 8;
        let (sk, vk) = keygen_with_alg(p, HashAlg::Shake256, &mut rng).unwrap();
        assert_eq!(sk.alg(), HashAlg::Shake256);
        let sig = sk.sign(b"shake instantiation");
        vk.verify(b"shake instantiation", &sig).expect("verify");
        assert!(vk.verify(b"shake instantiation!", &sig).is_err());
        // Wire-format round trip under SHAKE.
        let parsed = Signature::from_bytes(&p, &sig.to_bytes(&p)).unwrap();
        vk.verify(b"shake instantiation", &parsed).unwrap();
    }

    #[test]
    fn shake256_and_sha256_keys_are_incompatible() {
        use crate::hash::HashAlg;
        let seeds = (vec![1u8; 16], vec![2u8; 16], vec![3u8; 16]);
        let (sk_sha, vk_sha) = keygen_from_seeds_with_alg(
            tiny_params(),
            HashAlg::Sha256,
            seeds.0.clone(),
            seeds.1.clone(),
            seeds.2.clone(),
        );
        let (sk_shake, vk_shake) =
            keygen_from_seeds_with_alg(tiny_params(), HashAlg::Shake256, seeds.0, seeds.1, seeds.2);
        assert_ne!(vk_sha.pk_root(), vk_shake.pk_root());
        assert!(vk_shake.verify(b"cross", &sk_sha.sign(b"cross")).is_err());
        assert!(vk_sha.verify(b"cross", &sk_shake.sign(b"cross")).is_err());
    }

    #[test]
    fn sha256_and_sha512_keys_are_incompatible() {
        use crate::hash::HashAlg;
        let mut rng = StdRng::seed_from_u64(53);
        let seeds = (vec![1u8; 16], vec![2u8; 16], vec![3u8; 16]);
        let (sk256, vk256) = keygen_from_seeds_with_alg(
            tiny_params(),
            HashAlg::Sha256,
            seeds.0.clone(),
            seeds.1.clone(),
            seeds.2.clone(),
        );
        let (sk512, vk512) =
            keygen_from_seeds_with_alg(tiny_params(), HashAlg::Sha512, seeds.0, seeds.1, seeds.2);
        assert_ne!(
            vk256.pk_root(),
            vk512.pk_root(),
            "same seeds, different primitive"
        );
        let sig256 = sk256.sign(b"cross");
        let sig512 = sk512.sign(b"cross");
        assert!(vk512.verify(b"cross", &sig256).is_err());
        assert!(vk256.verify(b"cross", &sig512).is_err());
        let _ = &mut rng;
    }

    #[test]
    fn keygen_rejects_invalid_params() {
        let mut rng = StdRng::seed_from_u64(48);
        let mut p = tiny_params();
        p.d = 4; // 4 does not divide 6
        assert!(matches!(
            keygen(p, &mut rng),
            Err(SignError::InvalidParams(_))
        ));
    }

    #[test]
    fn debug_does_not_leak_secrets() {
        let mut rng = StdRng::seed_from_u64(49);
        let (sk, _) = keygen(tiny_params(), &mut rng).unwrap();
        let dbg = format!("{sk:?}");
        assert!(!dbg.contains("sk_seed"));
    }
}
