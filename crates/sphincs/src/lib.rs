//! # hero-sphincs
//!
//! A from-scratch implementation of the SPHINCS+ stateless hash-based
//! signature scheme (SHA-256 *simple* instantiation), serving as the
//! reference substrate and correctness oracle for the
//! [HERO-Sign](https://arxiv.org/abs/2512.23969) GPU reproduction.
//!
//! The crate exposes every layer the paper parallelizes:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 with an exposed compression function,
//!   resumable chaining state (the kernels' constant-memory seed state),
//!   and the multi-lane [`sha256::Sha256xN`] engine.
//! * [`keccak`] — FIPS 202 Keccak-f\[1600\] and SHAKE-256 with the
//!   multi-lane [`keccak::KeccakxN`] engine (the SPHINCS+-SHAKE family).
//! * [`params`] — Table I parameter sets, plus their `shake_*` twins.
//! * [`address`] — the ADRS hash-addressing scheme.
//! * [`hash`] — the tweakable hashes `F`, `H`, `T_l`, `PRF`, `PRF_msg`,
//!   `H_msg`, each in scalar, into-buffer, and batched (`*_many`) form,
//!   instantiated over SHA-256, SHA-512 or SHAKE-256
//!   ([`hash::HashAlg`]).
//! * [`wots`] — WOTS+ chains (chain-level parallelism; chains advance
//!   batched across SIMD lanes).
//! * [`fors`] — the forest of random subsets (tree-level parallelism,
//!   the target of HERO-Sign's FORS Fusion; leaves generate batched).
//! * [`merkle`] — tree hashing with authentication paths (the reduction
//!   of Fig. 7, levels halved in place over one flat buffer).
//! * [`hypertree`] — the `d`-layer hypertree (`TREE_Sign`'s workload).
//! * [`sign`] — keygen / sign / verify.
//! * [`tier`] — the runtime ISA ladder (scalar → AVX2 → SHA-NI /
//!   AVX-512 / NEON) that picks the fastest hash core once per process,
//!   overridable via `HERO_HASH_TIER`.
//!
//! ## Lanes as threads
//!
//! HERO-Sign fills GPU warps with independent hash nodes; this crate
//! fills SIMD lanes the same way. Every structure-level independence the
//! paper exploits (WOTS+ chains, FORS leaves and trees, Merkle siblings)
//! is expressed through the batch APIs in [`hash`]: the SHA-256 engine
//! starts all [`sha256::LANES`] lanes from the one precomputed `pk_seed`
//! state and runs the compression rounds in lockstep, and the SHAKE-256
//! engine advances [`keccak::LANES`] sponges per permutation — the CPU
//! shape of the paper's warp batching and of its Table 10 AVX2 baseline.
//! Batched and scalar APIs are byte-identical by construction and by
//! proptest.
//!
//! ## Quickstart
//!
//! This crate is the *substrate*: validated parameters, keygen, the
//! reference signer, and wire-format round-trips. Higher layers build on
//! it — the `hero-sign` crate wraps this signer as the
//! `ReferenceSigner` backend of its `Signer` trait, next to the
//! GPU-modeled `HeroSigner` engine.
//!
//! ```
//! use hero_sphincs::{params::Params, sign, Signature};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), hero_sphincs::sign::SignError> {
//! // A reduced parameter set keeps doc tests fast; production use would
//! // pick Params::sphincs_128f() etc. Custom shapes must validate.
//! let mut params = Params::sphincs_128f();
//! params.h = 6;
//! params.d = 3;
//! params.log_t = 4;
//! params.k = 8;
//! params.validate().map_err(hero_sphincs::sign::SignError::InvalidParams)?;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let (sk, vk) = sign::keygen(params, &mut rng)?;
//! let sig = sk.sign(b"attack at dawn");
//! vk.verify(b"attack at dawn", &sig)?;
//!
//! // Signatures round-trip through the fixed-size wire format.
//! let parsed = Signature::from_bytes(&params, &sig.to_bytes(&params))?;
//! assert_eq!(parsed, sig);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod address;
pub mod fors;
pub mod hash;
pub mod hypertree;
pub mod keccak;
pub mod merkle;
pub mod params;
pub mod sha256;
pub mod sha512;
pub mod sign;
pub mod tier;
pub mod wots;

pub use hash::HashAlg;
pub use params::Params;
pub use sign::{
    keygen, keygen_from_seeds, keygen_from_seeds_with_alg, keygen_with_alg, Signature, SigningKey,
    VerifyingKey,
};
