//! # hero-sphincs
//!
//! A from-scratch implementation of the SPHINCS+ stateless hash-based
//! signature scheme (SHA-256 *simple* instantiation), serving as the
//! reference substrate and correctness oracle for the
//! [HERO-Sign](https://arxiv.org/abs/2512.23969) GPU reproduction.
//!
//! The crate exposes every layer the paper parallelizes:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 with an exposed compression function
//!   and resumable chaining state (the kernels' constant-memory seed state).
//! * [`params`] — Table I parameter sets.
//! * [`address`] — the ADRS hash-addressing scheme.
//! * [`hash`] — the tweakable hashes `F`, `H`, `T_l`, `PRF`, `PRF_msg`,
//!   `H_msg`.
//! * [`wots`] — WOTS+ chains (chain-level parallelism).
//! * [`fors`] — the forest of random subsets (tree-level parallelism,
//!   the target of HERO-Sign's FORS Fusion).
//! * [`merkle`] — tree hashing with authentication paths (the reduction
//!   of Fig. 7).
//! * [`hypertree`] — the `d`-layer hypertree (`TREE_Sign`'s workload).
//! * [`sign`] — keygen / sign / verify.
//!
//! ## Quick example
//!
//! ```
//! use hero_sphincs::{params::Params, sign};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), hero_sphincs::sign::SignError> {
//! // A reduced parameter set keeps doc tests fast; production use would
//! // pick Params::sphincs_128f() etc.
//! let mut params = Params::sphincs_128f();
//! params.h = 6;
//! params.d = 3;
//! params.log_t = 4;
//! params.k = 8;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let (sk, vk) = sign::keygen(params, &mut rng)?;
//! let sig = sk.sign(b"attack at dawn");
//! vk.verify(b"attack at dawn", &sig)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod address;
pub mod fors;
pub mod hash;
pub mod hypertree;
pub mod merkle;
pub mod params;
pub mod sha256;
pub mod sha512;
pub mod sign;
pub mod wots;

pub use hash::HashAlg;
pub use params::Params;
pub use sign::{
    keygen, keygen_from_seeds, keygen_from_seeds_with_alg, keygen_with_alg, Signature,
    SigningKey, VerifyingKey,
};
