//! Adversarial verification suite: region-targeted bit flips and bulk
//! verdict-agreement checks for the lane-batched verify path.
//!
//! Two properties, each across parameter shapes × hash algorithms:
//!
//! 1. **Every region rejects** — flipping one bit anywhere in a valid
//!    signature (randomizer, any FORS secret element, any FORS auth
//!    node, any WOTS+ chain at any layer, any XMSS auth node at any
//!    layer) must make scalar [`VerifyingKey::verify`] *and* the
//!    lane-batched [`VerifyingKey::verify_many`] reject it.
//! 2. **Bit-for-bit agreement** — over ten thousand random
//!    valid/mismatched/tampered `(message, signature)` mixes, the
//!    batched verdicts equal the scalar verdicts exactly (same
//!    `Result`, same typed error).
//!
//! [`VerifyingKey::verify`]: hero_sphincs::sign::VerifyingKey::verify
//! [`VerifyingKey::verify_many`]: hero_sphincs::sign::VerifyingKey::verify_many

use hero_sphincs::hash::HashAlg;
use hero_sphincs::params::Params;
use hero_sphincs::sign::{SignError, Signature, SigningKey, VerifyingKey};

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Reduced shapes spanning the three security sizes (n = 16 / 24 / 32)
/// with distinct tree geometry, so region offsets differ per shape.
fn shapes() -> Vec<(&'static str, Params)> {
    let mut tiny_128 = Params::sphincs_128f();
    tiny_128.h = 6;
    tiny_128.d = 3;
    tiny_128.log_t = 4;
    tiny_128.k = 8;
    let mut tiny_192 = Params::sphincs_192f();
    tiny_192.h = 4;
    tiny_192.d = 2;
    tiny_192.log_t = 3;
    tiny_192.k = 6;
    let mut tiny_256 = Params::sphincs_256f();
    tiny_256.h = 6;
    tiny_256.d = 2;
    tiny_256.log_t = 4;
    tiny_256.k = 5;
    vec![
        ("tiny-128", tiny_128),
        ("tiny-192", tiny_192),
        ("tiny-256", tiny_256),
    ]
}

const ALGS: [HashAlg; 2] = [HashAlg::Sha256, HashAlg::Shake256];

fn keypair(params: Params, alg: HashAlg, seed: u8) -> (SigningKey, VerifyingKey) {
    hero_sphincs::keygen_from_seeds_with_alg(
        params,
        alg,
        vec![seed; params.n],
        vec![seed.wrapping_add(1); params.n],
        vec![seed.wrapping_add(2); params.n],
    )
}

/// Uniform-enough draw in `0..n` (the vendored `rand` only exposes
/// `RngCore`; modulo bias is irrelevant for picking tamper positions).
fn below(rng: &mut StdRng, n: usize) -> usize {
    (rng.next_u64() % n as u64) as usize
}

/// Flips one pseudo-random bit of `bytes`.
fn flip_random_bit(bytes: &mut [u8], rng: &mut StdRng) {
    let byte = below(rng, bytes.len());
    let bit = below(rng, 8);
    bytes[byte] ^= 1 << bit;
}

/// One tampered copy of `sig` per region of the signature, labeled.
fn tampered_per_region(
    sig: &Signature,
    params: &Params,
    rng: &mut StdRng,
) -> Vec<(String, Signature)> {
    let mut out = Vec::new();

    let mut s = sig.clone();
    flip_random_bit(&mut s.randomizer, rng);
    out.push(("randomizer".to_string(), s));

    for t in 0..params.k {
        let mut s = sig.clone();
        flip_random_bit(&mut s.fors.trees[t].sk, rng);
        out.push((format!("fors[{t}].sk"), s));

        let mut s = sig.clone();
        let node = below(rng, sig.fors.trees[t].auth_path.len());
        flip_random_bit(&mut s.fors.trees[t].auth_path[node], rng);
        out.push((format!("fors[{t}].auth[{node}]"), s));
    }

    for layer in 0..params.d {
        for chain in 0..sig.ht.layers[layer].wots_sig.len() {
            let mut s = sig.clone();
            flip_random_bit(&mut s.ht.layers[layer].wots_sig[chain], rng);
            out.push((format!("ht[{layer}].wots[{chain}]"), s));
        }
        for node in 0..sig.ht.layers[layer].auth_path.len() {
            let mut s = sig.clone();
            flip_random_bit(&mut s.ht.layers[layer].auth_path[node], rng);
            out.push((format!("ht[{layer}].auth[{node}]"), s));
        }
    }
    out
}

#[test]
fn every_region_bit_flip_rejects_scalar_and_batched() {
    for (name, params) in shapes() {
        for alg in ALGS {
            let mut rng = StdRng::seed_from_u64(0xADE5A1 ^ params.n as u64 ^ alg as u64);
            let (sk, vk) = keypair(params, alg, 40 + params.n as u8);
            let msg = format!("adversarial fixture {name} {alg:?}").into_bytes();
            let sig = sk.sign(&msg);
            vk.verify(&msg, &sig).expect("untampered fixture verifies");

            let tampered = tampered_per_region(&sig, &params, &mut rng);
            // Scalar: every region flip must reject.
            for (region, s) in &tampered {
                assert_eq!(
                    vk.verify(&msg, s),
                    Err(SignError::VerificationFailed),
                    "{name}/{alg:?}: flip in {region} survived scalar verify"
                );
            }
            // Lane-batched: the whole tampered set (plus the valid
            // original interleaved at both ends) in one call, verdicts
            // identical to scalar.
            let mut batch: Vec<&Signature> = vec![&sig];
            batch.extend(tampered.iter().map(|(_, s)| s));
            batch.push(&sig);
            let msgs: Vec<&[u8]> = vec![msg.as_slice(); batch.len()];
            let verdicts = vk.verify_many(&msgs, &batch);
            assert_eq!(verdicts[0], Ok(()), "{name}/{alg:?}: leading valid");
            assert_eq!(
                verdicts[batch.len() - 1],
                Ok(()),
                "{name}/{alg:?}: trailing valid"
            );
            for (i, (region, _)) in tampered.iter().enumerate() {
                assert_eq!(
                    verdicts[i + 1],
                    Err(SignError::VerificationFailed),
                    "{name}/{alg:?}: flip in {region} survived batched verify"
                );
            }
        }
    }
}

/// Shared body for the mix tests: `mixes` random valid / mismatched /
/// bit-flipped pairs, batched verdicts equal scalar verdicts exactly.
fn random_mixes_agree(mixes: usize) {
    const FIXTURES: usize = 8;

    // One shape per run keeps this under test-suite time budgets while
    // the region test above covers the full shape × alg matrix.
    let mut params = Params::sphincs_128f();
    params.h = 6;
    params.d = 3;
    params.log_t = 4;
    params.k = 8;

    for alg in ALGS {
        let mut rng = StdRng::seed_from_u64(0x10_000 ^ alg as u64);
        let (sk, vk) = keypair(params, alg, 77);
        let fixtures: Vec<(Vec<u8>, Signature)> = (0..FIXTURES)
            .map(|i| {
                let msg = format!("mix fixture {i}").into_bytes();
                let sig = sk.sign(&msg);
                (msg, sig)
            })
            .collect();

        // Random mixes: valid pairs, mismatched (signature of another
        // message), and bit-flipped signatures — all structurally sound,
        // so every verdict is Ok or VerificationFailed, never Malformed.
        let mut msgs: Vec<&[u8]> = Vec::with_capacity(mixes);
        let mut sigs: Vec<Signature> = Vec::with_capacity(mixes);
        for _ in 0..mixes {
            let m = below(&mut rng, FIXTURES);
            match below(&mut rng, 3) {
                0 => {
                    msgs.push(&fixtures[m].0);
                    sigs.push(fixtures[m].1.clone());
                }
                1 => {
                    let other = (m + 1 + below(&mut rng, FIXTURES - 1)) % FIXTURES;
                    msgs.push(&fixtures[m].0);
                    sigs.push(fixtures[other].1.clone());
                }
                _ => {
                    let mut s = fixtures[m].1.clone();
                    let mut bytes = s.to_bytes(&params);
                    flip_random_bit(&mut bytes, &mut rng);
                    s = Signature::from_bytes(&params, &bytes).unwrap();
                    msgs.push(&fixtures[m].0);
                    sigs.push(s);
                }
            }
        }

        let sig_refs: Vec<&Signature> = sigs.iter().collect();
        let batched = vk.verify_many(&msgs, &sig_refs);
        assert_eq!(batched.len(), mixes);
        let mut valid = 0usize;
        for i in 0..mixes {
            let scalar = vk.verify(msgs[i], &sigs[i]);
            assert_eq!(
                batched[i], scalar,
                "{alg:?}: mix {i} diverged between batched and scalar"
            );
            if scalar.is_ok() {
                valid += 1;
            }
        }
        // Sanity: the mix really was mixed.
        assert!(valid > mixes / 10, "{alg:?}: too few valid mixes ({valid})");
        assert!(
            valid < mixes * 9 / 10,
            "{alg:?}: too few tampered mixes ({})",
            mixes - valid
        );
        let _ = rng.next_u32();
    }
}

#[test]
fn thousand_random_mix_sample_agrees_bit_for_bit() {
    random_mixes_agree(1_000);
}

#[test]
#[ignore = "ten thousand mixes take minutes in debug; run with --release -- --ignored"]
fn ten_thousand_random_mixes_agree_bit_for_bit() {
    random_mixes_agree(10_000);
}
