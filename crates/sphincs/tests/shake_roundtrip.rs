//! Keygen/sign/verify round-trips for the SPHINCS+-SHAKE parameter
//! family.
//!
//! The default test runs every `shake_*` shape at a reduced height
//! (keeping each shape's `n` and `w`, the dimensions the hash layer
//! actually sees) so the whole matrix stays test-speed; the `--ignored`
//! companion runs the six shapes at full size for release validation:
//!
//! ```text
//! cargo test --release -p hero-sphincs --test shake_roundtrip -- --ignored
//! ```

use hero_sphincs::hash::HashAlg;
use hero_sphincs::params::Params;
use hero_sphincs::sign::keygen_from_seeds_with_alg;
use hero_sphincs::Signature;

/// Shrinks a shape to test-speed while preserving `n` and `w` (and the
/// `d | h` invariant).
fn reduced(mut p: Params) -> Params {
    p.h = 6;
    p.d = 3;
    p.log_t = 4;
    p.k = 8;
    p.validate().expect("reduced shape validates");
    p
}

fn roundtrip(params: Params, label: &str) {
    let n = params.n;
    let (sk, vk) = keygen_from_seeds_with_alg(
        params,
        HashAlg::Shake256,
        (0..n as u8).collect(),
        (50..50 + n as u8).collect(),
        (100..100 + n as u8).collect(),
    );
    assert_eq!(sk.alg(), HashAlg::Shake256, "{label}");
    let msg = format!("shake round trip: {label}").into_bytes();
    let sig = sk.sign(&msg);
    vk.verify(&msg, &sig)
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    assert!(vk.verify(b"other message", &sig).is_err(), "{label}");

    // Wire format round-trips at the shape's published size.
    let bytes = sig.to_bytes(&params);
    assert_eq!(bytes.len(), params.sig_bytes(), "{label}");
    let parsed = Signature::from_bytes(&params, &bytes).unwrap();
    vk.verify(&msg, &parsed).unwrap();
}

#[test]
fn all_six_shake_shapes_roundtrip_reduced() {
    for p in Params::shake_sets() {
        roundtrip(reduced(p), p.name());
    }
}

#[test]
#[ignore = "full shapes take minutes in debug; run with --release -- --ignored"]
fn all_six_shake_shapes_roundtrip_full() {
    for p in Params::shake_sets() {
        roundtrip(p, p.name());
    }
}

#[test]
fn shake_shapes_prefer_shake256() {
    for p in Params::shake_sets() {
        assert_eq!(p.preferred_alg(), HashAlg::Shake256, "{}", p.name());
        p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name()));
    }
    for p in Params::all_sets() {
        assert_eq!(p.preferred_alg(), HashAlg::Sha256, "{}", p.name());
    }
}

#[test]
fn shake_shapes_match_sha_shape_sizes() {
    // Signature/key sizes depend only on (n, h, d, log t, k, w): each
    // SHAKE shape mirrors its SHA twin exactly.
    for (shake, sha) in Params::shake_sets().iter().zip(Params::all_sets().iter()) {
        assert_eq!(shake.sig_bytes(), sha.sig_bytes(), "{}", shake.name());
        assert_eq!(shake.pk_bytes(), sha.pk_bytes());
        assert_eq!(shake.sk_bytes(), sha.sk_bytes());
        assert_eq!(shake.digest_bytes(), sha.digest_bytes());
        assert_ne!(shake.name(), sha.name());
    }
}
