//! Per-tier byte-identity suite for the ISA ladder.
//!
//! The dispatch contract is that every tier — AVX2, SHA-NI, AVX-512,
//! NEON — produces bytes identical to the scalar reference on any host
//! that supports it; only throughput may differ. These tests enumerate
//! the tiers the host actually supports and drive each one three ways:
//!
//! 1. directly, through the `compress_x_with` / `permute_x_with` seams
//!    against the always-honored scalar tier (proptests over random
//!    states and blocks);
//! 2. end to end, by forcing the process-wide tier and replaying the
//!    SHA-256 / SHAKE-256 known-answer vectors plus hash-layer batches
//!    at every partial lane count (masked retirement);
//! 3. at full scheme scope, by re-running a pinned seed-era signature
//!    fixture under the forced scalar tier.
//!
//! Forcing the tier is process-global, but concurrent tests stay sound
//! precisely because of the property under test: all tiers are
//! byte-identical, so a racing force can change only which core runs,
//! never any asserted bytes.

use hero_sphincs::address::Address;
use hero_sphincs::hash::{HashAlg, HashCtx};
use hero_sphincs::keccak::{self, Shake256};
use hero_sphincs::params::Params;
use hero_sphincs::sha256::{self, Sha256};
use hero_sphincs::sign::keygen_from_seeds_with_alg;
use hero_sphincs::tier::{
    self, force_tier, restore_tier, supported_keccak_tiers, supported_sha256_tiers, HashTier,
};
use proptest::prelude::*;

/// Runs `body` with the process-wide tier forced to `tier`, restoring
/// the previous resolution afterwards even on panic.
fn with_forced_tier<R>(tier: HashTier, body: impl FnOnce() -> R) -> R {
    struct Restore((HashTier, HashTier));
    impl Drop for Restore {
        fn drop(&mut self) {
            restore_tier(self.0);
        }
    }
    let _guard = Restore(force_tier(tier));
    body()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every supported SHA-256 tier compresses 8 random lanes to the
    /// same bytes as the scalar reference.
    #[test]
    fn sha256_tiers_match_scalar(
        state_words in proptest::collection::vec(any::<u32>(), 64..65),
        blocks in proptest::collection::vec(any::<u8>(), 8 * 64..8 * 64 + 1),
    ) {
        let states: [[u32; 8]; 8] =
            std::array::from_fn(|l| std::array::from_fn(|w| state_words[l * 8 + w]));
        let block_refs: [&[u8; 64]; 8] =
            std::array::from_fn(|l| blocks[l * 64..(l + 1) * 64].try_into().unwrap());
        let mut reference = states;
        sha256::compress_x_with(HashTier::Scalar, &mut reference, &block_refs);
        for tier in supported_sha256_tiers() {
            let mut got = states;
            sha256::compress_x_with(tier, &mut got, &block_refs);
            prop_assert_eq!(got, reference, "sha256 tier {} diverged from scalar", tier.label());
        }
    }

    /// Every supported Keccak tier permutes 4 random lanes to the same
    /// bytes as the scalar reference — which itself must match the
    /// always-scalar single-state `keccak_f1600`.
    #[test]
    fn keccak_tiers_match_scalar(words in proptest::collection::vec(any::<u64>(), 100..101)) {
        let mut states = [[0u64; 4]; 25];
        for w in 0..25 {
            for l in 0..4 {
                states[w][l] = words[w * 4 + l];
            }
        }
        let mut reference = states;
        keccak::permute_x_with(HashTier::Scalar, &mut reference);
        // Cross-check the multi-lane scalar body against the scalar
        // single-state permutation, lane by lane.
        for l in 0..4 {
            let mut single: [u64; 25] = std::array::from_fn(|w| states[w][l]);
            keccak::keccak_f1600(&mut single);
            for w in 0..25 {
                prop_assert_eq!(single[w], reference[w][l]);
            }
        }
        for tier in supported_keccak_tiers() {
            let mut got = states;
            keccak::permute_x_with(tier, &mut got);
            prop_assert_eq!(got, reference, "keccak tier {} diverged from scalar", tier.label());
        }
    }

    /// Hash-layer batches stay byte-identical to the scalar one-at-a-time
    /// path under every supported tier, at every partial lane count —
    /// the masked-retirement shapes where unused lanes repeat work.
    #[test]
    fn batched_tweak_hashes_match_under_every_tier(
        seed in proptest::collection::vec(any::<u8>(), 16..17),
        count in 1usize..19,
    ) {
        for alg in [HashAlg::Sha256, HashAlg::Shake256] {
            let params = Params::sphincs_128f();
            let ctx = HashCtx::with_alg(params, &seed, alg);
            let n = params.n;
            let adrs: Vec<Address> = (0..count)
                .map(|i| {
                    let mut a = Address::new();
                    a.set_keypair(i as u32);
                    a
                })
                .collect();
            let msgs: Vec<u8> = (0..count * n).map(|i| (i % 251) as u8).collect();

            let mut scalar_out = vec![0u8; count * n];
            with_forced_tier(HashTier::Scalar, || {
                for i in 0..count {
                    ctx.f_into(&adrs[i], &msgs[i * n..(i + 1) * n], &mut scalar_out[i * n..(i + 1) * n]);
                }
            });

            let tiers = match alg {
                HashAlg::Shake256 => supported_keccak_tiers(),
                _ => supported_sha256_tiers(),
            };
            for tier in tiers {
                let mut out = vec![0u8; count * n];
                with_forced_tier(tier, || ctx.f_many(&adrs, &msgs, &mut out));
                prop_assert_eq!(
                    &out,
                    &scalar_out,
                    "{:?} f_many under tier {} diverged at count {}",
                    alg,
                    tier.label(),
                    count
                );
            }
        }
    }
}

/// FIPS 180-4 / FIPS 202 known-answer vectors replayed under every
/// supported tier forced process-wide: the dispatched scalar paths
/// (`compress`, sponge absorption) must keep producing the published
/// digests no matter which rung is active.
#[test]
fn kats_replay_under_every_forced_tier() {
    let mut tiers = supported_sha256_tiers();
    tiers.extend(supported_keccak_tiers());
    tiers.sort_by_key(|t| t.label());
    tiers.dedup();
    for tier in tiers {
        with_forced_tier(tier, || {
            // SHA-256 "abc" (FIPS 180-4 appendix B.1).
            assert_eq!(
                hex(&Sha256::digest(b"abc")),
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
                "sha256 KAT failed under forced tier {}",
                tier.label()
            );
            // SHA-256 two-block message (FIPS 180-4 appendix B.2).
            assert_eq!(
                hex(&Sha256::digest(
                    b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
                )),
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
                "sha256 two-block KAT failed under forced tier {}",
                tier.label()
            );
            // SHAKE-256 empty message, 32-byte output (FIPS 202 test vector).
            assert_eq!(
                hex(&Shake256::digest(b"", 32)),
                "46b9dd2b0ba88d13233b3feb743eeb243fcd52ea62b81b82b50c27646ed5762f",
                "shake256 empty KAT failed under forced tier {}",
                tier.label()
            );
            // SHAKE-256 "abc", 32-byte output.
            assert_eq!(
                hex(&Shake256::digest(b"abc", 32)),
                "483366601360a8771c6863080cc4114d8db44530f8f1e1ee4f94ea37e78b5739",
                "shake256 abc KAT failed under forced tier {}",
                tier.label()
            );
        });
    }
}

/// The seed-era pinned signature stays byte-identical when the whole
/// scheme runs on the forced scalar tier — the fixture the
/// `HERO_HASH_TIER=scalar` CI leg re-checks across the full suite.
#[test]
fn pinned_signature_fixture_replays_under_forced_scalar() {
    with_forced_tier(HashTier::Scalar, || {
        let mut params = Params::sphincs_128f();
        params.h = 6;
        params.d = 3;
        params.log_t = 4;
        params.k = 8;
        let n = params.n;
        let (sk, vk) = keygen_from_seeds_with_alg(
            params,
            HashAlg::Sha256,
            (0..n as u8).collect(),
            (100..100 + n as u8).collect(),
            (200..200 + n as u8).collect(),
        );
        let msg = b"seed-era fixture message";
        let sig = sk.sign(msg);
        vk.verify(msg, &sig).expect("fixture signature verifies");
        assert_eq!(
            hex(&Sha256::digest(&vk.to_bytes())),
            "0bdcee59d0c5d3b53140a64e70398ea26008a399b6bcc163a2fa3a564be65fe3",
            "public key drifted under forced scalar tier"
        );
        assert_eq!(
            hex(&Sha256::digest(&sig.to_bytes(&params))),
            "27ddf7ae9592344331ddb61d129e0690c533cffccf348c940984865556cfd578",
            "signature bytes drifted under forced scalar tier"
        );
    });
}

/// Verify verdicts on the pinned fixture are identical under every
/// supported forced tier — for the valid signature, a mismatched
/// message, and a tampered signature, through both the scalar
/// [`verify`](hero_sphincs::sign::VerifyingKey::verify) path and the
/// lane-batched [`verify_many`](hero_sphincs::sign::VerifyingKey::verify_many)
/// path. A rung may only change throughput, never a verdict.
#[test]
fn verify_verdicts_identical_under_every_forced_tier() {
    use hero_sphincs::sign::SignError;

    let mut params = Params::sphincs_128f();
    params.h = 6;
    params.d = 3;
    params.log_t = 4;
    params.k = 8;
    let n = params.n;
    for alg in [HashAlg::Sha256, HashAlg::Shake256] {
        let (sk, vk) = keygen_from_seeds_with_alg(
            params,
            alg,
            (0..n as u8).collect(),
            (100..100 + n as u8).collect(),
            (200..200 + n as u8).collect(),
        );
        let msg = b"seed-era fixture message".as_slice();
        let sig = sk.sign(msg);
        let mut tampered = sig.clone();
        tampered.randomizer[0] ^= 1;
        let wrong_msg = b"a different fixture message".as_slice();

        let tiers = match alg {
            HashAlg::Shake256 => supported_keccak_tiers(),
            _ => supported_sha256_tiers(),
        };
        for tier in tiers {
            with_forced_tier(tier, || {
                assert_eq!(
                    vk.verify(msg, &sig),
                    Ok(()),
                    "{alg:?}: valid fixture rejected under forced tier {}",
                    tier.label()
                );
                assert_eq!(
                    vk.verify(wrong_msg, &sig),
                    Err(SignError::VerificationFailed),
                    "{alg:?}: mismatched message accepted under forced tier {}",
                    tier.label()
                );
                assert_eq!(
                    vk.verify(msg, &tampered),
                    Err(SignError::VerificationFailed),
                    "{alg:?}: tampered signature accepted under forced tier {}",
                    tier.label()
                );
                let verdicts = vk.verify_many(&[msg, wrong_msg, msg], &[&sig, &sig, &tampered]);
                assert_eq!(
                    verdicts,
                    vec![
                        Ok(()),
                        Err(SignError::VerificationFailed),
                        Err(SignError::VerificationFailed),
                    ],
                    "{alg:?}: batched verdicts diverged under forced tier {}",
                    tier.label()
                );
            });
        }
    }
}

/// The ladder resolution itself: the active tiers are drawn from the
/// supported sets, and `description` names both primitives.
#[test]
fn resolved_tiers_are_supported() {
    let sha = tier::sha256_tier();
    let keccak_t = tier::keccak_tier();
    assert!(
        supported_sha256_tiers().contains(&sha),
        "resolved sha256 tier {} not in supported set",
        sha.label()
    );
    assert!(
        supported_keccak_tiers().contains(&keccak_t),
        "resolved keccak tier {} not in supported set",
        keccak_t.label()
    );
    let desc = tier::description();
    assert!(
        desc.contains("sha256=") && desc.contains("keccak="),
        "{desc}"
    );
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
