//! Property-based tests over the cryptographic substrate: hashing,
//! encodings, Merkle trees, WOTS+ and full signatures.

use hero_sphincs::address::{Address, AddressType};
use hero_sphincs::hash::{HashAlg, HashCtx};
use hero_sphincs::merkle;
use hero_sphincs::params::Params;
use hero_sphincs::sha256::{self, Sha256};
use hero_sphincs::{fors, wots, Signature};
use proptest::prelude::*;

fn tiny_params() -> Params {
    let mut p = Params::sphincs_128f();
    p.h = 4;
    p.d = 2;
    p.log_t = 3;
    p.k = 4;
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512), split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn sha256_compression_count_formula(len in 0usize..2048) {
        prop_assert_eq!(
            sha256::compressions_for_len(len),
            (len + 9).div_ceil(64)
        );
    }

    #[test]
    fn mgf1_prefix_property(seed in proptest::collection::vec(any::<u8>(), 1..64), a in 1usize..200, b in 1usize..200) {
        let (short, long) = if a < b { (a, b) } else { (b, a) };
        let x = sha256::mgf1(&seed, short);
        let y = sha256::mgf1(&seed, long);
        prop_assert_eq!(&y[..short], &x[..]);
    }

    #[test]
    fn base_w_digits_in_range(msg in proptest::collection::vec(any::<u8>(), 16..64)) {
        let p = Params::sphincs_128f();
        let digits = wots::base_w(&p, &msg, 2 * msg.len().min(32));
        prop_assert!(digits.iter().all(|&d| d < p.w as u32));
    }

    #[test]
    fn wots_checksum_value_decreases_when_digits_grow(msg in proptest::collection::vec(any::<u8>(), 16..17), idx in 0usize..32) {
        // Raising any message digit strictly lowers the checksum *value*
        // (Σ w-1-dᵢ) — the WOTS+ one-time security argument: a forger who
        // advances a message chain must reverse a checksum chain.
        let p = Params::sphincs_128f();
        let digits = wots::base_w(&p, &msg, p.wots_len1());
        prop_assume!(digits[idx] < p.w as u32 - 1);
        let mut raised = digits.clone();
        raised[idx] += 1;
        // Reconstruct the checksum integers from the base-w digits.
        let value = |ds: &[u32]| ds.iter().fold(0u32, |acc, &d| (acc << p.log_w()) | d);
        let c0 = value(&wots::checksum(&p, &digits));
        let c1 = value(&wots::checksum(&p, &raised));
        prop_assert!(c1 < c0, "checksum value must shrink: {c0} -> {c1}");
    }

    #[test]
    fn address_compressed_is_injective_on_fields(
        layer in 0u32..8, tree in any::<u64>(), keypair in 0u32..512, height in 0u32..16, index in 0u32..65536
    ) {
        let mut a = Address::new();
        a.set_layer(layer);
        a.set_tree(tree);
        a.set_type(AddressType::Tree);
        a.set_tree_height(height);
        a.set_tree_index(index);
        a.set_keypair(keypair);

        let mut b = a;
        b.set_tree_index(index ^ 1);
        prop_assert_ne!(a.to_compressed_bytes(), b.to_compressed_bytes());
        let mut c = a;
        c.set_layer(layer + 1);
        prop_assert_ne!(a.to_compressed_bytes(), c.to_compressed_bytes());
    }

    #[test]
    fn merkle_roundtrip_random_leaves(height in 1usize..6, leaf_idx in 0u32..32, seed in any::<u64>()) {
        let leaf_idx = leaf_idx % (1 << height);
        let p = Params::sphincs_128f();
        let ctx = HashCtx::new(p, &seed.to_le_bytes().repeat(2));
        let adrs = Address::new();
        let leaf = |i: u32| {
            let mut v = vec![0u8; 16];
            v[..8].copy_from_slice(&(seed ^ i as u64).to_le_bytes());
            v
        };
        let out = merkle::treehash(&ctx, height, leaf_idx, &adrs, |i, slot: &mut [u8]| {
            slot.copy_from_slice(&leaf(i));
        });
        let rebuilt = merkle::root_from_auth_path(&ctx, &leaf(leaf_idx), leaf_idx, &out.auth_path, &adrs);
        prop_assert_eq!(rebuilt, out.root);
    }

    #[test]
    fn wots_sign_verify_random_messages(msg in proptest::collection::vec(any::<u8>(), 16..17), seed in any::<u64>()) {
        let p = Params::sphincs_128f();
        let ctx = HashCtx::new(p, &seed.to_le_bytes().repeat(2));
        let sk_seed = seed.to_be_bytes().repeat(2);
        let mut adrs = Address::new();
        adrs.set_keypair(3);
        let pk = wots::pk_gen(&ctx, &sk_seed, &adrs);
        let sig = wots::sign(&ctx, &msg, &sk_seed, &adrs);
        prop_assert_eq!(wots::pk_from_sig(&ctx, &sig, &msg, &adrs), pk);
    }

    #[test]
    fn fors_indices_cover_digest_bits(md in proptest::collection::vec(any::<u8>(), 25..26)) {
        let p = Params::sphincs_128f();
        let indices = fors::message_to_indices(&p, &md);
        prop_assert_eq!(indices.len(), p.k);
        prop_assert!(indices.iter().all(|&i| (i as usize) < p.t()));
        // Determinism + sensitivity: flipping the first bit changes index 0.
        let mut flipped = md.clone();
        flipped[0] ^= 0x80;
        let other = fors::message_to_indices(&p, &flipped);
        prop_assert_ne!(indices[0], other[0]);
    }

    #[test]
    fn signature_bytes_roundtrip_random_messages(msg in proptest::collection::vec(any::<u8>(), 0..128), alg_idx in 0usize..3, seed in any::<u64>()) {
        let p = tiny_params();
        let alg = [HashAlg::Sha256, HashAlg::Sha512, HashAlg::Shake256][alg_idx];
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::SeedableRng;
        let (sk, vk) = hero_sphincs::keygen_with_alg(p, alg, &mut rng).unwrap();
        let sig = sk.sign(&msg);
        let bytes = sig.to_bytes(&p);
        let parsed = Signature::from_bytes(&p, &bytes).unwrap();
        prop_assert_eq!(&parsed, &sig);
        prop_assert!(vk.verify(&msg, &parsed).is_ok());
    }

    #[test]
    fn batch_hash_apis_equal_scalar(
        param_idx in 0usize..4,
        alg_idx in 0usize..3,
        count in 1usize..25,
        seed in any::<u64>(),
    ) {
        // The multi-lane `*_many` APIs must be byte-identical to looping
        // the scalar single-call APIs, for every parameter set (128f /
        // 128s / 192f / 256f), all three hash algs (the SHA-256 and
        // SHAKE-256 lanes plus scalar SHA-512), and batch sizes that
        // are not lane multiples.
        let params = [
            Params::sphincs_128f(),
            Params::sphincs_128s(),
            Params::sphincs_192f(),
            Params::sphincs_256f(),
        ][param_idx];
        let alg = [HashAlg::Sha256, HashAlg::Sha512, HashAlg::Shake256][alg_idx];
        let n = params.n;
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pk_seed = vec![0u8; n];
        rng.fill_bytes(&mut pk_seed);
        let ctx = HashCtx::with_alg(params, &pk_seed, alg);

        let adrs: Vec<Address> = (0..count)
            .map(|_| {
                let mut a = Address::new();
                a.set_layer(rng.next_u32() % 8);
                a.set_tree(rng.next_u64());
                a.set_type(AddressType::ForsTree);
                a.set_keypair(rng.next_u32() % 512);
                a.set_tree_height(rng.next_u32() % 16);
                a.set_tree_index(rng.next_u32());
                a
            })
            .collect();
        let mut msgs = vec![0u8; count * n];
        rng.fill_bytes(&mut msgs);
        let mut pairs = vec![0u8; count * 2 * n];
        rng.fill_bytes(&mut pairs);
        let mut sk_seed = vec![0u8; n];
        rng.fill_bytes(&mut sk_seed);

        let mut out = vec![0u8; count * n];
        ctx.f_many(&adrs, &msgs, &mut out);
        for i in 0..count {
            prop_assert_eq!(&out[i * n..(i + 1) * n], &ctx.f(&adrs[i], &msgs[i * n..(i + 1) * n])[..]);
        }
        ctx.h_many(&adrs, &pairs, &mut out);
        for i in 0..count {
            let expected = ctx.h(
                &adrs[i],
                &pairs[2 * i * n..(2 * i + 1) * n],
                &pairs[(2 * i + 1) * n..(2 * i + 2) * n],
            );
            prop_assert_eq!(&out[i * n..(i + 1) * n], &expected[..]);
        }
        ctx.prf_many(&adrs, &sk_seed, &mut out);
        for i in 0..count {
            prop_assert_eq!(&out[i * n..(i + 1) * n], &ctx.prf(&adrs[i], &sk_seed)[..]);
        }
    }

    #[test]
    fn flat_treehash_equals_scalar_oracle(
        param_idx in 0usize..4,
        alg_idx in 0usize..3,
        height in 1usize..6,
        leaf_sel in any::<u32>(),
        tree_off in 0u32..8,
        seed in any::<u64>(),
    ) {
        // The flat-buffer batched treehash (root AND auth path) must be
        // byte-identical to the seed-era Vec<Vec<u8>> formulation with
        // per-node scalar `H` calls and cloned siblings.
        let params = [
            Params::sphincs_128f(),
            Params::sphincs_128s(),
            Params::sphincs_192f(),
            Params::sphincs_256f(),
        ][param_idx];
        let alg = [HashAlg::Sha256, HashAlg::Sha512, HashAlg::Shake256][alg_idx];
        let n = params.n;
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pk_seed = vec![0u8; n];
        rng.fill_bytes(&mut pk_seed);
        let ctx = HashCtx::with_alg(params, &pk_seed, alg);

        let num_leaves = 1usize << height;
        let leaf_idx = leaf_sel % num_leaves as u32;
        let leaf_offset = tree_off * num_leaves as u32;
        let mut leaves = vec![0u8; num_leaves * n];
        rng.fill_bytes(&mut leaves);
        let mut base = Address::new();
        base.set_tree(rng.next_u64());
        base.set_type(AddressType::Tree);

        // Scalar oracle.
        let mut level: Vec<Vec<u8>> =
            leaves.chunks_exact(n).map(<[u8]>::to_vec).collect();
        let mut idx = leaf_idx;
        let mut adrs = base;
        let mut oracle_path: Vec<Vec<u8>> = Vec::new();
        for level_height in 1..=height {
            oracle_path.push(level[(idx ^ 1) as usize].clone());
            adrs.set_tree_height(level_height as u32);
            let level_offset = leaf_offset >> level_height;
            level = (0..level.len() / 2)
                .map(|i| {
                    adrs.set_tree_index(level_offset + i as u32);
                    ctx.h(&adrs, &level[2 * i], &level[2 * i + 1])
                })
                .collect();
            idx >>= 1;
        }

        let out = merkle::treehash_flat(&ctx, height, leaf_idx, &base, leaf_offset, |buf| {
            buf.copy_from_slice(&leaves);
        });
        prop_assert_eq!(&out.root, &level[0]);
        prop_assert_eq!(&out.auth_path, &oracle_path);
    }

    #[test]
    fn tampering_any_byte_breaks_verification(pos_frac in 0.0f64..1.0, seed in any::<u64>()) {
        let p = tiny_params();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (sk, vk) = hero_sphincs::keygen(p, &mut rng).unwrap();
        let msg = b"property tamper";
        let mut bytes = sk.sign(msg).to_bytes(&p);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 0x01;
        let parsed = Signature::from_bytes(&p, &bytes).unwrap();
        prop_assert!(vk.verify(msg, &parsed).is_err(), "flip at {} survived", pos);
    }
}
