//! Seed-era signature fixtures.
//!
//! These digests were captured from the pre-batching scalar
//! implementation; any refactor of the hashing hot path must keep
//! signatures byte-identical. A deterministic key (fixed seeds) signs a
//! fixed message, and the SHA-256 of the serialized signature is pinned.

use hero_sphincs::hash::HashAlg;
use hero_sphincs::params::Params;
use hero_sphincs::sha256::Sha256;
use hero_sphincs::sign::keygen_from_seeds_with_alg;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Reduced parameters keep full signing test-speed while exercising every
/// component (FORS, hypertree, WOTS+).
fn tiny_params() -> Params {
    let mut p = Params::sphincs_128f();
    p.h = 6;
    p.d = 3;
    p.log_t = 4;
    p.k = 8;
    p
}

/// A 192-bit reduced set: n=24 exercises the two-compression `H` path.
fn tiny_params_192() -> Params {
    let mut p = Params::sphincs_192f();
    p.h = 6;
    p.d = 3;
    p.log_t = 4;
    p.k = 8;
    p
}

/// A 256-bit reduced set: n=32 (largest block occupancy).
fn tiny_params_256() -> Params {
    let mut p = Params::sphincs_256f();
    p.h = 6;
    p.d = 3;
    p.log_t = 4;
    p.k = 8;
    p
}

fn signature_digest(params: Params, alg: HashAlg) -> (String, String) {
    let n = params.n;
    let (sk, vk) = keygen_from_seeds_with_alg(
        params,
        alg,
        (0..n as u8).collect(),
        (100..100 + n as u8).collect(),
        (200..200 + n as u8).collect(),
    );
    let msg = b"seed-era fixture message";
    let sig = sk.sign(msg);
    vk.verify(msg, &sig).expect("fixture signature verifies");
    (
        hex(&Sha256::digest(&vk.to_bytes())),
        hex(&Sha256::digest(&sig.to_bytes(&params))),
    )
}

/// The reduced SPHINCS+-SHAKE-128f shape (same reduction as
/// [`tiny_params`], SHAKE name).
fn tiny_params_shake() -> Params {
    let mut p = Params::shake_128f();
    p.h = 6;
    p.d = 3;
    p.log_t = 4;
    p.k = 8;
    p
}

#[test]
fn seed_era_signatures_are_stable() {
    let cases: [(&str, Params, HashAlg, &str, &str); 5] = [
        (
            "tiny-128/sha256",
            tiny_params(),
            HashAlg::Sha256,
            "0bdcee59d0c5d3b53140a64e70398ea26008a399b6bcc163a2fa3a564be65fe3",
            "27ddf7ae9592344331ddb61d129e0690c533cffccf348c940984865556cfd578",
        ),
        (
            "tiny-192/sha256",
            tiny_params_192(),
            HashAlg::Sha256,
            "0b8285523b0490eb4e274cb21f202441371f584910332e4c461ec9d4ad5b8a8f",
            "98969ee70ac94d74bbcfe3b2c1bfbd22a8a79159cf8c6ec2b5e2d85941701afc",
        ),
        (
            "tiny-256/sha256",
            tiny_params_256(),
            HashAlg::Sha256,
            "eb77a8ed7e2c0349fa89cd2fd990477573d2700718287a83a204bcf1e329a007",
            "28482bbf1e61dc01c687768b478dfd885ed07b62d21d10dab2f3dc67d106c7e3",
        ),
        (
            "tiny-128/sha512",
            tiny_params(),
            HashAlg::Sha512,
            "015cc8af94dea0bba71df62d34ac393a142901a5cffe394c03997f0c956df71f",
            "39bde7badd3751737b6c128f1029fc37e32f79356f842bff614761ca5a9cb670",
        ),
        // Captured from the first SHAKE-capable implementation (whose
        // thash construction is itself pinned against independent FIPS
        // 202 vectors in `hash::tests::shake256_tweak_pins_spec_construction`);
        // later refactors must keep SHAKE signatures byte-identical too.
        (
            "tiny-shake-128/shake256",
            tiny_params_shake(),
            HashAlg::Shake256,
            "5b958c8b2c97dc50b3eea35b40d334d21dbe76e6ca605361a1a12d3758690122",
            "df22ddd9cffb3c00debb51c0f42cab892305001a392a9b6ffb09ddc7ed63b43c",
        ),
    ];
    for (label, params, alg, pk_expected, sig_expected) in cases {
        let (pk, sig) = signature_digest(params, alg);
        assert_eq!(pk, pk_expected, "{label}: public key drifted");
        assert_eq!(sig, sig_expected, "{label}: signature bytes drifted");
    }
}
