//! Warp-occupancy model (Equation 1 of the paper).
//!
//! Occupancy is the ratio of resident warps to the SM's maximum; it is
//! bounded by whichever resource runs out first — warp slots, the register
//! file, or shared memory. Low occupancy starves the SM of latency-hiding
//! parallelism, which is why the PTX branch's register savings translate
//! into throughput (§III-C2).

use crate::device::DeviceProps;

/// Resource requirements of one thread block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockResources {
    /// Threads per block (`T_block`).
    pub threads: u32,
    /// Registers per thread (`R_thread`).
    pub regs_per_thread: u32,
    /// Shared memory per block, bytes.
    pub smem_bytes: u32,
}

/// Which resource capped occupancy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Limiter {
    /// Warp-slot or block-slot limit.
    Warps,
    /// Register file exhausted.
    Registers,
    /// Shared memory exhausted.
    SharedMemory,
    /// The block itself is invalid on this device (never resident).
    Invalid,
}

/// Occupancy analysis for one kernel configuration on one device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Occupancy {
    /// Blocks resident per SM.
    pub blocks_per_sm: u32,
    /// Warps resident per SM.
    pub warps_per_sm: u32,
    /// `warps_per_sm / max_warps_per_sm` in [0, 1].
    pub ratio: f64,
    /// The binding resource.
    pub limiter: Limiter,
}

/// Computes achievable occupancy for `block` on `device`.
///
/// Follows the CUDA occupancy calculation: blocks/SM is the minimum of the
/// warp-slot, block-slot, register and shared-memory limits; register
/// allocation is per-thread × threads, rounded as a whole block.
pub fn occupancy(device: &DeviceProps, block: &BlockResources) -> Occupancy {
    if block.threads == 0
        || block.threads > device.max_threads_per_block
        || block.regs_per_thread > device.max_registers_per_thread
        || block.smem_bytes > device.smem_dynamic_max_per_block
    {
        return Occupancy {
            blocks_per_sm: 0,
            warps_per_sm: 0,
            ratio: 0.0,
            limiter: Limiter::Invalid,
        };
    }

    let warps_per_block = block.threads.div_ceil(32);

    let warp_limit = device.max_warps_per_sm / warps_per_block;
    let block_limit = device.max_blocks_per_sm;
    let reg_per_block = block.regs_per_thread.max(1) * block.threads;
    let reg_limit = device.registers_per_sm / reg_per_block;
    let smem_limit = device
        .smem_per_sm
        .checked_div(block.smem_bytes)
        .unwrap_or(u32::MAX);

    let blocks = warp_limit.min(block_limit).min(reg_limit).min(smem_limit);
    if blocks == 0 {
        // One block may still run alone if it fits the absolute caps; the
        // CUDA runtime requires at least launchability, which we checked
        // above for smem; registers may still forbid residency.
        let limiter = if reg_limit == 0 {
            Limiter::Registers
        } else {
            Limiter::SharedMemory
        };
        return Occupancy {
            blocks_per_sm: 0,
            warps_per_sm: 0,
            ratio: 0.0,
            limiter,
        };
    }

    let limiter = if blocks == reg_limit && reg_limit < warp_limit.min(block_limit) {
        Limiter::Registers
    } else if blocks == smem_limit && smem_limit < warp_limit.min(block_limit) {
        Limiter::SharedMemory
    } else {
        Limiter::Warps
    };

    let warps = blocks * warps_per_block;
    let ratio = warps as f64 / device.max_warps_per_sm as f64;
    Occupancy {
        blocks_per_sm: blocks,
        warps_per_sm: warps,
        ratio,
        limiter,
    }
}

/// The paper's closed-form *theoretical occupancy* (Equation 1):
///
/// `(1/W_max) · floor(R_total / (R_thread · T_block)) · (T_block / 32)`
///
/// capped at 1. This ignores shared memory and block-slot limits, which is
/// exactly why Table III shows theoretical ≫ practical for `FORS_Sign`.
pub fn theoretical_occupancy(device: &DeviceProps, block: &BlockResources) -> f64 {
    let reg_blocks = device.registers_per_sm / (block.regs_per_thread.max(1) * block.threads);
    let warps = reg_blocks as f64 * (block.threads as f64 / 32.0);
    (warps / device.max_warps_per_sm as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::rtx_4090;

    #[test]
    fn full_occupancy_small_kernel() {
        let d = rtx_4090();
        let occ = occupancy(
            &d,
            &BlockResources {
                threads: 256,
                regs_per_thread: 32,
                smem_bytes: 0,
            },
        );
        // 48 warps max; 256 threads = 8 warps/block; warp-limit 6 blocks,
        // regs: 65536/(32*256)=8 blocks → warp-bound, full occupancy.
        assert_eq!(occ.warps_per_sm, 48);
        assert!((occ.ratio - 1.0).abs() < 1e-9);
        assert_eq!(occ.limiter, Limiter::Warps);
    }

    #[test]
    fn register_bound_kernel() {
        let d = rtx_4090();
        // 128 regs × 512 threads = 65536 → exactly 1 resident block where
        // warp slots would allow 3 → register-bound (TREE_Sign's regime,
        // Table III).
        let occ = occupancy(
            &d,
            &BlockResources {
                threads: 512,
                regs_per_thread: 128,
                smem_bytes: 0,
            },
        );
        assert_eq!(occ.blocks_per_sm, 1);
        assert!((occ.ratio - 16.0 / 48.0).abs() < 1e-9);
        assert_eq!(occ.limiter, Limiter::Registers);
    }

    #[test]
    fn smem_bound_kernel() {
        let d = rtx_4090();
        let occ = occupancy(
            &d,
            &BlockResources {
                threads: 128,
                regs_per_thread: 32,
                smem_bytes: 40 * 1024,
            },
        );
        // smem: 100K/40K = 2 blocks; warp limit would be 12.
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn table_iii_theoretical_occupancy_ordering() {
        // Table III (TCAS-SPHINCSp on RTX 4090, 128f) orders the kernels
        // FORS (66.67%) > WOTS+ (52.08%) > TREE (25%), driven entirely by
        // registers per thread (64 < 72 < 128). The closed form must
        // reproduce the FORS figure exactly and the ordering overall.
        let d = rtx_4090();
        let fors = BlockResources {
            threads: 1024,
            regs_per_thread: 64,
            smem_bytes: 0,
        };
        let t_fors = theoretical_occupancy(&d, &fors);
        assert!((t_fors - 2.0 / 3.0).abs() < 1e-3, "got {t_fors}");

        let tree = BlockResources {
            threads: 384,
            regs_per_thread: 128,
            smem_bytes: 0,
        };
        let t_tree = theoretical_occupancy(&d, &tree);
        assert!((t_tree - 0.25).abs() < 1e-6, "got {t_tree}");

        let wots = BlockResources {
            threads: 448,
            regs_per_thread: 72,
            smem_bytes: 0,
        };
        let t_wots = theoretical_occupancy(&d, &wots);
        assert!(t_wots > t_tree && t_wots < t_fors, "got {t_wots}");
    }

    #[test]
    fn invalid_configs_rejected() {
        let d = rtx_4090();
        assert_eq!(
            occupancy(
                &d,
                &BlockResources {
                    threads: 2048,
                    regs_per_thread: 32,
                    smem_bytes: 0
                }
            )
            .limiter,
            Limiter::Invalid
        );
        assert_eq!(
            occupancy(
                &d,
                &BlockResources {
                    threads: 0,
                    regs_per_thread: 32,
                    smem_bytes: 0
                }
            )
            .limiter,
            Limiter::Invalid
        );
        assert_eq!(
            occupancy(
                &d,
                &BlockResources {
                    threads: 64,
                    regs_per_thread: 32,
                    smem_bytes: 256 * 1024
                }
            )
            .limiter,
            Limiter::Invalid
        );
    }

    #[test]
    fn occupancy_monotone_in_registers() {
        let d = rtx_4090();
        let mut last = f64::INFINITY;
        for regs in [32u32, 48, 64, 96, 128, 168] {
            let occ = occupancy(
                &d,
                &BlockResources {
                    threads: 512,
                    regs_per_thread: regs,
                    smem_bytes: 0,
                },
            );
            assert!(occ.ratio <= last + 1e-12, "regs={regs}");
            last = occ.ratio;
        }
    }

    #[test]
    fn ptx_register_reduction_improves_occupancy_1_97x() {
        // §III-C2: 256f TREE_Sign, 168 → 95 regs lifts occupancy 19% → 37.5%
        // (≈1.97×). With 512-thread blocks: 168 regs → floor(65536/86016)=0…
        // The kernel uses __launch_bounds__; model with 256-thread blocks:
        // 168: floor(65536/43008)=1 block → 8 warps/48 = 16.7%;
        // 95: floor(65536/24320)=2 blocks → 16 warps/48 = 33.3% (2.0×).
        let d = rtx_4090();
        let native = occupancy(
            &d,
            &BlockResources {
                threads: 256,
                regs_per_thread: 168,
                smem_bytes: 0,
            },
        );
        let ptx = occupancy(
            &d,
            &BlockResources {
                threads: 256,
                regs_per_thread: 95,
                smem_bytes: 0,
            },
        );
        let gain = ptx.ratio / native.ratio;
        assert!(gain > 1.8 && gain < 2.2, "gain={gain}");
    }
}
