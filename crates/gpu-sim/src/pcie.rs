//! Host↔device PCIe transfer model (§IV-E1 of the paper).
//!
//! The paper's batch-size guidance is two-sided: "larger batch sizes
//! (≥512) are preferred [for throughput] *unless PCIe transfer becomes
//! the bottleneck*; to enable better overlap between host-device data
//! transfers and computation, a smaller batch size near 64 is optimal."
//! This module supplies the missing side: per-batch transfer costs and
//! the classic software-pipeline composition of H2D → compute → D2H with
//! dual copy engines.

use crate::device::DeviceProps;

/// Fixed per-transfer initiation latency (driver + DMA setup), µs.
pub const TRANSFER_LATENCY_US: f64 = 8.0;

/// One direction's transfer time for `bytes` on `device` (µs).
pub fn transfer_us(device: &DeviceProps, bytes: u64) -> f64 {
    TRANSFER_LATENCY_US + bytes as f64 / (device.pcie_bandwidth_gb_s * 1.0e9) * 1.0e6
}

/// Result of composing a batched pipeline with transfers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PipelinedTransfers {
    /// End-to-end makespan including transfers (µs).
    pub makespan_us: f64,
    /// Upload time of one batch (µs).
    pub h2d_batch_us: f64,
    /// Download time of one batch (µs).
    pub d2h_batch_us: f64,
    /// Whether transfers (not compute) bound the steady state.
    pub transfer_bound: bool,
}

/// Composes `batches` pipeline stages where each batch uploads
/// `h2d_bytes`, computes for `compute_us`, and downloads `d2h_bytes`,
/// with copies overlapping compute on dedicated copy engines:
///
/// ```text
/// makespan = h2d₁ + (batches−1)·max(compute, h2d, d2h) + compute_last + d2h_last
/// ```
pub fn pipeline_with_transfers(
    device: &DeviceProps,
    batches: u32,
    compute_us: f64,
    h2d_bytes: u64,
    d2h_bytes: u64,
) -> PipelinedTransfers {
    let h2d = transfer_us(device, h2d_bytes);
    let d2h = transfer_us(device, d2h_bytes);
    let steady = compute_us.max(h2d).max(d2h);
    let batches = batches.max(1) as f64;
    PipelinedTransfers {
        makespan_us: h2d + (batches - 1.0) * steady + compute_us + d2h,
        h2d_batch_us: h2d,
        d2h_batch_us: d2h,
        transfer_bound: steady > compute_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::rtx_4090;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let d = rtx_4090();
        let small = transfer_us(&d, 1 << 10);
        let large = transfer_us(&d, 1 << 30);
        assert!(large > small);
        // 1 GiB at 22 GB/s ≈ 48.8 ms.
        assert!((large - 48_806.0).abs() < 200.0, "{large}");
    }

    #[test]
    fn latency_floor_applies_to_tiny_transfers() {
        let d = rtx_4090();
        assert!(transfer_us(&d, 1) >= TRANSFER_LATENCY_US);
    }

    #[test]
    fn compute_bound_pipeline_hides_transfers() {
        // Compute dominates: makespan ≈ fill + N·compute + drain.
        let d = rtx_4090();
        let p = pipeline_with_transfers(&d, 16, 1_000.0, 1 << 20, 1 << 20);
        assert!(!p.transfer_bound);
        let expected = p.h2d_batch_us + 15.0 * 1_000.0 + 1_000.0 + p.d2h_batch_us;
        assert!((p.makespan_us - expected).abs() < 1e-6);
    }

    #[test]
    fn transfer_bound_pipeline_detected() {
        // 64 MiB per batch vs 100 µs of compute: PCIe binds.
        let d = rtx_4090();
        let p = pipeline_with_transfers(&d, 8, 100.0, 64 << 20, 64 << 20);
        assert!(p.transfer_bound);
        assert!(p.makespan_us > 8.0 * p.h2d_batch_us);
    }

    #[test]
    fn single_batch_has_no_overlap() {
        let d = rtx_4090();
        let p = pipeline_with_transfers(&d, 1, 500.0, 1 << 20, 1 << 20);
        assert!((p.makespan_us - (p.h2d_batch_us + 500.0 + p.d2h_batch_us)).abs() < 1e-9);
    }

    #[test]
    fn faster_links_shrink_transfer_time() {
        let slow = crate::device::gtx_1070(); // 12 GB/s
        let fast = crate::device::h100(); // 50 GB/s
        assert!(transfer_us(&fast, 1 << 24) < transfer_us(&slow, 1 << 24));
    }
}
