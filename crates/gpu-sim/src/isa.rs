//! Instruction classes and per-class issue costs.
//!
//! The paper's PTX tuning swaps specific instruction choices: `prmt`
//! byte-permutes replace multi-`shl` big-endian loads, and `mad` (with a
//! decoy operand) replaces `IADD3` chains (§III-C1, Fig. 5). The model
//! carries those classes explicitly so a kernel's cost is a function of
//! its instruction mix, exactly the lever the compile-time branch flips.

use std::ops::{Add, AddAssign};

/// Number of instruction classes.
pub const NUM_CLASSES: usize = 10;

/// Classes of SASS-level instructions the cost model distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum InstrClass {
    /// Generic single-issue ALU op (XOR, AND, LOP3, ADD).
    Alu = 0,
    /// Shift (`shl`/`shr`) — the native big-endian load building block.
    Shl = 1,
    /// Byte permute (`prmt`) — one instruction replacing several shifts.
    Prmt = 2,
    /// Multiply-add (`mad.lo.u32`) kept alive by the decoy operand.
    Mad = 3,
    /// Three-input add (`IADD3`) — what the compiler fuses adds into.
    Iadd3 = 4,
    /// Shared-memory load (`LDS`).
    Lds = 5,
    /// Shared-memory store (`STS`).
    Sts = 6,
    /// Global-memory load (`LDG`), cost amortized over coalescing.
    Ldg = 7,
    /// Constant-memory load (`LDC`), broadcast-friendly.
    Ldc = 8,
    /// Block-wide barrier (`BAR.SYNC` / `__syncthreads`).
    Sync = 9,
}

impl InstrClass {
    /// All classes, in discriminant order.
    pub const ALL: [InstrClass; NUM_CLASSES] = [
        InstrClass::Alu,
        InstrClass::Shl,
        InstrClass::Prmt,
        InstrClass::Mad,
        InstrClass::Iadd3,
        InstrClass::Lds,
        InstrClass::Sts,
        InstrClass::Ldg,
        InstrClass::Ldc,
        InstrClass::Sync,
    ];

    /// Issue cost in cycles per instruction per thread lane.
    ///
    /// Values reflect relative CUDA-core throughputs: shifts and simple
    /// ALU are full-rate; `prmt`/`mad` are half-rate on consumer parts
    /// (the paper notes `prmt` has *higher latency* than one `shl` but
    /// replaces several); memory ops carry their pipeline occupancy.
    pub const fn issue_cycles(self) -> f64 {
        match self {
            InstrClass::Alu => 1.0,
            InstrClass::Shl => 1.0,
            InstrClass::Prmt => 2.0,
            InstrClass::Mad => 2.0,
            InstrClass::Iadd3 => 1.0,
            InstrClass::Lds => 2.0,
            InstrClass::Sts => 2.0,
            InstrClass::Ldg => 8.0,
            InstrClass::Ldc => 1.5,
            InstrClass::Sync => 4.0,
        }
    }

    /// Dependent-issue latency in cycles (for critical-path accounting).
    pub const fn dep_latency_cycles(self) -> f64 {
        match self {
            InstrClass::Alu | InstrClass::Shl | InstrClass::Iadd3 => 4.0,
            InstrClass::Prmt | InstrClass::Mad => 6.0,
            InstrClass::Lds | InstrClass::Sts => 22.0,
            InstrClass::Ldg => 250.0,
            InstrClass::Ldc => 8.0,
            InstrClass::Sync => 30.0,
        }
    }
}

/// A histogram of instruction counts by class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InstrMix {
    counts: [u64; NUM_CLASSES],
}

impl InstrMix {
    /// Empty mix.
    pub const fn new() -> Self {
        Self {
            counts: [0; NUM_CLASSES],
        }
    }

    /// Adds `count` instructions of `class`.
    pub fn add_count(&mut self, class: InstrClass, count: u64) {
        self.counts[class as usize] += count;
    }

    /// Returns the mix with `count` instructions of `class` added
    /// (builder style).
    pub fn with(mut self, class: InstrClass, count: u64) -> Self {
        self.add_count(class, count);
        self
    }

    /// Count for one class.
    pub fn count(&self, class: InstrClass) -> u64 {
        self.counts[class as usize]
    }

    /// Total instructions across classes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Issue cost of the whole mix in lane-cycles.
    pub fn issue_cycles(&self) -> f64 {
        InstrClass::ALL
            .iter()
            .map(|&c| self.counts[c as usize] as f64 * c.issue_cycles())
            .sum()
    }

    /// Dependent-chain latency of the mix in cycles (treats the mix as one
    /// serial chain — callers pass per-thread critical paths).
    pub fn dep_latency_cycles(&self) -> f64 {
        InstrClass::ALL
            .iter()
            .map(|&c| self.counts[c as usize] as f64 * c.dep_latency_cycles())
            .sum()
    }

    /// Scales every count by `factor` (e.g. per-leaf mix × leaf count).
    pub fn scaled(&self, factor: u64) -> Self {
        let mut out = *self;
        for c in &mut out.counts {
            *c *= factor;
        }
        out
    }
}

impl Add for InstrMix {
    type Output = InstrMix;
    fn add(self, rhs: InstrMix) -> InstrMix {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for InstrMix {
    fn add_assign(&mut self, rhs: InstrMix) {
        for (a, b) in self.counts.iter_mut().zip(rhs.counts.iter()) {
            *a += *b;
        }
    }
}

/// Instruction mix of **one SHA-256 compression** under a given code path.
///
/// The counts are calibrated against typical SASS for a fully unrolled
/// SHA-256 round function: 48 schedule expansions (~10 ops each), 64
/// rounds (~16 ops each), plus the 16 big-endian word loads that the
/// native path lowers to shift/or sequences and the PTX path lowers to
/// one `prmt` per word (§III-C1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sha2Path {
    /// Compiler-scheduled C++ path.
    Native,
    /// Hand-tuned PTX path (`prmt` + decoyed `mad`).
    Ptx,
}

impl Sha2Path {
    /// Per-compression instruction mix.
    pub fn compression_mix(self) -> InstrMix {
        match self {
            Sha2Path::Native => InstrMix::new()
                // 16 big-endian loads × (3 shl + 3 or-ish ALU)
                .with(InstrClass::Shl, 16 * 3)
                .with(InstrClass::Alu, 16 * 3)
                // 48 schedule words × ~10 ops
                .with(InstrClass::Alu, 48 * 10)
                // 64 rounds × ~13 logic ops + 3-input adds
                .with(InstrClass::Alu, 64 * 13)
                .with(InstrClass::Iadd3, 64 * 3),
            Sha2Path::Ptx => InstrMix::new()
                // 16 big-endian loads × 1 prmt
                .with(InstrClass::Prmt, 16)
                // schedule + rounds logic unchanged
                .with(InstrClass::Alu, 48 * 10)
                .with(InstrClass::Alu, 64 * 13)
                // one decoyed mad per round folds two adds (Fig. 5)
                .with(InstrClass::Mad, 64),
        }
    }

    /// Issue cycles of one compression on this path.
    pub fn compression_cycles(self) -> f64 {
        self.compression_mix().issue_cycles()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_accumulates_and_totals() {
        let mut mix = InstrMix::new();
        mix.add_count(InstrClass::Alu, 10);
        mix.add_count(InstrClass::Shl, 5);
        mix.add_count(InstrClass::Alu, 2);
        assert_eq!(mix.count(InstrClass::Alu), 12);
        assert_eq!(mix.total(), 17);
    }

    #[test]
    fn issue_cycles_weighted() {
        let mix = InstrMix::new()
            .with(InstrClass::Prmt, 4)
            .with(InstrClass::Alu, 4);
        assert!((mix.issue_cycles() - (4.0 * 2.0 + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn add_and_scale() {
        let a = InstrMix::new().with(InstrClass::Lds, 3);
        let b = InstrMix::new()
            .with(InstrClass::Lds, 2)
            .with(InstrClass::Sts, 1);
        let sum = a + b;
        assert_eq!(sum.count(InstrClass::Lds), 5);
        assert_eq!(sum.scaled(10).count(InstrClass::Sts), 10);
    }

    #[test]
    fn ptx_compression_fewer_instructions() {
        // prmt replaces 6-op sequences: the PTX mix must have fewer total
        // instructions, and fewer issue cycles, than native.
        let native = Sha2Path::Native.compression_mix();
        let ptx = Sha2Path::Ptx.compression_mix();
        assert!(ptx.total() < native.total());
        assert!(Sha2Path::Ptx.compression_cycles() < Sha2Path::Native.compression_cycles());
        // …but not dramatically: the paper's per-kernel PTX step gains are
        // single-digit percent absent occupancy effects (Fig. 11: +PTX is
        // 1.04x on 128f).
        let ratio = Sha2Path::Native.compression_cycles() / Sha2Path::Ptx.compression_cycles();
        assert!(ratio > 1.0 && ratio < 1.15, "ratio={ratio}");
    }

    #[test]
    fn sync_is_costly_per_issue() {
        assert!(InstrClass::Sync.issue_cycles() > InstrClass::Alu.issue_cycles());
        assert!(InstrClass::Ldg.dep_latency_cycles() > InstrClass::Ldc.dep_latency_cycles());
    }
}
