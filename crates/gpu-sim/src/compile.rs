//! Compile-time cost model (§III-C3, Table XI).
//!
//! The paper observes that compile-time (`if constexpr`) branch selection
//! is *cheaper to compile* than the baseline: PTX inline-asm blocks shrink
//! the optimizer's search space more than template instantiation costs.
//! This module reproduces that trade-off with an explicit pass model:
//!
//! * a kernel body is a number of IR statements;
//! * optimization passes cost super-linearly in optimizable statements;
//! * `asm volatile` blocks are opaque: their statements are excluded from
//!   optimization (only register allocation sees them);
//! * a runtime branch compiles *both* paths into one kernel (bigger body);
//! * a compile-time branch instantiates a template per selected path but
//!   each instance contains a single path.

/// How SHA-2 path selection is expressed in source.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchStrategy {
    /// Baseline: native code only, no branch machinery.
    NativeOnly,
    /// Both paths compiled into each kernel, selected at runtime
    /// (the approach §III-C3 rejects).
    RuntimeBranch,
    /// `if constexpr` specialization: one path per kernel instance,
    /// small template-instantiation overhead (HERO-Sign).
    CompileTimeBranch,
}

/// One kernel's compilation workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelSource {
    /// IR statements of the native SHA-2 path (fully inlined, unrolled).
    pub native_stmts: u32,
    /// IR statements of the PTX path that remain optimizer-visible
    /// (glue code around the asm blocks).
    pub ptx_visible_stmts: u32,
    /// IR statements hidden inside `asm volatile` blocks.
    pub ptx_opaque_stmts: u32,
    /// Whether the compile-time selection resolves this kernel to the PTX
    /// path (per Table V).
    pub selects_ptx: bool,
}

/// Compilation-time model constants (arbitrary "pass units" mapped to
/// seconds with [`UNIT_SECONDS`]).
mod cost {
    /// Super-linear optimization exponent (inliner + scheduler).
    pub const OPT_EXPONENT: f64 = 1.18;
    /// Cost per optimizable statement (units).
    pub const OPT_UNIT: f64 = 1.0;
    /// Cost per opaque (asm) statement: only regalloc touches it.
    pub const OPAQUE_UNIT: f64 = 0.22;
    /// Fixed front-end cost per kernel instance.
    pub const INSTANCE_FIXED: f64 = 260.0;
    /// Extra fixed cost per template instantiation.
    pub const TEMPLATE_FIXED: f64 = 95.0;
}

/// Seconds per pass unit; calibrated so the baseline 128f build lands near
/// Table XI's 18.68 s.
pub const UNIT_SECONDS: f64 = 0.000_23;

fn opt_cost(stmts: f64) -> f64 {
    cost::OPT_UNIT * stmts.powf(cost::OPT_EXPONENT)
}

/// Compilation cost of one kernel under `strategy`, in pass units.
pub fn kernel_compile_units(src: &KernelSource, strategy: BranchStrategy) -> f64 {
    match strategy {
        BranchStrategy::NativeOnly => cost::INSTANCE_FIXED + opt_cost(src.native_stmts as f64),
        BranchStrategy::RuntimeBranch => {
            // One kernel containing both paths: the optimizer sees the
            // union, and cross-path analysis compounds the exponent.
            let visible = src.native_stmts as f64 + src.ptx_visible_stmts as f64;
            cost::INSTANCE_FIXED
                + opt_cost(visible)
                + cost::OPAQUE_UNIT * src.ptx_opaque_stmts as f64
        }
        BranchStrategy::CompileTimeBranch => {
            // One instantiated specialization, containing only the chosen
            // path (dead branch discarded before optimization).
            let (visible, opaque) = if src.selects_ptx {
                (src.ptx_visible_stmts as f64, src.ptx_opaque_stmts as f64)
            } else {
                (src.native_stmts as f64, 0.0)
            };
            cost::INSTANCE_FIXED
                + cost::TEMPLATE_FIXED
                + opt_cost(visible)
                + cost::OPAQUE_UNIT * opaque
        }
    }
}

/// Compilation time in seconds for a full build of `kernels`.
pub fn build_seconds(kernels: &[KernelSource], strategy: BranchStrategy) -> f64 {
    kernels
        .iter()
        .map(|k| kernel_compile_units(k, strategy))
        .sum::<f64>()
        * UNIT_SECONDS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<KernelSource> {
        vec![
            KernelSource {
                native_stmts: 5200,
                ptx_visible_stmts: 3400,
                ptx_opaque_stmts: 1400,
                selects_ptx: true,
            },
            KernelSource {
                native_stmts: 7400,
                ptx_visible_stmts: 4800,
                ptx_opaque_stmts: 1900,
                selects_ptx: false,
            },
            KernelSource {
                native_stmts: 3100,
                ptx_visible_stmts: 2100,
                ptx_opaque_stmts: 900,
                selects_ptx: false,
            },
        ]
    }

    #[test]
    fn compile_time_branch_cheaper_than_runtime() {
        let ks = sample();
        let rt = build_seconds(&ks, BranchStrategy::RuntimeBranch);
        let ct = build_seconds(&ks, BranchStrategy::CompileTimeBranch);
        assert!(
            ct < rt,
            "constexpr specialization must beat runtime branching"
        );
    }

    #[test]
    fn compile_time_branch_cheaper_than_native_when_ptx_selected() {
        // Table XI: HERO-Sign compiles *faster* than the baseline — the
        // PTX asm blocks shrink the optimizer's search space by more than
        // template instantiation adds.
        let ks = vec![KernelSource {
            native_stmts: 6000,
            ptx_visible_stmts: 3600,
            ptx_opaque_stmts: 1600,
            selects_ptx: true,
        }];
        let native = build_seconds(&ks, BranchStrategy::NativeOnly);
        let hero = build_seconds(&ks, BranchStrategy::CompileTimeBranch);
        assert!(hero < native, "hero={hero} native={native}");
        let speedup = native / hero;
        assert!(speedup > 1.0 && speedup < 2.0, "speedup={speedup}");
    }

    #[test]
    fn native_selection_costs_template_overhead_only() {
        // When a kernel keeps the native path, the compile-time strategy
        // pays only the small template fixed cost over baseline.
        let ks = vec![KernelSource {
            native_stmts: 6000,
            ptx_visible_stmts: 3600,
            ptx_opaque_stmts: 1600,
            selects_ptx: false,
        }];
        let native = build_seconds(&ks, BranchStrategy::NativeOnly);
        let hero = build_seconds(&ks, BranchStrategy::CompileTimeBranch);
        let overhead = hero - native;
        assert!(overhead > 0.0);
        assert!(
            overhead < native * 0.05,
            "template overhead must be small: {overhead}"
        );
    }

    #[test]
    fn opaque_statements_cheap() {
        let a = KernelSource {
            native_stmts: 0,
            ptx_visible_stmts: 1000,
            ptx_opaque_stmts: 0,
            selects_ptx: true,
        };
        let b = KernelSource {
            native_stmts: 0,
            ptx_visible_stmts: 0,
            ptx_opaque_stmts: 1000,
            selects_ptx: true,
        };
        let ca = kernel_compile_units(&a, BranchStrategy::CompileTimeBranch);
        let cb = kernel_compile_units(&b, BranchStrategy::CompileTimeBranch);
        assert!(
            cb < ca,
            "asm-opaque code must compile faster than visible code"
        );
    }

    #[test]
    fn build_time_positive_and_additive() {
        let ks = sample();
        let one = build_seconds(&ks[..1], BranchStrategy::NativeOnly);
        let all = build_seconds(&ks, BranchStrategy::NativeOnly);
        assert!(one > 0.0);
        assert!(all > one);
    }
}
