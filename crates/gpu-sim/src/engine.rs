//! Kernel timing engine.
//!
//! Converts a [`KernelDesc`] into execution time and Nsight-style metrics
//! on a given device. The model is a throughput/latency roofline:
//!
//! ```text
//! occupancy  = resource model (Eq. 1 + smem/block limits)
//! eff(occ)   = latency-hiding efficiency of the warp schedulers
//! compute    = Σ issue-cycles / (lanes · η · eff · clock)
//! smem       = (transactions + conflicts) · c_smem / (SMs · clock)
//! gmem       = bytes / bandwidth (placement-weighted contention)
//! sync       = barriers · c_bar · waves / clock
//! time       = max(compute, smem, gmem) + contention + sync
//! ```
//!
//! One constant ([`calib::ETA_IPC`]) anchors absolute scale; every relative
//! effect the paper measures (occupancy, fusion, PTX, memory placement,
//! bank conflicts, launch overhead) is emergent from the resource model.

use crate::device::DeviceProps;
use crate::kernel::{KernelDesc, RoDataPlacement};
use crate::occupancy::{occupancy, theoretical_occupancy, Occupancy};

/// Calibration constants for the timing model.
///
/// These are the only "fudge" values in the simulator; everything else is
/// published hardware data. Each is documented with its physical meaning
/// and how it was fixed.
pub mod calib {
    /// Sustained IPC fraction of a CUDA core on SHA-256-style dependent
    /// integer chains, at full latency hiding. SHA-256 rounds form a tight
    /// dependence graph (ILP ≈ 1.5 against a 4-cycle ALU latency), and
    /// real kernels add addressing/branch overhead the instruction census
    /// omits. Calibrated once so the baseline `FORS_Sign` on RTX 4090
    /// under SPHINCS+-128f lands near the paper's 442.9 KOPS.
    pub const ETA_IPC: f64 = 0.26;

    /// Instruction-level parallelism available inside one thread of a
    /// SHA-256 round function.
    pub const ILP: f64 = 1.5;

    /// Dependent-issue latency (cycles) of the core integer pipe.
    pub const DEP_LATENCY: f64 = 4.0;

    /// Warp schedulers per SM (4 on every modeled architecture).
    pub const SCHEDULERS_PER_SM: f64 = 4.0;

    /// Cycles one block-wide barrier costs (drain + reconverge).
    pub const BARRIER_CYCLES: f64 = 64.0;

    /// Cycles per shared-memory transaction phase, per SM.
    pub const SMEM_PHASE_CYCLES: f64 = 2.0;

    /// Fraction of global-memory time that shows up as added latency on
    /// top of compute (imperfect overlap) for scalar `ldg` access.
    pub const GMEM_CONTENTION_SCALAR: f64 = 0.60;

    /// Same, for vectorized `ldg.64/128` access (§III-D).
    pub const GMEM_CONTENTION_VEC: f64 = 0.25;

    /// Cycles per constant-memory broadcast read, per SM.
    pub const CMEM_READ_CYCLES: f64 = 0.25;

    /// Floor on scheduler efficiency (even one resident warp makes
    /// progress).
    pub const EFF_FLOOR: f64 = 0.04;
}

/// Timing + metrics for one simulated kernel launch.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelReport {
    /// Kernel name copied from the descriptor.
    pub name: String,
    /// Execution time, microseconds (excludes launch overhead).
    pub time_us: f64,
    /// Resource-model occupancy (Eq. 1 + smem), in [0, 1].
    pub resource_occupancy: Occupancy,
    /// Achieved warp occupancy: resource occupancy × active-thread
    /// fraction (the Nsight "Warp Occupancy" analogue of Table III).
    pub achieved_occupancy: f64,
    /// The paper's Eq. 1 closed-form theoretical occupancy.
    pub theoretical_occupancy: f64,
    /// % of peak issue slots used ("Compute Throughput" of Table VIII).
    pub compute_throughput_pct: f64,
    /// % of peak DRAM bandwidth used ("Memory Throughput" of Table VIII).
    pub memory_throughput_pct: f64,
    /// Scheduler latency-hiding efficiency used.
    pub scheduler_efficiency: f64,
    /// Breakdown: compute-bound component (µs).
    pub compute_us: f64,
    /// Breakdown: shared-memory component (µs).
    pub smem_us: f64,
    /// Breakdown: global-memory component (µs).
    pub gmem_us: f64,
    /// Breakdown: barrier component (µs).
    pub sync_us: f64,
    /// Breakdown: block-serial critical-path component (µs) — binds when
    /// work inside a block is phase-serialized (the unfused FORS regime of
    /// Fig. 3, where each `Set` waits for shared memory to free).
    pub latency_us: f64,
}

/// Latency-hiding efficiency of the warp schedulers at `achieved`
/// occupancy on `device`: how close to one instruction per cycle per lane
/// the SM sustains.
pub fn scheduler_efficiency(device: &DeviceProps, achieved_occupancy: f64) -> f64 {
    let warps_per_scheduler =
        device.max_warps_per_sm as f64 * achieved_occupancy / calib::SCHEDULERS_PER_SM;
    (warps_per_scheduler * calib::ILP / calib::DEP_LATENCY).clamp(calib::EFF_FLOOR, 1.0)
}

/// Simulates one kernel launch of `desc` on `device`.
pub fn simulate_kernel(device: &DeviceProps, desc: &KernelDesc) -> KernelReport {
    let occ = occupancy(device, &desc.block);
    let achieved = (occ.ratio * desc.active_thread_fraction).clamp(0.0, 1.0);
    let eff = scheduler_efficiency(device, achieved);
    let clock_hz = device.base_clock_mhz as f64 * 1.0e6;

    // Lanes that can retire work simultaneously: concurrent blocks ×
    // the per-block lane supply (a block runs on one SM's cores and can
    // use at most its own active threads).
    let resident_cap = (device.sm_count * occ.blocks_per_sm.max(1)) as f64;
    let concurrent_blocks = (desc.grid_blocks as f64).min(resident_cap).max(1.0);
    let lanes_per_block = (device.cores_per_sm as f64)
        .min(desc.block.threads as f64 * desc.active_thread_fraction)
        .max(1.0);
    let lanes = (concurrent_blocks * lanes_per_block).min(device.total_cores() as f64);

    // Compute component.
    let issue_cycles = desc.instr_total.issue_cycles();
    let ipc = calib::ETA_IPC * desc.ipc_factor.max(0.01);
    let compute_us = issue_cycles / (lanes * ipc * eff * clock_hz) * 1.0e6;

    // Shared-memory component (per-SM pipeline).
    let sms_used = (desc.grid_blocks.min(device.sm_count)) as f64;
    let smem_phases = (desc.smem_transactions + desc.smem_conflicts) as f64;
    let smem_us = smem_phases * calib::SMEM_PHASE_CYCLES / (sms_used.max(1.0) * clock_hz) * 1.0e6;

    // Global-memory component.
    let gmem_us = desc.gmem_bytes as f64 / (device.mem_bandwidth_gb_s * 1.0e9) * 1.0e6;
    let contention = match desc.ro_placement {
        RoDataPlacement::Global => calib::GMEM_CONTENTION_SCALAR,
        RoDataPlacement::GlobalVectorized => calib::GMEM_CONTENTION_VEC,
        RoDataPlacement::Constant => 0.0,
    };
    let cmem_us =
        desc.cmem_reads as f64 * calib::CMEM_READ_CYCLES / (sms_used.max(1.0) * clock_hz) * 1.0e6;

    // Barrier component: serial per block, paid once per wave of blocks.
    let resident_blocks = (device.sm_count * occ.blocks_per_sm.max(1)) as f64;
    let waves = (desc.grid_blocks as f64 / resident_blocks).ceil().max(1.0);
    let sync_us = desc.syncs_per_block as f64 * calib::BARRIER_CYCLES * waves / clock_hz * 1.0e6;

    // Block-serial critical path: dependent phases inside a block execute
    // at single-chain speed (issue cycles stretched by the dependence
    // latency over available ILP), and block waves serialize.
    let latency_us = desc.critical_path.issue_cycles() * calib::DEP_LATENCY / calib::ILP * waves
        / clock_hz
        * 1.0e6;

    let bound = compute_us.max(smem_us).max(gmem_us).max(latency_us);
    let time_us = bound + gmem_us * contention + cmem_us + sync_us;

    let peak_issue = device.total_cores() as f64 * clock_hz;
    let compute_throughput_pct =
        (issue_cycles / (time_us * 1.0e-6 * peak_issue) * 100.0).min(100.0);
    let memory_throughput_pct =
        (desc.gmem_bytes as f64 / (time_us * 1.0e-6 * device.mem_bandwidth_gb_s * 1.0e9) * 100.0)
            .min(100.0);

    KernelReport {
        name: desc.name.clone(),
        time_us,
        resource_occupancy: occ,
        achieved_occupancy: achieved,
        theoretical_occupancy: theoretical_occupancy(device, &desc.block),
        compute_throughput_pct,
        memory_throughput_pct,
        scheduler_efficiency: eff,
        compute_us,
        smem_us,
        gmem_us,
        sync_us,
        latency_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::rtx_4090;
    use crate::isa::{InstrClass, Sha2Path};
    use crate::occupancy::BlockResources;

    fn hash_kernel(regs: u32, active: f64, compressions: u64, path: Sha2Path) -> KernelDesc {
        let block = BlockResources {
            threads: 1024,
            regs_per_thread: regs,
            smem_bytes: 16 * 1024,
        };
        let mut desc = KernelDesc::empty("test", 1024, block);
        desc.active_thread_fraction = active;
        desc.instr_total = path.compression_mix().scaled(compressions);
        desc
    }

    #[test]
    fn more_work_more_time() {
        let d = rtx_4090();
        let a = simulate_kernel(&d, &hash_kernel(64, 1.0, 1_000_000, Sha2Path::Native));
        let b = simulate_kernel(&d, &hash_kernel(64, 1.0, 2_000_000, Sha2Path::Native));
        assert!(b.time_us > a.time_us * 1.8);
    }

    #[test]
    fn low_occupancy_hurts() {
        let d = rtx_4090();
        let full = simulate_kernel(&d, &hash_kernel(64, 1.0, 1_000_000, Sha2Path::Native));
        let starved = simulate_kernel(&d, &hash_kernel(64, 0.1, 1_000_000, Sha2Path::Native));
        assert!(starved.time_us > full.time_us);
        assert!(starved.achieved_occupancy < full.achieved_occupancy);
    }

    #[test]
    fn register_pressure_hurts_via_occupancy() {
        let d = rtx_4090();
        // 64 → 128 regs halves resident warps for 512-thread blocks.
        let block_lo = BlockResources {
            threads: 512,
            regs_per_thread: 64,
            smem_bytes: 0,
        };
        let block_hi = BlockResources {
            threads: 512,
            regs_per_thread: 128,
            smem_bytes: 0,
        };
        let mut lo = KernelDesc::empty("lo", 512, block_lo);
        let mut hi = KernelDesc::empty("hi", 512, block_hi);
        lo.instr_total = Sha2Path::Native.compression_mix().scaled(500_000);
        hi.instr_total = lo.instr_total;
        let rl = simulate_kernel(&d, &lo);
        let rh = simulate_kernel(&d, &hi);
        assert!(rh.time_us >= rl.time_us, "{} vs {}", rh.time_us, rl.time_us);
    }

    #[test]
    fn ptx_path_not_slower_at_equal_occupancy() {
        let d = rtx_4090();
        let n = simulate_kernel(&d, &hash_kernel(64, 1.0, 1_000_000, Sha2Path::Native));
        let p = simulate_kernel(&d, &hash_kernel(64, 1.0, 1_000_000, Sha2Path::Ptx));
        assert!(p.time_us <= n.time_us);
    }

    #[test]
    fn bank_conflicts_add_time() {
        let d = rtx_4090();
        let mut clean = hash_kernel(64, 1.0, 10_000, Sha2Path::Native);
        clean.smem_transactions = 1_000_000;
        let mut conflicted = clean.clone();
        conflicted.smem_conflicts = 30_000_000;
        let rc = simulate_kernel(&d, &clean);
        let rf = simulate_kernel(&d, &conflicted);
        assert!(rf.time_us > rc.time_us);
    }

    #[test]
    fn constant_memory_beats_global() {
        let d = rtx_4090();
        let mut global = hash_kernel(64, 1.0, 1_000_000, Sha2Path::Native);
        global.gmem_bytes = 400_000_000;
        global.ro_placement = RoDataPlacement::Global;
        let mut constant = global.clone();
        constant.gmem_bytes = 0;
        constant.cmem_reads = 12_000_000;
        constant.ro_placement = RoDataPlacement::Constant;
        let rg = simulate_kernel(&d, &global);
        let rc = simulate_kernel(&d, &constant);
        assert!(rc.time_us < rg.time_us);
        assert!(rc.memory_throughput_pct < rg.memory_throughput_pct);
    }

    #[test]
    fn vectorized_global_beats_scalar_global() {
        let d = rtx_4090();
        let mut scalar = hash_kernel(64, 1.0, 1_000_000, Sha2Path::Native);
        scalar.gmem_bytes = 400_000_000;
        let mut vec = scalar.clone();
        vec.ro_placement = RoDataPlacement::GlobalVectorized;
        assert!(simulate_kernel(&d, &vec).time_us < simulate_kernel(&d, &scalar).time_us);
    }

    #[test]
    fn syncs_add_time_per_wave() {
        let d = rtx_4090();
        let quiet = hash_kernel(64, 1.0, 1_000_000, Sha2Path::Native);
        let mut noisy = quiet.clone();
        noisy.syncs_per_block = 231; // baseline FORS sync walls
        let rq = simulate_kernel(&d, &quiet);
        let rn = simulate_kernel(&d, &noisy);
        assert!(rn.time_us > rq.time_us);
        assert!(rn.sync_us > 0.0);
    }

    #[test]
    fn calibration_anchor_fors_order_of_magnitude() {
        // HERO-like fused FORS 128f: 1024 messages × 6304 single-block
        // hashes, PTX path, high utilization → hundreds of KOPS on 4090
        // (paper: 946.3; baseline 442.9). The engine must land in that
        // decade.
        let d = rtx_4090();
        let compressions = 6_304u64 * 1024;
        let block = BlockResources {
            threads: 1024,
            regs_per_thread: 64,
            smem_bytes: 34 * 1024,
        };
        let mut desc = KernelDesc::empty("FORS_Sign", 1024, block);
        desc.active_thread_fraction = 0.6875;
        desc.instr_total = Sha2Path::Ptx.compression_mix().scaled(compressions);
        desc.instr_total
            .add_count(InstrClass::Lds, 2 * compressions);
        desc.syncs_per_block = 6;
        desc.ro_placement = RoDataPlacement::Constant;
        let report = simulate_kernel(&d, &desc);
        let kops = 1024.0 / report.time_us * 1.0e3;
        assert!(kops > 300.0 && kops < 3_000.0, "kops={kops}");
    }

    #[test]
    fn metrics_bounded() {
        let d = rtx_4090();
        let r = simulate_kernel(&d, &hash_kernel(64, 0.7, 500_000, Sha2Path::Native));
        assert!(r.compute_throughput_pct >= 0.0 && r.compute_throughput_pct <= 100.0);
        assert!(r.memory_throughput_pct >= 0.0 && r.memory_throughput_pct <= 100.0);
        assert!(r.achieved_occupancy >= 0.0 && r.achieved_occupancy <= 1.0);
    }

    #[test]
    fn empty_mix_is_fast_not_nan() {
        let d = rtx_4090();
        let block = BlockResources {
            threads: 32,
            regs_per_thread: 16,
            smem_bytes: 0,
        };
        let r = simulate_kernel(&d, &KernelDesc::empty("noop", 1, block));
        assert!(r.time_us.is_finite());
        assert!(r.time_us >= 0.0);
    }
}
