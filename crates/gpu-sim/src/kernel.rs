//! Kernel descriptors: everything the timing engine needs to know about
//! one kernel launch.
//!
//! HERO-Sign's kernels are described analytically — grid/block geometry,
//! register footprint, per-kernel instruction totals, shared/global memory
//! traffic and barrier counts — while their *functional* work runs as real
//! multi-threaded Rust in `hero-sign`. The descriptor is the simulator's
//! contract.

use crate::isa::InstrMix;
use crate::occupancy::BlockResources;

/// Memory-placement class for a kernel's read-only working set (§III-D).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum RoDataPlacement {
    /// Seeds and initial state in global memory (baseline).
    #[default]
    Global,
    /// Seeds in `__constant__` memory: broadcast reads, near-SRAM latency.
    Constant,
    /// Vectorized global loads (`ldg.64` / `ldg.128`) for infrequent access.
    GlobalVectorized,
}

/// Full analytic description of one kernel launch.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelDesc {
    /// Kernel name, e.g. `"FORS_Sign"`.
    pub name: String,
    /// Thread blocks in the grid.
    pub grid_blocks: u32,
    /// Per-block resources (threads, registers, shared memory).
    pub block: BlockResources,
    /// Fraction of threads in a block doing useful work, in (0, 1]. The
    /// baseline single-tree FORS kernel leaves most of a 1024-thread block
    /// idle; MMTP raises this toward 1 (§III-A).
    pub active_thread_fraction: f64,
    /// Total instruction mix across **all** threads of the launch.
    pub instr_total: InstrMix,
    /// Longest serial dependence chain of any single thread.
    pub critical_path: InstrMix,
    /// Shared-memory warp transactions issued (conflict-free count).
    pub smem_transactions: u64,
    /// Extra serialized transaction phases due to bank conflicts.
    pub smem_conflicts: u64,
    /// Global-memory traffic in bytes.
    pub gmem_bytes: u64,
    /// Constant-memory reads (broadcast; near-free but tracked).
    pub cmem_reads: u64,
    /// Block-wide barriers executed per block.
    pub syncs_per_block: u64,
    /// Placement of the read-only working set.
    pub ro_placement: RoDataPlacement,
    /// Relative pipeline efficiency of this kernel's dataflow, multiplying
    /// the engine's base IPC calibration (1.0 = the smem-coupled tree
    /// reduction regime; independent hash chains dual-issue far better —
    /// the per-kernel issue-slot-utilization differences Nsight shows).
    pub ipc_factor: f64,
}

impl KernelDesc {
    /// A descriptor with empty work, for incremental construction.
    pub fn empty(name: impl Into<String>, grid_blocks: u32, block: BlockResources) -> Self {
        Self {
            name: name.into(),
            grid_blocks,
            block,
            active_thread_fraction: 1.0,
            instr_total: InstrMix::new(),
            critical_path: InstrMix::new(),
            smem_transactions: 0,
            smem_conflicts: 0,
            gmem_bytes: 0,
            cmem_reads: 0,
            syncs_per_block: 0,
            ro_placement: RoDataPlacement::Global,
            ipc_factor: 1.0,
        }
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> u64 {
        self.grid_blocks as u64 * self.block.threads as u64
    }

    /// Useful (active) threads in the grid.
    pub fn active_threads(&self) -> f64 {
        self.total_threads() as f64 * self.active_thread_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::InstrClass;

    #[test]
    fn empty_then_fill() {
        let block = BlockResources {
            threads: 256,
            regs_per_thread: 64,
            smem_bytes: 1024,
        };
        let mut desc = KernelDesc::empty("FORS_Sign", 33, block);
        desc.instr_total.add_count(InstrClass::Alu, 1000);
        desc.active_thread_fraction = 0.5;
        assert_eq!(desc.total_threads(), 33 * 256);
        assert!((desc.active_threads() - 33.0 * 128.0).abs() < 1e-9);
        assert_eq!(desc.instr_total.total(), 1000);
    }
}
