//! Nsight-style profiling reports.
//!
//! Collects per-kernel [`KernelReport`]s and renders the metric tables the
//! paper quotes (warp occupancy, compute/memory throughput, bank
//! conflicts) — the simulator's stand-in for Nsight Systems / Nsight
//! Compute (§IV-B2).

use crate::banks::AccessStats;
use crate::engine::KernelReport;
use std::collections::BTreeMap;
use std::fmt;

/// One profiled kernel entry: timing report plus memory access statistics.
#[derive(Clone, Debug)]
pub struct ProfiledKernel {
    /// Engine timing/metrics report.
    pub report: KernelReport,
    /// Shared-memory load statistics (transactions + conflicts).
    pub smem_loads: AccessStats,
    /// Shared-memory store statistics.
    pub smem_stores: AccessStats,
    /// Invocation count folded into this entry.
    pub invocations: u64,
}

/// A profiling session accumulating kernels by name.
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    entries: BTreeMap<String, ProfiledKernel>,
}

impl Profiler {
    /// Empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one kernel execution.
    pub fn record(&mut self, report: KernelReport, loads: AccessStats, stores: AccessStats) {
        let name = report.name.clone();
        match self.entries.get_mut(&name) {
            Some(entry) => {
                entry.report.time_us += report.time_us;
                entry.smem_loads.merge(loads);
                entry.smem_stores.merge(stores);
                entry.invocations += 1;
                // Occupancy/throughput: keep the most recent sample (the
                // kernels are homogeneous per session).
                entry.report.achieved_occupancy = report.achieved_occupancy;
                entry.report.compute_throughput_pct = report.compute_throughput_pct;
                entry.report.memory_throughput_pct = report.memory_throughput_pct;
            }
            None => {
                self.entries.insert(
                    name,
                    ProfiledKernel {
                        report,
                        smem_loads: loads,
                        smem_stores: stores,
                        invocations: 1,
                    },
                );
            }
        }
    }

    /// Entry for `name`, if profiled.
    pub fn entry(&self, name: &str) -> Option<&ProfiledKernel> {
        self.entries.get(name)
    }

    /// Iterates entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &ProfiledKernel)> {
        self.entries.iter()
    }

    /// Total device time across kernels (µs).
    pub fn total_time_us(&self) -> f64 {
        self.entries.values().map(|e| e.report.time_us).sum()
    }
}

impl fmt::Display for Profiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<14} {:>10} {:>8} {:>9} {:>9} {:>12} {:>12}",
            "Kernel", "Time(us)", "Occ(%)", "Cmp(%)", "Mem(%)", "LdConf", "StConf"
        )?;
        for (name, e) in &self.entries {
            writeln!(
                f,
                "{:<14} {:>10.1} {:>8.2} {:>9.2} {:>9.2} {:>12} {:>12}",
                name,
                e.report.time_us,
                e.report.achieved_occupancy * 100.0,
                e.report.compute_throughput_pct,
                e.report.memory_throughput_pct,
                e.smem_loads.conflicts,
                e.smem_stores.conflicts,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::rtx_4090;
    use crate::engine::simulate_kernel;
    use crate::kernel::KernelDesc;
    use crate::occupancy::BlockResources;

    fn report(name: &str) -> KernelReport {
        let block = BlockResources {
            threads: 256,
            regs_per_thread: 32,
            smem_bytes: 0,
        };
        let mut desc = KernelDesc::empty(name, 16, block);
        desc.instr_total = crate::isa::Sha2Path::Native.compression_mix().scaled(1000);
        simulate_kernel(&rtx_4090(), &desc)
    }

    #[test]
    fn records_and_aggregates() {
        let mut p = Profiler::new();
        let loads = AccessStats {
            transactions: 10,
            conflicts: 3,
        };
        let stores = AccessStats {
            transactions: 5,
            conflicts: 1,
        };
        p.record(report("FORS_Sign"), loads, stores);
        p.record(report("FORS_Sign"), loads, stores);
        p.record(report("TREE_Sign"), loads, stores);
        let fors = p.entry("FORS_Sign").unwrap();
        assert_eq!(fors.invocations, 2);
        assert_eq!(fors.smem_loads.conflicts, 6);
        assert!(p.entry("WOTS+_Sign").is_none());
        assert!(p.total_time_us() > 0.0);
    }

    #[test]
    fn display_renders_all_entries() {
        let mut p = Profiler::new();
        p.record(report("A"), AccessStats::default(), AccessStats::default());
        p.record(report("B"), AccessStats::default(), AccessStats::default());
        let text = p.to_string();
        assert!(text.contains('A') && text.contains('B'));
        assert!(text.contains("Occ(%)"));
    }
}
